//===- tools/irlint/irlint.cpp - Standalone IR lint driver -----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line front end for the IRLint engine (analysis/Lint.h):
//
//   irlint [options] file.ir...      lint textual-IR files (e.g. fuzzdiff
//                                    crash artifacts)
//   irlint --selftest                run the malformed-fixture known-positive
//                                    suite (tooling/LintFixtures.h); with
//                                    --dataflow, the flow-sensitive sabotage
//                                    fixtures as well
//   irlint --corpus [--dynamic] [--audit] [--sabotage]
//                                    generate + optimize workloads and lint
//                                    every optimized function under all three
//                                    paper configurations
//
// Common options:
//   --json               machine-readable report instead of text
//   --trace=FILE         write a Chrome trace_event JSON of the run
//   --counters           dump the telemetry counter registry after the run
//   --jobs=N             corpus mode: lint N seeds concurrently (0 = one
//                        worker per hardware thread); reports are merged
//                        in seed order, so output matches --jobs=1
//   --Werror             warnings fail the run like errors
//   --disable=RULE       disable a rule (repeatable)
//   --enable=RULE        re-enable a previously disabled rule
//   --list-rules         print the registered rules and exit
//   --dataflow           add the flow-sensitive rules (analysis/DataFlow.h)
//                        to every lint pass
//   --simaudit           corpus mode: replay each function's recorded DBDS
//                        decisions against dataflow facts on the optimized
//                        IR and report the simulator's precision/recall
// Corpus options:
//   --seed=N --count=N --functions=N --segments=N
//   --dynamic            interpret on the eval inputs and cross-check stamps
//                        against the observed values
//   --audit              run the optimization pipeline in PhaseManager audit
//                        mode (lint diff per phase + behavioral oracle)
//   --sabotage           known-positive control: corrupt each optimized
//                        function with SabotagePhase and require the
//                        behavioral oracle to flag every corrupted one
//
// Exit status: 0 when the run matches expectations (clean files / clean
// corpus / all fixtures and sabotages caught), 1 on findings or missed
// expectations, 2 on usage or I/O errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/SimAudit.h"
#include "dbds/DBDSPhase.h"
#include "telemetry/DecisionLog.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Phase.h"
#include "support/Diagnostics.h"
#include "telemetry/Counters.h"
#include "telemetry/Trace.h"
#include "tooling/DriverOptions.h"
#include "tooling/LintFixtures.h"
#include "tooling/LintHarness.h"
#include "tooling/Sabotage.h"
#include "vm/Interpreter.h"
#include "workloads/CompileService.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

using namespace dbds;

namespace {

constexpr uint64_t RunFuel = 1u << 22;

struct Options {
  /// Shared flags (tooling/DriverOptions.h): --seed/--count/--functions/
  /// --segments/--quiet/--trace/--counters/--jobs/--simaudit.
  DriverOptions Common;
  bool Selftest = false;
  bool Corpus = false;
  bool Dynamic = false;
  bool Audit = false;
  bool Sabotage = false;
  bool Dataflow = false;
  bool Json = false;
  bool Werror = false;
  bool ListRules = false;
  std::vector<std::string> Disabled;
  std::vector<std::string> Enabled;
  std::vector<std::string> Files;
};

int usage(const char *Prog, const DriverOptionsParser &P) {
  fprintf(stderr,
          "usage: %s [--selftest | --corpus | file.ir...]\n"
          "  [--json] [--Werror] [--disable=RULE] [--enable=RULE]\n"
          "  [--list-rules] [--dataflow]\n"
          "  corpus: [--dynamic] [--audit] [--sabotage]\n"
          "  shared: %s\n",
          Prog, P.usage().c_str());
  return 2;
}

/// The linter the options select: the standard registry, plus the
/// flow-sensitive rules under --dataflow.
Linter makeLinter(const Options &O, const Module *ClassTable = nullptr) {
  return O.Dataflow ? dataflowLinter(ClassTable)
                    : Linter::standard(ClassTable);
}

/// The standard linter with the CLI's enable/disable edits applied.
/// Returns false (with a message) on an unknown rule id.
bool configureLinter(Linter &L, const Options &O) {
  for (const std::string &Id : O.Disabled)
    if (!L.setEnabled(Id, false)) {
      fprintf(stderr, "irlint: unknown rule '%s'\n", Id.c_str());
      return false;
    }
  for (const std::string &Id : O.Enabled)
    if (!L.setEnabled(Id, true)) {
      fprintf(stderr, "irlint: unknown rule '%s'\n", Id.c_str());
      return false;
    }
  return true;
}

void printReport(const LintReport &Report, const Options &O) {
  if (O.Json) {
    printf("%s\n", Report.renderJSON().c_str());
    return;
  }
  if (!O.Common.Quiet || Report.hasErrors())
    printf("%s", Report.render().c_str());
}

/// Pass/fail verdict for one report under the --Werror policy.
bool reportFails(const LintReport &Report, const Options &O) {
  return Report.hasErrors() ||
         (O.Werror && Report.count(LintSeverity::Warn) != 0);
}

int listRules(const Options &O) {
  Linter L = makeLinter(O);
  for (const LintRule *Rule : L.rules())
    printf("%-18s %-10s %s\n", Rule->id(),
           Rule->stage() == LintRule::Stage::Structure ? "structure"
                                                       : "semantic",
           Rule->description());
  return 0;
}

int runSelftest(const Options &O) {
  std::string Log;
  std::vector<LintFixture> Fixtures = makeLintFixtures();
  bool Ok = true;
  for (const LintFixture &Fx : Fixtures)
    Ok &= checkLintFixture(Fx, Log);
  size_t Total = Fixtures.size();
  if (O.Dataflow) {
    std::vector<LintFixture> FlowFixtures = makeDataflowLintFixtures();
    for (const LintFixture &Fx : FlowFixtures)
      Ok &= checkDataflowLintFixture(Fx, Log);
    Total += FlowFixtures.size();
  }
  if (!Ok) {
    fprintf(stderr, "irlint: selftest FAILED\n%s", Log.c_str());
    return 1;
  }
  if (!O.Common.Quiet)
    printf("irlint: selftest passed (%zu fixtures)\n", Total);
  return 0;
}

int lintFiles(const Options &O) {
  LintReport Combined;
  for (const std::string &Path : O.Files) {
    FILE *File = fopen(Path.c_str(), "rb");
    if (!File) {
      fprintf(stderr, "irlint: cannot open '%s'\n", Path.c_str());
      return 2;
    }
    std::string Source;
    char Buf[4096];
    size_t Read;
    while ((Read = fread(Buf, 1, sizeof(Buf), File)) != 0)
      Source.append(Buf, Read);
    fclose(File);

    ParseResult Parsed = parseModule(Source);
    if (!Parsed) {
      fprintf(stderr, "irlint: %s: parse error: %s\n", Path.c_str(),
              Parsed.Error.c_str());
      return 2;
    }
    Linter L = makeLinter(O, Parsed.Mod.get());
    if (!configureLinter(L, O))
      return 2;
    Combined.append(L.lintModule(*Parsed.Mod));
  }
  printReport(Combined, O);
  return reportFails(Combined, O) ? 1 : 0;
}

/// Profiles and optimizes \p F under \p Config the way workloads/Runner
/// does, optionally with PhaseManager audit mode enabled.
void optimizeFunction(Function &F, Module *M, RunConfig Config,
                      const std::vector<std::vector<int64_t>> &Train,
                      const Options &O, const Linter *AuditLinter,
                      DiagnosticEngine *Diags, unsigned *Rollbacks,
                      DecisionLog *Decisions = nullptr) {
  Interpreter Interp(*M);
  ProfileSummary Profile;
  for (const auto &Args : Train) {
    Interp.reset();
    Interp.run(F, ArrayRef<int64_t>(Args), RunFuel, &Profile);
  }
  applyProfile(F, Profile);

  PhaseManager Pipeline = PhaseManager::standardPipeline(/*Verify=*/true, M);
  Pipeline.setDiagnostics(Diags);
  if (O.Audit && AuditLinter) {
    Pipeline.setAuditLinter(AuditLinter);
    Pipeline.setAuditOracle(makeInterpreterOracle(*M, Train, RunFuel));
  }
  Pipeline.run(F);
  if (Rollbacks)
    *Rollbacks += Pipeline.rollbackCount();

  if (Config != RunConfig::Baseline) {
    DBDSConfig DC;
    DC.UseTradeoff = Config == RunConfig::DBDS;
    DC.ClassTable = M;
    DC.Verify = true;
    DC.Diags = Diags;
    DC.Decisions = Decisions;
    runDBDS(F, DC);
  }
}

int runCorpus(const Options &O) {
  // Unknown rule ids are a usage error; validate once up front so the
  // per-seed tasks below cannot fail.
  {
    Linter Probe = Linter::standard();
    if (!configureLinter(Probe, O))
      return 2;
  }

  DiagnosticEngine Diags;
  LintReport Combined;
  unsigned FunctionsLinted = 0;
  unsigned AuditRollbacks = 0;
  unsigned Corrupted = 0;
  unsigned CorruptionsCaught = 0;

  // One seed = one task; everything a task produces is buffered and merged
  // in seed order at the join, so the report and summary are identical at
  // every --jobs level.
  struct SeedResult {
    LintReport Report;
    DiagnosticEngine Diags;
    unsigned FunctionsLinted = 0;
    unsigned AuditRollbacks = 0;
    unsigned Corrupted = 0;
    unsigned CorruptionsCaught = 0;
    SimAuditCounts Audit;
  };
  std::vector<SeedResult> Results(O.Common.Count);

  const RunConfig Configs[] = {RunConfig::Baseline, RunConfig::DBDS,
                               RunConfig::DupALot};
  CompileService Service(O.Common.Jobs);
  Service.forEachIndex(O.Common.Count, [&](size_t N, unsigned /*Worker*/) {
    SeedResult &R = Results[N];
    GeneratorConfig GC;
    GC.Seed = O.Common.Seed + N;
    GC.NumFunctions = O.Common.Functions;
    GC.SegmentsPerFunction = O.Common.Segments;

    for (RunConfig Config : Configs) {
      GeneratedWorkload Work = generateWorkload(GC);
      Module *M = Work.Mod.get();
      Linter L = makeLinter(O, M);
      configureLinter(L, O); // validated above; cannot fail

      auto Fns = M->functions();
      for (unsigned FIdx = 0; FIdx != Fns.size(); ++FIdx) {
        Function &F = *Fns[FIdx];
        // --simaudit: record this function's DBDS decisions so the audit
        // can replay them against the optimized IR below.
        DecisionLog Decisions;
        bool WantAudit = O.Common.SimAudit && Config != RunConfig::Baseline;
        optimizeFunction(F, M, Config, Work.TrainInputs[FIdx], O, &L,
                         &R.Diags, &R.AuditRollbacks,
                         WantAudit ? &Decisions : nullptr);
        if (WantAudit)
          R.Audit.accumulate(auditSimulation(F, Decisions));

        // Static pass (plus dynamic stamp cross-checks when requested).
        LintReport Report;
        if (O.Dynamic) {
          Interpreter Interp(*M);
          ObservationMap Obs =
              observeFunction(Interp, F, Work.EvalInputs[FIdx], RunFuel);
          Report = L.lint(F, &Obs);
        } else {
          Report = L.lint(F);
        }
        ++R.FunctionsLinted;
        for (LintFinding &Finding : Report.Findings) {
          Finding.Message += " [seed " + std::to_string(GC.Seed) + ", " +
                             runConfigName(Config) + "]";
          R.Report.Findings.push_back(std::move(Finding));
        }

        // Known-positive control: corrupt the optimized function and
        // require the behavioral oracle to notice. The corruption is
        // structurally valid, so this is exactly the class of defect the
        // static rules cannot flag.
        if (O.Sabotage) {
          std::unique_ptr<Function> Pristine = F.clone();
          SabotagePhase Saboteur;
          if (Saboteur.run(F)) {
            ++R.Corrupted;
            std::string Detail;
            AuditOracle Oracle =
                makeInterpreterOracle(*M, Work.EvalInputs[FIdx], RunFuel);
            if (!Oracle(*Pristine, F, Detail)) {
              ++R.CorruptionsCaught;
              LintFinding Synthetic;
              Synthetic.RuleId = "dynamic-divergence";
              Synthetic.Severity = LintSeverity::Error;
              Synthetic.FunctionName = F.getName();
              Synthetic.Message = "sabotaged function diverges: " + Detail +
                                  " [seed " + std::to_string(GC.Seed) + ", " +
                                  runConfigName(Config) + "]";
              R.Report.Findings.push_back(std::move(Synthetic));
            }
            F.restoreFrom(*Pristine);
          }
        }
      }
    }
  });

  // Deterministic join in seed order.
  SimAuditCounts Audit;
  for (SeedResult &R : Results) {
    Combined.append(std::move(R.Report));
    Diags.mergeFrom(R.Diags);
    FunctionsLinted += R.FunctionsLinted;
    AuditRollbacks += R.AuditRollbacks;
    Corrupted += R.Corrupted;
    CorruptionsCaught += R.CorruptionsCaught;
    Audit.accumulate(R.Audit);
  }

  printReport(Combined, O);
  if (!O.Common.Quiet) {
    printf("irlint: corpus: %u function-compiles linted, %u error(s), "
           "%u warning(s)\n",
           FunctionsLinted, Combined.errorCount(),
           Combined.count(LintSeverity::Warn));
    if (O.Audit)
      printf("irlint: audit: %u rollback(s)\n%s", AuditRollbacks,
             Diags.render().c_str());
    if (O.Sabotage)
      printf("irlint: sabotage: %u corrupted, %u caught\n", Corrupted,
             CorruptionsCaught);
    if (Audit.Ran)
      printf("irlint: simaudit: %llu confirmed, %llu overclaimed, "
             "%llu underclaimed, %llu skipped — precision %.3f, "
             "recall %.3f\n",
             static_cast<unsigned long long>(Audit.Confirmed),
             static_cast<unsigned long long>(Audit.Overclaimed),
             static_cast<unsigned long long>(Audit.Underclaimed),
             static_cast<unsigned long long>(Audit.Skipped),
             Audit.precision(), Audit.recall());
  }

  if (O.Sabotage) {
    // Expectation inverted: the control must corrupt something, and every
    // corruption must be caught.
    return (Corrupted != 0 && CorruptionsCaught == Corrupted) ? 0 : 1;
  }
  // Clean corpus: no lint failure, and in audit mode no phase may have
  // been rolled back.
  bool StaticClean =
      !Combined.hasErrors() &&
      !(O.Werror && Combined.count(LintSeverity::Warn) != 0);
  return (StaticClean && AuditRollbacks == 0) ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  O.Common.Count = 3;
  DriverOptionsParser P(
      O.Common, {DriverFlag::Seed, DriverFlag::Count, DriverFlag::Functions,
                 DriverFlag::Segments, DriverFlag::Quiet, DriverFlag::Trace,
                 DriverFlag::Counters, DriverFlag::Jobs,
                 DriverFlag::SimAudit});
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    switch (P.parse(Arg)) {
    case ParseStatus::Handled:
      continue;
    case ParseStatus::Help:
      printf("usage: %s [--selftest | --corpus | file.ir...]\n"
             "  [--json] [--Werror] [--disable=RULE] [--enable=RULE]\n"
             "  [--list-rules] [--dataflow]\n"
             "  corpus: [--dynamic] [--audit] [--sabotage]\n"
             "shared options:\n%s",
             Argv[0], P.helpText().c_str());
      return 0;
    case ParseStatus::Error:
      fprintf(stderr, "irlint: %s\n", P.error().c_str());
      return 2;
    case ParseStatus::Unrecognized:
      break;
    }
    if (strcmp(Arg, "--selftest") == 0)
      O.Selftest = true;
    else if (strcmp(Arg, "--corpus") == 0)
      O.Corpus = true;
    else if (strcmp(Arg, "--dynamic") == 0)
      O.Dynamic = true;
    else if (strcmp(Arg, "--audit") == 0)
      O.Audit = true;
    else if (strcmp(Arg, "--sabotage") == 0)
      O.Sabotage = true;
    else if (strcmp(Arg, "--dataflow") == 0)
      O.Dataflow = true;
    else if (strcmp(Arg, "--json") == 0)
      O.Json = true;
    else if (strcmp(Arg, "--Werror") == 0)
      O.Werror = true;
    else if (strcmp(Arg, "--list-rules") == 0)
      O.ListRules = true;
    else if (strncmp(Arg, "--disable=", 10) == 0)
      O.Disabled.push_back(Arg + 10);
    else if (strncmp(Arg, "--enable=", 9) == 0)
      O.Enabled.push_back(Arg + 9);
    else if (strncmp(Arg, "--", 2) == 0)
      return usage(Argv[0], P);
    else
      O.Files.push_back(Arg);
  }

  // The shared knobs feed CompileService directly here, but the conflict
  // rules are the same for every driver — gate through the one validator.
  if (reportInvalidRunnerOptions(O.Common.toRunnerOptions(), "irlint"))
    return 2;

  if (O.ListRules)
    return listRules(O);

  TraceSession Trace;
  std::optional<ScopedTraceAttach> Attach;
  if (!O.Common.TracePath.empty())
    Attach.emplace(Trace);

  int Exit;
  if (O.Selftest)
    Exit = runSelftest(O);
  else if (O.Corpus)
    Exit = runCorpus(O);
  else if (O.Files.empty())
    return usage(Argv[0], P);
  else
    Exit = lintFiles(O);

  if (O.Common.DumpCounters)
    printf("=== telemetry counters ===\n%s",
           CounterRegistry::renderText(
               CounterRegistry::instance().snapshot(/*SkipZero=*/true))
               .c_str());
  if (!O.Common.TracePath.empty()) {
    Attach.reset();
    std::string Error;
    if (!Trace.writeJson(O.Common.TracePath, &Error)) {
      fprintf(stderr, "irlint: --trace: %s\n", Error.c_str());
      return 2;
    }
    if (!O.Common.Quiet)
      printf("irlint: trace written to %s (%zu events)\n",
             O.Common.TracePath.c_str(), Trace.eventCount());
  }
  return Exit;
}
