//===- tools/dbds-replay/dbds-replay.cpp - Crash-bundle replayer ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Standalone replayer for crash-report bundles (tooling/CrashBundle.h):
//
//   dbds-replay BUNDLE_DIR        parse manifest.json + input.ir and re-run
//                                 replayCrashCompile with the final
//                                 attempt's recorded fault stream
//   dbds-replay --reduced DIR     replay the delta-reduced reproducer
//                                 (reduced.ir) instead of the full snapshot
//   dbds-replay --selftest[=DIR]  write a synthetic bundle, replay it from
//                                 its artifacts alone, and require the
//                                 replay verdict to match the manifest
//
// Options:
//   --quiet                       suppress everything but failures
//
// Exit status: 0 when the replay matches the manifest's recorded verdict
// (reproduced flag and rollback count), 1 on mismatch, 2 on usage or I/O
// errors. A bundle is self-contained by contract — this tool is the
// out-of-process proof, sharing zero state with the service that wrote it.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Parser.h"
#include "tooling/CrashBundle.h"
#include "workloads/ProgramGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dbds;

namespace {

struct Options {
  std::string BundleDir;
  std::string SelftestDir; ///< Non-empty = selftest mode.
  bool Selftest = false;
  bool Reduced = false;
  bool Quiet = false;
};

int usage(const char *Prog) {
  fprintf(stderr,
          "usage: %s [--reduced] [--quiet] BUNDLE_DIR\n"
          "       %s --selftest[=DIR] [--quiet]\n",
          Prog, Prog);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out, std::string &Error) {
  FILE *File = fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open " + Path;
    return false;
  }
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), File)) != 0)
    Out.append(Buf, N);
  fclose(File);
  return true;
}

//===----------------------------------------------------------------------===//
// Minimal manifest extraction
//
// The manifest is machine-written by writeCrashBundle with a fixed schema;
// scanning for `"key":` and reading the literal after it is exact for that
// writer (string values in the manifest never embed `"key":` sequences).
// Scalars after the attempts array are read from the *last* occurrence, so
// per-attempt keys never shadow the bundle-level verdict fields.
//===----------------------------------------------------------------------===//

size_t keyPos(const std::string &Json, const std::string &Key, bool Last) {
  std::string Needle = "\"" + Key + "\":";
  size_t Pos = Last ? Json.rfind(Needle) : Json.find(Needle);
  return Pos == std::string::npos ? std::string::npos : Pos + Needle.size();
}

bool manifestString(const std::string &Json, const std::string &Key,
                    std::string &Out, bool Last = false) {
  size_t Pos = keyPos(Json, Key, Last);
  if (Pos == std::string::npos)
    return false;
  while (Pos < Json.size() && Json[Pos] == ' ')
    ++Pos;
  if (Pos >= Json.size() || Json[Pos] != '"')
    return false;
  size_t End = Json.find('"', Pos + 1);
  if (End == std::string::npos)
    return false;
  Out = Json.substr(Pos + 1, End - Pos - 1);
  return true;
}

bool manifestNumber(const std::string &Json, const std::string &Key,
                    double &Out, bool Last = false) {
  size_t Pos = keyPos(Json, Key, Last);
  if (Pos == std::string::npos)
    return false;
  Out = strtod(Json.c_str() + Pos, nullptr);
  return true;
}

bool manifestBool(const std::string &Json, const std::string &Key, bool &Out,
                  bool Last = false) {
  size_t Pos = keyPos(Json, Key, Last);
  if (Pos == std::string::npos)
    return false;
  while (Pos < Json.size() && Json[Pos] == ' ')
    ++Pos;
  Out = Json.compare(Pos, 4, "true") == 0;
  return true;
}

DegradationLevel levelFromName(const std::string &Name) {
  if (Name == "no-dbds")
    return DegradationLevel::NoDBDS;
  if (Name == "no-fixpoint")
    return DegradationLevel::NoFixpoint;
  return DegradationLevel::None;
}

/// Replays \p Dir from its artifacts and compares against the manifest's
/// recorded verdict. Returns the process exit code.
int replayBundle(const std::string &Dir, const Options &O) {
  std::string Error, Manifest;
  if (!readFile(Dir + "/manifest.json", Manifest, Error)) {
    fprintf(stderr, "dbds-replay: %s (is this a complete bundle?)\n",
            Error.c_str());
    return 2;
  }
  std::string Schema;
  if (!manifestString(Manifest, "schema", Schema) ||
      Schema != "dbds-crash-bundle") {
    fprintf(stderr, "dbds-replay: %s/manifest.json: not a dbds-crash-bundle "
                    "manifest\n",
            Dir.c_str());
    return 2;
  }

  std::string FunctionName, ConfigName, ForcedName;
  double Rate = 0.0, KindMask = 0.0, FaultSeed = 0.0, WantRollbacks = 0.0;
  bool Injected = false, WantReproduced = false;
  if (!manifestString(Manifest, "function", FunctionName) ||
      !manifestString(Manifest, "config", ConfigName) ||
      !manifestBool(Manifest, "injected", Injected) ||
      !manifestNumber(Manifest, "rate", Rate) ||
      !manifestNumber(Manifest, "kind_mask", KindMask) ||
      !manifestBool(Manifest, "reproduced", WantReproduced) ||
      !manifestNumber(Manifest, "replay_rollbacks", WantRollbacks)) {
    fprintf(stderr, "dbds-replay: %s/manifest.json: missing fields\n",
            Dir.c_str());
    return 2;
  }
  // The replay re-runs the *final* attempt: last fault_seed/forced_level
  // in the attempts array.
  manifestString(Manifest, "forced_level", ForcedName, /*Last=*/true);
  manifestNumber(Manifest, "fault_seed", FaultSeed, /*Last=*/true);

  const char *IrFile = O.Reduced ? "reduced.ir" : "input.ir";
  std::string IrText;
  if (!readFile(Dir + "/" + IrFile, IrText, Error)) {
    fprintf(stderr, "dbds-replay: %s\n", Error.c_str());
    return 2;
  }
  ParseResult Parsed = parseModule(IrText);
  if (!Parsed) {
    fprintf(stderr, "dbds-replay: %s/%s: parse error: %s\n", Dir.c_str(),
            IrFile, Parsed.Error.c_str());
    return 2;
  }
  Function *Focus = Parsed.Mod->getFunction(FunctionName);
  if (!Focus) {
    fprintf(stderr, "dbds-replay: function '%s' not found in %s\n",
            FunctionName.c_str(), IrFile);
    return 2;
  }

  unsigned Rollbacks = replayCrashCompile(
      *Parsed.Mod, *Focus, static_cast<uint64_t>(FaultSeed), Rate,
      Injected ? static_cast<unsigned>(KindMask) : 0,
      levelFromName(ForcedName), ConfigName);
  bool Reproduced = Rollbacks > 0;

  if (!O.Quiet)
    printf("dbds-replay: %s: function %s, config %s, seed %llu: "
           "%u rollback(s) (manifest recorded %u, reproduced=%s)\n",
           IrFile, FunctionName.c_str(), ConfigName.c_str(),
           static_cast<unsigned long long>(FaultSeed), Rollbacks,
           static_cast<unsigned>(WantRollbacks),
           WantReproduced ? "true" : "false");

  // The reduced reproducer preserves the *failure*, not the rollback
  // count; the full snapshot must replay the recorded count exactly.
  bool Match = O.Reduced
                   ? Reproduced == WantReproduced
                   : Reproduced == WantReproduced &&
                         Rollbacks == static_cast<unsigned>(WantRollbacks);
  if (!Match) {
    fprintf(stderr,
            "dbds-replay: MISMATCH: replay saw %u rollback(s), manifest "
            "recorded %u (reproduced=%s)\n",
            Rollbacks, static_cast<unsigned>(WantRollbacks),
            WantReproduced ? "true" : "false");
    return 1;
  }
  return 0;
}

/// Writes a synthetic bundle from a generated workload, then replays it
/// through the exact artifact path a user would.
int runSelftest(const Options &O) {
  GeneratorConfig GC;
  GC.Seed = 7;
  GC.NumFunctions = 1;
  GC.SegmentsPerFunction = 3;
  GeneratedWorkload W = generateWorkload(GC);
  Function *F = W.Mod->functions().front();

  CrashBundleSpec Spec;
  Spec.Benchmark = "replay-selftest";
  Spec.ConfigName = "dbds";
  Spec.FunctionName = F->getName();
  Spec.Dir = O.SelftestDir + "/" + Spec.Benchmark + "-" + Spec.FunctionName;
  Spec.Pristine = F;
  Spec.ClassTable = W.Mod.get();
  CrashBundleAttempt A;
  A.Attempt = 0;
  A.Reason = "synthetic selftest attempt";
  Spec.Attempts.push_back(A);

  CrashBundleResult R = writeCrashBundle(Spec);
  if (!R.Written) {
    fprintf(stderr, "dbds-replay: selftest: bundle write failed: %s\n",
            R.Error.c_str());
    return 1;
  }
  int Exit = replayBundle(Spec.Dir, O);
  if (Exit == 0) {
    Options Reduced = O;
    Reduced.Reduced = true;
    Exit = replayBundle(Spec.Dir, Reduced);
  }
  if (Exit == 0 && !O.Quiet)
    printf("dbds-replay: selftest passed (%s)\n", Spec.Dir.c_str());
  else if (Exit != 0)
    fprintf(stderr, "dbds-replay: selftest FAILED\n");
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (strcmp(Arg, "--selftest") == 0) {
      O.Selftest = true;
      O.SelftestDir = "dbds-replay-selftest";
    } else if (strncmp(Arg, "--selftest=", 11) == 0) {
      O.Selftest = true;
      O.SelftestDir = Arg + 11;
    } else if (strcmp(Arg, "--reduced") == 0) {
      O.Reduced = true;
    } else if (strcmp(Arg, "--quiet") == 0) {
      O.Quiet = true;
    } else if (strncmp(Arg, "--", 2) == 0) {
      return usage(Argv[0]);
    } else if (O.BundleDir.empty()) {
      O.BundleDir = Arg;
    } else {
      return usage(Argv[0]);
    }
  }

  if (O.Selftest)
    return runSelftest(O);
  if (O.BundleDir.empty())
    return usage(Argv[0]);
  return replayBundle(O.BundleDir, O);
}
