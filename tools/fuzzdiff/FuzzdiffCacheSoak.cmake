# Compile-cache differential soak: the fuzzer's findings must be identical
# with and without the cache. Three runs over the same 200-seed range, all
# three configurations each — uncached, cold on-disk cache, warm on-disk
# cache (a fresh process over the store the cold run wrote) — must exit 0
# and produce byte-identical output (--quiet prints findings only, so the
# comparison is exact, no wall-clock lines).
#
# Variables: FUZZDIFF_BIN (fuzzdiff executable), WORK_DIR (scratch).

set(ARGS --seed=31 --count=200 --functions=2 --segments=3 --jobs=0 --quiet)
set(STORE ${WORK_DIR}/cache-soak-store)
file(REMOVE_RECURSE ${STORE})

function(run_fuzzdiff TAG OUT_VAR)
  execute_process(
    COMMAND ${FUZZDIFF_BIN} ${ARGS} ${ARGN}
            --out-dir=${WORK_DIR}/artifacts-cache-soak-${TAG}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "fuzzdiff (${TAG}) exited ${RC}:\n${OUT}${ERR}")
  endif()
  set(${OUT_VAR} "${OUT}" PARENT_SCOPE)
endfunction()

run_fuzzdiff(uncached UNCACHED)
run_fuzzdiff(cold COLD --compile-cache=${STORE})
run_fuzzdiff(warm WARM --compile-cache=${STORE})

if(NOT "${COLD}" STREQUAL "${UNCACHED}")
  message(FATAL_ERROR "cold cached run diverged from uncached run:\n"
                      "--- uncached ---\n${UNCACHED}\n--- cached ---\n${COLD}")
endif()
if(NOT "${WARM}" STREQUAL "${UNCACHED}")
  message(FATAL_ERROR "warm cached run diverged from uncached run:\n"
                      "--- uncached ---\n${UNCACHED}\n--- warm ---\n${WARM}")
endif()

# The warm run must actually have had a store to read: an empty directory
# here would mean the soak silently tested nothing.
file(GLOB ENTRIES ${STORE}/*.dbdscache)
list(LENGTH ENTRIES N)
if(N EQUAL 0)
  message(FATAL_ERROR "cold run stored no cache entries in ${STORE}")
endif()
message(STATUS "fuzzdiff cache soak passed (${N} stored entries)")
