//===- tools/fuzzdiff/fuzzdiff.cpp - Differential fuzzing driver -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential fuzzer for the optimization pipeline:
//
//   fuzzdiff [--seed=N] [--count=N] [--max-seconds=N] [--out-dir=DIR]
//            [--functions=N] [--segments=N] [--inject=SEED]
//            [--inject-kinds=MASK] [--sabotage] [--fail-fast] [--quiet]
//            [--trace=FILE] [--jobs=N] [--simaudit] [--compile-cache[=DIR]]
//            [--cache-dir=DIR]
//
// --compile-cache memoizes injector-free compiles by content hash
// (workloads/CompileCache.h): identical generated functions recurring
// across seeds and configs replay instead of recompiling, with findings
// byte-identical to the uncached run. With =DIR entries persist on disk.
//
// For each seed it generates a program (workloads/ProgramGenerator),
// optimizes a copy under each of the paper's three configurations —
// baseline, dbds, dupalot — with transactional verification enabled, then
// interprets every function of every optimized copy against the
// unoptimized reference on the evaluation inputs. Any observable
// divergence (different result, or one side failing to terminate) is a
// finding: the reference module is dumped as a textual-IR crash artifact,
// delta-debugged down to a minimal reproducer (tooling/Reducer), and the
// reduced artifact is written next to it.
//
// --sabotage appends a deliberate miscompilation (tooling/Sabotage.h) to
// the optimized pipelines: the harness's known-positive self-test. The
// exit status is 0 exactly when the outcome matches the mode — no
// findings normally, at least one finding under --sabotage.
//
// --inject=SEED drives a deterministic FaultInjector through the
// pipelines; every injected fault must be rolled back transactionally, so
// a fuzzing pass with injection enabled doubles as the fault-tolerance
// acceptance test (no aborts, no divergence from rolled-back faults).
// --inject-kinds=MASK selects the fault kinds (bit 0 = corrupt-ir, bit 1 =
// phase-failure, bit 2 = hang, bit 3 = resource-exhaustion; default 3, the
// legacy pair). This is also how a crash bundle's recorded fault stream is
// replayed outside the harness: pass the bundle's fault seed and kind_mask
// and the same faults fire at the same sites. Hang faults are cooperative
// no-ops here — fuzzdiff arms no deadline token — so enabling them checks
// stream alignment, not containment.
//
// --simaudit replays each optimized function's recorded DBDS decisions
// against dataflow-proven facts (analysis/SimAudit.h) and reports the
// aggregated verdict counts with the run summary — simulator-soundness
// coverage riding on the fuzzer's seed diversity.
//
// --jobs=N fuzzes N seeds concurrently on the compile service's worker
// pool (0 = one worker per hardware thread). Each seed's fault stream
// derives from (inject seed, seed index), findings are buffered per seed,
// and reduction/artifact writing happens serially after the join in seed
// order — so the artifacts, diagnostics, and summary counts match a
// --jobs=1 run (the inherently timing-dependent --max-seconds cutoff and
// the --sabotage early exit excepted).
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "dbds/DBDSPhase.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "analysis/SimAudit.h"
#include "opts/Phase.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "telemetry/Trace.h"
#include "tooling/DriverOptions.h"
#include "tooling/Reducer.h"
#include "tooling/Sabotage.h"
#include "vm/Interpreter.h"
#include "workloads/CompileCache.h"
#include "workloads/CompileService.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Runner.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <optional>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace dbds;

namespace {

constexpr uint64_t RunFuel = 1u << 22;

struct Options {
  /// Shared flags (tooling/DriverOptions.h): --seed/--count/--functions/
  /// --segments/--fail-fast/--quiet/--trace/--jobs/--simaudit/
  /// --compile-cache/--cache-dir.
  DriverOptions Common;
  double MaxSeconds = 0.0; ///< 0 = unlimited.
  std::string OutDir = "fuzzdiff-artifacts";
  uint64_t InjectSeed = 0; ///< 0 = fault injection off.
  /// Fault-kind mask for --inject (FaultInjector::Mask*); the default
  /// reproduces the legacy corrupt-ir/phase-failure alternation.
  unsigned InjectKinds = FaultInjector::MaskLegacy;
  bool Sabotage = false;
};

const char *SpecificUsage =
    "[--max-seconds=N] [--out-dir=DIR] [--inject=SEED] "
    "[--inject-kinds=MASK] [--sabotage]";

int usage(const char *Prog, const DriverOptionsParser &P) {
  fprintf(stderr, "usage: %s %s %s\n", Prog, SpecificUsage,
          P.usage().c_str());
  return 2;
}

GeneratorConfig makeGeneratorConfig(uint64_t Seed, const Options &O) {
  GeneratorConfig GC;
  GC.Seed = Seed;
  GC.NumFunctions = O.Common.Functions;
  GC.SegmentsPerFunction = O.Common.Segments;
  return GC;
}

/// Profiles \p F on \p Train and optimizes it under \p Config with
/// transactional verification — the exact procedure workloads/Runner.cpp
/// uses, minus the timing. This is both the fuzzing subject and the
/// reduction oracle's compile step, so a finding keeps reproducing while
/// it shrinks.
void compileFunction(Function &F, Module *M, RunConfig Config,
                     const std::vector<std::vector<int64_t>> &Train,
                     const Options &O, DiagnosticEngine *Diags,
                     FaultInjector *Injector, DecisionLog *Decisions = nullptr,
                     CompileCache *Cache = nullptr,
                     std::vector<std::pair<CompileCacheKey, CompileCacheEntry>>
                         *PendingStores = nullptr) {
  // Content-addressed memoization of the whole profile+optimize procedure.
  // Only sabotage-free compiles participate: sabotage diverges by design.
  // Injected faults advance a sequential stream, so --inject with the
  // cache is rejected up front by RunnerOptions::validate(); the Injector
  // guard here is belt-and-braces. The reduction oracle never passes a
  // cache — a shrinking module must recompile for real every time.
  if (Injector || O.Sabotage)
    Cache = nullptr;
  CompileCacheKey Key{};
  if (Cache) {
    CompileCacheFingerprint FP;
    FP.Tool = "fuzzdiff";
    FP.Config = static_cast<unsigned>(Config);
    FP.Verify = true;
    FP.FailFast = O.Common.FailFast;
    FP.WantDiags = Diags != nullptr;
    FP.WantDecisions = Decisions != nullptr;
    FP.MetricsEnabled = MetricsRegistry::enabled();
    Key = computeCompileCacheKey(printCacheableUnit(M, &F), Train,
                                 /*EvalInputs=*/{}, FP);
    auto Entry = Cache->probe(Key);
    PreparedReplay Replay;
    if (Entry && prepareReplay(*Entry, Replay)) {
      CompileCache::countHit();
      F.restoreFrom(*Replay.Fn);
      if (Decisions)
        for (const DuplicationDecision &D : Entry->Decisions)
          Decisions->append(D);
      return;
    }
    CompileCache::countMiss();
  }
  const size_t DiagsBefore = Diags ? Diags->all().size() : 0;
  const size_t DecisionsBefore = Decisions ? Decisions->decisions().size() : 0;

  Interpreter Interp(*M);
  ProfileSummary Profile;
  for (const auto &Args : Train) {
    Interp.reset();
    Interp.run(F, ArrayRef<int64_t>(Args), RunFuel, &Profile);
  }
  applyProfile(F, Profile);

  unsigned Rollbacks = 0;
  PhaseManager Pipeline = PhaseManager::standardPipeline(/*Verify=*/true, M);
  Pipeline.setFailFast(O.Common.FailFast);
  Pipeline.setDiagnostics(Diags);
  Pipeline.setFaultInjector(Injector);
  Pipeline.run(F);
  Rollbacks += Pipeline.rollbackCount();
  if (Config != RunConfig::Baseline) {
    DBDSConfig DC;
    DC.UseTradeoff = Config == RunConfig::DBDS;
    DC.ClassTable = M;
    DC.Verify = true;
    DC.FailFast = O.Common.FailFast;
    DC.Diags = Diags;
    DC.Injector = Injector;
    DC.Decisions = Decisions;
    DBDSResult R = runDBDS(F, DC);
    Rollbacks += R.RollbacksPerformed;
  }
  if (O.Sabotage && Config != RunConfig::Baseline) {
    SabotagePhase Sabotage;
    Sabotage.run(F);
  }

  // Store only clean compiles (no rollbacks, no new diagnostics) — the
  // same eligibility rule the compile service applies. Stores are
  // buffered; the seed-order join inserts them serially.
  if (Cache && PendingStores && Rollbacks == 0 &&
      (!Diags || Diags->all().size() == DiagsBefore)) {
    CompileCacheEntry E;
    E.CodeSize = F.estimatedCodeSize();
    E.OptimizedIR = printCacheableUnit(M, &F);
    if (Decisions)
      E.Decisions.assign(Decisions->decisions().begin() +
                             static_cast<ptrdiff_t>(DecisionsBefore),
                         Decisions->decisions().end());
    PendingStores->push_back({Key, std::move(E)});
  }
}

/// Observable equivalence of two runs. Object results compare by kind
/// only: heap indices are not stable across optimization levels (escape
/// analysis removes allocations), matching the runner's hashing rule.
bool sameObservable(const ExecutionResult &A, const ExecutionResult &B) {
  if (A.Ok != B.Ok)
    return false;
  if (!A.Ok)
    return true;
  if (A.HasResult != B.HasResult)
    return false;
  if (!A.HasResult)
    return true;
  if (A.Result.IsObject != B.Result.IsObject)
    return false;
  return A.Result.IsObject || A.Result.Scalar == B.Result.Scalar;
}

std::string describeRun(const ExecutionResult &R) {
  if (!R.Ok)
    return "<no termination>";
  if (!R.HasResult)
    return "<void>";
  if (R.Result.IsObject)
    return R.Result.isNull() ? "<null>" : "<object>";
  return std::to_string(R.Result.Scalar);
}

bool writeArtifact(const std::string &Path,
                   const std::vector<std::string> &Header,
                   const Module &M) {
  FILE *File = fopen(Path.c_str(), "wb");
  if (!File) {
    fprintf(stderr, "fuzzdiff: cannot write '%s'\n", Path.c_str());
    return false;
  }
  for (const std::string &Line : Header)
    fprintf(File, "# %s\n", Line.c_str());
  fprintf(File, "%s", printModule(&M).c_str());
  fclose(File);
  return true;
}

struct Finding {
  uint64_t Seed;
  std::string FunctionName;
  RunConfig Config;
  std::string Detail;
  unsigned OriginalInstructions = 0;
  unsigned ReducedInstructions = 0;
  bool Reduced = false;
};

/// Dumps, reduces, and re-dumps one divergence. \p Ref is the unoptimized
/// reference workload the divergence was found against.
void reportFinding(Finding &F, const GeneratedWorkload &Ref, unsigned FnIdx,
                   const Options &O) {
  std::string Base = O.OutDir + "/seed" + std::to_string(F.Seed) + "_" +
                     F.FunctionName + "_" + runConfigName(F.Config);
  std::vector<std::string> Header = {
      "fuzzdiff crash artifact",
      "seed:     " + std::to_string(F.Seed),
      "function: @" + F.FunctionName,
      "config:   " + std::string(runConfigName(F.Config)),
      "detail:   " + F.Detail,
  };
  writeArtifact(Base + ".ir", Header, *Ref.Mod);

  // Delta-debug the reference module: the oracle re-optimizes each
  // candidate from scratch and checks that the divergence survives.
  const std::vector<std::vector<int64_t>> &Train = Ref.TrainInputs[FnIdx];
  const std::vector<std::vector<int64_t>> &Eval = Ref.EvalInputs[FnIdx];
  RunConfig Config = F.Config;
  ReductionOracle Oracle = [&](Module &RM, Function &Focus) {
    ParseResult Copy = parseModule(printModule(&RM));
    if (!Copy)
      return false;
    Function *CF = Copy.Mod->getFunction(Focus.getName());
    if (!CF)
      return false;
    compileFunction(*CF, Copy.Mod.get(), Config, Train, O,
                    /*Diags=*/nullptr, /*Injector=*/nullptr);
    Interpreter RefInterp(RM), OptInterp(*Copy.Mod);
    for (const auto &Args : Eval) {
      RefInterp.reset();
      ExecutionResult RA = RefInterp.run(Focus, ArrayRef<int64_t>(Args),
                                         RunFuel);
      if (!RA.Ok)
        return false; // never reduce toward a non-terminating reference
      OptInterp.reset();
      ExecutionResult RB = OptInterp.run(*CF, ArrayRef<int64_t>(Args),
                                         RunFuel);
      if (!sameObservable(RA, RB))
        return true;
    }
    return false;
  };

  // Every reduced reproducer ships with its own trace: the reduction
  // oracle re-compiles the shrinking module over and over, so the spans
  // show exactly which phases ran while the divergence still reproduced.
  // The session nests inside any whole-run --trace session and restores
  // it afterwards.
  TraceSession ReduceTrace;
  ReductionResult R = [&] {
    ScopedTraceAttach Attach(ReduceTrace);
    return reduceFunction(*Ref.Mod, F.FunctionName, Oracle);
  }();
  std::string TracePath = Base + "_trace.json";
  std::string TraceError;
  if (!ReduceTrace.writeJson(TracePath, &TraceError))
    fprintf(stderr, "fuzzdiff: cannot write '%s': %s\n", TracePath.c_str(),
            TraceError.c_str());
  F.OriginalInstructions = R.OriginalInstructions;
  F.ReducedInstructions = R.ReducedInstructions;
  F.Reduced = R.Reduced;
  Header.push_back("reduced:  " + std::to_string(R.ReducedInstructions) +
                   " of " + std::to_string(R.OriginalInstructions) +
                   " instructions (" + std::to_string(R.OracleQueries) +
                   " oracle queries, " + std::to_string(R.Rounds) +
                   " rounds)");
  writeArtifact(Base + "_reduced.ir", Header, *R.Mod);

  // Lint the reduced reproducer and drop the machine-readable report next
  // to it: a finding caused by IR corruption (rather than a miscompiled
  // transform) shows up here as structural rule hits, which triages the
  // artifact before anyone reads the IR.
  LintReport Lint = Linter::standard(R.Mod.get()).lintModule(*R.Mod);
  std::string LintPath = Base + "_lint.json";
  if (FILE *LintFile = fopen(LintPath.c_str(), "wb")) {
    fprintf(LintFile, "%s\n", Lint.renderJSON().c_str());
    fclose(LintFile);
  } else {
    fprintf(stderr, "fuzzdiff: cannot write '%s'\n", LintPath.c_str());
  }
  if (!O.Common.Quiet)
    printf("fuzzdiff: FINDING seed=%llu @%s [%s]: %s — reduced %u -> %u "
           "instructions (%s.ir, %s_reduced.ir)\n",
           static_cast<unsigned long long>(F.Seed), F.FunctionName.c_str(),
           runConfigName(F.Config), F.Detail.c_str(),
           F.OriginalInstructions, F.ReducedInstructions, Base.c_str(),
           Base.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  O.Common.Count = 50;
  DriverOptionsParser P(
      O.Common,
      {DriverFlag::Seed, DriverFlag::Count, DriverFlag::Functions,
       DriverFlag::Segments, DriverFlag::FailFast, DriverFlag::Quiet,
       DriverFlag::Trace, DriverFlag::Jobs, DriverFlag::SimAudit,
       DriverFlag::CompileCache, DriverFlag::CacheDir});
  for (int I = 1; I != Argc; ++I) {
    switch (P.parse(Argv[I])) {
    case ParseStatus::Handled:
      continue;
    case ParseStatus::Help:
      printf("usage: %s %s %s\noptions:\n%s", Argv[0], SpecificUsage,
             P.usage().c_str(), P.helpText().c_str());
      return 0;
    case ParseStatus::Error:
      fprintf(stderr, "fuzzdiff: %s\n", P.error().c_str());
      return 2;
    case ParseStatus::Unrecognized:
      break;
    }
    if (strncmp(Argv[I], "--max-seconds=", 14) == 0)
      O.MaxSeconds = atof(Argv[I] + 14);
    else if (strncmp(Argv[I], "--out-dir=", 10) == 0)
      O.OutDir = Argv[I] + 10;
    else if (strncmp(Argv[I], "--inject=", 9) == 0)
      O.InjectSeed = strtoull(Argv[I] + 9, nullptr, 10);
    else if (strncmp(Argv[I], "--inject-kinds=", 15) == 0)
      O.InjectKinds = static_cast<unsigned>(strtoul(Argv[I] + 15, nullptr, 0));
    else if (strcmp(Argv[I], "--sabotage") == 0)
      O.Sabotage = true;
    else
      return usage(Argv[0], P);
  }

  // POSIX mkdir; an existing directory is fine.
  if (mkdir(O.OutDir.c_str(), 0755) != 0 && errno != EEXIST) {
    fprintf(stderr, "fuzzdiff: cannot create out dir '%s'\n",
            O.OutDir.c_str());
    return 2;
  }

  TraceSession RunTrace;
  std::optional<ScopedTraceAttach> RunAttach;
  if (!O.Common.TracePath.empty())
    RunAttach.emplace(RunTrace);

  DiagnosticEngine Diags;
  if (O.InjectKinds == 0 ||
      (O.InjectKinds & ~FaultInjector::MaskAll) != 0) {
    fprintf(stderr, "fuzzdiff: --inject-kinds must be a non-empty subset "
                    "of mask %u\n",
            FaultInjector::MaskAll);
    return 2;
  }
  FaultInjector Injector(O.InjectSeed, /*Rate=*/0.25, O.InjectKinds);
  FaultInjector *InjectorPtr = O.InjectSeed != 0 ? &Injector : nullptr;

  const auto Start = std::chrono::steady_clock::now();
  auto elapsedSeconds = [&Start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  // One seed = one task. Tasks buffer everything order-sensitive —
  // findings, diagnostics, fault-injection counts, and the reference
  // workload a finding needs for reduction — and the join below replays
  // them in seed order, so the artifacts and the summary are identical at
  // every --jobs level.
  struct PendingFinding {
    Finding F;
    unsigned FnIdx = 0;
  };
  struct SeedOutcome {
    bool Ran = false;
    DiagnosticEngine Diags;
    FaultInjector Injector{0}; ///< Valid only when HasInjector.
    bool HasInjector = false;
    std::optional<GeneratedWorkload> Ref; ///< Kept only when findings exist.
    std::vector<PendingFinding> Findings;
    SimAuditCounts Audit; ///< Aggregated --simaudit verdicts for this seed.
    /// Clean compiles buffered for the cache; inserted at the seed-order
    /// join (tasks only probe during the parallel phase).
    std::vector<std::pair<CompileCacheKey, CompileCacheEntry>> PendingStores;
  };
  std::vector<SeedOutcome> Outcomes(O.Common.Count);
  std::optional<CompileCache> Cache;
  if (O.Common.UseCompileCache)
    Cache.emplace(O.Common.CacheDir);
  CompileCache *CachePtr = Cache ? &*Cache : nullptr;

  // Knob-conflict gate: most prominently --inject + --compile-cache,
  // which this driver used to reconcile silently by dropping the cache.
  {
    RunnerOptions Check = O.Common.toRunnerOptions();
    Check.Injector = InjectorPtr;
    Check.Cache = CachePtr;
    if (reportInvalidRunnerOptions(Check, "fuzzdiff"))
      return 2;
  }
  std::atomic<bool> SabotageFound{false};
  const RunConfig Configs[] = {RunConfig::Baseline, RunConfig::DBDS,
                               RunConfig::DupALot};

  CompileService Service(O.Common.Jobs);
  Service.forEachIndex(O.Common.Count, [&](size_t N, unsigned /*Worker*/) {
    if (O.MaxSeconds > 0.0 && elapsedSeconds() >= O.MaxSeconds)
      return;
    // The self-test only needs to prove one divergence is caught and
    // reduced; every further one costs a full reduction run.
    if (O.Sabotage && SabotageFound.load(std::memory_order_acquire))
      return;
    SeedOutcome &Out = Outcomes[N];
    Out.Ran = true;
    uint64_t Seed = O.Common.Seed + N;
    GeneratorConfig GC = makeGeneratorConfig(Seed, O);

    // The seed's fault stream derives from (inject seed, N) — identical
    // regardless of which worker runs it, in which order.
    FaultInjector *TaskInjector = nullptr;
    if (InjectorPtr) {
      Out.Injector = InjectorPtr->forTask(N);
      Out.HasInjector = true;
      TaskInjector = &Out.Injector;
    }

    // The reference stays untouched; each configuration optimizes its own
    // identically-generated copy (the module is deterministic in the seed).
    GeneratedWorkload Ref = generateWorkload(GC);
    Interpreter RefInterp(*Ref.Mod);

    for (RunConfig Config : Configs) {
      GeneratedWorkload Opt = generateWorkload(GC);
      Interpreter OptInterp(*Opt.Mod);
      auto RefFns = Ref.Mod->functions();
      auto OptFns = Opt.Mod->functions();
      for (unsigned FIdx = 0; FIdx != OptFns.size(); ++FIdx) {
        Function &OF = *OptFns[FIdx];
        // Sabotage deliberately corrupts post-DBDS IR, so auditing the
        // recorded decisions against it would measure the corruption,
        // not the simulator.
        bool WantAudit =
            O.Common.SimAudit && Config != RunConfig::Baseline && !O.Sabotage;
        DecisionLog Decisions;
        compileFunction(OF, Opt.Mod.get(), Config, Opt.TrainInputs[FIdx], O,
                        &Out.Diags, TaskInjector,
                        WantAudit ? &Decisions : nullptr, CachePtr,
                        &Out.PendingStores);
        if (WantAudit)
          Out.Audit.accumulate(auditSimulation(OF, Decisions));
        for (const auto &Args : Ref.EvalInputs[FIdx]) {
          RefInterp.reset();
          ExecutionResult RA =
              RefInterp.run(*RefFns[FIdx], ArrayRef<int64_t>(Args), RunFuel);
          OptInterp.reset();
          ExecutionResult RB = OptInterp.run(OF, ArrayRef<int64_t>(Args),
                                             RunFuel);
          if (sameObservable(RA, RB))
            continue;
          Finding F;
          F.Seed = Seed;
          F.FunctionName = OF.getName();
          F.Config = Config;
          F.Detail = "expected " + describeRun(RA) + ", got " +
                     describeRun(RB);
          Out.Findings.push_back({std::move(F), FIdx});
          if (O.Common.FailFast) {
            // Debug mode: write the artifact before dying so there is
            // something to look at.
            reportFinding(Out.Findings.back().F, Ref, FIdx, O);
            abort();
          }
          break; // one finding per function/config is enough
        }
        if (O.Sabotage && !Out.Findings.empty())
          break;
      }
      if (O.Sabotage && !Out.Findings.empty())
        break;
    }
    if (!Out.Findings.empty()) {
      if (O.Sabotage)
        SabotageFound.store(true, std::memory_order_release);
      Out.Ref.emplace(std::move(Ref));
    }
  });

  // Deterministic join in seed order: merge diagnostics and injection
  // counts, then run the expensive reduction + artifact pipeline serially
  // (reduction retraces via the process-wide session; it must not race).
  std::vector<Finding> Findings;
  SimAuditCounts Audit;
  unsigned SeedsRun = 0;
  for (unsigned N = 0; N != O.Common.Count; ++N) {
    SeedOutcome &Out = Outcomes[N];
    if (Out.Ran)
      ++SeedsRun;
    Audit.accumulate(Out.Audit);
    Diags.mergeFrom(Out.Diags);
    if (InjectorPtr && Out.HasInjector)
      InjectorPtr->absorbCounts(Out.Injector);
    if (CachePtr)
      for (auto &P : Out.PendingStores)
        CachePtr->insert(P.first, std::move(P.second));
    for (PendingFinding &PF : Out.Findings) {
      if (O.Sabotage && !Findings.empty())
        break; // one proven catch is enough
      reportFinding(PF.F, *Out.Ref, PF.FnIdx, O);
      Findings.push_back(std::move(PF.F));
    }
  }

  if (!O.Common.Quiet) {
    std::string InjectNote;
    if (InjectorPtr)
      InjectNote = ", " + std::to_string(Injector.faultsInjected()) +
                   " fault(s) injected at " +
                   std::to_string(Injector.sitesVisited()) + " site(s)";
    printf("fuzzdiff: %u seed(s), %zu finding(s), %.1fs%s\n", SeedsRun,
           Findings.size(), elapsedSeconds(), InjectNote.c_str());
    if (Audit.Ran)
      printf("fuzzdiff: simaudit: %llu decision(s): %llu confirmed, "
             "%llu overclaimed, %llu underclaimed, %llu skipped — "
             "precision %.3f, recall %.3f\n",
             static_cast<unsigned long long>(Audit.classified() + Audit.Skipped),
             static_cast<unsigned long long>(Audit.Confirmed),
             static_cast<unsigned long long>(Audit.Overclaimed),
             static_cast<unsigned long long>(Audit.Underclaimed),
             static_cast<unsigned long long>(Audit.Skipped), Audit.precision(),
             Audit.recall());
    if (!Diags.empty())
      printf("%s", Diags.render().c_str());
  }

  if (!O.Common.TracePath.empty()) {
    RunAttach.reset();
    std::string TraceError;
    if (!RunTrace.writeJson(O.Common.TracePath, &TraceError)) {
      fprintf(stderr, "fuzzdiff: --trace: %s\n", TraceError.c_str());
      return 2;
    }
    if (!O.Common.Quiet)
      printf("fuzzdiff: trace written to %s (%zu events)\n",
             O.Common.TracePath.c_str(), RunTrace.eventCount());
  }

  // Self-test mode must find something; normal mode must not.
  bool Expected = (Findings.empty() == !O.Sabotage);
  return Expected ? 0 : 1;
}
