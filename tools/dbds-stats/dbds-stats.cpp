//===- tools/dbds-stats/dbds-stats.cpp - Bench report stats CLI -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// CLI over the dbds-bench-report JSON documents the figure drivers and
// bench_headline write:
//
//   dbds-stats report FILE
//       Print the report's per-config scalars and, for v2 reports run
//       with --metrics, the histogram percentile table (p50/p90/p99).
//
//   dbds-stats compare OLD NEW [--threshold=PCT] [--min-latency-ms=MS]
//                              [--gate-on-metrics]
//       Diff two reports with telemetry/BenchCompare.h: benchmarks are
//       matched by name; compile_time_ms / dynamic_cycles / code_size and
//       deterministic-class metric percentiles gate. Exit 0 when nothing
//       regressed past the threshold (default 10%), 1 on regression, 2 on
//       usage or parse errors — the contract CI scripts key off.
//
//   dbds-stats --selftest
//       Self-contained check over synthetic reports: identical reports
//       compare clean, an injected +15% latency regression is caught at a
//       10% threshold and passes at 20%, malformed input exits 2.
//
//===----------------------------------------------------------------------===//

#include "telemetry/BenchCompare.h"
#include "telemetry/JsonValue.h"
#include "telemetry/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dbds;

namespace {

int usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s report FILE\n"
          "       %s compare OLD NEW [--threshold=PCT] "
          "[--min-latency-ms=MS] [--gate-on-metrics]\n"
          "       %s --selftest\n",
          Argv0, Argv0, Argv0);
  return 2;
}

/// Prints one config object's gated scalars as an indented line.
void printConfig(const char *Name, const JsonValue &C) {
  printf("    %-10s cycles %12.0f  compile %9.3f ms  size %8.0f\n", Name,
         C.getNumber("dynamic_cycles"), C.getNumber("compile_time_ms"),
         C.getNumber("code_size"));
}

int cmdReport(const std::string &Path) {
  std::string Text, Error;
  if (!readFileToString(Path, Text, &Error)) {
    fprintf(stderr, "dbds-stats: %s\n", Error.c_str());
    return 2;
  }
  JsonValue Doc;
  if (!JsonValue::parse(Text, Doc, &Error)) {
    fprintf(stderr, "dbds-stats: %s: %s\n", Path.c_str(), Error.c_str());
    return 2;
  }
  const JsonValue *Schema = Doc.get("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "dbds-bench-report") {
    fprintf(stderr, "dbds-stats: %s is not a dbds-bench-report\n",
            Path.c_str());
    return 2;
  }
  const JsonValue *SuiteName = Doc.get("suite");
  printf("suite %s (schema v%.0f)\n",
         SuiteName && SuiteName->isString() ? SuiteName->asString().c_str()
                                            : "?",
         Doc.getNumber("version"));

  if (const JsonValue *Benches = Doc.get("benchmarks")) {
    for (size_t I = 0; I != Benches->size(); ++I) {
      const JsonValue *B = Benches->at(I);
      if (!B)
        continue;
      const JsonValue *Name = B->get("name");
      printf("  %s\n", Name && Name->isString() ? Name->asString().c_str()
                                                : "?");
      if (const JsonValue *Configs = B->get("configs"))
        for (const char *C : {"baseline", "dbds", "dupalot"})
          if (const JsonValue *Config = Configs->get(C))
            printConfig(C, *Config);
    }
  }

  if (const JsonValue *M = Doc.get("metrics")) {
    printf("  metrics:\n");
    printf("    %-40s %-13s %8s %12s %12s %12s\n", "histogram", "unit",
           "count", "p50", "p90", "p99");
    for (const auto &[Name, H] : M->members()) {
      const JsonValue *Unit = H.get("unit");
      printf("    %-40s %-13s %8.0f %12.1f %12.1f %12.1f\n", Name.c_str(),
             Unit && Unit->isString() ? Unit->asString().c_str() : "?",
             H.getNumber("count"), H.getNumber("p50"), H.getNumber("p90"),
             H.getNumber("p99"));
    }
  }
  return 0;
}

int cmdCompare(const std::string &OldPath, const std::string &NewPath,
               const BenchCompareOptions &Opts) {
  BenchCompareResult R = compareBenchReportFiles(OldPath, NewPath, Opts);
  printf("%s", R.render().c_str());
  if (!R.Ok)
    return 2;
  return R.Regressions != 0 ? 1 : 0;
}

/// Builds a minimal synthetic report: one benchmark with the given dbds
/// compile time, plus one deterministic-class metric histogram.
std::string syntheticReport(double CompileMs, double MetricP50) {
  char Buf[1024];
  snprintf(
      Buf, sizeof(Buf),
      "{\"schema\":\"dbds-bench-report\",\"version\":2,\"suite\":\"self\","
      "\"benchmarks\":[{\"name\":\"bench0\",\"configs\":{"
      "\"baseline\":{\"dynamic_cycles\":1000,\"compile_time_ms\":5,"
      "\"code_size\":100},"
      "\"dbds\":{\"dynamic_cycles\":900,\"compile_time_ms\":%.3f,"
      "\"code_size\":120}}}],"
      "\"metrics\":{\"compile_service.ir_growth_pct\":{\"unit\":\"percent\","
      "\"class\":\"deterministic\",\"count\":5,\"p50\":%.3f,\"p99\":%.3f}}}",
      CompileMs, MetricP50, MetricP50);
  return Buf;
}

#define SELFTEST_CHECK(COND, WHAT)                                             \
  do {                                                                         \
    if (!(COND)) {                                                             \
      fprintf(stderr, "selftest FAILED: %s\n", WHAT);                          \
      return 1;                                                                \
    }                                                                          \
  } while (0)

int selftest() {
  BenchCompareOptions Opts; // 10% threshold, 1ms noise floor

  // Identical reports: zero regressions.
  std::string Base = syntheticReport(/*CompileMs=*/10.0, /*MetricP50=*/40.0);
  BenchCompareResult Same = compareBenchReports(Base, Base, Opts);
  SELFTEST_CHECK(Same.Ok && Same.Regressions == 0,
                 "identical reports must compare clean");
  SELFTEST_CHECK(Same.Compared != 0, "identical reports must be compared");

  // +15% dbds compile time: caught at 10%, tolerated at 20%.
  std::string Slower = syntheticReport(11.5, 40.0);
  BenchCompareResult Caught = compareBenchReports(Base, Slower, Opts);
  SELFTEST_CHECK(Caught.Ok && Caught.Regressions == 1,
                 "+15%% latency must regress at a 10%% threshold");
  BenchCompareOptions Loose = Opts;
  Loose.ThresholdPct = 20.0;
  BenchCompareResult Tolerated = compareBenchReports(Base, Slower, Loose);
  SELFTEST_CHECK(Tolerated.Ok && Tolerated.Regressions == 0,
                 "+15%% latency must pass at a 20%% threshold");

  // Deterministic-class metric drift always gates (no --gate-on-metrics
  // needed); +50% on a deterministic p50/p99 is two regressions.
  std::string Grown = syntheticReport(10.0, 60.0);
  BenchCompareResult MetricGate = compareBenchReports(Base, Grown, Opts);
  SELFTEST_CHECK(MetricGate.Ok && MetricGate.Regressions == 2,
                 "deterministic metric drift must gate");

  // Sub-noise-floor latencies never gate.
  std::string FastOld = syntheticReport(0.050, 40.0);
  std::string FastNew = syntheticReport(0.090, 40.0);
  BenchCompareResult Noise = compareBenchReports(FastOld, FastNew, Opts);
  SELFTEST_CHECK(Noise.Ok && Noise.Regressions == 0,
                 "latencies under the noise floor must not gate");

  // Malformed input fails with Ok=false, never a false verdict.
  BenchCompareResult Bad = compareBenchReports("{not json", Base, Opts);
  SELFTEST_CHECK(!Bad.Ok, "malformed JSON must fail the compare");
  BenchCompareResult WrongSchema =
      compareBenchReports("{\"schema\":\"other\"}", Base, Opts);
  SELFTEST_CHECK(!WrongSchema.Ok, "wrong schema must fail the compare");

  // Histogram percentile sanity on the library itself: 1..100 recorded
  // once each puts p50 near the middle and p99 near the top, and merge
  // equals record-all.
  Histogram H, Lo, Hi;
  for (uint64_t V = 1; V <= 100; ++V) {
    H.record(V);
    (V <= 50 ? Lo : Hi).record(V);
  }
  Lo.merge(Hi);
  SELFTEST_CHECK(Lo.count() == H.count() && Lo.sum() == H.sum(),
                 "merge must equal record-all");
  SELFTEST_CHECK(H.percentile(50) >= 32 && H.percentile(50) <= 64,
                 "p50 of 1..100 must land in its log2 bucket");
  SELFTEST_CHECK(H.percentile(99) > H.percentile(50),
                 "percentiles must be monotone");

  printf("dbds-stats selftest: all checks passed\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc >= 2 && strcmp(argv[1], "--selftest") == 0)
    return selftest();
  if (argc >= 3 && strcmp(argv[1], "report") == 0)
    return cmdReport(argv[2]);
  if (argc >= 4 && strcmp(argv[1], "compare") == 0) {
    BenchCompareOptions Opts;
    for (int I = 4; I < argc; ++I) {
      const char *Arg = argv[I];
      if (strncmp(Arg, "--threshold=", 12) == 0) {
        Opts.ThresholdPct = strtod(Arg + 12, nullptr);
      } else if (strncmp(Arg, "--min-latency-ms=", 17) == 0) {
        Opts.MinLatencyMs = strtod(Arg + 17, nullptr);
      } else if (strcmp(Arg, "--gate-on-metrics") == 0) {
        Opts.GateOnMetrics = true;
      } else {
        return usage(argv[0]);
      }
    }
    return cmdCompare(argv[2], argv[3], Opts);
  }
  return usage(argv[0]);
}
