//===- examples/irtool.cpp - Textual IR optimizer driver -------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the textual IR format:
//
//   irtool <file.ir> [--config=baseline|dbds|dupalot] [--candidates]
//          [--run f:arg1,arg2,...] [--dot] [--fail-fast]
//
// Parses the module, optionally prints the simulation tier's candidate
// list, optimizes every function under the chosen configuration, prints
// the result, and optionally interprets a function on given arguments.
// `--config=baseline` runs only the standard cleanup pipeline.
//
// Phases run transactionally: a phase whose output fails verification is
// rolled back and quarantined, and compilation continues. `--fail-fast`
// restores the old abort-on-first-failure behavior for debugging.
//
//===----------------------------------------------------------------------===//

#include "analysis/DotExport.h"
#include "support/Diagnostics.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dbds;

namespace {

std::string readFile(const char *Path) {
  FILE *File = fopen(Path, "rb");
  if (!File)
    return "";
  std::string Content;
  char Buffer[4096];
  size_t Read;
  while ((Read = fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Content.append(Buffer, Read);
  fclose(File);
  return Content;
}

int usage(const char *Prog) {
  fprintf(stderr,
          "usage: %s <file.ir> [--config=baseline|dbds|dupalot] "
          "[--candidates] [--run func:arg1,arg2,...] [--fail-fast]\n",
          Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);

  const char *Path = nullptr;
  std::string ConfigName = "dbds";
  bool ShowCandidates = false;
  bool EmitDot = false;
  bool FailFast = false;
  std::string RunSpec;
  for (int I = 1; I != Argc; ++I) {
    if (strncmp(Argv[I], "--config=", 9) == 0)
      ConfigName = Argv[I] + 9;
    else if (strcmp(Argv[I], "--candidates") == 0)
      ShowCandidates = true;
    else if (strcmp(Argv[I], "--dot") == 0)
      EmitDot = true;
    else if (strcmp(Argv[I], "--fail-fast") == 0)
      FailFast = true;
    else if (strncmp(Argv[I], "--run", 5) == 0 && I + 1 < Argc &&
             Argv[I][5] == '\0')
      RunSpec = Argv[++I];
    else if (strncmp(Argv[I], "--run=", 6) == 0)
      RunSpec = Argv[I] + 6;
    else if (Argv[I][0] != '-')
      Path = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (!Path)
    return usage(Argv[0]);

  std::string Source = readFile(Path);
  if (Source.empty()) {
    fprintf(stderr, "error: cannot read '%s'\n", Path);
    return 1;
  }
  ParseResult R = parseModule(Source);
  if (!R) {
    fprintf(stderr, "%s: parse error: %s\n", Path, R.Error.c_str());
    return 1;
  }

  DiagnosticEngine Diags;
  for (Function *F : R.Mod->functions()) {
    if (ShowCandidates) {
      SimulationStats Stats;
      auto Candidates = simulateDuplications(*F, R.Mod.get(), &Stats);
      printf("# @%s: %u pairs simulated, %zu beneficial\n",
             F->getName().c_str(), Stats.PairsSimulated, Candidates.size());
      for (const auto &C : Candidates)
        printf("#   merge b%u <- pred b%u: benefit %.1f cycles, "
               "probability %.3f, cost %lld\n",
               C.MergeId, C.PredId, C.CyclesSaved, C.Probability,
               static_cast<long long>(C.SizeCost));
    }
    PhaseManager PM = PhaseManager::standardPipeline(true, R.Mod.get());
    PM.setFailFast(FailFast);
    PM.setDiagnostics(&Diags);
    PM.run(*F);
    if (ConfigName != "baseline") {
      DBDSConfig Config;
      Config.ClassTable = R.Mod.get();
      Config.UseTradeoff = ConfigName != "dupalot";
      Config.FailFast = FailFast;
      Config.Diags = &Diags;
      DBDSResult Result = runDBDS(*F, Config);
      printf("# @%s: %u duplications (%s)\n", F->getName().c_str(),
             Result.DuplicationsPerformed, ConfigName.c_str());
    }
  }
  if (!Diags.empty())
    fprintf(stderr, "%s", Diags.render().c_str());
  if (EmitDot) {
    DotOptions Options;
    Options.ShowDominatorTree = true;
    for (Function *F : R.Mod->functions())
      printf("%s", exportDot(*F, Options).c_str());
  } else {
    printf("%s", printModule(R.Mod.get()).c_str());
  }

  if (!RunSpec.empty()) {
    size_t Colon = RunSpec.find(':');
    std::string Name = RunSpec.substr(0, Colon);
    Function *F = R.Mod->getFunction(Name);
    if (!F) {
      fprintf(stderr, "error: no function '@%s'\n", Name.c_str());
      return 1;
    }
    std::vector<int64_t> Args;
    if (Colon != std::string::npos) {
      std::string Rest = RunSpec.substr(Colon + 1);
      size_t Pos = 0;
      while (Pos < Rest.size()) {
        size_t Comma = Rest.find(',', Pos);
        Args.push_back(atoll(Rest.substr(Pos, Comma - Pos).c_str()));
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    }
    Interpreter Interp(*R.Mod);
    ExecutionResult E = Interp.run(*F, ArrayRef<int64_t>(Args));
    if (!E.Ok) {
      fprintf(stderr, "error: execution did not terminate\n");
      return 1;
    }
    printf("# @%s(...) = %lld  [%llu model cycles, %llu instructions]\n",
           Name.c_str(), static_cast<long long>(E.Result.Scalar),
           static_cast<unsigned long long>(E.DynamicCycles),
           static_cast<unsigned long long>(E.Steps));
  }
  return 0;
}
