//===- examples/bytecode_jit.cpp - The full §5.1 pipeline ------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's system overview (§5.1) in one example: "Graal translates
// Java bytecode to machine code in multiple steps. From the parsed
// bytecodes Graal IR is generated. The front end performs
// platform-independent high-level optimizations..."
//
// Here: stack bytecode for a boxing-heavy loop -> SSA IR (front end) ->
// interpreter profiling (HotSpot's role) -> DBDS -> measured speedup on
// the cost-model interpreter (the machine). The loop boxes a value on one
// path only — the Listing 3 pattern — so DBDS unboxes it via duplication
// + partial escape analysis.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "frontend/Translator.h"
#include "ir/Printer.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace dbds;

/// sumBoxed(n, threshold): for i in [0, n): box i if i < threshold, else
/// reuse a shared box; accumulate the boxed value.
static const char *BytecodeSource = R"(
class 1

bcfunc @sumBoxed(2) locals=5 {
  # locals: 0=n 1=threshold 2=i 3=acc 4=sharedBox
  new 0
  store 4
  iconst 0
  store 2
  iconst 0
  store 3
Lhead:
  load 2
  load 0
  cmp lt
  brfalse Ldone
  load 2
  load 1
  cmp lt
  brfalse Lshared
  new 0          # box i freshly (escapes only through the join)
  dup
  load 2
  putfield 0
  goto Lmerge
Lshared:
  load 4
  dup
  load 2
  putfield 0
Lmerge:
  getfield 0     # unbox
  load 3
  add
  store 3
  load 2
  iconst 1
  add
  store 2
  goto Lhead
Ldone:
  load 3
  ret
}
)";

int main() {
  // ---- Front end: bytecode -> SSA IR (paper §5.1) ------------------------
  BcParseResult BC = assembleBytecode(BytecodeSource);
  if (!BC) {
    fprintf(stderr, "assembler error: %s\n", BC.Error.c_str());
    return 1;
  }
  printf("== Bytecode ==\n%s\n", disassemble(BC.Mod->Functions[0]).c_str());

  TranslationResult IR = translateBytecode(*BC.Mod);
  if (!IR) {
    fprintf(stderr, "translation error: %s\n", IR.Error.c_str());
    return 1;
  }
  Function *F = IR.Mod->getFunction("sumBoxed");
  printf("== SSA IR (as parsed from bytecode) ==\n%s\n",
         printFunction(F).c_str());

  // ---- Tier 0: profile in the interpreter (HotSpot's role) ---------------
  Interpreter Interp(*IR.Mod);
  ProfileSummary Profile;
  uint64_t InterpretedCycles = 0;
  for (int64_t N : {100, 200}) {
    Interp.reset();
    ExecutionResult R =
        Interp.run(*F, ArrayRef<int64_t>({N, N / 2}), 1u << 24, &Profile);
    InterpretedCycles += R.DynamicCycles;
  }
  applyProfile(*F, Profile);

  // ---- Compile: cleanup pipeline + DBDS ----------------------------------
  PhaseManager PM = PhaseManager::standardPipeline(true, IR.Mod.get());
  PM.run(*F);
  Interp.reset();
  uint64_t BaselineCycles =
      Interp.run(*F, ArrayRef<int64_t>({300, 150})).DynamicCycles;

  DBDSConfig Config;
  Config.ClassTable = IR.Mod.get();
  DBDSResult R = runDBDS(*F, Config);
  printf("DBDS: %u duplications over %u iteration(s)\n\n",
         R.DuplicationsPerformed, R.IterationsRun);
  printf("== After DBDS ==\n%s\n", printFunction(F).c_str());

  // ---- Run the "compiled" code -------------------------------------------
  Interp.reset();
  ExecutionResult Opt = Interp.run(*F, ArrayRef<int64_t>({300, 150}));
  printf("sumBoxed(300, 150) = %lld (expect %lld)\n",
         static_cast<long long>(Opt.Result.Scalar),
         static_cast<long long>(299 * 300 / 2));
  printf("cost-model cycles: baseline %llu -> DBDS %llu (%.1f%% faster)\n",
         static_cast<unsigned long long>(BaselineCycles),
         static_cast<unsigned long long>(Opt.DynamicCycles),
         (static_cast<double>(BaselineCycles) /
              static_cast<double>(Opt.DynamicCycles) -
          1.0) *
             100.0);
  return 0;
}
