//===- examples/read_elimination.cpp - Listing 5 -> Listing 6 -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Listing 5: `return a.x` after the merge is only *partially*
// redundant — the true branch already read a.x (Read1), the false branch
// did not. Duplicating Read2 into both predecessors makes it fully
// redundant in the true branch (Listing 6), where read elimination
// removes it.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace dbds;

static const char *Listing5 = R"(
class A 2

func @foo(obj, int) {
b0:
  %a = param 0
  %i = param 1
  %zero = const 0
  %c = cmp gt %i, %zero
  if %c, b1, b2 !0.5
b1:
  %r1 = load %a, 0
  store %a, 1, %r1
  jump b3
b2:
  store %a, 1, %zero
  jump b3
b3:
  %r2 = load %a, 0
  ret %r2
}
)";

int main() {
  ParseResult R = parseModule(Listing5);
  if (!R) {
    fprintf(stderr, "parse error: %s\n", R.Error.c_str());
    return 1;
  }
  Function *F = R.Mod->functions()[0];
  printf("== Listing 5 (Read2 is partially redundant) ==\n%s\n",
         printFunction(F).c_str());

  DBDSConfig Config;
  Config.ClassTable = R.Mod.get();
  runDBDS(*F, Config);
  printf("== Listing 6 (the hot path reuses Read1's value) ==\n%s\n",
         printFunction(F).c_str());

  Interpreter Interp(*R.Mod);
  RuntimeValue Obj = Interp.allocate(0);
  Interp.writeField(Obj, 0, 7);
  RuntimeValue Args[2] = {Obj, RuntimeValue::ofInt(5)};
  ExecutionResult E = Interp.run(*F, ArrayRef<RuntimeValue>(Args, 2));
  printf("foo(a{x=7}, 5) = %lld (expect 7); a.s = %lld (expect 7)\n",
         static_cast<long long>(E.Result.Scalar),
         static_cast<long long>(Interp.readField(Obj, 1)));
  return 0;
}
