//===- examples/strength_reduction.cpp - Figure 3's program f -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's running example (Figure 3): `x / phi` where one predecessor
// feeds the constant 2 into the phi. During the duplication simulation
// traversal the division's applicability check sees `x / 2` through the
// synonym map, the strength-reduction action step returns `x >> 1`, and
// the static cost model prices the difference: 32 cycles - 1 cycle =
// CS 31. This example prints the simulation's verdict and the optimized
// program (Figure 3e).
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace dbds;

static const char *Figure3 = R"(
func @f(int, int, int) {
b0:
  %a = param 0
  %b = param 1
  %xr = param 2
  %mask = const 1023
  %x = and %xr, %mask
  %c = cmp gt %a, %b
  if %c, b1, b2 !0.5
b1:
  %one = const 1
  %y = add %x, %one
  jump b3
b2:
  %two = const 2
  jump b3
b3:
  %phi = phi int [%y, b1], [%two, b2]
  %div = div %x, %phi
  ret %div
}
)";

int main() {
  ParseResult R = parseModule(Figure3);
  if (!R) {
    fprintf(stderr, "parse error: %s\n", R.Error.c_str());
    return 1;
  }
  Function *F = R.Mod->functions()[0];
  printf("== Figure 3a: program f ==\n%s\n", printFunction(F).c_str());

  printf("node cost model: div = %u cycles, shr = %u cycle\n\n",
         opcodeCycles(Opcode::Div), opcodeCycles(Opcode::Shr));

  SimulationStats Stats;
  auto Candidates = simulateDuplications(*F, R.Mod.get(), &Stats);
  for (const auto &C : Candidates)
    printf("simulation: duplicating b%u into b%u saves %.0f cycles "
           "(paper: CS = 32 - 1 = 31)\n",
           C.MergeId, C.PredId, C.CyclesSaved);

  DBDSConfig Config;
  Config.ClassTable = R.Mod.get();
  runDBDS(*F, Config);
  printf("\n== Figure 3e: after duplication, the constant path shifts "
         "==\n%s\n",
         printFunction(F).c_str());

  Interpreter Interp(*R.Mod);
  auto f = [&](int64_t A, int64_t B, int64_t X) {
    return Interp.run(*F, ArrayRef<int64_t>({A, B, X})).Result.Scalar;
  };
  printf("f(1, 2, 100) = %lld (expect %lld)\n",
         static_cast<long long>(f(1, 2, 100)),
         static_cast<long long>(100 / 2));
  printf("f(5, 2, 100) = %lld (expect %lld)\n",
         static_cast<long long>(f(5, 2, 100)),
         static_cast<long long>(100 / 101));
  return 0;
}
