//===- examples/quickstart.cpp - Figure 1 end to end -----------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 1 in five minutes: build
//
//   int foo(int x) {
//     int phi;
//     if (x > 0) phi = x; else phi = 0;
//     return 2 + phi;
//   }
//
// with the IRBuilder, run the DBDS optimization, and watch the constant
// predecessor's `2 + phi` fold to `2` (Figure 1c). Demonstrates the core
// public API: IRBuilder, Interpreter, simulateDuplications, runDBDS.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "dbds/Simulator.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace dbds;

int main() {
  // -- Build Figure 1a ----------------------------------------------------
  Module M;
  Function *F = M.addFunction(std::make_unique<Function>("foo", 1));
  IRBuilder B(*F);

  Block *Entry = B.createBlock();
  Block *Then = B.createBlock();
  Block *Else = B.createBlock();
  Block *Merge = B.createBlock();

  B.setBlock(Entry);
  Instruction *X = B.param(0);
  Instruction *Cond = B.cmp(Predicate::GT, X, B.constInt(0));
  B.branch(Cond, Then, Else, /*TrueProbability=*/0.5);

  B.setBlock(Then);
  B.jump(Merge);
  B.setBlock(Else);
  B.jump(Merge);

  B.setBlock(Merge);
  PhiInst *Phi = B.phi(Type::Int);
  Phi->appendInput(X);            // from Then
  Phi->appendInput(B.constInt(0)); // from Else
  Instruction *Sum = B.add(B.constInt(2), Phi);
  B.ret(Sum);

  printf("== Figure 1a (initial program) ==\n%s\n",
         printFunction(F).c_str());

  // -- Simulation tier: what would duplication enable? ---------------------
  SimulationStats Stats;
  auto Candidates = simulateDuplications(*F, &M, &Stats);
  printf("simulated %u predecessor->merge pairs, %zu beneficial:\n",
         Stats.PairsSimulated, Candidates.size());
  for (const auto &C : Candidates)
    printf("  duplicate b%u into b%u: %.0f cycles saved, %lld size cost\n",
           C.MergeId, C.PredId, C.CyclesSaved,
           static_cast<long long>(C.SizeCost));

  // -- Full three-tier DBDS run --------------------------------------------
  Interpreter Interp(M);
  uint64_t ColdCyclesBefore =
      Interp.run(*F, ArrayRef<int64_t>({-3})).DynamicCycles;

  DBDSConfig Config;
  Config.ClassTable = &M;
  DBDSResult R = runDBDS(*F, Config);
  printf("\nDBDS performed %u duplication(s) in %u iteration(s)\n",
         R.DuplicationsPerformed, R.IterationsRun);

  printf("\n== After DBDS (Figure 1c: the x<=0 path returns 2 "
         "directly) ==\n%s\n",
         printFunction(F).c_str());

  // -- Verify semantics and the speedup ------------------------------------
  printf("foo(5)  = %lld (expect 7)\n",
         static_cast<long long>(
             Interp.run(*F, ArrayRef<int64_t>({5})).Result.Scalar));
  ExecutionResult Cold = Interp.run(*F, ArrayRef<int64_t>({-3}));
  printf("foo(-3) = %lld (expect 2), dynamic cycles %llu -> %llu\n",
         static_cast<long long>(Cold.Result.Scalar),
         static_cast<unsigned long long>(ColdCyclesBefore),
         static_cast<unsigned long long>(Cold.DynamicCycles));
  return 0;
}
