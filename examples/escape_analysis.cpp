//===- examples/escape_analysis.cpp - Listing 3 -> Listing 4 --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Listing 3: an allocation escapes only through a phi —
//
//   int foo(A a) {
//     A p = (a == null) ? new A(0) : a;
//     return p.x;
//   }
//
// Duplicating the merge into the allocating predecessor removes the phi
// escape; read elimination forwards the constructor store into the load,
// and allocation sinking (scalar replacement) deletes the now-unused
// `new A` — Listing 4. The example asserts that no allocation remains.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace dbds;

static const char *Listing3 = R"(
class A 1

func @foo(obj, int) {
b0:
  %a = param 0
  %x = param 1
  %null = const null
  %c = cmp eq %a, %null
  if %c, b1, b2 !0.5
b1:
  %new = new 0
  store %new, 0, %x
  jump b3
b2:
  jump b3
b3:
  %p = phi obj [%new, b1], [%a, b2]
  %f = load %p, 0
  ret %f
}
)";

int main() {
  ParseResult R = parseModule(Listing3);
  if (!R) {
    fprintf(stderr, "parse error: %s\n", R.Error.c_str());
    return 1;
  }
  Function *F = R.Mod->functions()[0];
  printf("== Listing 3 (allocation escapes through the phi) ==\n%s\n",
         printFunction(F).c_str());

  DBDSConfig Config;
  Config.ClassTable = R.Mod.get();
  runDBDS(*F, Config);
  printf("== Listing 4 (allocation scalar-replaced) ==\n%s\n",
         printFunction(F).c_str());

  unsigned Allocations = 0;
  for (Block *B : F->blocks())
    for (Instruction *I : *B)
      Allocations += I->getOpcode() == Opcode::New ? 1 : 0;
  printf("allocations remaining: %u (expect 0)\n\n", Allocations);

  Interpreter Interp(*R.Mod);
  RuntimeValue NullCase[2] = {RuntimeValue::null(), RuntimeValue::ofInt(42)};
  printf("foo(null, 42) = %lld (expect 42: the scalar-replaced field)\n",
         static_cast<long long>(
             Interp.run(*F, ArrayRef<RuntimeValue>(NullCase, 2))
                 .Result.Scalar));
  RuntimeValue Obj = Interp.allocate(0);
  Interp.writeField(Obj, 0, 99);
  RuntimeValue ObjCase[2] = {Obj, RuntimeValue::ofInt(1)};
  printf("foo(a, _)     = %lld (expect 99: a.x)\n",
         static_cast<long long>(
             Interp.run(*F, ArrayRef<RuntimeValue>(ObjCase, 2))
                 .Result.Scalar));
  return 0;
}
