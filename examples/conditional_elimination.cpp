//===- examples/conditional_elimination.cpp - Listing 1 -> Listing 2 ------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Listing 1:
//
//   int foo(int i) {
//     int p;
//     if (i > 0) p = i; else p = 13;
//     if (p > 12) return 12;
//     return i;
//   }
//
// On the else path, p == 13, so `p > 12` is provably true — but only
// duplication makes the comparison local to that path. After DBDS the
// function matches Listing 2: the else path returns 12 unconditionally.
// This example builds the program from its textual IR form.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace dbds;

static const char *Listing1 = R"(
func @foo(int) {
b0:
  %i = param 0
  %zero = const 0
  %c = cmp gt %i, %zero
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  %c13 = const 13
  jump b3
b3:
  %p = phi int [%i, b1], [%c13, b2]
  %c12 = const 12
  %c2 = cmp gt %p, %c12
  if %c2, b4, b5 !0.5
b4:
  ret %c12
b5:
  ret %i
}
)";

int main() {
  ParseResult R = parseModule(Listing1);
  if (!R) {
    fprintf(stderr, "parse error: %s\n", R.Error.c_str());
    return 1;
  }
  Function *F = R.Mod->functions()[0];
  printf("== Listing 1 ==\n%s\n", printFunction(F).c_str());

  DBDSConfig Config;
  Config.ClassTable = R.Mod.get();
  DBDSResult Result = runDBDS(*F, Config);
  printf("DBDS performed %u duplication(s)\n\n",
         Result.DuplicationsPerformed);
  printf("== Listing 2 (the i<=0 path no longer tests p > 12) ==\n%s\n",
         printFunction(F).c_str());

  Interpreter Interp(*R.Mod);
  for (int64_t I : {20, 5, -7})
    printf("foo(%lld) = %lld\n", static_cast<long long>(I),
           static_cast<long long>(
               Interp.run(*F, ArrayRef<int64_t>({I})).Result.Scalar));
  return 0;
}
