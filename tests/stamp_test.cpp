//===- tests/stamp_test.cpp - Stamp lattice correctness ---------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests plus a sampling-based soundness sweep: for random operand
// ranges, every concrete evaluation must land inside the transfer
// function's result range, every foldCompare verdict must match concrete
// evaluation, and every refineByCompare result must still contain all
// values satisfying the assumed condition. This ties the stamp lattice to
// ir/Semantics.h, the single source of evaluation truth.
//
//===----------------------------------------------------------------------===//

#include "ir/Semantics.h"
#include "analysis/Stamp.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

// ---- Unit tests -----------------------------------------------------------

TEST(StampTest, MeetIntersectsRanges) {
  Stamp A = Stamp::range(0, 10);
  Stamp B = Stamp::range(5, 20);
  auto M = A.meet(B);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->lo(), 5);
  EXPECT_EQ(M->hi(), 10);
  EXPECT_FALSE(Stamp::range(0, 3).meet(Stamp::range(5, 9)));
}

TEST(StampTest, JoinUnionsRanges) {
  Stamp J = Stamp::range(0, 3).join(Stamp::range(10, 12));
  EXPECT_EQ(J.lo(), 0);
  EXPECT_EQ(J.hi(), 12);
}

TEST(StampTest, ObjectNullness) {
  EXPECT_TRUE(Stamp::definitelyNull().isNull());
  EXPECT_TRUE(Stamp::nonNull().isNonNull());
  EXPECT_FALSE(Stamp::maybeNull().isNull());
  EXPECT_FALSE(Stamp::definitelyNull().meet(Stamp::nonNull()));
  auto M = Stamp::maybeNull().meet(Stamp::nonNull());
  ASSERT_TRUE(M);
  EXPECT_TRUE(M->isNonNull());
  EXPECT_TRUE(
      Stamp::definitelyNull().join(Stamp::nonNull()) == Stamp::maybeNull());
}

TEST(StampTest, ExactConstants) {
  EXPECT_EQ(*Stamp::exact(7).asConstant(), 7);
  EXPECT_FALSE(Stamp::range(1, 2).asConstant());
}

TEST(StampTest, AndWithNonNegativeMaskBoundsResult) {
  // The Figure 3 enabling fact: (anything & 1023) is in [0, 1023].
  Stamp Masked =
      binaryStamp(Opcode::And, Stamp::top(Type::Int), Stamp::exact(1023));
  EXPECT_EQ(Masked.lo(), 0);
  EXPECT_EQ(Masked.hi(), 1023);
}

TEST(StampTest, AddSaturatesToTopOnOverflow) {
  Stamp S = binaryStamp(Opcode::Add, Stamp::exact(INT64_MAX),
                        Stamp::exact(INT64_MAX));
  EXPECT_EQ(S.lo(), INT64_MIN);
  EXPECT_EQ(S.hi(), INT64_MAX);
}

TEST(StampTest, CompareFoldsDisjointRanges) {
  EXPECT_EQ(*foldCompare(Predicate::LT, Stamp::range(0, 5),
                         Stamp::range(10, 20)),
            true);
  EXPECT_EQ(*foldCompare(Predicate::GT, Stamp::range(0, 5),
                         Stamp::range(10, 20)),
            false);
  EXPECT_FALSE(
      foldCompare(Predicate::LT, Stamp::range(0, 15), Stamp::range(10, 20)));
  // Listing 1's fold: 13 > 12.
  EXPECT_EQ(*foldCompare(Predicate::GT, Stamp::exact(13), Stamp::exact(12)),
            true);
  // And the true branch: [0,7] > 12 is false.
  EXPECT_EQ(
      *foldCompare(Predicate::GT, Stamp::range(0, 7), Stamp::exact(12)),
      false);
}

TEST(StampTest, RefineByCompareNarrows) {
  // Assume x > 0 on top: x in [1, max].
  auto R = refineByCompare(Predicate::GT, Stamp::top(Type::Int),
                           Stamp::exact(0), /*Holds=*/true);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->lo(), 1);
  // Assume x > 0 is false: x in [min, 0].
  auto NR = refineByCompare(Predicate::GT, Stamp::top(Type::Int),
                            Stamp::exact(0), /*Holds=*/false);
  ASSERT_TRUE(NR);
  EXPECT_EQ(NR->hi(), 0);
  // Contradiction: x in [5,9] assumed < 2.
  EXPECT_FALSE(refineByCompare(Predicate::LT, Stamp::range(5, 9),
                               Stamp::exact(2), true));
}

TEST(StampTest, RefineObjectNullness) {
  auto R = refineByCompare(Predicate::EQ, Stamp::maybeNull(),
                           Stamp::definitelyNull(), true);
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->isNull());
  auto NR = refineByCompare(Predicate::EQ, Stamp::maybeNull(),
                            Stamp::definitelyNull(), false);
  ASSERT_TRUE(NR);
  EXPECT_TRUE(NR->isNonNull());
}

// ---- Sampling soundness sweep ----------------------------------------------

struct OpParam {
  Opcode Op;
  friend std::ostream &operator<<(std::ostream &OS, const OpParam &P) {
    return OS << opcodeMnemonic(P.Op);
  }
};

class StampSoundness : public ::testing::TestWithParam<OpParam> {};

int64_t sampleIn(RNG &R, int64_t Lo, int64_t Hi) {
  // Bias toward the endpoints, where transfer-function bugs live.
  switch (R.nextBelow(4)) {
  case 0:
    return Lo;
  case 1:
    return Hi;
  default:
    return R.nextRange(Lo, Hi);
  }
}

Stamp randomRange(RNG &R) {
  // Mix small ranges, wide ranges, and extreme ranges.
  switch (R.nextBelow(5)) {
  case 0:
    return Stamp::exact(R.nextRange(-100, 100));
  case 1: {
    int64_t Lo = R.nextRange(-1000, 1000);
    return Stamp::range(Lo, Lo + R.nextRange(0, 50));
  }
  case 2:
    return Stamp::range(INT64_MIN, R.nextRange(-5, 5));
  case 3:
    return Stamp::range(R.nextRange(-5, 5), INT64_MAX);
  default:
    return Stamp::top(Type::Int);
  }
}

TEST_P(StampSoundness, BinaryTransferContainsAllResults) {
  Opcode Op = GetParam().Op;
  RNG R(static_cast<uint64_t>(Op) * 7919 + 1);
  for (int Trial = 0; Trial != 300; ++Trial) {
    Stamp LHS = randomRange(R), RHS = randomRange(R);
    Stamp Result = binaryStamp(Op, LHS, RHS);
    for (int Sample = 0; Sample != 8; ++Sample) {
      int64_t A = sampleIn(R, LHS.lo(), LHS.hi());
      int64_t B = sampleIn(R, RHS.lo(), RHS.hi());
      int64_t V = evalBinary(Op, A, B);
      ASSERT_GE(V, Result.lo())
          << opcodeMnemonic(Op) << "(" << A << ", " << B << ")";
      ASSERT_LE(V, Result.hi())
          << opcodeMnemonic(Op) << "(" << A << ", " << B << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, StampSoundness,
    ::testing::Values(OpParam{Opcode::Add}, OpParam{Opcode::Sub},
                      OpParam{Opcode::Mul}, OpParam{Opcode::Div},
                      OpParam{Opcode::Rem}, OpParam{Opcode::And},
                      OpParam{Opcode::Or}, OpParam{Opcode::Xor},
                      OpParam{Opcode::Shl}, OpParam{Opcode::Shr}),
    [](const ::testing::TestParamInfo<OpParam> &Info) {
      return opcodeMnemonic(Info.param.Op);
    });

struct PredParam {
  Predicate Pred;
};

class CompareSoundness : public ::testing::TestWithParam<PredParam> {};

TEST_P(CompareSoundness, FoldAndRefineAgreeWithEvaluation) {
  Predicate Pred = GetParam().Pred;
  RNG R(static_cast<uint64_t>(Pred) * 104729 + 3);
  for (int Trial = 0; Trial != 400; ++Trial) {
    Stamp LHS = randomRange(R), RHS = randomRange(R);
    auto Folded = foldCompare(Pred, LHS, RHS);
    for (int Sample = 0; Sample != 8; ++Sample) {
      int64_t A = sampleIn(R, LHS.lo(), LHS.hi());
      int64_t B = sampleIn(R, RHS.lo(), RHS.hi());
      bool Concrete = evalCompare(Pred, A, B) != 0;
      if (Folded) {
        ASSERT_EQ(Concrete, *Folded)
            << predicateName(Pred) << "(" << A << ", " << B << ")";
      }
      // Refinement soundness: if the condition holds for (A, B), A must
      // be inside the refined stamp of the LHS.
      if (Concrete) {
        auto Refined = refineByCompare(Pred, LHS, RHS, true);
        ASSERT_TRUE(Refined);
        ASSERT_GE(A, Refined->lo());
        ASSERT_LE(A, Refined->hi());
      } else {
        auto Refined = refineByCompare(Pred, LHS, RHS, false);
        ASSERT_TRUE(Refined);
        ASSERT_GE(A, Refined->lo());
        ASSERT_LE(A, Refined->hi());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPredicates, CompareSoundness,
    ::testing::Values(PredParam{Predicate::EQ}, PredParam{Predicate::NE},
                      PredParam{Predicate::LT}, PredParam{Predicate::LE},
                      PredParam{Predicate::GT}, PredParam{Predicate::GE}),
    [](const ::testing::TestParamInfo<PredParam> &Info) {
      return predicateName(Info.param.Pred);
    });

TEST(StampSoundnessTest, UnaryTransferContainsAllResults) {
  RNG R(11);
  for (Opcode Op : {Opcode::Neg, Opcode::Not}) {
    for (int Trial = 0; Trial != 500; ++Trial) {
      Stamp In = randomRange(R);
      Stamp Result = unaryStamp(Op, In);
      int64_t A = sampleIn(R, In.lo(), In.hi());
      int64_t V = evalUnary(Op, A);
      ASSERT_GE(V, Result.lo()) << opcodeMnemonic(Op) << "(" << A << ")";
      ASSERT_LE(V, Result.hi()) << opcodeMnemonic(Op) << "(" << A << ")";
    }
  }
}

} // namespace
