//===- tests/PaperExamples.h - The paper's example programs -----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The running examples of the paper, in textual IR, shared by the unit,
/// integration, and property tests: Figure 1 (constant folding), Listing 1
/// (conditional elimination), Listing 3 (partial escape), Listing 5 (read
/// elimination), and Figure 3's program f (strength reduction).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TESTS_PAPEREXAMPLES_H
#define DBDS_TESTS_PAPEREXAMPLES_H

namespace dbds {
namespace paper {

/// Figure 1: int foo(int x) { int phi = x > 0 ? x : 0; return 2 + phi; }
inline const char *Figure1 = R"(
func @foo(int) {
b0:
  %p = param 0
  %zero = const 0
  %c = cmp gt %p, %zero
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%p, b1], [%zero, b2]
  %two = const 2
  %sum = add %two, %phi
  ret %sum
}
)";

/// Listing 1: p = i > 0 ? i : 13; if (p > 12) return 12; return i;
inline const char *Listing1 = R"(
func @foo(int) {
b0:
  %i = param 0
  %zero = const 0
  %c = cmp gt %i, %zero
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  %c13 = const 13
  jump b3
b3:
  %p = phi int [%i, b1], [%c13, b2]
  %c12 = const 12
  %c2 = cmp gt %p, %c12
  if %c2, b4, b5 !0.5
b4:
  ret %c12
b5:
  ret %i
}
)";

/// Listing 3: A p = (a == null) ? new A(0) : a; return p.x;
/// (class A with one field; field initialized to the second parameter to
/// make the store explicit.)
inline const char *Listing3 = R"(
class A 1

func @foo(obj, int) {
b0:
  %a = param 0
  %x = param 1
  %null = const null
  %c = cmp eq %a, %null
  if %c, b1, b2 !0.5
b1:
  %new = new 0
  store %new, 0, %x
  jump b3
b2:
  jump b3
b3:
  %p = phi obj [%new, b1], [%a, b2]
  %f = load %p, 0
  ret %f
}
)";

/// Listing 5: if (i > 0) { s = a.x; } else { s = 0; } return a.x;
/// ("s" is modeled as a second field of the object.)
inline const char *Listing5 = R"(
class A 2

func @foo(obj, int) {
b0:
  %a = param 0
  %i = param 1
  %zero = const 0
  %c = cmp gt %i, %zero
  if %c, b1, b2 !0.5
b1:
  %r1 = load %a, 0
  store %a, 1, %r1
  jump b3
b2:
  store %a, 1, %zero
  jump b3
b3:
  %r2 = load %a, 0
  ret %r2
}
)";

/// Figure 3's program f: return x / (a > b ? phi-input : 2). The paper's
/// division-by-phi with a constant 2 on one branch; the dividend is masked
/// non-negative so x / 2 -> x >> 1 is sound (CS = 32 - 1 = 31).
inline const char *Figure3 = R"(
func @f(int, int, int) {
b0:
  %a = param 0
  %b = param 1
  %xr = param 2
  %mask = const 1023
  %x = and %xr, %mask
  %c = cmp gt %a, %b
  if %c, b1, b2 !0.5
b1:
  %one = const 1
  %y = add %x, %one
  jump b3
b2:
  %two = const 2
  jump b3
b3:
  %phi = phi int [%y, b1], [%two, b2]
  %div = div %x, %phi
  ret %div
}
)";

} // namespace paper
} // namespace dbds

#endif // DBDS_TESTS_PAPEREXAMPLES_H
