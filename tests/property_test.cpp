//===- tests/property_test.cpp - Parameterized invariant sweeps ------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-based testing over the program generator: for a sweep of seeds
// and program shapes, every optimization configuration must
//
//   P1 keep the IR verifier-clean after every phase,
//   P2 preserve the observable result on every input,
//   P3 never increase dynamic cost-model cycles (monotone improvement),
//   P4 respect the code-size budget when the trade-off tier is on,
//   P5 simulate without mutating the IR.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Phase.h"
#include "support/StableHash.h"
#include "vm/Interpreter.h"
#include "workloads/CompileCache.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

struct SweepParam {
  uint64_t Seed;
  bool WrapInLoop;
  double Skew;
  double CallRate;

  friend std::ostream &operator<<(std::ostream &OS, const SweepParam &P) {
    return OS << "seed" << P.Seed << (P.WrapInLoop ? "_loop" : "_straight")
              << "_skew" << static_cast<int>(P.Skew * 100) << "_call"
              << static_cast<int>(P.CallRate * 100);
  }
};

class OptimizationProperties : public ::testing::TestWithParam<SweepParam> {
protected:
  GeneratorConfig makeConfig() const {
    const SweepParam &P = GetParam();
    GeneratorConfig Config;
    Config.Seed = P.Seed;
    Config.NumFunctions = 3;
    Config.SegmentsPerFunction = 5;
    Config.WrapInLoop = P.WrapInLoop;
    Config.BranchSkew = P.Skew;
    Config.CallRate = P.CallRate;
    return Config;
  }
};

/// Runs all eval inputs and returns (result vector, total cycles).
std::pair<std::vector<int64_t>, uint64_t>
evaluate(GeneratedWorkload &W, unsigned FIdx, Function &F) {
  std::vector<int64_t> Results;
  uint64_t Cycles = 0;
  Interpreter Interp(*W.Mod);
  for (const auto &Args : W.EvalInputs[FIdx]) {
    Interp.reset();
    ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24);
    EXPECT_TRUE(R.Ok) << "program did not terminate";
    Results.push_back(R.HasResult ? R.Result.Scalar : 0);
    Cycles += R.DynamicCycles;
  }
  return {Results, Cycles};
}

void profileFunction(GeneratedWorkload &W, unsigned FIdx, Function &F) {
  Interpreter Interp(*W.Mod);
  ProfileSummary Profile;
  for (const auto &Args : W.TrainInputs[FIdx]) {
    Interp.reset();
    Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24, &Profile);
  }
  applyProfile(F, Profile);
}

TEST_P(OptimizationProperties, StandardPipelinePreservesSemantics) {
  GeneratedWorkload W = generateWorkload(makeConfig());
  auto Functions = W.Mod->functions();
  for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
    Function &F = *Functions[FIdx];
    auto [Before, CyclesBefore] = evaluate(W, FIdx, F);
    profileFunction(W, FIdx, F);
    PhaseManager PM = PhaseManager::standardPipeline(true, W.Mod.get());
    PM.run(F);
    ASSERT_EQ(verifyFunction(F), ""); // P1
    auto [After, CyclesAfter] = evaluate(W, FIdx, F);
    EXPECT_EQ(Before, After);              // P2
    EXPECT_LE(CyclesAfter, CyclesBefore);  // P3
  }
}

TEST_P(OptimizationProperties, DBDSPreservesSemanticsAndImproves) {
  GeneratedWorkload W = generateWorkload(makeConfig());
  auto Functions = W.Mod->functions();
  for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
    Function &F = *Functions[FIdx];
    profileFunction(W, FIdx, F);
    PhaseManager PM = PhaseManager::standardPipeline(true, W.Mod.get());
    PM.run(F);
    auto [Before, CyclesBefore] = evaluate(W, FIdx, F);
    uint64_t SizeBefore = F.estimatedCodeSize();

    DBDSConfig Config;
    Config.ClassTable = W.Mod.get();
    runDBDS(F, Config);
    ASSERT_EQ(verifyFunction(F), ""); // P1
    auto [After, CyclesAfter] = evaluate(W, FIdx, F);
    EXPECT_EQ(Before, After);             // P2
    EXPECT_LE(CyclesAfter, CyclesBefore); // P3
    // P4: cleanup may shrink below the formal bound, but the post-DBDS
    // size must stay within the §5.4 budget of the pre-DBDS unit.
    EXPECT_LE(F.estimatedCodeSize(),
              static_cast<uint64_t>(static_cast<double>(SizeBefore) *
                                    Config.IncreaseBudget) +
                  64);
  }
}

TEST_P(OptimizationProperties, DupalotPreservesSemantics) {
  GeneratedWorkload W = generateWorkload(makeConfig());
  auto Functions = W.Mod->functions();
  for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
    Function &F = *Functions[FIdx];
    profileFunction(W, FIdx, F);
    PhaseManager PM = PhaseManager::standardPipeline(true, W.Mod.get());
    PM.run(F);
    auto [Before, CyclesBefore] = evaluate(W, FIdx, F);
    DBDSConfig Config;
    Config.ClassTable = W.Mod.get();
    Config.UseTradeoff = false;
    runDBDS(F, Config);
    ASSERT_EQ(verifyFunction(F), "");
    auto [After, CyclesAfter] = evaluate(W, FIdx, F);
    EXPECT_EQ(Before, After);
    EXPECT_LE(CyclesAfter, CyclesBefore);
  }
}

TEST_P(OptimizationProperties, SimulationDoesNotMutate) {
  GeneratedWorkload W = generateWorkload(makeConfig());
  for (Function *F : W.Mod->functions()) {
    std::string Before = printFunction(F);
    simulateDuplications(*F, W.Mod.get());
    EXPECT_EQ(printFunction(F), Before); // P5 (modulo revived constants,
                                         // which print canonically)
    EXPECT_EQ(verifyFunction(*F), "");
  }
}

TEST_P(OptimizationProperties, PrintParsePrintIsAFixedPoint) {
  // P6: the canonical printing is a parse fixed point — print(parse(T))
  // == T for both pristine and fully optimized modules. The optimized
  // case is the hard one: duplication appends and redirects predecessor
  // edges, so phi-input ordering only round-trips because the printer
  // emits a text-derivable canonical order.
  GeneratedWorkload W = generateWorkload(makeConfig());
  const std::string Pristine = printModule(W.Mod.get());
  ParseResult R = parseModule(Pristine);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(printModule(R.Mod.get()), Pristine);

  auto Functions = W.Mod->functions();
  for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
    Function &F = *Functions[FIdx];
    profileFunction(W, FIdx, F);
    PhaseManager PM = PhaseManager::standardPipeline(true, W.Mod.get());
    PM.run(F);
    DBDSConfig Config;
    Config.ClassTable = W.Mod.get();
    runDBDS(F, Config);
  }
  const std::string Optimized = printModule(W.Mod.get());
  ParseResult R2 = parseModule(Optimized);
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_EQ(printModule(R2.Mod.get()), Optimized);
}

TEST_P(OptimizationProperties, ContentHashIsInvariantUnderReparse) {
  // P7: hash(printCacheableUnit(f)) survives a parse round-trip — the
  // cache key a process computes over re-parsed IR equals the key the
  // writing process computed, which is what makes on-disk entries
  // portable across processes.
  GeneratedWorkload W = generateWorkload(makeConfig());
  ParseResult R = parseModule(printModule(W.Mod.get()));
  ASSERT_TRUE(R) << R.Error;
  auto FA = W.Mod->functions(), FB = R.Mod->functions();
  ASSERT_EQ(FA.size(), FB.size());
  for (size_t I = 0; I != FA.size(); ++I) {
    const std::string UA = printCacheableUnit(W.Mod.get(), FA[I]);
    const std::string UB = printCacheableUnit(R.Mod.get(), FB[I]);
    EXPECT_EQ(UA, UB);
    EXPECT_EQ(stableHash128(UA), stableHash128(UB));
  }
}

TEST_P(OptimizationProperties, BacktrackingAgreesWithInterpreter) {
  GeneratedWorkload W = generateWorkload(makeConfig());
  auto Functions = W.Mod->functions();
  // Backtracking is slow by design; exercise the first function only.
  unsigned FIdx = 0;
  profileFunction(W, FIdx, *Functions[FIdx]);
  auto [Before, CyclesBefore] = evaluate(W, FIdx, *Functions[FIdx]);
  std::unique_ptr<Function> F = Functions[FIdx]->clone();
  runBacktrackingDuplication(F, W.Mod.get());
  ASSERT_EQ(verifyFunction(*F), "");
  auto [After, CyclesAfter] = evaluate(W, FIdx, *F);
  EXPECT_EQ(Before, After);
  EXPECT_LE(CyclesAfter, CyclesBefore);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizationProperties,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> Params;
      for (uint64_t Seed : {11ull, 22ull, 33ull, 44ull, 55ull, 66ull, 77ull,
                            88ull})
        for (bool Loop : {true, false})
          Params.push_back({Seed, Loop, Loop ? 0.8 : 0.5, 0.1});
      // Extremes: always/never-taken branches, call-heavy code.
      Params.push_back({101, true, 0.05, 0.0});
      Params.push_back({102, true, 0.95, 0.0});
      Params.push_back({103, false, 0.5, 0.6});
      Params.push_back({104, true, 0.5, 0.6});
      return Params;
    }()),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      std::ostringstream OS;
      OS << Info.param;
      return OS.str();
    });

} // namespace
