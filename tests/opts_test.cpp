//===- tests/opts_test.cpp - Optimization phase unit tests ------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Canonicalize.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const std::string &Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

unsigned countOpcode(Function &F, Opcode Op) {
  unsigned Count = 0;
  for (Block *B : F.blocks())
    for (Instruction *I : *B)
      Count += I->getOpcode() == Op ? 1 : 0;
  return Count;
}

/// Wraps a straight-line expression body into a function returning it.
Parsed parseBody(const std::string &Body) {
  return parse("func @f(int, int) {\nb0:\n  %a = param 0\n  %b = param 1\n" +
               Body + "\n}\n");
}

// ---- Canonicalizer: constant folding + algebraic identities ---------------

struct FoldCase {
  const char *Name;
  const char *Body;        ///< defines %r from %a, %b
  const char *SurvivorOp;  ///< mnemonic expected to remain, or "" if folded
  int64_t A, B, Expected;  ///< runtime check
};

class CanonicalizerFolds : public ::testing::TestWithParam<FoldCase> {};

TEST_P(CanonicalizerFolds, FoldsAndPreservesSemantics) {
  const FoldCase &C = GetParam();
  Parsed P = parseBody(std::string("  ") + C.Body + "\n  ret %r");
  Interpreter Interp(*P.Mod);
  int64_t Before =
      Interp.run(*P.F, ArrayRef<int64_t>({C.A, C.B})).Result.Scalar;
  EXPECT_EQ(Before, C.Expected);

  Canonicalizer Canon;
  Canon.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({C.A, C.B})).Result.Scalar,
            C.Expected);
  if (std::string(C.SurvivorOp).empty()) {
    // Everything arithmetic folded away.
    for (Opcode Op : {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
                      Opcode::Rem, Opcode::And, Opcode::Or, Opcode::Xor,
                      Opcode::Shl, Opcode::Shr})
      EXPECT_EQ(countOpcode(*P.F, Op), 0u) << opcodeMnemonic(Op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Identities, CanonicalizerFolds,
    ::testing::Values(
        FoldCase{"AddZero", "%z = const 0\n  %r = add %a, %z", "", 7, 0, 7},
        FoldCase{"SubZero", "%z = const 0\n  %r = sub %a, %z", "", 7, 0, 7},
        FoldCase{"MulOne", "%o = const 1\n  %r = mul %a, %o", "", 9, 0, 9},
        FoldCase{"MulZero", "%z = const 0\n  %r = mul %a, %z", "", 9, 0, 0},
        FoldCase{"DivOne", "%o = const 1\n  %r = div %a, %o", "", 9, 0, 9},
        FoldCase{"RemOne", "%o = const 1\n  %r = rem %a, %o", "", 9, 0, 0},
        FoldCase{"AndZero", "%z = const 0\n  %r = and %a, %z", "", 9, 0, 0},
        FoldCase{"AndAllOnes", "%m = const -1\n  %r = and %a, %m", "", 9, 0,
                 9},
        FoldCase{"OrZero", "%z = const 0\n  %r = or %a, %z", "", 9, 0, 9},
        FoldCase{"XorSelf", "%r = xor %a, %a", "", 9, 0, 0},
        FoldCase{"SubSelf", "%r = sub %a, %a", "", 9, 0, 0},
        FoldCase{"AndSelf", "%r = and %a, %a", "", 9, 0, 9},
        FoldCase{"OrSelf", "%r = or %a, %a", "", 9, 0, 9},
        FoldCase{"ShlZero", "%z = const 0\n  %r = shl %a, %z", "", 9, 0, 9},
        FoldCase{"BothConst", "%x = const 6\n  %y = const 7\n  %r = mul "
                              "%x, %y",
                 "", 0, 0, 42},
        FoldCase{"ConstChain",
                 "%x = const 10\n  %y = const 3\n  %t = div %x, %y\n  %r = "
                 "add %t, %t",
                 "", 0, 0, 6},
        FoldCase{"NegConst", "%x = const 5\n  %r = neg %x", "", 0, 0, -5},
        FoldCase{"NotConst", "%x = const 0\n  %r = not %x", "", 0, 0, -1},
        FoldCase{"CmpSelfEq", "%c = cmp eq %a, %a\n  %r = add %c, %c", "", 3,
                 0, 2},
        FoldCase{"CmpSelfLt", "%c = cmp lt %a, %a\n  %r = add %c, %c", "", 3,
                 0, 0},
        FoldCase{"CmpConst",
                 "%x = const 3\n  %y = const 5\n  %c = cmp le %x, %y\n  %r "
                 "= add %c, %c",
                 "", 0, 0, 2}),
    [](const ::testing::TestParamInfo<FoldCase> &Info) {
      return Info.param.Name;
    });

TEST(CanonicalizerTest, MulByPowerOfTwoBecomesShift) {
  Parsed P = parseBody("  %c = const 8\n  %r = mul %a, %c\n  ret %r");
  Canonicalizer Canon;
  Canon.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::Mul), 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Shl), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-7, 0})).Result.Scalar,
            -56);
}

TEST(CanonicalizerTest, SignedDivisionNotReducedWithoutRangeProof) {
  // x / 8 != x >> 3 for negative x; without a non-negative stamp the
  // canonicalizer must keep the division.
  Parsed P = parseBody("  %c = const 8\n  %r = div %a, %c\n  ret %r");
  Canonicalizer Canon;
  Canon.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Div), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-15, 0})).Result.Scalar,
            -1); // C semantics: trunc toward zero
}

TEST(CanonicalizerTest, MaskedDivisionIsReduced) {
  // (x & 255) / 8 is provably non-negative: strength reduction fires.
  Parsed P = parseBody(
      "  %m = const 255\n  %x = and %a, %m\n  %c = const 8\n  %r = div "
      "%x, %c\n  ret %r");
  Canonicalizer Canon;
  Canon.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::Div), 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Shr), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({77, 0})).Result.Scalar,
            77 / 8);
}

TEST(CanonicalizerTest, MaskedRemBecomesAnd) {
  Parsed P = parseBody(
      "  %m = const 255\n  %x = and %a, %m\n  %c = const 16\n  %r = rem "
      "%x, %c\n  ret %r");
  Canonicalizer Canon;
  Canon.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Rem), 0u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({77, 0})).Result.Scalar,
            77 % 16);
}

TEST(CanonicalizerTest, PhiCopyPropagation) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%a, b2]
  ret %phi
}
)");
  Canonicalizer Canon;
  Canon.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::Phi), 0u);
}

// ---- Conditional elimination ------------------------------------------------

TEST(ConditionalEliminationTest, DominatingConditionFoldsRetest) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  %c2 = cmp gt %a, %z
  %t = add %c2, %c2
  ret %t
b2:
  ret %z
}
)");
  ConditionalElimination CE;
  CE.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  // The re-test %c2 folds to 1 in the dominated true branch.
  EXPECT_EQ(countOpcode(*P.F, Opcode::Cmp), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({5})).Result.Scalar, 2);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-5})).Result.Scalar, 0);
}

TEST(ConditionalEliminationTest, RangeImplicationFolds) {
  // x > 10 implies x > 5.
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %ten = const 10
  %five = const 5
  %c = cmp gt %a, %ten
  if %c, b1, b2 !0.5
b1:
  %c2 = cmp gt %a, %five
  ret %c2
b2:
  %z = const 0
  ret %z
}
)");
  ConditionalElimination CE;
  CE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Cmp), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({11})).Result.Scalar, 1);
}

TEST(ConditionalEliminationTest, RefinementDoesNotLeakToSiblings) {
  // x > 10 in the true branch must not fold x > 5 in the FALSE branch.
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %ten = const 10
  %five = const 5
  %c = cmp gt %a, %ten
  if %c, b1, b2 !0.5
b1:
  %one = const 1
  ret %one
b2:
  %c2 = cmp gt %a, %five
  ret %c2
}
)");
  ConditionalElimination CE;
  CE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Cmp), 2u); // both tests survive
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({7})).Result.Scalar, 1);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({3})).Result.Scalar, 0);
}

TEST(ConditionalEliminationTest, NullCheckRefinement) {
  Parsed P = parse(R"(
class A 1

func @f(obj) {
b0:
  %a = param 0
  %null = const null
  %c = cmp eq %a, %null
  if %c, b1, b2 !0.5
b1:
  %z = const 0
  ret %z
b2:
  %c2 = cmp ne %a, %null
  ret %c2
}
)");
  ConditionalElimination CE;
  CE.run(*P.F);
  // In the false branch a is non-null: %c2 folds to 1.
  EXPECT_EQ(countOpcode(*P.F, Opcode::Cmp), 1u);
}

TEST(ConditionalEliminationTest, BranchOnKnownConditionGetsConstant) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b3 !0.5
b1:
  if %c, b2, b3 !0.5
b2:
  %one = const 1
  ret %one
b3:
  ret %z
}
)");
  ConditionalElimination CE;
  CE.run(*P.F);
  SimplifyCFG SC;
  SC.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  // The inner branch re-testing %c folded away entirely.
  EXPECT_EQ(countOpcode(*P.F, Opcode::If), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({4})).Result.Scalar, 1);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-4})).Result.Scalar, 0);
}

// ---- Read elimination --------------------------------------------------------

TEST(ReadEliminationTest, StoreToLoadForwardingInBlock) {
  Parsed P = parse(R"(
class A 2

func @f(obj, int) {
b0:
  %a = param 0
  %v = param 1
  store %a, 0, %v
  %l = load %a, 0
  ret %l
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 0u);
}

TEST(ReadEliminationTest, LoadToLoadForwarding) {
  Parsed P = parse(R"(
class A 2

func @f(obj) {
b0:
  %a = param 0
  %l1 = load %a, 0
  %l2 = load %a, 0
  %r = add %l1, %l2
  ret %r
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 1u);
}

TEST(ReadEliminationTest, AliasingStoreKillsForwarding) {
  // A store through a *different* object may alias: the load survives.
  Parsed P = parse(R"(
class A 2

func @f(obj, obj, int) {
b0:
  %a = param 0
  %b = param 1
  %v = param 2
  store %a, 0, %v
  store %b, 0, %v
  %l = load %a, 0
  ret %l
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  // (a,0) was killed by the maybe-aliasing store to (b,0).
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 1u);
}

TEST(ReadEliminationTest, DifferentFieldDoesNotKill) {
  Parsed P = parse(R"(
class A 2

func @f(obj, obj, int) {
b0:
  %a = param 0
  %b = param 1
  %v = param 2
  store %a, 0, %v
  store %b, 1, %v
  %l = load %a, 0
  ret %l
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 0u);
}

TEST(ReadEliminationTest, CallKillsEscapedKnowledge) {
  Parsed P = parse(R"(
class A 2

func @f(obj, int) {
b0:
  %a = param 0
  %v = param 1
  store %a, 0, %v
  %x = call 1(%v)
  %l = load %a, 0
  %r = add %l, %x
  ret %r
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 1u); // call clobbered it
}

TEST(ReadEliminationTest, FreshAllocationSurvivesCalls) {
  // A never-escaping allocation cannot be touched by an opaque call.
  Parsed P = parse(R"(
class A 2

func @f(int) {
b0:
  %v = param 0
  %o = new 0
  store %o, 0, %v
  %x = call 1(%v)
  %l = load %o, 0
  %r = add %l, %x
  ret %r
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 0u);
}

TEST(ReadEliminationTest, FreshAllocationFieldsAreZero) {
  Parsed P = parse(R"(
class A 2

func @f() {
b0:
  %o = new 0
  %l = load %o, 1
  ret %l
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 0u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>()).Result.Scalar, 0);
}

TEST(ReadEliminationTest, MergeResetsKnowledge) {
  // The paper's whole point: the load after the merge is only PARTIALLY
  // redundant, so plain read elimination must keep it.
  Parsed P = parse(R"(
class A 2

func @f(obj, int) {
b0:
  %a = param 0
  %i = param 1
  %z = const 0
  %c = cmp gt %i, %z
  if %c, b1, b2 !0.5
b1:
  %l1 = load %a, 0
  store %a, 1, %l1
  jump b3
b2:
  jump b3
b3:
  %l2 = load %a, 0
  ret %l2
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 2u); // both survive
}

TEST(ReadEliminationTest, RedundantStoreRemoved) {
  Parsed P = parse(R"(
class A 2

func @f(obj, int) {
b0:
  %a = param 0
  %v = param 1
  store %a, 0, %v
  store %a, 0, %v
  %l = load %a, 0
  ret %l
}
)");
  ReadElimination RE(P.Mod.get());
  RE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::StoreField), 1u);
}

// ---- DCE -----------------------------------------------------------------------

TEST(DCETest, RemovesDeadArithmeticChains) {
  Parsed P = parseBody(
      "  %d1 = add %a, %b\n  %d2 = mul %d1, %d1\n  %d3 = xor %d2, %a\n  "
      "ret %a");
  DeadCodeElimination DCE;
  DCE.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::Add), 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Mul), 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Xor), 0u);
}

TEST(DCETest, KeepsSideEffects) {
  Parsed P = parse(R"(
class A 1

func @f(obj, int) {
b0:
  %a = param 0
  %v = param 1
  %x = call 3(%v)
  store %a, 0, %v
  ret %v
}
)");
  DeadCodeElimination DCE;
  DCE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Call), 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::StoreField), 1u);
}

TEST(DCETest, RemovesDeadPhiCycles) {
  // Two loop phis that only feed each other.
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  jump b1
b1:
  %i = phi int [%z, b0], [%inext, b1]
  %dead = phi int [%a, b0], [%dead2, b1]
  %dead2 = add %dead, %i
  %one = const 1
  %inext = add %i, %one
  %c = cmp lt %inext, %a
  if %c, b1, b2 !0.9
b2:
  ret %i
}
)");
  DeadCodeElimination DCE;
  DCE.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::Phi), 1u); // only %i survives
}

TEST(DCETest, AllocationSinking) {
  // A never-escaping allocation kept alive only by its own initializing
  // stores dies with them (paper Listing 3/4 after duplication).
  Parsed P = parse(R"(
class A 2

func @f(int) {
b0:
  %v = param 0
  %o = new 0
  store %o, 0, %v
  store %o, 1, %v
  ret %v
}
)");
  DeadCodeElimination DCE;
  DCE.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::StoreField), 0u);
}

TEST(DCETest, EscapingAllocationIsNotSunk) {
  Parsed P = parse(R"(
class A 2

func @f(int) {
b0:
  %v = param 0
  %o = new 0
  store %o, 0, %v
  %x = call 1(%o)
  ret %x
}
)");
  DeadCodeElimination DCE;
  DCE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::StoreField), 1u);
}

TEST(DCETest, LoadKeepsAllocationAlive) {
  Parsed P = parse(R"(
class A 2

func @f(int) {
b0:
  %v = param 0
  %o = new 0
  store %o, 0, %v
  %l = load %o, 0
  ret %l
}
)");
  DeadCodeElimination DCE;
  DCE.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 1u);
}

// ---- SimplifyCFG ---------------------------------------------------------------

TEST(SimplifyCFGTest, FoldsConstantBranchAndPrunes) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %one = const 1
  if %one, b1, b2 !0.5
b1:
  ret %a
b2:
  %z = const 0
  ret %z
}
)");
  SimplifyCFG SC;
  SC.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::If), 0u);
  // b2 is unreachable and pruned; b1 merged into b0.
  EXPECT_EQ(P.F->getNumBlocks(), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({9})).Result.Scalar, 9);
}

TEST(SimplifyCFGTest, MergesStraightLineChains) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  jump b1
b1:
  %one = const 1
  %x = add %a, %one
  jump b2
b2:
  %y = mul %x, %x
  ret %y
}
)");
  SimplifyCFG SC;
  SC.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(P.F->getNumBlocks(), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({3})).Result.Scalar, 16);
}

TEST(SimplifyCFGTest, KeepsEmptyBeginBlocksBeforeMerges) {
  // The begin blocks before a merge are duplication sites; SimplifyCFG
  // must not thread them away (DESIGN.md / SimplifyCFG.cpp note).
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  ret %phi
}
)");
  SimplifyCFG SC;
  SC.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(P.F->getNumBlocks(), 4u); // b1/b2 survive as begin blocks
}

TEST(SimplifyCFGTest, PhaseManagerReachesFixpoint) {
  // CE makes a branch constant; SimplifyCFG folds it; canonicalizer
  // cleans the phi; DCE sweeps — requires multiple pipeline rounds.
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %ten = const 10
  %c = cmp gt %a, %ten
  if %c, b1, b2 !0.5
b1:
  %c2 = cmp gt %a, %ten
  if %c2, b3, b4 !0.5
b2:
  %z = const 0
  ret %z
b3:
  %one = const 1
  ret %one
b4:
  %two = const 2
  ret %two
}
)");
  PhaseManager PM = PhaseManager::standardPipeline(true, P.Mod.get());
  PM.run(*P.F);
  ASSERT_EQ(verifyFunction(*P.F), "");
  // The nested re-test is gone; b4 unreachable.
  EXPECT_EQ(countOpcode(*P.F, Opcode::If), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({11})).Result.Scalar, 1);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({2})).Result.Scalar, 0);
}

} // namespace
