//===- tests/pea_test.cpp - Partial escape analysis + scalar replacement ---===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The §5.2 story end to end: escape-classification units, the virtual-
// object walk (flow- and branch-sensitive load forwarding), scalar
// replacement and lazy materialization, the paper-example regression
// (Listing 3 is scalar-replaced only once DBDS removes the merge), and
// the --jobs determinism contract for the PEA-bearing pipeline.
//
//===----------------------------------------------------------------------===//

#include "analysis/SimAudit.h"
#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/PartialEscape.h"
#include "opts/Phase.h"
#include "telemetry/DecisionLog.h"
#include "vm/Interpreter.h"
#include "workloads/CompileService.h"
#include "workloads/ProgramGenerator.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

unsigned countOpcode(Function &F, Opcode Op) {
  unsigned Count = 0;
  for (Block *B : F.blocks())
    for (Instruction *I : *B)
      Count += I->getOpcode() == Op ? 1 : 0;
  return Count;
}

unsigned countOpcode(Block *B, Opcode Op) {
  unsigned Count = 0;
  for (Instruction *I : *B)
    Count += I->getOpcode() == Op ? 1 : 0;
  return Count;
}

NewInst *findNew(Function &F) {
  for (Block *B : F.blocks())
    for (Instruction *I : *B)
      if (auto *New = dyn_cast<NewInst>(I))
        return New;
  return nullptr;
}

Instruction *findFirst(Function &F, Opcode Op) {
  for (Block *B : F.blocks())
    for (Instruction *I : *B)
      if (I->getOpcode() == Op)
        return I;
  return nullptr;
}

// ---- Escape classification ----------------------------------------------

// Every use kind in one function: field load and initializer store do not
// escape; call, invoke, return, and value-position store do.
const char *EveryUseKind = R"(
class A 1

func @esc(obj, int) {
b0:
  %a = param 0
  %x = param 1
  %new = new 0
  store %new, 0, %x
  %f = load %new, 0
  store %a, 0, %new
  %r = call 1(%new)
  %i = invoke @esc(%new, %x)
  ret %new
}
)";

TEST(EscapePredicateTest, ClassifiesEveryUseKind) {
  Parsed P = parse(EveryUseKind);
  NewInst *New = findNew(*P.F);
  ASSERT_NE(New, nullptr);

  auto *InitStore = cast<StoreFieldInst>(findFirst(*P.F, Opcode::StoreField));
  EXPECT_FALSE(useEscapesAllocation(New, InitStore));
  EXPECT_FALSE(useEscapesAllocation(New, findFirst(*P.F, Opcode::LoadField)));
  EXPECT_TRUE(useEscapesAllocation(New, findFirst(*P.F, Opcode::Call)));
  EXPECT_TRUE(useEscapesAllocation(New, findFirst(*P.F, Opcode::Invoke)));
  EXPECT_TRUE(useEscapesAllocation(New, findFirst(*P.F, Opcode::Return)));

  // Value-position store: publishing the object through another object.
  StoreFieldInst *ValueStore = nullptr;
  for (Instruction *User : New->users())
    if (auto *S = dyn_cast<StoreFieldInst>(User); S && S->getValue() == New)
      ValueStore = S;
  ASSERT_NE(ValueStore, nullptr);
  EXPECT_TRUE(useEscapesAllocation(New, ValueStore));

  EXPECT_FALSE(allocationDoesNotEscape(New));
}

TEST(EscapePredicateTest, PhiForwardingEscapes) {
  Parsed P = parse(paper::Listing3);
  NewInst *New = findNew(*P.F);
  ASSERT_NE(New, nullptr);
  Instruction *Phi = findFirst(*P.F, Opcode::Phi);
  ASSERT_NE(Phi, nullptr);
  EXPECT_TRUE(useEscapesAllocation(New, Phi));
  EXPECT_FALSE(allocationDoesNotEscape(New));
}

TEST(EscapePredicateTest, PureAccessorUsesDoNotEscape) {
  Parsed P = parse(R"(
class A 1

func @pure(int) {
b0:
  %x = param 0
  %new = new 0
  store %new, 0, %x
  %f = load %new, 0
  ret %f
}
)");
  NewInst *New = findNew(*P.F);
  ASSERT_NE(New, nullptr);
  EXPECT_TRUE(allocationDoesNotEscape(New));
}

// ---- The virtual-object walk --------------------------------------------

TEST(PartialEscapePhaseTest, ScalarReplacesNeverEscapingAllocation) {
  Parsed P = parse(R"(
class A 1

func @scalar(int) {
b0:
  %x = param 0
  %new = new 0
  store %new, 0, %x
  %f = load %new, 0
  ret %f
}
)");
  PartialEscapeStats Stats;
  PartialEscapePhase Phase(P.Mod.get());
  EXPECT_TRUE(Phase.run(*P.F, Stats));
  EXPECT_EQ(verifyFunction(*P.F), "");

  EXPECT_EQ(Stats.AllocationsTracked, 1u);
  EXPECT_EQ(Stats.LoadsForwarded, 1u);
  EXPECT_EQ(Stats.StoresEliminated, 1u);
  EXPECT_EQ(Stats.AllocsScalarReplaced, 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::StoreField), 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 0u);

  Interpreter Interp(*P.Mod);
  RuntimeValue Args[1] = {RuntimeValue::ofInt(42)};
  ExecutionResult E = Interp.run(*P.F, ArrayRef<RuntimeValue>(Args, 1));
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.Result.Scalar, 42);
}

TEST(PartialEscapePhaseTest, UnwrittenFieldForwardsAsZero) {
  Parsed P = parse(R"(
class A 1

func @zero() {
b0:
  %new = new 0
  %f = load %new, 0
  ret %f
}
)");
  PartialEscapeStats Stats;
  PartialEscapePhase Phase(P.Mod.get());
  EXPECT_TRUE(Phase.run(*P.F, Stats));
  EXPECT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(Stats.LoadsForwarded, 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 0u);

  Interpreter Interp(*P.Mod);
  ExecutionResult E = Interp.run(*P.F, ArrayRef<RuntimeValue>());
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.Result.Scalar, 0);
}

// Branch sensitivity: an escape on one branch must not poison the
// sibling. The b2 load forwards; the b1 load sits after the call escape
// on its own path and must survive.
TEST(PartialEscapePhaseTest, BranchEscapeDoesNotPoisonSibling) {
  Parsed P = parse(R"(
class A 1

func @branch(int) {
b0:
  %x = param 0
  %new = new 0
  store %new, 0, %x
  %zero = const 0
  %c = cmp gt %x, %zero
  if %c, b1, b2 !0.5
b1:
  %r = call 1(%new)
  %f1 = load %new, 0
  ret %f1
b2:
  %f2 = load %new, 0
  ret %f2
}
)");
  PartialEscapeStats Stats;
  PartialEscapePhase Phase(P.Mod.get());
  EXPECT_TRUE(Phase.run(*P.F, Stats));
  EXPECT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(Stats.LoadsForwarded, 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 1u);
}

// Flow sensitivity within one block: a load before the escape forwards,
// the same load after it does not.
TEST(PartialEscapePhaseTest, LoadForwardsUntilFirstEscapeOnThePath) {
  Parsed P = parse(R"(
class A 1

func @flow(int) {
b0:
  %x = param 0
  %new = new 0
  store %new, 0, %x
  %before = load %new, 0
  %r = call 1(%new)
  %after = load %new, 0
  %s = add %before, %after
  ret %s
}
)");
  PartialEscapeStats Stats;
  PartialEscapePhase Phase(P.Mod.get());
  EXPECT_TRUE(Phase.run(*P.F, Stats));
  EXPECT_EQ(Stats.LoadsForwarded, 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 1u);
}

// Lazy materialization: every escape confined to one strictly dominated
// loop-free block moves the allocation (and its initializers) there, so
// the sibling path never allocates.
TEST(PartialEscapePhaseTest, SinksAllocationIntoItsOnlyEscapeBlock) {
  Parsed P = parse(R"(
class A 1

func @sink(int) {
b0:
  %x = param 0
  %new = new 0
  store %new, 0, %x
  %zero = const 0
  %c = cmp gt %x, %zero
  if %c, b1, b2 !0.5
b1:
  %r = call 1(%new)
  jump b3
b2:
  jump b3
b3:
  %y = phi int [%r, b1], [%zero, b2]
  ret %y
}
)");
  PartialEscapeStats Stats;
  PartialEscapePhase Phase(P.Mod.get());
  EXPECT_TRUE(Phase.run(*P.F, Stats));
  EXPECT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(Stats.AllocsSunk, 1u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 1u);
  // The entry (the hot shared prefix) no longer allocates or initializes.
  EXPECT_EQ(countOpcode(P.F->getEntry(), Opcode::New), 0u);
  EXPECT_EQ(countOpcode(P.F->getEntry(), Opcode::StoreField), 0u);
}

TEST(PartialEscapePhaseTest, DoesNotSinkIntoALoop) {
  Parsed P = parse(R"(
class A 1

func @loopneg(int) {
b0:
  %x = param 0
  %new = new 0
  store %new, 0, %x
  %one = const 1
  %zero = const 0
  jump b1
b1:
  %i = phi int [%x, b0], [%dec, b1]
  %r = call 1(%new)
  %dec = sub %i, %one
  %c = cmp gt %dec, %zero
  if %c, b1, b2 !0.9
b2:
  ret %r
}
)");
  PartialEscapeStats Stats;
  PartialEscapePhase Phase(P.Mod.get());
  Phase.run(*P.F, Stats);
  EXPECT_EQ(verifyFunction(*P.F), "");
  // Re-allocating per iteration would change semantics and cost; the
  // allocation stays at its loop-free home.
  EXPECT_EQ(Stats.AllocsSunk, 0u);
  EXPECT_EQ(countOpcode(P.F->getEntry(), Opcode::New), 1u);
}

TEST(PartialEscapePhaseTest, DoesNotSinkAcrossAPhiUse) {
  Parsed P = parse(paper::Listing3);
  PartialEscapeStats Stats;
  PartialEscapePhase Phase(P.Mod.get());
  Phase.run(*P.F, Stats);
  EXPECT_EQ(verifyFunction(*P.F), "");
  // The phi use lives on the incoming edge, not in a sinkable block.
  EXPECT_EQ(Stats.AllocsSunk, 0u);
  EXPECT_EQ(Stats.AllocsScalarReplaced, 0u);
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 1u);
}

// ---- Simulation pricing (§5.2) ------------------------------------------

// The partial-escape shape: the allocation escapes through the merge phi
// AND retains one residual escape in a dominated block. Removing the phi
// by duplication does not fully un-escape it, but it does unlock lazy
// materialization — the Simulator prices that as a PartialEscapes
// opportunity, distinct from the full AllocationSinks credit.
const char *PartialEscapeShape = R"(
class A 1

func @partial(obj, int) {
b0:
  %a = param 0
  %x = param 1
  %new = new 0
  store %new, 0, %x
  %null = const null
  %c = cmp eq %a, %null
  if %c, b1, b2 !0.5
b1:
  %r = call 1(%new)
  jump b3
b2:
  jump b3
b3:
  %p = phi obj [%new, b1], [%a, b2]
  ret %p
}
)";

TEST(SimulatorPEATest, Listing3PricesTheFullUnescape) {
  Parsed P = parse(paper::Listing3);
  SimulationStats Stats;
  simulateDuplications(*P.F, P.Mod.get(), &Stats);
  EXPECT_GE(Stats.AllocationSinks, 1u);
  EXPECT_EQ(Stats.PartialEscapes, 0u);
}

TEST(SimulatorPEATest, ResidualEscapePricesAsPartialEscape) {
  Parsed P = parse(PartialEscapeShape);
  SimulationStats Stats;
  simulateDuplications(*P.F, P.Mod.get(), &Stats);
  EXPECT_GE(Stats.PartialEscapes, 1u);
  EXPECT_EQ(Stats.AllocationSinks, 0u);
}

// ---- §5.2 paper-example regression --------------------------------------

TEST(PEARegressionTest, Listing3ScalarReplacedOnlyUnderDBDS) {
  // The cleanup pipeline alone (which includes PEA) cannot remove the
  // allocation: it escapes into the merge phi.
  Parsed Baseline = parse(paper::Listing3);
  PhaseManager PM =
      PhaseManager::standardPipeline(/*Verify=*/true, Baseline.Mod.get());
  PM.run(*Baseline.F);
  EXPECT_EQ(verifyFunction(*Baseline.F), "");
  EXPECT_EQ(countOpcode(*Baseline.F, Opcode::New), 1u);

  // DBDS duplicates the merge away; PEA then scalar-replaces.
  Parsed P = parse(paper::Listing3);
  DecisionLog Log;
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  Config.Decisions = &Log;
  runDBDS(*P.F, Config);
  EXPECT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 0u);

  // The remarks stream shows an accepted decision that priced the
  // un-escape.
  bool SawEscapeOpportunity = false;
  for (const DuplicationDecision &D : Log.decisions())
    if (D.Verdict == DecisionVerdict::Accepted &&
        D.Opportunities.AllocationSinks + D.Opportunities.PartialEscapes > 0)
      SawEscapeOpportunity = true;
  EXPECT_TRUE(SawEscapeOpportunity);

  // SimAudit replays the decisions against the shipped IR: every
  // prediction held (precision) and nothing provable was missed (recall).
  SimAuditCounts Counts = auditSimulation(*P.F, Log);
  EXPECT_TRUE(Counts.Ran);
  EXPECT_EQ(Counts.precision(), 1.0);
  EXPECT_EQ(Counts.recall(), 1.0);

  // Semantics: both the null path (42 from the virtualized object) and
  // the preallocated path (99 from the caller's object) still hold.
  Interpreter Interp(*P.Mod);
  RuntimeValue Args[2] = {RuntimeValue::null(), RuntimeValue::ofInt(42)};
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<RuntimeValue>(Args, 2)).Result.Scalar,
            42);
  Interp.reset();
  RuntimeValue Obj = Interp.allocate(0);
  Interp.writeField(Obj, 0, 99);
  RuntimeValue Args2[2] = {Obj, RuntimeValue::ofInt(1)};
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<RuntimeValue>(Args2, 2)).Result.Scalar,
            99);
}

TEST(PEARegressionTest, ResidualEscapeShapeSinksUnderDBDS) {
  Parsed P = parse(PartialEscapeShape);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  runDBDS(*P.F, Config);
  EXPECT_EQ(verifyFunction(*P.F), "");
  // Duplication removed the phi; the allocation then materialized lazily
  // in its escape block, so the entry path is allocation-free.
  EXPECT_EQ(countOpcode(P.F->getEntry(), Opcode::New), 0u);
}

// ---- --jobs determinism -------------------------------------------------

// The full PEA-bearing pipeline over a PEA-heavy generated workload must
// print byte-identical modules whether functions are compiled serially or
// on eight workers (DESIGN.md §9).
TEST(PEAJobsTest, OptimizedModulesByteIdenticalAcrossJobs) {
  auto RunAll = [](unsigned Jobs) {
    GeneratorConfig GC;
    GC.Seed = 7;
    GC.NumFunctions = 8;
    GC.SegmentsPerFunction = 5;
    GC.Mix.PartialEscape = 4.0;
    GeneratedWorkload W = generateWorkload(GC);
    const size_t N = W.Mod->functions().size();
    std::vector<std::string> Out(N);
    CompileService Service(Jobs);
    Service.forEachIndex(N, [&](size_t Index, unsigned) {
      Function *F = W.Mod->functions()[Index];
      PhaseManager PM =
          PhaseManager::standardPipeline(/*Verify=*/true, W.Mod.get());
      PM.run(*F);
      DBDSConfig Config;
      Config.ClassTable = W.Mod.get();
      runDBDS(*F, Config);
      Out[Index] = printFunction(F);
    });
    std::string Joined;
    for (const std::string &S : Out)
      Joined += S;
    return Joined;
  };
  std::string Serial = RunAll(1);
  std::string Parallel = RunAll(8);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Parallel);
}

} // namespace
