//===- tests/frontend_test.cpp - Bytecode assembler and translator ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "frontend/Translator.h"
#include "opts/Inliner.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

/// Assembles + translates, expecting success; returns the IR module.
std::unique_ptr<Module> compile(const std::string &Source) {
  BcParseResult BC = assembleBytecode(Source);
  EXPECT_TRUE(BC) << BC.Error;
  if (!BC)
    return nullptr;
  TranslationResult IR = translateBytecode(*BC.Mod);
  EXPECT_TRUE(IR) << IR.Error;
  if (!IR)
    return nullptr;
  for (Function *F : IR.Mod->functions())
    EXPECT_EQ(verifyFunction(*F), "");
  return std::move(IR.Mod);
}

int64_t runInt(Module &M, const char *Name, ArrayRef<int64_t> Args) {
  Interpreter Interp(M);
  ExecutionResult R = Interp.run(*M.getFunction(Name), Args);
  EXPECT_TRUE(R.Ok);
  return R.Result.Scalar;
}

TEST(BytecodeAssemblerTest, RoundTripsThroughDisassembler) {
  const char *Source = R"(
bcfunc @abs(1) {
  load 0
  iconst 0
  cmp lt
  brtrue Lneg
  load 0
  ret
Lneg:
  iconst 0
  load 0
  sub
  ret
}
)";
  BcParseResult BC = assembleBytecode(Source);
  ASSERT_TRUE(BC) << BC.Error;
  ASSERT_EQ(BC.Mod->Functions.size(), 1u);
  std::string Text = disassemble(BC.Mod->Functions[0]);
  BcParseResult Again = assembleBytecode(Text);
  ASSERT_TRUE(Again) << Again.Error << "\nfrom:\n" << Text;
  EXPECT_EQ(disassemble(Again.Mod->Functions[0]), Text);
}

TEST(BytecodeAssemblerTest, ReportsErrors) {
  EXPECT_FALSE(assembleBytecode("bcfunc @f(0) {\n  bogus\n}\n"));
  EXPECT_FALSE(assembleBytecode("bcfunc @f(0) {\n  goto Nowhere\n}\n"));
  EXPECT_FALSE(assembleBytecode("bcfunc @f(0) {\n  ret\n")); // missing }
  EXPECT_FALSE(assembleBytecode("bcfunc @f(2) locals=1 {\n  ret\n}\n"));
  EXPECT_FALSE(assembleBytecode("bcfunc @f(0) {\n  cmp zz\n}\n"));
  EXPECT_FALSE(
      assembleBytecode("bcfunc @f(0) {\nL:\nL:\n  retvoid\n}\n")); // dup label
}

TEST(TranslatorTest, StraightLineArithmetic) {
  auto M = compile(R"(
bcfunc @f(2) {
  load 0
  load 1
  add
  iconst 3
  mul
  ret
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runInt(*M, "f", {4, 5}), 27);
}

TEST(TranslatorTest, AbsWithBranches) {
  auto M = compile(R"(
bcfunc @abs(1) {
  load 0
  iconst 0
  cmp lt
  brtrue Lneg
  load 0
  ret
Lneg:
  iconst 0
  load 0
  sub
  ret
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runInt(*M, "abs", {7}), 7);
  EXPECT_EQ(runInt(*M, "abs", {-7}), 7);
  EXPECT_EQ(runInt(*M, "abs", {0}), 0);
}

TEST(TranslatorTest, LoopWithLocals) {
  // sum of 0..n-1 via a counting loop: exercises loop phis for locals.
  auto M = compile(R"(
bcfunc @sum(1) locals=3 {
  iconst 0
  store 1
  iconst 0
  store 2
Lhead:
  load 1
  load 0
  cmp lt
  brfalse Ldone
  load 2
  load 1
  add
  store 2
  load 1
  iconst 1
  add
  store 1
  goto Lhead
Ldone:
  load 2
  ret
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runInt(*M, "sum", {10}), 45);
  EXPECT_EQ(runInt(*M, "sum", {0}), 0);
  EXPECT_EQ(runInt(*M, "sum", {1}), 0);
}

TEST(TranslatorTest, StackValuesFlowAcrossBranches) {
  // A value left on the stack across a join becomes a stack phi.
  auto M = compile(R"(
bcfunc @pick(2) {
  load 0
  load 1
  load 0
  iconst 0
  cmp gt
  brtrue Lkeep
  swap
Lkeep:
  pop
  ret
}
)");
  ASSERT_TRUE(M);
  // a > 0: stack (a, b) -> pop b -> return a... after swap logic:
  // a > 0 keeps (a, b), pops b, returns a. a <= 0 swaps to (b, a), pops
  // a, returns b.
  EXPECT_EQ(runInt(*M, "pick", {5, 9}), 5);
  EXPECT_EQ(runInt(*M, "pick", {-5, 9}), 9);
}

TEST(TranslatorTest, ObjectsAndFields) {
  auto M = compile(R"(
class 2

bcfunc @boxed(1) locals=2 {
  new 0
  store 1
  load 1
  load 0
  putfield 0
  load 1
  getfield 0
  iconst 1
  add
  ret
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runInt(*M, "boxed", {41}), 42);
}

TEST(TranslatorTest, DupPopSwapAndCalls) {
  auto M = compile(R"(
bcfunc @f(1) {
  load 0
  dup
  mul
  load 0
  call 3 2
  ret
}
)");
  ASSERT_TRUE(M);
  // call 3 with (x*x, x): just check determinism and success.
  int64_t R1 = runInt(*M, "f", {6});
  auto M2 = compile(R"(
bcfunc @f(1) {
  load 0
  dup
  mul
  load 0
  call 3 2
  ret
}
)");
  EXPECT_EQ(runInt(*M2, "f", {6}), R1);
}

TEST(TranslatorTest, RejectsMalformedBytecode) {
  auto expectError = [](const char *Source) {
    BcParseResult BC = assembleBytecode(Source);
    ASSERT_TRUE(BC) << BC.Error;
    TranslationResult IR = translateBytecode(*BC.Mod);
    EXPECT_FALSE(IR) << "expected a translation error";
  };
  // Stack underflow.
  expectError("bcfunc @f(0) {\n  add\n  retvoid\n}\n");
  // Falls off the end.
  expectError("bcfunc @f(1) {\n  load 0\n  pop\n}\n");
  // Inconsistent stack depth at a join.
  expectError(R"(
bcfunc @f(1) {
  load 0
  brtrue Ldeep
  goto Ljoin
Ldeep:
  iconst 1
  iconst 2
Ljoin:
  retvoid
}
)");
  // Arithmetic on a reference.
  expectError("class 1\nbcfunc @f(0) {\n  new 0\n  iconst 1\n  add\n  "
              "retvoid\n}\n");
}

TEST(TranslatorTest, FullJitPipelineBytecodeToOptimizedIR) {
  // The paper's Figure 1 written as bytecode, through the whole "JIT":
  // assemble -> translate -> profile -> DBDS -> execute.
  auto M = compile(R"(
bcfunc @foo(1) locals=2 {
  load 0
  iconst 0
  cmp gt
  brfalse Lelse
  load 0
  store 1
  goto Lmerge
Lelse:
  iconst 0
  store 1
Lmerge:
  iconst 2
  load 1
  add
  ret
}
)");
  ASSERT_TRUE(M);
  Function *F = M->getFunction("foo");
  ASSERT_NE(F, nullptr);

  Interpreter Interp(*M);
  ProfileSummary Profile;
  for (int64_t X : {5, -3, 8, -1})
    Interp.run(*F, ArrayRef<int64_t>({X}), 1u << 20, &Profile);
  applyProfile(*F, Profile);

  PhaseManager PM = PhaseManager::standardPipeline(true, M.get());
  PM.run(*F);
  DBDSConfig Config;
  Config.ClassTable = M.get();
  DBDSResult R = runDBDS(*F, Config);
  EXPECT_GE(R.DuplicationsPerformed, 1u);
  ASSERT_EQ(verifyFunction(*F), "");

  EXPECT_EQ(runInt(*M, "foo", {5}), 7);
  EXPECT_EQ(runInt(*M, "foo", {-3}), 2);
}

TEST(TranslatorTest, InvokeBytecodeThroughInliningAndDBDS) {
  // Two bytecode functions; the helper's branchy body inlines into main
  // and DBDS specializes the merge — the whole §5.1 front end end to end.
  auto M = compile(R"(
bcfunc @clamp(1) {
  load 0
  iconst 0
  cmp lt
  brtrue Lneg
  load 0
  ret
Lneg:
  iconst 0
  ret
}

bcfunc @main(1) {
  load 0
  iconst 255
  and
  invoke @clamp 1
  iconst 1
  add
  ret
}
)");
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  ASSERT_NE(Main, nullptr);
  Interpreter Interp(*M);
  int64_t Before = Interp.run(*Main, ArrayRef<int64_t>({77})).Result.Scalar;
  EXPECT_EQ(Before, (77 & 255) + 1);

  EXPECT_EQ(inlineInvokes(*Main, *M), 1u);
  PhaseManager PM = PhaseManager::standardPipeline(true, M.get());
  PM.run(*Main);
  DBDSConfig Config;
  Config.ClassTable = M.get();
  runDBDS(*Main, Config);
  ASSERT_EQ(verifyFunction(*Main), "");
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({77})).Result.Scalar,
            Before);
  // The inlined clamp branch folds away under the [0,255] stamp.
  unsigned Ifs = 0;
  for (Block *B : Main->blocks())
    for (Instruction *I : *B)
      Ifs += isa<IfInst>(I) ? 1 : 0;
  EXPECT_EQ(Ifs, 0u);
}

TEST(BytecodeAssemblerTest, InvokeRoundTrips) {
  const char *Source = "bcfunc @f(1) {\n  load 0\n  invoke @g 1\n  ret\n}\n";
  BcParseResult BC = assembleBytecode(Source);
  ASSERT_TRUE(BC) << BC.Error;
  std::string Text = disassemble(BC.Mod->Functions[0]);
  EXPECT_NE(Text.find("invoke @g 1"), std::string::npos);
  BcParseResult Again = assembleBytecode(Text);
  ASSERT_TRUE(Again) << Again.Error;
  EXPECT_EQ(disassemble(Again.Mod->Functions[0]), Text);
}

} // namespace
