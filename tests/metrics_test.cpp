//===- tests/metrics_test.cpp - Histogram metrics layer tests --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The metrics tentpole's contract, tested bottom-up: log2-bucket
// histogram arithmetic (bucketing, merge ≡ record-all, percentile
// sanity), the registry (identity, gating, deterministic-only filtering,
// stable JSON), shard buffering, the folded-flamegraph derivation
// against a golden fixture, the BenchCompare regression engine, and the
// headline acceptance criterion: the deterministic metrics JSON is
// byte-identical between --jobs=1 and --jobs=8 over a generated corpus.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "support/Cancellation.h"
#include "telemetry/BenchCompare.h"
#include "telemetry/JsonValue.h"
#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"
#include "vm/Interpreter.h"
#include "workloads/CompileService.h"
#include "workloads/Runner.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <thread>

#include <gtest/gtest.h>

using namespace dbds;

namespace {

//===----------------------------------------------------------------------===//
// Histogram core
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly {0}; bucket b holds the values of bit width b.
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), 64u);
  for (unsigned B = 1; B != Histogram::NumBuckets; ++B) {
    EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLo(B)), B);
    EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketHi(B)), B);
  }
}

TEST(HistogramTest, RecordAccumulatesScalars) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  H.record(7);
  H.record(3);
  H.record(0);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 10u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 7u);
  EXPECT_DOUBLE_EQ(H.mean(), 10.0 / 3.0);
}

TEST(HistogramTest, MergeEqualsRecordAll) {
  // The determinism contract's foundation: merging shard histograms in
  // any grouping gives the same state as recording everything into one.
  Histogram All, A, B, C;
  for (uint64_t V = 0; V != 300; ++V) {
    All.record(V * V % 977);
    (V % 3 == 0 ? A : V % 3 == 1 ? B : C).record(V * V % 977);
  }
  A.merge(B);
  A.merge(C);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_EQ(A.sum(), All.sum());
  EXPECT_EQ(A.min(), All.min());
  EXPECT_EQ(A.max(), All.max());
  EXPECT_EQ(A.buckets(), All.buckets());
  EXPECT_DOUBLE_EQ(A.percentile(50), All.percentile(50));
  EXPECT_DOUBLE_EQ(A.percentile(99), All.percentile(99));
}

TEST(HistogramTest, PercentileSanity) {
  Histogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  // Log2 buckets bound the estimate by the bucket containing the true
  // quantile: p50 of 1..1000 lies in [256, 511], p99 in [512, 1000].
  EXPECT_GE(H.percentile(50), 256.0);
  EXPECT_LE(H.percentile(50), 511.0);
  EXPECT_GE(H.percentile(99), 512.0);
  EXPECT_LE(H.percentile(99), 1000.0);
  // Interpolation clamps to the recorded extremes.
  EXPECT_DOUBLE_EQ(H.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(H.percentile(100), 1000.0);
  // Monotone in Q.
  EXPECT_LE(H.percentile(50), H.percentile(90));
  EXPECT_LE(H.percentile(90), H.percentile(99));
}

TEST(HistogramTest, PercentileExactForSingleValue) {
  Histogram H;
  for (int I = 0; I != 10; ++I)
    H.record(42);
  EXPECT_DOUBLE_EQ(H.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(H.percentile(99), 42.0);
}

//===----------------------------------------------------------------------===//
// Registry, gating, shards
//===----------------------------------------------------------------------===//

/// RAII: enables metrics for one test, restores the prior state after.
struct ScopedMetrics {
  bool Was;
  ScopedMetrics() : Was(MetricsRegistry::enabled()) {
    MetricsRegistry::setEnabled(true);
  }
  ~ScopedMetrics() { MetricsRegistry::setEnabled(Was); }
};

TEST(MetricsRegistryTest, GetOrCreateReturnsSameInstance) {
  TelemetryHistogram &A = MetricsRegistry::instance().getOrCreate(
      "test_registry", "identity", MetricUnit::Count,
      MetricClass::Deterministic);
  TelemetryHistogram &B = MetricsRegistry::instance().getOrCreate(
      "test_registry", "identity", MetricUnit::Count,
      MetricClass::Deterministic);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(A.qualifiedName(), "test_registry.identity");
}

TEST(MetricsRegistryTest, GetOrCreateConcurrentFirstUseIsRaceFree) {
  // Regression test: getOrCreate used to construct (and self-register) the
  // new histogram outside the registry lock, then erase and destroy the
  // loser of a naming race — a concurrent getOrCreate or snapshot() could
  // retain the doomed pointer. All threads must agree on one instance per
  // name, with snapshots running concurrently.
  constexpr unsigned Threads = 8, Names = 4;
  std::array<std::atomic<TelemetryHistogram *>, Names> First{};
  std::atomic<bool> Mismatch{false};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&First, &Mismatch] {
      for (unsigned N = 0; N != Names; ++N) {
        TelemetryHistogram &H = MetricsRegistry::instance().getOrCreate(
            "test_registry_race", "name" + std::to_string(N),
            MetricUnit::Count, MetricClass::Deterministic);
        TelemetryHistogram *Expected = nullptr;
        if (!First[N].compare_exchange_strong(Expected, &H) && Expected != &H)
          Mismatch = true;
        (void)MetricsRegistry::instance().snapshot();
      }
    });
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_FALSE(Mismatch);
}

TEST(MetricsRegistryTest, DisabledRecordIsDropped) {
  TelemetryHistogram &H = MetricsRegistry::instance().getOrCreate(
      "test_registry", "gated", MetricUnit::Count,
      MetricClass::Deterministic);
  H.reset();
  ASSERT_FALSE(MetricsRegistry::enabled());
  H.record(5); // detached: the site must drop the sample
  EXPECT_EQ(H.read().count(), 0u);
  {
    ScopedMetrics On;
    H.record(5);
  }
  EXPECT_EQ(H.read().count(), 1u);
  H.reset();
}

TEST(MetricsRegistryTest, DeterministicOnlySnapshotFiltersTiming) {
  ScopedMetrics On;
  TelemetryHistogram &D = MetricsRegistry::instance().getOrCreate(
      "test_registry", "det_only", MetricUnit::Count,
      MetricClass::Deterministic);
  TelemetryHistogram &T = MetricsRegistry::instance().getOrCreate(
      "test_registry", "timing_only", MetricUnit::Nanoseconds,
      MetricClass::Timing);
  D.reset();
  T.reset();
  D.record(1);
  T.record(1);
  bool SawDet = false, SawTiming = false;
  for (const HistogramSample &S :
       MetricsRegistry::instance().snapshot(/*DeterministicOnly=*/true)) {
    if (S.Name == "test_registry.det_only")
      SawDet = true;
    if (S.Name == "test_registry.timing_only")
      SawTiming = true;
  }
  EXPECT_TRUE(SawDet);
  EXPECT_FALSE(SawTiming);
  D.reset();
  T.reset();
}

TEST(MetricsRegistryTest, RenderJsonIsStableAndParses) {
  ScopedMetrics On;
  TelemetryHistogram &H = MetricsRegistry::instance().getOrCreate(
      "test_registry", "json", MetricUnit::Bytes, MetricClass::Deterministic);
  H.reset();
  H.record(0);
  H.record(3);
  H.record(100);
  std::vector<HistogramSample> Snap;
  for (const HistogramSample &S : MetricsRegistry::instance().snapshot())
    if (S.Name == "test_registry.json")
      Snap.push_back(S);
  ASSERT_EQ(Snap.size(), 1u);

  std::string Json = MetricsRegistry::renderJson(Snap);
  // Equal snapshots render byte-identically (the determinism test's
  // comparison primitive).
  EXPECT_EQ(Json, MetricsRegistry::renderJson(Snap));

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Json, Doc, &Error)) << Error;
  const JsonValue *S = Doc.get("test_registry.json");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->getNumber("count"), 3.0);
  EXPECT_EQ(S->getNumber("sum"), 103.0);
  EXPECT_EQ(S->getNumber("max"), 100.0);
  const JsonValue *Unit = S->get("unit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->asString(), "bytes");
  H.reset();
}

TEST(JsonValueNumberTest, EnforcesTheJsonNumberGrammar) {
  // The parser scans the strict JSON number grammar before strtod;
  // otherwise strtod's extensions (inf/nan, hex floats, leading '+')
  // would round-trip non-JSON tokens into comparisons as valid numbers.
  JsonValue V;
  for (const char *Bad : {"nan", "nancy", "inf", "-inf", "0x1p3", "+5", "01",
                          "1.", ".5", "1e", "1e+", "-"})
    EXPECT_FALSE(JsonValue::parse(std::string("[") + Bad + "]", V, nullptr))
        << "accepted non-JSON number: " << Bad;
  for (const char *Good :
       {"0", "-0", "10", "-1.5e-3", "0.25", "1E+2", "20e0"}) {
    EXPECT_TRUE(JsonValue::parse(std::string("[") + Good + "]", V, nullptr))
        << "rejected valid JSON number: " << Good;
    ASSERT_EQ(V.size(), 1u);
    EXPECT_EQ(V.at(0)->asDouble(), strtod(Good, nullptr));
  }
}

TEST(MetricsShardTest, ShardBuffersUntilPublished) {
  ScopedMetrics On;
  TelemetryHistogram &H = MetricsRegistry::instance().getOrCreate(
      "test_registry", "sharded", MetricUnit::Count,
      MetricClass::Deterministic);
  H.reset();
  MetricsShard::Buffer Taken;
  {
    MetricsShard Shard;
    H.record(11);
    H.record(13);
    // Buffered in the shard: the published global state is still empty.
    EXPECT_EQ(H.read().count(), 0u);
    Taken = Shard.take();
  }
  // take() emptied the shard, so its destructor had nothing to publish.
  EXPECT_EQ(H.read().count(), 0u);
  MetricsShard::publish(Taken);
  Histogram Global = H.read();
  EXPECT_EQ(Global.count(), 2u);
  EXPECT_EQ(Global.sum(), 24u);
  H.reset();
}

TEST(MetricsShardTest, DestructorPublishesUntakenBuffer) {
  ScopedMetrics On;
  TelemetryHistogram &H = MetricsRegistry::instance().getOrCreate(
      "test_registry", "shard_dtor", MetricUnit::Count,
      MetricClass::Deterministic);
  H.reset();
  {
    MetricsShard Shard;
    H.record(7);
  }
  EXPECT_EQ(H.read().count(), 1u);
  H.reset();
}

//===----------------------------------------------------------------------===//
// Folded flamegraph derivation
//===----------------------------------------------------------------------===//

TraceEvent mkEvent(char Phase, const char *Name, uint64_t Us,
                   uint32_t Thread = 0) {
  TraceEvent E;
  E.Phase = Phase;
  E.Name = Name;
  E.TimestampNs = Us * 1000;
  E.ThreadId = Thread;
  return E;
}

TEST(FoldedFlameTest, GoldenNestedStacks) {
  // compile[0..100us] { simulate[10..40], optimize[50..90] } — self time:
  // compile 30us (10 + 10 + 10), simulate 30us, optimize 40us.
  std::vector<TraceEvent> Events = {
      mkEvent('B', "compile", 0),   mkEvent('B', "simulate", 10),
      mkEvent('E', "simulate", 40), mkEvent('B', "optimize", 50),
      mkEvent('E', "optimize", 90), mkEvent('E', "compile", 100),
  };
  EXPECT_EQ(renderFoldedStacks(Events),
            "compile 30\n"
            "compile;optimize 40\n"
            "compile;simulate 30\n");
}

TEST(FoldedFlameTest, ThreadsFoldIndependentlyThenAggregate) {
  // The same stack on two threads sums; a thread-private stack stands
  // alone. Output order is lexicographic regardless of event order.
  std::vector<TraceEvent> Events = {
      mkEvent('B', "compile", 0, 0),  mkEvent('B', "compile", 0, 1),
      mkEvent('B', "other", 20, 1),   mkEvent('E', "other", 30, 1),
      mkEvent('E', "compile", 10, 0), mkEvent('E', "compile", 30, 1),
  };
  EXPECT_EQ(renderFoldedStacks(Events), "compile 30\n"
                                        "compile;other 10\n");
}

TEST(FoldedFlameTest, InstantEventsAndEmptyStreamsAreHarmless) {
  EXPECT_EQ(renderFoldedStacks({}), "");
  std::vector<TraceEvent> Events = {
      mkEvent('B', "compile", 0),
      mkEvent('i', "quarantine", 5),
      mkEvent('E', "compile", 20),
  };
  EXPECT_EQ(renderFoldedStacks(Events), "compile 20\n");
}

TEST(FoldedFlameTest, UnbalancedSessionRefusesToWrite) {
  TraceSession Session;
  {
    ScopedTraceAttach Attach(Session);
    TraceSpan Open(&Session, "left-open", "test");
    std::string Error;
    EXPECT_FALSE(Session.writeFolded("/nonexistent-dir/x.folded", &Error));
    EXPECT_NE(Error.find("unbalanced"), std::string::npos) << Error;
  }
}

//===----------------------------------------------------------------------===//
// BenchCompare engine
//===----------------------------------------------------------------------===//

std::string tinyReport(double Cycles, double Ms, double Size) {
  char Buf[512];
  snprintf(Buf, sizeof(Buf),
           "{\"schema\":\"dbds-bench-report\",\"version\":2,"
           "\"suite\":\"t\",\"benchmarks\":[{\"name\":\"b\",\"configs\":{"
           "\"dbds\":{\"dynamic_cycles\":%.1f,\"compile_time_ms\":%.3f,"
           "\"code_size\":%.1f}}}]}",
           Cycles, Ms, Size);
  return Buf;
}

TEST(BenchCompareTest, IdenticalReportsHaveNoRegressions) {
  std::string R = tinyReport(1000, 10, 200);
  BenchCompareResult Res = compareBenchReports(R, R, BenchCompareOptions());
  EXPECT_TRUE(Res.Ok);
  EXPECT_EQ(Res.Regressions, 0u);
  EXPECT_GT(Res.Compared, 0u);
}

TEST(BenchCompareTest, RegressionPastThresholdGates) {
  BenchCompareOptions Opts; // 10%
  BenchCompareResult Res = compareBenchReports(
      tinyReport(1000, 10, 200), tinyReport(1150, 10, 200), Opts);
  EXPECT_TRUE(Res.Ok);
  EXPECT_EQ(Res.Regressions, 1u); // +15% cycles
  Opts.ThresholdPct = 20.0;
  Res = compareBenchReports(tinyReport(1000, 10, 200),
                            tinyReport(1150, 10, 200), Opts);
  EXPECT_EQ(Res.Regressions, 0u);
}

TEST(BenchCompareTest, ImprovementsNeverGate) {
  BenchCompareResult Res =
      compareBenchReports(tinyReport(1000, 10, 200), tinyReport(500, 5, 100),
                          BenchCompareOptions());
  EXPECT_TRUE(Res.Ok);
  EXPECT_EQ(Res.Regressions, 0u);
}

std::string counterReport(const char *Counters) {
  std::string Out =
      "{\"schema\":\"dbds-bench-report\",\"version\":2,"
      "\"suite\":\"t\",\"benchmarks\":[{\"name\":\"b\",\"configs\":{"
      "\"dbds\":{\"dynamic_cycles\":1000,\"compile_time_ms\":10,"
      "\"code_size\":200,\"counters\":{";
  Out += Counters;
  Out += "}}}}]}";
  return Out;
}

// The pea.* family is optimizer work done, so it gates on shrinkage:
// fewer loads forwarded / allocations virtualized than the baseline run
// is the regression, growth never is.
TEST(BenchCompareTest, PeaCounterShrinkageGates) {
  BenchCompareOptions Opts; // 10% threshold
  BenchCompareResult Res = compareBenchReports(
      counterReport("\"pea.loads_forwarded\":100"),
      counterReport("\"pea.loads_forwarded\":80"), Opts);
  EXPECT_TRUE(Res.Ok);
  EXPECT_EQ(Res.Regressions, 1u);

  Res = compareBenchReports(counterReport("\"pea.loads_forwarded\":100"),
                            counterReport("\"pea.loads_forwarded\":200"),
                            Opts);
  EXPECT_TRUE(Res.Ok);
  EXPECT_EQ(Res.Regressions, 0u);
}

TEST(BenchCompareTest, PeaCounterMissingOnNewSideIsACollapseToZero) {
  // Zero-valued counters are omitted from reports, so a vanished
  // pea.allocs_sunk means the sinking stopped happening entirely — the
  // worst shrinkage. A key only the new side has is not comparable.
  BenchCompareResult Res = compareBenchReports(
      counterReport("\"pea.allocs_sunk\":5"),
      counterReport("\"pea.loads_forwarded\":5"), BenchCompareOptions());
  EXPECT_TRUE(Res.Ok);
  EXPECT_EQ(Res.Regressions, 1u);
}

TEST(BenchCompareTest, MalformedInputFailsClosed) {
  BenchCompareResult Res = compareBenchReports("nonsense", "also nonsense",
                                               BenchCompareOptions());
  EXPECT_FALSE(Res.Ok);
  EXPECT_FALSE(Res.Error.empty());
}

//===----------------------------------------------------------------------===//
// The acceptance criterion: deterministic metrics across --jobs
//===----------------------------------------------------------------------===//

/// Compiles the 5-seed generated corpus under all three configs at the
/// given parallelism and returns the deterministic-class metrics JSON.
std::string corpusDeterministicMetricsJson(unsigned Jobs) {
  const SuiteSpec Corpus =
      generatorCorpusSuite(/*Seed=*/900, /*Benchmarks=*/5, /*Functions=*/5,
                           /*Segments=*/5);
  MetricsRegistry::instance().resetAll();
  RunnerOptions Opts;
  Opts.Verify = true;
  CompileService Service(Jobs);
  const RunConfig Configs[] = {RunConfig::Baseline, RunConfig::DBDS,
                               RunConfig::DupALot};
  for (const BenchmarkSpec &Spec : Corpus.Benchmarks) {
    for (RunConfig Config : Configs) {
      GeneratedWorkload W = generateWorkload(Spec.Config);
      compileFunctionsParallel(Service, W, Config, Opts, Spec.Name);
    }
  }
  std::string Json = MetricsRegistry::renderJson(
      MetricsRegistry::instance().snapshot(/*DeterministicOnly=*/true));
  MetricsRegistry::instance().resetAll();
  return Json;
}

TEST(MetricsDeterminismTest, JobsOneAndJobsEightMetricsAreByteIdentical) {
  ScopedMetrics On;
  std::string Serial = corpusDeterministicMetricsJson(1);
  std::string Parallel = corpusDeterministicMetricsJson(8);
  // The metrics must exist (the corpus compiles real functions)...
  EXPECT_NE(Serial.find("compile_service.ir_growth_pct"), std::string::npos);
  EXPECT_NE(Serial.find("interpreter.run_steps"), std::string::npos);
  // ...and the deterministic-class JSON must not depend on scheduling.
  EXPECT_EQ(Serial, Parallel);
}

TEST(MetricsDeterminismTest, InterruptedRunsRecordNoDeterministicSamples) {
  // An interrupted run's sample counts depend on cancellation timing,
  // which is schedule-dependent: the interpreter must drop both run_steps
  // and the buffered steps_per_checkpoint strides for such runs, or the
  // Deterministic classification of those histograms is a lie under
  // deadlines/budgets.
  ScopedMetrics On;
  MetricsRegistry &Reg = MetricsRegistry::instance();
  TelemetryHistogram &Checkpoints =
      Reg.getOrCreate("interpreter", "steps_per_checkpoint",
                      MetricUnit::Count, MetricClass::Deterministic);
  TelemetryHistogram &RunSteps = Reg.getOrCreate(
      "interpreter", "run_steps", MetricUnit::Count,
      MetricClass::Deterministic);
  Checkpoints.reset();
  RunSteps.reset();

  ParseResult R = parseModule(R"(
func @f(int) {
b0:
  %n = param 0
  %zero = const 0
  jump b1
b1:
  %i = phi int [%zero, b0], [%inext, b2]
  %c = cmp lt %i, %n
  if %c, b2, b3
b2:
  %one = const 1
  %inext = add %i, %one
  jump b1
b3:
  ret %i
}
)");
  ASSERT_TRUE(R) << R.Error;
  Function *F = R.Mod->functions()[0];

  // A completed run feeds both histograms.
  {
    Interpreter Interp(*R.Mod);
    CancellationToken Token;
    Interp.setCancellation(&Token);
    Interp.setPollInterval(4);
    ExecutionResult E = Interp.run(*F, ArrayRef<int64_t>({64}));
    ASSERT_TRUE(E.Ok);
    EXPECT_FALSE(E.Interrupted);
  }
  EXPECT_EQ(RunSteps.read().count(), 1u);
  const uint64_t CompletedStrides = Checkpoints.read().count();
  EXPECT_GT(CompletedStrides, 0u);

  // The same program cancelled mid-run contributes nothing, even though
  // it passed several checkpoints before the token fired.
  {
    Interpreter Interp(*R.Mod);
    CancellationToken Token;
    Interp.setCancellation(&Token);
    Interp.setPollInterval(4);
    unsigned Seen = 0;
    Interp.setObserver([&Seen, &Token](const Instruction *,
                                       const RuntimeValue &) {
      if (++Seen == 100)
        Token.requestCancel();
    });
    ExecutionResult E = Interp.run(*F, ArrayRef<int64_t>({64}));
    EXPECT_TRUE(E.Interrupted);
    EXPECT_FALSE(E.Ok);
  }
  EXPECT_EQ(RunSteps.read().count(), 1u);
  EXPECT_EQ(Checkpoints.read().count(), CompletedStrides);
  Checkpoints.reset();
  RunSteps.reset();
}

} // namespace
