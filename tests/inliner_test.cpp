//===- tests/inliner_test.cpp - Invokes and the §5.1 inliner ---------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Inliner.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

std::unique_ptr<Module> parseOk(const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  if (R) {
    for (Function *F : R.Mod->functions())
      EXPECT_EQ(verifyFunction(*F), "");
  }
  return std::move(R.Mod);
}

unsigned countOpcode(Function &F, Opcode Op) {
  unsigned Count = 0;
  for (Block *B : F.blocks())
    for (Instruction *I : *B)
      Count += I->getOpcode() == Op ? 1 : 0;
  return Count;
}

const char *TwoFunctions = R"(
func @double(int) {
b0:
  %x = param 0
  %two = const 2
  %r = mul %x, %two
  ret %r
}

func @main(int) {
b0:
  %a = param 0
  %d = invoke @double(%a)
  %one = const 1
  %r = add %d, %one
  ret %r
}
)";

TEST(InvokeTest, ParsesPrintsAndInterprets) {
  auto M = parseOk(TwoFunctions);
  ASSERT_TRUE(M);
  std::string Printed = printModule(M.get());
  EXPECT_NE(Printed.find("invoke @double("), std::string::npos);

  ParseResult Again = parseModule(Printed);
  ASSERT_TRUE(Again) << Again.Error;

  Interpreter Interp(*M);
  ExecutionResult R =
      Interp.run(*M->getFunction("main"), ArrayRef<int64_t>({10}));
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Result.Scalar, 21);
}

TEST(InvokeTest, RecursionIsBoundedByFuel) {
  auto M = parseOk(R"(
func @loop(int) {
b0:
  %x = param 0
  %r = invoke @loop(%x)
  ret %r
}
)");
  ASSERT_TRUE(M);
  Interpreter Interp(*M);
  ExecutionResult R =
      Interp.run(*M->getFunction("loop"), ArrayRef<int64_t>({1}), 100000);
  EXPECT_FALSE(R.Ok); // depth limit / fuel, not a crash
}

TEST(InvokeTest, CloneAndDuplicationPreserveInvokes) {
  auto M = parseOk(TwoFunctions);
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  auto Clone = Main->clone();
  EXPECT_EQ(verifyFunction(*Clone), "");
  EXPECT_EQ(countOpcode(*Clone, Opcode::Invoke), 1u);
}

TEST(InlinerTest, InlinesStraightLineCallee) {
  auto M = parseOk(TwoFunctions);
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  unsigned Inlined = inlineInvokes(*Main, *M);
  EXPECT_EQ(Inlined, 1u);
  ASSERT_EQ(verifyFunction(*Main), "");
  EXPECT_EQ(countOpcode(*Main, Opcode::Invoke), 0u);

  Interpreter Interp(*M);
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({10})).Result.Scalar, 21);
  // After inlining, no call overhead remains and the body can fold: run
  // the pipeline and re-check.
  PhaseManager PM = PhaseManager::standardPipeline(true, M.get());
  PM.run(*Main);
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({10})).Result.Scalar, 21);
}

TEST(InlinerTest, InlinesBranchyCalleeWithMultipleReturns) {
  auto M = parseOk(R"(
func @max(int, int) {
b0:
  %a = param 0
  %b = param 1
  %c = cmp gt %a, %b
  if %c, b1, b2 !0.5
b1:
  ret %a
b2:
  ret %b
}

func @main(int, int) {
b0:
  %x = param 0
  %y = param 1
  %m = invoke @max(%x, %y)
  %one = const 1
  %r = add %m, %one
  ret %r
}
)");
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  Interpreter Interp(*M);
  int64_t R1 = Interp.run(*Main, ArrayRef<int64_t>({3, 9})).Result.Scalar;
  int64_t R2 = Interp.run(*Main, ArrayRef<int64_t>({9, 3})).Result.Scalar;

  EXPECT_EQ(inlineInvokes(*Main, *M), 1u);
  ASSERT_EQ(verifyFunction(*Main), "");
  // The continuation now has a return-value phi fed by both return paths.
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({3, 9})).Result.Scalar, R1);
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({9, 3})).Result.Scalar, R2);
}

TEST(InlinerTest, InlinesLoopingCallee) {
  auto M = parseOk(R"(
func @sum(int) {
b0:
  %n = param 0
  %z = const 0
  jump b1
b1:
  %i = phi int [%z, b0], [%inext, b2]
  %acc = phi int [%z, b0], [%accnext, b2]
  %c = cmp lt %i, %n
  if %c, b2, b3 !0.9
b2:
  %accnext = add %acc, %i
  %one = const 1
  %inext = add %i, %one
  jump b1
b3:
  ret %acc
}

func @main(int) {
b0:
  %x = param 0
  %s = invoke @sum(%x)
  %s2 = invoke @sum(%s)
  %r = add %s, %s2
  ret %r
}
)");
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  Interpreter Interp(*M);
  int64_t Before = Interp.run(*Main, ArrayRef<int64_t>({6})).Result.Scalar;

  EXPECT_EQ(inlineInvokes(*Main, *M), 2u);
  ASSERT_EQ(verifyFunction(*Main), "");
  EXPECT_EQ(countOpcode(*Main, Opcode::Invoke), 0u);
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({6})).Result.Scalar, Before);
}

TEST(InlinerTest, RespectsSizeLimits) {
  auto M = parseOk(TwoFunctions);
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  InlinerConfig Config;
  Config.MaxCalleeSize = 1; // nothing fits
  EXPECT_EQ(inlineInvokes(*Main, *M, Config), 0u);
  EXPECT_EQ(countOpcode(*Main, Opcode::Invoke), 1u);
}

TEST(InlinerTest, SkipsRecursiveAndUnknownCallees) {
  auto M = parseOk(R"(
func @self(int) {
b0:
  %x = param 0
  %r = invoke @self(%x)
  %r2 = invoke @nothere(%x)
  %t = add %r, %r2
  ret %t
}
)");
  ASSERT_TRUE(M);
  Function *F = M->getFunction("self");
  EXPECT_EQ(inlineInvokes(*F, *M), 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Invoke), 2u);
}

TEST(InlinerTest, NestedInvokesInlineAcrossRounds) {
  auto M = parseOk(R"(
func @inc(int) {
b0:
  %x = param 0
  %one = const 1
  %r = add %x, %one
  ret %r
}

func @inc2(int) {
b0:
  %x = param 0
  %a = invoke @inc(%x)
  %b = invoke @inc(%a)
  ret %b
}

func @main(int) {
b0:
  %x = param 0
  %r = invoke @inc2(%x)
  ret %r
}
)");
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  unsigned Inlined = inlineInvokes(*Main, *M);
  EXPECT_EQ(Inlined, 3u); // inc2, then its two incs next round
  ASSERT_EQ(verifyFunction(*Main), "");
  EXPECT_EQ(countOpcode(*Main, Opcode::Invoke), 0u);
  Interpreter Interp(*M);
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({40})).Result.Scalar, 42);
}

TEST(InlinerTest, InliningFeedsDBDS) {
  // The §5.1 pipeline ordering: inlining lands a branchy callee inside
  // the caller; duplication then specializes the call-path constant.
  auto M = parseOk(R"(
func @clamp(int) {
b0:
  %x = param 0
  %z = const 0
  %c = cmp lt %x, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %r = phi int [%z, b1], [%x, b2]
  ret %r
}

func @main(int) {
b0:
  %x = param 0
  %mask = const 255
  %pos = and %x, %mask
  %v = invoke @clamp(%pos)
  %one = const 1
  %r = add %v, %one
  ret %r
}
)");
  ASSERT_TRUE(M);
  Function *Main = M->getFunction("main");
  Interpreter Interp(*M);
  int64_t Before = Interp.run(*Main, ArrayRef<int64_t>({77})).Result.Scalar;

  EXPECT_EQ(inlineInvokes(*Main, *M), 1u);
  PhaseManager PM = PhaseManager::standardPipeline(true, M.get());
  PM.run(*Main);
  DBDSConfig Config;
  Config.ClassTable = M.get();
  runDBDS(*Main, Config);
  ASSERT_EQ(verifyFunction(*Main), "");
  EXPECT_EQ(Interp.run(*Main, ArrayRef<int64_t>({77})).Result.Scalar,
            Before);
  // The inlined clamp's branch folds away entirely: pos is provably
  // non-negative ([0,255]), so CE kills the x < 0 test.
  EXPECT_EQ(countOpcode(*Main, Opcode::If), 0u);
  EXPECT_EQ(countOpcode(*Main, Opcode::Phi), 0u);
}

} // namespace
