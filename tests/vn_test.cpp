//===- tests/vn_test.cpp - Dominator-based value numbering ------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "ir/Parser.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const std::string &Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

unsigned countOpcode(Function &F, Opcode Op) {
  unsigned Count = 0;
  for (Block *B : F.blocks())
    for (Instruction *I : *B)
      Count += I->getOpcode() == Op ? 1 : 0;
  return Count;
}

TEST(ValueNumberingTest, RemovesRecomputationInSameBlock) {
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %x = add %a, %b
  %y = add %a, %b
  %r = mul %x, %y
  ret %r
}
)");
  ValueNumbering VN;
  EXPECT_TRUE(VN.run(*P.F));
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::Add), 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({3, 4})).Result.Scalar, 49);
}

TEST(ValueNumberingTest, CommutativeOperandsNormalize) {
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %x = add %a, %b
  %y = add %b, %a
  %r = sub %x, %y
  ret %r
}
)");
  ValueNumbering VN;
  EXPECT_TRUE(VN.run(*P.F));
  // add(a,b) == add(b,a); then x - x. The canonicalizer finishes the job.
  EXPECT_EQ(countOpcode(*P.F, Opcode::Add), 1u);
  Canonicalizer Canon;
  Canon.run(*P.F);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({9, 2})).Result.Scalar, 0);
}

TEST(ValueNumberingTest, NonCommutativeOperandsDoNotNormalize) {
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %x = sub %a, %b
  %y = sub %b, %a
  %r = add %x, %y
  ret %r
}
)");
  ValueNumbering VN;
  VN.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Sub), 2u); // both survive
}

TEST(ValueNumberingTest, ReusesValueFromDominator) {
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %x = mul %a, %b
  %z = const 0
  %c = cmp gt %x, %z
  if %c, b1, b2 !0.5
b1:
  %y = mul %a, %b
  ret %y
b2:
  ret %z
}
)");
  ValueNumbering VN;
  EXPECT_TRUE(VN.run(*P.F));
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(countOpcode(*P.F, Opcode::Mul), 1u);
}

TEST(ValueNumberingTest, DoesNotReuseAcrossSiblingBranches) {
  // The compute in b1 does not dominate b2: both must survive.
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  %x = mul %a, %b
  ret %x
b2:
  %y = mul %a, %b
  ret %y
}
)");
  ValueNumbering VN;
  VN.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::Mul), 2u);
}

TEST(ValueNumberingTest, ComparesNumberByPredicate) {
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %c1 = cmp lt %a, %b
  %c2 = cmp lt %a, %b
  %c3 = cmp gt %a, %b
  %t = add %c1, %c2
  %r = add %t, %c3
  ret %r
}
)");
  ValueNumbering VN;
  EXPECT_TRUE(VN.run(*P.F));
  EXPECT_EQ(countOpcode(*P.F, Opcode::Cmp), 2u); // lt deduped, gt kept
}

TEST(ValueNumberingTest, MemoryOperationsAreNotNumbered) {
  // Two identical loads may see different memory (that is read
  // elimination's job, with proper kill analysis).
  Parsed P = parse(R"(
class A 1

func @f(obj, int) {
b0:
  %a = param 0
  %v = param 1
  %l1 = load %a, 0
  %x = call 1(%v)
  %l2 = load %a, 0
  %t = add %l1, %l2
  %r = add %t, %x
  ret %r
}
)");
  ValueNumbering VN;
  VN.run(*P.F);
  EXPECT_EQ(countOpcode(*P.F, Opcode::LoadField), 2u);
}

TEST(ValueNumberingTest, CleansUpAfterDuplicationInPipeline) {
  // After duplication, copies recompute values available in the
  // predecessor; the pipeline's VN pass must collapse them.
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %x = mul %a, %b
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  %y = mul %a, %b
  %t = add %y, %phi
  ret %t
}
)");
  Interpreter Interp(*P.Mod);
  int64_t R1 = Interp.run(*P.F, ArrayRef<int64_t>({3, 4})).Result.Scalar;
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  runDBDS(*P.F, Config);
  ASSERT_EQ(verifyFunction(*P.F), "");
  // The duplicated mul(a,b) copies all collapse onto the dominating one.
  EXPECT_EQ(countOpcode(*P.F, Opcode::Mul), 1u);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({3, 4})).Result.Scalar, R1);
}

} // namespace
