//===- tests/dbds_test.cpp - Simulation, trade-off, duplication ------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/CostModel.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Duplicator.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "vm/Interpreter.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

/// Parses, returns (module, function) for single-function sources.
struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

unsigned countOpcode(Function &F, Opcode Op) {
  unsigned Count = 0;
  for (Block *B : F.blocks())
    for (Instruction *I : *B)
      Count += I->getOpcode() == Op ? 1 : 0;
  return Count;
}

// ---- Simulation tier ----------------------------------------------------

TEST(SimulatorTest, Figure1FindsConstantFoldOnTheConstantPredecessor) {
  Parsed P = parse(paper::Figure1);
  SimulationStats Stats;
  auto Candidates = simulateDuplications(*P.F, P.Mod.get(), &Stats);
  EXPECT_EQ(Stats.PairsSimulated, 2u);
  // Every pair saves at least the predecessor's jump; exactly one (the
  // x<=0 predecessor, where phi == 0) additionally folds 2 + phi.
  ASSERT_EQ(Candidates.size(), 2u);
  unsigned WithFold = 0;
  for (const auto &C : Candidates)
    WithFold += C.CyclesSaved > opcodeCycles(Opcode::Jump) ? 1 : 0;
  EXPECT_EQ(WithFold, 1u);
  EXPECT_GE(Stats.ConstantFolds, 1u);
}

TEST(SimulatorTest, Listing1FindsConditionalEliminationOnBothPredecessors) {
  Parsed P = parse(paper::Listing1);
  SimulationStats Stats;
  auto Candidates = simulateDuplications(*P.F, P.Mod.get(), &Stats);
  // Else predecessor: p == 13 -> 13 > 12 folds. True predecessor: p == i
  // with i > 0 known — not decisive, so exactly one candidate beyond the
  // universal jump saving.
  unsigned WithCE = 0;
  for (const auto &C : Candidates)
    WithCE += C.CyclesSaved > opcodeCycles(Opcode::Jump) ? 1 : 0;
  EXPECT_EQ(WithCE, 1u);
  EXPECT_GE(Stats.ConditionalEliminations, 1u);
}

TEST(SimulatorTest, Listing3FindsEscapeAnalysisOpportunity) {
  Parsed P = parse(paper::Listing3);
  SimulationStats Stats;
  auto Candidates = simulateDuplications(*P.F, P.Mod.get(), &Stats);
  EXPECT_GE(Stats.AllocationSinks, 1u);
  EXPECT_GE(Stats.ReadEliminations, 1u); // load(new, 0) forwards the store
  // The allocation predecessor must be a candidate with the allocation's
  // cost (8) plus its store and the load in its benefit.
  bool FoundBig = false;
  for (const auto &C : Candidates)
    FoundBig |= C.CyclesSaved >= 8.0;
  EXPECT_TRUE(FoundBig);
}

TEST(SimulatorTest, Listing5FindsReadElimination) {
  Parsed P = parse(paper::Listing5);
  SimulationStats Stats;
  auto Candidates = simulateDuplications(*P.F, P.Mod.get(), &Stats);
  // Read2 becomes fully redundant on the Read1 predecessor only.
  unsigned WithRE = 0;
  for (const auto &C : Candidates)
    WithRE += C.CyclesSaved > opcodeCycles(Opcode::Jump) ? 1 : 0;
  EXPECT_EQ(WithRE, 1u);
  EXPECT_GE(Stats.ReadEliminations, 1u);
}

TEST(SimulatorTest, Figure3FindsStrengthReductionWorth31Cycles) {
  Parsed P = parse(paper::Figure3);
  SimulationStats Stats;
  auto Candidates = simulateDuplications(*P.F, P.Mod.get(), &Stats);
  EXPECT_GE(Stats.StrengthReductions, 1u);
  // §4.1: "the original division needs 32 cycles ... the shift only takes
  // 1 ... CS is computed as 32 - 1 = 31".
  bool Found31 = false;
  for (const auto &C : Candidates)
    Found31 |= C.CyclesSaved >= 31.0 && C.CyclesSaved <= 33.0;
  EXPECT_TRUE(Found31);
}

TEST(SimulatorTest, DoesNotMutateTheFunction) {
  Parsed P = parse(paper::Figure3);
  std::string Before = printFunction(P.F);
  simulateDuplications(*P.F, P.Mod.get());
  EXPECT_EQ(printFunction(P.F), Before);
  EXPECT_EQ(verifyFunction(*P.F), "");
}

TEST(SimulatorTest, LoopHeadersAreNotCandidates) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %p = param 0
  %zero = const 0
  jump b1
b1:
  %i = phi int [%zero, b0], [%inext, b1]
  %one = const 1
  %inext = add %i, %one
  %c = cmp lt %inext, %p
  if %c, b1, b2 !0.9
b2:
  ret %i
}
)");
  auto Candidates = simulateDuplications(*P.F, P.Mod.get());
  EXPECT_TRUE(Candidates.empty());
}

// ---- Trade-off tier -----------------------------------------------------

TEST(TradeoffTest, ImplementsThePaperFormula) {
  DBDSConfig Config; // BS = 256, IB = 1.5, MS = 65536
  // (b * p * 256) > c.
  EXPECT_TRUE(shouldDuplicate(31.0, 1.0, 20, 100, 100, Config));
  EXPECT_FALSE(shouldDuplicate(0.0, 1.0, 1, 100, 100, Config));
  // Cold block: probability scales the benefit away.
  EXPECT_FALSE(shouldDuplicate(31.0, 0.000001, 20, 100, 100, Config));
  // Unit at the VM size limit.
  EXPECT_FALSE(
      shouldDuplicate(31.0, 1.0, 20, Config.MaxUnitSize, 100, Config));
  // Budget: current + cost must stay below initial * 1.5.
  EXPECT_FALSE(shouldDuplicate(31.0, 1.0, 60, 100, 100, Config));
  EXPECT_TRUE(shouldDuplicate(31.0, 1.0, 49, 100, 100, Config));
}

TEST(TradeoffTest, BenefitScaleIsTunable) {
  DBDSConfig Config;
  Config.BenefitScale = 1.0;
  EXPECT_FALSE(shouldDuplicate(10.0, 1.0, 20, 100, 1000, Config));
  Config.BenefitScale = 256.0;
  EXPECT_TRUE(shouldDuplicate(10.0, 1.0, 20, 100, 1000, Config));
}

// ---- Duplication transformation ------------------------------------------

TEST(DuplicatorTest, Figure1DuplicationPreservesSemanticsAndVerifies) {
  Parsed P = parse(paper::Figure1);
  Interpreter Interp(*P.Mod);
  int64_t Before5 = Interp.run(*P.F, ArrayRef<int64_t>({5})).Result.Scalar;
  int64_t BeforeM3 = Interp.run(*P.F, ArrayRef<int64_t>({-3})).Result.Scalar;

  Block *Merge = nullptr;
  for (Block *B : P.F->blocks())
    if (B->isMerge())
      Merge = B;
  ASSERT_NE(Merge, nullptr);
  Block *Pred = Merge->preds()[0];
  ASSERT_TRUE(canDuplicateInto(Merge, Pred));
  duplicateIntoPredecessor(*P.F, Merge, Pred);

  EXPECT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({5})).Result.Scalar, Before5);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-3})).Result.Scalar,
            BeforeM3);
  // The merge lost one predecessor.
  EXPECT_EQ(Merge->getNumPreds(), 1u);
}

TEST(DuplicatorTest, DuplicatingAllPredecessorsRemovesTheMergePhi) {
  Parsed P = parse(paper::Figure1);
  Block *Merge = nullptr;
  for (Block *B : P.F->blocks())
    if (B->isMerge())
      Merge = B;
  ASSERT_NE(Merge, nullptr);
  // Duplicate into both predecessors.
  while (Merge->isMerge()) {
    Block *Pred = Merge->preds()[0];
    ASSERT_TRUE(canDuplicateInto(Merge, Pred));
    duplicateIntoPredecessor(*P.F, Merge, Pred);
    ASSERT_EQ(verifyFunction(*P.F), "");
  }
  EXPECT_EQ(Merge->getNumPreds(), 1u);
}

TEST(DuplicatorTest, SSARepairInsertsPhisForDominatedUses) {
  // A value computed in the merge block is used further down, past another
  // join — duplication must reroute that use through new phis.
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %zero = const 0
  %c = cmp gt %a, %zero
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%zero, b2]
  %v = add %phi, %b
  %c2 = cmp gt %v, %b
  if %c2, b4, b5 !0.5
b4:
  jump b6
b5:
  jump b6
b6:
  %r = mul %v, %v
  ret %r
}
)");
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t A, int64_t B) {
    return Interp.run(*P.F, ArrayRef<int64_t>({A, B})).Result.Scalar;
  };
  int64_t R1 = Run(3, 4), R2 = Run(-3, 4);

  Block *Merge = P.F->getBlockById(3);
  ASSERT_NE(Merge, nullptr);
  ASSERT_TRUE(Merge->isMerge());
  duplicateIntoPredecessor(*P.F, Merge, Merge->preds()[0]);
  ASSERT_EQ(verifyFunction(*P.F), "");

  EXPECT_EQ(Run(3, 4), R1);
  EXPECT_EQ(Run(-3, 4), R2);
  // %v now has two definitions; a repair phi must exist in b6 or b3's
  // replacement region (at least one extra phi somewhere).
  EXPECT_GE(countOpcode(*P.F, Opcode::Phi), 2u);
}

// ---- Full three-tier runs -------------------------------------------------

TEST(DBDSPhaseTest, Figure1BecomesFigure1c) {
  Parsed P = parse(paper::Figure1);
  Interpreter Interp(*P.Mod);
  uint64_t CyclesBefore =
      Interp.run(*P.F, ArrayRef<int64_t>({-3})).DynamicCycles;

  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  DBDSResult R = runDBDS(*P.F, Config);
  EXPECT_EQ(verifyFunction(*P.F), "");
  EXPECT_GE(R.DuplicationsPerformed, 1u);

  // Semantics preserved.
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({5})).Result.Scalar, 7);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-3})).Result.Scalar, 2);
  // The x<=0 path is now cheaper (the add folded away, Figure 1c).
  EXPECT_LT(Interp.run(*P.F, ArrayRef<int64_t>({-3})).DynamicCycles,
            CyclesBefore);
}

TEST(DBDSPhaseTest, Listing1BecomesListing2) {
  Parsed P = parse(paper::Listing1);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  runDBDS(*P.F, Config);
  EXPECT_EQ(verifyFunction(*P.F), "");

  Interpreter Interp(*P.Mod);
  auto foo = [&](int64_t I) {
    return Interp.run(*P.F, ArrayRef<int64_t>({I})).Result.Scalar;
  };
  EXPECT_EQ(foo(20), 12);
  EXPECT_EQ(foo(5), 5);
  EXPECT_EQ(foo(-7), 12);
  // Listing 2: the else path no longer evaluates p > 12 — at most one
  // comparison remains (the duplicated one in the then path).
  EXPECT_LE(countOpcode(*P.F, Opcode::Cmp), 2u);
}

TEST(DBDSPhaseTest, Listing3BecomesListing4_AllocationDisappears) {
  Parsed P = parse(paper::Listing3);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  runDBDS(*P.F, Config);
  EXPECT_EQ(verifyFunction(*P.F), "");

  // Listing 4: no allocation remains on the null path.
  EXPECT_EQ(countOpcode(*P.F, Opcode::New), 0u);

  Interpreter Interp(*P.Mod);
  RuntimeValue Args[2] = {RuntimeValue::null(), RuntimeValue::ofInt(42)};
  EXPECT_EQ(
      Interp.run(*P.F, ArrayRef<RuntimeValue>(Args, 2)).Result.Scalar, 42);
  Interp.reset();
  RuntimeValue Obj = Interp.allocate(0);
  Interp.writeField(Obj, 0, 99);
  RuntimeValue Args2[2] = {Obj, RuntimeValue::ofInt(1)};
  EXPECT_EQ(
      Interp.run(*P.F, ArrayRef<RuntimeValue>(Args2, 2)).Result.Scalar, 99);
}

TEST(DBDSPhaseTest, Listing5BecomesListing6_ReadBecomesRedundant) {
  Parsed P = parse(paper::Listing5);
  unsigned LoadsBefore = countOpcode(*P.F, Opcode::LoadField);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  runDBDS(*P.F, Config);
  EXPECT_EQ(verifyFunction(*P.F), "");
  // Listing 6: the true path reuses Read1's value — total loads do not
  // grow, and the hot path executes one load instead of two.
  EXPECT_LE(countOpcode(*P.F, Opcode::LoadField), LoadsBefore);

  Interpreter Interp(*P.Mod);
  RuntimeValue Obj = Interp.allocate(0);
  Interp.writeField(Obj, 0, 7);
  RuntimeValue Args[2] = {Obj, RuntimeValue::ofInt(5)};
  ExecutionResult E = Interp.run(*P.F, ArrayRef<RuntimeValue>(Args, 2));
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.Result.Scalar, 7);
  EXPECT_EQ(Interp.readField(Obj, 1), 7); // the store happened
}

TEST(DBDSPhaseTest, Figure3DivisionBecomesShift) {
  Parsed P = parse(paper::Figure3);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  runDBDS(*P.F, Config);
  EXPECT_EQ(verifyFunction(*P.F), "");
  // Figure 3e: the constant-divisor path uses a right shift.
  EXPECT_GE(countOpcode(*P.F, Opcode::Shr), 1u);

  Interpreter Interp(*P.Mod);
  auto f = [&](int64_t A, int64_t B, int64_t X) {
    return Interp.run(*P.F, ArrayRef<int64_t>({A, B, X})).Result.Scalar;
  };
  EXPECT_EQ(f(1, 2, 100), 100 / 2);        // a <= b: divide by 2
  EXPECT_EQ(f(5, 2, 100), 100 / (100 + 1)); // a > b: divide by x+1
}

TEST(DBDSPhaseTest, DupalotIgnoresTheTradeoff) {
  // A merge whose benefit is tiny and cold: DBDS declines, dupalot takes.
  Parsed P = parse(R"(
func @f(int) {
b0:
  %p = param 0
  %zero = const 0
  %c = cmp gt %p, %zero
  if %c, b1, b2 !0.999
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%p, b1], [%zero, b2]
  %one = const 1
  %r = add %phi, %one
  %r2 = mul %r, %r
  %r3 = xor %r2, %p
  %r4 = add %r3, %r2
  %r5 = mul %r4, %r3
  %r6 = add %r5, %r4
  %r7 = mul %r6, %r5
  %r8 = add %r7, %r6
  ret %r8
}
)");
  DBDSConfig Tight;
  Tight.ClassTable = P.Mod.get();
  Tight.BenefitScale = 0.05; // force the trade-off to reject
  DBDSResult R1 = runDBDS(*P.F, Tight);
  EXPECT_EQ(R1.DuplicationsPerformed, 0u);

  Parsed P2 = parse(R"(
func @f(int) {
b0:
  %p = param 0
  %zero = const 0
  %c = cmp gt %p, %zero
  if %c, b1, b2 !0.999
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%p, b1], [%zero, b2]
  %one = const 1
  %r = add %phi, %one
  %r2 = mul %r, %r
  %r3 = xor %r2, %p
  %r4 = add %r3, %r2
  %r5 = mul %r4, %r3
  %r6 = add %r5, %r4
  %r7 = mul %r6, %r5
  %r8 = add %r7, %r6
  ret %r8
}
)");
  DBDSConfig Dupalot;
  Dupalot.ClassTable = P2.Mod.get();
  Dupalot.UseTradeoff = false;
  Dupalot.BenefitScale = 0.05;
  DBDSResult R2 = runDBDS(*P2.F, Dupalot);
  EXPECT_GE(R2.DuplicationsPerformed, 1u);
}

TEST(DBDSPhaseTest, RespectsTheCodeSizeBudget) {
  Parsed P = parse(paper::Figure1);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  Config.IncreaseBudget = 1.0; // no growth allowed at all
  DBDSResult R = runDBDS(*P.F, Config);
  EXPECT_EQ(R.DuplicationsPerformed, 0u);
}

TEST(DBDSPhaseTest, IterationCountIsBounded) {
  Parsed P = parse(paper::Listing1);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  Config.MaxIterations = 3;
  DBDSResult R = runDBDS(*P.F, Config);
  EXPECT_LE(R.IterationsRun, 3u);
  EXPECT_GE(R.IterationsRun, 1u);
}

// ---- Backtracking baseline -------------------------------------------------

TEST(BacktrackingTest, OptimizesFigure1ButCopiesTheGraph) {
  ParseResult R = parseModule(paper::Figure1);
  ASSERT_TRUE(R) << R.Error;
  std::unique_ptr<Module> Mod = std::move(R.Mod);
  std::unique_ptr<Function> F = Mod->functions()[0]->clone();

  double Before = expectedCycles(*F);
  BacktrackingResult BR = runBacktrackingDuplication(F, Mod.get());
  EXPECT_EQ(verifyFunction(*F), "");
  EXPECT_GE(BR.GraphCopies, 1u); // the cost §3.1 complains about
  EXPECT_LE(expectedCycles(*F), Before);

  Interpreter Interp(*Mod);
  EXPECT_EQ(Interp.run(*F, ArrayRef<int64_t>({5})).Result.Scalar, 7);
  EXPECT_EQ(Interp.run(*F, ArrayRef<int64_t>({-3})).Result.Scalar, 2);
}

TEST(CostModelTest, Figure4StyleAccounting) {
  // Figure 4: duplicating a merge with a 90/10 split turns
  // 0.1*(10+2+2) + 0.9*(10+2+2) = 14 into 0.1*14 + 0.9*12 = 12.2 when the
  // hot path's 2-cycle op folds away. Reproduce the arithmetic with the
  // cost model utilities on a hand-built pair of functions.
  Parsed NotDup = parse(R"(
func @f(int) {
b0:
  %p = param 0
  %zero = const 0
  %c = cmp gt %p, %zero
  if %c, b1, b2 !0.9
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%p, b1], [%zero, b2]
  %three = const 3
  %m = mul %phi, %three
  ret %m
}
)");
  double Cycles = expectedCycles(*NotDup.F);
  DBDSConfig Config;
  Config.ClassTable = NotDup.Mod.get();
  runDBDS(*NotDup.F, Config);
  // The cold path's multiply folded to a constant: expected cycles drop.
  EXPECT_LT(expectedCycles(*NotDup.F), Cycles);
}

} // namespace
