//===- tests/path_duplication_test.cpp - §8 extension tests -----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's §8 future work, implemented as an opt-in extension: the
// simulation tier continues a DST through a merge that jumps into another
// merge, and the optimization tier performs both duplications. These
// tests build a two-merge chain whose optimization opportunity is only
// visible across BOTH merges — the shallow candidate has zero benefit —
// and check that the extension finds and exploits it where stock DBDS
// cannot.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

/// Two chained merges: the value folded in m2 (b6) comes through m1's
/// (b5's) phi, so only a duplication over both merges exposes it.
const char *TwoMergeChain = R"(
func @f(int, int) {
b0:
  %x = param 0
  %y = param 1
  %z = const 0
  %c0 = cmp gt %y, %z
  if %c0, b1, b2 !0.5
b1:
  jump b6
b2:
  %c1 = cmp gt %x, %z
  if %c1, b3, b4 !0.5
b3:
  jump b5
b4:
  jump b5
b5:
  %p1 = phi int [%x, b3], [%z, b4]
  jump b6
b6:
  %p2 = phi int [%y, b1], [%p1, b5]
  %one = const 1
  %r = add %p2, %one
  %r2 = mul %r, %r
  ret %r2
}
)";

struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

TEST(PathDuplicationTest, SimulationFindsTheDeepCandidate) {
  Parsed P = parse(TwoMergeChain);
  SimulationStats Stats;
  auto Deep = simulateDuplications(*P.F, P.Mod.get(), &Stats,
                                   /*MaxPathLength=*/2);
  EXPECT_GE(Stats.PathsSimulated, 1u);
  bool FoundPath = false;
  for (const auto &C : Deep)
    if (C.isPath()) {
      FoundPath = true;
      EXPECT_EQ(C.MergeId, 5u);       // m1
      EXPECT_EQ(C.SecondMergeId, 6u); // m2
      EXPECT_GT(C.CyclesSaved, 0.0);
    }
  EXPECT_TRUE(FoundPath);
}

TEST(PathDuplicationTest, ShallowSimulationCannotSeeIt) {
  Parsed P = parse(TwoMergeChain);
  auto Shallow = simulateDuplications(*P.F, P.Mod.get(), nullptr,
                                      /*MaxPathLength=*/1);
  // b5's body is only a jump: the shallow candidate there saves nothing
  // beyond the universal jump credit — the fold is invisible at depth 1.
  for (const auto &C : Shallow) {
    EXPECT_FALSE(C.isPath());
    if (C.MergeId == 5u) {
      EXPECT_LE(C.CyclesSaved, double(opcodeCycles(Opcode::Jump)));
    }
  }
}

TEST(PathDuplicationTest, ExtensionDuplicatesOverBothMerges) {
  Parsed P = parse(TwoMergeChain);
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t X, int64_t Y) {
    return Interp.run(*P.F, ArrayRef<int64_t>({X, Y})).Result.Scalar;
  };
  int64_t Cases[4][2] = {{3, 4}, {-3, 4}, {3, -4}, {-3, -4}};
  int64_t Before[4];
  for (int I = 0; I != 4; ++I)
    Before[I] = Run(Cases[I][0], Cases[I][1]);

  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  Config.EnablePathDuplication = true;
  DBDSResult R = runDBDS(*P.F, Config);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_GE(R.DuplicationsPerformed, 2u); // both merges along the path

  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Run(Cases[I][0], Cases[I][1]), Before[I]) << "case " << I;
}

TEST(PathDuplicationTest, ExtensionBeatsStockDBDSOnChains) {
  // Under a tight benefit scale, jump-only candidates are rejected by the
  // trade-off; only the path candidate carries the fold benefit that
  // clears the bar. Stock DBDS therefore cannot reach the fold behind the
  // second merge at all, while the extension can.
  Parsed Stock = parse(TwoMergeChain);
  Parsed Ext = parse(TwoMergeChain);

  DBDSConfig StockConfig;
  StockConfig.ClassTable = Stock.Mod.get();
  StockConfig.BenefitScale = 4.0;
  runDBDS(*Stock.F, StockConfig);

  DBDSConfig ExtConfig;
  ExtConfig.ClassTable = Ext.Mod.get();
  ExtConfig.EnablePathDuplication = true;
  ExtConfig.BenefitScale = 4.0;
  runDBDS(*Ext.F, ExtConfig);

  // On the x<=0, y<=0 path the extension folds (0+1)*(0+1): fewer cycles.
  Interpreter StockInterp(*Stock.Mod), ExtInterp(*Ext.Mod);
  uint64_t StockCycles =
      StockInterp.run(*Stock.F, ArrayRef<int64_t>({-3, -4})).DynamicCycles;
  uint64_t ExtCycles =
      ExtInterp.run(*Ext.F, ArrayRef<int64_t>({-3, -4})).DynamicCycles;
  EXPECT_LT(ExtCycles, StockCycles);
}

TEST(PathDuplicationTest, DisabledByDefault) {
  Parsed P = parse(TwoMergeChain);
  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  EXPECT_FALSE(Config.EnablePathDuplication); // paper's shipped behaviour
  runDBDS(*P.F, Config);
  ASSERT_EQ(verifyFunction(*P.F), "");
}

TEST(PathDuplicationTest, PathsComposeWithGeneratedPrograms) {
  // The extension must stay semantics-preserving on arbitrary programs.
  for (uint64_t Seed : {3ull, 17ull, 23ull}) {
    GeneratorConfig GC;
    GC.Seed = Seed;
    GC.NumFunctions = 2;
    GeneratedWorkload W = generateWorkload(GC);
    auto Functions = W.Mod->functions();
    for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
      Function &F = *Functions[FIdx];
      Interpreter Interp(*W.Mod);
      std::vector<int64_t> Before;
      for (const auto &Args : W.EvalInputs[FIdx]) {
        Interp.reset();
        Before.push_back(
            Interp.run(F, ArrayRef<int64_t>(Args)).Result.Scalar);
      }
      DBDSConfig Config;
      Config.ClassTable = W.Mod.get();
      Config.EnablePathDuplication = true;
      runDBDS(F, Config);
      ASSERT_EQ(verifyFunction(F), "") << "seed " << Seed;
      for (unsigned AI = 0; AI != W.EvalInputs[FIdx].size(); ++AI) {
        Interp.reset();
        EXPECT_EQ(Interp.run(F, ArrayRef<int64_t>(W.EvalInputs[FIdx][AI]))
                      .Result.Scalar,
                  Before[AI])
            << "seed " << Seed << " input " << AI;
      }
    }
  }
}

} // namespace
