//===- tests/ir_test.cpp - IR construction, printing, parsing --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Semantics.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

TEST(InstructionTest, OpcodeTableMatchesPaperCosts) {
  // §4.1: division 32 cycles, shift 1 cycle -> CS = 31.
  EXPECT_EQ(opcodeCycles(Opcode::Div), 32u);
  EXPECT_EQ(opcodeCycles(Opcode::Shr), 1u);
  // Listing 7: AbstractNewObjectNode is CYCLES_8 / SIZE_8.
  EXPECT_EQ(opcodeCycles(Opcode::New), 8u);
  EXPECT_EQ(opcodeSize(Opcode::New), 8u);
  // Phis cost nothing in the static model.
  EXPECT_EQ(opcodeCycles(Opcode::Phi), 0u);
}

TEST(InstructionTest, PredicateHelpers) {
  EXPECT_EQ(negatePredicate(Predicate::LT), Predicate::GE);
  EXPECT_EQ(negatePredicate(Predicate::EQ), Predicate::NE);
  EXPECT_EQ(swapPredicate(Predicate::LT), Predicate::GT);
  EXPECT_EQ(swapPredicate(Predicate::EQ), Predicate::EQ);
  for (Predicate P : {Predicate::EQ, Predicate::NE, Predicate::LT,
                      Predicate::LE, Predicate::GT, Predicate::GE}) {
    EXPECT_EQ(negatePredicate(negatePredicate(P)), P);
    EXPECT_EQ(swapPredicate(swapPredicate(P)), P);
  }
}

TEST(InstructionTest, UseListsTrackOperands) {
  Function F("t", 2);
  Block *B = F.createBlock();
  IRBuilder Builder(F);
  Builder.setBlock(B);
  auto *P0 = Builder.param(0);
  auto *P1 = Builder.param(1);
  auto *Sum = Builder.add(P0, P1);
  EXPECT_EQ(P0->users().size(), 1u);
  EXPECT_EQ(P0->users()[0], Sum);
  Sum->setOperand(0, P1);
  EXPECT_EQ(P0->users().size(), 0u);
  EXPECT_EQ(P1->users().size(), 2u);
}

TEST(InstructionTest, ReplaceAllUsesWithHandlesMultiplicity) {
  Function F("t", 1);
  Block *B = F.createBlock();
  IRBuilder Builder(F);
  Builder.setBlock(B);
  auto *P0 = Builder.param(0);
  auto *Doubled = Builder.add(P0, P0); // uses P0 twice
  auto *C = Builder.constInt(7);
  P0->replaceAllUsesWith(C);
  EXPECT_EQ(Doubled->getOperand(0), C);
  EXPECT_EQ(Doubled->getOperand(1), C);
  EXPECT_FALSE(P0->hasUsers());
}

TEST(InstructionTest, ConstantsAreUniqued) {
  Function F("t", 0);
  F.createBlock();
  EXPECT_EQ(F.constant(42), F.constant(42));
  EXPECT_NE(F.constant(42), F.constant(43));
  EXPECT_EQ(F.nullConstant(), F.nullConstant());
}

TEST(InstructionTest, IsPureClassification) {
  Function F("t", 1);
  Block *B = F.createBlock();
  IRBuilder Builder(F);
  Builder.setBlock(B);
  auto *P = Builder.param(0);
  EXPECT_TRUE(Builder.add(P, P)->isPure());
  EXPECT_TRUE(Builder.div(P, P)->isPure()); // x/0 == 0: no trap state
  EXPECT_FALSE(Builder.call(0, {P})->isPure());
  auto *Obj = Builder.newObject(0);
  EXPECT_FALSE(Builder.store(Obj, 0, P)->isPure());
  EXPECT_TRUE(Obj->isPure());
}

TEST(SemanticsTest, DivisionByZeroIsZero) {
  EXPECT_EQ(evalBinary(Opcode::Div, 100, 0), 0);
  EXPECT_EQ(evalBinary(Opcode::Rem, 100, 0), 0);
  EXPECT_EQ(evalBinary(Opcode::Div, INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(evalBinary(Opcode::Rem, INT64_MIN, -1), 0);
}

TEST(SemanticsTest, WrappingArithmetic) {
  EXPECT_EQ(evalBinary(Opcode::Add, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(evalBinary(Opcode::Mul, INT64_MAX, 2), -2);
  EXPECT_EQ(evalUnary(Opcode::Neg, INT64_MIN), INT64_MIN);
}

TEST(SemanticsTest, ShiftsMaskTheirAmount) {
  EXPECT_EQ(evalBinary(Opcode::Shl, 1, 64), 1);
  EXPECT_EQ(evalBinary(Opcode::Shr, -8, 1), -4); // arithmetic
}

TEST(SemanticsTest, OpaqueCallIsDeterministic) {
  int64_t Args[2] = {1, 2};
  EXPECT_EQ(evalOpaqueCall(3, Args, 2), evalOpaqueCall(3, Args, 2));
  int64_t Args2[2] = {2, 1};
  EXPECT_NE(evalOpaqueCall(3, Args, 2), evalOpaqueCall(3, Args2, 2));
}

TEST(BlockTest, PhiPredAlignmentMaintainedByRemovePred) {
  ParseResult R = parseModule(paper::Figure1);
  ASSERT_TRUE(R) << R.Error;
  Function *F = R.Mod->functions()[0];
  Block *Merge = nullptr;
  for (Block *B : F->blocks())
    if (B->isMerge())
      Merge = B;
  ASSERT_NE(Merge, nullptr);
  auto Phis = Merge->phis();
  ASSERT_EQ(Phis.size(), 1u);
  ASSERT_EQ(Phis[0]->getNumInputs(), 2u);
  Instruction *SecondInput = Phis[0]->getInput(1);
  Merge->removePred(0);
  EXPECT_EQ(Phis[0]->getNumInputs(), 1u);
  EXPECT_EQ(Phis[0]->getInput(0), SecondInput);
}

TEST(FunctionTest, CloneProducesEqualPrintout) {
  for (const char *Source : {paper::Figure1, paper::Listing1, paper::Listing3,
                             paper::Listing5, paper::Figure3}) {
    ParseResult R = parseModule(Source);
    ASSERT_TRUE(R) << R.Error;
    Function *F = R.Mod->functions()[0];
    std::unique_ptr<Function> Clone = F->clone();
    EXPECT_EQ(verifyFunction(*Clone), "");
    // Ids restart per function, so a fresh parse of the original prints
    // identically to the clone.
    EXPECT_EQ(printFunction(F), printFunction(Clone.get()));
  }
}

TEST(ParserTest, RoundTripsAllPaperExamples) {
  for (const char *Source : {paper::Figure1, paper::Listing1, paper::Listing3,
                             paper::Listing5, paper::Figure3}) {
    ParseResult First = parseModule(Source);
    ASSERT_TRUE(First) << First.Error;
    ASSERT_EQ(verifyFunction(*First.Mod->functions()[0]), "");
    std::string Printed = printModule(First.Mod.get());
    ParseResult Second = parseModule(Printed);
    ASSERT_TRUE(Second) << Second.Error << "\nsource was:\n" << Printed;
    EXPECT_EQ(Printed, printModule(Second.Mod.get()));
  }
}

TEST(ParserTest, ReportsUsefulErrors) {
  EXPECT_NE(parseModule("func @f() {\nb0:\n  ret\n").Error, ""); // missing }
  EXPECT_NE(parseModule("func @f() {\nb0:\n  %x = bogus\n}\n").Error, "");
  EXPECT_NE(parseModule("func @f() {\nb0:\n  ret %nope\n}\n").Error, "");
  EXPECT_NE(parseModule("func @f() {\nb0:\n  jump b9\n}\n").Error, "");
  // Phi input count mismatch.
  ParseResult R = parseModule(R"(
func @f(int) {
b0:
  %p = param 0
  jump b1
b1:
  %x = phi int [%p, b0], [%p, b0]
  ret %x
}
)");
  EXPECT_FALSE(R);
}

TEST(ParserTest, ParsesProbabilities) {
  ParseResult R = parseModule(R"(
func @f(int) {
b0:
  %p = param 0
  %z = const 0
  %c = cmp gt %p, %z
  if %c, b1, b2 !0.9
b1:
  ret %p
b2:
  ret %z
}
)");
  ASSERT_TRUE(R) << R.Error;
  auto *If =
      cast<IfInst>(R.Mod->functions()[0]->getEntry()->getTerminator());
  EXPECT_DOUBLE_EQ(If->getTrueProbability(), 0.9);
}

TEST(VerifierTest, AcceptsAllPaperExamples) {
  for (const char *Source : {paper::Figure1, paper::Listing1, paper::Listing3,
                             paper::Listing5, paper::Figure3}) {
    ParseResult R = parseModule(Source);
    ASSERT_TRUE(R) << R.Error;
    for (Function *F : R.Mod->functions())
      EXPECT_EQ(verifyFunction(*F), "");
  }
}

TEST(VerifierTest, DetectsBrokenPhi) {
  ParseResult R = parseModule(paper::Figure1);
  ASSERT_TRUE(R) << R.Error;
  Function *F = R.Mod->functions()[0];
  for (Block *B : F->blocks()) {
    if (!B->isMerge())
      continue;
    B->phis()[0]->removeInput(0); // now misaligned with preds
    EXPECT_NE(verifyFunction(*F), "");
    return;
  }
  FAIL() << "no merge found";
}

TEST(VerifierTest, DetectsUseNotDominatedByDef) {
  ParseResult R = parseModule(R"(
func @f(int) {
b0:
  %p = param 0
  %z = const 0
  %c = cmp gt %p, %z
  if %c, b1, b2 !0.5
b1:
  %v = add %p, %p
  jump b3
b2:
  jump b3
b3:
  ret %p
}
)");
  ASSERT_TRUE(R) << R.Error;
  Function *F = R.Mod->functions()[0];
  // Rewire the return to use %v, which does not dominate b3.
  Block *RetBlock = nullptr;
  Instruction *V = nullptr;
  for (Block *B : F->blocks()) {
    for (Instruction *I : *B)
      if (I->getOpcode() == Opcode::Add)
        V = I;
    if (isa<ReturnInst>(B->getTerminator()) )
      RetBlock = B;
  }
  ASSERT_NE(V, nullptr);
  ASSERT_NE(RetBlock, nullptr);
  RetBlock->getTerminator()->setOperand(0, V);
  EXPECT_NE(verifyFunction(*F), "");
}

TEST(PrinterTest, InstructionFormats) {
  ParseResult R = parseModule(paper::Listing3);
  ASSERT_TRUE(R) << R.Error;
  std::string Text = printModule(R.Mod.get());
  EXPECT_NE(Text.find("class A 1"), std::string::npos);
  EXPECT_NE(Text.find("new 0"), std::string::npos);
  EXPECT_NE(Text.find("phi obj"), std::string::npos);
  EXPECT_NE(Text.find("cmp eq"), std::string::npos);
  EXPECT_NE(Text.find("const null"), std::string::npos);
}

} // namespace
