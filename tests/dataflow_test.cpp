//===- tests/dataflow_test.cpp - Sparse dataflow engine + SimAudit --------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the worklist dataflow layer (analysis/DataFlow.h): StampFlow
// fixed-point convergence, executable-edge precision, loop widening,
// per-edge refinement, and Liveness; the flow-sensitive lint rule pack via
// its sabotage fixtures and a pristine generated corpus; and SimAudit —
// the paper-example precision regression plus the --jobs determinism
// contract on the bench JSON's simulation_audit section (DESIGN.md §9).
//
//===----------------------------------------------------------------------===//

#include "analysis/DataFlow.h"
#include "analysis/Lint.h"
#include "analysis/SimAudit.h"
#include "dbds/DBDSPhase.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Report.h"
#include "tooling/LintFixtures.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Runner.h"
#include "workloads/Suites.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

struct Diamond {
  std::unique_ptr<Module> Mod;
  Function *F = nullptr;
  Block *Then = nullptr, *Else = nullptr, *Merge = nullptr;
  Instruction *Cond = nullptr;
  Instruction *ThenVal = nullptr; ///< Set only with DefineInThen.
  PhiInst *Phi = nullptr;
};

/// f(a, b): a diamond branching on \p MakeCond's comparison; the merge phi
/// joins constant 20 (else) with either constant 10 or, when
/// \p DefineInThen is set, an `a + b` computed in the then arm (whose
/// instruction is returned via Diamond::ThenVal).
template <typename CondFn>
Diamond makeDiamond(CondFn MakeCond, bool DefineInThen = false) {
  Diamond D;
  D.Mod = std::make_unique<Module>();
  D.F = D.Mod->addFunction(std::make_unique<Function>("f", 2));
  IRBuilder B(*D.F);
  Block *Entry = B.createBlock();
  D.Then = B.createBlock();
  D.Else = B.createBlock();
  D.Merge = B.createBlock();
  B.setBlock(Entry);
  D.Cond = MakeCond(B);
  B.branch(D.Cond, D.Then, D.Else);
  B.setBlock(D.Then);
  if (DefineInThen)
    D.ThenVal = B.add(B.param(0), B.param(1));
  B.jump(D.Merge);
  B.setBlock(D.Else);
  B.jump(D.Merge);
  B.setBlock(D.Merge);
  D.Phi = B.phi(Type::Int);
  D.Phi->appendInput(D.ThenVal ? D.ThenVal : B.constInt(10));
  D.Phi->appendInput(B.constInt(20));
  B.ret(D.Phi);
  return D;
}

//===----------------------------------------------------------------------===//
// StampFlow: executable edges, decided branches, convergence
//===----------------------------------------------------------------------===//

TEST(StampFlow, DecidedBranchKillsTheDeadArm) {
  // cmp LT 2, 1 is false by constant stamps: only the else arm executes.
  Diamond D = makeDiamond([](IRBuilder &B) {
    return B.cmp(Predicate::LT, B.constInt(2), B.constInt(1));
  });
  StampFlow Flow(*D.F);

  auto Decided =
      Flow.branchDecided(dyn_cast<IfInst>(D.Cond->getBlock()->getTerminator()));
  ASSERT_TRUE(Decided.has_value());
  EXPECT_FALSE(*Decided);
  EXPECT_FALSE(Flow.blockExecutable(D.Then));
  EXPECT_TRUE(Flow.blockExecutable(D.Else));
  EXPECT_TRUE(Flow.blockExecutable(D.Merge));
  EXPECT_FALSE(Flow.edgeExecutable(D.Merge, 0));
  EXPECT_TRUE(Flow.edgeExecutable(D.Merge, 1));

  // The phi joins only over executable edges: exactly 20.
  auto PhiStamp = Flow.stampOf(D.Phi);
  ASSERT_TRUE(PhiStamp.has_value());
  EXPECT_EQ(PhiStamp->asConstant(), std::optional<int64_t>(20));
}

TEST(StampFlow, ParamSteeredDiamondJoinsBothInputs) {
  Diamond D = makeDiamond([](IRBuilder &B) {
    return B.cmp(Predicate::LT, B.param(0), B.param(1));
  });
  StampFlow Flow(*D.F);

  EXPECT_FALSE(Flow.branchDecided(
      dyn_cast<IfInst>(D.Cond->getBlock()->getTerminator())));
  EXPECT_TRUE(Flow.blockExecutable(D.Then));
  EXPECT_TRUE(Flow.blockExecutable(D.Else));
  auto PhiStamp = Flow.stampOf(D.Phi);
  ASSERT_TRUE(PhiStamp.has_value());
  EXPECT_EQ(PhiStamp->lo(), 10);
  EXPECT_EQ(PhiStamp->hi(), 20);
}

TEST(StampFlow, ConvergenceIsDeterministic) {
  // Two independent runs over the same IR do identical work — the
  // worklist discipline has no iteration-order nondeterminism.
  Diamond D = makeDiamond([](IRBuilder &B) {
    return B.cmp(Predicate::LT, B.param(0), B.param(1));
  });
  StampFlow A(*D.F), B(*D.F);
  EXPECT_EQ(A.transfersRun(), B.transfersRun());
  EXPECT_EQ(A.widenings(), B.widenings());
  EXPECT_GT(A.transfersRun(), 0u);
}

TEST(StampFlow, LoopCounterWidensAndConverges) {
  // f(n): for (i = 0; i < n; i++); return i. The loop-carried range of i
  // climbs one step per raise; the widening threshold must cap that climb
  // or the analysis would run INT64_MAX iterations.
  auto Mod = std::make_unique<Module>();
  Function *F = Mod->addFunction(std::make_unique<Function>("f", 1));
  IRBuilder B(*F);
  Block *Entry = B.createBlock();
  Block *Header = B.createBlock();
  Block *Body = B.createBlock();
  Block *Exit = B.createBlock();
  B.setBlock(Entry);
  B.jump(Header);
  B.setBlock(Header);
  PhiInst *I = B.phi(Type::Int);
  B.branch(B.cmp(Predicate::LT, I, B.param(0)), Body, Exit);
  B.setBlock(Body);
  Instruction *Next = B.add(I, B.constInt(1));
  B.jump(Header);
  B.setBlock(Exit);
  B.ret(I);
  I->appendInput(B.constInt(0)); // entry edge
  I->appendInput(Next);          // back edge

  StampFlow Flow(*F, /*WideningThreshold=*/4);
  EXPECT_GE(Flow.widenings(), 1u);
  // Convergence in bounded work (the constructor returning at all is the
  // real assertion; the count pins the bound against regressions).
  EXPECT_LT(Flow.transfersRun(), 200u);
  auto IStamp = Flow.stampOf(I);
  ASSERT_TRUE(IStamp.has_value());
  // Widening pushed the moving upper bound to +inf (and the saturating
  // add's overflow response then drags the rest to top — sound, just not
  // the [0, n] a relational analysis would keep).
  EXPECT_EQ(IStamp->hi(), INT64_MAX);
}

TEST(StampFlow, RefinesAlongDecisiveBranchEdges) {
  // branch (p0 < 10) then/else: the then-edge proves p0 <= 9, the
  // else-edge proves p0 >= 10 — the flow-sensitive mirror of CE's
  // dominating-condition refinement.
  Diamond D = makeDiamond([](IRBuilder &B) {
    return B.cmp(Predicate::LT, B.param(0), B.constInt(10));
  });
  Instruction *P0 = D.Cond->getOperand(0);
  StampFlow Flow(*D.F);

  auto ThenStamp = Flow.edgeStamp(D.Then, 0, P0);
  ASSERT_TRUE(ThenStamp.has_value());
  EXPECT_LE(ThenStamp->hi(), 9);
  auto ElseStamp = Flow.edgeStamp(D.Else, 0, P0);
  ASSERT_TRUE(ElseStamp.has_value());
  EXPECT_GE(ElseStamp->lo(), 10);
}

TEST(StampFlow, UnreachableDefsHaveNoStamp) {
  // The decided branch makes the then arm dead; the `a + b` it defines
  // never executes.
  Diamond D = makeDiamond(
      [](IRBuilder &B) {
        return B.cmp(Predicate::LT, B.constInt(2), B.constInt(1));
      },
      /*DefineInThen=*/true);
  StampFlow Flow(*D.F);
  EXPECT_FALSE(Flow.stampOf(D.ThenVal).has_value());
  // stampOrTop degrades to the type's unrestricted stamp.
  EXPECT_EQ(Flow.stampOrTop(D.ThenVal), Stamp::top(Type::Int));
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(Liveness, PhiInputsAreLiveAtThePredecessorExit) {
  Diamond D = makeDiamond(
      [](IRBuilder &B) {
        return B.cmp(Predicate::LT, B.param(0), B.param(1));
      },
      /*DefineInThen=*/true);
  Liveness Live(*D.F);
  EXPECT_GE(Live.iterations(), 1u);
  // The phi input is a use at Then's exit, not at Merge's entry...
  EXPECT_TRUE(Live.isLiveOut(D.ThenVal, D.Then));
  EXPECT_FALSE(Live.isLiveIn(D.ThenVal, D.Merge));
  // ...and it never crosses the sibling arm.
  EXPECT_FALSE(Live.isLiveIn(D.ThenVal, D.Else));
  // The phi itself is consumed by the ret in its own block.
  EXPECT_FALSE(Live.isLiveOut(D.Phi, D.Merge));
}

//===----------------------------------------------------------------------===//
// Flow-sensitive lint rules: sabotage fixtures + pristine corpus
//===----------------------------------------------------------------------===//

TEST(DataflowLint, EveryFixtureFiresItsRule) {
  std::string Log;
  bool AllPassed = true;
  for (const LintFixture &Fx : makeDataflowLintFixtures())
    AllPassed = checkDataflowLintFixture(Fx, Log) && AllPassed;
  EXPECT_TRUE(AllPassed) << Log;
}

TEST(DataflowLint, CoversTheAdvertisedDefectClasses) {
  std::vector<LintFixture> Fixtures = makeDataflowLintFixtures();
  auto has = [&](const char *Name) {
    for (const LintFixture &Fx : Fixtures)
      if (Fx.Name == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(has("flow-clean-diamond"));
  EXPECT_TRUE(has("flow-dead-def-use"));
  EXPECT_TRUE(has("flow-dead-phi-input"));
  EXPECT_TRUE(has("flow-dead-branch"));
  EXPECT_TRUE(has("flow-contradictory-claim"));
  EXPECT_TRUE(has("flow-unreachable-merge"));
  EXPECT_TRUE(has("flow-null-load"));
}

TEST(DataflowLint, PaperExamplesAreClean) {
  const char *Examples[] = {paper::Figure1, paper::Listing1, paper::Listing3,
                            paper::Listing5, paper::Figure3};
  for (const char *Source : Examples) {
    ParseResult P = parseModule(Source);
    ASSERT_TRUE(P) << P.Error;
    LintReport Report = dataflowLinter(P.Mod.get()).lintModule(*P.Mod);
    EXPECT_FALSE(Report.hasErrors()) << Report.render();
  }
}

TEST(DataflowLint, PristineGeneratedCorpusHasZeroErrors) {
  // The zero-false-positive gate on IR nothing tampered with: generated
  // programs, before and after a full DBDS run.
  for (uint64_t Seed = 40; Seed != 44; ++Seed) {
    GeneratorConfig GC;
    GC.Seed = Seed;
    GC.NumFunctions = 3;
    GC.SegmentsPerFunction = 4;
    GeneratedWorkload W = generateWorkload(GC);
    LintReport Pre = dataflowLinter(W.Mod.get()).lintModule(*W.Mod);
    EXPECT_FALSE(Pre.hasErrors()) << "seed " << Seed << ":\n" << Pre.render();

    for (Function *F : W.Mod->functions()) {
      DBDSConfig DC;
      DC.ClassTable = W.Mod.get();
      runDBDS(*F, DC);
    }
    LintReport Post = dataflowLinter(W.Mod.get()).lintModule(*W.Mod);
    EXPECT_FALSE(Post.hasErrors())
        << "seed " << Seed << " post-DBDS:\n" << Post.render();
  }
}

//===----------------------------------------------------------------------===//
// SimAudit
//===----------------------------------------------------------------------===//

/// Runs DBDS with a decision log on every function of \p Source and audits
/// the post-DBDS IR against the recorded decisions.
SimAuditCounts auditExample(const char *Source) {
  ParseResult P = parseModule(Source);
  EXPECT_TRUE(P) << P.Error;
  SimAuditCounts Counts;
  for (Function *F : P.Mod->functions()) {
    DecisionLog Log;
    DBDSConfig DC;
    DC.ClassTable = P.Mod.get();
    DC.Decisions = &Log;
    runDBDS(*F, DC);
    Counts.accumulate(auditSimulation(*F, Log));
  }
  return Counts;
}

TEST(SimAudit, PaperExamplePredictionsHold) {
  // Precision/recall regression on the corpus the paper argues from: the
  // simulator's predictions on its own motivating examples must be
  // perfect. Any overclaim or underclaim here is a simulator bug, not
  // measurement noise.
  const char *Examples[] = {paper::Figure1, paper::Listing1, paper::Listing3,
                            paper::Listing5, paper::Figure3};
  SimAuditCounts Total;
  for (const char *Source : Examples)
    Total.accumulate(auditExample(Source));
  EXPECT_TRUE(Total.Ran);
  EXPECT_GT(Total.classified(), 0u);
  EXPECT_EQ(Total.Overclaimed, 0u) << "simulator overclaimed on paper IR";
  EXPECT_EQ(Total.Underclaimed, 0u) << "simulator underclaimed on paper IR";
  EXPECT_DOUBLE_EQ(Total.precision(), 1.0);
  EXPECT_DOUBLE_EQ(Total.recall(), 1.0);
}

TEST(SimAudit, VerdictsLandInTheDecisionLog) {
  ParseResult P = parseModule(paper::Figure1);
  ASSERT_TRUE(P) << P.Error;
  Function *F = P.Mod->functions()[0];
  DecisionLog Log;
  DBDSConfig DC;
  DC.ClassTable = P.Mod.get();
  DC.Decisions = &Log;
  runDBDS(*F, DC);
  ASSERT_FALSE(Log.decisions().empty());
  auditSimulation(*F, Log);
  for (const DuplicationDecision &D : Log.decisions())
    EXPECT_NE(D.Audit, AuditVerdict::Unaudited)
        << "record left unclassified: " << D.renderJson();
}

/// Extracts every `"simulation_audit":{...}` object (balanced braces) from
/// a bench JSON document, concatenated in order.
std::string auditSections(const std::string &Json) {
  std::string Out;
  const std::string Key = "\"simulation_audit\":";
  for (size_t Pos = Json.find(Key); Pos != std::string::npos;
       Pos = Json.find(Key, Pos + 1)) {
    size_t Open = Pos + Key.size();
    int Depth = 0;
    size_t End = Open;
    do {
      Depth += Json[End] == '{' ? 1 : Json[End] == '}' ? -1 : 0;
      ++End;
    } while (Depth != 0 && End < Json.size());
    Out += Json.substr(Pos, End - Pos) + "\n";
  }
  return Out;
}

TEST(SimAudit, BenchJsonSectionIsJobsInvariant) {
  // The DESIGN.md §9 determinism contract extended to the auditor: the
  // simulation_audit sections of the bench JSON must be byte-identical
  // between --jobs=1 and --jobs=8 (timing fields elsewhere may differ).
  SuiteSpec Suite = generatorCorpusSuite(/*Seed=*/6200, /*Benchmarks=*/2,
                                         /*Functions=*/4, /*Segments=*/3);
  auto Run = [&](unsigned Jobs) {
    RunnerOptions Opts;
    Opts.SimAudit = true;
    Opts.Jobs = Jobs;
    return measureSuite(Suite, Opts);
  };
  std::vector<BenchmarkMeasurement> Serial = Run(1), Parallel = Run(8);

  std::string SerialAudit = auditSections(renderBenchJson("det", Serial));
  EXPECT_FALSE(SerialAudit.empty());
  EXPECT_EQ(SerialAudit, auditSections(renderBenchJson("det", Parallel)));

  // And the aggregated counts agree field-for-field.
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t N = 0; N != Serial.size(); ++N) {
    const SimAuditCounts &S = Serial[N].DBDS.Audit;
    const SimAuditCounts &J = Parallel[N].DBDS.Audit;
    EXPECT_TRUE(S.Ran);
    EXPECT_EQ(S.Confirmed, J.Confirmed);
    EXPECT_EQ(S.Overclaimed, J.Overclaimed);
    EXPECT_EQ(S.Underclaimed, J.Underclaimed);
    EXPECT_EQ(S.Skipped, J.Skipped);
  }
}

} // namespace
