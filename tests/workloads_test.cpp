//===- tests/workloads_test.cpp - Generator + harness integration ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

TEST(GeneratorTest, IsDeterministic) {
  GeneratorConfig Config;
  Config.Seed = 1234;
  Config.NumFunctions = 3;
  GeneratedWorkload A = generateWorkload(Config);
  GeneratedWorkload B = generateWorkload(Config);
  ASSERT_EQ(A.Mod->functions().size(), B.Mod->functions().size());
  Interpreter IA(*A.Mod), IB(*B.Mod);
  for (unsigned F = 0; F != 3; ++F) {
    for (const auto &Args : A.EvalInputs[F]) {
      IA.reset();
      IB.reset();
      auto RA = IA.run(*A.Mod->functions()[F], ArrayRef<int64_t>(Args));
      auto RB = IB.run(*B.Mod->functions()[F], ArrayRef<int64_t>(Args));
      ASSERT_TRUE(RA.Ok);
      ASSERT_TRUE(RB.Ok);
      EXPECT_EQ(RA.Result.Scalar, RB.Result.Scalar);
      EXPECT_EQ(RA.DynamicCycles, RB.DynamicCycles);
    }
  }
}

TEST(GeneratorTest, ProducesVerifiableFunctionsAcrossSeeds) {
  for (uint64_t Seed : {1ull, 7ull, 42ull, 1000ull, 31337ull}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumFunctions = 4;
    GeneratedWorkload W = generateWorkload(Config);
    for (Function *F : W.Mod->functions())
      EXPECT_EQ(verifyFunction(*F), "") << "seed " << Seed;
  }
}

TEST(GeneratorTest, AllProgramsTerminate) {
  GeneratorConfig Config;
  Config.Seed = 99;
  Config.NumFunctions = 4;
  GeneratedWorkload W = generateWorkload(Config);
  Interpreter Interp(*W.Mod);
  auto Functions = W.Mod->functions();
  for (unsigned F = 0; F != Functions.size(); ++F) {
    for (const auto &Args : W.EvalInputs[F]) {
      Interp.reset();
      EXPECT_TRUE(
          Interp.run(*Functions[F], ArrayRef<int64_t>(Args), 1u << 22).Ok);
    }
  }
}

TEST(GeneratorTest, MixKnobsChangeOpportunityProfile) {
  GeneratorConfig Alloc;
  Alloc.Seed = 5;
  Alloc.Mix = {};
  Alloc.Mix.PartialEscape = 10.0;
  Alloc.Mix.ConstantFold = Alloc.Mix.ConditionalElim = Alloc.Mix.ReadElim =
      Alloc.Mix.StrengthReduction = Alloc.Mix.Noise = 0.0;
  GeneratedWorkload WAlloc = generateWorkload(Alloc);

  GeneratorConfig Div = Alloc;
  Div.Mix = {};
  Div.Mix.StrengthReduction = 10.0;
  Div.Mix.ConstantFold = Div.Mix.ConditionalElim = Div.Mix.PartialEscape =
      Div.Mix.ReadElim = Div.Mix.Noise = 0.0;
  GeneratedWorkload WDiv = generateWorkload(Div);

  auto countOp = [](Module &M, Opcode Op) {
    unsigned N = 0;
    for (Function *F : M.functions())
      for (Block *B : F->blocks())
        for (Instruction *I : *B)
          N += I->getOpcode() == Op ? 1 : 0;
    return N;
  };
  EXPECT_GT(countOp(*WAlloc.Mod, Opcode::New),
            countOp(*WDiv.Mod, Opcode::New));
  EXPECT_GT(countOp(*WDiv.Mod, Opcode::Div),
            countOp(*WAlloc.Mod, Opcode::Div));
}

TEST(RunnerTest, MeasuresABenchmarkWithConsistentResults) {
  GeneratorConfig Config;
  Config.Seed = 2024;
  Config.NumFunctions = 4;
  BenchmarkSpec Spec{"smoke", Config};
  BenchmarkMeasurement M = measureBenchmark(Spec);
  // A result divergence across configurations is recorded, not fatal —
  // this is the end-to-end correctness assertion.
  EXPECT_TRUE(M.ResultsAgree);
  EXPECT_EQ(M.Baseline.RunFailures, 0u);
  EXPECT_GT(M.Baseline.DynamicCycles, 0u);
  EXPECT_GT(M.DBDS.CodeSize, 0u);
  // DBDS must never be slower than baseline on the cost-model metric.
  EXPECT_LE(M.DBDS.DynamicCycles, M.Baseline.DynamicCycles);
  // The trade-off keeps DBDS's code size at or below dupalot's.
  EXPECT_LE(M.DBDS.CodeSize, M.DupALot.CodeSize);
}

TEST(SuitesTest, AllSuitesAreFullyNamed) {
  auto Suites = allSuites();
  ASSERT_EQ(Suites.size(), 4u);
  EXPECT_EQ(Suites[0].Benchmarks.size(), 10u); // Java DaCapo, Figure 5
  EXPECT_EQ(Suites[1].Benchmarks.size(), 12u); // Scala DaCapo, Figure 6
  EXPECT_EQ(Suites[2].Benchmarks.size(), 9u);  // Micro, Figure 7
  EXPECT_EQ(Suites[3].Benchmarks.size(), 14u); // Octane, Figure 8
  // §6.2 calls these out by name.
  auto hasBench = [](const SuiteSpec &S, const char *Name) {
    for (const auto &B : S.Benchmarks)
      if (B.Name == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(hasBench(Suites[0], "jython"));
  EXPECT_TRUE(hasBench(Suites[0], "luindex"));
  EXPECT_TRUE(hasBench(Suites[2], "akkaPP"));
  EXPECT_TRUE(hasBench(Suites[3], "raytrace"));
}

TEST(SuitesTest, SeedsAreStablePerName) {
  auto A = javaDaCapoSuite();
  auto B = javaDaCapoSuite();
  for (unsigned I = 0; I != A.Benchmarks.size(); ++I)
    EXPECT_EQ(A.Benchmarks[I].Config.Seed, B.Benchmarks[I].Config.Seed);
}

} // namespace
