//===- tests/lint_test.cpp - IRLint engine and integrations ----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the IRLint static-analysis framework: the malformed-fixture
// known-positive suite (each fixture fires exactly its rule), clean paper
// examples, multi-finding collection, the verifyFunction/isValid wrappers,
// JSON rendering, rule enable/disable and severity demotion, dynamic stamp
// cross-checks against interpreter observations, and PhaseManager audit
// mode (lint-diff attribution of injected corruption, behavioral oracle
// against SabotagePhase).
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/Verifier.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "opts/Phase.h"
#include "support/Diagnostics.h"
#include "tooling/LintFixtures.h"
#include "tooling/LintHarness.h"
#include "tooling/Sabotage.h"
#include "vm/Interpreter.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

/// f(a, b): diamond over a < b; the merge phi of two constants feeds the
/// return. Lint-clean by construction.
std::unique_ptr<Module> makeDiamondModule(PhiInst **PhiOut = nullptr) {
  auto Mod = std::make_unique<Module>();
  Function *F = Mod->addFunction(std::make_unique<Function>("f", 2));
  IRBuilder B(*F);
  Block *Entry = B.createBlock();
  Block *Then = B.createBlock();
  Block *Else = B.createBlock();
  Block *Merge = B.createBlock();
  B.setBlock(Entry);
  auto *A = B.param(0);
  auto *Bp = B.param(1);
  B.branch(B.cmp(Predicate::LT, A, Bp), Then, Else);
  B.setBlock(Then);
  B.jump(Merge);
  B.setBlock(Else);
  B.jump(Merge);
  B.setBlock(Merge);
  PhiInst *Phi = B.phi(Type::Int);
  Phi->appendInput(B.constInt(10));
  Phi->appendInput(B.constInt(20));
  B.ret(Phi);
  if (PhiOut)
    *PhiOut = Phi;
  return Mod;
}

/// f(a, b) = a + b in a single block — the smallest function SabotagePhase
/// can observably corrupt.
std::unique_ptr<Module> makeAddModule() {
  auto Mod = std::make_unique<Module>();
  Function *F = Mod->addFunction(std::make_unique<Function>("f", 2));
  IRBuilder B(*F);
  B.setBlock(B.createBlock());
  B.ret(B.add(B.param(0), B.param(1)));
  return Mod;
}

unsigned countRule(const LintReport &R, const std::string &Id) {
  unsigned N = 0;
  for (const LintFinding &F : R.Findings)
    if (F.RuleId == Id)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Fixtures and clean inputs
//===----------------------------------------------------------------------===//

TEST(LintFixtures, EveryFixtureFiresExactlyItsRule) {
  std::string Log;
  EXPECT_TRUE(selftestLintFixtures(Log)) << Log;
}

TEST(LintFixtures, CoversTheAdvertisedDefectClasses) {
  std::vector<LintFixture> Fixtures = makeLintFixtures();
  auto has = [&](const char *Name) {
    for (const LintFixture &Fx : Fixtures)
      if (Fx.Name == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(has("bad-phi-arity"));
  EXPECT_TRUE(has("use-before-def"));
  EXPECT_TRUE(has("missing-terminator"));
  EXPECT_TRUE(has("unsound-stamp"));
  EXPECT_TRUE(has("orphan-block"));
}

TEST(Lint, PaperExamplesAreClean) {
  const char *Examples[] = {paper::Figure1, paper::Listing1, paper::Listing3,
                            paper::Listing5, paper::Figure3};
  for (const char *Source : Examples) {
    ParseResult P = parseModule(Source);
    ASSERT_TRUE(P) << P.Error;
    LintReport Report = Linter::standard(P.Mod.get()).lintModule(*P.Mod);
    EXPECT_FALSE(Report.hasErrors()) << Report.render();
  }
}

TEST(Lint, CollectsMultipleIndependentFindings) {
  PhiInst *Phi = nullptr;
  auto Mod = makeDiamondModule(&Phi);
  Function *F = Mod->functions().front();
  Phi->removeInput(0); // phi-layout violation
  F->createBlock();    // empty block: block-structure violation
  LintReport Report = Linter::standard(Mod.get()).lint(*F);
  EXPECT_GE(Report.errorCount(), 2u) << Report.render();
  EXPECT_EQ(countRule(Report, "phi-layout"), 1u);
  EXPECT_GE(countRule(Report, "block-structure"), 1u);
}

//===----------------------------------------------------------------------===//
// Wrappers over the engine
//===----------------------------------------------------------------------===//

TEST(Lint, VerifyFunctionIsAFirstErrorWrapper) {
  auto Clean = makeDiamondModule();
  EXPECT_EQ(verifyFunction(*Clean->functions().front()), "");

  PhiInst *Phi = nullptr;
  auto Broken = makeDiamondModule(&Phi);
  Phi->removeInput(0);
  std::string Error = verifyFunction(*Broken->functions().front());
  ASSERT_NE(Error, "");
  EXPECT_NE(Error.find("[phi-layout]"), std::string::npos) << Error;
}

TEST(Lint, IsValidRoutesFindingsIntoDiagnostics) {
  PhiInst *Phi = nullptr;
  auto Mod = makeDiamondModule(&Phi);
  Phi->removeInput(0);
  DiagnosticEngine Diags;
  EXPECT_FALSE(isValid(*Mod->functions().front(), &Diags));
  ASSERT_FALSE(Diags.empty());
  EXPECT_GE(Diags.count(DiagKind::Error), 1u);
  EXPECT_EQ(Diags.all().front().Component, "verifier");
  EXPECT_NE(Diags.all().front().Message.find("phi-layout"),
            std::string::npos);
}

TEST(Lint, RendersJSON) {
  PhiInst *Phi = nullptr;
  auto Mod = makeDiamondModule(&Phi);
  Phi->removeInput(0);
  LintReport Report =
      Linter::standard(Mod.get()).lint(*Mod->functions().front());
  std::string Json = Report.renderJSON();
  EXPECT_NE(Json.find("\"rule\": \"phi-layout\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(Json.find("\"counts\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rule configuration
//===----------------------------------------------------------------------===//

TEST(Lint, RulesCanBeDisabled) {
  PhiInst *Phi = nullptr;
  auto Mod = makeDiamondModule(&Phi);
  Function *F = Mod->functions().front();
  // Orphan the phi's value: dead-phi warns by default.
  Block *Merge = Phi->getBlock();
  auto *Ret = cast<ReturnInst>(Merge->getTerminator());
  Merge->remove(Ret);
  IRBuilder B(*F);
  B.setBlock(Merge);
  B.ret(F->constant(0));

  Linter L = Linter::standard(Mod.get());
  EXPECT_EQ(countRule(L.lint(*F), "dead-phi"), 1u);
  ASSERT_TRUE(L.setEnabled("dead-phi", false));
  EXPECT_EQ(countRule(L.lint(*F), "dead-phi"), 0u);
  EXPECT_FALSE(L.setEnabled("no-such-rule", false));
}

TEST(Lint, ErrorSeverityCanBeDemoted) {
  auto Mod = makeDiamondModule();
  Function *F = Mod->functions().front();
  IRBuilder B(*F);
  Block *Island = B.createBlock();
  B.setBlock(Island);
  B.ret(F->constant(1)); // unreachable: error by default

  Linter L = Linter::standard(Mod.get());
  EXPECT_TRUE(L.lint(*F).hasErrors());
  ASSERT_TRUE(L.setMaxSeverity("unreachable-code", LintSeverity::Warn));
  LintReport Demoted = L.lint(*F);
  EXPECT_FALSE(Demoted.hasErrors()) << Demoted.render();
  EXPECT_EQ(countRule(Demoted, "unreachable-code"), 1u);
}

//===----------------------------------------------------------------------===//
// Dynamic stamp cross-checks
//===----------------------------------------------------------------------===//

TEST(LintHarness, ObservationsStayInsideSoundStamps) {
  auto Mod = makeAddModule();
  Function *F = Mod->functions().front();
  Interpreter Interp(*Mod);
  ObservationMap Obs = observeFunction(Interp, *F, defaultArgumentGrid(*F));
  EXPECT_FALSE(Obs.empty());
  LintReport Report = Linter::standard(Mod.get()).lint(*F, &Obs);
  EXPECT_FALSE(Report.hasErrors()) << Report.render();
}

TEST(LintHarness, ObservedValuesOutsideAClaimedStampAreFlagged) {
  auto Mod = makeAddModule();
  Function *F = Mod->functions().front();
  // The claimed stamp of the add: exactly 5 — unjustified statically and
  // contradicted dynamically by f(7, 2) == 9.
  Instruction *Add = nullptr;
  for (Instruction *I : *F->blocks().front())
    if (I->getOpcode() == Opcode::Add)
      Add = I;
  ASSERT_NE(Add, nullptr);

  Interpreter Interp(*Mod);
  ObservationMap Obs = observeFunction(Interp, *F, {{7, 2}});
  Linter L = Linter::standard(Mod.get());
  L.setStampClaim([Add](Instruction *I) -> std::optional<Stamp> {
    if (I == Add)
      return Stamp::exact(5);
    return std::nullopt;
  });
  LintReport Report = L.lint(*F, &Obs);
  EXPECT_EQ(countRule(Report, "stamp-soundness"), 2u) << Report.render();
  bool SawDynamic = false;
  for (const LintFinding &Finding : Report.Findings)
    SawDynamic |= Finding.Message.find("observed values [9, 9]") !=
                  std::string::npos;
  EXPECT_TRUE(SawDynamic) << Report.render();
}

//===----------------------------------------------------------------------===//
// PhaseManager audit mode
//===----------------------------------------------------------------------===//

/// A phase that breaks the IR in a statically detectable way: it drops the
/// first phi input it finds.
class PhiCorruptorPhase : public Phase {
public:
  const char *name() const override { return "phi-corruptor"; }
  bool run(Function &F) override {
    for (Block *B : F.blocks())
      for (PhiInst *Phi : B->phis())
        if (Phi->getNumInputs() != 0) {
          Phi->removeInput(0);
          return true;
        }
    return false;
  }
};

/// A phase that claims a change but leaves the IR untouched.
class NoOpChangedPhase : public Phase {
public:
  const char *name() const override { return "noop-changed"; }
  bool run(Function &) override { return true; }
};

TEST(PhaseAudit, AttributesNewViolationsToTheOffendingPhase) {
  auto Mod = makeDiamondModule();
  Function *F = Mod->functions().front();
  Linter L = Linter::standard(Mod.get());
  DiagnosticEngine Diags;
  PhaseManager PM(/*VerifyAfterEachPhase=*/false);
  PM.add(std::make_unique<PhiCorruptorPhase>());
  PM.setAuditLinter(&L);
  PM.setDiagnostics(&Diags);
  PM.run(*F);

  EXPECT_EQ(PM.rollbackCount(), 1u);
  EXPECT_TRUE(PM.isQuarantined("f", 0));
  // The function is back in its pre-phase state.
  EXPECT_EQ(verifyFunction(*F), "");
  ASSERT_FALSE(Diags.empty());
  const Diagnostic &D = Diags.all().front();
  EXPECT_EQ(D.Kind, DiagKind::Warning);
  EXPECT_EQ(D.Component, "phi-corruptor");
  EXPECT_NE(D.Message.find("introduced 1 new lint violation"),
            std::string::npos)
      << D.Message;
  EXPECT_NE(D.Message.find("phi-layout"), std::string::npos) << D.Message;
}

TEST(PhaseAudit, PreexistingViolationsAreNotBlamedOnAPhase) {
  auto Mod = makeDiamondModule();
  Function *F = Mod->functions().front();
  // Pre-existing defect: an unreachable island, present before any phase.
  IRBuilder B(*F);
  Block *Island = B.createBlock();
  B.setBlock(Island);
  B.ret(F->constant(1));

  Linter L = Linter::standard(Mod.get());
  DiagnosticEngine Diags;
  PhaseManager PM(/*VerifyAfterEachPhase=*/false);
  PM.add(std::make_unique<NoOpChangedPhase>());
  PM.setAuditLinter(&L);
  PM.setDiagnostics(&Diags);
  PM.run(*F, /*MaxRounds=*/1);

  EXPECT_EQ(PM.rollbackCount(), 0u);
  EXPECT_FALSE(PM.isQuarantined("f", 0));
}

TEST(PhaseAudit, OracleCatchesStructurallyValidMiscompiles) {
  auto Mod = makeAddModule();
  Function *F = Mod->functions().front();
  Interpreter Before(*Mod);
  int64_t Expected = Before.run(*F, ArrayRef<int64_t>({7, 2})).Result.Scalar;

  // SabotagePhase output is lint-clean: the static diff alone cannot see
  // the Add -> Sub rewrite.
  Linter L = Linter::standard(Mod.get());
  {
    auto Clone = F->clone();
    SabotagePhase Saboteur;
    ASSERT_TRUE(Saboteur.run(*F));
    EXPECT_FALSE(L.lint(*F).hasErrors());
    F->restoreFrom(*Clone);
  }

  DiagnosticEngine Diags;
  PhaseManager PM(/*VerifyAfterEachPhase=*/false);
  PM.add(std::make_unique<SabotagePhase>());
  PM.setAuditLinter(&L);
  PM.setAuditOracle(makeInterpreterOracle(*Mod));
  PM.setDiagnostics(&Diags);
  PM.run(*F);

  EXPECT_EQ(PM.rollbackCount(), 1u);
  EXPECT_TRUE(PM.isQuarantined("f", 0));
  ASSERT_FALSE(Diags.empty());
  const Diagnostic &D = Diags.all().front();
  EXPECT_EQ(D.Component, "sabotage");
  EXPECT_NE(D.Message.find("behavioral divergence"), std::string::npos)
      << D.Message;
  // Semantics survived: the rolled-back function still adds.
  Interpreter After(*Mod);
  EXPECT_EQ(After.run(*F, ArrayRef<int64_t>({7, 2})).Result.Scalar, Expected);
}

} // namespace
