//===- tests/telemetry_test.cpp - Trace, counters, decisions, reports ------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "ir/Parser.h"
#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Json.h"
#include "telemetry/Report.h"
#include "telemetry/Trace.h"
#include "workloads/Runner.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

Function *parseInto(std::unique_ptr<Module> &Mod, const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Mod = std::move(R.Mod);
  return Mod->functions()[0];
}

// ---- JSON helpers --------------------------------------------------------

TEST(JsonTest, EscapesAndFormats) {
  EXPECT_EQ(jsonString("plain"), "\"plain\"");
  EXPECT_EQ(jsonString("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(jsonNumber(uint64_t(42)), "42");
  EXPECT_EQ(jsonNumber(int64_t(-7)), "-7");
  EXPECT_EQ(jsonNumber(1.5), "1.5");
  // Non-finite doubles have no JSON spelling.
  EXPECT_EQ(jsonNumber(std::nan("")), "0");
  EXPECT_STREQ(jsonBool(true), "true");
  EXPECT_STREQ(jsonBool(false), "false");
}

// ---- Trace sessions ------------------------------------------------------

TEST(TraceSessionTest, RecordsBalancedSpansAndRenders) {
  TraceSession S;
  S.beginSpan("outer", "test", "\"k\":1");
  S.beginSpan("inner", "test");
  S.instant("marker", "test");
  S.endSpan("inner");
  S.endSpan("outer");
  EXPECT_EQ(S.eventCount(), 5u);
  EXPECT_TRUE(S.checkBalance());

  std::string Json = S.renderJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"k\":1"), std::string::npos);
}

// The telemetry-span-balance check: each malformed stream shape must be
// flagged before JSON emission, and writeJson must refuse to emit it.
TEST(TraceSessionTest, BalanceCheckFlagsUnmatchedEnd) {
  TraceSession S;
  S.endSpan("never-begun");
  std::vector<std::string> Errors;
  EXPECT_FALSE(S.checkBalance(&Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("telemetry-span-balance"), std::string::npos);
}

TEST(TraceSessionTest, BalanceCheckFlagsCrossingSpans) {
  TraceSession S;
  S.beginSpan("a", "test");
  S.beginSpan("b", "test");
  S.endSpan("a"); // crosses the still-open "b"
  S.endSpan("b");
  std::vector<std::string> Errors;
  EXPECT_FALSE(S.checkBalance(&Errors));
  EXPECT_FALSE(Errors.empty());
}

TEST(TraceSessionTest, BalanceCheckFlagsDanglingOpen) {
  TraceSession S;
  S.beginSpan("open", "test");
  std::vector<std::string> Errors;
  EXPECT_FALSE(S.checkBalance(&Errors));
  EXPECT_FALSE(Errors.empty());
}

TEST(TraceSessionTest, WriteJsonRefusesUnbalancedStream) {
  TraceSession S;
  S.beginSpan("open", "test");
  std::string Error;
  std::string Path = testing::TempDir() + "dbds_unbalanced_trace.json";
  EXPECT_FALSE(S.writeJson(Path, &Error));
  EXPECT_NE(Error.find("telemetry-span-balance"), std::string::npos);
}

TEST(TraceSessionTest, SpansAreFreeWhenDetached) {
  EXPECT_EQ(TraceSession::active(), nullptr);
  {
    TraceSpan Span("unattached", "test");
  }
  TraceSession S;
  EXPECT_EQ(S.eventCount(), 0u);
}

TEST(TraceSessionTest, ScopedAttachRestoresPreviousSession) {
  TraceSession Outer;
  {
    ScopedTraceAttach AttachOuter(Outer);
    EXPECT_EQ(TraceSession::active(), &Outer);
    {
      TraceSession Inner;
      ScopedTraceAttach AttachInner(Inner);
      EXPECT_EQ(TraceSession::active(), &Inner);
      TraceSpan Span("nested", "test");
    }
    // The inner session detached; the outer one is active again.
    EXPECT_EQ(TraceSession::active(), &Outer);
    TraceSpan Span("outer-span", "test");
  }
  EXPECT_EQ(TraceSession::active(), nullptr);
  EXPECT_EQ(Outer.eventCount(), 2u); // outer-span B+E only
  EXPECT_TRUE(Outer.checkBalance());
}

// ---- Counter registry ----------------------------------------------------

DBDS_COUNTER(telemetry_test, test_counter);

TEST(CounterRegistryTest, RegistersIncrementsAndSnapshots) {
  uint64_t Before = test_counter.value();
  ++test_counter;
  test_counter += 2;
  EXPECT_EQ(test_counter.value(), Before + 3);
  EXPECT_EQ(test_counter.qualifiedName(), "telemetry_test.test_counter");

  bool Found = false;
  for (const CounterSample &S : CounterRegistry::instance().snapshot())
    if (S.Name == "telemetry_test.test_counter") {
      Found = true;
      EXPECT_EQ(S.Value, Before + 3);
    }
  EXPECT_TRUE(Found);
}

TEST(CounterRegistryTest, DeltaIsolatesARegionAndDropsZeros) {
  auto Before = CounterRegistry::instance().snapshot();
  ++test_counter;
  auto Delta =
      CounterRegistry::delta(Before, CounterRegistry::instance().snapshot());
  ASSERT_EQ(Delta.size(), 1u);
  EXPECT_EQ(Delta[0].Name, "telemetry_test.test_counter");
  EXPECT_EQ(Delta[0].Value, 1u);

  std::string Text = CounterRegistry::renderText(Delta);
  EXPECT_NE(Text.find("telemetry_test.test_counter = 1"), std::string::npos);
  std::string Json = CounterRegistry::renderJson(Delta);
  EXPECT_NE(Json.find("\"telemetry_test.test_counter\":1"),
            std::string::npos);
}

// ---- Decision log --------------------------------------------------------

TEST(DecisionLogTest, TradeoffClauseNames) {
  TradeoffClauses C;
  EXPECT_FALSE(C.pass());
  EXPECT_STREQ(C.firstFailing(), "positive-cycles-saved");
  C.PositiveCyclesSaved = true;
  EXPECT_STREQ(C.firstFailing(), "benefit-outweighs-cost");
  C.BenefitOutweighsCost = true;
  EXPECT_STREQ(C.firstFailing(), "under-max-unit-size");
  C.UnderMaxUnitSize = true;
  EXPECT_STREQ(C.firstFailing(), "within-growth-budget");
  C.WithinGrowthBudget = true;
  EXPECT_TRUE(C.pass());
  EXPECT_STREQ(C.firstFailing(), "");
}

TEST(DecisionLogTest, RollbackReverdictsAcceptedDecisions) {
  DecisionLog Log;
  DuplicationDecision D;
  D.FunctionName = "f";
  D.Verdict = DecisionVerdict::Accepted;
  size_t First = Log.append(D);
  D.Verdict = DecisionVerdict::RejectedTradeoff;
  Log.append(D);
  D.FunctionName = "g";
  D.Verdict = DecisionVerdict::Accepted;
  Log.append(D);

  Log.markRolledBackFrom(First, "f");
  // Only @f's Accepted record is re-verdicted; the rejection and the
  // other function's record are untouched.
  EXPECT_EQ(Log.decisions()[0].Verdict, DecisionVerdict::RolledBack);
  EXPECT_EQ(Log.decisions()[1].Verdict, DecisionVerdict::RejectedTradeoff);
  EXPECT_EQ(Log.decisions()[2].Verdict, DecisionVerdict::Accepted);
}

// ---- End-to-end: the paper example through DBDS with telemetry on --------

// Figure 3 (§4.1): dividing by the phi {x+1, 2} strength-reduces to a
// shift after duplication. The expected candidate must be accepted, with
// its exact shouldDuplicate inputs and the strength-reduction opportunity
// recorded.
TEST(TelemetryIntegrationTest, Figure3CandidateIsAcceptedWithInputs) {
  std::unique_ptr<Module> Mod;
  Function *F = parseInto(Mod, paper::Figure3);
  DecisionLog Log;
  DBDSConfig Config;
  Config.ClassTable = Mod.get();
  Config.Decisions = &Log;
  DBDSResult R = runDBDS(*F, Config);
  EXPECT_GE(R.DuplicationsPerformed, 1u);
  ASSERT_FALSE(Log.empty());

  const DuplicationDecision *Accepted = nullptr;
  for (const DuplicationDecision &D : Log.decisions())
    if (D.Verdict == DecisionVerdict::Accepted &&
        D.Opportunities.StrengthReductions >= 1) {
      Accepted = &D;
      break;
    }
  ASSERT_NE(Accepted, nullptr)
      << "no accepted decision with a strength-reduction opportunity";
  EXPECT_EQ(Accepted->FunctionName, "f");
  // §4.1: CS = 32 - 1 = 31 (plus the removed jump).
  EXPECT_GE(Accepted->CyclesSaved, 31.0);
  EXPECT_GT(Accepted->Probability, 0.0);
  EXPECT_TRUE(Accepted->TradeoffEvaluated);
  EXPECT_TRUE(Accepted->Clauses.pass());
  EXPECT_GE(Accepted->DuplicationsPerformed, 1u);
  EXPECT_GT(Accepted->InitialSize, 0u);
  EXPECT_GE(Accepted->CurrentSize, Accepted->InitialSize);

  // The JSONL record carries the verdict and the clause results.
  std::string Json = Accepted->renderJson();
  EXPECT_NE(Json.find("\"verdict\":\"accepted\""), std::string::npos);
  EXPECT_NE(Json.find("\"strength_reductions\":"), std::string::npos);
}

// A size-budget-violating candidate must be rejected with the failing
// clause named in the record.
TEST(TelemetryIntegrationTest, SizeBudgetViolationLogsFailingClause) {
  std::unique_ptr<Module> Mod;
  Function *F = parseInto(Mod, paper::Figure3);
  DecisionLog Log;
  DBDSConfig Config;
  Config.ClassTable = Mod.get();
  Config.Decisions = &Log;
  Config.MaxUnitSize = 1; // hard VM limit below any real unit size
  DBDSResult R = runDBDS(*F, Config);
  EXPECT_EQ(R.DuplicationsPerformed, 0u);
  ASSERT_FALSE(Log.empty());

  bool FoundSizeReject = false;
  for (const DuplicationDecision &D : Log.decisions()) {
    EXPECT_NE(D.Verdict, DecisionVerdict::Accepted);
    if (D.Verdict == DecisionVerdict::RejectedTradeoff &&
        !D.Clauses.UnderMaxUnitSize) {
      FoundSizeReject = true;
      EXPECT_STREQ(D.Clauses.firstFailing(), "under-max-unit-size");
      std::string Json = D.renderJson();
      EXPECT_NE(Json.find("\"failed_clause\":\"under-max-unit-size\""),
                std::string::npos);
      EXPECT_NE(Json.find("\"verdict\":\"rejected-tradeoff\""),
                std::string::npos);
    }
  }
  EXPECT_TRUE(FoundSizeReject);
}

// The three DBDS tiers each emit a span per iteration, nested inside the
// per-function dbds span, and the stream balances.
TEST(TelemetryIntegrationTest, DBDSTierSpansAreRecordedAndBalanced) {
  std::unique_ptr<Module> Mod;
  Function *F = parseInto(Mod, paper::Figure3);
  TraceSession Session;
  {
    ScopedTraceAttach Attach(Session);
    DBDSConfig Config;
    Config.ClassTable = Mod.get();
    runDBDS(*F, Config);
  }
  EXPECT_TRUE(Session.checkBalance());
  std::string Json = Session.renderJson();
  for (const char *Name : {"\"name\":\"dbds\"", "\"name\":\"simulate\"",
                           "\"name\":\"tradeoff\"", "\"name\":\"optimize\"",
                           "\"name\":\"dst\"", "\"name\":\"duplicate\""})
    EXPECT_NE(Json.find(Name), std::string::npos) << Name;
}

// ---- Bench report --------------------------------------------------------

TEST(BenchReportTest, RendersSchemaWithAllConfigsAndGeomean) {
  BenchmarkMeasurement M;
  M.Name = "toy";
  M.Baseline.DynamicCycles = 1000;
  M.Baseline.CompileTimeMs = 2.0;
  M.Baseline.CodeSize = 100;
  M.DBDS.DynamicCycles = 800;
  M.DBDS.CompileTimeMs = 2.5;
  M.DBDS.CodeSize = 110;
  M.DBDS.Duplications = 3;
  M.DBDS.Counters.push_back({"simulator.pairs_simulated", 7});
  M.DupALot.DynamicCycles = 900;
  M.DupALot.CompileTimeMs = 3.0;
  M.DupALot.CodeSize = 150;

  std::string Json = renderBenchJson("unit", {M});
  EXPECT_NE(Json.find("\"schema\":\"dbds-bench-report\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"suite\":\"unit\""), std::string::npos);
  for (const char *Key :
       {"\"baseline\"", "\"dbds\"", "\"dupalot\"", "\"vs_baseline\"",
        "\"geomean\"", "\"peak_pct\"", "\"dynamic_cycles\"",
        "\"results_agree\":true",
        "\"counters\":{\"simulator.pairs_simulated\":7}"})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;

  std::string Error;
  std::string Path = testing::TempDir() + "dbds_bench_unit.json";
  EXPECT_TRUE(writeBenchJson(Path, "unit", {M}, &Error)) << Error;
}

} // namespace
