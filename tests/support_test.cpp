//===- tests/support_test.cpp - Support library unit tests -----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArrayRef.h"
#include "support/Casting.h"
#include "support/RNG.h"
#include "support/SmallVector.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include "ir/Function.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>
#include <string>

using namespace dbds;

namespace {

// ---- SmallVector ---------------------------------------------------------

TEST(SmallVectorTest, StaysInlineBelowCapacity) {
  SmallVector<int, 4> V;
  for (int I = 0; I != 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u); // still inline
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVectorTest, GrowsToHeapPreservingElements) {
  SmallVector<int, 2> V;
  for (int I = 0; I != 100; ++I)
    V.push_back(I * 3);
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(V[I], I * 3);
}

TEST(SmallVectorTest, HandlesNonTrivialElementTypes) {
  SmallVector<std::string, 2> V;
  for (int I = 0; I != 20; ++I)
    V.push_back("element-" + std::to_string(I));
  EXPECT_EQ(V[19], "element-19");
  V.pop_back();
  EXPECT_EQ(V.size(), 19u);
  EXPECT_EQ(V.back(), "element-18");
}

TEST(SmallVectorTest, EraseShiftsTail) {
  SmallVector<int, 4> V = {1, 2, 3, 4, 5};
  V.erase(V.begin() + 1);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[1], 3);
  EXPECT_EQ(V[3], 5);
}

TEST(SmallVectorTest, InsertAtPosition) {
  SmallVector<int, 4> V = {1, 2, 4};
  auto It = V.insert(V.begin() + 2, 3);
  EXPECT_EQ(*It, 3);
  EXPECT_EQ(V.size(), 4u);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(V[I], I + 1);
  V.insert(V.begin(), 0);
  EXPECT_EQ(V[0], 0);
  V.insert(V.end(), 5);
  EXPECT_EQ(V.back(), 5);
}

TEST(SmallVectorTest, CopyAndMoveSemantics) {
  SmallVector<std::string, 2> A;
  for (int I = 0; I != 8; ++I)
    A.push_back(std::to_string(I));
  SmallVector<std::string, 2> B(A);
  EXPECT_EQ(A, B);
  SmallVector<std::string, 2> C(std::move(A));
  EXPECT_EQ(C, B);
  EXPECT_TRUE(A.empty());
  SmallVector<std::string, 2> D;
  D = std::move(C);
  EXPECT_EQ(D, B);
}

TEST(SmallVectorTest, ResizeUpAndDown) {
  SmallVector<int, 4> V;
  V.resize(10, 7);
  EXPECT_EQ(V.size(), 10u);
  EXPECT_EQ(V[9], 7);
  V.resize(3);
  EXPECT_EQ(V.size(), 3u);
  V.resize(5);
  EXPECT_EQ(V[4], 0); // value-initialized
}

TEST(SmallVectorTest, ReserveDoesNotChangeSize) {
  SmallVector<int, 2> V = {1, 2};
  V.reserve(100);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_GE(V.capacity(), 100u);
  EXPECT_EQ(V[1], 2);
}

TEST(SmallVectorTest, SelfReferencePushBackGrowthIsSafe) {
  // push_back of an element of the vector itself while growing.
  SmallVector<std::string, 1> V;
  V.push_back("long-enough-to-heap-allocate-string-content");
  for (int I = 0; I != 10; ++I)
    V.push_back(std::string(V[0])); // explicit copy: defined behaviour
  EXPECT_EQ(V.size(), 11u);
  EXPECT_EQ(V[10], V[0]);
}

// ---- ArrayRef -------------------------------------------------------------

TEST(ArrayRefTest, ViewsContainersWithoutCopying) {
  std::vector<int> Vec = {1, 2, 3};
  ArrayRef<int> Ref(Vec);
  EXPECT_EQ(Ref.size(), 3u);
  EXPECT_EQ(Ref[2], 3);
  EXPECT_EQ(Ref.front(), 1);
  EXPECT_EQ(Ref.back(), 3);
  SmallVector<int, 2> SV = {9, 8};
  ArrayRef<int> Ref2(SV);
  EXPECT_EQ(Ref2[0], 9);
}

TEST(ArrayRefTest, SliceAndDropFront) {
  int Data[] = {0, 1, 2, 3, 4};
  ArrayRef<int> Ref(Data);
  EXPECT_EQ(Ref.slice(1, 3).size(), 3u);
  EXPECT_EQ(Ref.slice(1, 3)[0], 1);
  EXPECT_EQ(Ref.drop_front(2)[0], 2);
  EXPECT_TRUE(Ref.slice(5, 0).empty());
}

// ---- RNG -------------------------------------------------------------------

TEST(RNGTest, DeterministicPerSeed) {
  RNG A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    Differs |= VA != C.next();
  }
  EXPECT_TRUE(Differs);
}

TEST(RNGTest, NextBelowStaysInRange) {
  RNG R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RNGTest, NextRangeIsInclusive) {
  RNG R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNGTest, NextDoubleInUnitInterval) {
  RNG R(99);
  double Sum = 0;
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 1000, 0.5, 0.05); // roughly uniform
}

TEST(RNGTest, NextBoolRespectsProbability) {
  RNG R(5);
  int True = 0;
  for (int I = 0; I != 4000; ++I)
    True += R.nextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(True) / 4000, 0.25, 0.03);
}

// ---- Statistics ------------------------------------------------------------

TEST(StatisticsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({2.0, 2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean(ArrayRef<double>()), 1.0);
  EXPECT_NEAR(geometricMean({1.1, 0.9}), 0.99498743710662, 1e-12);
}

TEST(StatisticsTest, ArithmeticMeanAndExtremes) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(arithmeticMean(ArrayRef<double>()), 0.0);
  EXPECT_DOUBLE_EQ(minimum({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(maximum({3.0, 1.0, 2.0}), 3.0);
}

TEST(StatisticsTest, Median) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);       // odd: middle
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);  // even: middle avg
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median(ArrayRef<double>()), 0.0);
  // The input is not reordered.
  std::vector<double> V = {3.0, 1.0, 2.0};
  median(ArrayRef<double>(V));
  EXPECT_EQ(V[0], 3.0);
  EXPECT_EQ(V[1], 1.0);
  // Unlike the geomean, the median shrugs off one outlier.
  EXPECT_DOUBLE_EQ(median({1.0, 1.0, 1.0, 1.0, 1000.0}), 1.0);
}

TEST(StatisticsTest, SampleStddev) {
  EXPECT_DOUBLE_EQ(stddev(ArrayRef<double>()), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0); // n < 2: undefined, reported as 0
  EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum of squares 32, n-1 = 7.
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

// ---- Casting ----------------------------------------------------------------

TEST(CastingTest, IsaCastDynCastOverInstructions) {
  Function F("t", 1);
  Block *B = F.createBlock();
  IRBuilder Builder(F);
  Builder.setBlock(B);
  Instruction *P = Builder.param(0);
  Instruction *Sum = Builder.add(P, P);
  Instruction *Cmp = Builder.cmp(Predicate::LT, P, Sum);

  EXPECT_TRUE(isa<ParamInst>(P));
  EXPECT_FALSE(isa<BinaryInst>(P));
  EXPECT_TRUE(isa<BinaryInst>(Sum));
  EXPECT_TRUE((isa<BinaryInst, CompareInst>(Cmp))); // variadic isa
  EXPECT_EQ(cast<CompareInst>(Cmp)->getPredicate(), Predicate::LT);
  EXPECT_EQ(dyn_cast<BinaryInst>(Cmp), nullptr);
  EXPECT_NE(dyn_cast<BinaryInst>(Sum), nullptr);
  EXPECT_FALSE(isa_and_present<BinaryInst>((Instruction *)nullptr));
  EXPECT_EQ(dyn_cast_if_present<BinaryInst>((Instruction *)nullptr),
            nullptr);
}

// ---- Timer -------------------------------------------------------------------

TEST(TimerTest, AccumulatesAcrossScopes) {
  Timer T;
  { TimerScope S(T); }
  uint64_t First = T.totalNs();
  { TimerScope S(T); }
  EXPECT_GE(T.totalNs(), First);
  T.reset();
  EXPECT_EQ(T.totalNs(), 0u);
  EXPECT_DOUBLE_EQ(T.totalMs(), 0.0);
}

TEST(TimerTest, StopWithoutStartIsANoOp) {
  Timer T;
  T.stop(); // must not accumulate garbage from an unset begin timestamp
  EXPECT_EQ(T.totalNs(), 0u);
  EXPECT_FALSE(T.isRunning());
  T.start();
  EXPECT_TRUE(T.isRunning());
  T.stop();
  EXPECT_FALSE(T.isRunning());
  T.stop(); // extra stop after a balanced pair: still a no-op
  uint64_t Total = T.totalNs();
  T.stop();
  EXPECT_EQ(T.totalNs(), Total);
}

TEST(TimerTest, NestedStartStopAccumulatesOutermostWindowOnly) {
  Timer T;
  T.start();
  T.start(); // nested: already covered by the outer window
  EXPECT_TRUE(T.isRunning());
  T.stop();
  EXPECT_TRUE(T.isRunning()); // inner stop does not end the window
  EXPECT_EQ(T.totalNs(), 0u); // nothing accumulated until the outer stop
  T.stop();
  EXPECT_FALSE(T.isRunning());
  uint64_t Outer = T.totalNs();
  EXPECT_GT(Outer, 0u);
  // Nested TimerScopes (e.g. a phase timing inside a whole-compile
  // timing) behave identically.
  T.reset();
  {
    TimerScope A(T);
    TimerScope B(T);
    EXPECT_TRUE(T.isRunning());
  }
  EXPECT_FALSE(T.isRunning());
  EXPECT_GT(T.totalNs(), 0u);
}

TEST(TimerTest, ResetClearsNestingDepth) {
  Timer T;
  T.start();
  T.reset(); // reset mid-window: the dangling start must not linger
  EXPECT_FALSE(T.isRunning());
  T.stop(); // and its stop is now unmatched -> no-op
  EXPECT_EQ(T.totalNs(), 0u);
}

} // namespace
