//===- tests/support_test.cpp - Support library unit tests -----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArrayRef.h"
#include "support/Casting.h"
#include "support/RNG.h"
#include "support/SmallVector.h"
#include "support/StableHash.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include "ir/Function.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>
#include <string>

using namespace dbds;

namespace {

// ---- SmallVector ---------------------------------------------------------

TEST(SmallVectorTest, StaysInlineBelowCapacity) {
  SmallVector<int, 4> V;
  for (int I = 0; I != 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u); // still inline
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVectorTest, GrowsToHeapPreservingElements) {
  SmallVector<int, 2> V;
  for (int I = 0; I != 100; ++I)
    V.push_back(I * 3);
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(V[I], I * 3);
}

TEST(SmallVectorTest, HandlesNonTrivialElementTypes) {
  SmallVector<std::string, 2> V;
  for (int I = 0; I != 20; ++I)
    V.push_back("element-" + std::to_string(I));
  EXPECT_EQ(V[19], "element-19");
  V.pop_back();
  EXPECT_EQ(V.size(), 19u);
  EXPECT_EQ(V.back(), "element-18");
}

TEST(SmallVectorTest, EraseShiftsTail) {
  SmallVector<int, 4> V = {1, 2, 3, 4, 5};
  V.erase(V.begin() + 1);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[1], 3);
  EXPECT_EQ(V[3], 5);
}

TEST(SmallVectorTest, InsertAtPosition) {
  SmallVector<int, 4> V = {1, 2, 4};
  auto It = V.insert(V.begin() + 2, 3);
  EXPECT_EQ(*It, 3);
  EXPECT_EQ(V.size(), 4u);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(V[I], I + 1);
  V.insert(V.begin(), 0);
  EXPECT_EQ(V[0], 0);
  V.insert(V.end(), 5);
  EXPECT_EQ(V.back(), 5);
}

TEST(SmallVectorTest, CopyAndMoveSemantics) {
  SmallVector<std::string, 2> A;
  for (int I = 0; I != 8; ++I)
    A.push_back(std::to_string(I));
  SmallVector<std::string, 2> B(A);
  EXPECT_EQ(A, B);
  SmallVector<std::string, 2> C(std::move(A));
  EXPECT_EQ(C, B);
  EXPECT_TRUE(A.empty());
  SmallVector<std::string, 2> D;
  D = std::move(C);
  EXPECT_EQ(D, B);
}

TEST(SmallVectorTest, ResizeUpAndDown) {
  SmallVector<int, 4> V;
  V.resize(10, 7);
  EXPECT_EQ(V.size(), 10u);
  EXPECT_EQ(V[9], 7);
  V.resize(3);
  EXPECT_EQ(V.size(), 3u);
  V.resize(5);
  EXPECT_EQ(V[4], 0); // value-initialized
}

TEST(SmallVectorTest, ReserveDoesNotChangeSize) {
  SmallVector<int, 2> V = {1, 2};
  V.reserve(100);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_GE(V.capacity(), 100u);
  EXPECT_EQ(V[1], 2);
}

TEST(SmallVectorTest, SelfReferencePushBackGrowthIsSafe) {
  // push_back of an element of the vector itself while growing.
  SmallVector<std::string, 1> V;
  V.push_back("long-enough-to-heap-allocate-string-content");
  for (int I = 0; I != 10; ++I)
    V.push_back(std::string(V[0])); // explicit copy: defined behaviour
  EXPECT_EQ(V.size(), 11u);
  EXPECT_EQ(V[10], V[0]);
}

// ---- ArrayRef -------------------------------------------------------------

TEST(ArrayRefTest, ViewsContainersWithoutCopying) {
  std::vector<int> Vec = {1, 2, 3};
  ArrayRef<int> Ref(Vec);
  EXPECT_EQ(Ref.size(), 3u);
  EXPECT_EQ(Ref[2], 3);
  EXPECT_EQ(Ref.front(), 1);
  EXPECT_EQ(Ref.back(), 3);
  SmallVector<int, 2> SV = {9, 8};
  ArrayRef<int> Ref2(SV);
  EXPECT_EQ(Ref2[0], 9);
}

TEST(ArrayRefTest, SliceAndDropFront) {
  int Data[] = {0, 1, 2, 3, 4};
  ArrayRef<int> Ref(Data);
  EXPECT_EQ(Ref.slice(1, 3).size(), 3u);
  EXPECT_EQ(Ref.slice(1, 3)[0], 1);
  EXPECT_EQ(Ref.drop_front(2)[0], 2);
  EXPECT_TRUE(Ref.slice(5, 0).empty());
}

// ---- RNG -------------------------------------------------------------------

TEST(RNGTest, DeterministicPerSeed) {
  RNG A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    Differs |= VA != C.next();
  }
  EXPECT_TRUE(Differs);
}

TEST(RNGTest, NextBelowStaysInRange) {
  RNG R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RNGTest, NextRangeIsInclusive) {
  RNG R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNGTest, NextDoubleInUnitInterval) {
  RNG R(99);
  double Sum = 0;
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 1000, 0.5, 0.05); // roughly uniform
}

TEST(RNGTest, NextBoolRespectsProbability) {
  RNG R(5);
  int True = 0;
  for (int I = 0; I != 4000; ++I)
    True += R.nextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(True) / 4000, 0.25, 0.03);
}

// ---- Statistics ------------------------------------------------------------

TEST(StatisticsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({2.0, 2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean(ArrayRef<double>()), 1.0);
  EXPECT_NEAR(geometricMean({1.1, 0.9}), 0.99498743710662, 1e-12);
}

TEST(StatisticsTest, ArithmeticMeanAndExtremes) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(arithmeticMean(ArrayRef<double>()), 0.0);
  EXPECT_DOUBLE_EQ(minimum({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(maximum({3.0, 1.0, 2.0}), 3.0);
}

TEST(StatisticsTest, Median) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);       // odd: middle
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);  // even: middle avg
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median(ArrayRef<double>()), 0.0);
  // The input is not reordered.
  std::vector<double> V = {3.0, 1.0, 2.0};
  median(ArrayRef<double>(V));
  EXPECT_EQ(V[0], 3.0);
  EXPECT_EQ(V[1], 1.0);
  // Unlike the geomean, the median shrugs off one outlier.
  EXPECT_DOUBLE_EQ(median({1.0, 1.0, 1.0, 1.0, 1000.0}), 1.0);
}

TEST(StatisticsTest, SampleStddev) {
  EXPECT_DOUBLE_EQ(stddev(ArrayRef<double>()), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0); // n < 2: undefined, reported as 0
  EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum of squares 32, n-1 = 7.
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

// ---- Casting ----------------------------------------------------------------

TEST(CastingTest, IsaCastDynCastOverInstructions) {
  Function F("t", 1);
  Block *B = F.createBlock();
  IRBuilder Builder(F);
  Builder.setBlock(B);
  Instruction *P = Builder.param(0);
  Instruction *Sum = Builder.add(P, P);
  Instruction *Cmp = Builder.cmp(Predicate::LT, P, Sum);

  EXPECT_TRUE(isa<ParamInst>(P));
  EXPECT_FALSE(isa<BinaryInst>(P));
  EXPECT_TRUE(isa<BinaryInst>(Sum));
  EXPECT_TRUE((isa<BinaryInst, CompareInst>(Cmp))); // variadic isa
  EXPECT_EQ(cast<CompareInst>(Cmp)->getPredicate(), Predicate::LT);
  EXPECT_EQ(dyn_cast<BinaryInst>(Cmp), nullptr);
  EXPECT_NE(dyn_cast<BinaryInst>(Sum), nullptr);
  EXPECT_FALSE(isa_and_present<BinaryInst>((Instruction *)nullptr));
  EXPECT_EQ(dyn_cast_if_present<BinaryInst>((Instruction *)nullptr),
            nullptr);
}

// ---- Timer -------------------------------------------------------------------

TEST(TimerTest, AccumulatesAcrossScopes) {
  Timer T;
  { TimerScope S(T); }
  uint64_t First = T.totalNs();
  { TimerScope S(T); }
  EXPECT_GE(T.totalNs(), First);
  T.reset();
  EXPECT_EQ(T.totalNs(), 0u);
  EXPECT_DOUBLE_EQ(T.totalMs(), 0.0);
}

TEST(TimerTest, StopWithoutStartIsANoOp) {
  Timer T;
  T.stop(); // must not accumulate garbage from an unset begin timestamp
  EXPECT_EQ(T.totalNs(), 0u);
  EXPECT_FALSE(T.isRunning());
  T.start();
  EXPECT_TRUE(T.isRunning());
  T.stop();
  EXPECT_FALSE(T.isRunning());
  T.stop(); // extra stop after a balanced pair: still a no-op
  uint64_t Total = T.totalNs();
  T.stop();
  EXPECT_EQ(T.totalNs(), Total);
}

TEST(TimerTest, NestedStartStopAccumulatesOutermostWindowOnly) {
  Timer T;
  T.start();
  T.start(); // nested: already covered by the outer window
  EXPECT_TRUE(T.isRunning());
  T.stop();
  EXPECT_TRUE(T.isRunning()); // inner stop does not end the window
  EXPECT_EQ(T.totalNs(), 0u); // nothing accumulated until the outer stop
  T.stop();
  EXPECT_FALSE(T.isRunning());
  uint64_t Outer = T.totalNs();
  EXPECT_GT(Outer, 0u);
  // Nested TimerScopes (e.g. a phase timing inside a whole-compile
  // timing) behave identically.
  T.reset();
  {
    TimerScope A(T);
    TimerScope B(T);
    EXPECT_TRUE(T.isRunning());
  }
  EXPECT_FALSE(T.isRunning());
  EXPECT_GT(T.totalNs(), 0u);
}

TEST(TimerTest, ResetClearsNestingDepth) {
  Timer T;
  T.start();
  T.reset(); // reset mid-window: the dangling start must not linger
  EXPECT_FALSE(T.isRunning());
  T.stop(); // and its stop is now unmatched -> no-op
  EXPECT_EQ(T.totalNs(), 0u);
}

// ---- StableHash ----------------------------------------------------------
//
// Golden values pin the exact FNV-1a parameters. These digests are
// persisted in on-disk compile-cache entries and file names: any change
// here is a silent cache-format break, so the constants are asserted
// against independently computed values, not against the implementation.

TEST(StableHashTest, Fnv64GoldenValues) {
  EXPECT_EQ(stableHash64(std::string("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stableHash64(std::string("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stableHash64(std::string("foobar")), 0x85944171f73967e8ULL);
  EXPECT_EQ(stableHash64(std::string("dbds")), 0x7a763a6729d50d62ULL);
}

TEST(StableHashTest, Fnv128GoldenValues) {
  Hash128 Empty = stableHash128(std::string(""));
  EXPECT_EQ(Empty.Hi, 0x6c62272e07bb0142ULL);
  EXPECT_EQ(Empty.Lo, 0x62b821756295c58dULL);
  Hash128 A = stableHash128(std::string("a"));
  EXPECT_EQ(A.Hi, 0xd228cb696f1a8cafULL);
  EXPECT_EQ(A.Lo, 0x78912b704e4a8964ULL);
  Hash128 Foobar = stableHash128(std::string("foobar"));
  EXPECT_EQ(Foobar.Hi, 0x343e1662793c64bfULL);
  EXPECT_EQ(Foobar.Lo, 0x6f0d3597ba446f18ULL);
  Hash128 Dbds = stableHash128(std::string("dbds"));
  EXPECT_EQ(Dbds.Hi, 0x695b5628d9757277ULL);
  EXPECT_EQ(Dbds.Lo, 0xb806e9704c361922ULL);
}

TEST(StableHashTest, ScalarsHashAsLittleEndianBytes) {
  // The field hasher must feed scalars as fixed-width little-endian bytes
  // regardless of host endianness: hashing the bytes directly must agree.
  const uint64_t V = 0x0123456789abcdefULL;
  const unsigned char Bytes[8] = {0xef, 0xcd, 0xab, 0x89,
                                  0x67, 0x45, 0x23, 0x01};
  EXPECT_EQ(StableHasher().u64(V).digest(),
            StableHasher().bytes(Bytes, 8).digest());
  // Independently computed goldens over those eight bytes.
  EXPECT_EQ(stableHash64(Bytes, 8), 0x37eb3f3347761c55ULL);
  Hash128 H = StableHasher().u64(V).digest();
  EXPECT_EQ(H.Hi, 0x0619098f38659878ULL);
  EXPECT_EQ(H.Lo, 0xf047fc4523abfdfdULL);
}

TEST(StableHashTest, StringsAreLengthPrefixed) {
  // ("ab","c") and ("a","bc") concatenate identically; the length prefix
  // must keep them apart.
  Hash128 A = StableHasher().str("ab").str("c").digest();
  Hash128 B = StableHasher().str("a").str("bc").digest();
  EXPECT_NE(A, B);
}

TEST(StableHashTest, DoublesHashByBitPattern) {
  // 0.0 and -0.0 compare equal as doubles but are distinct bit patterns;
  // bit-pattern hashing must separate them (and NaN must be stable).
  EXPECT_NE(StableHasher().f64(0.0).digest(),
            StableHasher().f64(-0.0).digest());
  EXPECT_EQ(StableHasher().f64(1.0 / 3.0).digest(),
            StableHasher().f64(1.0 / 3.0).digest());
}

TEST(StableHashTest, FieldTypesDoNotAlias) {
  // A bool true and a u8 1 are the same byte by design, but widths differ
  // across types: u32(1) vs u64(1) must not collide.
  EXPECT_NE(StableHasher().u32(1).digest(), StableHasher().u64(1).digest());
  EXPECT_EQ(StableHasher().boolean(true).digest(),
            StableHasher().u8(1).digest());
  EXPECT_NE(StableHasher().i64(-1).digest(), StableHasher().i64(1).digest());
}

TEST(StableHashTest, HexIsFixedWidthLowercaseHiFirst) {
  Hash128 H{0x0000000000000001ULL, 0xabcdef0123456789ULL};
  EXPECT_EQ(H.hex(), "0000000000000001abcdef0123456789");
  EXPECT_EQ(Hash128{}.hex(), "00000000000000000000000000000000");
  EXPECT_EQ(H.hex().size(), 32u);
}

TEST(StableHashTest, ComparisonOperators) {
  Hash128 A{1, 2}, B{1, 3}, C{2, 0};
  EXPECT_TRUE(A == A);
  EXPECT_TRUE(A != B);
  EXPECT_TRUE(A < B); // Lo breaks Hi ties
  EXPECT_TRUE(B < C); // Hi dominates
  EXPECT_FALSE(C < A);
}

} // namespace
