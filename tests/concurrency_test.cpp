//===- tests/concurrency_test.cpp - Parallel compile determinism wall ------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The determinism wall for the parallel compile service: the thread pool's
// scheduling contract, the telemetry sharding/merge machinery, the
// per-task fault-stream derivation, and — the headline — full-corpus
// equivalence between --jobs=1 and --jobs=8 (bitwise-identical printed IR,
// identical interpreter results, counter totals, decision logs, and
// diagnostics across >= 5 seeds under all three paper configurations).
//
// The ParallelCompileTest.StressSmoke and ThreadPoolTest cases double as
// the TSan subjects (the `tsan` preset + concurrency_tsan_smoke ctest
// target run them with -fsanitize=thread).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"
#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "workloads/CompileCache.h"
#include "workloads/CompileService.h"
#include "workloads/Runner.h"
#include "workloads/Suites.h"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <thread>
#include <vector>

using namespace dbds;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool scheduling contract
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.runIndexed(N, [&](size_t Index, unsigned Worker) {
    ASSERT_LT(Index, N);
    ASSERT_LT(Worker, Pool.workerCount());
    Hits[Index].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool Pool(3);
  std::atomic<uint64_t> Sum{0};
  for (unsigned Batch = 0; Batch != 5; ++Batch)
    Pool.runIndexed(100, [&](size_t Index, unsigned) {
      Sum.fetch_add(Index + 1, std::memory_order_relaxed);
    });
  EXPECT_EQ(Sum.load(), 5u * (100u * 101u / 2u));
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool Pool(2);
  bool Ran = false;
  Pool.runIndexed(0, [&](size_t, unsigned) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPoolTest, MoreWorkersThanTasks) {
  ThreadPool Pool(8);
  std::atomic<unsigned> Count{0};
  Pool.runIndexed(3, [&](size_t, unsigned) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 3u);
}

TEST(ThreadPoolTest, UnevenTaskDurationsDrainViaStealing) {
  // A few long tasks dealt to one deque force siblings to steal; the batch
  // must still complete every index. (Whether steals actually happen is
  // scheduling-dependent — only completion is asserted; stealCount() is
  // read to exercise the accessor under TSan.)
  ThreadPool Pool(4);
  constexpr size_t N = 64;
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.runIndexed(N, [&](size_t Index, unsigned) {
    if (Index % 16 == 0) {
      volatile uint64_t Spin = 0;
      for (unsigned I = 0; I != 200000; ++I)
        Spin = Spin + I;
    }
    Hits[Index].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u);
  (void)Pool.stealCount();
}

TEST(ThreadPoolTest, DefaultWorkerCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

//===----------------------------------------------------------------------===//
// CounterShard: buffering, flush, and per-thread isolation
//===----------------------------------------------------------------------===//

DBDS_COUNTER(concurrency_test, shard_probe);

TEST(CounterShardTest, BuffersUntilFlush) {
  const uint64_t Before = shard_probe.value();
  {
    CounterShard Shard;
    ++shard_probe;
    shard_probe += 4;
    // Buffered: the global value is unchanged until the shard dies.
    EXPECT_EQ(shard_probe.value(), Before);
    std::vector<CounterSample> Snap = Shard.snapshot();
    ASSERT_EQ(Snap.size(), 1u);
    EXPECT_EQ(Snap[0].Name, "concurrency_test.shard_probe");
    EXPECT_EQ(Snap[0].Value, 5u);
  }
  EXPECT_EQ(shard_probe.value(), Before + 5);
}

TEST(CounterShardTest, ActiveTracksInstallation) {
  EXPECT_EQ(CounterShard::active(), nullptr);
  {
    CounterShard Outer;
    EXPECT_EQ(CounterShard::active(), &Outer);
    {
      CounterShard Inner;
      EXPECT_EQ(CounterShard::active(), &Inner);
    }
    EXPECT_EQ(CounterShard::active(), &Outer);
  }
  EXPECT_EQ(CounterShard::active(), nullptr);
}

// The audit-attribution regression: before sharding, PhaseManager's audit
// mode snapshotted the *global* registry around each phase, so counter
// activity from concurrently compiling workers was misattributed to
// whatever phase happened to be in flight. The shard snapshot must see
// only the installing thread's increments, no matter how loudly other
// threads are counting. (Fails against global snapshots under --jobs>1.)
TEST(CounterShardTest, SnapshotIsolatedFromOtherThreads) {
  CounterShard Mine;
  ++shard_probe;

  std::atomic<bool> Stop{false};
  std::thread Noise([&] {
    while (!Stop.load(std::memory_order_relaxed))
      ++shard_probe; // no shard on this thread: hits the global atomic
  });
  for (unsigned I = 0; I != 1000; ++I) {
    std::vector<CounterSample> Snap = Mine.snapshot();
    ASSERT_EQ(Snap.size(), 1u);
    ASSERT_EQ(Snap[0].Value, 1u) << "foreign increments leaked into shard";
  }
  Stop.store(true, std::memory_order_relaxed);
  Noise.join();
}

TEST(CounterShardTest, ConcurrentShardsFlushToSameTotal) {
  CounterRegistry::instance().resetAll();
  constexpr unsigned Threads = 8, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&] {
      CounterShard Shard;
      for (unsigned I = 0; I != PerThread; ++I)
        ++shard_probe;
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(shard_probe.value(), uint64_t(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// Merge primitives: decision log, diagnostics, fault streams, hashing
//===----------------------------------------------------------------------===//

TEST(DecisionLogMergeTest, PreservesOrderAndDrainsSource) {
  DecisionLog A, B;
  DuplicationDecision D;
  D.FunctionName = "f0";
  A.append(D);
  D.FunctionName = "f1";
  B.append(D);
  D.FunctionName = "f2";
  B.append(D);

  A.merge(std::move(B));
  ASSERT_EQ(A.decisions().size(), 3u);
  EXPECT_EQ(A.decisions()[0].FunctionName, "f0");
  EXPECT_EQ(A.decisions()[1].FunctionName, "f1");
  EXPECT_EQ(A.decisions()[2].FunctionName, "f2");
  EXPECT_TRUE(B.empty());
}

TEST(DecisionLogMergeTest, MergeIntoEmptyMoves) {
  DecisionLog A, B;
  DuplicationDecision D;
  D.FunctionName = "only";
  B.append(D);
  A.merge(std::move(B));
  ASSERT_EQ(A.decisions().size(), 1u);
  EXPECT_EQ(A.decisions()[0].FunctionName, "only");
}

TEST(DiagnosticsMergeTest, PreservesOrderAndDrainsSource) {
  DiagnosticEngine A, B;
  A.note("runner", "f0", "first");
  B.warning("runner", "f1", "second");
  B.error("runner", "f2", "third");
  A.mergeFrom(B);
  ASSERT_EQ(A.all().size(), 3u);
  EXPECT_EQ(A.all()[0].Message, "first");
  EXPECT_EQ(A.all()[1].Message, "second");
  EXPECT_EQ(A.all()[2].Message, "third");
  EXPECT_TRUE(B.empty());
}

TEST(FaultInjectorTaskTest, DerivedStreamsIgnoreBaseState) {
  // forTask(N) must depend only on (base seed, N): advancing the base
  // injector's own stream first must not change the derived stream —
  // that is what makes fault decisions independent of scheduling order.
  FaultInjector Fresh(42, 1.0);
  FaultInjector Advanced(42, 1.0);
  (void)Advanced.at("site-a");
  (void)Advanced.entropy();

  FaultInjector A = Fresh.forTask(7);
  FaultInjector B = Advanced.forTask(7);
  EXPECT_EQ(A.seed(), B.seed());
  for (unsigned I = 0; I != 16; ++I)
    ASSERT_EQ(A.at("probe"), B.at("probe"));
}

TEST(FaultInjectorTaskTest, DistinctTasksGetDistinctStreams) {
  FaultInjector Base(42, 1.0);
  EXPECT_NE(Base.forTask(0).seed(), Base.forTask(1).seed());
}

TEST(FaultInjectorTaskTest, AbsorbCountsAccumulates) {
  FaultInjector Base(42, 1.0);
  FaultInjector Task = Base.forTask(0);
  unsigned Fired = 0;
  for (unsigned I = 0; I != 10; ++I)
    Fired += Task.at("site") != FaultKind::None;
  Base.absorbCounts(Task);
  EXPECT_EQ(Base.sitesVisited(), 10u);
  EXPECT_EQ(Base.faultsInjected(), Fired);
}

TEST(ResultHashTest, FoldIsOrderSensitive) {
  uint64_t AB = resultHashCombine(resultHashCombine(0, 1), 2);
  uint64_t BA = resultHashCombine(resultHashCombine(0, 2), 1);
  EXPECT_NE(AB, BA); // index-ordered merge is load-bearing, not cosmetic
  EXPECT_EQ(AB, resultHashCombine(resultHashCombine(0, 1), 2));
}

//===----------------------------------------------------------------------===//
// The determinism wall: --jobs=1 vs --jobs=8 over the generator corpus
//===----------------------------------------------------------------------===//

/// Everything observable one corpus compilation produces.
struct CorpusObservation {
  std::vector<std::string> PrintedIR; ///< One per (seed, config).
  std::vector<uint64_t> ResultHashes; ///< Per function, flattened.
  std::vector<uint64_t> DynamicCycles;
  std::vector<uint64_t> CodeSizes;
  std::vector<unsigned> Duplications;
  std::vector<unsigned> Rollbacks;
  std::string RemarksJsonl;
  std::string DiagsText;
  std::vector<CounterSample> CounterDelta;
};

CorpusObservation observeCorpus(unsigned Jobs, CompileCache *Cache = nullptr) {
  const SuiteSpec Corpus =
      generatorCorpusSuite(/*Seed=*/900, /*Benchmarks=*/5, /*Functions=*/5,
                           /*Segments=*/5);
  CorpusObservation Obs;
  DecisionLog Decisions;
  DiagnosticEngine Diags;
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Decisions = &Decisions;
  Opts.Diags = &Diags;
  Opts.Cache = Cache;

  std::vector<CounterSample> Pre = CounterRegistry::instance().snapshot();
  CompileService Service(Jobs);
  const RunConfig Configs[] = {RunConfig::Baseline, RunConfig::DBDS,
                               RunConfig::DupALot};
  for (const BenchmarkSpec &Spec : Corpus.Benchmarks) {
    for (RunConfig Config : Configs) {
      GeneratedWorkload W = generateWorkload(Spec.Config);
      CompileBatch Batch =
          compileFunctionsParallel(Service, W, Config, Opts, Spec.Name);
      Obs.PrintedIR.push_back(printModule(W.Mod.get()));
      for (const FunctionCompileOutcome &O : Batch.Outcomes) {
        Obs.ResultHashes.push_back(O.ResultHash);
        Obs.DynamicCycles.push_back(O.DynamicCycles);
        Obs.CodeSizes.push_back(O.CodeSize);
        Obs.Duplications.push_back(O.Duplications);
        Obs.Rollbacks.push_back(O.Rollbacks);
      }
    }
  }
  Obs.RemarksJsonl = Decisions.renderJsonl();
  Obs.DiagsText = Diags.render();
  Obs.CounterDelta =
      CounterRegistry::delta(Pre, CounterRegistry::instance().snapshot());
  return Obs;
}

TEST(ConcurrencyWallTest, JobsOneAndJobsEightAreObservablyIdentical) {
  CorpusObservation Serial = observeCorpus(1);
  CorpusObservation Parallel = observeCorpus(8);

  // Bitwise-identical optimized IR for every (seed, config) module.
  ASSERT_EQ(Serial.PrintedIR.size(), Parallel.PrintedIR.size());
  for (size_t I = 0; I != Serial.PrintedIR.size(); ++I)
    EXPECT_EQ(Serial.PrintedIR[I], Parallel.PrintedIR[I])
        << "module " << I << " IR diverged between --jobs=1 and --jobs=8";

  // Identical interpreter results and per-function measurements.
  EXPECT_EQ(Serial.ResultHashes, Parallel.ResultHashes);
  EXPECT_EQ(Serial.DynamicCycles, Parallel.DynamicCycles);
  EXPECT_EQ(Serial.CodeSizes, Parallel.CodeSizes);
  EXPECT_EQ(Serial.Duplications, Parallel.Duplications);
  EXPECT_EQ(Serial.Rollbacks, Parallel.Rollbacks);

  // Byte-identical remarks stream and diagnostics.
  EXPECT_EQ(Serial.RemarksJsonl, Parallel.RemarksJsonl);
  EXPECT_EQ(Serial.DiagsText, Parallel.DiagsText);

  // Identical telemetry counter totals (deltas over each run).
  ASSERT_EQ(Serial.CounterDelta.size(), Parallel.CounterDelta.size());
  for (size_t I = 0; I != Serial.CounterDelta.size(); ++I) {
    EXPECT_EQ(Serial.CounterDelta[I].Name, Parallel.CounterDelta[I].Name);
    EXPECT_EQ(Serial.CounterDelta[I].Value, Parallel.CounterDelta[I].Value)
        << "counter " << Serial.CounterDelta[I].Name;
  }
}

TEST(ConcurrencyWallTest, CompileCacheIsScheduleIndependent) {
  // The cache extension of the wall: hit/miss accounting and every
  // replayed payload must be schedule-independent. Three runs are
  // compared — cold --jobs=8, warm --jobs=8 (same cache), and cold
  // --jobs=1 (fresh cache). Cold8 and Cold1 must agree on everything
  // *including* cache.* counters (probes happen in waves, inserts at the
  // serial join); Warm8 must agree on everything except cache.* (hits
  // replace misses — the one documented warm/cold divergence).
  CompileCache Shared, Fresh;
  CorpusObservation Cold8 = observeCorpus(8, &Shared);
  CorpusObservation Warm8 = observeCorpus(8, &Shared);
  CorpusObservation Cold1 = observeCorpus(1, &Fresh);

  auto StripCache = [](const std::vector<CounterSample> &V) {
    std::vector<CounterSample> Out;
    for (const CounterSample &S : V)
      if (S.Name.compare(0, 6, "cache.") != 0)
        Out.push_back(S);
    return Out;
  };
  auto Render = [](const CorpusObservation &O,
                   const std::vector<CounterSample> &Counters) {
    std::string S;
    for (const std::string &IR : O.PrintedIR)
      S += IR;
    for (uint64_t H : O.ResultHashes)
      S += std::to_string(H) + ",";
    for (uint64_t C : O.DynamicCycles)
      S += std::to_string(C) + ",";
    for (uint64_t C : O.CodeSizes)
      S += std::to_string(C) + ",";
    for (unsigned D : O.Duplications)
      S += std::to_string(D) + ",";
    for (unsigned R : O.Rollbacks)
      S += std::to_string(R) + ",";
    S += O.RemarksJsonl + O.DiagsText;
    for (const CounterSample &C : Counters)
      S += C.Name + "=" + std::to_string(C.Value) + "\n";
    return S;
  };

  EXPECT_EQ(Render(Cold8, Cold8.CounterDelta),
            Render(Cold1, Cold1.CounterDelta));
  EXPECT_EQ(Render(Warm8, StripCache(Warm8.CounterDelta)),
            Render(Cold8, StripCache(Cold8.CounterDelta)));
}

TEST(ConcurrencyWallTest, RunnerMeasurementsMatchAcrossJobs) {
  // The Runner-level view of the same contract: everything except
  // wall-clock compile time agrees between serial and parallel runs.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/1700, /*Benchmarks=*/1, /*Functions=*/6,
                           /*Segments=*/5)
          .Benchmarks[0];
  RunnerOptions Serial, Parallel;
  Serial.Verify = Parallel.Verify = true;
  Serial.CollectCounters = Parallel.CollectCounters = true;
  Serial.Jobs = 1;
  Parallel.Jobs = 8;

  BenchmarkMeasurement A = measureBenchmark(Spec, Serial);
  BenchmarkMeasurement B = measureBenchmark(Spec, Parallel);

  const std::pair<const ConfigMeasurement *, const ConfigMeasurement *>
      Pairs[] = {{&A.Baseline, &B.Baseline},
                 {&A.DBDS, &B.DBDS},
                 {&A.DupALot, &B.DupALot}};
  for (const auto &[SA, SB] : Pairs) {
    EXPECT_EQ(SA->DynamicCycles, SB->DynamicCycles);
    EXPECT_EQ(SA->CodeSize, SB->CodeSize);
    EXPECT_EQ(SA->Duplications, SB->Duplications);
    EXPECT_EQ(SA->ResultHash, SB->ResultHash);
    EXPECT_EQ(SA->Rollbacks, SB->Rollbacks);
    EXPECT_EQ(SA->RunFailures, SB->RunFailures);
  }
  EXPECT_EQ(A.ResultsAgree, B.ResultsAgree);
}

TEST(ConcurrencyWallTest, FaultInjectionIsScheduleIndependent) {
  // With a derived per-task fault stream, even an injected-fault run must
  // be jobs-invariant: same rollbacks, same diagnostics, same counts.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/2600, /*Benchmarks=*/1, /*Functions=*/6,
                           /*Segments=*/4)
          .Benchmarks[0];

  auto Run = [&](unsigned Jobs) {
    FaultInjector Injector(99, 0.05);
    DiagnosticEngine Diags;
    RunnerOptions Opts;
    Opts.Verify = true;
    Opts.Injector = &Injector;
    Opts.Diags = &Diags;
    Opts.Jobs = Jobs;
    BenchmarkMeasurement M = measureBenchmark(Spec, Opts);
    return std::tuple<unsigned, unsigned, unsigned, std::string>(
        M.DBDS.Rollbacks, Injector.sitesVisited(), Injector.faultsInjected(),
        Diags.render());
  };
  EXPECT_EQ(Run(1), Run(8));
}

TEST(ConcurrencyWallTest, RetryLadderIsScheduleIndependent) {
  // The supervised batch extends the wall: attempt histories, re-queue
  // decisions, breaker trips, diagnostics, remarks, and counter totals
  // must be byte-identical between --jobs=1 and --jobs=8. The fault mask
  // deliberately excludes Hang and no deadline is armed — timing-driven
  // expiry is the one documented nondeterminism, so it stays out of the
  // byte-identical comparison (supervision_test covers containment).
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/3300, /*Benchmarks=*/1, /*Functions=*/6,
                           /*Segments=*/4)
          .Benchmarks[0];

  auto Run = [&](unsigned Jobs) {
    FaultInjector Injector(1234, 0.25,
                           FaultInjector::MaskCorruptIR |
                               FaultInjector::MaskPhaseFailure |
                               FaultInjector::MaskResourceExhaustion);
    DecisionLog Decisions;
    DiagnosticEngine Diags;
    RunnerOptions Opts;
    Opts.Verify = true;
    Opts.Injector = &Injector;
    Opts.Decisions = &Decisions;
    Opts.Diags = &Diags;
    Opts.Jobs = Jobs;
    Opts.MaxAttempts = 3;
    Opts.BreakerThreshold = 4;

    std::vector<CounterSample> Pre = CounterRegistry::instance().snapshot();
    GeneratedWorkload W = generateWorkload(Spec.Config);
    CompileService Service(Jobs);
    CompileBatch Batch = compileFunctionsParallel(Service, W, RunConfig::DBDS,
                                                  Opts, Spec.Name);

    // Serialize every schedule-sensitive observable into one string.
    std::string S;
    for (const FunctionCompileOutcome &O : Batch.Outcomes) {
      S += "outcome hash=" + std::to_string(O.ResultHash) +
           " rollbacks=" + std::to_string(O.Rollbacks) +
           " runfail=" + std::to_string(O.RunFailures) +
           " exhausted=" + std::to_string(O.Exhausted) + "\n";
      for (const CompileAttempt &A : O.Attempts)
        S += "  attempt " + std::to_string(A.Attempt) +
             " forced=" + std::to_string(static_cast<int>(A.Forced)) +
             " seed=" + std::to_string(A.FaultSeed) +
             " sites=" + std::to_string(A.FaultSites) +
             " injected=" + std::to_string(A.FaultsInjected) +
             " rollbacks=" + std::to_string(A.Rollbacks) +
             " runfail=" + std::to_string(A.RunFailures) +
             " failed=" + std::to_string(A.Failed) + " " + A.Reason + "\n";
    }
    for (const std::string &Trip : Batch.BreakerTrips)
      S += "trip: " + Trip + "\n";
    S += printModule(W.Mod.get());
    S += Decisions.renderJsonl();
    S += Diags.render();
    S += "sites=" + std::to_string(Injector.sitesVisited()) +
         " injected=" + std::to_string(Injector.faultsInjected()) + "\n";
    for (const CounterSample &C :
         CounterRegistry::delta(Pre, CounterRegistry::instance().snapshot()))
      S += C.Name + "=" + std::to_string(C.Value) + "\n";
    return S;
  };
  EXPECT_EQ(Run(1), Run(8));
}

//===----------------------------------------------------------------------===//
// Parallel compile stress (the TSan smoke subject)
//===----------------------------------------------------------------------===//

TEST(ParallelCompileTest, StressSmoke) {
  // Small but genuinely concurrent: 4 workers, three configs, decision
  // logging, diagnostics, and fault injection all on — the surface TSan
  // needs to see racing if anything shared slipped through.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/4242, /*Benchmarks=*/1, /*Functions=*/8,
                           /*Segments=*/4)
          .Benchmarks[0];
  FaultInjector Injector(7, 0.05);
  DecisionLog Decisions;
  DiagnosticEngine Diags;
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Jobs = 4;
  Opts.Injector = &Injector;
  Opts.Decisions = &Decisions;
  Opts.Diags = &Diags;
  Opts.CollectCounters = true;

  BenchmarkMeasurement M = measureBenchmark(Spec, Opts);
  EXPECT_TRUE(M.ResultsAgree);
  EXPECT_NE(M.Baseline.ResultHash, 0u);
}

TEST(ParallelCompileTest, ServiceResolvesJobs) {
  EXPECT_EQ(CompileService(1).jobs(), 1u);
  EXPECT_EQ(CompileService(6).jobs(), 6u);
  EXPECT_GE(CompileService(0).jobs(), 1u); // 0 = hardware threads
  EXPECT_EQ(CompileService::resolveJobs(0), ThreadPool::defaultWorkerCount());
}

} // namespace
