//===- tests/duplicator_test.cpp - Duplication edge cases -------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The tail-duplication transformation under every merge shape it can
// encounter: merges ending in returns, branches, and jumps; values live
// across later joins (SSA reconstruction); memory operations; chains of
// merges; and interactions with subsequent cleanup. Every case checks the
// verifier and interpreter-observable semantics on both paths.
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"
#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Duplicator.h"
#include "ir/Parser.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

Block *mergeBlock(Function &F) {
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  for (Block *B : F.blocks())
    if (B->isMerge() && !LI.isLoopHeader(B))
      return B;
  return nullptr;
}

/// Duplicates \p M into every eligible predecessor, verifying after each.
void duplicateAll(Function &F, Block *M) {
  bool Progress = true;
  while (Progress && M->isMerge()) {
    Progress = false;
    for (Block *P : SmallVector<Block *, 4>(M->preds().begin(),
                                            M->preds().end())) {
      if (!canDuplicateInto(M, P))
        continue;
      duplicateIntoPredecessor(F, M, P);
      ASSERT_EQ(verifyFunction(F), "");
      Progress = true;
      break;
    }
  }
}

TEST(DuplicatorEdgeTest, MergeEndingInBranch) {
  // The merge's terminator is an If: both successors gain predecessors.
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%b, b2]
  %c2 = cmp gt %phi, %b
  if %c2, b4, b5 !0.5
b4:
  %one = const 1
  ret %one
b5:
  ret %z
}
)");
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t A, int64_t B) {
    return Interp.run(*P.F, ArrayRef<int64_t>({A, B})).Result.Scalar;
  };
  int64_t R1 = Run(5, 2), R2 = Run(-5, 2), R3 = Run(5, 9);
  Block *M = P.F->getBlockById(3);
  duplicateAll(*P.F, M);
  EXPECT_EQ(Run(5, 2), R1);
  EXPECT_EQ(Run(-5, 2), R2);
  EXPECT_EQ(Run(5, 9), R3);
}

TEST(DuplicatorEdgeTest, MergeEndingInReturn) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  ret %phi
}
)");
  Block *M = P.F->getBlockById(3);
  duplicateAll(*P.F, M);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({4})).Result.Scalar, 4);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-4})).Result.Scalar, 0);
}

TEST(DuplicatorEdgeTest, ThreeWayMerge) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %ten = const 10
  %c = cmp gt %a, %ten
  if %c, b1, b2 !0.5
b1:
  jump b5
b2:
  %c2 = cmp gt %a, %z
  if %c2, b3, b4 !0.5
b3:
  jump b5
b4:
  jump b5
b5:
  %phi = phi int [%ten, b1], [%a, b3], [%z, b4]
  %one = const 1
  %r = add %phi, %one
  ret %r
}
)");
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t A) {
    return Interp.run(*P.F, ArrayRef<int64_t>({A})).Result.Scalar;
  };
  int64_t R1 = Run(20), R2 = Run(5), R3 = Run(-5);
  Block *M = P.F->getBlockById(5);
  ASSERT_EQ(M->getNumPreds(), 3u);
  duplicateAll(*P.F, M);
  EXPECT_EQ(Run(20), R1);
  EXPECT_EQ(Run(5), R2);
  EXPECT_EQ(Run(-5), R3);
}

TEST(DuplicatorEdgeTest, MemoryOperationsInMerge) {
  Parsed P = parse(R"(
class A 2

func @f(obj, int) {
b0:
  %a = param 0
  %v = param 1
  %z = const 0
  %c = cmp gt %v, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%v, b1], [%z, b2]
  store %a, 0, %phi
  %l = load %a, 1
  %r = add %l, %phi
  ret %r
}
)");
  Interpreter Interp(*P.Mod);
  RuntimeValue Obj = Interp.allocate(0);
  Interp.writeField(Obj, 1, 100);
  RuntimeValue Args[2] = {Obj, RuntimeValue::ofInt(5)};
  int64_t Before =
      Interp.run(*P.F, ArrayRef<RuntimeValue>(Args, 2)).Result.Scalar;
  int64_t Field0 = Interp.readField(Obj, 0);

  Block *M = P.F->getBlockById(3);
  duplicateAll(*P.F, M);

  Interp.reset();
  Obj = Interp.allocate(0);
  Interp.writeField(Obj, 1, 100);
  RuntimeValue Args2[2] = {Obj, RuntimeValue::ofInt(5)};
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<RuntimeValue>(Args2, 2)).Result.Scalar,
            Before);
  EXPECT_EQ(Interp.readField(Obj, 0), Field0); // store still happens once
}

TEST(DuplicatorEdgeTest, CallInMergeExecutesOncePerPath) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  %x = call 7(%phi)
  ret %x
}
)");
  Interpreter Interp(*P.Mod);
  int64_t R1 = Interp.run(*P.F, ArrayRef<int64_t>({3})).Result.Scalar;
  int64_t R2 = Interp.run(*P.F, ArrayRef<int64_t>({-3})).Result.Scalar;
  Block *M = P.F->getBlockById(3);
  duplicateAll(*P.F, M);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({3})).Result.Scalar, R1);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-3})).Result.Scalar, R2);
}

TEST(DuplicatorEdgeTest, ValueLiveAcrossTwoJoins) {
  // %v defined in the first merge is used past a second join: SSA
  // reconstruction must chain phis through both.
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  %v = mul %phi, %b
  %c2 = cmp gt %v, %b
  if %c2, b4, b5 !0.5
b4:
  jump b6
b5:
  jump b6
b6:
  %c3 = cmp gt %v, %a
  if %c3, b7, b8 !0.5
b7:
  ret %v
b8:
  %r = add %v, %b
  ret %r
}
)");
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t A, int64_t B) {
    return Interp.run(*P.F, ArrayRef<int64_t>({A, B})).Result.Scalar;
  };
  int64_t Cases[4][2] = {{3, 4}, {-3, 4}, {3, -4}, {-3, -4}};
  int64_t Before[4];
  for (int I = 0; I != 4; ++I)
    Before[I] = Run(Cases[I][0], Cases[I][1]);

  Block *M = P.F->getBlockById(3);
  duplicateAll(*P.F, M);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Run(Cases[I][0], Cases[I][1]), Before[I]) << "case " << I;
}

TEST(DuplicatorEdgeTest, ChainedMergesDuplicatedInSequence) {
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %p1 = phi int [%a, b1], [%z, b2]
  %c2 = cmp gt %b, %z
  if %c2, b4, b5 !0.5
b4:
  jump b6
b5:
  jump b6
b6:
  %p2 = phi int [%b, b4], [%p1, b5]
  %r = add %p1, %p2
  ret %r
}
)");
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t A, int64_t B) {
    return Interp.run(*P.F, ArrayRef<int64_t>({A, B})).Result.Scalar;
  };
  int64_t Cases[4][2] = {{3, 4}, {-3, 4}, {3, -4}, {-3, -4}};
  int64_t Before[4];
  for (int I = 0; I != 4; ++I)
    Before[I] = Run(Cases[I][0], Cases[I][1]);

  // Duplicate the first merge fully, then whatever merge remains.
  duplicateAll(*P.F, P.F->getBlockById(3));
  if (Block *M = mergeBlock(*P.F))
    duplicateAll(*P.F, M);
  ASSERT_EQ(verifyFunction(*P.F), "");
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Run(Cases[I][0], Cases[I][1]), Before[I]) << "case " << I;
}

TEST(DuplicatorEdgeTest, StructuralPreconditions) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  ret %phi
}
)");
  Block *B0 = P.F->getBlockById(0);
  Block *B1 = P.F->getBlockById(1);
  Block *B3 = P.F->getBlockById(3);
  EXPECT_TRUE(canDuplicateInto(B3, B1));
  EXPECT_FALSE(canDuplicateInto(B3, B0)); // b0 ends in If, not Jump to b3
  EXPECT_FALSE(canDuplicateInto(B1, B0)); // b1 is not a merge
  EXPECT_FALSE(canDuplicateInto(B3, B3)); // self
}

TEST(DuplicatorEdgeTest, LoopCarriedValuesSurviveDuplicationInsideLoop) {
  // A merge inside a loop body; loop-carried phis must stay intact.
  Parsed P = parse(R"(
func @f(int) {
b0:
  %n = param 0
  %z = const 0
  jump b1
b1:
  %i = phi int [%z, b0], [%inext, b5]
  %acc = phi int [%z, b0], [%accnext, b5]
  %c = cmp lt %i, %n
  if %c, b2, b6 !0.9
b2:
  %two = const 2
  %m = rem %i, %two
  %cz = cmp eq %m, %z
  if %cz, b3, b4 !0.5
b3:
  jump b5
b4:
  jump b5
b5:
  %delta = phi int [%i, b3], [%two, b4]
  %accnext = add %acc, %delta
  %one = const 1
  %inext = add %i, %one
  jump b1
b6:
  ret %acc
}
)");
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t N) {
    return Interp.run(*P.F, ArrayRef<int64_t>({N})).Result.Scalar;
  };
  int64_t R10 = Run(10), R7 = Run(7);

  Block *M = P.F->getBlockById(5);
  duplicateAll(*P.F, M);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(Run(10), R10);
  EXPECT_EQ(Run(7), R7);
}

TEST(DuplicatorEdgeTest, DBDSAfterManualDuplicationStillWorks) {
  // Interleaving manual duplications with a full DBDS run must compose.
  Parsed P = parse(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.5
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  %one = const 1
  %r = add %phi, %one
  %c2 = cmp gt %r, %b
  if %c2, b4, b5 !0.5
b4:
  ret %r
b5:
  ret %b
}
)");
  Interpreter Interp(*P.Mod);
  auto Run = [&](int64_t A, int64_t B) {
    return Interp.run(*P.F, ArrayRef<int64_t>({A, B})).Result.Scalar;
  };
  int64_t R1 = Run(4, 2), R2 = Run(-4, 2), R3 = Run(4, 99);

  Block *M = P.F->getBlockById(3);
  duplicateIntoPredecessor(*P.F, M, M->preds()[0]);
  ASSERT_EQ(verifyFunction(*P.F), "");

  DBDSConfig Config;
  Config.ClassTable = P.Mod.get();
  runDBDS(*P.F, Config);
  ASSERT_EQ(verifyFunction(*P.F), "");
  EXPECT_EQ(Run(4, 2), R1);
  EXPECT_EQ(Run(-4, 2), R2);
  EXPECT_EQ(Run(4, 99), R3);
}

} // namespace
