//===- tests/tooling_test.cpp - DotExport, MemoryState, penalty, splitting -===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DotExport.h"
#include "analysis/Verifier.h"
#include "dbds/FrequencySplitting.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "opts/MemoryState.h"
#include "opts/PartialEscape.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

// ---- DotExport -------------------------------------------------------------

TEST(DotExportTest, EmitsAllBlocksAndEdges) {
  Parsed P = parse(paper::Figure1);
  std::string Dot = exportDot(*P.F);
  EXPECT_NE(Dot.find("digraph \"foo\""), std::string::npos);
  for (Block *B : P.F->blocks())
    EXPECT_NE(Dot.find(B->getName() + " ["), std::string::npos);
  EXPECT_NE(Dot.find("b0 -> b1 [label=\"T 0.50\"]"), std::string::npos);
  EXPECT_NE(Dot.find("b1 -> b3"), std::string::npos);
}

TEST(DotExportTest, HighlightsMergesAndOverlaysDomTree) {
  Parsed P = parse(paper::Figure1);
  DotOptions Options;
  Options.ShowDominatorTree = true;
  std::string Dot = exportDot(*P.F, Options);
  EXPECT_NE(Dot.find("fillcolor"), std::string::npos); // the merge
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
}

TEST(DotExportTest, EscapesRecordCharacters) {
  Parsed P = parse(paper::Figure1);
  std::string Dot = exportDot(*P.F);
  // The phi instruction prints '[...]' pairs that need no escaping, but
  // record braces must never appear unescaped inside labels.
  size_t Pos = Dot.find("label=\"");
  ASSERT_NE(Pos, std::string::npos);
  // No raw '{' inside any label (would break record shape).
  for (size_t I = Dot.find("label=\""); I != std::string::npos;
       I = Dot.find("label=\"", I + 1)) {
    size_t End = Dot.find("\"]", I + 7);
    std::string Label = Dot.substr(I + 7, End - I - 7);
    for (size_t C = 0; C != Label.size(); ++C) {
      if (Label[C] == '{' || Label[C] == '}') {
        EXPECT_EQ(Label[C - 1], '\\') << Label;
      }
    }
  }
}

// ---- MemoryState ------------------------------------------------------------

class MemoryStateTest : public ::testing::Test {
protected:
  MemoryStateTest() : F("t", 2, {Type::Obj, Type::Obj}), B(F.createBlock()) {
    IRBuilder Builder(F);
    Builder.setBlock(B);
    A1 = Builder.param(0);
    A2 = Builder.param(1);
    V = F.constant(7);
  }

  Function F;
  Block *B;
  Instruction *A1, *A2, *V;
};

TEST_F(MemoryStateTest, StoreThenLookup) {
  MemoryState S;
  S.recordStore(A1, 0, V);
  EXPECT_EQ(S.lookup(A1, 0), V);
  EXPECT_EQ(S.lookup(A1, 1), nullptr);
  EXPECT_EQ(S.lookup(A2, 0), nullptr);
}

TEST_F(MemoryStateTest, AliasingStoreKillsSameFieldOnly) {
  MemoryState S;
  S.recordStore(A1, 0, V);
  S.recordStore(A1, 1, V);
  S.recordStore(A2, 0, V); // may alias A1 field 0
  EXPECT_EQ(S.lookup(A1, 0), nullptr);
  EXPECT_EQ(S.lookup(A1, 1), V); // different field untouched
  EXPECT_EQ(S.lookup(A2, 0), V);
}

TEST_F(MemoryStateTest, CallKillsNonFresh) {
  MemoryState S;
  S.recordStore(A1, 0, V);
  S.killForCall();
  EXPECT_EQ(S.lookup(A1, 0), nullptr);
}

TEST_F(MemoryStateTest, FreshAllocationIsImmuneToAliasAndCalls) {
  IRBuilder Builder(F);
  Builder.setBlock(B);
  NewInst *Fresh = Builder.newObject(0);
  Builder.store(Fresh, 0, V); // only non-escaping uses
  MemoryState S;
  S.recordAllocation(Fresh, 2);
  EXPECT_TRUE(S.isFresh(Fresh));
  // Zero-initialized fields are known.
  EXPECT_NE(S.lookup(Fresh, 0), nullptr);
  EXPECT_NE(S.lookup(Fresh, 1), nullptr);
  // A store through a maybe-aliasing object cannot touch it...
  S.recordStore(A1, 0, V);
  EXPECT_NE(S.lookup(Fresh, 0), nullptr);
  // ...nor can an opaque call.
  S.killForCall();
  EXPECT_NE(S.lookup(Fresh, 0), nullptr);
}

TEST_F(MemoryStateTest, EscapingAllocationIsNotFresh) {
  IRBuilder Builder(F);
  Builder.setBlock(B);
  NewInst *Escaping = Builder.newObject(0);
  Builder.store(A1, 0, Escaping); // stored AS VALUE: escapes
  EXPECT_FALSE(allocationDoesNotEscape(Escaping));
  MemoryState S;
  S.recordAllocation(Escaping, 2);
  EXPECT_FALSE(S.isFresh(Escaping));
  EXPECT_EQ(S.lookup(Escaping, 0), nullptr); // no zero-init knowledge
}

TEST_F(MemoryStateTest, ClearForgetsEverything) {
  MemoryState S;
  S.recordStore(A1, 0, V);
  S.clear();
  EXPECT_EQ(S.lookup(A1, 0), nullptr);
}

// ---- Interpreter code-size penalty -------------------------------------------

TEST(PenaltyTest, PenaltyScalesWithCodeSize) {
  Parsed P = parse(paper::Figure1);
  Interpreter Plain(*P.Mod);
  Interpreter Penalized(*P.Mod);
  // Figure 1's function is tiny; use a threshold of 0 so every block
  // transition is charged.
  Penalized.enableCodeSizePenalty(/*Threshold=*/0, /*Step=*/1, /*Cap=*/3);
  uint64_t PlainCycles =
      Plain.run(*P.F, ArrayRef<int64_t>({5})).DynamicCycles;
  uint64_t PenalizedCycles =
      Penalized.run(*P.F, ArrayRef<int64_t>({5})).DynamicCycles;
  // 3 blocks executed (entry, branch, merge) at cap 3 each.
  EXPECT_EQ(PenalizedCycles, PlainCycles + 3 * 3);
}

TEST(PenaltyTest, BelowThresholdIsFree) {
  Parsed P = parse(paper::Figure1);
  Interpreter Penalized(*P.Mod);
  Penalized.enableCodeSizePenalty(/*Threshold=*/1u << 20, /*Step=*/64,
                                  /*Cap=*/6);
  Interpreter Plain(*P.Mod);
  EXPECT_EQ(Penalized.run(*P.F, ArrayRef<int64_t>({5})).DynamicCycles,
            Plain.run(*P.F, ArrayRef<int64_t>({5})).DynamicCycles);
}

// ---- Frequency splitting baseline ----------------------------------------------

TEST(FrequencySplittingTest, DuplicatesHotMergesOnly) {
  Parsed P = parse(R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.95
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  %one = const 1
  %r = add %phi, %one
  ret %r
}
)");
  SplittingConfig Config;
  Config.ClassTable = P.Mod.get();
  Config.HotThreshold = 0.5;
  SplittingResult R = runFrequencySplitting(*P.F, Config);
  ASSERT_EQ(verifyFunction(*P.F), "");
  // Only the 95% predecessor qualifies.
  EXPECT_EQ(R.Duplications, 1u);
  Interpreter Interp(*P.Mod);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({4})).Result.Scalar, 5);
  EXPECT_EQ(Interp.run(*P.F, ArrayRef<int64_t>({-4})).Result.Scalar, 1);
}

TEST(FrequencySplittingTest, RespectsBudget) {
  Parsed P = parse(paper::Listing1);
  SplittingConfig Config;
  Config.ClassTable = P.Mod.get();
  Config.IncreaseBudget = 1.0; // no growth permitted
  SplittingResult R = runFrequencySplitting(*P.F, Config);
  EXPECT_EQ(R.Duplications, 0u);
}

TEST(FrequencySplittingTest, PreservesSemanticsOnGeneratedPrograms) {
  GeneratorConfig GC;
  GC.Seed = 0x517;
  GC.NumFunctions = 3;
  GeneratedWorkload W = generateWorkload(GC);
  auto Functions = W.Mod->functions();
  for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
    Function &F = *Functions[FIdx];
    Interpreter Interp(*W.Mod);
    std::vector<int64_t> Before;
    for (const auto &Args : W.EvalInputs[FIdx]) {
      Interp.reset();
      Before.push_back(Interp.run(F, ArrayRef<int64_t>(Args)).Result.Scalar);
    }
    SplittingConfig Config;
    Config.ClassTable = W.Mod.get();
    runFrequencySplitting(F, Config);
    ASSERT_EQ(verifyFunction(F), "");
    for (unsigned AI = 0; AI != W.EvalInputs[FIdx].size(); ++AI) {
      Interp.reset();
      EXPECT_EQ(Interp.run(F, ArrayRef<int64_t>(W.EvalInputs[FIdx][AI]))
                    .Result.Scalar,
                Before[AI]);
    }
  }
}

} // namespace
