# Smoke test for the metrics layer (observability tentpole): run the
# micro figure driver with --metrics --json-out --flamegraph, validate
# the v2 report's metrics section with cmake's string(JSON) parser, check
# the folded flamegraph is non-empty and well-formed, then drive
# tools/dbds-stats over the report: `report` must render it and
# `compare R R` must exit 0 (the identical-runs half of the gate
# contract; the regression half is dbds_stats_selftest).
#
# Invoked as:
#   cmake -DBENCH_BIN=<bench_fig7_micro> -DSTATS_BIN=<dbds-stats>
#         -DWORK_DIR=<dir> -P MetricsJsonSmoke.cmake

if(NOT BENCH_BIN OR NOT STATS_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR
          "MetricsJsonSmoke.cmake needs -DBENCH_BIN, -DSTATS_BIN, -DWORK_DIR")
endif()

set(REPORT "${WORK_DIR}/BENCH_metrics_smoke.json")
set(FOLDED "${WORK_DIR}/metrics_smoke.folded")
file(REMOVE "${REPORT}" "${FOLDED}")

execute_process(
  COMMAND "${BENCH_BIN}" --metrics "--json-out=${REPORT}"
          "--flamegraph=${FOLDED}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE RUN_RESULT
  OUTPUT_VARIABLE RUN_OUTPUT
  ERROR_VARIABLE RUN_ERROR)
if(NOT RUN_RESULT EQUAL 0)
  message(FATAL_ERROR "bench driver failed (${RUN_RESULT}):\n${RUN_OUTPUT}\n${RUN_ERROR}")
endif()

# The driver must print the percentile table.
if(NOT RUN_OUTPUT MATCHES "=== metrics ===")
  message(FATAL_ERROR "--metrics did not print the percentile table")
endif()

# The v2 report must carry a metrics object with the per-function growth
# histogram, and every histogram must have the full percentile schema.
file(READ "${REPORT}" DOC)
string(JSON VERSION GET "${DOC}" version)
if(NOT VERSION EQUAL 2)
  message(FATAL_ERROR "expected schema version 2, got '${VERSION}'")
endif()
string(JSON GROWTH ERROR_VARIABLE JSON_ERR GET "${DOC}" metrics
       compile_service.ir_growth_pct)
if(JSON_ERR)
  message(FATAL_ERROR "report lacks metrics.compile_service.ir_growth_pct: ${JSON_ERR}")
endif()
foreach(FIELD unit class count p50 p90 p99)
  string(JSON V ERROR_VARIABLE JSON_ERR GET "${DOC}" metrics
         compile_service.ir_growth_pct ${FIELD})
  if(JSON_ERR)
    message(FATAL_ERROR "metrics histogram lacks '${FIELD}': ${JSON_ERR}")
  endif()
endforeach()
string(JSON CLASS GET "${DOC}" metrics compile_service.ir_growth_pct class)
if(NOT CLASS STREQUAL "deterministic")
  message(FATAL_ERROR "ir_growth_pct must be deterministic-class, got '${CLASS}'")
endif()

# The folded flamegraph: non-empty, every line "stack;frames count".
if(NOT EXISTS "${FOLDED}")
  message(FATAL_ERROR "--flamegraph did not write ${FOLDED}")
endif()
file(STRINGS "${FOLDED}" FOLDED_LINES)
list(LENGTH FOLDED_LINES NLINES)
if(NLINES LESS 1)
  message(FATAL_ERROR "folded flamegraph is empty")
endif()
foreach(LINE IN LISTS FOLDED_LINES)
  if(NOT LINE MATCHES "^[^ ]+ [0-9]+$")
    message(FATAL_ERROR "malformed folded line: '${LINE}'")
  endif()
endforeach()

# dbds-stats must render the report...
execute_process(
  COMMAND "${STATS_BIN}" report "${REPORT}"
  RESULT_VARIABLE STATS_RESULT
  OUTPUT_VARIABLE STATS_OUTPUT
  ERROR_VARIABLE STATS_ERROR)
if(NOT STATS_RESULT EQUAL 0)
  message(FATAL_ERROR "dbds-stats report failed (${STATS_RESULT}):\n${STATS_ERROR}")
endif()
if(NOT STATS_OUTPUT MATCHES "compile_service.ir_growth_pct")
  message(FATAL_ERROR "dbds-stats report did not print the metrics table")
endif()

# ...and comparing a report against itself must exit 0 with no regressions.
execute_process(
  COMMAND "${STATS_BIN}" compare "${REPORT}" "${REPORT}" --threshold=10
  RESULT_VARIABLE CMP_RESULT
  OUTPUT_VARIABLE CMP_OUTPUT
  ERROR_VARIABLE CMP_ERROR)
if(NOT CMP_RESULT EQUAL 0)
  message(FATAL_ERROR "self-compare must exit 0, got ${CMP_RESULT}:\n${CMP_OUTPUT}\n${CMP_ERROR}")
endif()
if(NOT CMP_OUTPUT MATCHES " 0 regression")
  message(FATAL_ERROR "self-compare reported regressions:\n${CMP_OUTPUT}")
endif()

message(STATUS "metrics_json_smoke: v2 metrics section, folded flamegraph, and dbds-stats report/compare validated")
