# Smoke test for the machine-readable bench report (telemetry tentpole):
# runs the micro figure driver with --json-out and validates the emitted
# JSON with cmake's string(JSON) parser — the report must parse, carry the
# dbds-bench-report schema, and measure all three configurations for every
# benchmark.
#
# Invoked as:
#   cmake -DBENCH_BIN=<bench_fig7_micro> -DWORK_DIR=<dir> -P BenchJsonSmoke.cmake

if(NOT BENCH_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "BenchJsonSmoke.cmake needs -DBENCH_BIN and -DWORK_DIR")
endif()

set(REPORT "${WORK_DIR}/BENCH_micro_smoke.json")
file(REMOVE "${REPORT}")

execute_process(
  COMMAND "${BENCH_BIN}" "--json-out=${REPORT}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE RUN_RESULT
  OUTPUT_VARIABLE RUN_OUTPUT
  ERROR_VARIABLE RUN_ERROR)
if(NOT RUN_RESULT EQUAL 0)
  message(FATAL_ERROR "bench driver failed (${RUN_RESULT}):\n${RUN_OUTPUT}\n${RUN_ERROR}")
endif()
if(NOT EXISTS "${REPORT}")
  message(FATAL_ERROR "bench driver did not write ${REPORT}")
endif()

file(READ "${REPORT}" DOC)

# The document must parse as JSON with the expected schema/version/suite.
string(JSON SCHEMA ERROR_VARIABLE JSON_ERR GET "${DOC}" schema)
if(JSON_ERR)
  message(FATAL_ERROR "report is not valid JSON: ${JSON_ERR}")
endif()
if(NOT SCHEMA STREQUAL "dbds-bench-report")
  message(FATAL_ERROR "unexpected schema '${SCHEMA}'")
endif()
string(JSON VERSION GET "${DOC}" version)
if(NOT VERSION EQUAL 2)
  message(FATAL_ERROR "unexpected schema version '${VERSION}'")
endif()
string(JSON SUITE GET "${DOC}" suite)
if(NOT SUITE STREQUAL "micro")
  message(FATAL_ERROR "unexpected suite '${SUITE}'")
endif()

# Every benchmark must carry all three configurations with a measured
# code size, and the geomean summary must cover dbds and dupalot.
string(JSON NBENCH LENGTH "${DOC}" benchmarks)
if(NBENCH LESS 1)
  message(FATAL_ERROR "report has no benchmarks")
endif()
math(EXPR LAST "${NBENCH} - 1")
foreach(I RANGE ${LAST})
  string(JSON NAME GET "${DOC}" benchmarks ${I} name)
  foreach(CONFIG baseline dbds dupalot)
    string(JSON SIZE ERROR_VARIABLE JSON_ERR GET "${DOC}" benchmarks ${I}
           configs ${CONFIG} code_size)
    if(JSON_ERR)
      message(FATAL_ERROR "benchmark '${NAME}' lacks config '${CONFIG}': ${JSON_ERR}")
    endif()
    if(SIZE LESS 1)
      message(FATAL_ERROR "benchmark '${NAME}' config '${CONFIG}' measured no code")
    endif()
  endforeach()
  string(JSON AGREE GET "${DOC}" benchmarks ${I} results_agree)
  if(NOT AGREE STREQUAL "ON" AND NOT AGREE STREQUAL "true")
    message(FATAL_ERROR "benchmark '${NAME}' diverged across configurations")
  endif()
endforeach()

foreach(CONFIG dbds dupalot)
  string(JSON PEAK ERROR_VARIABLE JSON_ERR GET "${DOC}" geomean ${CONFIG} peak_pct)
  if(JSON_ERR)
    message(FATAL_ERROR "geomean lacks '${CONFIG}': ${JSON_ERR}")
  endif()
endforeach()

# Parallel-compile determinism: rerun the driver at --jobs=4 and assert the
# report's aggregate fields match the serial one. Compile time is wall
# clock and legitimately differs; everything else — cost-model cycles, code
# size, duplication/rollback counts, embedded telemetry counters, and the
# derived geomean percentages — must be byte-for-byte identical (the
# determinism contract of DESIGN.md §9).
set(PAR_REPORT "${WORK_DIR}/BENCH_micro_smoke_jobs4.json")
file(REMOVE "${PAR_REPORT}")
execute_process(
  COMMAND "${BENCH_BIN}" "--json-out=${PAR_REPORT}" "--jobs=4"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE RUN_RESULT
  OUTPUT_VARIABLE RUN_OUTPUT
  ERROR_VARIABLE RUN_ERROR)
if(NOT RUN_RESULT EQUAL 0)
  message(FATAL_ERROR "bench driver --jobs=4 failed (${RUN_RESULT}):\n${RUN_OUTPUT}\n${RUN_ERROR}")
endif()
if(NOT EXISTS "${PAR_REPORT}")
  message(FATAL_ERROR "bench driver --jobs=4 did not write ${PAR_REPORT}")
endif()
file(READ "${PAR_REPORT}" PAR_DOC)

string(JSON PAR_NBENCH LENGTH "${PAR_DOC}" benchmarks)
if(NOT PAR_NBENCH EQUAL NBENCH)
  message(FATAL_ERROR "--jobs=4 report has ${PAR_NBENCH} benchmarks, serial has ${NBENCH}")
endif()
foreach(I RANGE ${LAST})
  string(JSON NAME GET "${DOC}" benchmarks ${I} name)
  string(JSON PAR_NAME GET "${PAR_DOC}" benchmarks ${I} name)
  if(NOT PAR_NAME STREQUAL NAME)
    message(FATAL_ERROR "benchmark ${I} renamed under --jobs=4: '${NAME}' vs '${PAR_NAME}'")
  endif()
  string(JSON AGREE GET "${DOC}" benchmarks ${I} results_agree)
  string(JSON PAR_AGREE GET "${PAR_DOC}" benchmarks ${I} results_agree)
  if(NOT PAR_AGREE STREQUAL AGREE)
    message(FATAL_ERROR "benchmark '${NAME}' results_agree diverged under --jobs=4")
  endif()
  foreach(CONFIG baseline dbds dupalot)
    foreach(FIELD dynamic_cycles code_size duplications rollbacks run_failures)
      string(JSON SERIAL_V GET "${DOC}" benchmarks ${I} configs ${CONFIG} ${FIELD})
      string(JSON PAR_V GET "${PAR_DOC}" benchmarks ${I} configs ${CONFIG} ${FIELD})
      if(NOT PAR_V STREQUAL SERIAL_V)
        message(FATAL_ERROR "benchmark '${NAME}' ${CONFIG}.${FIELD} diverged: serial=${SERIAL_V} --jobs=4=${PAR_V}")
      endif()
    endforeach()
    string(JSON SERIAL_V GET "${DOC}" benchmarks ${I} configs ${CONFIG} counters)
    string(JSON PAR_V GET "${PAR_DOC}" benchmarks ${I} configs ${CONFIG} counters)
    if(NOT PAR_V STREQUAL SERIAL_V)
      message(FATAL_ERROR "benchmark '${NAME}' ${CONFIG} counter totals diverged under --jobs=4")
    endif()
  endforeach()
endforeach()
foreach(CONFIG dbds dupalot)
  foreach(FIELD peak_pct code_size_pct)
    string(JSON SERIAL_V GET "${DOC}" geomean ${CONFIG} ${FIELD})
    string(JSON PAR_V GET "${PAR_DOC}" geomean ${CONFIG} ${FIELD})
    if(NOT PAR_V STREQUAL SERIAL_V)
      message(FATAL_ERROR "geomean ${CONFIG}.${FIELD} diverged: serial=${SERIAL_V} --jobs=4=${PAR_V}")
    endif()
  endforeach()
endforeach()

message(STATUS "bench_json_smoke: ${NBENCH} benchmarks x 3 configs validated; --jobs=4 report matches serial aggregates")
