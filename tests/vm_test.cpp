//===- tests/vm_test.cpp - Interpreter and profiling ------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "vm/Interpreter.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

TEST(InterpreterTest, Figure1ComputesTwoPlusPhi) {
  ParseResult R = parseModule(paper::Figure1);
  ASSERT_TRUE(R) << R.Error;
  Interpreter Interp(*R.Mod);
  Function *F = R.Mod->functions()[0];

  ExecutionResult Pos = Interp.run(*F, ArrayRef<int64_t>({5}));
  ASSERT_TRUE(Pos.Ok);
  EXPECT_EQ(Pos.Result.Scalar, 7); // 2 + 5

  ExecutionResult Neg = Interp.run(*F, ArrayRef<int64_t>({-3}));
  ASSERT_TRUE(Neg.Ok);
  EXPECT_EQ(Neg.Result.Scalar, 2); // 2 + 0
}

TEST(InterpreterTest, Listing1ReimplementsTheSource) {
  ParseResult R = parseModule(paper::Listing1);
  ASSERT_TRUE(R) << R.Error;
  Interpreter Interp(*R.Mod);
  Function *F = R.Mod->functions()[0];
  auto foo = [&](int64_t I) {
    ExecutionResult E = Interp.run(*F, ArrayRef<int64_t>({I}));
    EXPECT_TRUE(E.Ok);
    return E.Result.Scalar;
  };
  // Reference semantics from the paper's Java code.
  EXPECT_EQ(foo(20), 12); // i > 0, p = 20 > 12 -> 12
  EXPECT_EQ(foo(5), 5);   // i > 0, p = 5 <= 12 -> i
  EXPECT_EQ(foo(-7), 12); // i <= 0, p = 13 > 12 -> 12
}

TEST(InterpreterTest, Listing3LoadsThroughPhi) {
  ParseResult R = parseModule(paper::Listing3);
  ASSERT_TRUE(R) << R.Error;
  Interpreter Interp(*R.Mod);
  Function *F = R.Mod->functions()[0];

  // a == null: allocates A(x) and returns its field.
  {
    RuntimeValue Args[2] = {RuntimeValue::null(), RuntimeValue::ofInt(42)};
    ExecutionResult E = Interp.run(*F, ArrayRef<RuntimeValue>(Args, 2));
    ASSERT_TRUE(E.Ok);
    EXPECT_EQ(E.Result.Scalar, 42);
  }
  // a != null: returns a.x.
  {
    Interp.reset();
    RuntimeValue Obj = Interp.allocate(0);
    Interp.writeField(Obj, 0, 99);
    RuntimeValue Args[2] = {Obj, RuntimeValue::ofInt(42)};
    ExecutionResult E = Interp.run(*F, ArrayRef<RuntimeValue>(Args, 2));
    ASSERT_TRUE(E.Ok);
    EXPECT_EQ(E.Result.Scalar, 99);
  }
}

TEST(InterpreterTest, DynamicCyclesFollowTheCostModel) {
  // A straight-line function: param(0) + div(32) + ret(1) = 33 cycles.
  ParseResult R = parseModule(R"(
func @f(int, int) {
b0:
  %a = param 0
  %b = param 1
  %q = div %a, %b
  ret %q
}
)");
  ASSERT_TRUE(R) << R.Error;
  Interpreter Interp(*R.Mod);
  ExecutionResult E =
      Interp.run(*R.Mod->functions()[0], ArrayRef<int64_t>({100, 3}));
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.Result.Scalar, 33);
  EXPECT_EQ(E.DynamicCycles, 0u + 0 + 32 + 1); // params free, div 32, ret 1
}

TEST(InterpreterTest, FuelBoundsInfiniteLoops) {
  ParseResult R = parseModule(R"(
func @f() {
b0:
  jump b1
b1:
  jump b1
}
)");
  ASSERT_TRUE(R) << R.Error;
  ExecutionResult E = Interpreter(*R.Mod).run(
      *R.Mod->functions()[0], ArrayRef<int64_t>(), /*Fuel=*/1000);
  EXPECT_FALSE(E.Ok);
  EXPECT_GE(E.Steps, 1000u);
}

TEST(InterpreterTest, LoopPhisUseParallelCopySemantics) {
  // Swap-like loop: (a, b) <- (b, a) three times.
  ParseResult R = parseModule(R"(
func @f(int, int) {
b0:
  %a0 = param 0
  %b0 = param 1
  %zero = const 0
  jump b1
b1:
  %i = phi int [%zero, b0], [%inext, b2]
  %a = phi int [%a0, b0], [%b, b2]
  %b = phi int [%b0, b0], [%a, b2]
  %three = const 3
  %c = cmp lt %i, %three
  if %c, b2, b3 !0.75
b2:
  %one = const 1
  %inext = add %i, %one
  jump b1
b3:
  ret %a
}
)");
  ASSERT_TRUE(R) << R.Error;
  ExecutionResult E = Interpreter(*R.Mod).run(*R.Mod->functions()[0],
                                              ArrayRef<int64_t>({10, 20}));
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.Result.Scalar, 20); // swapped an odd number of times
}

TEST(ProfilerTest, BranchProbabilitiesFromExecution) {
  ParseResult R = parseModule(paper::Listing1);
  ASSERT_TRUE(R) << R.Error;
  Function *F = R.Mod->functions()[0];
  Interpreter Interp(*R.Mod);
  ProfileSummary Profile;
  // 3 positive, 1 negative input: first branch 75% taken.
  for (int64_t I : {5, 6, 7, -1})
    Interp.run(*F, ArrayRef<int64_t>({I}), 1u << 20, &Profile);
  applyProfile(*F, Profile);
  auto *If = cast<IfInst>(F->getEntry()->getTerminator());
  EXPECT_DOUBLE_EQ(If->getTrueProbability(), 0.75);
}

TEST(ProfilerTest, BlockCountsAccumulate) {
  ParseResult R = parseModule(paper::Figure1);
  ASSERT_TRUE(R) << R.Error;
  Function *F = R.Mod->functions()[0];
  Interpreter Interp(*R.Mod);
  ProfileSummary Profile;
  Interp.run(*F, ArrayRef<int64_t>({5}), 1u << 20, &Profile);
  Interp.run(*F, ArrayRef<int64_t>({5}), 1u << 20, &Profile);
  EXPECT_EQ(Profile.BlockCounts.at(F->getEntry()), 2u);
}

} // namespace
