//===- tests/robustness_test.cpp - Fault tolerance and reduction -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the failure-handling machinery: transactional phase execution
// (snapshot, rollback, quarantine), compile budgets with stepwise
// degradation, deterministic fault injection, the delta-debugging reducer,
// and the zero-baseline guards in the benchmark metrics.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "dbds/DBDSPhase.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Phase.h"
#include "support/Budget.h"
#include "support/Cancellation.h"
#include "support/Diagnostics.h"
#include "support/ErrorHandling.h"
#include "support/FaultInjector.h"
#include "tooling/Reducer.h"
#include "tooling/Sabotage.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace dbds;

namespace {

/// f(a, b): a diamond over a comparison with a foldable constant add on
/// one arm, then a short chain of follow-up arithmetic.
std::unique_ptr<Function> makeDiamond() {
  auto F = std::make_unique<Function>("f", 2);
  IRBuilder B(*F);
  Block *Entry = B.createBlock();
  Block *Then = B.createBlock();
  Block *Else = B.createBlock();
  Block *Merge = B.createBlock();

  B.setBlock(Entry);
  auto *A = B.param(0);
  auto *Bp = B.param(1);
  auto *C = B.cmp(Predicate::LT, A, Bp);
  B.branch(C, Then, Else, 0.5);

  B.setBlock(Then);
  auto *T = B.add(A, B.constInt(1));
  B.jump(Merge);

  B.setBlock(Else);
  auto *E = B.mul(Bp, B.constInt(2));
  B.jump(Merge);

  B.setBlock(Merge);
  auto *Phi = B.phi(Type::Int);
  Phi->appendInput(T);
  Phi->appendInput(E);
  auto *X = B.add(Phi, B.constInt(3));
  // Constant-foldable on purpose: guarantees the cleanup pipeline changes
  // something in its first round (the budget tests rely on round 0 making
  // progress so the round-1 budget gate is actually evaluated).
  auto *Folded = B.add(B.constInt(2), B.constInt(3));
  auto *Y = B.add(X, Folded);
  B.ret(Y);
  EXPECT_EQ(verifyFunction(*F), "");
  return F;
}

/// A phase that always corrupts the IR: it strips the entry terminator.
class TerminatorStripper : public Phase {
public:
  const char *name() const override { return "terminator-stripper"; }
  bool run(Function &F) override {
    if (Instruction *T = F.getEntry()->getTerminator()) {
      F.getEntry()->remove(T);
      return true;
    }
    return false;
  }
};

int64_t runOn(Function &F, int64_t A, int64_t B) {
  Module M;
  Interpreter Interp(M);
  std::vector<int64_t> Args{A, B};
  ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args));
  EXPECT_TRUE(R.Ok);
  return R.Result.Scalar;
}

} // namespace

//===----------------------------------------------------------------------===//
// Function::restoreFrom
//===----------------------------------------------------------------------===//

TEST(RestoreFromTest, RestoresSnapshotSemantics) {
  std::unique_ptr<Function> F = makeDiamond();
  int64_t Before = runOn(*F, 3, 10);

  std::unique_ptr<Function> Snapshot = F->clone();
  SabotagePhase Saboteur;
  ASSERT_TRUE(Saboteur.run(*F));
  ASSERT_NE(runOn(*F, 3, 10), Before) << "sabotage must be observable";

  F->restoreFrom(*Snapshot);
  EXPECT_EQ(verifyFunction(*F), "");
  EXPECT_EQ(runOn(*F, 3, 10), Before);
  EXPECT_EQ(runOn(*F, 10, 3), runOn(*Snapshot, 10, 3));
}

TEST(RestoreFromTest, RestoresFromCorruptedState) {
  std::unique_ptr<Function> F = makeDiamond();
  std::unique_ptr<Function> Snapshot = F->clone();
  // Corrupt hard enough that the verifier rejects the function outright.
  ASSERT_TRUE(corruptFunctionIR(*F, /*Entropy=*/0));
  ASSERT_NE(verifyFunction(*F), "");
  F->restoreFrom(*Snapshot);
  EXPECT_EQ(verifyFunction(*F), "");
  EXPECT_EQ(runOn(*F, 5, 6), runOn(*Snapshot, 5, 6));
}

//===----------------------------------------------------------------------===//
// Transactional PhaseManager
//===----------------------------------------------------------------------===//

TEST(TransactionalPhaseTest, RollbackAndQuarantine) {
  std::unique_ptr<Function> F = makeDiamond();
  int64_t Before = runOn(*F, 3, 10);

  DiagnosticEngine Diags;
  PhaseManager PM(/*VerifyAfterEachPhase=*/true);
  PM.setDiagnostics(&Diags);
  PM.add(std::make_unique<TerminatorStripper>());

  PM.run(*F);
  EXPECT_EQ(PM.rollbackCount(), 1u);
  EXPECT_TRUE(PM.isQuarantined("f", 0));
  EXPECT_EQ(verifyFunction(*F), "");
  EXPECT_EQ(runOn(*F, 3, 10), Before);
  EXPECT_EQ(Diags.count(DiagKind::Warning), 1u);

  // Quarantined: the phase must be skipped on the next run.
  PM.run(*F);
  EXPECT_EQ(PM.rollbackCount(), 1u);
  EXPECT_EQ(verifyFunction(*F), "");

  // A different function is unaffected by f's quarantine list.
  EXPECT_FALSE(PM.isQuarantined("g", 0));
}

TEST(TransactionalPhaseTest, FailFastStillAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::unique_ptr<Function> F = makeDiamond();
  PhaseManager PM(/*VerifyAfterEachPhase=*/true);
  PM.setFailFast(true);
  PM.add(std::make_unique<TerminatorStripper>());
  EXPECT_DEATH(PM.run(*F), "verifier failed");
}

//===----------------------------------------------------------------------===//
// Compile budgets
//===----------------------------------------------------------------------===//

TEST(BudgetTest, DefaultIsUnlimited) {
  CompileBudget B;
  B.arm();
  EXPECT_FALSE(B.limited());
  EXPECT_FALSE(B.expired());
  EXPECT_EQ(B.level(), DegradationLevel::None);
}

TEST(BudgetTest, LevelsOnlyRatchetUp) {
  CompileBudget B(1.0);
  B.degradeTo(DegradationLevel::NoFixpoint);
  B.degradeTo(DegradationLevel::NoDBDS); // lower level: no effect
  EXPECT_EQ(B.level(), DegradationLevel::NoFixpoint);
}

TEST(BudgetTest, PipelineDegradesToNoFixpoint) {
  std::unique_ptr<Function> F = makeDiamond();
  CompileBudget B(1e-6); // expires immediately once armed
  B.arm();
  while (!B.expired()) {
  }
  DiagnosticEngine Diags;
  PhaseManager PM = PhaseManager::standardPipeline(/*Verify=*/true);
  PM.setBudget(&B);
  PM.setDiagnostics(&Diags);
  PM.run(*F);
  // Round 0 (the baseline floor) ran; fixpoint re-iteration was shed.
  EXPECT_EQ(B.level(), DegradationLevel::NoFixpoint);
  EXPECT_EQ(verifyFunction(*F), "");
  EXPECT_GE(Diags.count(DiagKind::Note), 1u);
}

TEST(BudgetTest, DBDSDegradesToNoDBDS) {
  std::unique_ptr<Function> F = makeDiamond();
  CompileBudget B(1e-6);
  B.arm();
  while (!B.expired()) {
  }
  DBDSConfig Config;
  Config.Budget = &B;
  DBDSResult R = runDBDS(*F, Config);
  EXPECT_TRUE(R.BudgetExpired);
  EXPECT_EQ(R.IterationsRun, 0u);
  EXPECT_EQ(R.DuplicationsPerformed, 0u);
  EXPECT_EQ(B.level(), DegradationLevel::NoDBDS);
  EXPECT_EQ(verifyFunction(*F), "");
}

TEST(BudgetTest, RunnerSurfacesDegradation) {
  GeneratorConfig Config;
  Config.Seed = 5;
  Config.NumFunctions = 2;
  BenchmarkSpec Spec{"budgeted", Config};
  RunnerOptions Opts;
  Opts.CompileBudgetMs = 1e-6; // every function overruns immediately
  BenchmarkMeasurement M = measureBenchmark(Spec, Opts);
  EXPECT_TRUE(M.ResultsAgree);
  EXPECT_EQ(M.DBDS.FunctionsDegraded, 2u);
  EXPECT_NE(M.DBDS.MaxDegradation, DegradationLevel::None);
  // The degraded pipeline still compiles and measures every function.
  EXPECT_GT(M.DBDS.DynamicCycles, 0u);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, DeterministicInSeed) {
  FaultInjector A(123), B(123);
  for (int I = 0; I != 200; ++I)
    EXPECT_EQ(A.at("site"), B.at("site"));
  EXPECT_EQ(A.faultsInjected(), B.faultsInjected());
  EXPECT_GT(A.faultsInjected(), 0u);
  EXPECT_EQ(A.sitesVisited(), 200u);
}

// The tentpole acceptance test: with fault injection enabled at a fixed
// seed, the whole pipeline (cleanup + DBDS) completes every function of a
// generated workload without abort(), every injected fault is rolled back
// to verifier-clean IR, and the optimized code still computes the same
// results as the unoptimized reference.
TEST(FaultInjectorTest, PipelineSurvivesInjectedFaults) {
  GeneratorConfig GC;
  GC.Seed = 17;
  GC.NumFunctions = 3;
  GeneratedWorkload Ref = generateWorkload(GC);
  GeneratedWorkload Opt = generateWorkload(GC);

  DiagnosticEngine Diags;
  FaultInjector Injector(/*Seed=*/99, /*Rate=*/0.5);
  unsigned Rollbacks = 0;

  auto OptFns = Opt.Mod->functions();
  for (unsigned FIdx = 0; FIdx != OptFns.size(); ++FIdx) {
    Function &F = *OptFns[FIdx];
    PhaseManager PM =
        PhaseManager::standardPipeline(/*Verify=*/true, Opt.Mod.get());
    PM.setDiagnostics(&Diags);
    PM.setFaultInjector(&Injector);
    PM.run(F);
    Rollbacks += PM.rollbackCount();

    DBDSConfig DC;
    DC.ClassTable = Opt.Mod.get();
    DC.Diags = &Diags;
    DC.Injector = &Injector;
    DBDSResult R = runDBDS(F, DC);
    Rollbacks += R.RollbacksPerformed;

    EXPECT_EQ(verifyFunction(F), "") << "@" << F.getName();
  }
  EXPECT_GT(Injector.faultsInjected(), 0u);
  EXPECT_GT(Rollbacks, 0u);

  // Rolled-back faults must leave no semantic trace.
  Interpreter RefInterp(*Ref.Mod), OptInterp(*Opt.Mod);
  auto RefFns = Ref.Mod->functions();
  for (unsigned FIdx = 0; FIdx != OptFns.size(); ++FIdx) {
    for (const auto &Args : Ref.EvalInputs[FIdx]) {
      RefInterp.reset();
      OptInterp.reset();
      ExecutionResult RA =
          RefInterp.run(*RefFns[FIdx], ArrayRef<int64_t>(Args));
      ExecutionResult RB =
          OptInterp.run(*OptFns[FIdx], ArrayRef<int64_t>(Args));
      ASSERT_TRUE(RA.Ok);
      ASSERT_TRUE(RB.Ok);
      if (RA.HasResult && !RA.Result.IsObject) {
        EXPECT_EQ(RA.Result.Scalar, RB.Result.Scalar);
      }
    }
  }
}

TEST(FaultInjectorTest, DBDSRoundRollsBackInjectedCorruption) {
  std::unique_ptr<Function> F = makeDiamond();
  int64_t Before = runOn(*F, 3, 10);
  DiagnosticEngine Diags;
  FaultInjector Injector(/*Seed=*/1, /*Rate=*/1.0); // first fault: CorruptIR
  DBDSConfig Config;
  Config.Diags = &Diags;
  Config.Injector = &Injector;
  DBDSResult R = runDBDS(*F, Config);
  EXPECT_EQ(verifyFunction(*F), "");
  EXPECT_EQ(runOn(*F, 3, 10), Before);
  if (R.RollbacksPerformed != 0) {
    EXPECT_GE(Diags.count(DiagKind::Warning), 1u);
  }
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

TEST(ReducerTest, ShrinksSeededDivergenceBelowQuarter) {
  GeneratorConfig GC;
  GC.Seed = 7;
  GC.NumFunctions = 1;
  GC.SegmentsPerFunction = 4;
  GeneratedWorkload W = generateWorkload(GC);
  const auto &Eval = W.EvalInputs[0];
  const std::string Focus = W.Mod->functions()[0]->getName();

  // Oracle: does a sabotaged (add -> sub) copy still diverge from the
  // candidate on any evaluation input?
  ReductionOracle Oracle = [&Eval](Module &M, Function &F) {
    ParseResult Copy = parseModule(printModule(&M));
    if (!Copy)
      return false;
    Function *CF = Copy.Mod->getFunction(F.getName());
    if (!CF)
      return false;
    SabotagePhase Saboteur;
    Saboteur.run(*CF);
    Interpreter RefInterp(M), OptInterp(*Copy.Mod);
    for (const auto &Args : Eval) {
      RefInterp.reset();
      OptInterp.reset();
      ExecutionResult RA = RefInterp.run(F, ArrayRef<int64_t>(Args));
      if (!RA.Ok)
        return false; // never reduce toward a non-terminating reference
      ExecutionResult RB = OptInterp.run(*CF, ArrayRef<int64_t>(Args));
      if (!RB.Ok)
        return true;
      if (RA.HasResult && RB.HasResult && !RA.Result.IsObject &&
          !RB.Result.IsObject && RA.Result.Scalar != RB.Result.Scalar)
        return true;
    }
    return false;
  };

  ReductionResult R = reduceFunction(*W.Mod, Focus, Oracle);
  ASSERT_TRUE(R.Reproduced) << "seeded divergence must reproduce";
  EXPECT_TRUE(R.Reduced);
  EXPECT_GT(R.OriginalInstructions, 0u);
  // Acceptance bar: minimal reproducer at most 25% of the original.
  EXPECT_LE(R.ReducedInstructions * 4, R.OriginalInstructions);
  // The reduced module is a well-formed, round-trippable artifact whose
  // divergence still reproduces.
  Function *RF = R.Mod->getFunction(Focus);
  ASSERT_NE(RF, nullptr);
  EXPECT_EQ(verifyFunction(*RF), "");
  EXPECT_TRUE(Oracle(*R.Mod, *RF));
}

TEST(ReducerTest, NonReproducingInputIsReturnedUntouched) {
  std::unique_ptr<Function> F = makeDiamond();
  Module M;
  unsigned Original = F->instructionCount();
  M.addFunction(std::move(F));
  ReductionResult R = reduceFunction(
      M, "f", [](Module &, Function &) { return false; });
  EXPECT_FALSE(R.Reproduced);
  EXPECT_FALSE(R.Reduced);
  EXPECT_EQ(R.OracleQueries, 1u);
  EXPECT_EQ(R.ReducedInstructions, Original);
}

//===----------------------------------------------------------------------===//
// Satellites: metric guards, dbds_unreachable, diagnostics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, ZeroBaselinePercentagesAreFinite) {
  BenchmarkMeasurement M;
  // All-zero measurements: every ratio would divide by zero.
  EXPECT_EQ(M.peakImprovementPercent(M.DBDS), 0.0);
  EXPECT_EQ(M.compileTimeIncreasePercent(M.DBDS), 0.0);
  EXPECT_EQ(M.codeSizeIncreasePercent(M.DBDS), 0.0);
  // Zero baseline with nonzero config measurements.
  M.DBDS.DynamicCycles = 100;
  M.DBDS.CompileTimeMs = 5.0;
  M.DBDS.CodeSize = 64;
  EXPECT_EQ(M.peakImprovementPercent(M.DBDS), 0.0);
  EXPECT_EQ(M.compileTimeIncreasePercent(M.DBDS), 0.0);
  EXPECT_EQ(M.codeSizeIncreasePercent(M.DBDS), 0.0);
  // Sane baseline: ratios come back.
  M.Baseline.DynamicCycles = 200;
  M.Baseline.CompileTimeMs = 5.0;
  M.Baseline.CodeSize = 32;
  EXPECT_DOUBLE_EQ(M.peakImprovementPercent(M.DBDS), 100.0);
  EXPECT_DOUBLE_EQ(M.compileTimeIncreasePercent(M.DBDS), 0.0);
  EXPECT_DOUBLE_EQ(M.codeSizeIncreasePercent(M.DBDS), 100.0);
}

TEST(UnreachableTest, AbortsInAllBuildTypes) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(dbds_unreachable("robustness-test message"),
               "executed unreachable code: robustness-test message");
}

TEST(DiagnosticsTest, RendersStructuredRecords) {
  DiagnosticEngine Diags;
  Diags.note("tier", "f", "message one");
  Diags.warning("phase", "g", "message two");
  Diags.error("runner", "", "message three");
  EXPECT_EQ(Diags.all().size(), 3u);
  EXPECT_EQ(Diags.count(DiagKind::Note), 1u);
  EXPECT_EQ(Diags.count(DiagKind::Warning), 1u);
  EXPECT_EQ(Diags.count(DiagKind::Error), 1u);
  std::string Rendered = Diags.render();
  EXPECT_NE(Rendered.find("warning [phase] @g: message two"),
            std::string::npos);
  Diags.clear();
  EXPECT_TRUE(Diags.empty());
}

//===----------------------------------------------------------------------===//
// Supervision primitives: budget edges, cancellation, fault-kind masks
//===----------------------------------------------------------------------===//

TEST(BudgetTest, ZeroAndNegativeLimitsAreUnlimited) {
  // The service passes RunnerOptions::CompileBudgetMs straight through;
  // "no budget" must be expressible as 0 (the default) or any negative
  // value without a special case at the call site.
  for (double Limit : {0.0, -1.0, -1e9}) {
    CompileBudget B(Limit);
    B.arm();
    EXPECT_FALSE(B.limited()) << "limit " << Limit;
    EXPECT_FALSE(B.expired()) << "limit " << Limit;
  }
}

TEST(BudgetTest, RearmResetsLevel) {
  // The retry ladder re-arms one budget per attempt; a level reached on a
  // failed attempt must not leak into the next one.
  CompileBudget B(1e-6);
  B.arm();
  B.degradeTo(DegradationLevel::NoFixpoint);
  EXPECT_EQ(B.level(), DegradationLevel::NoFixpoint);
  B.arm();
  EXPECT_EQ(B.level(), DegradationLevel::None);
}

TEST(CancellationTest, ExternalCancelPropagatesToChildren) {
  CancellationToken Parent;
  CancellationToken Child(&Parent);
  EXPECT_FALSE(Child.cancelled());
  Parent.requestCancel(CancelReason::External);
  EXPECT_TRUE(Child.cancelled());
  EXPECT_TRUE(Child.checkpoint());
  // The child never fired itself; its own reason stays None while the
  // parent's is visible through reason().
  EXPECT_EQ(Child.reason(), CancelReason::External);
}

TEST(CancellationTest, DeadlineExpiryLatchesAtCheckpoint) {
  CancellationToken T;
  T.arm(Deadline::afterMs(1e-3));
  while (!T.checkpoint()) {
  }
  EXPECT_TRUE(T.cancelled());
  EXPECT_EQ(T.reason(), CancelReason::Deadline);
}

TEST(CancellationTest, UnlimitedDeadlineNeverFires) {
  CancellationToken T;
  T.arm(Deadline::afterMs(0.0));
  EXPECT_FALSE(T.checkpoint());
  EXPECT_FALSE(T.cancelled());
  // hangUntilCancelled must refuse to spin forever on a token that has no
  // deadline and no pending cancel — it returns immediately instead.
  hangUntilCancelled(&T);
  hangUntilCancelled(nullptr); // and a null token is a no-op
}

TEST(FaultInjectorTest, KindMaskCyclesOnlyEnabledKinds) {
  // Rate 1.0: every site fires; the fired kinds must cycle through exactly
  // the enabled set in declaration order.
  FaultInjector Inj(5, 1.0,
                    FaultInjector::MaskHang |
                        FaultInjector::MaskResourceExhaustion);
  EXPECT_EQ(Inj.at("s"), FaultKind::Hang);
  EXPECT_EQ(Inj.at("s"), FaultKind::ResourceExhaustion);
  EXPECT_EQ(Inj.at("s"), FaultKind::Hang);
  EXPECT_EQ(Inj.at("s"), FaultKind::ResourceExhaustion);
}

TEST(FaultInjectorTest, LegacyMaskReproducesHistoricalAlternation) {
  // The default mask must keep the pre-mask fault stream bit-identical:
  // fault #1 is CorruptIR, #2 PhaseFailure, alternating.
  FaultInjector Inj(5, 1.0);
  EXPECT_EQ(Inj.at("s"), FaultKind::CorruptIR);
  EXPECT_EQ(Inj.at("s"), FaultKind::PhaseFailure);
  EXPECT_EQ(Inj.at("s"), FaultKind::CorruptIR);
}

TEST(FaultInjectorTest, ForTaskAttemptsAreIndependentStreams) {
  // Each retry draws forTask(index, attempt): the streams must be
  // deterministic, distinct per attempt, and attempt 0 must equal the
  // historical one-argument forTask(index) derivation.
  FaultInjector Base(77, 1.0, FaultInjector::MaskAll);
  FaultInjector A0 = Base.forTask(3, 0);
  FaultInjector A1 = Base.forTask(3, 1);
  FaultInjector A2 = Base.forTask(3, 2);
  EXPECT_EQ(A0.seed(), Base.forTask(3).seed());
  EXPECT_NE(A0.seed(), A1.seed());
  EXPECT_NE(A1.seed(), A2.seed());
  // Deterministic: the same (index, attempt) derivation replays exactly.
  FaultInjector A1Again = Base.forTask(3, 1);
  for (unsigned I = 0; I != 32; ++I)
    ASSERT_EQ(A1.at("probe"), A1Again.at("probe"));
  // The mask is inherited by derived streams.
  EXPECT_EQ(A1.kindMask(), FaultInjector::MaskAll);
}
