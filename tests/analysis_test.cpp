//===- tests/analysis_test.cpp - Dominance, loops, frequencies --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/BlockFrequency.h"
#include "analysis/DominatorTree.h"
#include "analysis/Loops.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dbds;

namespace {

struct Parsed {
  std::unique_ptr<Module> Mod;
  Function *F;
};

Parsed parse(const char *Source) {
  ParseResult R = parseModule(Source);
  EXPECT_TRUE(R) << R.Error;
  Parsed P;
  P.F = R.Mod->functions()[0];
  P.Mod = std::move(R.Mod);
  return P;
}

/// Diamond: b0 -> {b1, b2} -> b3.
const char *Diamond = R"(
func @f(int) {
b0:
  %a = param 0
  %z = const 0
  %c = cmp gt %a, %z
  if %c, b1, b2 !0.75
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%a, b1], [%z, b2]
  ret %phi
}
)";

/// Loop: b0 -> b1 (header) -> {b2 (latch) -> b1, b3 (exit)}.
const char *Loop = R"(
func @f(int) {
b0:
  %n = param 0
  %z = const 0
  jump b1
b1:
  %i = phi int [%z, b0], [%inext, b2]
  %c = cmp lt %i, %n
  if %c, b2, b3 !0.9
b2:
  %one = const 1
  %inext = add %i, %one
  jump b1
b3:
  ret %i
}
)";

/// Nested loops: outer header b1, inner header b2.
const char *NestedLoop = R"(
func @f(int) {
b0:
  %n = param 0
  %z = const 0
  jump b1
b1:
  %i = phi int [%z, b0], [%inext, b4]
  %ci = cmp lt %i, %n
  if %ci, b2, b5 !0.9
b2:
  %j = phi int [%z, b1], [%jnext, b3]
  %cj = cmp lt %j, %n
  if %cj, b3, b4 !0.9
b3:
  %one = const 1
  %jnext = add %j, %one
  jump b2
b4:
  %one2 = const 1
  %inext = add %i, %one2
  jump b1
b5:
  ret %i
}
)";

Block *blockByName(Function &F, const std::string &Name) {
  for (Block *B : F.blocks())
    if (B->getName() == Name)
      return B;
  return nullptr;
}

// ---- RPO ---------------------------------------------------------------------

TEST(RPOTest, EntryFirstDominatorsBeforeDominated) {
  Parsed P = parse(Diamond);
  auto RPO = computeRPO(*P.F);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), P.F->getEntry());
  // The merge comes after both branch blocks.
  auto Pos = [&](Block *B) {
    return std::find(RPO.begin(), RPO.end(), B) - RPO.begin();
  };
  Block *Merge = blockByName(*P.F, "b3");
  for (Block *Pred : Merge->preds())
    EXPECT_LT(Pos(Pred), Pos(Merge));
}

TEST(RPOTest, OmitsUnreachableBlocks) {
  Parsed P = parse(Diamond);
  Block *Orphan = P.F->createBlock();
  auto *Ret = P.F->create<ReturnInst>(nullptr);
  Orphan->append(Ret);
  EXPECT_EQ(computeRPO(*P.F).size(), 4u);
}

// ---- DominatorTree --------------------------------------------------------------

TEST(DominatorTreeTest, DiamondStructure) {
  Parsed P = parse(Diamond);
  DominatorTree DT(*P.F);
  Block *B0 = blockByName(*P.F, "b0"), *B1 = blockByName(*P.F, "b1");
  Block *B2 = blockByName(*P.F, "b2"), *B3 = blockByName(*P.F, "b3");
  EXPECT_EQ(DT.getIdom(B0), nullptr);
  EXPECT_EQ(DT.getIdom(B1), B0);
  EXPECT_EQ(DT.getIdom(B2), B0);
  EXPECT_EQ(DT.getIdom(B3), B0); // join: neither branch dominates it
  EXPECT_TRUE(DT.dominates(B0, B3));
  EXPECT_TRUE(DT.dominates(B3, B3)); // reflexive
  EXPECT_FALSE(DT.dominates(B1, B3));
  EXPECT_FALSE(DT.strictlyDominates(B3, B3));
  EXPECT_EQ(DT.children(B0).size(), 3u);
}

TEST(DominatorTreeTest, LoopStructure) {
  Parsed P = parse(Loop);
  DominatorTree DT(*P.F);
  Block *B1 = blockByName(*P.F, "b1"), *B2 = blockByName(*P.F, "b2");
  Block *B3 = blockByName(*P.F, "b3");
  EXPECT_TRUE(DT.dominates(B1, B2));
  EXPECT_TRUE(DT.dominates(B1, B3));
  EXPECT_FALSE(DT.dominates(B2, B1));
}

TEST(DominatorTreeTest, DominanceFrontierOfDiamond) {
  Parsed P = parse(Diamond);
  DominatorTree DT(*P.F);
  Block *B1 = blockByName(*P.F, "b1"), *B3 = blockByName(*P.F, "b3");
  // DF(b1) = {b3}: b1 reaches the merge it does not dominate.
  ASSERT_EQ(DT.frontier(B1).size(), 1u);
  EXPECT_EQ(DT.frontier(B1)[0], B3);
  // DF(b0) is empty: b0 dominates everything.
  EXPECT_TRUE(DT.frontier(P.F->getEntry()).empty());
}

TEST(DominatorTreeTest, LoopHeaderIsItsOwnFrontier) {
  Parsed P = parse(Loop);
  DominatorTree DT(*P.F);
  Block *B1 = blockByName(*P.F, "b1");
  auto &DF = DT.frontier(B1);
  EXPECT_NE(std::find(DF.begin(), DF.end(), B1), DF.end());
}

TEST(DominatorTreeTest, IteratedFrontier) {
  Parsed P = parse(Diamond);
  DominatorTree DT(*P.F);
  Block *B1 = blockByName(*P.F, "b1"), *B2 = blockByName(*P.F, "b2");
  Block *B3 = blockByName(*P.F, "b3");
  auto IDF = DT.iteratedFrontier({B1, B2});
  ASSERT_EQ(IDF.size(), 1u);
  EXPECT_EQ(IDF[0], B3);
}

TEST(DominatorTreeTest, DominatesUseOrdersWithinBlock) {
  Parsed P = parse(Diamond);
  DominatorTree DT(*P.F);
  Block *B0 = P.F->getEntry();
  // In b0: the compare uses the param; the param does not use the compare.
  Instruction *Param = nullptr, *Cmp = nullptr;
  for (Instruction *I : *B0) {
    if (isa<ParamInst>(I))
      Param = I;
    if (isa<CompareInst>(I))
      Cmp = I;
  }
  ASSERT_TRUE(Param && Cmp);
  EXPECT_TRUE(DT.dominatesUse(Param, Cmp));
  EXPECT_FALSE(DT.dominatesUse(Cmp, Param));
}

TEST(DominatorTreeTest, PhiUseCountsAtPredecessor) {
  Parsed P = parse(Diamond);
  DominatorTree DT(*P.F);
  Block *B3 = blockByName(*P.F, "b3");
  PhiInst *Phi = B3->phis()[0];
  // Both inputs are defined in b0, which dominates both predecessors.
  for (Instruction *In : Phi->operands())
    EXPECT_TRUE(DT.dominatesUse(In, Phi));
}

// ---- Loops --------------------------------------------------------------------

TEST(LoopInfoTest, DetectsSingleLoop) {
  Parsed P = parse(Loop);
  DominatorTree DT(*P.F);
  LoopInfo LI(*P.F, DT);
  Block *B1 = blockByName(*P.F, "b1"), *B2 = blockByName(*P.F, "b2");
  Block *B3 = blockByName(*P.F, "b3");
  EXPECT_TRUE(LI.isLoopHeader(B1));
  EXPECT_FALSE(LI.isLoopHeader(B2));
  EXPECT_EQ(LI.loopDepth(B1), 1u);
  EXPECT_EQ(LI.loopDepth(B2), 1u);
  EXPECT_EQ(LI.loopDepth(B3), 0u);
  EXPECT_EQ(LI.loopDepth(P.F->getEntry()), 0u);
  EXPECT_TRUE(LoopInfo::isBackEdge(B2, B1, DT));
  EXPECT_FALSE(LoopInfo::isBackEdge(B1, B2, DT));
}

TEST(LoopInfoTest, NestedLoopDepths) {
  Parsed P = parse(NestedLoop);
  DominatorTree DT(*P.F);
  LoopInfo LI(*P.F, DT);
  EXPECT_EQ(LI.loopDepth(blockByName(*P.F, "b1")), 1u);
  EXPECT_EQ(LI.loopDepth(blockByName(*P.F, "b2")), 2u);
  EXPECT_EQ(LI.loopDepth(blockByName(*P.F, "b3")), 2u);
  EXPECT_EQ(LI.loopDepth(blockByName(*P.F, "b4")), 1u);
  EXPECT_EQ(LI.loopDepth(blockByName(*P.F, "b5")), 0u);
  EXPECT_TRUE(LI.isLoopHeader(blockByName(*P.F, "b1")));
  EXPECT_TRUE(LI.isLoopHeader(blockByName(*P.F, "b2")));
}

TEST(LoopInfoTest, DiamondHasNoLoops) {
  Parsed P = parse(Diamond);
  DominatorTree DT(*P.F);
  LoopInfo LI(*P.F, DT);
  for (Block *B : P.F->blocks()) {
    EXPECT_FALSE(LI.isLoopHeader(B));
    EXPECT_EQ(LI.loopDepth(B), 0u);
  }
}

// ---- BlockFrequency -------------------------------------------------------------

TEST(BlockFrequencyTest, DiamondSplitsByProbability) {
  Parsed P = parse(Diamond); // 0.75 true probability
  DominatorTree DT(*P.F);
  LoopInfo LI(*P.F, DT);
  BlockFrequency BF = BlockFrequency::computeStatic(*P.F, DT, LI);
  EXPECT_DOUBLE_EQ(BF.frequency(P.F->getEntry()), 1.0);
  EXPECT_DOUBLE_EQ(BF.frequency(blockByName(*P.F, "b1")), 0.75);
  EXPECT_DOUBLE_EQ(BF.frequency(blockByName(*P.F, "b2")), 0.25);
  EXPECT_DOUBLE_EQ(BF.frequency(blockByName(*P.F, "b3")), 1.0);
  EXPECT_DOUBLE_EQ(BF.relativeFrequency(blockByName(*P.F, "b2")), 0.25);
}

TEST(BlockFrequencyTest, LoopMultiplierFromStayProbability) {
  Parsed P = parse(Loop); // stay probability 0.9 => ~10 iterations
  DominatorTree DT(*P.F);
  LoopInfo LI(*P.F, DT);
  BlockFrequency BF = BlockFrequency::computeStatic(*P.F, DT, LI);
  EXPECT_NEAR(BF.frequency(blockByName(*P.F, "b1")), 10.0, 1e-9);
  EXPECT_NEAR(BF.frequency(blockByName(*P.F, "b2")), 9.0, 1e-9);
  // Cold exit code is much rarer than the loop body.
  EXPECT_LT(BF.relativeFrequency(blockByName(*P.F, "b3")), 0.2);
}

TEST(BlockFrequencyTest, FromProfileUsesRawCounts) {
  Parsed P = parse(Diamond);
  std::unordered_map<Block *, uint64_t> Counts;
  Counts[P.F->getEntry()] = 100;
  Counts[blockByName(*P.F, "b1")] = 90;
  Counts[blockByName(*P.F, "b2")] = 10;
  BlockFrequency BF = BlockFrequency::fromProfile(Counts);
  EXPECT_DOUBLE_EQ(BF.relativeFrequency(blockByName(*P.F, "b1")), 0.9);
  EXPECT_DOUBLE_EQ(BF.frequency(blockByName(*P.F, "b3")), 0.0); // unseen
}

} // namespace
