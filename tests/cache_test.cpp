//===- tests/cache_test.cpp - Compile-cache equivalence test wall ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The test wall for the content-addressed compile cache (DESIGN.md §13):
//
//  - warm-vs-cold equivalence: a warm run over the generator corpus is
//    observably identical to the cold run that populated the cache —
//    bitwise IR, interpreter results, measurements, remarks, diagnostics,
//    and counter totals (modulo the cache.* component, the one documented
//    divergence);
//  - schedule independence: warm-cache runs at --jobs=1 and --jobs=8 are
//    byte-identical, including the hit/miss counts themselves;
//  - zero redundant compiles: a warm suite run over a duplicate-heavy
//    corpus never misses;
//  - key sensitivity: every fingerprint field perturbs the key;
//  - the on-disk format: round-trip fidelity, corruption/truncation/
//    version-mismatch all fail open as misses, FIFO eviction respects the
//    capacity bound deterministically.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "support/Diagnostics.h"
#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Metrics.h"
#include "workloads/CompileCache.h"
#include "workloads/CompileService.h"
#include "workloads/Suites.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <unistd.h>
#include <vector>

using namespace dbds;

namespace {

//===----------------------------------------------------------------------===//
// Corpus harness
//===----------------------------------------------------------------------===//

/// Everything observable one corpus compilation produces.
struct CorpusObservation {
  std::vector<std::string> PrintedIR; ///< One per (seed, config) module.
  std::vector<uint64_t> ResultHashes; ///< Per function, flattened.
  std::vector<uint64_t> DynamicCycles;
  std::vector<uint64_t> CodeSizes;
  std::vector<unsigned> Duplications;
  std::vector<unsigned> Rollbacks;
  std::string RemarksJsonl;
  std::string DiagsText;
  std::vector<CounterSample> CounterDelta;
};

/// The cache.* component is the documented warm-vs-cold divergence; strip
/// it before comparing counter totals across cache states.
std::vector<CounterSample> stripCache(std::vector<CounterSample> V) {
  std::vector<CounterSample> Out;
  for (CounterSample &S : V)
    if (S.Name.compare(0, 6, "cache.") != 0)
      Out.push_back(std::move(S));
  return Out;
}

uint64_t counterValue(const std::vector<CounterSample> &V,
                      const std::string &Name) {
  for (const CounterSample &S : V)
    if (S.Name == Name)
      return S.Value;
  return 0;
}

/// Compiles the 5-seed corpus under all three paper configurations through
/// \p Cache (null = uncached) and records every observable.
CorpusObservation observeCorpus(unsigned Jobs, CompileCache *Cache) {
  const SuiteSpec Corpus =
      generatorCorpusSuite(/*Seed=*/7100, /*Benchmarks=*/5, /*Functions=*/5,
                           /*Segments=*/5);
  CorpusObservation Obs;
  DecisionLog Decisions;
  DiagnosticEngine Diags;
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Decisions = &Decisions;
  Opts.Diags = &Diags;
  Opts.Cache = Cache;

  std::vector<CounterSample> Pre = CounterRegistry::instance().snapshot();
  CompileService Service(Jobs);
  const RunConfig Configs[] = {RunConfig::Baseline, RunConfig::DBDS,
                               RunConfig::DupALot};
  for (const BenchmarkSpec &Spec : Corpus.Benchmarks) {
    for (RunConfig Config : Configs) {
      GeneratedWorkload W = generateWorkload(Spec.Config);
      CompileBatch Batch =
          compileFunctionsParallel(Service, W, Config, Opts, Spec.Name);
      Obs.PrintedIR.push_back(printModule(W.Mod.get()));
      for (const FunctionCompileOutcome &O : Batch.Outcomes) {
        Obs.ResultHashes.push_back(O.ResultHash);
        Obs.DynamicCycles.push_back(O.DynamicCycles);
        Obs.CodeSizes.push_back(O.CodeSize);
        Obs.Duplications.push_back(O.Duplications);
        Obs.Rollbacks.push_back(O.Rollbacks);
      }
    }
  }
  Obs.RemarksJsonl = Decisions.renderJsonl();
  Obs.DiagsText = Diags.render();
  Obs.CounterDelta =
      CounterRegistry::delta(Pre, CounterRegistry::instance().snapshot());
  return Obs;
}

/// Asserts two corpus observations are identical; \p IgnoreCacheCounters
/// excludes the cache.* component (warm vs cold), keeping everything else
/// under the byte-identical contract.
void expectObservablyIdentical(const CorpusObservation &A,
                               const CorpusObservation &B,
                               bool IgnoreCacheCounters) {
  ASSERT_EQ(A.PrintedIR.size(), B.PrintedIR.size());
  for (size_t I = 0; I != A.PrintedIR.size(); ++I)
    EXPECT_EQ(A.PrintedIR[I], B.PrintedIR[I]) << "module " << I;
  EXPECT_EQ(A.ResultHashes, B.ResultHashes);
  EXPECT_EQ(A.DynamicCycles, B.DynamicCycles);
  EXPECT_EQ(A.CodeSizes, B.CodeSizes);
  EXPECT_EQ(A.Duplications, B.Duplications);
  EXPECT_EQ(A.Rollbacks, B.Rollbacks);
  EXPECT_EQ(A.RemarksJsonl, B.RemarksJsonl);
  EXPECT_EQ(A.DiagsText, B.DiagsText);

  std::vector<CounterSample> CA = A.CounterDelta, CB = B.CounterDelta;
  if (IgnoreCacheCounters) {
    CA = stripCache(std::move(CA));
    CB = stripCache(std::move(CB));
  }
  ASSERT_EQ(CA.size(), CB.size());
  for (size_t I = 0; I != CA.size(); ++I) {
    EXPECT_EQ(CA[I].Name, CB[I].Name);
    EXPECT_EQ(CA[I].Value, CB[I].Value) << "counter " << CA[I].Name;
  }
}

//===----------------------------------------------------------------------===//
// Warm-vs-cold equivalence (the headline)
//===----------------------------------------------------------------------===//

TEST(CacheEquivalenceTest, WarmRunIsByteIdenticalToCold) {
  CompileCache Cache;
  CorpusObservation Cold = observeCorpus(1, &Cache);
  ASSERT_GT(Cache.size(), 0u) << "clean corpus stored nothing";
  CorpusObservation Warm = observeCorpus(1, &Cache);
  expectObservablyIdentical(Cold, Warm, /*IgnoreCacheCounters=*/true);

  // Every compile the cold run stored replays warm; a clean corpus with no
  // injector, budget, or diagnostics stores everything, so the warm run
  // performs zero redundant compiles (the acceptance criterion).
  EXPECT_EQ(Warm.DiagsText, "");
  EXPECT_EQ(counterValue(Warm.CounterDelta, "cache.miss"), 0u);
  EXPECT_EQ(counterValue(Warm.CounterDelta, "cache.hit"),
            counterValue(Cold.CounterDelta, "cache.hit") +
                counterValue(Cold.CounterDelta, "cache.miss"));
  // Warm runs compile nothing, yet replay makes the counter totals agree —
  // functions_compiled included, which is exactly the point.
  EXPECT_EQ(
      counterValue(stripCache(Warm.CounterDelta), "compile_service.functions_compiled"),
      counterValue(stripCache(Cold.CounterDelta), "compile_service.functions_compiled"));
}

TEST(CacheEquivalenceTest, CachedRunMatchesUncachedRun) {
  // The cache must be invisible: a cold cached run produces byte-identical
  // observables to a run with no cache at all (cache.* aside).
  CorpusObservation Uncached = observeCorpus(1, nullptr);
  CompileCache Cache;
  CorpusObservation Cached = observeCorpus(1, &Cache);
  expectObservablyIdentical(Uncached, Cached, /*IgnoreCacheCounters=*/true);
}

TEST(CacheEquivalenceTest, ColdMissCountIsScheduleIndependent) {
  // Probes run in parallel waves but inserts land at the serial join, so
  // hit/miss totals — not just the replayed payloads — are identical
  // between --jobs=1 and --jobs=8.
  CompileCache A, B;
  CorpusObservation Cold1 = observeCorpus(1, &A);
  CorpusObservation Cold8 = observeCorpus(8, &B);
  expectObservablyIdentical(Cold1, Cold8, /*IgnoreCacheCounters=*/false);
  EXPECT_EQ(A.size(), B.size());
}

TEST(CacheEquivalenceTest, WarmRunsAreScheduleIndependent) {
  CompileCache Cache;
  observeCorpus(1, &Cache); // populate
  CorpusObservation Warm1 = observeCorpus(1, &Cache);
  CorpusObservation Warm8 = observeCorpus(8, &Cache);
  expectObservablyIdentical(Warm1, Warm8, /*IgnoreCacheCounters=*/false);
}

TEST(CacheEquivalenceTest, DuplicateHeavyCorpusSharesEntriesAcrossBenchmarks) {
  // Two benchmarks with identical generator configs produce structurally
  // identical functions; the benchmark label is deliberately not part of
  // the key, so the second benchmark hits entries the first stored.
  SuiteSpec Corpus = generatorCorpusSuite(/*Seed=*/7500, /*Benchmarks=*/1,
                                          /*Functions=*/4, /*Segments=*/4);
  BenchmarkSpec Twin = Corpus.Benchmarks[0];
  Twin.Name = "twin-of-" + Twin.Name;
  Corpus.Benchmarks.push_back(Twin);

  CompileCache Cache;
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Cache = &Cache;
  std::vector<CounterSample> Pre = CounterRegistry::instance().snapshot();
  CompileService Service(1);
  for (const BenchmarkSpec &Spec : Corpus.Benchmarks) {
    GeneratedWorkload W = generateWorkload(Spec.Config);
    compileFunctionsParallel(Service, W, RunConfig::DBDS, Opts, Spec.Name);
  }
  std::vector<CounterSample> Delta =
      CounterRegistry::delta(Pre, CounterRegistry::instance().snapshot());
  // The twin compiled nothing: every unique function missed exactly once
  // (cache.miss == unique hashes == entries stored), the rest hit.
  EXPECT_EQ(counterValue(Delta, "cache.miss"), Cache.size());
  EXPECT_GE(counterValue(Delta, "cache.hit"), 4u);
}

TEST(CacheEquivalenceTest, DeterministicHistogramsReplayExactly) {
  // With metrics on, a warm run's Deterministic-class histograms merge to
  // the same state the cold run recorded (Timing-class histograms are the
  // wall-clock carve-out and stay excluded). Rendered JSON is compared:
  // byte-identical rendering is the report-level contract.
  MetricsRegistry::setEnabled(true);
  MetricsRegistry::instance().resetAll();
  CompileCache Cache;
  observeCorpus(1, &Cache);
  std::string Cold = MetricsRegistry::renderJson(
      MetricsRegistry::instance().snapshot(/*DeterministicOnly=*/true));

  MetricsRegistry::instance().resetAll();
  observeCorpus(1, &Cache);
  std::string Warm = MetricsRegistry::renderJson(
      MetricsRegistry::instance().snapshot(/*DeterministicOnly=*/true));
  MetricsRegistry::setEnabled(false);
  MetricsRegistry::instance().resetAll();

  EXPECT_EQ(Cold, Warm);
}

TEST(CacheEquivalenceTest, MetricsEnabledPerturbsTheKey) {
  // A cache populated with metrics off must not serve a metrics-on run
  // (the entry has no histogram payload to replay): the fingerprint keeps
  // the two keyspaces apart, so the metrics-on run simply misses.
  CompileCache Cache;
  observeCorpus(1, &Cache); // metrics off
  const size_t ColdEntries = Cache.size();

  MetricsRegistry::setEnabled(true);
  MetricsRegistry::instance().resetAll();
  std::vector<CounterSample> Pre = CounterRegistry::instance().snapshot();
  observeCorpus(1, &Cache);
  std::vector<CounterSample> Delta =
      CounterRegistry::delta(Pre, CounterRegistry::instance().snapshot());
  MetricsRegistry::setEnabled(false);
  MetricsRegistry::instance().resetAll();

  EXPECT_EQ(counterValue(Delta, "cache.hit"), 0u);
  EXPECT_GT(Cache.size(), ColdEntries);
}

//===----------------------------------------------------------------------===//
// Key sensitivity: every fingerprint field perturbs the key
//===----------------------------------------------------------------------===//

struct KeyFixture {
  std::string IR = "function f(a) {\nentry:\n  ret a\n}\n";
  std::vector<std::vector<int64_t>> Train = {{1, 2}, {3}};
  std::vector<std::vector<int64_t>> Eval = {{4}};
  CompileCacheFingerprint FP;

  KeyFixture() {
    // Non-default everything, so single-field mutations move *away* from
    // the baseline rather than toward a default they started at.
    FP.Config = 1;
    FP.Verify = true;
    FP.CompileBudgetMs = 12.5;
    FP.SimAudit = true;
    FP.HasInjector = true;
    FP.InjectorBaseSeed = 99;
    FP.InjectorRate = 0.25;
    FP.InjectorKindMask = 7;
    FP.TaskFaultSeed = 1234;
  }

  CompileCacheKey key() const {
    return computeCompileCacheKey(IR, Train, Eval, FP);
  }
};

TEST(CacheKeyTest, EveryFingerprintFieldPerturbsKey) {
  KeyFixture Base;
  const CompileCacheKey K = Base.key();

  struct Case {
    const char *Field;
    void (*Mutate)(KeyFixture &);
  };
  const Case Cases[] = {
      {"Tool", [](KeyFixture &F) { F.FP.Tool = "fuzzdiff"; }},
      {"Config", [](KeyFixture &F) { F.FP.Config = 2; }},
      {"Verify", [](KeyFixture &F) { F.FP.Verify = false; }},
      {"FailFast", [](KeyFixture &F) { F.FP.FailFast = true; }},
      {"CompileBudgetMs", [](KeyFixture &F) { F.FP.CompileBudgetMs = 13.0; }},
      {"PollInterval", [](KeyFixture &F) { F.FP.PollInterval = 64; }},
      {"SimAudit", [](KeyFixture &F) { F.FP.SimAudit = false; }},
      {"WantDiags", [](KeyFixture &F) { F.FP.WantDiags = true; }},
      {"WantDecisions", [](KeyFixture &F) { F.FP.WantDecisions = true; }},
      {"MetricsEnabled", [](KeyFixture &F) { F.FP.MetricsEnabled = true; }},
      {"ForcedLevel", [](KeyFixture &F) { F.FP.ForcedLevel = 1; }},
      {"DisabledPhases",
       [](KeyFixture &F) { F.FP.DisabledPhases = {"dbds"}; }},
      {"HasInjector", [](KeyFixture &F) { F.FP.HasInjector = false; }},
      {"InjectorBaseSeed",
       [](KeyFixture &F) { F.FP.InjectorBaseSeed = 100; }},
      {"InjectorRate", [](KeyFixture &F) { F.FP.InjectorRate = 0.5; }},
      {"InjectorKindMask",
       [](KeyFixture &F) { F.FP.InjectorKindMask = 3; }},
      {"TaskFaultSeed", [](KeyFixture &F) { F.FP.TaskFaultSeed = 1235; }},
  };
  for (const Case &C : Cases) {
    KeyFixture Mutated;
    C.Mutate(Mutated);
    EXPECT_NE(Mutated.key(), K)
        << "fingerprint field " << C.Field << " does not perturb the key";
  }
}

TEST(CacheKeyTest, IRAndInputsPerturbKey) {
  KeyFixture Base;
  const CompileCacheKey K = Base.key();

  KeyFixture IR;
  IR.IR += " ";
  EXPECT_NE(IR.key(), K);

  KeyFixture Train;
  Train.Train[0][0] = 5;
  EXPECT_NE(Train.key(), K);

  KeyFixture Eval;
  Eval.Eval.push_back({});
  EXPECT_NE(Eval.key(), K);

  // Tuple boundaries must not alias: {{1,2},{3}} vs {{1},{2,3}}.
  KeyFixture Shifted;
  Shifted.Train = {{1}, {2, 3}};
  EXPECT_NE(Shifted.key(), K);
}

TEST(CacheKeyTest, StructurallyIdenticalWorkloadsShareKeys) {
  // The canonical printing renames values/blocks in print order, so two
  // generations from the same seed hash identically — the content part of
  // "content-addressed".
  GeneratorConfig Config;
  Config.Seed = 4242;
  Config.NumFunctions = 3;
  Config.SegmentsPerFunction = 4;
  GeneratedWorkload A = generateWorkload(Config);
  GeneratedWorkload B = generateWorkload(Config);
  auto FA = A.Mod->functions(), FB = B.Mod->functions();
  ASSERT_EQ(FA.size(), FB.size());
  CompileCacheFingerprint FP;
  for (size_t I = 0; I != FA.size(); ++I) {
    std::string PA = printCacheableUnit(A.Mod.get(), FA[I]);
    std::string PB = printCacheableUnit(B.Mod.get(), FB[I]);
    EXPECT_EQ(PA, PB);
    EXPECT_EQ(computeCompileCacheKey(PA, A.TrainInputs[I], A.EvalInputs[I], FP),
              computeCompileCacheKey(PB, B.TrainInputs[I], B.EvalInputs[I], FP));
  }
}

//===----------------------------------------------------------------------===//
// Serialization: round-trip fidelity and fail-open parsing
//===----------------------------------------------------------------------===//

/// A fully populated synthetic entry: every field off its default,
/// decision doubles with bit patterns a decimal round-trip would mangle.
CompileCacheEntry makeRichEntry() {
  CompileCacheEntry E;
  E.CodeSize = 777;
  E.Duplications = 3;
  E.Degradation = DegradationLevel::NoFixpoint;
  E.DynamicCycles = 123456789;
  E.ResultHash = 0xdeadbeefcafef00dULL;
  E.FaultSites = 11;
  E.Audit.Ran = true;
  E.Audit.Confirmed = 2;
  E.Audit.Overclaimed = 1;
  E.Audit.Underclaimed = 0;
  E.Audit.Skipped = 4;

  DuplicationDecision D;
  D.FunctionName = "fn with spaces"; // names are the line tail, spaces ok
  D.Iteration = 2;
  D.MergeId = 7;
  D.PredId = 3;
  D.SecondMergeId = 9;
  D.CyclesSaved = 0.1 + 0.2; // 0.30000000000000004: decimal would lose it
  D.Probability = 1.0 / 3.0;
  D.SizeCost = -5;
  D.CurrentSize = 100;
  D.InitialSize = 90;
  D.Opportunities.ConstantFolds = 1;
  D.Opportunities.StrengthReductions = 2;
  D.Opportunities.ConditionalEliminations = 3;
  D.Opportunities.ReadEliminations = 4;
  D.Opportunities.AllocationSinks = 5;
  D.Opportunities.PartialEscapes = 6;
  D.TradeoffEvaluated = true;
  D.Clauses.PositiveCyclesSaved = true;
  D.Clauses.BenefitOutweighsCost = true;
  D.Clauses.UnderMaxUnitSize = false;
  D.Clauses.WithinGrowthBudget = true;
  D.Verdict = DecisionVerdict::RejectedTradeoff;
  D.DuplicationsPerformed = 2;
  D.Audit = AuditVerdict::Overclaimed;
  E.Decisions.push_back(D);
  D.FunctionName = "plain";
  D.Verdict = DecisionVerdict::Accepted;
  E.Decisions.push_back(D);

  E.Counters.push_back({"dbds.duplications", 3});
  E.Counters.push_back({"vm.steps", 1000});

  CompileCacheEntry::HistogramState HS;
  HS.Component = "dbds";
  HS.Name = "ir_growth_pct";
  HS.Unit = MetricUnit::Percent;
  HS.Class = MetricClass::Deterministic;
  Histogram H;
  H.record(0);
  H.record(17);
  H.record(1u << 20);
  HS.H = H;
  E.Histograms.push_back(HS);

  E.OptimizedIR = "function f(a) {\nentry:\n  ret a\n}\n";
  return E;
}

void expectEntriesEqual(const CompileCacheEntry &A,
                        const CompileCacheEntry &B) {
  EXPECT_EQ(A.CodeSize, B.CodeSize);
  EXPECT_EQ(A.Duplications, B.Duplications);
  EXPECT_EQ(A.Degradation, B.Degradation);
  EXPECT_EQ(A.DynamicCycles, B.DynamicCycles);
  EXPECT_EQ(A.ResultHash, B.ResultHash);
  EXPECT_EQ(A.FaultSites, B.FaultSites);
  EXPECT_EQ(A.Audit.Ran, B.Audit.Ran);
  EXPECT_EQ(A.Audit.Confirmed, B.Audit.Confirmed);
  EXPECT_EQ(A.Audit.Overclaimed, B.Audit.Overclaimed);
  EXPECT_EQ(A.Audit.Underclaimed, B.Audit.Underclaimed);
  EXPECT_EQ(A.Audit.Skipped, B.Audit.Skipped);
  ASSERT_EQ(A.Decisions.size(), B.Decisions.size());
  for (size_t I = 0; I != A.Decisions.size(); ++I) {
    // renderJson covers every rendered field; bit-exact doubles included.
    EXPECT_EQ(A.Decisions[I].renderJson(), B.Decisions[I].renderJson());
    EXPECT_EQ(A.Decisions[I].CyclesSaved, B.Decisions[I].CyclesSaved);
    EXPECT_EQ(A.Decisions[I].Probability, B.Decisions[I].Probability);
  }
  ASSERT_EQ(A.Counters.size(), B.Counters.size());
  for (size_t I = 0; I != A.Counters.size(); ++I) {
    EXPECT_EQ(A.Counters[I].Name, B.Counters[I].Name);
    EXPECT_EQ(A.Counters[I].Value, B.Counters[I].Value);
  }
  ASSERT_EQ(A.Histograms.size(), B.Histograms.size());
  for (size_t I = 0; I != A.Histograms.size(); ++I) {
    EXPECT_EQ(A.Histograms[I].Component, B.Histograms[I].Component);
    EXPECT_EQ(A.Histograms[I].Name, B.Histograms[I].Name);
    EXPECT_EQ(A.Histograms[I].Unit, B.Histograms[I].Unit);
    EXPECT_EQ(A.Histograms[I].Class, B.Histograms[I].Class);
    EXPECT_EQ(A.Histograms[I].H.buckets(), B.Histograms[I].H.buckets());
    EXPECT_EQ(A.Histograms[I].H.count(), B.Histograms[I].H.count());
    EXPECT_EQ(A.Histograms[I].H.sum(), B.Histograms[I].H.sum());
    EXPECT_EQ(A.Histograms[I].H.min(), B.Histograms[I].H.min());
    EXPECT_EQ(A.Histograms[I].H.max(), B.Histograms[I].H.max());
  }
  EXPECT_EQ(A.OptimizedIR, B.OptimizedIR);
}

TEST(CacheSerializationTest, RoundTripPreservesEverything) {
  const CompileCacheKey Key = stableHash128("round-trip");
  const CompileCacheEntry E = makeRichEntry();
  const std::string Text = serializeCacheEntry(Key, E);

  CompileCacheEntry Back;
  ASSERT_TRUE(parseCacheEntry(Text, Key, Back));
  expectEntriesEqual(E, Back);

  // Serialization is deterministic: re-serializing the parsed entry is
  // byte-identical (what makes stored_bytes and disk images stable).
  EXPECT_EQ(serializeCacheEntry(Key, Back), Text);
}

TEST(CacheSerializationTest, EmptyEntryRoundTrips) {
  const CompileCacheKey Key = stableHash128("empty");
  CompileCacheEntry E;
  E.OptimizedIR = "function g() {\nentry:\n  ret 0\n}\n";
  const std::string Text = serializeCacheEntry(Key, E);
  CompileCacheEntry Back;
  ASSERT_TRUE(parseCacheEntry(Text, Key, Back));
  expectEntriesEqual(E, Back);
}

TEST(CacheSerializationTest, AnySingleByteCorruptionIsAMiss) {
  const CompileCacheKey Key = stableHash128("corrupt");
  std::string Text = serializeCacheEntry(Key, makeRichEntry());
  CompileCacheEntry Sink;
  ASSERT_TRUE(parseCacheEntry(Text, Key, Sink));
  // Flip one bit at a sweep of positions: the checksum (or, for bytes
  // inside the checksum line itself, the hex comparison) must reject every
  // single one — fail-open, never a wrong replay.
  for (size_t Pos = 0; Pos < Text.size(); Pos += 7) {
    std::string Bad = Text;
    Bad[Pos] ^= 0x01;
    CompileCacheEntry Out;
    EXPECT_FALSE(parseCacheEntry(Bad, Key, Out))
        << "corruption at byte " << Pos << " parsed successfully";
  }
}

TEST(CacheSerializationTest, TruncationIsAMiss) {
  const CompileCacheKey Key = stableHash128("truncate");
  const std::string Text = serializeCacheEntry(Key, makeRichEntry());
  for (size_t Keep : {size_t(0), size_t(1), Text.size() / 2,
                      Text.size() - 1}) {
    CompileCacheEntry Out;
    EXPECT_FALSE(parseCacheEntry(Text.substr(0, Keep), Key, Out))
        << "truncation to " << Keep << " bytes parsed successfully";
  }
}

TEST(CacheSerializationTest, VersionMismatchIsAMiss) {
  const CompileCacheKey Key = stableHash128("version");
  std::string Text = serializeCacheEntry(Key, makeRichEntry());
  ASSERT_EQ(Text.compare(0, 21, "dbds-compile-cache v2"), 0);
  // A hypothetical v3 writer with a *valid* checksum over its bytes: the
  // version check must run first and reject without touching the payload.
  Text[20] = '3';
  const size_t ChecksumLine = Text.rfind("checksum ");
  ASSERT_NE(ChecksumLine, std::string::npos);
  std::string Body = Text.substr(0, ChecksumLine);
  char Line[32];
  snprintf(Line, sizeof(Line), "checksum %016llx\n",
           static_cast<unsigned long long>(stableHash64(Body)));
  std::string V2 = Body + Line;
  CompileCacheEntry Out;
  EXPECT_FALSE(parseCacheEntry(V2, Key, Out));
}

TEST(CacheSerializationTest, KeyMismatchIsAMiss) {
  const CompileCacheKey Key = stableHash128("the-key");
  const std::string Text = serializeCacheEntry(Key, makeRichEntry());
  CompileCacheEntry Out;
  EXPECT_FALSE(parseCacheEntry(Text, stableHash128("another-key"), Out));
}

TEST(CacheReplayTest, UnparseableIRFailsOpen) {
  CompileCacheEntry E;
  E.OptimizedIR = "this is not ir";
  PreparedReplay R;
  EXPECT_FALSE(prepareReplay(E, R));
}

TEST(CacheReplayTest, UnknownCounterFailsOpen) {
  CompileCacheEntry E;
  E.OptimizedIR = "function f(a) {\nentry:\n  ret a\n}\n";
  E.Counters.push_back({"no_such.counter_at_all", 1});
  PreparedReplay R;
  EXPECT_FALSE(prepareReplay(E, R));
}

//===----------------------------------------------------------------------===//
// The cache container: on-disk store, eviction, insert semantics
//===----------------------------------------------------------------------===//

std::string freshCacheDir(const char *Tag) {
  std::string Dir = ::testing::TempDir() + "dbds-cache-" + Tag + "-" +
                    std::to_string(getpid());
  // Start clean: stale entries from a previous run would turn misses into
  // hits and mask the assertions below.
  std::string Cmd = "rm -rf '" + Dir + "'";
  EXPECT_EQ(system(Cmd.c_str()), 0);
  return Dir;
}

TEST(CacheStoreTest, InMemoryProbeAfterInsert) {
  CompileCache Cache;
  const CompileCacheKey Key = stableHash128("mem");
  EXPECT_EQ(Cache.probe(Key), nullptr);
  Cache.insert(Key, makeRichEntry());
  auto E = Cache.probe(Key);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->CodeSize, 777u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(CacheStoreTest, FirstInsertWins) {
  CompileCache Cache;
  const CompileCacheKey Key = stableHash128("dup");
  CompileCacheEntry First = makeRichEntry();
  First.CodeSize = 1;
  CompileCacheEntry Second = makeRichEntry();
  Second.CodeSize = 2;
  Cache.insert(Key, std::move(First));
  Cache.insert(Key, std::move(Second));
  auto E = Cache.probe(Key);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->CodeSize, 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(CacheStoreTest, OnDiskRoundTripAcrossProcessBoundary) {
  const std::string Dir = freshCacheDir("roundtrip");
  const CompileCacheKey Key = stableHash128("disk");
  const CompileCacheEntry E = makeRichEntry();
  {
    CompileCache Writer(Dir);
    Writer.insert(Key, E);
  }
  // A fresh cache instance simulates the next process: nothing in memory,
  // the entry loads from disk.
  CompileCache Reader(Dir);
  EXPECT_EQ(Reader.size(), 0u);
  auto Loaded = Reader.probe(Key);
  ASSERT_NE(Loaded, nullptr);
  expectEntriesEqual(E, *Loaded);
  // Disk probes never populate the memory map (wave-time probes must not
  // mutate shared state beyond their shard lock).
  EXPECT_EQ(Reader.size(), 0u);
}

TEST(CacheStoreTest, CorruptedDiskEntryIsAMiss) {
  const std::string Dir = freshCacheDir("corrupt");
  const CompileCacheKey Key = stableHash128("disk-corrupt");
  CompileCache Writer(Dir);
  Writer.insert(Key, makeRichEntry());

  // Flip one byte in the middle of the file.
  const std::string Path = Writer.entryPath(Key);
  FILE *File = fopen(Path.c_str(), "r+b");
  ASSERT_NE(File, nullptr);
  ASSERT_EQ(fseek(File, 40, SEEK_SET), 0);
  int C = fgetc(File);
  ASSERT_NE(C, EOF);
  ASSERT_EQ(fseek(File, 40, SEEK_SET), 0);
  fputc(C ^ 0x01, File);
  fclose(File);

  CompileCache Reader(Dir);
  EXPECT_EQ(Reader.probe(Key), nullptr);
}

TEST(CacheStoreTest, VersionMismatchedDiskEntryIsAMiss) {
  const std::string Dir = freshCacheDir("version");
  const CompileCacheKey Key = stableHash128("disk-version");
  CompileCache Writer(Dir);
  Writer.insert(Key, makeRichEntry());

  const std::string Path = Writer.entryPath(Key);
  FILE *File = fopen(Path.c_str(), "r+b");
  ASSERT_NE(File, nullptr);
  // "dbds-compile-cache v1" -> v9 in place.
  ASSERT_EQ(fseek(File, 20, SEEK_SET), 0);
  fputc('9', File);
  fclose(File);

  CompileCache Reader(Dir);
  EXPECT_EQ(Reader.probe(Key), nullptr);
}

TEST(CacheStoreTest, MissingDirectoryFailsOpen) {
  // An uncreatable directory (parent missing) must not break compilation:
  // writes count disk_write_failures, probes miss, memory still serves.
  const std::string Dir =
      ::testing::TempDir() + "no-such-parent-" + std::to_string(getpid()) +
      "/nested/cache";
  CompileCache Cache(Dir);
  const CompileCacheKey Key = stableHash128("nodir");
  Cache.insert(Key, makeRichEntry());
  EXPECT_NE(Cache.probe(Key), nullptr); // memory entry survives
  CompileCache Fresh(Dir);
  EXPECT_EQ(Fresh.probe(Key), nullptr);
}

TEST(CacheStoreTest, EvictionIsFIFOAndBoundsMemory) {
  CompileCache Cache("", /*MaxEntries=*/4);
  std::vector<CompileCacheKey> Keys;
  for (unsigned I = 0; I != 10; ++I) {
    Keys.push_back(stableHash128("evict-" + std::to_string(I)));
    CompileCacheEntry E;
    E.CodeSize = I;
    E.OptimizedIR = "x";
    Cache.insert(Keys.back(), std::move(E));
    EXPECT_LE(Cache.size(), 4u);
  }
  EXPECT_EQ(Cache.size(), 4u);
  // FIFO: the first six inserts are gone, the last four survive.
  for (unsigned I = 0; I != 6; ++I)
    EXPECT_EQ(Cache.probe(Keys[I]), nullptr) << "entry " << I << " survived";
  for (unsigned I = 6; I != 10; ++I) {
    auto E = Cache.probe(Keys[I]);
    ASSERT_NE(E, nullptr) << "entry " << I << " evicted out of order";
    EXPECT_EQ(E->CodeSize, I);
  }
}

TEST(CacheStoreTest, EvictionPropertySweep) {
  // Property: for any capacity C and insert count N of distinct keys,
  // exactly the last min(C, N) inserts are resident, in every case.
  for (size_t Cap : {size_t(1), size_t(2), size_t(3), size_t(8)}) {
    for (unsigned N : {1u, 2u, 5u, 9u, 16u}) {
      CompileCache Cache("", Cap);
      std::vector<CompileCacheKey> Keys;
      for (unsigned I = 0; I != N; ++I) {
        Keys.push_back(stableHash128("sweep-" + std::to_string(Cap) + "-" +
                                     std::to_string(N) + "-" +
                                     std::to_string(I)));
        CompileCacheEntry E;
        E.OptimizedIR = "x";
        Cache.insert(Keys.back(), std::move(E));
      }
      const size_t Resident = std::min(Cap, size_t(N));
      EXPECT_EQ(Cache.size(), Resident);
      for (unsigned I = 0; I != N; ++I) {
        const bool ShouldSurvive = I + Resident >= N;
        EXPECT_EQ(Cache.probe(Keys[I]) != nullptr, ShouldSurvive)
            << "cap " << Cap << " n " << N << " key " << I;
      }
    }
  }
}

TEST(CacheStoreTest, EvictedEntriesReloadFromDisk) {
  // Memory capacity bounds memory, not the store: an evicted entry's disk
  // file persists and the next probe reloads it.
  const std::string Dir = freshCacheDir("reload");
  CompileCache Cache(Dir, /*MaxEntries=*/1);
  const CompileCacheKey A = stableHash128("reload-a");
  const CompileCacheKey B = stableHash128("reload-b");
  CompileCacheEntry EA = makeRichEntry();
  EA.CodeSize = 1;
  Cache.insert(A, std::move(EA));
  CompileCacheEntry EB = makeRichEntry();
  EB.CodeSize = 2;
  Cache.insert(B, std::move(EB)); // evicts A from memory
  EXPECT_EQ(Cache.size(), 1u);
  auto Reloaded = Cache.probe(A);
  ASSERT_NE(Reloaded, nullptr);
  EXPECT_EQ(Reloaded->CodeSize, 1u);
}

//===----------------------------------------------------------------------===//
// Smoke alias subject (the compile_cache_smoke ctest filter)
//===----------------------------------------------------------------------===//

TEST(CompileCacheSmokeTest, ColdThenWarmSingleBenchmark) {
  // The one-benchmark fast path of the equivalence wall: a smoke-sized
  // cold+warm pair for the `cache` preset's quick signal.
  const SuiteSpec Corpus =
      generatorCorpusSuite(/*Seed=*/8800, /*Benchmarks=*/1, /*Functions=*/4,
                           /*Segments=*/4);
  CompileCache Cache;
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Cache = &Cache;
  CompileService Service(1);

  auto RunOnce = [&] {
    GeneratedWorkload W = generateWorkload(Corpus.Benchmarks[0].Config);
    CompileBatch Batch = compileFunctionsParallel(
        Service, W, RunConfig::DBDS, Opts, Corpus.Benchmarks[0].Name);
    std::string S = printModule(W.Mod.get());
    for (const FunctionCompileOutcome &O : Batch.Outcomes)
      S += std::to_string(O.ResultHash) + "/" +
           std::to_string(O.DynamicCycles) + "/" +
           std::to_string(O.CodeSize) + "\n";
    return S;
  };
  std::vector<CounterSample> Pre = CounterRegistry::instance().snapshot();
  const std::string Cold = RunOnce();
  const std::string Warm = RunOnce();
  std::vector<CounterSample> Delta =
      CounterRegistry::delta(Pre, CounterRegistry::instance().snapshot());
  EXPECT_EQ(Cold, Warm);
  EXPECT_GT(counterValue(Delta, "cache.hit"), 0u);
}

} // namespace
