//===- tests/supervision_test.cpp - Compile-task supervision wall ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The acceptance wall for compile-task supervision: the fault-storm soak
// (high injection rate, --jobs=8, retry ladder + circuit breaker on, zero
// lost tasks, span-balanced traces, byte-identical against --jobs=1), hang
// containment under per-attempt deadlines, external batch cancellation,
// and the crash-bundle round trip (an exhausted task's bundle parses,
// reduces, and replays to the same failure from its recorded fault seed).
//
// The `supervision` CMake preset builds this wall; the supervision_soak
// and crash_bundle_smoke ctest targets alias its headline cases. The soak
// doubles as a TSan subject under the tsan preset.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/Cancellation.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Trace.h"
#include "tooling/CrashBundle.h"
#include "workloads/CompileService.h"
#include "workloads/Runner.h"
#include "workloads/Suites.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace dbds;

namespace {

std::string readWholeFile(const std::string &Path) {
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F)
    return std::string();
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) != 0)
    Out.append(Buf, N);
  fclose(F);
  return Out;
}

/// Serializes everything schedule-sensitive a supervised batch produced.
std::string describeBatch(const CompileBatch &Batch) {
  std::string S;
  for (const FunctionCompileOutcome &O : Batch.Outcomes) {
    S += "outcome hash=" + std::to_string(O.ResultHash) +
         " dup=" + std::to_string(O.Duplications) +
         " exhausted=" + std::to_string(O.Exhausted) + "\n";
    for (const CompileAttempt &A : O.Attempts)
      S += "  attempt " + std::to_string(A.Attempt) +
           " forced=" + std::to_string(static_cast<int>(A.Forced)) +
           " seed=" + std::to_string(A.FaultSeed) +
           " sites=" + std::to_string(A.FaultSites) +
           " injected=" + std::to_string(A.FaultsInjected) +
           " rollbacks=" + std::to_string(A.Rollbacks) +
           " runfail=" + std::to_string(A.RunFailures) +
           " failed=" + std::to_string(A.Failed) + " " + A.Reason + "\n";
  }
  for (const std::string &Trip : Batch.BreakerTrips)
    S += "trip: " + Trip + "\n";
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fault-storm soak: retry ladder + breaker under --jobs=8
//===----------------------------------------------------------------------===//

TEST(SupervisionSoakTest, FaultStormLosesNoTasks) {
  // High injection rate across every non-timing fault kind, full retry
  // ladder, breaker armed, 8 workers, traces on. Every function must
  // produce an outcome with a complete attempt history, the trace must be
  // span-balanced, and the whole observable state must be byte-identical
  // to a --jobs=1 run. Hang faults and deadlines are deliberately absent:
  // timing-driven expiry is the documented nondeterminism and has its own
  // containment test below.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/5100, /*Benchmarks=*/1, /*Functions=*/8,
                           /*Segments=*/4)
          .Benchmarks[0];

  auto Run = [&](unsigned Jobs) {
    FaultInjector Injector(31, 0.15,
                           FaultInjector::MaskCorruptIR |
                               FaultInjector::MaskPhaseFailure |
                               FaultInjector::MaskResourceExhaustion);
    DecisionLog Decisions;
    DiagnosticEngine Diags;
    RunnerOptions Opts;
    Opts.Verify = true;
    Opts.Injector = &Injector;
    Opts.Decisions = &Decisions;
    Opts.Diags = &Diags;
    Opts.Jobs = Jobs;
    Opts.MaxAttempts = 3;
    Opts.BreakerThreshold = 6;

    GeneratedWorkload W = generateWorkload(Spec.Config);
    CompileService Service(Jobs);
    TraceSession Trace;
    CompileBatch Batch = [&] {
      ScopedTraceAttach Attach(Trace);
      return compileFunctionsParallel(Service, W, RunConfig::DBDS, Opts,
                                      Spec.Name);
    }();

    // Zero lost tasks: one outcome per function, each with >= 1 attempt.
    EXPECT_EQ(Batch.Outcomes.size(), 8u);
    for (const FunctionCompileOutcome &O : Batch.Outcomes) {
      EXPECT_GE(O.Attempts.size(), 1u);
      EXPECT_LE(O.Attempts.size(), 3u);
      // No deadline armed and no Hang in the mask: nothing may cancel.
      for (const CompileAttempt &A : O.Attempts)
        EXPECT_FALSE(A.Cancelled);
    }

    // Span balance: every begin matched by an end on its thread.
    std::vector<std::string> Errors;
    EXPECT_TRUE(Trace.checkBalance(&Errors));
    for (const std::string &E : Errors)
      ADD_FAILURE() << E;

    return describeBatch(Batch) + printModule(W.Mod.get()) +
           Decisions.renderJsonl() + Diags.render() +
           "sites=" + std::to_string(Injector.sitesVisited()) +
           " injected=" + std::to_string(Injector.faultsInjected());
  };
  EXPECT_EQ(Run(1), Run(8));
}

//===----------------------------------------------------------------------===//
// Hang containment and external cancellation
//===----------------------------------------------------------------------===//

TEST(SupervisionCancelTest, DeadlineContainsInjectedHangs) {
  // Every site fires a Hang; the per-attempt deadline must break each spin
  // at the next checkpoint — the batch completes, every task reports a
  // cancelled (deadline) attempt history, nothing is lost or wedged.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/5200, /*Benchmarks=*/1, /*Functions=*/4,
                           /*Segments=*/3)
          .Benchmarks[0];
  FaultInjector Injector(9, 1.0, FaultInjector::MaskHang);
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Injector = &Injector;
  Opts.Jobs = 8;
  Opts.MaxAttempts = 2;
  Opts.TaskDeadlineMs = 75.0;

  GeneratedWorkload W = generateWorkload(Spec.Config);
  CompileService Service(Opts.Jobs);
  CompileBatch Batch =
      compileFunctionsParallel(Service, W, RunConfig::DBDS, Opts, Spec.Name);

  ASSERT_EQ(Batch.Outcomes.size(), 4u);
  for (const FunctionCompileOutcome &O : Batch.Outcomes) {
    // Rate 1.0 fires the interp-train Hang gate on every attempt, so every
    // attempt deadlines out, the ladder runs dry, and the task exhausts.
    ASSERT_EQ(O.Attempts.size(), 2u);
    for (const CompileAttempt &A : O.Attempts) {
      EXPECT_TRUE(A.Cancelled);
      EXPECT_TRUE(A.Failed);
      EXPECT_NE(A.Reason.find("cancelled (deadline)"), std::string::npos)
          << A.Reason;
    }
    EXPECT_TRUE(O.Exhausted);
  }
}

TEST(SupervisionCancelTest, ExternalCancelStopsTheBatch) {
  // A pre-cancelled batch token: every attempt observes it at its first
  // checkpoint and stops; the batch still returns a complete outcome set.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/5300, /*Benchmarks=*/1, /*Functions=*/4,
                           /*Segments=*/3)
          .Benchmarks[0];
  CancellationToken BatchToken;
  BatchToken.requestCancel(CancelReason::External);
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Jobs = 4;
  Opts.Cancel = &BatchToken;

  GeneratedWorkload W = generateWorkload(Spec.Config);
  CompileService Service(Opts.Jobs);
  CompileBatch Batch =
      compileFunctionsParallel(Service, W, RunConfig::DBDS, Opts, Spec.Name);

  ASSERT_EQ(Batch.Outcomes.size(), 4u);
  for (const FunctionCompileOutcome &O : Batch.Outcomes) {
    ASSERT_EQ(O.Attempts.size(), 1u); // MaxAttempts defaults to 1
    EXPECT_TRUE(O.Attempts[0].Cancelled);
    EXPECT_NE(O.Attempts[0].Reason.find("cancelled (external)"),
              std::string::npos)
        << O.Attempts[0].Reason;
  }
}

//===----------------------------------------------------------------------===//
// Crash bundles: emission, self-containment, replay
//===----------------------------------------------------------------------===//

TEST(CrashBundleTest, ExhaustedTaskWritesReplayableBundle) {
  // CorruptIR at rate 1.0: every attempt rolls back, every task exhausts
  // its two-rung ladder, and each one must leave a complete bundle that
  // replays to the same failure from its artifacts alone.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/5400, /*Benchmarks=*/1, /*Functions=*/2,
                           /*Segments=*/3)
          .Benchmarks[0];
  FaultInjector Injector(13, 1.0, FaultInjector::MaskCorruptIR);
  DiagnosticEngine Diags;
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Injector = &Injector;
  Opts.Diags = &Diags;
  Opts.Jobs = 2;
  Opts.MaxAttempts = 2;
  Opts.CrashBundleDir = "supervision-bundles";

  GeneratedWorkload W = generateWorkload(Spec.Config);
  CompileService Service(Opts.Jobs);
  CompileBatch Batch =
      compileFunctionsParallel(Service, W, RunConfig::DBDS, Opts, Spec.Name);

  ASSERT_EQ(Batch.Outcomes.size(), 2u);
  for (const FunctionCompileOutcome &O : Batch.Outcomes) {
    ASSERT_TRUE(O.Exhausted);
    ASSERT_FALSE(O.CrashBundle.empty());

    // The manifest is written last: its presence marks a complete bundle.
    std::string Manifest = readWholeFile(O.CrashBundle + "/manifest.json");
    ASSERT_FALSE(Manifest.empty()) << O.CrashBundle;
    EXPECT_NE(Manifest.find("\"schema\": \"dbds-crash-bundle\""),
              std::string::npos);
    EXPECT_NE(Manifest.find("\"reproduced\": true"), std::string::npos)
        << Manifest;

    // Self-containment: both IR artifacts parse on their own, and the
    // reduced reproducer is no larger than the input.
    ParseResult Input =
        parseModule(readWholeFile(O.CrashBundle + "/input.ir"));
    ASSERT_TRUE(Input) << Input.Error;
    ParseResult Reduced =
        parseModule(readWholeFile(O.CrashBundle + "/reduced.ir"));
    ASSERT_TRUE(Reduced) << Reduced.Error;

    // Replay from artifacts alone: the recorded final-attempt seed over
    // the parsed input must reproduce the rollback.
    const CompileAttempt &Final = O.Attempts.back();
    Function *Focus =
        Input.Mod->getFunction(W.Mod->functions()[&O - &Batch.Outcomes[0]]
                                   ->getName());
    ASSERT_NE(Focus, nullptr);
    unsigned Rollbacks = replayCrashCompile(
        *Input.Mod, *Focus, Final.FaultSeed, Injector.rate(),
        Injector.kindMask(), Final.Forced, "dbds");
    EXPECT_GT(Rollbacks, 0u);
  }
}

TEST(CrashBundleTest, NoBundleWithoutExhaustion) {
  // A clean supervised run (no faults) must not write bundles.
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/5500, /*Benchmarks=*/1, /*Functions=*/2,
                           /*Segments=*/3)
          .Benchmarks[0];
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Jobs = 2;
  Opts.MaxAttempts = 2;
  Opts.CrashBundleDir = "supervision-bundles-clean";

  GeneratedWorkload W = generateWorkload(Spec.Config);
  CompileService Service(Opts.Jobs);
  CompileBatch Batch =
      compileFunctionsParallel(Service, W, RunConfig::DBDS, Opts, Spec.Name);
  for (const FunctionCompileOutcome &O : Batch.Outcomes) {
    EXPECT_FALSE(O.Exhausted);
    EXPECT_TRUE(O.CrashBundle.empty());
    EXPECT_EQ(O.Attempts.size(), 1u);
  }
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

TEST(BreakerTest, RepeatedCorruptionDisablesThePhase) {
  // CorruptIR at rate 1.0 quarantines phases on every task; with a low
  // threshold the breaker must trip, record which phase it disabled, and
  // later attempts must skip it (observable as a breaker-skip counter).
  BenchmarkSpec Spec =
      generatorCorpusSuite(/*Seed=*/5600, /*Benchmarks=*/1, /*Functions=*/4,
                           /*Segments=*/3)
          .Benchmarks[0];
  FaultInjector Injector(17, 1.0, FaultInjector::MaskCorruptIR);
  DiagnosticEngine Diags;
  RunnerOptions Opts;
  Opts.Verify = true;
  Opts.Injector = &Injector;
  Opts.Diags = &Diags;
  Opts.Jobs = 4;
  Opts.MaxAttempts = 3;
  Opts.BreakerThreshold = 2;

  GeneratedWorkload W = generateWorkload(Spec.Config);
  CompileService Service(Opts.Jobs);
  CompileBatch Batch =
      compileFunctionsParallel(Service, W, RunConfig::DBDS, Opts, Spec.Name);

  EXPECT_FALSE(Batch.BreakerTrips.empty());
  for (const std::string &Trip : Batch.BreakerTrips)
    EXPECT_NE(Trip.find("attributed corruption"), std::string::npos) << Trip;
  // The trip is also surfaced as a diagnostic for the driver's report.
  EXPECT_NE(Diags.render().find("circuit breaker tripped"),
            std::string::npos);
}
