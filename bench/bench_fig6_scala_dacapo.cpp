//===- bench/bench_fig6_scala_dacapo.cpp - Figure 6 reproduction ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E2 (DESIGN.md): Figure 6 — Scala DaCapo. Paper geomeans:
// DBDS +3.15% peak / +11.32% ct / +6.88% cs; dupalot +2.07% / +28.40% /
// +26.27%. Expected shape: mid-size peak gains (boxing/escape traffic),
// dupalot trailing DBDS on peak at 2-4x the code size.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

int main(int argc, char **argv) {
  return dbds::runFigureMain(argc, argv, "Figure 6: Scala DaCapo",
                             dbds::scalaDaCapoSuite());
}
