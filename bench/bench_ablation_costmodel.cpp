//===- bench/bench_ablation_costmodel.cpp - §4.1/§5.3 cost model ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiments E7 and E11 (DESIGN.md): the node cost model's micro-claims.
//
//   E7 (§4.1 / Figure 3): a division costs 32 model cycles, a shift 1;
//       simulating the duplication of x / phi(.., 2) must therefore
//       report CS = 31 on the constant predecessor.
//
//   E11 (Figure 4): a merge behind a 90%/10% split whose hot path folds a
//       2-cycle multiply goes from 14.0 expected cycles to 12.2 in the
//       paper's hand calculation; we reproduce the same accounting with
//       our estimator and verify the post-duplication expected cycles
//       drop accordingly.
//
//===----------------------------------------------------------------------===//

#include "dbds/CostModel.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"

#include <cstdio>
#include <cstdlib>

using namespace dbds;

namespace {

const char *Figure3Source = R"(
func @f(int, int, int) {
b0:
  %a = param 0
  %b = param 1
  %xr = param 2
  %mask = const 1023
  %x = and %xr, %mask
  %c = cmp gt %a, %b
  if %c, b1, b2 !0.5
b1:
  %one = const 1
  %y = add %x, %one
  jump b3
b2:
  %two = const 2
  jump b3
b3:
  %phi = phi int [%y, b1], [%two, b2]
  %div = div %x, %phi
  ret %div
}
)";

const char *Figure4Source = R"(
func @f(int) {
b0:
  %p = param 0
  %zero = const 0
  %c = cmp gt %p, %zero
  if %c, b1, b2 !0.9
b1:
  jump b3
b2:
  jump b3
b3:
  %phi = phi int [%p, b1], [%zero, b2]
  %three = const 3
  %m = mul %phi, %three
  ret %m
}
)";

} // namespace

int main() {
  printf("# E7/E11: node cost model micro-claims\n\n");

  // E7: CS = 32 - 1 = 31 for division -> shift.
  {
    ParseResult R = parseModule(Figure3Source);
    if (!R) {
      fprintf(stderr, "parse error: %s\n", R.Error.c_str());
      return 1;
    }
    Function *F = R.Mod->functions()[0];
    auto Candidates = simulateDuplications(*F, R.Mod.get());
    printf("E7 Figure 3: div=%u cycles, shr=%u cycles\n",
           opcodeCycles(Opcode::Div), opcodeCycles(Opcode::Shr));
    for (const auto &C : Candidates)
      printf("  candidate merge=b%u pred=b%u: cycles saved = %.1f "
             "(paper: 31)\n",
             C.MergeId, C.PredId, C.CyclesSaved);
  }

  // E11: Figure 4 expected-cycle accounting.
  {
    ParseResult R = parseModule(Figure4Source);
    if (!R) {
      fprintf(stderr, "parse error: %s\n", R.Error.c_str());
      return 1;
    }
    Function *F = R.Mod->functions()[0];
    double Before = expectedCycles(*F);
    DBDSConfig Config;
    Config.ClassTable = R.Mod.get();
    Config.Verify = false;
    runDBDS(*F, Config);
    double After = expectedCycles(*F);
    printf("\nE11 Figure 4: expected cycles %.2f -> %.2f "
           "(paper's example: 14.0 -> 12.2; shape: the 10%%-path constant "
           "fold removes its share of the multiply)\n",
           Before, After);
    if (After >= Before) {
      fprintf(stderr, "expected cycles did not drop\n");
      return 1;
    }
  }
  return 0;
}
