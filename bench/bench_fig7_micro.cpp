//===- bench/bench_fig7_micro.cpp - Figure 7 reproduction ------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E3 (DESIGN.md): Figure 7 — the Java/Scala micro benchmarks
// (streams/lambdas). Paper geomeans: DBDS +8.07% peak / +15.38% ct /
// +11.53% cs; dupalot +8.57% / +26.41% / +25.78%. Expected shape: the
// largest peak gains of all suites (escape analysis + redundant checks,
// §6.2), with individual benchmarks up to ~40%.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

int main(int argc, char **argv) {
  return dbds::runFigureMain(argc, argv,
                             "Figure 7: Java/Scala micro benchmarks",
                             dbds::microSuite());
}
