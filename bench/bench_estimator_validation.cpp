//===- bench/bench_estimator_validation.cpp - §8 estimator validation -----===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's second §8 plan: "we plan to validate the presented IR
// performance estimator ... experiments validating a correlation between
// our benefit and cost estimations and the real performance and code size
// of an application."
//
// This bench runs that experiment on this substrate: across many
// generated compilation units it correlates
//   (a) the static expected-cycles estimate (frequency-weighted node
//       costs, Figure 4's arithmetic) against measured dynamic cycles,
//   (b) the static per-candidate cycles-saved estimate against the real
//       measured improvement of performing exactly that duplication.
// Expected shape: strong positive correlation for (a); positive but
// noisier correlation for (b) (the estimator ignores second-order
// cleanups) — which is the paper's justification for using the estimator
// as a ranking, not an absolute predictor.
//
//===----------------------------------------------------------------------===//

#include "dbds/CostModel.h"
#include "dbds/DBDSPhase.h"
#include "dbds/Duplicator.h"
#include "dbds/Simulator.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace dbds;

namespace {

double pearson(const std::vector<double> &X, const std::vector<double> &Y) {
  double MX = 0, MY = 0;
  for (size_t I = 0; I != X.size(); ++I) {
    MX += X[I];
    MY += Y[I];
  }
  MX /= static_cast<double>(X.size());
  MY /= static_cast<double>(Y.size());
  double Cov = 0, VX = 0, VY = 0;
  for (size_t I = 0; I != X.size(); ++I) {
    Cov += (X[I] - MX) * (Y[I] - MY);
    VX += (X[I] - MX) * (X[I] - MX);
    VY += (Y[I] - MY) * (Y[I] - MY);
  }
  return Cov / std::sqrt(VX * VY);
}

} // namespace

int main() {
  printf("# §8: validating the static performance estimator\n\n");

  // (a) Whole-unit expected cycles vs measured dynamic cycles.
  std::vector<double> Estimated, Measured;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    GeneratorConfig GC;
    GC.Seed = Seed * 977;
    GC.NumFunctions = 1;
    GC.SegmentsPerFunction = 3 + Seed % 6;
    GC.ColdSegments = Seed % 8;
    GeneratedWorkload W = generateWorkload(GC);
    Function &F = *W.Mod->functions()[0];
    Interpreter Interp(*W.Mod);
    ProfileSummary P;
    for (const auto &A : W.TrainInputs[0]) {
      Interp.reset();
      Interp.run(F, ArrayRef<int64_t>(A), 1u << 24, &P);
    }
    applyProfile(F, P);
    Estimated.push_back(expectedCycles(F));
    uint64_t Cycles = 0;
    for (const auto &A : W.EvalInputs[0]) {
      Interp.reset();
      Cycles += Interp.run(F, ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
    }
    Measured.push_back(static_cast<double>(Cycles));
  }
  printf("(a) expected cycles vs measured cycles over %zu units: "
         "Pearson r = %.3f (expect strongly positive)\n",
         Estimated.size(), pearson(Estimated, Measured));

  // (b) Per-candidate cycles-saved estimate vs realized improvement.
  std::vector<double> PredictedSavings, RealizedSavings;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    GeneratorConfig GC;
    GC.Seed = Seed * 7919;
    GC.NumFunctions = 1;
    GC.SegmentsPerFunction = 4;
    GC.ColdSegments = 2;
    GeneratedWorkload W = generateWorkload(GC);
    Function &F = *W.Mod->functions()[0];
    Interpreter Interp(*W.Mod);
    ProfileSummary P;
    for (const auto &A : W.TrainInputs[0]) {
      Interp.reset();
      Interp.run(F, ArrayRef<int64_t>(A), 1u << 24, &P);
    }
    applyProfile(F, P);
    PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
    PM.run(F);

    auto Candidates = simulateDuplications(F, W.Mod.get());
    if (Candidates.empty())
      continue;
    // Take the hottest candidate and perform exactly that duplication.
    const DuplicationCandidate *Best = &Candidates[0];
    for (const auto &C : Candidates)
      if (C.benefit() > Best->benefit())
        Best = &C;
    Block *M = F.getBlockById(Best->MergeId);
    Block *Pred = F.getBlockById(Best->PredId);
    if (!M || !Pred || !canDuplicateInto(M, Pred))
      continue;

    uint64_t Before = 0, After = 0;
    for (const auto &A : W.EvalInputs[0]) {
      Interp.reset();
      Before += Interp.run(F, ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
    }
    duplicateIntoPredecessor(F, M, Pred);
    PM.run(F); // the follow-up action steps
    for (const auto &A : W.EvalInputs[0]) {
      Interp.reset();
      After += Interp.run(F, ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
    }
    PredictedSavings.push_back(Best->benefit());
    RealizedSavings.push_back(static_cast<double>(Before) -
                              static_cast<double>(After));
  }
  printf("(b) candidate benefit estimate vs realized cycle savings over "
         "%zu duplications: Pearson r = %.3f (expect positive)\n",
         PredictedSavings.size(),
         pearson(PredictedSavings, RealizedSavings));
  return 0;
}
