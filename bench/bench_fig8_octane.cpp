//===- bench/bench_fig8_octane.cpp - Figure 8 reproduction -----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E4 (DESIGN.md): Figure 8 — JavaScript Octane on a Graal
// JS-like profile (partial-evaluator output: condition chains, allocation
// outliers). Paper geomeans: DBDS +8.81% peak / +22.48% ct / +7.31% cs;
// dupalot +6.66% / +42.63% / +25.58%. Expected shape: strong peak gains;
// E10: at least one benchmark (raytrace-like) where dupalot trails DBDS
// noticeably.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

int main(int argc, char **argv) {
  std::vector<dbds::BenchmarkMeasurement> Rows;
  int Exit = dbds::runFigureMain(argc, argv, "Figure 8: JavaScript Octane",
                                 dbds::octaneSuite(), &Rows);
  if (Exit != 0)
    return Exit;
  // E10 check: print the dupalot-vs-DBDS peak gap for raytrace.
  for (const auto &M : Rows) {
    if (M.Name != "raytrace")
      continue;
    printf("raytrace dupalot-vs-DBDS peak gap: %.2f%% (paper: dupalot 15%% "
           "slower than baseline on this benchmark)\n",
           M.peakImprovementPercent(M.DupALot) -
               M.peakImprovementPercent(M.DBDS));
  }
  return 0;
}
