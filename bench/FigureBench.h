//===- bench/FigureBench.h - Shared figure-reproduction driver --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the per-figure benchmark binaries (Figures 5-8):
/// measures one suite under baseline / dbds / dupalot and prints the
/// per-benchmark rows plus the geometric-mean footer the paper reports
/// under each figure.
///
/// All flags come from the shared driver-option table
/// (tooling/DriverOptions.h) — run any figure binary with --help for the
/// generated list. The default run is byte-identical to the
/// pre-telemetry drivers.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_BENCH_FIGUREBENCH_H
#define DBDS_BENCH_FIGUREBENCH_H

#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Report.h"
#include "telemetry/Trace.h"
#include "tooling/DriverOptions.h"
#include "workloads/CompileCache.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

namespace dbds {

/// Runs \p Suite and prints the paper-style report. Returns the rows for
/// further aggregation.
inline std::vector<BenchmarkMeasurement>
runFigure(const char *FigureName, const SuiteSpec &Suite) {
  printf("# %s — configurations: baseline (DBDS off), DBDS, dupalot "
         "(no trade-off)\n",
         FigureName);
  printf("# peak: %% faster than baseline (higher is better)\n");
  printf("# ct:   %% compile-time increase (lower is better)\n");
  printf("# cs:   %% code-size increase (lower is better)\n");
  std::vector<BenchmarkMeasurement> Rows = measureSuite(Suite);
  printf("%s\n", formatSuiteReport(Suite.Name, Rows).c_str());
  return Rows;
}

/// The figure drivers' option state: everything is a shared flag.
struct FigureOptions {
  DriverOptions Driver;
  bool Ok = true;
  bool ShowedHelp = false;
};

/// The full shared-flag subset the figure binaries support.
inline DriverOptionsParser makeFigureParser(DriverOptions &D) {
  return DriverOptionsParser(
      D, {DriverFlag::Trace, DriverFlag::Remarks, DriverFlag::Counters,
          DriverFlag::JsonOut, DriverFlag::Jobs, DriverFlag::Metrics,
          DriverFlag::Flamegraph, DriverFlag::PollMask,
          DriverFlag::MaxAttempts, DriverFlag::TaskDeadlineMs,
          DriverFlag::BreakerThreshold, DriverFlag::BreakerHalfOpen,
          DriverFlag::CrashBundleDir, DriverFlag::SimAudit,
          DriverFlag::CompileCache, DriverFlag::CacheDir});
}

inline FigureOptions parseFigureOptions(int argc, char **argv,
                                        const SuiteSpec &Suite) {
  FigureOptions O;
  O.Driver.JsonOutDefault = "BENCH_" + Suite.Name + ".json";
  DriverOptionsParser P = makeFigureParser(O.Driver);
  for (int I = 1; I < argc; ++I) {
    switch (P.parse(argv[I])) {
    case ParseStatus::Handled:
      break;
    case ParseStatus::Help:
      printf("usage: %s %s\noptions:\n%s", argv[0], P.usage().c_str(),
             P.helpText().c_str());
      O.ShowedHelp = true;
      return O;
    case ParseStatus::Error:
      fprintf(stderr, "%s: %s\n", argv[0], P.error().c_str());
      O.Ok = false;
      return O;
    case ParseStatus::Unrecognized:
      fprintf(stderr, "unknown option: %s\nusage: %s %s\n", argv[I],
              argv[0], P.usage().c_str());
      O.Ok = false;
      return O;
    }
  }
  return O;
}

/// Flag-aware main body shared by the figure binaries: measures \p Suite,
/// prints the paper-style report, and emits whatever telemetry artifacts
/// the flags request. Returns the process exit code.
inline int runFigureMain(int argc, char **argv, const char *FigureName,
                         const SuiteSpec &Suite,
                         std::vector<BenchmarkMeasurement> *RowsOut = nullptr) {
  FigureOptions FO = parseFigureOptions(argc, argv, Suite);
  if (FO.ShowedHelp)
    return 0;
  if (!FO.Ok)
    return 2;
  const DriverOptions &O = FO.Driver;

  TraceSession Session;
  DecisionLog Decisions;
  RunnerOptions Opts = O.toRunnerOptions();
  if (!O.RemarksPath.empty())
    Opts.Decisions = &Decisions;
  Opts.CollectCounters = O.DumpCounters || !O.JsonOutPath.empty();
  std::optional<CompileCache> Cache;
  if (O.UseCompileCache) {
    Cache.emplace(O.CacheDir);
    Opts.Cache = &*Cache;
  }
  if (reportInvalidRunnerOptions(Opts, argv[0]))
    return 2;

  printf("# %s — configurations: baseline (DBDS off), DBDS, dupalot "
         "(no trade-off)\n",
         FigureName);
  printf("# peak: %% faster than baseline (higher is better)\n");
  printf("# ct:   %% compile-time increase (lower is better)\n");
  printf("# cs:   %% code-size increase (lower is better)\n");

  if (O.Metrics) {
    MetricsRegistry::setEnabled(true);
    MetricsRegistry::instance().resetAll();
  }

  std::vector<BenchmarkMeasurement> Rows;
  {
    std::optional<ScopedTraceAttach> Attach;
    // The flamegraph is folded from the trace spans, so requesting one
    // attaches the session even without --trace.
    if (!O.TracePath.empty() || !O.FlamegraphPath.empty())
      Attach.emplace(Session);
    Rows = measureSuite(Suite, Opts);
  }
  printf("%s\n", formatSuiteReport(Suite.Name, Rows).c_str());

  std::vector<HistogramSample> MetricsSnapshot;
  if (O.Metrics) {
    MetricsSnapshot = MetricsRegistry::instance().snapshot();
    printf("=== metrics ===\n%s",
           MetricsRegistry::renderTable(MetricsSnapshot).c_str());
  }

  if (O.DumpCounters) {
    printf("=== telemetry counters ===\n%s",
           CounterRegistry::renderText(
               CounterRegistry::instance().snapshot(/*SkipZero=*/true))
               .c_str());
  }

  std::string Error;
  if (!O.TracePath.empty()) {
    if (!Session.writeJson(O.TracePath, &Error)) {
      fprintf(stderr, "--trace: %s\n", Error.c_str());
      return 1;
    }
    printf("trace written to %s (%zu events)\n", O.TracePath.c_str(),
           Session.eventCount());
  }
  if (!O.RemarksPath.empty()) {
    if (!Decisions.writeJsonl(O.RemarksPath, &Error)) {
      fprintf(stderr, "--remarks: %s\n", Error.c_str());
      return 1;
    }
    printf("remarks written to %s (%zu decisions)\n", O.RemarksPath.c_str(),
           Decisions.decisions().size());
  }
  if (!O.FlamegraphPath.empty()) {
    if (!Session.writeFolded(O.FlamegraphPath, &Error)) {
      fprintf(stderr, "--flamegraph: %s\n", Error.c_str());
      return 1;
    }
    printf("folded flamegraph written to %s\n", O.FlamegraphPath.c_str());
  }
  if (!O.JsonOutPath.empty()) {
    if (!writeBenchJson(O.JsonOutPath, Suite.Name, Rows, &Error,
                        O.Metrics ? &MetricsSnapshot : nullptr)) {
      fprintf(stderr, "--json-out: %s\n", Error.c_str());
      return 1;
    }
    printf("bench report written to %s\n", O.JsonOutPath.c_str());
  }
  if (RowsOut)
    *RowsOut = std::move(Rows);
  return 0;
}

} // namespace dbds

#endif // DBDS_BENCH_FIGUREBENCH_H
