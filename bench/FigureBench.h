//===- bench/FigureBench.h - Shared figure-reproduction driver --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the per-figure benchmark binaries (Figures 5-8):
/// measures one suite under baseline / dbds / dupalot and prints the
/// per-benchmark rows plus the geometric-mean footer the paper reports
/// under each figure.
///
/// Telemetry flags (all optional; the default run is byte-identical to
/// the pre-telemetry drivers):
///   --trace=FILE    write a Chrome trace_event JSON (Perfetto-loadable)
///                   covering the whole measurement
///   --remarks=FILE  write the DBDS duplication decision log as JSONL
///   --counters      dump the telemetry counter registry after the run
///   --json-out[=F]  write the machine-readable BENCH_<suite>.json report
///                   (default file name when =F is omitted)
///   --jobs=N        compile functions on N worker threads (0 = one per
///                   hardware thread; default 1). Every output except
///                   wall-clock compile time is identical to --jobs=1.
///   --metrics       enable the histogram metrics registry: prints the
///                   percentile table after the run and adds the
///                   "metrics" section to --json-out reports
///   --flamegraph=F  write a collapsed-stack (folded) profile derived
///                   from the trace spans — loadable by flamegraph.pl
///                   and speedscope; implies trace collection
///   --poll-mask=N   interpreter cancellation-poll stride (power of two,
///                   default 128; tune against interpreter.poll_ns)
///
/// Supervision flags (workloads/CompileService.h; all off by default):
///   --max-attempts=N       retry ladder depth per task (1-3)
///   --task-deadline-ms=MS  per-attempt wall-clock deadline
///   --breaker-threshold=N  per-phase circuit breaker trip count
///   --breaker-half-open=N  re-enable a tripped phase after N clean tasks
///   --crash-bundle-dir=D   write crash bundles for exhausted tasks to D
///   --simaudit             audit simulator predictions against dataflow
///                          facts; adds the simulation_audit JSON section
///
/// Compile-cache flags (workloads/CompileCache.h; off by default):
///   --compile-cache[=DIR]  content-addressed compile cache; a hit replays
///                          the memoized compile byte-identically. With
///                          =DIR, entries also persist to DIR across runs
///   --cache-dir=DIR        like --compile-cache=DIR
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_BENCH_FIGUREBENCH_H
#define DBDS_BENCH_FIGUREBENCH_H

#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Report.h"
#include "telemetry/Trace.h"
#include "workloads/CompileCache.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

namespace dbds {

/// Runs \p Suite and prints the paper-style report. Returns the rows for
/// further aggregation.
inline std::vector<BenchmarkMeasurement>
runFigure(const char *FigureName, const SuiteSpec &Suite) {
  printf("# %s — configurations: baseline (DBDS off), DBDS, dupalot "
         "(no trade-off)\n",
         FigureName);
  printf("# peak: %% faster than baseline (higher is better)\n");
  printf("# ct:   %% compile-time increase (lower is better)\n");
  printf("# cs:   %% code-size increase (lower is better)\n");
  std::vector<BenchmarkMeasurement> Rows = measureSuite(Suite);
  printf("%s\n", formatSuiteReport(Suite.Name, Rows).c_str());
  return Rows;
}

/// Telemetry options shared by the figure drivers.
struct FigureOptions {
  std::string TracePath;
  std::string RemarksPath;
  std::string JsonOutPath;
  std::string FlamegraphPath;
  bool DumpCounters = false;
  bool Metrics = false;
  unsigned Jobs = 1;
  unsigned PollInterval = 128;
  unsigned MaxAttempts = 1;
  double TaskDeadlineMs = 0.0;
  unsigned BreakerThreshold = 0;
  unsigned BreakerHalfOpenAfter = 0;
  std::string CrashBundleDir;
  bool SimAudit = false;
  bool UseCompileCache = false;
  std::string CacheDir;
  bool Ok = true;
};

inline FigureOptions parseFigureOptions(int argc, char **argv,
                                        const SuiteSpec &Suite) {
  FigureOptions O;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (strncmp(Arg, "--trace=", 8) == 0) {
      O.TracePath = Arg + 8;
    } else if (strncmp(Arg, "--remarks=", 10) == 0) {
      O.RemarksPath = Arg + 10;
    } else if (strcmp(Arg, "--counters") == 0) {
      O.DumpCounters = true;
    } else if (strcmp(Arg, "--json-out") == 0) {
      O.JsonOutPath = "BENCH_" + Suite.Name + ".json";
    } else if (strncmp(Arg, "--json-out=", 11) == 0) {
      O.JsonOutPath = Arg + 11;
    } else if (strncmp(Arg, "--jobs=", 7) == 0) {
      O.Jobs = static_cast<unsigned>(strtoul(Arg + 7, nullptr, 10));
    } else if (strcmp(Arg, "--metrics") == 0) {
      O.Metrics = true;
    } else if (strncmp(Arg, "--flamegraph=", 13) == 0) {
      O.FlamegraphPath = Arg + 13;
    } else if (strncmp(Arg, "--poll-mask=", 12) == 0) {
      O.PollInterval = static_cast<unsigned>(strtoul(Arg + 12, nullptr, 10));
      if (O.PollInterval == 0 ||
          (O.PollInterval & (O.PollInterval - 1)) != 0) {
        fprintf(stderr, "--poll-mask: %u is not a power of two\n",
                O.PollInterval);
        O.Ok = false;
        return O;
      }
    } else if (strncmp(Arg, "--max-attempts=", 15) == 0) {
      O.MaxAttempts = static_cast<unsigned>(strtoul(Arg + 15, nullptr, 10));
    } else if (strncmp(Arg, "--task-deadline-ms=", 19) == 0) {
      O.TaskDeadlineMs = strtod(Arg + 19, nullptr);
    } else if (strncmp(Arg, "--breaker-threshold=", 20) == 0) {
      O.BreakerThreshold =
          static_cast<unsigned>(strtoul(Arg + 20, nullptr, 10));
    } else if (strncmp(Arg, "--breaker-half-open=", 20) == 0) {
      O.BreakerHalfOpenAfter =
          static_cast<unsigned>(strtoul(Arg + 20, nullptr, 10));
    } else if (strncmp(Arg, "--crash-bundle-dir=", 19) == 0) {
      O.CrashBundleDir = Arg + 19;
    } else if (strcmp(Arg, "--simaudit") == 0) {
      O.SimAudit = true;
    } else if (strcmp(Arg, "--compile-cache") == 0) {
      O.UseCompileCache = true;
    } else if (strncmp(Arg, "--compile-cache=", 16) == 0) {
      O.UseCompileCache = true;
      O.CacheDir = Arg + 16;
    } else if (strncmp(Arg, "--cache-dir=", 12) == 0) {
      O.UseCompileCache = true;
      O.CacheDir = Arg + 12;
    } else {
      fprintf(stderr,
              "unknown option: %s\nusage: %s [--trace=FILE] "
              "[--remarks=FILE] [--counters] [--json-out[=FILE]] "
              "[--jobs=N] [--metrics] [--flamegraph=FILE] [--poll-mask=N] "
              "[--max-attempts=N] [--task-deadline-ms=MS] "
              "[--breaker-threshold=N] [--breaker-half-open=N] "
              "[--crash-bundle-dir=DIR] [--simaudit] "
              "[--compile-cache[=DIR]] [--cache-dir=DIR]\n",
              Arg, argv[0]);
      O.Ok = false;
      return O;
    }
  }
  return O;
}

/// Flag-aware main body shared by the figure binaries: measures \p Suite,
/// prints the paper-style report, and emits whatever telemetry artifacts
/// the flags request. Returns the process exit code.
inline int runFigureMain(int argc, char **argv, const char *FigureName,
                         const SuiteSpec &Suite,
                         std::vector<BenchmarkMeasurement> *RowsOut = nullptr) {
  FigureOptions O = parseFigureOptions(argc, argv, Suite);
  if (!O.Ok)
    return 2;

  printf("# %s — configurations: baseline (DBDS off), DBDS, dupalot "
         "(no trade-off)\n",
         FigureName);
  printf("# peak: %% faster than baseline (higher is better)\n");
  printf("# ct:   %% compile-time increase (lower is better)\n");
  printf("# cs:   %% code-size increase (lower is better)\n");

  TraceSession Session;
  DecisionLog Decisions;
  RunnerOptions Opts;
  if (!O.RemarksPath.empty())
    Opts.Decisions = &Decisions;
  Opts.CollectCounters = O.DumpCounters || !O.JsonOutPath.empty();
  Opts.Jobs = O.Jobs;
  Opts.PollInterval = O.PollInterval;
  Opts.MaxAttempts = O.MaxAttempts;
  Opts.TaskDeadlineMs = O.TaskDeadlineMs;
  Opts.BreakerThreshold = O.BreakerThreshold;
  Opts.BreakerHalfOpenAfter = O.BreakerHalfOpenAfter;
  Opts.CrashBundleDir = O.CrashBundleDir;
  Opts.SimAudit = O.SimAudit;
  std::optional<CompileCache> Cache;
  if (O.UseCompileCache) {
    Cache.emplace(O.CacheDir);
    Opts.Cache = &*Cache;
  }

  if (O.Metrics) {
    MetricsRegistry::setEnabled(true);
    MetricsRegistry::instance().resetAll();
  }

  std::vector<BenchmarkMeasurement> Rows;
  {
    std::optional<ScopedTraceAttach> Attach;
    // The flamegraph is folded from the trace spans, so requesting one
    // attaches the session even without --trace.
    if (!O.TracePath.empty() || !O.FlamegraphPath.empty())
      Attach.emplace(Session);
    Rows = measureSuite(Suite, Opts);
  }
  printf("%s\n", formatSuiteReport(Suite.Name, Rows).c_str());

  std::vector<HistogramSample> MetricsSnapshot;
  if (O.Metrics) {
    MetricsSnapshot = MetricsRegistry::instance().snapshot();
    printf("=== metrics ===\n%s",
           MetricsRegistry::renderTable(MetricsSnapshot).c_str());
  }

  if (O.DumpCounters) {
    printf("=== telemetry counters ===\n%s",
           CounterRegistry::renderText(
               CounterRegistry::instance().snapshot(/*SkipZero=*/true))
               .c_str());
  }

  std::string Error;
  if (!O.TracePath.empty()) {
    if (!Session.writeJson(O.TracePath, &Error)) {
      fprintf(stderr, "--trace: %s\n", Error.c_str());
      return 1;
    }
    printf("trace written to %s (%zu events)\n", O.TracePath.c_str(),
           Session.eventCount());
  }
  if (!O.RemarksPath.empty()) {
    if (!Decisions.writeJsonl(O.RemarksPath, &Error)) {
      fprintf(stderr, "--remarks: %s\n", Error.c_str());
      return 1;
    }
    printf("remarks written to %s (%zu decisions)\n", O.RemarksPath.c_str(),
           Decisions.decisions().size());
  }
  if (!O.FlamegraphPath.empty()) {
    if (!Session.writeFolded(O.FlamegraphPath, &Error)) {
      fprintf(stderr, "--flamegraph: %s\n", Error.c_str());
      return 1;
    }
    printf("folded flamegraph written to %s\n", O.FlamegraphPath.c_str());
  }
  if (!O.JsonOutPath.empty()) {
    if (!writeBenchJson(O.JsonOutPath, Suite.Name, Rows, &Error,
                        O.Metrics ? &MetricsSnapshot : nullptr)) {
      fprintf(stderr, "--json-out: %s\n", Error.c_str());
      return 1;
    }
    printf("bench report written to %s\n", O.JsonOutPath.c_str());
  }
  if (RowsOut)
    *RowsOut = std::move(Rows);
  return 0;
}

} // namespace dbds

#endif // DBDS_BENCH_FIGUREBENCH_H
