//===- bench/FigureBench.h - Shared figure-reproduction driver --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the per-figure benchmark binaries (Figures 5-8):
/// measures one suite under baseline / dbds / dupalot and prints the
/// per-benchmark rows plus the geometric-mean footer the paper reports
/// under each figure.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_BENCH_FIGUREBENCH_H
#define DBDS_BENCH_FIGUREBENCH_H

#include "workloads/Runner.h"

#include <cstdio>

namespace dbds {

/// Runs \p Suite and prints the paper-style report. Returns the rows for
/// further aggregation.
inline std::vector<BenchmarkMeasurement>
runFigure(const char *FigureName, const SuiteSpec &Suite) {
  printf("# %s — configurations: baseline (DBDS off), DBDS, dupalot "
         "(no trade-off)\n",
         FigureName);
  printf("# peak: %% faster than baseline (higher is better)\n");
  printf("# ct:   %% compile-time increase (lower is better)\n");
  printf("# cs:   %% code-size increase (lower is better)\n");
  std::vector<BenchmarkMeasurement> Rows = measureSuite(Suite);
  printf("%s\n", formatSuiteReport(Suite.Name, Rows).c_str());
  return Rows;
}

} // namespace dbds

#endif // DBDS_BENCH_FIGUREBENCH_H
