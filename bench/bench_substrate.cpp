//===- bench/bench_substrate.cpp - Substrate micro-benchmarks -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark micro-benchmarks of the compiler substrate itself:
// dominator tree construction, the DBDS simulation tier, the duplication
// transformation, the cleanup pipeline, IR cloning (the backtracking
// cost), parsing/printing, and the interpreter. These back the §3.1
// argument quantitatively: simulation must be much cheaper than cloning
// the IR per candidate.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "analysis/Loops.h"
#include "dbds/Duplicator.h"
#include "dbds/Simulator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"

#include <benchmark/benchmark.h>

using namespace dbds;

namespace {

GeneratedWorkload makeUnit(int Segments) {
  GeneratorConfig Config;
  Config.Seed = 0x5B;
  Config.NumFunctions = 1;
  Config.SegmentsPerFunction = static_cast<unsigned>(Segments);
  Config.ColdSegments = static_cast<unsigned>(Segments);
  return generateWorkload(Config);
}

void BM_DominatorTreeConstruction(benchmark::State &State) {
  GeneratedWorkload W = makeUnit(static_cast<int>(State.range(0)));
  Function &F = *W.Mod->functions()[0];
  for (auto _ : State) {
    DominatorTree DT(F);
    benchmark::DoNotOptimize(DT.rpo().size());
  }
  State.counters["blocks"] = static_cast<double>(F.getNumBlocks());
}
BENCHMARK(BM_DominatorTreeConstruction)->Arg(4)->Arg(16)->Arg(64);

void BM_SimulationTier(benchmark::State &State) {
  GeneratedWorkload W = makeUnit(static_cast<int>(State.range(0)));
  Function &F = *W.Mod->functions()[0];
  for (auto _ : State) {
    auto Candidates = simulateDuplications(F, W.Mod.get());
    benchmark::DoNotOptimize(Candidates.size());
  }
  State.counters["insts"] = static_cast<double>(F.instructionCount());
}
BENCHMARK(BM_SimulationTier)->Arg(4)->Arg(16)->Arg(64);

void BM_FunctionClone(benchmark::State &State) {
  // The whole-IR snapshot the backtracking baseline takes per candidate.
  GeneratedWorkload W = makeUnit(static_cast<int>(State.range(0)));
  Function &F = *W.Mod->functions()[0];
  for (auto _ : State) {
    auto Copy = F.clone();
    benchmark::DoNotOptimize(Copy->instructionCount());
  }
  State.counters["insts"] = static_cast<double>(F.instructionCount());
}
BENCHMARK(BM_FunctionClone)->Arg(4)->Arg(16)->Arg(64);

void BM_DuplicateOnePair(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    GeneratedWorkload W = makeUnit(8);
    Function &F = *W.Mod->functions()[0];
    Block *Merge = nullptr, *Pred = nullptr;
    DominatorTree DT(F);
    LoopInfo LI(F, DT);
    for (Block *B : F.blocks()) {
      if (!B->isMerge() || LI.isLoopHeader(B))
        continue;
      for (Block *P : B->preds())
        if (canDuplicateInto(B, P)) {
          Merge = B;
          Pred = P;
          break;
        }
      if (Merge)
        break;
    }
    State.ResumeTiming();
    if (Merge)
      duplicateIntoPredecessor(F, Merge, Pred);
  }
}
BENCHMARK(BM_DuplicateOnePair);

void BM_CleanupPipeline(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    GeneratedWorkload W = makeUnit(8);
    Function &F = *W.Mod->functions()[0];
    State.ResumeTiming();
    PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
    PM.run(F);
  }
}
BENCHMARK(BM_CleanupPipeline);

void BM_PrintParseRoundTrip(benchmark::State &State) {
  GeneratedWorkload W = makeUnit(8);
  for (auto _ : State) {
    std::string Text = printModule(W.Mod.get());
    ParseResult R = parseModule(Text);
    benchmark::DoNotOptimize(R.Mod->functions().size());
  }
}
BENCHMARK(BM_PrintParseRoundTrip);

void BM_Interpreter(benchmark::State &State) {
  GeneratedWorkload W = makeUnit(8);
  Function &F = *W.Mod->functions()[0];
  Interpreter Interp(*W.Mod);
  uint64_t Steps = 0;
  for (auto _ : State) {
    Interp.reset();
    ExecutionResult R =
        Interp.run(F, ArrayRef<int64_t>(W.EvalInputs[0][0]), 1u << 24);
    Steps += R.Steps;
    benchmark::DoNotOptimize(R.DynamicCycles);
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Interpreter);

} // namespace

BENCHMARK_MAIN();
