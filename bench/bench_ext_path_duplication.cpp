//===- bench/bench_ext_path_duplication.cpp - §8 extension evaluation -----===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's §8 future work, evaluated: "the current optimization tier
// cannot duplicate over multiple merges along paths although the
// simulation tier can simulate along paths. We want to conduct
// experiments evaluating ... if we can increase peak performance even
// further." This bench compares stock DBDS against DBDS with the
// path-duplication extension on all four suites' workload generators.
// Expected shape: a small additional peak improvement at a small
// additional code-size cost — chained merges are rarer than single ones.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "support/Statistics.h"
#include "vm/Interpreter.h"
#include "workloads/Suites.h"

#include <cstdio>

using namespace dbds;

namespace {

struct Outcome {
  uint64_t Cycles = 0, Size = 0;
  unsigned Dups = 0;
};

Outcome measure(const GeneratorConfig &GC, int Mode /*0 base 1 dbds 2 path*/) {
  GeneratedWorkload W = generateWorkload(GC);
  Outcome Out;
  Interpreter Interp(*W.Mod);
  Interp.enableCodeSizePenalty(192, 160, 1u << 20);
  auto Fs = W.Mod->functions();
  for (unsigned FI = 0; FI != Fs.size(); ++FI) {
    Function &F = *Fs[FI];
    ProfileSummary P;
    for (const auto &A : W.TrainInputs[FI]) {
      Interp.reset();
      Interp.run(F, ArrayRef<int64_t>(A), 1u << 24, &P);
    }
    applyProfile(F, P);
    PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
    PM.run(F);
    if (Mode != 0) {
      DBDSConfig DC;
      DC.ClassTable = W.Mod.get();
      DC.Verify = false;
      DC.EnablePathDuplication = Mode == 2;
      Out.Dups += runDBDS(F, DC).DuplicationsPerformed;
    }
    Out.Size += F.estimatedCodeSize();
    for (const auto &A : W.EvalInputs[FI]) {
      Interp.reset();
      Out.Cycles += Interp.run(F, ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
    }
  }
  return Out;
}

} // namespace

int main() {
  printf("# §8 extension: path duplication over two merges\n");
  printf("# (peak/code size %% vs baseline; 'dups' = duplications "
         "performed)\n\n");
  printf("%-14s | %19s | %25s\n", "suite", "DBDS peak cs dups",
         "DBDS+paths peak cs dups");

  std::vector<double> StockPeak, PathPeak;
  for (const SuiteSpec &Suite : allSuites()) {
    // One representative benchmark per suite keeps the bench fast.
    for (unsigned BI : {0u, 4u}) {
      if (BI >= Suite.Benchmarks.size())
        continue;
      const BenchmarkSpec &Spec = Suite.Benchmarks[BI];
      Outcome Base = measure(Spec.Config, 0);
      Outcome Stock = measure(Spec.Config, 1);
      Outcome Path = measure(Spec.Config, 2);
      auto Pct = [](uint64_t Num, uint64_t Den) {
        return (static_cast<double>(Den) / static_cast<double>(Num) - 1.0) *
               100.0;
      };
      double SP = Pct(Stock.Cycles, Base.Cycles);
      double PP = Pct(Path.Cycles, Base.Cycles);
      printf("%-14s | %6.2f %5.2f %4u | %6.2f %5.2f %4u\n",
             (Suite.Name + "/" + Spec.Name).c_str(), SP,
             Pct(Base.Size, Stock.Size), Stock.Dups, PP,
             Pct(Base.Size, Path.Size), Path.Dups);
      StockPeak.push_back(1.0 + SP / 100.0);
      PathPeak.push_back(1.0 + PP / 100.0);
    }
  }
  printf("\ngeomean peak: DBDS %+.2f%%, DBDS+paths %+.2f%%\n",
         (geometricMean(ArrayRef<double>(StockPeak)) - 1.0) * 100.0,
         (geometricMean(ArrayRef<double>(PathPeak)) - 1.0) * 100.0);
  return 0;
}
