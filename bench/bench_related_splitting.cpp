//===- bench/bench_related_splitting.cpp - §7 Self-splitting comparison ---===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper §7 positions DBDS against the Self compiler's splitting
// (Chambers): Self duplicates by path frequency (weight) and size cost
// but does "not analyze in advance" what a duplication enables; DBDS
// "extended their ideas ... using a fast duplication simulation algorithm
// in order to estimate the peak performance impact of the duplication
// before doing it." This bench quantifies that claim: both heuristics run
// under the same size budget; DBDS should buy more peak performance per
// unit of code growth because it skips benefit-free hot merges and takes
// benefit-rich cold ones.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "dbds/FrequencySplitting.h"
#include "opts/Phase.h"
#include "support/Statistics.h"
#include "vm/Interpreter.h"
#include "workloads/Suites.h"

#include <cstdio>

using namespace dbds;

namespace {

struct Outcome {
  uint64_t Cycles = 0, Size = 0;
  unsigned Dups = 0;
};

Outcome measure(const GeneratorConfig &GC, int Mode /*0 base 1 dbds 2 split*/) {
  GeneratedWorkload W = generateWorkload(GC);
  Outcome Out;
  Interpreter Interp(*W.Mod);
  Interp.enableCodeSizePenalty(192, 160, 1u << 20);
  auto Fs = W.Mod->functions();
  for (unsigned FI = 0; FI != Fs.size(); ++FI) {
    Function &F = *Fs[FI];
    ProfileSummary P;
    for (const auto &A : W.TrainInputs[FI]) {
      Interp.reset();
      Interp.run(F, ArrayRef<int64_t>(A), 1u << 24, &P);
    }
    applyProfile(F, P);
    PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
    PM.run(F);
    if (Mode == 1) {
      DBDSConfig DC;
      DC.ClassTable = W.Mod.get();
      DC.Verify = false;
      Out.Dups += runDBDS(F, DC).DuplicationsPerformed;
    } else if (Mode == 2) {
      SplittingConfig SC;
      SC.ClassTable = W.Mod.get();
      SC.Verify = false;
      Out.Dups += runFrequencySplitting(F, SC).Duplications;
    }
    Out.Size += F.estimatedCodeSize();
    for (const auto &A : W.EvalInputs[FI]) {
      Interp.reset();
      Out.Cycles += Interp.run(F, ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
    }
  }
  return Out;
}

} // namespace

int main() {
  printf("# §7 related work: DBDS vs Self-style frequency splitting\n");
  printf("# same size budget; peak %% vs baseline, cs %% vs baseline\n\n");
  printf("%-22s | %18s | %18s\n", "benchmark", "DBDS peak cs dups",
         "split peak cs dups");

  std::vector<double> DBDSPeak, SplitPeak, DBDSCs, SplitCs;
  for (const SuiteSpec &Suite : allSuites()) {
    for (unsigned BI : {1u, 5u}) {
      if (BI >= Suite.Benchmarks.size())
        continue;
      const BenchmarkSpec &Spec = Suite.Benchmarks[BI];
      Outcome Base = measure(Spec.Config, 0);
      Outcome DBDS = measure(Spec.Config, 1);
      Outcome Split = measure(Spec.Config, 2);
      auto PeakPct = [&](const Outcome &O) {
        return (static_cast<double>(Base.Cycles) /
                    static_cast<double>(O.Cycles) -
                1.0) *
               100.0;
      };
      auto SizePct = [&](const Outcome &O) {
        return (static_cast<double>(O.Size) /
                    static_cast<double>(Base.Size) -
                1.0) *
               100.0;
      };
      printf("%-22s | %6.2f %5.2f %4u | %6.2f %5.2f %4u\n",
             (Suite.Name + "/" + Spec.Name).c_str(), PeakPct(DBDS),
             SizePct(DBDS), DBDS.Dups, PeakPct(Split), SizePct(Split),
             Split.Dups);
      DBDSPeak.push_back(1.0 + PeakPct(DBDS) / 100.0);
      SplitPeak.push_back(1.0 + PeakPct(Split) / 100.0);
      DBDSCs.push_back(1.0 + SizePct(DBDS) / 100.0);
      SplitCs.push_back(1.0 + SizePct(Split) / 100.0);
    }
  }
  auto Geo = [](std::vector<double> &V) {
    return (geometricMean(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  printf("\ngeomean: DBDS peak %+.2f%% at %+.2f%% size; splitting peak "
         "%+.2f%% at %+.2f%% size\n",
         Geo(DBDSPeak), Geo(DBDSCs), Geo(SplitPeak), Geo(SplitCs));
  printf("(expected shape: DBDS buys more peak per unit of code growth — "
         "the §7 claim)\n");
  return 0;
}
