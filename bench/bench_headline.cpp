//===- bench/bench_headline.cpp - Abstract/§6.2 headline numbers ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E5 (DESIGN.md): the paper's headline aggregates across all
// four suites — "peak performance improvements of up to 40% with a mean
// peak performance increase of 5.89%, ... mean code size increase of
// 9.93% and mean compile time increase of 18.44%".
//
// Expected shape here: a positive mean peak improvement with individual
// benchmarks far above it, mean code-size increase in the single-digit to
// low-teens percent, and dupalot roughly doubling the cost metrics at
// equal-or-worse peak performance. (Absolute compile-time percentages run
// higher than the paper's because this substrate has no backend: the
// paper's denominators include LIR, register allocation, and emission.)
//
// Regression gating (opt-in): --json-out writes the combined "headline"
// bench report (rows named "suite/benchmark"); --compare=FILE diffs this
// run against a prior report with tools/dbds-stats' engine and exits
// non-zero when any gated field regressed past --compare-threshold — the
// CI hook for catching perf regressions between PRs.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include "telemetry/BenchCompare.h"
#include "telemetry/Metrics.h"
#include "telemetry/Report.h"
#include "tooling/DriverOptions.h"
#include "workloads/CompileCache.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

using namespace dbds;

int main(int argc, char **argv) {
  DriverOptions D;
  D.JsonOutDefault = "BENCH_headline.json";
  DriverOptionsParser P(
      D, {DriverFlag::Jobs, DriverFlag::Metrics, DriverFlag::PollMask,
          DriverFlag::JsonOut, DriverFlag::MaxAttempts,
          DriverFlag::TaskDeadlineMs, DriverFlag::BreakerThreshold,
          DriverFlag::BreakerHalfOpen, DriverFlag::CrashBundleDir,
          DriverFlag::SimAudit, DriverFlag::CompileCache,
          DriverFlag::CacheDir});
  std::string ComparePath;
  BenchCompareOptions CompareOpts;
  auto usage = [&](FILE *To) {
    fprintf(To, "usage: %s [--compare=FILE] [--compare-threshold=PCT] %s\n",
            argv[0], P.usage().c_str());
  };
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    switch (P.parse(Arg)) {
    case ParseStatus::Handled:
      continue;
    case ParseStatus::Help:
      usage(stdout);
      printf("options:\n%s"
             "  --compare=FILE           diff this run against a prior "
             "--json-out report\n"
             "  --compare-threshold=PCT  regression-gate tolerance for "
             "--compare\n",
             P.helpText().c_str());
      return 0;
    case ParseStatus::Error:
      fprintf(stderr, "%s: %s\n", argv[0], P.error().c_str());
      return 2;
    case ParseStatus::Unrecognized:
      break;
    }
    if (strncmp(Arg, "--compare=", 10) == 0) {
      ComparePath = Arg + 10;
    } else if (strncmp(Arg, "--compare-threshold=", 20) == 0) {
      CompareOpts.ThresholdPct = strtod(Arg + 20, nullptr);
    } else {
      fprintf(stderr, "unknown option: %s\n", Arg);
      usage(stderr);
      return 2;
    }
  }
  const bool Metrics = D.Metrics;
  const std::string JsonOutPath = D.JsonOutPath;
  RunnerOptions Opts = D.toRunnerOptions();
  // One cache for all four suites: identical functions recur across suite
  // seeds, which is exactly the cross-benchmark reuse the cache exists for.
  std::optional<CompileCache> Cache;
  if (D.UseCompileCache) {
    Cache.emplace(D.CacheDir);
    Opts.Cache = &*Cache;
  }
  if (reportInvalidRunnerOptions(Opts, argv[0]))
    return 2;
  // Both --json-out and --compare need the combined report rows; --compare
  // works standalone (render in memory, diff, never write).
  const bool NeedReport = !JsonOutPath.empty() || !ComparePath.empty();
  Opts.CollectCounters = Opts.CollectCounters || NeedReport;

  if (Metrics) {
    MetricsRegistry::setEnabled(true);
    MetricsRegistry::instance().resetAll();
  }

  std::vector<double> DBDSPeak, DBDSCt, DBDSCs;
  std::vector<double> DupPeak, DupCt, DupCs;
  double MaxPeak = 0.0;
  std::string MaxPeakName;
  SimAuditCounts Audit;
  // Combined report rows, names qualified "suite/benchmark" so the four
  // suites coexist in one document and compare runs match by full name.
  std::vector<BenchmarkMeasurement> AllRows;

  for (const SuiteSpec &Suite : allSuites()) {
    printf("measuring %s...\n", Suite.Name.c_str());
    for (BenchmarkMeasurement &M : measureSuite(Suite, Opts)) {
      Audit.accumulate(M.DBDS.Audit);
      double Peak = M.peakImprovementPercent(M.DBDS);
      DBDSPeak.push_back(1.0 + Peak / 100.0);
      DBDSCt.push_back(1.0 + M.compileTimeIncreasePercent(M.DBDS) / 100.0);
      DBDSCs.push_back(1.0 + M.codeSizeIncreasePercent(M.DBDS) / 100.0);
      DupPeak.push_back(1.0 +
                        M.peakImprovementPercent(M.DupALot) / 100.0);
      DupCt.push_back(1.0 +
                      M.compileTimeIncreasePercent(M.DupALot) / 100.0);
      DupCs.push_back(1.0 + M.codeSizeIncreasePercent(M.DupALot) / 100.0);
      if (Peak > MaxPeak) {
        MaxPeak = Peak;
        MaxPeakName = Suite.Name + "/" + M.Name;
      }
      if (NeedReport) {
        M.Name = Suite.Name + "/" + M.Name;
        AllRows.push_back(std::move(M));
      }
    }
  }

  auto Geo = [](std::vector<double> &V) {
    return (geometricMean(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  printf("\n=== Headline aggregates over all %zu benchmarks ===\n",
         DBDSPeak.size());
  printf("paper:  DBDS mean peak +5.89%%, max +40%%, mean code size "
         "+9.93%%, mean compile time +18.44%%\n");
  printf("ours:   DBDS mean peak %+.2f%%, max %+.2f%% (%s)\n",
         Geo(DBDSPeak), MaxPeak, MaxPeakName.c_str());
  printf("        DBDS mean code size %+.2f%%, mean compile time %+.2f%%\n",
         Geo(DBDSCs), Geo(DBDSCt));
  printf("        dupalot mean peak %+.2f%%, code size %+.2f%%, compile "
         "time %+.2f%%\n",
         Geo(DupPeak), Geo(DupCs), Geo(DupCt));
  if (Audit.Ran)
    printf("        simulation audit (dbds): %llu confirmed, %llu "
           "overclaimed, %llu underclaimed, %llu skipped — precision "
           "%.3f, recall %.3f\n",
           static_cast<unsigned long long>(Audit.Confirmed),
           static_cast<unsigned long long>(Audit.Overclaimed),
           static_cast<unsigned long long>(Audit.Underclaimed),
           static_cast<unsigned long long>(Audit.Skipped), Audit.precision(),
           Audit.recall());

  std::vector<HistogramSample> MetricsSnapshot;
  if (Metrics) {
    MetricsSnapshot = MetricsRegistry::instance().snapshot();
    printf("\n=== metrics ===\n%s",
           MetricsRegistry::renderTable(MetricsSnapshot).c_str());
  }

  std::string NewReport;
  if (!JsonOutPath.empty()) {
    NewReport = renderBenchJson("headline", AllRows,
                                Metrics ? &MetricsSnapshot : nullptr);
    FILE *File = fopen(JsonOutPath.c_str(), "wb");
    if (!File || fwrite(NewReport.data(), 1, NewReport.size(), File) !=
                     NewReport.size()) {
      fprintf(stderr, "--json-out: cannot write '%s'\n", JsonOutPath.c_str());
      if (File)
        fclose(File);
      return 1;
    }
    fclose(File);
    printf("bench report written to %s\n", JsonOutPath.c_str());
  }

  if (!ComparePath.empty()) {
    if (NewReport.empty())
      NewReport = renderBenchJson("headline", AllRows,
                                  Metrics ? &MetricsSnapshot : nullptr);
    std::string OldReport, Error;
    if (!readFileToString(ComparePath, OldReport, &Error)) {
      fprintf(stderr, "--compare: %s\n", Error.c_str());
      return 2;
    }
    BenchCompareResult R =
        compareBenchReports(OldReport, NewReport, CompareOpts);
    printf("\n=== regression gate vs %s (threshold %.1f%%) ===\n%s",
           ComparePath.c_str(), CompareOpts.ThresholdPct,
           R.render().c_str());
    if (!R.Ok)
      return 2;
    // A gate that compared nothing gates nothing: treat it as a
    // configuration error rather than a silent pass.
    if (R.Compared == 0) {
      fprintf(stderr,
              "--compare: 0 comparisons performed (no benchmark names "
              "matched %s) — refusing to pass an empty gate\n",
              ComparePath.c_str());
      return 2;
    }
    if (R.Regressions != 0)
      return 1;
  }
  return 0;
}
