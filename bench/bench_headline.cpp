//===- bench/bench_headline.cpp - Abstract/§6.2 headline numbers ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E5 (DESIGN.md): the paper's headline aggregates across all
// four suites — "peak performance improvements of up to 40% with a mean
// peak performance increase of 5.89%, ... mean code size increase of
// 9.93% and mean compile time increase of 18.44%".
//
// Expected shape here: a positive mean peak improvement with individual
// benchmarks far above it, mean code-size increase in the single-digit to
// low-teens percent, and dupalot roughly doubling the cost metrics at
// equal-or-worse peak performance. (Absolute compile-time percentages run
// higher than the paper's because this substrate has no backend: the
// paper's denominators include LIR, register allocation, and emission.)
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dbds;

int main(int argc, char **argv) {
  RunnerOptions Opts;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (strncmp(Arg, "--jobs=", 7) == 0) {
      Opts.Jobs = static_cast<unsigned>(strtoul(Arg + 7, nullptr, 10));
    } else if (strncmp(Arg, "--max-attempts=", 15) == 0) {
      Opts.MaxAttempts = static_cast<unsigned>(strtoul(Arg + 15, nullptr, 10));
    } else if (strncmp(Arg, "--task-deadline-ms=", 19) == 0) {
      Opts.TaskDeadlineMs = strtod(Arg + 19, nullptr);
    } else if (strncmp(Arg, "--breaker-threshold=", 20) == 0) {
      Opts.BreakerThreshold =
          static_cast<unsigned>(strtoul(Arg + 20, nullptr, 10));
    } else if (strncmp(Arg, "--breaker-half-open=", 20) == 0) {
      Opts.BreakerHalfOpenAfter =
          static_cast<unsigned>(strtoul(Arg + 20, nullptr, 10));
    } else if (strncmp(Arg, "--crash-bundle-dir=", 19) == 0) {
      Opts.CrashBundleDir = Arg + 19;
    } else if (strcmp(Arg, "--simaudit") == 0) {
      Opts.SimAudit = true;
    } else {
      fprintf(stderr,
              "unknown option: %s\nusage: %s [--jobs=N] [--max-attempts=N] "
              "[--task-deadline-ms=MS] [--breaker-threshold=N] "
              "[--breaker-half-open=N] [--crash-bundle-dir=DIR] "
              "[--simaudit]\n",
              Arg, argv[0]);
      return 2;
    }
  }

  std::vector<double> DBDSPeak, DBDSCt, DBDSCs;
  std::vector<double> DupPeak, DupCt, DupCs;
  double MaxPeak = 0.0;
  std::string MaxPeakName;
  SimAuditCounts Audit;

  for (const SuiteSpec &Suite : allSuites()) {
    printf("measuring %s...\n", Suite.Name.c_str());
    for (const BenchmarkMeasurement &M : measureSuite(Suite, Opts)) {
      Audit.accumulate(M.DBDS.Audit);
      double Peak = M.peakImprovementPercent(M.DBDS);
      DBDSPeak.push_back(1.0 + Peak / 100.0);
      DBDSCt.push_back(1.0 + M.compileTimeIncreasePercent(M.DBDS) / 100.0);
      DBDSCs.push_back(1.0 + M.codeSizeIncreasePercent(M.DBDS) / 100.0);
      DupPeak.push_back(1.0 +
                        M.peakImprovementPercent(M.DupALot) / 100.0);
      DupCt.push_back(1.0 +
                      M.compileTimeIncreasePercent(M.DupALot) / 100.0);
      DupCs.push_back(1.0 + M.codeSizeIncreasePercent(M.DupALot) / 100.0);
      if (Peak > MaxPeak) {
        MaxPeak = Peak;
        MaxPeakName = Suite.Name + "/" + M.Name;
      }
    }
  }

  auto Geo = [](std::vector<double> &V) {
    return (geometricMean(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  printf("\n=== Headline aggregates over all %zu benchmarks ===\n",
         DBDSPeak.size());
  printf("paper:  DBDS mean peak +5.89%%, max +40%%, mean code size "
         "+9.93%%, mean compile time +18.44%%\n");
  printf("ours:   DBDS mean peak %+.2f%%, max %+.2f%% (%s)\n",
         Geo(DBDSPeak), MaxPeak, MaxPeakName.c_str());
  printf("        DBDS mean code size %+.2f%%, mean compile time %+.2f%%\n",
         Geo(DBDSCs), Geo(DBDSCt));
  printf("        dupalot mean peak %+.2f%%, code size %+.2f%%, compile "
         "time %+.2f%%\n",
         Geo(DupPeak), Geo(DupCs), Geo(DupCt));
  if (Audit.Ran)
    printf("        simulation audit (dbds): %llu confirmed, %llu "
           "overclaimed, %llu underclaimed, %llu skipped — precision "
           "%.3f, recall %.3f\n",
           static_cast<unsigned long long>(Audit.Confirmed),
           static_cast<unsigned long long>(Audit.Overclaimed),
           static_cast<unsigned long long>(Audit.Underclaimed),
           static_cast<unsigned long long>(Audit.Skipped), Audit.precision(),
           Audit.recall());
  return 0;
}
