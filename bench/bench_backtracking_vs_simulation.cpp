//===- bench/bench_backtracking_vs_simulation.cpp - §3.1 comparison -------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E6 (DESIGN.md): the paper's §3.1 claim that a
// backtracking-based duplication driver (Algorithm 1) is impractically
// slow because it must snapshot the whole IR per candidate — "the copy
// operation increased compilation time by a factor of 10" in Graal.
// Expected shape: backtracking compile time roughly an order of magnitude
// above DBDS simulation on the same units, for comparable peak quality.
//
// Implemented with google-benchmark so the two drivers are timed with
// proper repetition and reported side by side.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"

#include <benchmark/benchmark.h>

using namespace dbds;

namespace {

GeneratorConfig benchConfig(int Segments) {
  GeneratorConfig Config;
  Config.Seed = 0xE6;
  Config.NumFunctions = 1;
  Config.SegmentsPerFunction = static_cast<unsigned>(Segments);
  Config.ColdSegments = static_cast<unsigned>(Segments);
  return Config;
}

void profileAndPrepare(GeneratedWorkload &W) {
  Function &F = *W.Mod->functions()[0];
  Interpreter Interp(*W.Mod);
  ProfileSummary Profile;
  for (const auto &Args : W.TrainInputs[0]) {
    Interp.reset();
    Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24, &Profile);
  }
  applyProfile(F, Profile);
  PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
  PM.run(F);
}

void BM_SimulationBasedDBDS(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    GeneratedWorkload W = generateWorkload(benchConfig(
        static_cast<int>(State.range(0))));
    profileAndPrepare(W);
    Function &F = *W.Mod->functions()[0];
    State.ResumeTiming();

    DBDSConfig Config;
    Config.ClassTable = W.Mod.get();
    Config.Verify = false;
    DBDSResult R = runDBDS(F, Config);
    benchmark::DoNotOptimize(R.DuplicationsPerformed);
  }
}
BENCHMARK(BM_SimulationBasedDBDS)->Arg(4)->Arg(8)->Arg(12);

void BM_BacktrackingDuplication(benchmark::State &State) {
  uint64_t Copies = 0;
  for (auto _ : State) {
    State.PauseTiming();
    GeneratedWorkload W = generateWorkload(benchConfig(
        static_cast<int>(State.range(0))));
    profileAndPrepare(W);
    std::unique_ptr<Function> F = W.Mod->functions()[0]->clone();
    State.ResumeTiming();

    BacktrackingResult R = runBacktrackingDuplication(F, W.Mod.get());
    Copies += R.GraphCopies;
    benchmark::DoNotOptimize(R.Duplications);
  }
  State.counters["graph_copies/iter"] = benchmark::Counter(
      static_cast<double>(Copies), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BacktrackingDuplication)->Arg(4)->Arg(8)->Arg(12);

} // namespace

BENCHMARK_MAIN();
