//===- bench/bench_ablation_iterations.cpp - §5.2 iteration bound ---------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E8 (DESIGN.md): the paper runs the DBDS three-tier loop at
// most 3 times because one duplication can enable the next opportunity
// (duplication over multiple merges is future work), and reports that
// later iterations fire for only ~20% of compilation units. This ablation
// sweeps MaxIterations and reports peak performance, code size, compile
// time, and the fraction of units that actually used iteration >= 2.
// Expected shape: most of the benefit lands in iteration 1; iteration 2
// helps a minority of units (chained merges, e.g. the Listing 1 inner
// diamond); iteration 3 is nearly idle.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "support/Timer.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"

#include <cstdio>

using namespace dbds;

int main() {
  printf("# E8: DBDS iteration-bound ablation (paper §5.2: bound 3, "
         "~20%% of units re-iterate)\n\n");
  printf("%5s | %10s | %10s | %10s | %16s\n", "iters", "peak %", "size %",
         "time ms", "units iterating");

  const unsigned Units = 24;
  uint64_t BaseCycles = 0, BaseSize = 0;
  // Baseline (no DBDS).
  for (unsigned Variant = 0; Variant != 2; ++Variant) {
    // Variant 0 computes the baseline; variants below sweep iterations.
  }
  {
    GeneratorConfig GC;
    GC.Seed = 0xE8;
    GC.NumFunctions = Units;
    GeneratedWorkload W = generateWorkload(GC);
    auto Fs = W.Mod->functions();
    for (unsigned FI = 0; FI != Fs.size(); ++FI) {
      Interpreter Interp(*W.Mod);
      Interp.enableCodeSizePenalty();
      ProfileSummary P;
      for (const auto &A : W.TrainInputs[FI]) {
        Interp.reset();
        Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24, &P);
      }
      applyProfile(*Fs[FI], P);
      PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
      PM.run(*Fs[FI]);
      BaseSize += Fs[FI]->estimatedCodeSize();
      for (const auto &A : W.EvalInputs[FI]) {
        Interp.reset();
        BaseCycles +=
            Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
      }
    }
  }

  for (unsigned MaxIters : {1u, 2u, 3u, 5u}) {
    GeneratorConfig GC;
    GC.Seed = 0xE8;
    GC.NumFunctions = Units;
    GeneratedWorkload W = generateWorkload(GC);
    auto Fs = W.Mod->functions();
    uint64_t Cycles = 0, Size = 0;
    unsigned UnitsIterating = 0;
    Timer T;
    for (unsigned FI = 0; FI != Fs.size(); ++FI) {
      Interpreter Interp(*W.Mod);
      Interp.enableCodeSizePenalty();
      ProfileSummary P;
      for (const auto &A : W.TrainInputs[FI]) {
        Interp.reset();
        Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24, &P);
      }
      applyProfile(*Fs[FI], P);
      {
        TimerScope Scope(T);
        PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
        PM.run(*Fs[FI]);
        DBDSConfig DC;
        DC.ClassTable = W.Mod.get();
        DC.Verify = false;
        DC.MaxIterations = MaxIters;
        DBDSResult R = runDBDS(*Fs[FI], DC);
        UnitsIterating += R.IterationsRun >= 2 ? 1 : 0;
      }
      Size += Fs[FI]->estimatedCodeSize();
      for (const auto &A : W.EvalInputs[FI]) {
        Interp.reset();
        Cycles +=
            Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
      }
    }
    printf("%5u | %10.2f | %10.2f | %10.2f | %10u /%3u\n", MaxIters,
           (static_cast<double>(BaseCycles) / Cycles - 1.0) * 100.0,
           (static_cast<double>(Size) / BaseSize - 1.0) * 100.0, T.totalMs(),
           UnitsIterating, Units);
  }
  return 0;
}
