//===- bench/bench_fig5_java_dacapo.cpp - Figure 5 reproduction -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E1 (DESIGN.md): Figure 5 — Java DaCapo under baseline / DBDS
// / dupalot. Paper geomeans: DBDS +0.99% peak / +24.92% ct / +15.90% cs;
// dupalot -0.14% / +50.08% / +38.22%. Expected shape: the smallest peak
// gains of the four suites; dupalot clearly worse on ct and cs.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

int main(int argc, char **argv) {
  return dbds::runFigureMain(argc, argv, "Figure 5: Java DaCapo",
                             dbds::javaDaCapoSuite());
}
