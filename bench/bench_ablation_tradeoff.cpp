//===- bench/bench_ablation_tradeoff.cpp - §5.4 constant sweeps -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E9 (DESIGN.md): sensitivity of the §5.4 trade-off constants.
// The paper derived BenefitScale = 256 empirically and fixed the code
// size IncreaseBudget at 1.5. This ablation sweeps both and reports peak
// performance and code size per setting on a mixed workload. Expected
// shape: peak performance saturates as BS grows (all beneficial
// duplications taken) while code size keeps climbing — the paper's
// argument for a bounded scale; tightening IB trades peak for size.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"
#include "workloads/ProgramGenerator.h"

#include <cstdio>

using namespace dbds;

namespace {

struct SweepOutcome {
  double PeakImprovement;
  double CodeSizeIncrease;
  unsigned Duplications;
};

SweepOutcome measure(double BenefitScale, double IncreaseBudget) {
  GeneratorConfig GC;
  GC.Seed = 0xE9;
  GC.NumFunctions = 6;
  SweepOutcome Out{0, 0, 0};

  // Baseline cycles/size.
  uint64_t BaseCycles = 0, BaseSize = 0;
  {
    GeneratedWorkload W = generateWorkload(GC);
    auto Fs = W.Mod->functions();
    for (unsigned FI = 0; FI != Fs.size(); ++FI) {
      Interpreter Interp(*W.Mod);
      Interp.enableCodeSizePenalty();
      ProfileSummary P;
      for (const auto &A : W.TrainInputs[FI]) {
        Interp.reset();
        Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24, &P);
      }
      applyProfile(*Fs[FI], P);
      PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
      PM.run(*Fs[FI]);
      BaseSize += Fs[FI]->estimatedCodeSize();
      for (const auto &A : W.EvalInputs[FI]) {
        Interp.reset();
        BaseCycles +=
            Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
      }
    }
  }

  GeneratedWorkload W = generateWorkload(GC);
  auto Fs = W.Mod->functions();
  uint64_t Cycles = 0, Size = 0;
  for (unsigned FI = 0; FI != Fs.size(); ++FI) {
    Interpreter Interp(*W.Mod);
    Interp.enableCodeSizePenalty();
    ProfileSummary P;
    for (const auto &A : W.TrainInputs[FI]) {
      Interp.reset();
      Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24, &P);
    }
    applyProfile(*Fs[FI], P);
    PhaseManager PM = PhaseManager::standardPipeline(false, W.Mod.get());
    PM.run(*Fs[FI]);

    DBDSConfig DC;
    DC.ClassTable = W.Mod.get();
    DC.Verify = false;
    DC.BenefitScale = BenefitScale;
    DC.IncreaseBudget = IncreaseBudget;
    Out.Duplications += runDBDS(*Fs[FI], DC).DuplicationsPerformed;
    Size += Fs[FI]->estimatedCodeSize();
    for (const auto &A : W.EvalInputs[FI]) {
      Interp.reset();
      Cycles +=
          Interp.run(*Fs[FI], ArrayRef<int64_t>(A), 1u << 24).DynamicCycles;
    }
  }
  Out.PeakImprovement = (static_cast<double>(BaseCycles) /
                             static_cast<double>(Cycles) -
                         1.0) *
                        100.0;
  Out.CodeSizeIncrease = (static_cast<double>(Size) /
                              static_cast<double>(BaseSize) -
                          1.0) *
                         100.0;
  return Out;
}

} // namespace

int main() {
  printf("# E9: trade-off constant ablation (paper §5.4: BS = 256, "
         "IB = 1.5)\n\n");

  printf("BenefitScale sweep (IB fixed at 1.5):\n");
  printf("%10s | %10s | %10s | %6s\n", "BS", "peak %", "size %", "dups");
  for (double BS : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    SweepOutcome O = measure(BS, 1.5);
    printf("%10.0f | %10.2f | %10.2f | %6u\n", BS, O.PeakImprovement,
           O.CodeSizeIncrease, O.Duplications);
  }

  printf("\nIncreaseBudget sweep (BS fixed at 256):\n");
  printf("%10s | %10s | %10s | %6s\n", "IB", "peak %", "size %", "dups");
  for (double IB : {1.0, 1.1, 1.25, 1.5, 2.0, 3.0}) {
    SweepOutcome O = measure(256.0, IB);
    printf("%10.2f | %10.2f | %10.2f | %6u\n", IB, O.PeakImprovement,
           O.CodeSizeIncrease, O.Duplications);
  }
  return 0;
}
