//===- dbds/CostModel.h - Whole-unit cost estimation ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-compilation-unit applications of the static node cost model
/// (paper §5.3, Figure 4): expected run-time cycles (per-block cycles
/// weighted by relative execution frequency) and total code size.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_DBDS_COSTMODEL_H
#define DBDS_DBDS_COSTMODEL_H

#include "ir/Function.h"

namespace dbds {

/// Frequency-weighted cycle estimate of \p F, the quantity Figure 4
/// computes by hand (14 cycles -> 12.2 cycles): sum over blocks of
/// (static frequency x sum of instruction cycle estimates).
double expectedCycles(Function &F);

/// Static code size estimate (same as Function::estimatedCodeSize; here
/// for symmetry with expectedCycles).
uint64_t codeSize(const Function &F);

} // namespace dbds

#endif // DBDS_DBDS_COSTMODEL_H
