//===- dbds/Simulator.h - The DBDS simulation tier --------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation tier of the DBDS algorithm (paper §4.1): a depth-first
/// traversal of the dominator tree that, at every predecessor of a merge,
/// pauses and runs a *duplication simulation traversal* (DST) — processing
/// the merge block as if the predecessor dominated it. Phis are resolved
/// through a synonym map (phi -> its input on that predecessor), the
/// applicability checks of all five optimizations are evaluated against
/// the resolved operands, and each triggered action step contributes a
/// cycles-saved benefit and a code-size effect from the static node cost
/// model. No IR is mutated (scratch nodes produced by action steps are
/// discarded); the output is one DuplicationCandidate per pair.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_DBDS_SIMULATOR_H
#define DBDS_DBDS_SIMULATOR_H

#include "dbds/Candidate.h"
#include "ir/Function.h"

#include <vector>

namespace dbds {

class CancellationToken;

/// Per-pair details of what the simulation saw (exposed for tests and the
/// ablation benches).
struct SimulationStats {
  unsigned PairsSimulated = 0;
  unsigned PathsSimulated = 0; ///< Two-merge DSTs (§8 extension).
  unsigned ConstantFolds = 0;
  unsigned StrengthReductions = 0;
  unsigned ConditionalEliminations = 0;
  unsigned ReadEliminations = 0;
  unsigned AllocationSinks = 0;
  unsigned PartialEscapes = 0; ///< §5.2 partial un-escapes (residual
                               ///< escapes confined to a dominated block).
};

/// Simulates every predecessor->merge duplication in \p F and returns the
/// candidates that showed any optimization potential, unsorted.
///
/// \p ClassTable enables freshness reasoning for allocations (may be
/// null). \p Stats, when non-null, receives aggregate counters.
/// \p MaxPathLength > 1 additionally continues each DST through a merge
/// that ends in a jump to another merge (paper §8: "the simulation tier
/// can simulate along paths"), emitting a separate path candidate when
/// the extension discovered extra benefit.
/// \p Cancel, when non-null, is polled during the dominator-tree walk;
/// once it fires the traversal stops and the candidates found so far are
/// returned (a cancelled attempt's partial candidate list is fine — the
/// simulation mutates no IR).
std::vector<DuplicationCandidate>
simulateDuplications(Function &F, const Module *ClassTable,
                     SimulationStats *Stats = nullptr,
                     unsigned MaxPathLength = 1,
                     CancellationToken *Cancel = nullptr);

} // namespace dbds

#endif // DBDS_DBDS_SIMULATOR_H
