//===- dbds/Candidate.h - Duplication candidates and config -----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A duplication candidate is one predecessor->merge pair together with
/// the optimization potential the simulation tier discovered for it
/// (paper §4.1, "Sim Result"), and DBDSConfig carries the trade-off
/// constants of §5.4.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_DBDS_CANDIDATE_H
#define DBDS_DBDS_CANDIDATE_H

#include "telemetry/DecisionLog.h"

#include <cstdint>
#include <string>
#include <unordered_set>

namespace dbds {

class CancellationToken;
class CompileBudget;
class DiagnosticEngine;
class FaultInjector;
class Module;

/// One simulated predecessor->merge duplication and its discovered
/// potential. Blocks are referenced by id so candidates survive unrelated
/// CFG edits; stale candidates are revalidated before the transformation.
struct DuplicationCandidate {
  unsigned MergeId = 0; ///< The merge block bm.
  unsigned PredId = 0;  ///< The predecessor bpi (ends with a jump to bm).

  /// Path duplication (paper §8 future work, implemented here as an
  /// extension): a second merge reached by the first merge's jump, to be
  /// duplicated into the same predecessor right after the first. ~0u when
  /// this is an ordinary single-merge candidate.
  unsigned SecondMergeId = InvalidBlock;

  static constexpr unsigned InvalidBlock = ~0u;
  bool isPath() const { return SecondMergeId != InvalidBlock; }

  /// Estimated cycles saved per execution of the predecessor (the "CS"
  /// measurement of §4.1; e.g. division -> shift saves 32 - 1 = 31).
  double CyclesSaved = 0.0;

  /// Execution frequency of the predecessor relative to the hottest block
  /// of the compilation unit, in [0, 1] (§5.4 "Probability").
  double Probability = 0.0;

  /// Estimated code size increase of performing the duplication (size of
  /// the surviving copied instructions).
  int64_t SizeCost = 0;

  /// Number of distinct optimizations the simulation saw fire.
  unsigned OptimizationsTriggered = 0;

  /// Per-kind breakdown of the triggered action steps (telemetry: the
  /// decision log records which opportunities motivated each candidate).
  OpportunityCounts Opportunities;

  /// The sort key of the trade-off tier: expected cycles saved weighted by
  /// how often the predecessor runs.
  double benefit() const { return CyclesSaved * Probability; }
};

/// Tuning knobs of the DBDS phase (defaults are the paper's §5.2/§5.4
/// constants).
struct DBDSConfig {
  /// When false, the trade-off tier is disabled and every candidate with
  /// any benefit is duplicated — the paper's "dupalot" configuration.
  bool UseTradeoff = true;

  /// "BS": the cost may be up to BenefitScale x higher than the scaled
  /// benefit (§5.4, empirically 256).
  double BenefitScale = 256.0;

  /// "IB": maximum code size growth factor per compilation unit (§5.2:
  /// budget of 50% growth => 1.5).
  double IncreaseBudget = 1.5;

  /// "MS": hard upper bound on unit size imposed by the VM (§5.4; scaled
  /// from HotSpot's JVMCINMethodSizeLimit to our size-estimate units).
  uint64_t MaxUnitSize = 65536;

  /// Upper bound on simulate->tradeoff->optimize iterations (§5.2: 3).
  unsigned MaxIterations = 3;

  /// Minimum cumulative benefit of an iteration for another one to run
  /// (§5.2: "only run another iteration if the cumulative benefit of the
  /// previous one is above a certain threshold").
  double MinIterationBenefit = 8.0;

  /// Paper §8 future-work extension: allow the optimization tier to
  /// duplicate over two merges along a path when the simulation tier saw
  /// additional benefit beyond the first merge. Off by default (the
  /// paper's shipped implementation cannot duplicate over multiple
  /// merges).
  bool EnablePathDuplication = false;

  /// Class table for freshness reasoning (field counts); may be null.
  const Module *ClassTable = nullptr;

  /// Verify the IR after every mutation (tests keep this on).
  bool Verify = true;

  /// When true, a verifier failure aborts the process (legacy behavior).
  /// Otherwise the failing duplication round is rolled back to its
  /// pre-round snapshot and DBDS stops for this function, leaving the last
  /// known-good IR in place.
  bool FailFast = false;

  /// Optional sink for rollback/budget diagnostics (not owned).
  DiagnosticEngine *Diags = nullptr;

  /// Optional deterministic fault source exercising the rollback path
  /// (not owned; only consulted when Verify is set).
  FaultInjector *Injector = nullptr;

  /// Optional per-function wall-clock budget (not owned). When it expires,
  /// DBDS stops duplicating and records DegradationLevel::NoDBDS.
  CompileBudget *Budget = nullptr;

  /// Optional cooperative cancellation token (not owned). Checked between
  /// iterations and candidates; once it fires, DBDS stops at that
  /// checkpoint with the last known-good IR in place.
  CancellationToken *Cancel = nullptr;

  /// Optional set of phase names disabled by the service's circuit breaker
  /// (not owned); forwarded to the cleanup pipeline.
  const std::unordered_set<std::string> *DisabledPhases = nullptr;

  /// Optional sink for per-candidate duplication decisions (not owned).
  /// When set, every candidate the trade-off tier rules on is recorded
  /// with its shouldDuplicate inputs and clause results — the DBDS
  /// optimization-remarks stream (telemetry/DecisionLog.h).
  DecisionLog *Decisions = nullptr;
};

/// The trade-off function of §5.4:
///   (b * p * BS) > c  &&  (cs < MS)  &&  (cs + c < is * IB)
///
/// \p CyclesSaved b, \p Probability p, \p SizeCost c, \p CurrentSize cs,
/// \p InitialSize is.
bool shouldDuplicate(double CyclesSaved, double Probability, int64_t SizeCost,
                     uint64_t CurrentSize, uint64_t InitialSize,
                     const DBDSConfig &Config);

/// As above, additionally reporting each clause's individual pass/fail in
/// \p Clauses (may be null) — the decision log records exactly why a
/// candidate was rejected, not just that it was.
bool shouldDuplicate(double CyclesSaved, double Probability, int64_t SizeCost,
                     uint64_t CurrentSize, uint64_t InitialSize,
                     const DBDSConfig &Config, TradeoffClauses *Clauses);

} // namespace dbds

#endif // DBDS_DBDS_CANDIDATE_H
