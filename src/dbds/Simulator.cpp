//===- dbds/Simulator.cpp - The DBDS simulation tier -----------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/Simulator.h"

#include "analysis/BlockFrequency.h"
#include "analysis/DominatorTree.h"
#include "opts/Canonicalize.h"
#include "support/Cancellation.h"
#include "opts/MemoryState.h"
#include "opts/PartialEscape.h"
#include "opts/ScopedStamps.h"
#include "telemetry/Counters.h"
#include "telemetry/Json.h"
#include "telemetry/Trace.h"

#include <unordered_map>
#include <unordered_set>

using namespace dbds;

DBDS_COUNTER(simulator, pairs_simulated);
DBDS_COUNTER(simulator, paths_simulated);
DBDS_COUNTER(simulator, synonyms_resolved);
DBDS_COUNTER(simulator, constant_folds);
DBDS_COUNTER(simulator, strength_reductions);
DBDS_COUNTER(simulator, conditional_eliminations);
DBDS_COUNTER(simulator, read_eliminations);
DBDS_COUNTER(simulator, allocation_sinks);
DBDS_COUNTER(simulator, partial_escapes);

namespace {

class SimulationDriver {
public:
  SimulationDriver(Function &F, const Module *ClassTable,
                   SimulationStats *Stats, unsigned MaxPathLength,
                   CancellationToken *Cancel)
      : F(F), ClassTable(ClassTable), Stats(Stats),
        MaxPathLength(MaxPathLength), Cancel(Cancel), DT(F), LI(F, DT),
        Freq(BlockFrequency::computeStatic(F, DT, LI)), Scope(Stamps) {}

  std::vector<DuplicationCandidate> run() {
    // Simulation must not change the IR (paper §3.2); action steps create
    // uniqued constants in the entry block, so snapshot it for the sweep
    // below.
    std::unordered_set<Instruction *> PreExisting;
    for (Instruction *I : *F.getEntry())
      PreExisting.insert(I);

    MemoryState Entry;
    visit(F.getEntry(), Entry);

    // Scratch nodes created by action steps must not keep use-list entries
    // on real instructions.
    for (Instruction *Scratch : ScratchNodes) {
      assert(Scratch->getBlock() == nullptr && "scratch node was inserted");
      Scratch->dropAllOperands();
    }
    // Remove constants the simulation materialized and nothing ended up
    // using (Function::constant revives them on a later real fold).
    SmallVector<Instruction *, 8> NewConstants;
    for (Instruction *I : *F.getEntry())
      if (isa<ConstantInst>(I) && !PreExisting.count(I) && !I->hasUsers())
        NewConstants.push_back(I);
    for (Instruction *C : NewConstants)
      F.getEntry()->remove(C);
    return std::move(Candidates);
  }

private:
  unsigned fieldsOf(NewInst *New) const {
    if (!ClassTable)
      return 0;
    return ClassTable->getClass(New->getClassId()).NumFields;
  }

  /// Main traversal: mirrors CE + read elimination context building, read
  /// only. \p State is the memory knowledge at block entry.
  void visit(Block *B, MemoryState State) {
    // Cancellation checkpoint: a cancelled attempt's partial candidate
    // list is discarded by the retry ladder, so stopping mid-walk is safe
    // (the simulation mutates no IR; scratch cleanup still runs in run()).
    if (Cancel && Cancel->checkpoint())
      return;
    ScopedStamps::UndoLog Undo;
    if (Block *Idom = DT.getIdom(B)) {
      if (B->getNumPreds() == 1 && B->preds()[0] == Idom) {
        if (auto *If = dyn_cast<IfInst>(Idom->getTerminator())) {
          if (If->getTrueSucc() == B)
            Scope.refineByCondition(If->getCondition(), true, Undo);
          else if (If->getFalseSucc() == B)
            Scope.refineByCondition(If->getCondition(), false, Undo);
        }
      }
    }
    if (B->getNumPreds() >= 2 ||
        (DT.getIdom(B) && B->getNumPreds() == 1 &&
         B->preds()[0] != DT.getIdom(B)))
      State.clear();

    for (Instruction *I : *B) {
      switch (I->getOpcode()) {
      case Opcode::New:
        State.recordAllocation(cast<NewInst>(I), fieldsOf(cast<NewInst>(I)));
        break;
      case Opcode::LoadField: {
        auto *Load = cast<LoadFieldInst>(I);
        State.recordLoad(Load);
        break;
      }
      case Opcode::StoreField: {
        auto *Store = cast<StoreFieldInst>(I);
        State.recordStore(Store->getObject(), Store->getFieldIndex(),
                          Store->getValue());
        break;
      }
      case Opcode::Call:
      case Opcode::Invoke:
        State.killForCall();
        break;
      default:
        break;
      }
    }

    // Pause: a merge successor reached by jump spawns a DST (paper
    // Figure 2, gray blocks).
    if (auto *Jump = dyn_cast<JumpInst>(B->getTerminator())) {
      Block *M = Jump->getTarget();
      if (M != B && M->isMerge() && !LI.isLoopHeader(M) &&
          DT.isReachable(M))
        simulatePair(B, M, State);
    }

    for (Block *Child : DT.children(B))
      visit(Child, State);

    Scope.undo(Undo);
  }

  /// Partial-escape credit (paper §5.2): duplicating this pair removes the
  /// phi input at \p PredIdx. An allocation whose only escape was that
  /// input dies entirely — scalar replacement, priced as AllocationSinks.
  /// One whose residual escapes are confined to a single dominated,
  /// loop-free block gets its materialization sunk there by the
  /// partial-escape phase — priced as PartialEscapes: the CYCLES_8
  /// allocation cost stops being paid on paths that avoid the escape.
  void addEscapeCredit(Block *M, unsigned PredIdx, DuplicationCandidate &C) {
    for (PhiInst *Phi : M->phis()) {
      auto *New = dyn_cast<NewInst>(Phi->getInput(PredIdx));
      if (!New || !New->getBlock())
        continue;
      Block *Home = New->getBlock();
      unsigned PhiUses = 0;
      bool HasLoad = false;
      bool StoresAtHome = true;
      SmallVector<Instruction *, 4> Residual;
      for (Instruction *User : New->users()) {
        if (!useEscapesAllocation(New, User)) {
          if (isa<LoadFieldInst>(User))
            HasLoad = true;
          else if (User->getBlock() != Home)
            StoresAtHome = false;
          continue;
        }
        if (User == Phi)
          ++PhiUses;
        else
          Residual.push_back(User);
      }
      if (PhiUses != 1)
        continue; // another input of this phi keeps it escaped
      if (Residual.empty()) {
        // Full un-escape: the allocation and its initializer stores die.
        double Saved = New->estimatedCycles();
        for (Instruction *User : New->users())
          if (isa<StoreFieldInst>(User))
            Saved += User->estimatedCycles();
        C.CyclesSaved += Saved;
        ++C.Opportunities.AllocationSinks;
        ++allocation_sinks;
        if (Stats)
          ++Stats->AllocationSinks;
        continue;
      }
      // Partial un-escape: mirror PartialEscapePhase::trySink's
      // preconditions so the claim is only made when the phase can
      // actually deliver the sink after duplication.
      if (HasLoad || !StoresAtHome || LI.loopDepth(Home) != 0)
        continue;
      Block *SinkB = Residual.front()->getBlock();
      bool Confined = SinkB != nullptr && SinkB != Home &&
                      DT.isReachable(SinkB) && DT.dominates(Home, SinkB) &&
                      LI.loopDepth(SinkB) == 0;
      for (Instruction *E : Residual)
        Confined = Confined && !isa<PhiInst>(E) && E->getBlock() == SinkB;
      if (!Confined)
        continue;
      C.CyclesSaved += New->estimatedCycles();
      ++C.Opportunities.PartialEscapes;
      ++partial_escapes;
      if (Stats)
        ++Stats->PartialEscapes;
    }
  }

  /// The duplication simulation traversal for one predecessor->merge pair:
  /// processes M's instructions as if P dominated M, through a synonym
  /// map; when MaxPathLength allows, continues through a jump into a
  /// further merge (paper §8, simulation along paths) and emits a second,
  /// extended candidate if the continuation discovered more benefit.
  void simulatePair(Block *P, Block *M, const MemoryState &StateAtP) {
    if (Stats)
      ++Stats->PairsSimulated;
    ++pairs_simulated;

    // One span per DST traversal (the unit of simulation-tier work).
    TraceSession *TS = TraceSession::active();
    TraceSpan DSTSpan(TS, "dst", "simulator",
                      TS ? "\"merge\":" + jsonNumber(M->getId()) +
                               ",\"pred\":" + jsonNumber(P->getId())
                         : std::string());

    MemoryState Memory = StateAtP;
    std::unordered_map<Instruction *, Instruction *> Synonyms;
    auto resolve = [&](Instruction *V) {
      for (unsigned Hops = 0; Hops != 16; ++Hops) {
        auto It = Synonyms.find(V);
        if (It == Synonyms.end())
          return V;
        ++synonyms_resolved;
        V = It->second;
      }
      return V;
    };
    auto stampOf = [&](Instruction *V) { return Scope.get(resolve(V)); };

    DuplicationCandidate C;
    C.MergeId = M->getId();
    C.PredId = P->getId();
    C.Probability = Freq.relativeFrequency(P);

    // Duplication replaces the predecessor's jump with the merge body:
    // the unconditional jump (and the control-flow transfer it implies)
    // disappears on this path — the original motivation for replication
    // in Mueller & Whalley, which §7 relates DBDS to.
    C.CyclesSaved += opcodeCycles(Opcode::Jump);

    Block *Cur = M;
    Block *CurPred = P;
    double ShallowBenefit = 0.0;
    for (unsigned Depth = 0; Depth != MaxPathLength; ++Depth) {
      unsigned PredIdx = Cur->indexOfPred(CurPred);
      // Seed synonyms: each phi of the merge is its (resolved) input on
      // the path edge (paper Figure 3d, "synonym of").
      for (PhiInst *Phi : Cur->phis())
        Synonyms[Phi] = resolve(Phi->getInput(PredIdx));
      if (Depth == 0)
        addEscapeCredit(Cur, PredIdx, C);

      Instruction *Term = nullptr;
      for (Instruction *I : *Cur) {
        if (isa<PhiInst>(I))
          continue;
        if (I->isTerminator()) {
          Term = I;
          break;
        }
        C.SizeCost += simulateInstruction(I, Memory, Synonyms, resolve,
                                          stampOf, C);
      }
      assert(Term && "merge block without terminator");

      // Can the DST continue along a path into a further merge?
      Block *Next = nullptr;
      if (auto *Jump = dyn_cast<JumpInst>(Term)) {
        Block *T = Jump->getTarget();
        if (Depth + 1 < MaxPathLength && T != Cur && T != M &&
            T->isMerge() && !LI.isLoopHeader(T) && DT.isReachable(T))
          Next = T;
      }

      C.SizeCost += simulateTerminator(Term, resolve, stampOf, C);
      if (Depth == 0) {
        if (C.CyclesSaved > 0.0)
          Candidates.push_back(C);
        ShallowBenefit = C.CyclesSaved;
      } else if (C.CyclesSaved > ShallowBenefit) {
        // The path extension discovered benefit beyond the first merge.
        DuplicationCandidate Extended = C;
        Extended.SecondMergeId = Cur->getId();
        Candidates.push_back(Extended);
      }

      if (!Next)
        break;
      // The continuation replaces the copied jump with the next merge's
      // body (duplicating the second merge removes that jump again).
      C.SizeCost -= opcodeSize(Opcode::Jump);
      ++paths_simulated;
      if (Stats)
        ++Stats->PathsSimulated;
      CurPred = Cur;
      Cur = Next;
    }
  }

  /// Returns the size the copy of \p I contributes; updates benefit and
  /// synonyms when an applicability check fires.
  int64_t
  simulateInstruction(Instruction *I, MemoryState &Memory,
                      std::unordered_map<Instruction *, Instruction *> &Syn,
                      const Resolver &Resolve, const StampLookup &StampOf,
                      DuplicationCandidate &C) {
    switch (I->getOpcode()) {
    case Opcode::LoadField: {
      auto *Load = cast<LoadFieldInst>(I);
      Instruction *Obj = Resolve(Load->getObject());
      if (Instruction *Known = Memory.lookup(Obj, Load->getFieldIndex())) {
        // Read elimination AC fired: the copied load is redundant.
        Syn[I] = Known;
        C.CyclesSaved += Load->estimatedCycles();
        ++C.OptimizationsTriggered;
        ++C.Opportunities.ReadEliminations;
        ++read_eliminations;
        if (Stats)
          ++Stats->ReadEliminations;
        return 0;
      }
      Memory.recordAvailable(Obj, Load->getFieldIndex(), I);
      return I->estimatedSize();
    }
    case Opcode::StoreField: {
      auto *Store = cast<StoreFieldInst>(I);
      Instruction *Obj = Resolve(Store->getObject());
      Instruction *Val = Resolve(Store->getValue());
      if (Memory.lookup(Obj, Store->getFieldIndex()) == Val) {
        C.CyclesSaved += Store->estimatedCycles();
        ++C.OptimizationsTriggered;
        ++C.Opportunities.ReadEliminations;
        ++read_eliminations;
        if (Stats)
          ++Stats->ReadEliminations;
        return 0;
      }
      Memory.recordStore(Obj, Store->getFieldIndex(), Val);
      return I->estimatedSize();
    }
    case Opcode::Call:
    case Opcode::Invoke:
      Memory.killForCall();
      return I->estimatedSize();
    case Opcode::New:
      Memory.recordAllocation(cast<NewInst>(I), fieldsOf(cast<NewInst>(I)));
      return I->estimatedSize();
    default:
      break;
    }

    FoldOutcome Outcome = tryCanonicalize(I, Resolve, StampOf, F);
    if (!Outcome)
      return I->estimatedSize();
    Instruction *Repl = Outcome.Replacement;
    Syn[I] = Repl;
    ++C.OptimizationsTriggered;
    if (Outcome.IsNew) {
      // Action step produced a rewritten operation (e.g. div -> shr,
      // Figure 3d: CS = 32 - 1 = 31).
      ScratchNodes.push_back(Repl);
      C.CyclesSaved +=
          static_cast<double>(I->estimatedCycles()) - Repl->estimatedCycles();
      ++C.Opportunities.StrengthReductions;
      ++strength_reductions;
      if (Stats)
        ++Stats->StrengthReductions;
      return Repl->estimatedSize();
    }
    // Folded to an existing value: the copy disappears entirely.
    C.CyclesSaved += I->estimatedCycles();
    ++C.Opportunities.ConstantFolds;
    ++constant_folds;
    if (Stats)
      ++Stats->ConstantFolds;
    return 0;
  }

  /// Terminator handling: a branch whose resolved condition is decided
  /// is a conditional-elimination opportunity; the copy becomes a jump.
  int64_t simulateTerminator(Instruction *Term, const Resolver &Resolve,
                             const StampLookup &StampOf,
                             DuplicationCandidate &C) {
    if (auto *If = dyn_cast<IfInst>(Term)) {
      Stamp CondStamp = StampOf(Resolve(If->getCondition()));
      if (CondStamp.asConstant()) {
        C.CyclesSaved += static_cast<double>(If->estimatedCycles()) -
                         opcodeCycles(Opcode::Jump);
        ++C.OptimizationsTriggered;
        ++C.Opportunities.ConditionalEliminations;
        ++conditional_eliminations;
        if (Stats)
          ++Stats->ConditionalEliminations;
        return opcodeSize(Opcode::Jump);
      }
    }
    return Term->estimatedSize();
  }

  Function &F;
  const Module *ClassTable;
  SimulationStats *Stats;
  unsigned MaxPathLength;
  CancellationToken *Cancel;
  DominatorTree DT;
  LoopInfo LI;
  BlockFrequency Freq;
  StampMap Stamps;
  ScopedStamps Scope;
  std::vector<DuplicationCandidate> Candidates;
  std::vector<Instruction *> ScratchNodes;
};

} // namespace

std::vector<DuplicationCandidate>
dbds::simulateDuplications(Function &F, const Module *ClassTable,
                           SimulationStats *Stats, unsigned MaxPathLength,
                           CancellationToken *Cancel) {
  assert(MaxPathLength >= 1 && "at least the merge itself is simulated");
  SimulationDriver Driver(F, ClassTable, Stats, MaxPathLength, Cancel);
  return Driver.run();
}
