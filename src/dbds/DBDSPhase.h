//===- dbds/DBDSPhase.h - The three-tier DBDS driver -------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full DBDS optimization (paper Figure 2): simulate -> trade-off ->
/// optimize, iterated up to three times, followed by the cleanup pipeline
/// that performs the follow-up optimizations whose potential the
/// simulation tier discovered. Also provides the backtracking-based
/// baseline of Algorithm 1 for the §3.1 compile-time comparison.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_DBDS_DBDSPHASE_H
#define DBDS_DBDS_DBDSPHASE_H

#include "dbds/Candidate.h"
#include "ir/Function.h"

#include <memory>

namespace dbds {

/// Aggregate outcome of one DBDS run over a compilation unit.
struct DBDSResult {
  unsigned CandidatesSimulated = 0;
  unsigned DuplicationsPerformed = 0;
  unsigned IterationsRun = 0;
  double TotalBenefit = 0.0; ///< Sum of chosen candidates' benefit.
  /// Duplication rounds that failed verification and were rolled back to
  /// their pre-round snapshot (DBDS then stops for the function).
  unsigned RollbacksPerformed = 0;
  /// True when the compile budget expired and DBDS stopped early (the
  /// budget, if any, is degraded to DegradationLevel::NoDBDS).
  bool BudgetExpired = false;
  /// True when the cancellation token fired and DBDS stopped at a safe
  /// checkpoint (the IR is whole; partial rounds were rolled forward or
  /// back, never left half-applied).
  bool Cancelled = false;
};

/// Runs the DBDS algorithm on \p F with \p Config. The dupalot
/// configuration is Config.UseTradeoff == false.
DBDSResult runDBDS(Function &F, const DBDSConfig &Config);

/// Outcome of the backtracking baseline (Algorithm 1).
struct BacktrackingResult {
  unsigned GraphCopies = 0;   ///< Whole-IR snapshots taken (the 10x cost).
  unsigned Duplications = 0;  ///< Attempts that were kept.
  unsigned Backtracks = 0;    ///< Attempts that were reverted.
};

/// Algorithm 1: tentatively duplicate at each merge, run the optimizers,
/// keep the result only if the expected-cycle estimate improved, otherwise
/// restore the snapshot. Replaces *F when progress is kept. \p ClassTable
/// as in DBDSConfig. \p MaxUnitSize bounds growth like the VM limit.
BacktrackingResult runBacktrackingDuplication(std::unique_ptr<Function> &F,
                                              const Module *ClassTable,
                                              uint64_t MaxUnitSize = 65536);

} // namespace dbds

#endif // DBDS_DBDS_DBDSPHASE_H
