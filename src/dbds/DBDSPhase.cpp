//===- dbds/DBDSPhase.cpp - The three-tier DBDS driver ---------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/DBDSPhase.h"

#include "analysis/Lint.h"
#include "analysis/Loops.h"
#include "analysis/Verifier.h"
#include "dbds/CostModel.h"
#include "dbds/Duplicator.h"
#include "dbds/Simulator.h"
#include "opts/Phase.h"
#include "support/Budget.h"
#include "support/Cancellation.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/Timer.h"
#include "telemetry/Counters.h"
#include "telemetry/Json.h"
#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"

#include <algorithm>
#include <unordered_set>
#include <cstdio>
#include <cstdlib>

using namespace dbds;

DBDS_COUNTER(dbds, iterations_run);
DBDS_COUNTER(dbds, duplications_performed);
DBDS_COUNTER(dbds, rollbacks_performed);
DBDS_COUNTER(dbds, candidates_stale);

// Per-tier latency distributions (the paper's three-tier split, §3): how
// the duplication pass's compile time divides between simulation,
// trade-off, and optimization. candidates_per_iteration is a property of
// the IR alone, so it participates in the determinism contract — samples
// from budget-expired/cancelled runs are dropped (see runDBDS) because
// their count depends on supervision timing.
DBDS_HISTOGRAM(dbds, simulate_ns, Nanoseconds, Timing);
DBDS_HISTOGRAM(dbds, tradeoff_ns, Nanoseconds, Timing);
DBDS_HISTOGRAM(dbds, optimize_ns, Nanoseconds, Timing);
DBDS_HISTOGRAM(dbds, candidates_per_iteration, Count, Deterministic);

namespace {

/// Post-mutation check in the transactional protocol: lints the function
/// and summarizes the error findings ("" = clean), letting the caller roll
/// back. Under fail-fast the full multi-finding report is printed before
/// aborting — the structured replacement for the old first-error-only
/// verifier message.
std::string checkAfterMutation(Function &F, const char *When,
                               const DBDSConfig &Config) {
  LintReport Report = Linter::standard(Config.ClassTable).lint(F);
  if (!Report.hasErrors())
    return "";
  if (Config.FailFast) {
    fprintf(stderr, "lint failed %s on @%s (%u error(s)):\n%s", When,
            F.getName().c_str(), Report.errorCount(),
            Report.render().c_str());
    abort();
  }
  const LintFinding *First = Report.firstError();
  std::string Summary =
      "[" + First->RuleId + "] " + First->location() + ": " + First->Message;
  if (Report.errorCount() > 1)
    Summary += " (+" + std::to_string(Report.errorCount() - 1) +
               " more error(s))";
  return Summary;
}

/// Revalidates a candidate against the current CFG (earlier duplications
/// in the same iteration may have restructured it).
bool candidateStillValid(Function &F, const DuplicationCandidate &C,
                         Block *&M, Block *&P) {
  M = F.getBlockById(C.MergeId);
  P = F.getBlockById(C.PredId);
  if (!M || !P || !canDuplicateInto(M, P))
    return false;
  DominatorTree DT(F);
  if (!DT.isReachable(M) || !DT.isReachable(P))
    return false;
  LoopInfo LI(F, DT);
  return !LI.isLoopHeader(M);
}

} // namespace

DBDSResult dbds::runDBDS(Function &F, const DBDSConfig &Config) {
  DBDSResult Result;
  TraceSession *TS = TraceSession::active();
  TraceSpan FnSpan(TS, "dbds", "dbds",
                   TS ? "\"function\":" + jsonString(F.getName())
                      : std::string());
  uint64_t InitialSize = F.estimatedCodeSize();
  PhaseManager Cleanup =
      PhaseManager::standardPipeline(Config.Verify, Config.ClassTable);
  Cleanup.setFailFast(Config.FailFast);
  Cleanup.setDiagnostics(Config.Diags);
  Cleanup.setBudget(Config.Budget);
  Cleanup.setCancellation(Config.Cancel);
  Cleanup.setDisabledPhases(Config.DisabledPhases);

  // Transactional mode: each duplication round runs against a pre-round
  // snapshot; a verifier failure rolls the whole round back and stops DBDS
  // for this function (the speculative phase is optional — paper §3).
  const bool Transactional = Config.Verify && !Config.FailFast;

  // §5.2: "subsequent iterations of DBDS will consider new merges first
  // and only expand to already visited ones if there is sufficient budget
  // left" — merges seen in earlier iterations rank behind fresh ones.
  std::unordered_set<unsigned> VisitedMerges;

  auto budgetExpired = [&Result, &Config, &F]() {
    if (!Config.Budget || !Config.Budget->expired())
      return false;
    Config.Budget->degradeTo(DegradationLevel::NoDBDS);
    if (!Result.BudgetExpired && Config.Diags)
      Config.Diags->note("dbds", F.getName(),
                         "compile budget exhausted; dropping duplication");
    Result.BudgetExpired = true;
    return true;
  };

  auto cancelled = [&Result, &Config, &F]() {
    if (!Config.Cancel || !Config.Cancel->checkpoint())
      return false;
    if (!Result.Cancelled && Config.Diags)
      Config.Diags->note("dbds", F.getName(),
                         std::string("compilation cancelled (") +
                             cancelReasonName(Config.Cancel->reason()) +
                             "); dropping duplication");
    Result.Cancelled = true;
    return true;
  };

  // candidates_per_iteration is Deterministic-class, but how many
  // iterations run — and therefore how many samples exist — depends on
  // where the wall-clock budget or a cancellation happened to land. Buffer
  // the per-iteration counts and publish them only for runs supervision
  // did not cut short, mirroring the interpreter's run_steps rule.
  std::vector<uint64_t> CandidateSamples;
  auto flushCandidateSamples = [&Result, &CandidateSamples]() {
    if (Result.BudgetExpired || Result.Cancelled)
      return;
    for (uint64_t N : CandidateSamples)
      candidates_per_iteration.record(N);
  };

  for (unsigned Iter = 0; Iter != Config.MaxIterations; ++Iter) {
    if (budgetExpired() || cancelled())
      break;
    ++Result.IterationsRun;
    ++iterations_run;

    std::unique_ptr<Function> RoundSnapshot;
    if (Transactional)
      RoundSnapshot = F.clone();

    // Tier 1: simulation (with path continuation when the §8 extension is
    // enabled).
    std::vector<DuplicationCandidate> Candidates;
    const bool Metered = MetricsRegistry::enabled();
    {
      TraceSpan SimSpan(TS, "simulate", "dbds",
                        TS ? "\"iteration\":" + jsonNumber(Iter)
                           : std::string());
      uint64_t T0 = Metered ? Timer::nowNs() : 0;
      Candidates = simulateDuplications(
          F, Config.ClassTable, /*Stats=*/nullptr,
          /*MaxPathLength=*/Config.EnablePathDuplication ? 2 : 1,
          Config.Cancel);
      if (Metered)
        simulate_ns.record(Timer::nowNs() - T0);
    }
    Result.CandidatesSimulated += Candidates.size();
    CandidateSamples.push_back(Candidates.size());

    // Tier 2: trade-off — most promising candidates first (§3.2: sorted by
    // benefit and cost, to optimize the best ones while budget remains);
    // after the first iteration, new merges rank before revisited ones.
    TraceSpan TradeoffSpan(TS, "tradeoff", "dbds",
                           TS ? "\"iteration\":" + jsonNumber(Iter)
                              : std::string());
    uint64_t TradeoffT0 = Metered ? Timer::nowNs() : 0;
    std::sort(Candidates.begin(), Candidates.end(),
              [&VisitedMerges](const DuplicationCandidate &A,
                               const DuplicationCandidate &B) {
                bool ASeen = VisitedMerges.count(A.MergeId) != 0;
                bool BSeen = VisitedMerges.count(B.MergeId) != 0;
                if (ASeen != BSeen)
                  return !ASeen; // fresh merges first
                if (A.benefit() != B.benefit())
                  return A.benefit() > B.benefit();
                if (A.SizeCost != B.SizeCost)
                  return A.SizeCost < B.SizeCost;
                return A.MergeId < B.MergeId; // deterministic tie-break
              });
    for (const DuplicationCandidate &C : Candidates)
      VisitedMerges.insert(C.MergeId);
    if (Metered)
      tradeoff_ns.record(Timer::nowNs() - TradeoffT0);
    TradeoffSpan.close();

    // Tier 3: optimization. Every candidate ruled on gets a decision-log
    // record carrying its exact shouldDuplicate inputs and verdict.
    DecisionLog *DL = Config.Decisions;
    const size_t RoundStartIdx = DL ? DL->decisions().size() : 0;
    auto makeDecision = [&](const DuplicationCandidate &C,
                            uint64_t CurrentSize) {
      DuplicationDecision D;
      D.FunctionName = F.getName();
      D.Iteration = Iter;
      D.MergeId = C.MergeId;
      D.PredId = C.PredId;
      D.SecondMergeId = C.SecondMergeId;
      D.CyclesSaved = C.CyclesSaved;
      D.Probability = C.Probability;
      D.SizeCost = C.SizeCost;
      D.CurrentSize = CurrentSize;
      D.InitialSize = InitialSize;
      D.Opportunities = C.Opportunities;
      return D;
    };
    double IterationBenefit = 0.0;
    bool Changed = false;
    bool RolledBack = false;
    const unsigned DupsBeforeRound = Result.DuplicationsPerformed;

    // Verifies the IR after a duplication; under the transactional
    // protocol a failure restores the pre-round snapshot and stops DBDS
    // for this function.
    auto verifyOrRollback = [&](const char *When) {
      if (!Config.Verify)
        return true;
      // Fault injection point: deterministically corrupt the IR right
      // after a duplication to exercise the rollback machinery.
      if (Config.Injector) {
        switch (Config.Injector->at("dbds-duplicate")) {
        case FaultKind::CorruptIR:
          corruptFunctionIR(F, Config.Injector->entropy());
          break;
        case FaultKind::Hang:
          hangUntilCancelled(Config.Cancel);
          break;
        default:
          break; // PhaseFailure/ResourceExhaustion: not duplication faults.
        }
      }
      std::string Error = checkAfterMutation(F, When, Config);
      if (Error.empty())
        return true;
      F.restoreFrom(*RoundSnapshot);
      assert(verifyFunction(F).empty() &&
             "rollback restored an invalid snapshot");
      // The snapshot predates the whole round: un-count this round's
      // duplications, they no longer exist in the IR.
      Result.DuplicationsPerformed = DupsBeforeRound;
      ++Result.RollbacksPerformed;
      ++rollbacks_performed;
      RolledBack = true;
      if (Config.Diags)
        Config.Diags->warning("dbds", F.getName(),
                              std::string("duplication round rolled back (") +
                                  When + "): " + Error);
      return false;
    };

    TraceSpan OptSpan(TS, "optimize", "dbds",
                      TS ? "\"iteration\":" + jsonNumber(Iter)
                         : std::string());
    uint64_t OptT0 = Metered ? Timer::nowNs() : 0;
    for (const DuplicationCandidate &C : Candidates) {
      if (budgetExpired() || cancelled())
        break;
      Block *M = nullptr, *P = nullptr;
      if (!candidateStillValid(F, C, M, P)) {
        ++candidates_stale;
        if (DL) {
          DuplicationDecision D = makeDecision(C, F.estimatedCodeSize());
          D.Verdict = DecisionVerdict::RejectedStale;
          DL->append(std::move(D));
        }
        continue;
      }
      uint64_t CurrentSize = F.estimatedCodeSize();
      TradeoffClauses Clauses;
      bool TradeoffEvaluated = false;
      if (Config.UseTradeoff) {
        TradeoffEvaluated = true;
        if (!shouldDuplicate(C.CyclesSaved, C.Probability, C.SizeCost,
                             CurrentSize, InitialSize, Config, &Clauses)) {
          if (DL) {
            DuplicationDecision D = makeDecision(C, CurrentSize);
            D.TradeoffEvaluated = true;
            D.Clauses = Clauses;
            D.Verdict = DecisionVerdict::RejectedTradeoff;
            DL->append(std::move(D));
          }
          continue;
        }
      } else {
        // dupalot: any benefit suffices, only the hard VM limit applies.
        if (C.CyclesSaved <= 0.0 || CurrentSize >= Config.MaxUnitSize) {
          if (DL) {
            DuplicationDecision D = makeDecision(C, CurrentSize);
            D.Verdict = C.CyclesSaved <= 0.0
                            ? DecisionVerdict::RejectedNoBenefit
                            : DecisionVerdict::RejectedSizeLimit;
            DL->append(std::move(D));
          }
          continue;
        }
      }
      if (!duplicateIntoPredecessor(F, M, P, Config.Cancel))
        break; // Cancelled before the transformation started; IR untouched.
      if (!verifyOrRollback("after duplication")) {
        if (DL) {
          DuplicationDecision D = makeDecision(C, CurrentSize);
          D.TradeoffEvaluated = TradeoffEvaluated;
          D.Clauses = Clauses;
          D.Verdict = DecisionVerdict::RolledBack;
          DL->append(std::move(D));
        }
        break;
      }
      ++Result.DuplicationsPerformed;
      ++duplications_performed;
      unsigned DupsForCandidate = 1;

      // §8 extension: continue the duplication along the simulated path.
      // After the first duplication P ends with the copied jump into the
      // second merge; duplicate that one into P as well.
      if (C.isPath()) {
        assert(Config.EnablePathDuplication &&
               "path candidate without the extension enabled");
        Block *M2 = F.getBlockById(C.SecondMergeId);
        DominatorTree DT(F);
        LoopInfo LI(F, DT);
        if (M2 && canDuplicateInto(M2, P) && DT.isReachable(M2) &&
            !LI.isLoopHeader(M2) &&
            duplicateIntoPredecessor(F, M2, P, Config.Cancel)) {
          if (!verifyOrRollback("after path duplication")) {
            if (DL) {
              DuplicationDecision D = makeDecision(C, CurrentSize);
              D.TradeoffEvaluated = TradeoffEvaluated;
              D.Clauses = Clauses;
              D.Verdict = DecisionVerdict::RolledBack;
              DL->append(std::move(D));
            }
            break;
          }
          ++Result.DuplicationsPerformed;
          ++duplications_performed;
          ++DupsForCandidate;
        }
      }

      if (DL) {
        DuplicationDecision D = makeDecision(C, CurrentSize);
        D.TradeoffEvaluated = TradeoffEvaluated;
        D.Clauses = Clauses;
        D.Verdict = DecisionVerdict::Accepted;
        D.DuplicationsPerformed = DupsForCandidate;
        DL->append(std::move(D));
      }
      IterationBenefit += C.benefit();
      Changed = true;
    }
    if (Metered)
      optimize_ns.record(Timer::nowNs() - OptT0);
    OptSpan.close();
    if (RolledBack) {
      // The round's duplications were restored away; their Accepted
      // records no longer describe the IR.
      if (DL)
        DL->markRolledBackFrom(RoundStartIdx, F.getName());
      // Rollback is IR-determined (lint failure / deterministic fault
      // injection), not schedule-dependent: the buffered samples stand.
      flushCandidateSamples();
      return Result; // Last known-good IR is in place; DBDS is done here.
    }
    Result.TotalBenefit += IterationBenefit;

    // Follow-up optimizations on the duplicated code (skipped once the
    // budget is gone: duplicated-but-uncleaned IR is still valid).
    if (Changed && !Result.BudgetExpired) {
      TraceSpan CleanupSpan(TS, "cleanup", "dbds",
                            TS ? "\"iteration\":" + jsonNumber(Iter)
                               : std::string());
      Cleanup.run(F);
    }

    if (!Changed || IterationBenefit < Config.MinIterationBenefit)
      break;
  }
  flushCandidateSamples();
  return Result;
}

BacktrackingResult
dbds::runBacktrackingDuplication(std::unique_ptr<Function> &F,
                                 const Module *ClassTable,
                                 uint64_t MaxUnitSize) {
  BacktrackingResult Result;
  PhaseManager Pipeline =
      PhaseManager::standardPipeline(/*Verify=*/false, ClassTable);

  bool ProgressMade = true;
  while (ProgressMade) {
    ProgressMade = false;
    // Snapshot the merge list; the CFG changes under us, so blocks are
    // revisited by id.
    std::vector<unsigned> MergeIds;
    for (Block *B : F->blocks())
      if (B->isMerge())
        MergeIds.push_back(B->getId());

    for (unsigned MergeId : MergeIds) {
      if (F->estimatedCodeSize() >= MaxUnitSize)
        return Result;
      Block *M = F->getBlockById(MergeId);
      if (!M || !M->isMerge())
        continue;
      {
        DominatorTree DT(*F);
        if (!DT.isReachable(M))
          continue;
        LoopInfo LI(*F, DT);
        if (LI.isLoopHeader(M))
          continue;
      }

      // Algorithm 1: copy the whole CFG — the operation whose cost makes
      // backtracking impractical (§3.1: ~10x compile time in Graal).
      std::unique_ptr<Function> Snapshot = F->clone();
      ++Result.GraphCopies;
      double Before = expectedCycles(*F);

      bool DuplicatedAny = false;
      SmallVector<Block *, 4> Preds(M->preds().begin(), M->preds().end());
      for (Block *P : Preds) {
        if (canDuplicateInto(M, P)) {
          duplicateIntoPredecessor(*F, M, P);
          DuplicatedAny = true;
        }
      }
      if (!DuplicatedAny)
        continue;
      Pipeline.run(*F);

      double After = expectedCycles(*F);
      if (After < Before) {
        ++Result.Duplications;
        ProgressMade = true;
        break; // the CFG and block list changed: restart the outer loop
      }
      // Backtrack: restore the snapshot.
      ++Result.Backtracks;
      F = std::move(Snapshot);
    }
  }
  return Result;
}
