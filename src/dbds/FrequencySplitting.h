//===- dbds/FrequencySplitting.h - Self-style splitting baseline -*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The related-work baseline from paper §7: the Self compiler's splitting
/// (Chambers) duplicates merges based on the *frequency* of the optimized
/// code path (weight) and the code-size cost of the duplication — without
/// analyzing in advance which optimizations a duplication would enable.
/// DBDS §7 claims to improve on exactly this by simulating the benefit
/// first. This implementation duplicates every non-loop-header merge
/// whose predecessor is hot enough, within the same size budget DBDS
/// uses, so the two heuristics are directly comparable.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_DBDS_FREQUENCYSPLITTING_H
#define DBDS_DBDS_FREQUENCYSPLITTING_H

#include "ir/Function.h"

namespace dbds {

class Module;

/// Tuning of the Self-style baseline.
struct SplittingConfig {
  /// Minimum relative execution frequency of the predecessor (the
  /// "weight" of Chambers' heuristics).
  double HotThreshold = 0.5;
  /// Same meaning as DBDSConfig::IncreaseBudget / MaxUnitSize.
  double IncreaseBudget = 1.5;
  uint64_t MaxUnitSize = 65536;
  unsigned MaxIterations = 3;
  const Module *ClassTable = nullptr;
  bool Verify = true;
};

struct SplittingResult {
  unsigned Duplications = 0;
  unsigned IterationsRun = 0;
};

/// Runs frequency-only splitting on \p F: duplicate hot predecessor->merge
/// pairs blindly, then clean up with the standard pipeline.
SplittingResult runFrequencySplitting(Function &F,
                                      const SplittingConfig &Config);

} // namespace dbds

#endif // DBDS_DBDS_FREQUENCYSPLITTING_H
