//===- dbds/Tradeoff.cpp - The shouldDuplicate heuristic -------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/Candidate.h"

using namespace dbds;

bool dbds::shouldDuplicate(double CyclesSaved, double Probability,
                           int64_t SizeCost, uint64_t CurrentSize,
                           uint64_t InitialSize, const DBDSConfig &Config) {
  if (CyclesSaved <= 0.0)
    return false;
  double ScaledBenefit = CyclesSaved * Probability * Config.BenefitScale;
  if (!(ScaledBenefit > static_cast<double>(SizeCost)))
    return false;
  if (CurrentSize >= Config.MaxUnitSize)
    return false;
  double Budget =
      static_cast<double>(InitialSize) * Config.IncreaseBudget;
  return static_cast<double>(CurrentSize) + static_cast<double>(SizeCost) <
         Budget;
}
