//===- dbds/Tradeoff.cpp - The shouldDuplicate heuristic -------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/Candidate.h"

#include "telemetry/Counters.h"

using namespace dbds;

DBDS_COUNTER(tradeoff, candidates_evaluated);
DBDS_COUNTER(tradeoff, candidates_accepted);
DBDS_COUNTER(tradeoff, rejected_no_cycles_saved);
DBDS_COUNTER(tradeoff, rejected_benefit_vs_cost);
DBDS_COUNTER(tradeoff, rejected_max_unit_size);
DBDS_COUNTER(tradeoff, rejected_growth_budget);

bool dbds::shouldDuplicate(double CyclesSaved, double Probability,
                           int64_t SizeCost, uint64_t CurrentSize,
                           uint64_t InitialSize, const DBDSConfig &Config,
                           TradeoffClauses *Clauses) {
  // All four §5.4 clauses are evaluated unconditionally so the decision
  // log can report every clause's verdict, not just the first failure.
  TradeoffClauses C;
  C.PositiveCyclesSaved = CyclesSaved > 0.0;
  double ScaledBenefit = CyclesSaved * Probability * Config.BenefitScale;
  C.BenefitOutweighsCost = ScaledBenefit > static_cast<double>(SizeCost);
  C.UnderMaxUnitSize = CurrentSize < Config.MaxUnitSize;
  double Budget = static_cast<double>(InitialSize) * Config.IncreaseBudget;
  C.WithinGrowthBudget =
      static_cast<double>(CurrentSize) + static_cast<double>(SizeCost) <
      Budget;
  if (Clauses)
    *Clauses = C;

  ++candidates_evaluated;
  if (!C.PositiveCyclesSaved)
    ++rejected_no_cycles_saved;
  else if (!C.BenefitOutweighsCost)
    ++rejected_benefit_vs_cost;
  else if (!C.UnderMaxUnitSize)
    ++rejected_max_unit_size;
  else if (!C.WithinGrowthBudget)
    ++rejected_growth_budget;
  else
    ++candidates_accepted;

  return C.pass();
}

bool dbds::shouldDuplicate(double CyclesSaved, double Probability,
                           int64_t SizeCost, uint64_t CurrentSize,
                           uint64_t InitialSize, const DBDSConfig &Config) {
  return shouldDuplicate(CyclesSaved, Probability, SizeCost, CurrentSize,
                         InitialSize, Config, /*Clauses=*/nullptr);
}
