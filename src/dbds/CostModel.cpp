//===- dbds/CostModel.cpp - Whole-unit cost estimation ---------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/CostModel.h"

#include "analysis/BlockFrequency.h"

using namespace dbds;

double dbds::expectedCycles(Function &F) {
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  BlockFrequency Freq = BlockFrequency::computeStatic(F, DT, LI);
  double Total = 0.0;
  for (Block *B : F.blocks()) {
    double BlockCycles = 0.0;
    for (const Instruction *I : *B)
      BlockCycles += I->estimatedCycles();
    Total += Freq.frequency(B) * BlockCycles;
  }
  return Total;
}

uint64_t dbds::codeSize(const Function &F) { return F.estimatedCodeSize(); }
