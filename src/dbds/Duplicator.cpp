//===- dbds/Duplicator.cpp - Tail duplication transformation ---------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/Duplicator.h"

#include "analysis/DominatorTree.h"
#include "support/Cancellation.h"
#include "support/ErrorHandling.h"
#include "telemetry/Counters.h"
#include "telemetry/Json.h"
#include "telemetry/Trace.h"

#include <unordered_map>

using namespace dbds;

DBDS_COUNTER(duplicator, blocks_duplicated);
DBDS_COUNTER(duplicator, instructions_copied);
DBDS_COUNTER(duplicator, phis_created);

bool dbds::canDuplicateInto(Block *M, Block *P) {
  if (!M->isMerge() || M == P)
    return false;
  auto *Jump = dyn_cast_if_present<JumpInst>(P->getTerminator());
  return Jump && Jump->getTarget() == M && M->hasPred(P);
}

namespace {

/// Clones \p I with operands rewritten through \p Map (identity for values
/// not in the map). Successor blocks of terminators are preserved.
Instruction *cloneWithMapping(
    Function &F, Instruction *I,
    const std::unordered_map<Instruction *, Instruction *> &Map) {
  auto mapped = [&Map](Instruction *V) {
    auto It = Map.find(V);
    return It == Map.end() ? V : It->second;
  };
  switch (I->getOpcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return F.create<BinaryInst>(I->getOpcode(), mapped(I->getOperand(0)),
                                mapped(I->getOperand(1)));
  case Opcode::Neg:
  case Opcode::Not:
    return F.create<UnaryInst>(I->getOpcode(), mapped(I->getOperand(0)));
  case Opcode::Cmp:
    return F.create<CompareInst>(cast<CompareInst>(I)->getPredicate(),
                                 mapped(I->getOperand(0)),
                                 mapped(I->getOperand(1)));
  case Opcode::New:
    return F.create<NewInst>(cast<NewInst>(I)->getClassId());
  case Opcode::LoadField:
    return F.create<LoadFieldInst>(mapped(I->getOperand(0)),
                                   cast<LoadFieldInst>(I)->getFieldIndex());
  case Opcode::StoreField:
    return F.create<StoreFieldInst>(
        mapped(I->getOperand(0)), cast<StoreFieldInst>(I)->getFieldIndex(),
        mapped(I->getOperand(1)));
  case Opcode::Call: {
    SmallVector<Instruction *, 4> Args;
    for (Instruction *Arg : I->operands())
      Args.push_back(mapped(Arg));
    return F.create<CallInst>(cast<CallInst>(I)->getCalleeId(),
                              ArrayRef<Instruction *>(Args.begin(),
                                                      Args.size()));
  }
  case Opcode::Invoke: {
    SmallVector<Instruction *, 4> Args;
    for (Instruction *Arg : I->operands())
      Args.push_back(mapped(Arg));
    return F.create<InvokeInst>(cast<InvokeInst>(I)->getCalleeName(),
                                ArrayRef<Instruction *>(Args.begin(),
                                                        Args.size()));
  }
  case Opcode::If: {
    auto *If = cast<IfInst>(I);
    auto *Copy = F.create<IfInst>(mapped(If->getCondition()),
                                  If->getTrueSucc(), If->getFalseSucc());
    Copy->setTrueProbability(If->getTrueProbability());
    return Copy;
  }
  case Opcode::Jump:
    return F.create<JumpInst>(cast<JumpInst>(I)->getTarget());
  case Opcode::Return: {
    auto *Ret = cast<ReturnInst>(I);
    return F.create<ReturnInst>(Ret->hasValue() ? mapped(Ret->getValue())
                                                : nullptr);
  }
  default:
    dbds_unreachable("unexpected opcode in merge block duplication");
  }
}

/// Rewrites all uses of \p OrigDef that are no longer dominated by it:
/// after duplication the value has two definitions (the original in M and
/// \p CopyDef in P). Inserts phis at the iterated dominance frontier of
/// the definition blocks and routes uses to their reaching definition.
void reconstructSSA(Function &F, const DominatorTree &DT, Block *M, Block *P,
                    Instruction *OrigDef, Instruction *CopyDef) {
  std::unordered_map<Block *, Instruction *> DefAt;
  DefAt[M] = OrigDef;
  DefAt[P] = CopyDef;

  // Phi shells at the IDF of the two definition blocks.
  std::vector<PhiInst *> Shells;
  for (Block *X : DT.iteratedFrontier({M, P})) {
    auto *Shell = F.create<PhiInst>(OrigDef->getType());
    X->insertPhi(Shell);
    ++phis_created;
    DefAt[X] = Shell;
    Shells.push_back(Shell);
  }

  // Reaching definition at the end of a block: nearest def walking the
  // dominator tree upwards.
  auto reachingDef = [&DefAt, &DT](Block *B) -> Instruction * {
    for (Block *Walk = B; Walk; Walk = DT.getIdom(Walk)) {
      auto It = DefAt.find(Walk);
      if (It != DefAt.end())
        return It->second;
    }
    dbds_unreachable("use not reached by any definition");
  };

  // Route existing uses. Snapshot: rewriting edits the user list.
  SmallVector<Instruction *, 8> Users(OrigDef->users().begin(),
                                      OrigDef->users().end());
  for (Instruction *User : Users) {
    Block *UB = User->getBlock();
    assert(UB && "detached user during SSA reconstruction");
    if (UB == M && !isa<PhiInst>(User))
      continue; // still locally dominated by the original
    if (auto *Phi = dyn_cast<PhiInst>(User)) {
      // Shell phis are filled below; skip them here.
      bool IsShell = false;
      for (PhiInst *Shell : Shells)
        IsShell |= Shell == Phi;
      if (IsShell)
        continue;
      for (unsigned Idx = 0, E = Phi->getNumInputs(); Idx != E; ++Idx) {
        if (Phi->getInput(Idx) != OrigDef)
          continue;
        Instruction *Reaching = reachingDef(UB->preds()[Idx]);
        if (Reaching != OrigDef)
          Phi->setInput(Idx, Reaching);
      }
      continue;
    }
    // Ordinary use: reaching definition on entry to the user's block. The
    // def blocks M and P themselves only contain uses dominated by their
    // local definition.
    if (UB == P)
      continue;
    Instruction *Reaching = reachingDef(UB);
    if (Reaching == OrigDef)
      continue;
    for (unsigned Idx = 0, E = User->getNumOperands(); Idx != E; ++Idx)
      if (User->getOperand(Idx) == OrigDef)
        User->setOperand(Idx, Reaching);
  }

  // Fill the shells: one input per predecessor edge. An edge from a region
  // no definition reaches can never flow into a real use (uses were
  // dominated by M before the transformation); a dominating placeholder
  // constant keeps SSA form valid and is swept together with the dead
  // shell by DCE.
  auto placeholder = [&F, OrigDef]() -> Instruction * {
    if (OrigDef->getType() == Type::Obj)
      return F.nullConstant();
    return F.constant(0);
  };
  for (PhiInst *Shell : Shells) {
    Block *X = Shell->getBlock();
    for (Block *Pred : X->preds()) {
      Instruction *Reaching = nullptr;
      for (Block *Walk = Pred; Walk; Walk = DT.getIdom(Walk)) {
        auto It = DefAt.find(Walk);
        if (It != DefAt.end()) {
          Reaching = It->second;
          break;
        }
      }
      Shell->appendInput(Reaching ? Reaching : placeholder());
    }
  }
}

} // namespace

void dbds::duplicateIntoPredecessor(Function &F, Block *M, Block *P) {
  assert(canDuplicateInto(M, P) && "structural preconditions violated");
  TraceSession *TS = TraceSession::active();
  TraceSpan Span(TS, "duplicate", "duplicator",
                 TS ? "\"merge\":" + jsonNumber(M->getId()) +
                          ",\"pred\":" + jsonNumber(P->getId())
                    : std::string());
  ++blocks_duplicated;
  unsigned PredIdx = M->indexOfPred(P);

  // Drop P's jump; the copied body and terminator replace it.
  Instruction *OldJump = P->getTerminator();
  P->remove(OldJump);

  // Copy M's body with phis substituted by their input on P.
  std::unordered_map<Instruction *, Instruction *> ValueMap;
  for (PhiInst *Phi : M->phis())
    ValueMap[Phi] = Phi->getInput(PredIdx);

  SmallVector<Instruction *, 16> Originals;
  for (Instruction *I : *M)
    if (!isa<PhiInst>(I))
      Originals.push_back(I);

  for (Instruction *I : Originals) {
    Instruction *Copy = cloneWithMapping(F, I, ValueMap);
    P->append(Copy);
    ValueMap[I] = Copy;
    ++instructions_copied;
  }

  // Wire the copied terminator's edges: each successor of M gains P as an
  // additional predecessor; its phis receive the mapped value that used to
  // flow in from M.
  Instruction *Term = M->getTerminator();
  auto wireEdge = [&](Block *Succ) {
    unsigned IdxM = Succ->indexOfPred(M);
    Succ->addPred(P);
    for (PhiInst *Phi : Succ->phis()) {
      Instruction *FromM = Phi->getInput(IdxM);
      auto It = ValueMap.find(FromM);
      Phi->appendInput(It == ValueMap.end() ? FromM : It->second);
    }
  };
  if (auto *If = dyn_cast<IfInst>(Term)) {
    wireEdge(If->getTrueSucc());
    wireEdge(If->getFalseSucc());
  } else if (auto *Jump = dyn_cast<JumpInst>(Term)) {
    wireEdge(Jump->getTarget());
  }

  // M's phis are definitions too: on the duplicated path their value is
  // the input that used to flow in from P. Snapshot before removePred.
  SmallVector<std::pair<PhiInst *, Instruction *>, 4> PhiDefs;
  for (PhiInst *Phi : M->phis())
    PhiDefs.push_back({Phi, Phi->getInput(PredIdx)});

  // Detach P from M (drops phi inputs at PredIdx).
  M->removePred(PredIdx);

  // SSA reconstruction for every value of M now defined twice: the merge
  // block no longer dominates its former subtree (P reaches it as well),
  // so downstream uses are routed through freshly inserted phis.
  DominatorTree DT(F);
  for (auto &[Phi, InputAtP] : PhiDefs)
    reconstructSSA(F, DT, M, P, Phi, InputAtP);
  for (Instruction *I : Originals) {
    if (I->getType() == Type::Void || I->isTerminator())
      continue;
    reconstructSSA(F, DT, M, P, I, ValueMap.at(I));
  }
}

bool dbds::duplicateIntoPredecessor(Function &F, Block *M, Block *P,
                                    CancellationToken *Cancel) {
  if (Cancel && Cancel->checkpoint())
    return false;
  duplicateIntoPredecessor(F, M, P);
  return true;
}
