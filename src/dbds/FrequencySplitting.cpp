//===- dbds/FrequencySplitting.cpp - Self-style splitting baseline --------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dbds/FrequencySplitting.h"

#include "analysis/BlockFrequency.h"
#include "analysis/Loops.h"
#include "analysis/Verifier.h"
#include "dbds/Duplicator.h"
#include "opts/Phase.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace dbds;

SplittingResult dbds::runFrequencySplitting(Function &F,
                                            const SplittingConfig &Config) {
  SplittingResult Result;
  uint64_t InitialSize = F.estimatedCodeSize();
  PhaseManager Cleanup =
      PhaseManager::standardPipeline(Config.Verify, Config.ClassTable);

  for (unsigned Iter = 0; Iter != Config.MaxIterations; ++Iter) {
    ++Result.IterationsRun;
    // Collect hot pairs; no simulation — weight and cost only.
    struct Pair {
      unsigned MergeId, PredId;
      double Weight;
    };
    std::vector<Pair> Pairs;
    {
      DominatorTree DT(F);
      LoopInfo LI(F, DT);
      BlockFrequency Freq = BlockFrequency::computeStatic(F, DT, LI);
      for (Block *M : F.blocks()) {
        if (!M->isMerge() || LI.isLoopHeader(M) || !DT.isReachable(M))
          continue;
        for (Block *P : M->preds()) {
          if (!canDuplicateInto(M, P))
            continue;
          double Weight = Freq.relativeFrequency(P);
          if (Weight >= Config.HotThreshold)
            Pairs.push_back({M->getId(), P->getId(), Weight});
        }
      }
      std::sort(Pairs.begin(), Pairs.end(), [](const Pair &A, const Pair &B) {
        if (A.Weight != B.Weight)
          return A.Weight > B.Weight;
        return A.MergeId < B.MergeId;
      });
    }

    bool Changed = false;
    for (const Pair &P : Pairs) {
      if (F.estimatedCodeSize() >=
              static_cast<uint64_t>(static_cast<double>(InitialSize) *
                                    Config.IncreaseBudget) ||
          F.estimatedCodeSize() >= Config.MaxUnitSize)
        break;
      Block *M = F.getBlockById(P.MergeId);
      Block *Pred = F.getBlockById(P.PredId);
      if (!M || !Pred || !canDuplicateInto(M, Pred))
        continue;
      {
        DominatorTree DT(F);
        LoopInfo LI(F, DT);
        if (!DT.isReachable(M) || LI.isLoopHeader(M))
          continue;
      }
      duplicateIntoPredecessor(F, M, Pred);
      ++Result.Duplications;
      Changed = true;
      if (Config.Verify) {
        std::string Error = verifyFunction(F);
        if (!Error.empty()) {
          fprintf(stderr, "verifier failed after splitting on @%s: %s\n",
                  F.getName().c_str(), Error.c_str());
          abort();
        }
      }
    }
    if (!Changed)
      break;
    Cleanup.run(F);
  }
  return Result;
}
