//===- dbds/Duplicator.h - Tail duplication transformation ------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization tier's code transformation (paper §4.3): copies a
/// merge block's instructions into one predecessor, substituting phi
/// inputs, detaches that predecessor from the merge, and restores SSA form
/// for values of the merge that are used in formerly-dominated blocks by
/// inserting phis at iterated dominance frontiers — the "complex analysis
/// to generate valid phi instructions for usages in dominated blocks" of
/// §3.1.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_DBDS_DUPLICATOR_H
#define DBDS_DBDS_DUPLICATOR_H

#include "ir/Function.h"

namespace dbds {

class CancellationToken;

/// True if duplicating \p M into its predecessor \p P is structurally
/// possible: M is a merge, P ends with a jump to M, P != M, and M is not a
/// loop header (checked by the caller via LoopInfo; this predicate covers
/// the structural part).
bool canDuplicateInto(Block *M, Block *P);

/// Duplicates merge block \p M into its predecessor \p P (one
/// predecessor->merge pair, the unit the trade-off tier decides on).
/// Preconditions: canDuplicateInto(M, P) and M is not a loop header.
/// Leaves the function verifier-clean; follow-up folding is the cleanup
/// pipeline's job.
void duplicateIntoPredecessor(Function &F, Block *M, Block *P);

/// Token-aware variant: checks \p Cancel before starting and returns false
/// without touching the IR when the task was cancelled (the transformation
/// itself is atomic — it cannot be interrupted midway). Returns true when
/// the duplication was performed.
bool duplicateIntoPredecessor(Function &F, Block *M, Block *P,
                              CancellationToken *Cancel);

} // namespace dbds

#endif // DBDS_DBDS_DUPLICATOR_H
