//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic fault injection for exercising the transactional
/// phase machinery. The injector is a pure decision engine: components
/// with injection points (the phase driver, the DBDS optimization tier)
/// ask it whether a fault fires at the current site, and apply the
/// corruption themselves. Decisions depend only on (seed, call ordinal),
/// so a failing run replays exactly from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_FAULTINJECTOR_H
#define DBDS_SUPPORT_FAULTINJECTOR_H

#include "support/RNG.h"

#include <cstdint>

namespace dbds {

class Function;

/// What a firing injection point should do.
enum class FaultKind : uint8_t {
  None,         ///< No fault at this site.
  CorruptIR,    ///< Structurally corrupt the function (verifier-visible).
  PhaseFailure, ///< Report the phase as failed without touching the IR.
  Hang,         ///< Spin at the site until the task's deadline cancels it.
  ResourceExhaustion, ///< Starve the next interpreter run of fuel.
};

inline const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::None:
    return "none";
  case FaultKind::CorruptIR:
    return "corrupt-ir";
  case FaultKind::PhaseFailure:
    return "phase-failure";
  case FaultKind::Hang:
    return "hang";
  case FaultKind::ResourceExhaustion:
    return "resource-exhaustion";
  }
  return "?";
}

/// Deterministic fault source. \p Rate is the per-site firing probability;
/// fired faults cycle deterministically through the kinds enabled by the
/// injector's kind mask (the legacy mask alternates IR corruption and
/// forced phase failure; Hang and ResourceExhaustion are opt-in so
/// pre-supervision fault streams replay unchanged).
class FaultInjector {
public:
  // Kind-mask bits. Ordered like FaultKind; the fired-fault cycle walks
  // the enabled kinds in this order.
  static constexpr unsigned MaskCorruptIR = 1u << 0;
  static constexpr unsigned MaskPhaseFailure = 1u << 1;
  static constexpr unsigned MaskHang = 1u << 2;
  static constexpr unsigned MaskResourceExhaustion = 1u << 3;
  static constexpr unsigned MaskLegacy = MaskCorruptIR | MaskPhaseFailure;
  static constexpr unsigned MaskAll =
      MaskLegacy | MaskHang | MaskResourceExhaustion;

  explicit FaultInjector(uint64_t Seed, double Rate = 0.25,
                         unsigned KindMask = MaskLegacy)
      : Seed(Seed), Gen(Seed), Rate(Rate), Mask(KindMask) {
    assert(KindMask != 0 && (KindMask & ~MaskAll) == 0 &&
           "invalid fault-kind mask");
  }

  /// Decides whether a fault fires at the named injection point. Advances
  /// the deterministic decision stream by one step.
  FaultKind at(const char *Site);

  /// Entropy for choosing *what* to corrupt (deterministic stream shared
  /// with the decisions).
  uint64_t entropy() { return Gen.next(); }

  uint64_t seed() const { return Seed; }
  double rate() const { return Rate; }
  unsigned kindMask() const { return Mask; }
  unsigned sitesVisited() const { return Sites; }
  unsigned faultsInjected() const { return Injected; }

  /// Derives the independent injector for parallel task \p Index, attempt
  /// \p Attempt of the retry ladder: seeded from (seed, Index, Attempt)
  /// only, so a task's fault stream is the same regardless of which worker
  /// runs it, in which order, at which --jobs level — the per-task
  /// RNG-stream rule of the compile service — and each retry attempt gets
  /// a fresh, independent stream. Attempt 0 reproduces the historical
  /// forTask(Index) stream exactly. The decision stream starts fresh (zero
  /// counts); the kind mask is inherited.
  FaultInjector forTask(uint64_t Index, unsigned Attempt = 0) const {
    SplitMix64 Mix(Seed ^ (0x9e3779b97f4a7c15ULL * (Index + 1)));
    for (unsigned I = 0; I != Attempt; ++I)
      (void)Mix.next();
    return FaultInjector(Mix.next(), Rate, Mask);
  }

  /// Folds a finished task injector's site/fault counts back into this
  /// base injector (called at join time, in task index order, so summary
  /// lines stay deterministic).
  void absorbCounts(const FaultInjector &Task) {
    Sites += Task.Sites;
    Injected += Task.Injected;
  }

  /// Raw-count overload: a cache hit replays the memoized compile's site
  /// count without a live task injector to absorb from.
  void absorbCounts(unsigned TaskSites, unsigned TaskInjected) {
    Sites += TaskSites;
    Injected += TaskInjected;
  }

private:
  uint64_t Seed;
  RNG Gen;
  double Rate;
  unsigned Mask;
  unsigned Sites = 0;
  unsigned Injected = 0;
};

/// Applies one deterministic structural corruption to \p F (e.g. dropping
/// a phi input or a terminator), chosen by \p Entropy. The result is
/// guaranteed to be rejected by verifyFunction. Returns false if no
/// corruption site exists. Implemented by the phase layer, which owns the
/// injection points (opts/PhaseManager.cpp).
bool corruptFunctionIR(Function &F, uint64_t Entropy);

} // namespace dbds

#endif // DBDS_SUPPORT_FAULTINJECTOR_H
