//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic fault injection for exercising the transactional
/// phase machinery. The injector is a pure decision engine: components
/// with injection points (the phase driver, the DBDS optimization tier)
/// ask it whether a fault fires at the current site, and apply the
/// corruption themselves. Decisions depend only on (seed, call ordinal),
/// so a failing run replays exactly from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_FAULTINJECTOR_H
#define DBDS_SUPPORT_FAULTINJECTOR_H

#include "support/RNG.h"

#include <cstdint>

namespace dbds {

class Function;

/// What a firing injection point should do.
enum class FaultKind : uint8_t {
  None,         ///< No fault at this site.
  CorruptIR,    ///< Structurally corrupt the function (verifier-visible).
  PhaseFailure, ///< Report the phase as failed without touching the IR.
};

/// Deterministic fault source. \p Rate is the per-site firing probability;
/// fired faults alternate deterministically between IR corruption and
/// forced phase failure.
class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed, double Rate = 0.25)
      : Gen(Seed), Rate(Rate) {}

  /// Decides whether a fault fires at the named injection point. Advances
  /// the deterministic decision stream by one step.
  FaultKind at(const char *Site);

  /// Entropy for choosing *what* to corrupt (deterministic stream shared
  /// with the decisions).
  uint64_t entropy() { return Gen.next(); }

  unsigned sitesVisited() const { return Sites; }
  unsigned faultsInjected() const { return Injected; }

private:
  RNG Gen;
  double Rate;
  unsigned Sites = 0;
  unsigned Injected = 0;
};

/// Applies one deterministic structural corruption to \p F (e.g. dropping
/// a phi input or a terminator), chosen by \p Entropy. The result is
/// guaranteed to be rejected by verifyFunction. Returns false if no
/// corruption site exists. Implemented by the phase layer, which owns the
/// injection points (opts/PhaseManager.cpp).
bool corruptFunctionIR(Function &F, uint64_t Entropy);

} // namespace dbds

#endif // DBDS_SUPPORT_FAULTINJECTOR_H
