//===- support/SmallVector.h - Vector with inline storage -------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector that stores its first N elements inline, avoiding heap traffic
/// for the short operand/predecessor lists that dominate compiler workloads.
/// API subset of llvm::SmallVector; `SmallVectorImpl<T>` is the size-erased
/// base usable in interfaces.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_SMALLVECTOR_H
#define DBDS_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

namespace dbds {

/// Size-erased base class holding the begin/size/capacity triple and all
/// operations that do not depend on the inline element count.
template <typename T> class SmallVectorImpl {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using size_type = unsigned;

  SmallVectorImpl(const SmallVectorImpl &) = delete;

  iterator begin() { return Begin; }
  const_iterator begin() const { return Begin; }
  iterator end() { return Begin + Size; }
  const_iterator end() const { return Begin + Size; }

  size_type size() const { return Size; }
  size_type capacity() const { return Capacity; }
  bool empty() const { return Size == 0; }

  T &operator[](size_type Idx) {
    assert(Idx < Size && "SmallVector index out of range");
    return Begin[Idx];
  }
  const T &operator[](size_type Idx) const {
    assert(Idx < Size && "SmallVector index out of range");
    return Begin[Idx];
  }

  T &front() {
    assert(!empty() && "front() on empty SmallVector");
    return Begin[0];
  }
  const T &front() const {
    assert(!empty() && "front() on empty SmallVector");
    return Begin[0];
  }
  T &back() {
    assert(!empty() && "back() on empty SmallVector");
    return Begin[Size - 1];
  }
  const T &back() const {
    assert(!empty() && "back() on empty SmallVector");
    return Begin[Size - 1];
  }

  void push_back(const T &Elt) {
    if (Size == Capacity)
      grow(Size + 1);
    new (Begin + Size) T(Elt);
    ++Size;
  }

  void push_back(T &&Elt) {
    if (Size == Capacity)
      grow(Size + 1);
    new (Begin + Size) T(std::move(Elt));
    ++Size;
  }

  template <typename... ArgTypes> T &emplace_back(ArgTypes &&...Args) {
    if (Size == Capacity)
      grow(Size + 1);
    T *Slot = new (Begin + Size) T(std::forward<ArgTypes>(Args)...);
    ++Size;
    return *Slot;
  }

  void pop_back() {
    assert(!empty() && "pop_back() on empty SmallVector");
    --Size;
    Begin[Size].~T();
  }

  void clear() {
    destroyRange(Begin, Begin + Size);
    Size = 0;
  }

  void reserve(size_type N) {
    if (N > Capacity)
      grow(N);
  }

  void resize(size_type N) {
    if (N < Size) {
      destroyRange(Begin + N, Begin + Size);
      Size = N;
      return;
    }
    reserve(N);
    for (size_type I = Size; I < N; ++I)
      new (Begin + I) T();
    Size = N;
  }

  void resize(size_type N, const T &Fill) {
    if (N < Size) {
      destroyRange(Begin + N, Begin + Size);
      Size = N;
      return;
    }
    reserve(N);
    for (size_type I = Size; I < N; ++I)
      new (Begin + I) T(Fill);
    Size = N;
  }

  /// Appends the half-open range [First, Last).
  template <typename ItTy> void append(ItTy First, ItTy Last) {
    for (; First != Last; ++First)
      push_back(*First);
  }

  void assign(std::initializer_list<T> IL) {
    clear();
    append(IL.begin(), IL.end());
  }

  /// Erases the element at \p Pos, shifting the tail left. Returns the
  /// iterator to the element that followed the erased one.
  iterator erase(iterator Pos) {
    assert(Pos >= begin() && Pos < end() && "erase() iterator out of range");
    std::move(Pos + 1, end(), Pos);
    pop_back();
    return Pos;
  }

  /// Inserts \p Elt before \p Pos. Returns the iterator to the inserted
  /// element.
  iterator insert(iterator Pos, const T &Elt) {
    size_type Idx = static_cast<size_type>(Pos - begin());
    assert(Idx <= Size && "insert() iterator out of range");
    push_back(Elt);
    std::rotate(begin() + Idx, end() - 1, end());
    return begin() + Idx;
  }

  SmallVectorImpl &operator=(const SmallVectorImpl &RHS) {
    if (this == &RHS)
      return *this;
    clear();
    append(RHS.begin(), RHS.end());
    return *this;
  }

  bool operator==(const SmallVectorImpl &RHS) const {
    return Size == RHS.Size && std::equal(begin(), end(), RHS.begin());
  }

protected:
  SmallVectorImpl(T *InlineStorage, size_type InlineCapacity)
      : Begin(InlineStorage), Capacity(InlineCapacity),
        Inline(InlineStorage) {}

  ~SmallVectorImpl() {
    destroyRange(Begin, Begin + Size);
    if (Begin != Inline)
      free(Begin);
  }

  static void destroyRange(T *First, T *Last) {
    for (; First != Last; ++First)
      First->~T();
  }

  void grow(size_type MinCapacity) {
    size_type NewCapacity = std::max(MinCapacity, Capacity ? 2 * Capacity : 4u);
    T *NewBegin = static_cast<T *>(malloc(NewCapacity * sizeof(T)));
    assert(NewBegin && "SmallVector allocation failed");
    for (size_type I = 0; I < Size; ++I) {
      new (NewBegin + I) T(std::move(Begin[I]));
      Begin[I].~T();
    }
    if (Begin != Inline)
      free(Begin);
    Begin = NewBegin;
    Capacity = NewCapacity;
  }

  T *Begin;
  size_type Size = 0;
  size_type Capacity;
  T *Inline;
};

/// Vector with \p N elements of inline storage.
template <typename T, unsigned N = 4>
class SmallVector : public SmallVectorImpl<T> {
public:
  SmallVector() : SmallVectorImpl<T>(inlineStorage(), N) {}

  SmallVector(std::initializer_list<T> IL)
      : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(IL.begin(), IL.end());
  }

  template <typename ItTy>
  SmallVector(ItTy First, ItTy Last) : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(First, Last);
  }

  SmallVector(const SmallVector &RHS) : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(const SmallVectorImpl<T> &RHS)
      : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(SmallVector &&RHS) : SmallVectorImpl<T>(inlineStorage(), N) {
    for (T &Elt : RHS)
      this->push_back(std::move(Elt));
    RHS.clear();
  }

  SmallVector &operator=(const SmallVector &RHS) {
    SmallVectorImpl<T>::operator=(RHS);
    return *this;
  }

  SmallVector &operator=(SmallVector &&RHS) {
    if (this == &RHS)
      return *this;
    this->clear();
    for (T &Elt : RHS)
      this->push_back(std::move(Elt));
    RHS.clear();
    return *this;
  }

private:
  T *inlineStorage() { return reinterpret_cast<T *>(Storage); }

  alignas(T) char Storage[N * sizeof(T)];
};

} // namespace dbds

#endif // DBDS_SUPPORT_SMALLVECTOR_H
