//===- support/ArrayRef.h - Non-owning array view ---------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A constant, non-owning view over contiguous memory, in the style of
/// llvm::ArrayRef. Cheap to copy; never stores beyond the call it is
/// passed to.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_ARRAYREF_H
#define DBDS_SUPPORT_ARRAYREF_H

#include "support/SmallVector.h"

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace dbds {

/// A constant reference to an array: a pointer and a length.
template <typename T> class ArrayRef {
public:
  using iterator = const T *;
  using value_type = T;

  ArrayRef() = default;
  ArrayRef(const T *Data, size_t Length) : Data(Data), Length(Length) {}
  ArrayRef(const std::vector<T> &Vec) : Data(Vec.data()), Length(Vec.size()) {}
  ArrayRef(const SmallVectorImpl<T> &Vec)
      : Data(Vec.begin()), Length(Vec.size()) {}
  /// From an initializer list. Like llvm::ArrayRef, this is only safe when
  /// the ArrayRef is consumed within the full-expression (the usual
  /// call-argument pattern).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  ArrayRef(std::initializer_list<T> IL)
      : Data(IL.begin()), Length(IL.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  template <size_t N> ArrayRef(const T (&Arr)[N]) : Data(Arr), Length(N) {}

  iterator begin() const { return Data; }
  iterator end() const { return Data + Length; }

  size_t size() const { return Length; }
  bool empty() const { return Length == 0; }

  const T &operator[](size_t Idx) const {
    assert(Idx < Length && "ArrayRef index out of range");
    return Data[Idx];
  }

  const T &front() const {
    assert(!empty() && "front() on empty ArrayRef");
    return Data[0];
  }
  const T &back() const {
    assert(!empty() && "back() on empty ArrayRef");
    return Data[Length - 1];
  }

  /// Returns the sub-array [Start, Start+N).
  ArrayRef<T> slice(size_t Start, size_t N) const {
    assert(Start + N <= Length && "slice() out of range");
    return ArrayRef<T>(Data + Start, N);
  }

  /// Returns the sub-array starting at \p Start through the end.
  ArrayRef<T> drop_front(size_t Start = 1) const {
    assert(Start <= Length && "drop_front() out of range");
    return ArrayRef<T>(Data + Start, Length - Start);
  }

private:
  const T *Data = nullptr;
  size_t Length = 0;
};

} // namespace dbds

#endif // DBDS_SUPPORT_ARRAYREF_H
