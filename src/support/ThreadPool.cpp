//===- support/ThreadPool.cpp - Work-stealing thread pool ------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace dbds;

unsigned ThreadPool::defaultWorkerCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned WorkerCount) {
  if (WorkerCount == 0)
    WorkerCount = 1;
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Workers.push_back(std::make_unique<WorkerState>());
  Threads.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(BatchMu);
    ShuttingDown = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::runIndexed(
    size_t NumTasks, std::function<void(size_t Index, unsigned Worker)> Task) {
  if (NumTasks == 0)
    return;
  assert(Remaining.load(std::memory_order_relaxed) == 0 &&
         "reentrant or concurrent runIndexed batches are not supported");

  {
    std::lock_guard<std::mutex> Lock(BatchMu);
    // Install the task before dealing indices: a worker that picks up an
    // index of this batch from a deque observes the deal through that
    // deque's mutex, which also publishes this assignment.
    TaskFn = std::move(Task);
    Remaining.store(NumTasks, std::memory_order_relaxed);
    // Deal indices round-robin so every worker starts with a share and
    // stealing only happens once the shares get unbalanced.
    for (size_t Index = 0; Index != NumTasks; ++Index) {
      WorkerState &W = *Workers[Index % Workers.size()];
      std::lock_guard<std::mutex> QLock(W.Mu);
      W.Deque.push_back(Index);
    }
    ++Generation;
  }
  WorkCV.notify_all();

  std::unique_lock<std::mutex> Lock(BatchMu);
  DoneCV.wait(Lock, [this] {
    return Remaining.load(std::memory_order_relaxed) == 0;
  });
}

bool ThreadPool::popOrSteal(unsigned Me, size_t &Index) {
  // Own deque first, front end (the dealer pushed in index order, so the
  // owner drains its share in that order — friendlier to any caller-side
  // locality).
  {
    WorkerState &Own = *Workers[Me];
    std::lock_guard<std::mutex> Lock(Own.Mu);
    if (!Own.Deque.empty()) {
      Index = Own.Deque.front();
      Own.Deque.pop_front();
      return true;
    }
  }
  // Steal from siblings, back end, in ring order starting after us.
  for (unsigned Off = 1; Off != Workers.size(); ++Off) {
    WorkerState &Victim = *Workers[(Me + Off) % Workers.size()];
    std::lock_guard<std::mutex> Lock(Victim.Mu);
    if (!Victim.Deque.empty()) {
      Index = Victim.Deque.back();
      Victim.Deque.pop_back();
      Steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Me) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(BatchMu);
      WorkCV.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
    }
    size_t Index;
    while (popOrSteal(Me, Index)) {
      TaskFn(Index, Me);
      if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task of the batch: wake the submitter. Taking the lock
        // orders this notify after the submitter entered its wait.
        std::lock_guard<std::mutex> Lock(BatchMu);
        DoneCV.notify_all();
      }
    }
  }
}
