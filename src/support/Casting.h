//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. Class hierarchies opt in by defining
/// a static `bool classof(const Base *)` predicate on every derived class;
/// `isa<>`, `cast<>`, and `dyn_cast<>` then work without compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_CASTING_H
#define DBDS_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace dbds {

/// Returns true if \p Val is an instance of \p To (or a subclass of it).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Returns true if \p Val is an instance of any of the listed types.
template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (for which it returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates (and propagates) a null pointer.
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace dbds

#endif // DBDS_SUPPORT_CASTING_H
