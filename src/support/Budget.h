//===- support/Budget.h - Per-function compile budgets ----------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function compile budgets with stepwise degradation. A production
/// compiler must have predictable compile time (cf. Krause's lospre-in-
/// linear-time argument): when a compilation unit overruns its wall-clock
/// allowance, the pipeline sheds its most speculative machinery first —
/// drop DBDS, then drop fixpoint re-iteration — and finishes with the
/// plain baseline pipeline instead of hanging. The level reached is
/// recorded here and surfaced through ConfigMeasurement.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_BUDGET_H
#define DBDS_SUPPORT_BUDGET_H

#include <chrono>
#include <cstdint>

namespace dbds {

/// How far the pipeline degraded to stay inside its budget. Ordered: a
/// higher value means more machinery was shed.
enum class DegradationLevel : uint8_t {
  None = 0,       ///< Full pipeline (fixpoint cleanup + DBDS).
  NoDBDS = 1,     ///< Speculative duplication dropped.
  NoFixpoint = 2, ///< Cleanup re-iteration dropped; single-round baseline.
};

inline const char *degradationLevelName(DegradationLevel Level) {
  switch (Level) {
  case DegradationLevel::None:
    return "none";
  case DegradationLevel::NoDBDS:
    return "no-dbds";
  case DegradationLevel::NoFixpoint:
    return "no-fixpoint";
  }
  return "?";
}

/// A wall-clock allowance for compiling one function, plus bookkeeping of
/// the degradation level reached. A default-constructed budget is
/// unlimited and never expires. arm() starts the clock.
class CompileBudget {
public:
  CompileBudget() = default;

  /// Creates a budget of \p WallMs milliseconds (<= 0 means unlimited).
  explicit CompileBudget(double WallMs) : LimitMs(WallMs) {}

  /// Starts (or restarts) the clock and resets the degradation level.
  void arm() {
    Armed = true;
    Start = Clock::now();
    Level = DegradationLevel::None;
  }

  bool limited() const { return LimitMs > 0.0; }
  double limitMs() const { return LimitMs; }

  double elapsedMs() const {
    if (!Armed)
      return 0.0;
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// True once the armed allowance is used up. Unlimited budgets never
  /// expire.
  bool expired() const { return limited() && Armed && elapsedMs() >= LimitMs; }

  /// Records that the pipeline shed machinery; levels only ratchet up.
  void degradeTo(DegradationLevel L) {
    if (static_cast<uint8_t>(L) > static_cast<uint8_t>(Level))
      Level = L;
  }

  DegradationLevel level() const { return Level; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
  double LimitMs = 0.0;
  bool Armed = false;
  DegradationLevel Level = DegradationLevel::None;
};

} // namespace dbds

#endif // DBDS_SUPPORT_BUDGET_H
