//===- support/Cancellation.h - Cooperative task cancellation ---*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for compile tasks: a CancellationToken that can
/// be cancelled externally or armed with a wall-clock Deadline, polled at
/// safe checkpoints by the phase driver, the DBDS tiers, and the
/// interpreter. Cancellation is strictly cooperative — a task stops at the
/// next checkpoint, never mid-mutation, so the IR a cancelled task leaves
/// behind is always verifier-clean (every checkpoint sits between whole
/// transformations).
///
/// Determinism (DESIGN.md §9/§10): the *flag* propagates deterministically
/// — once a token is cancelled, every subsequent checkpoint observes it —
/// but deadline expiry itself is wall-clock-driven and remains the one
/// documented nondeterminism. Supervision decisions (retry scheduling,
/// breaker trips) therefore key on recorded attempt outcomes, never on
/// when a deadline happened to fire.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_CANCELLATION_H
#define DBDS_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <thread>

namespace dbds {

/// Why a token was cancelled.
enum class CancelReason : uint8_t {
  None = 0,     ///< Not cancelled.
  External = 1, ///< requestCancel() from the driver/service.
  Deadline = 2, ///< The armed wall-clock deadline expired.
};

inline const char *cancelReasonName(CancelReason R) {
  switch (R) {
  case CancelReason::None:
    return "none";
  case CancelReason::External:
    return "external";
  case CancelReason::Deadline:
    return "deadline";
  }
  return "?";
}

/// A wall-clock point after which a task should stop. Default-constructed
/// deadlines are unlimited and never expire.
class Deadline {
public:
  Deadline() = default;

  /// A deadline \p Ms milliseconds from now (<= 0 means unlimited).
  static Deadline afterMs(double Ms) {
    Deadline D;
    if (Ms > 0.0) {
      D.Limited = true;
      D.End = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(Ms));
    }
    return D;
  }

  bool limited() const { return Limited; }
  bool expired() const { return Limited && Clock::now() >= End; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point End{};
  bool Limited = false;
};

/// A cooperative stop signal for one compile task. Cancelled externally
/// (requestCancel, possibly from another thread) or by an armed Deadline,
/// observed at checkpoints. A token may chain to a parent (the service's
/// batch-wide token): cancelling the parent cancels every child.
class CancellationToken {
public:
  CancellationToken() = default;
  explicit CancellationToken(const CancellationToken *Parent)
      : Parent(Parent) {}

  /// Arms the wall-clock deadline checkpoints poll against.
  void arm(Deadline D) { TaskDeadline = D; }

  const Deadline &deadline() const { return TaskDeadline; }

  /// Cancels the token (thread-safe; the first reason wins).
  void requestCancel(CancelReason R = CancelReason::External) {
    uint8_t Expected = 0;
    State.compare_exchange_strong(Expected, static_cast<uint8_t>(R),
                                  std::memory_order_relaxed);
  }

  /// True once this token (or its parent) was cancelled. Reads the flag
  /// only — cheap enough for per-phase and per-candidate gates; the
  /// deadline is polled by checkpoint().
  bool cancelled() const {
    return State.load(std::memory_order_relaxed) != 0 ||
           (Parent && Parent->cancelled());
  }

  CancelReason reason() const {
    uint8_t Own = State.load(std::memory_order_relaxed);
    if (Own != 0)
      return static_cast<CancelReason>(Own);
    return Parent ? Parent->reason() : CancelReason::None;
  }

  /// The cooperative checkpoint: returns true once the task should stop,
  /// additionally polling the armed deadline (and latching expiry as a
  /// cancellation, so later cancelled() reads agree).
  bool checkpoint() {
    if (cancelled())
      return true;
    if (TaskDeadline.expired()) {
      requestCancel(CancelReason::Deadline);
      return true;
    }
    return false;
  }

private:
  std::atomic<uint8_t> State{0};
  const CancellationToken *Parent = nullptr;
  Deadline TaskDeadline;
};

/// The Hang fault's containment probe: spins (yielding) at an injection
/// point until \p T reports cancellation. A null token, or a live token
/// with no deadline armed, makes this a no-op — an injected hang must
/// never wedge a pipeline that has nothing armed to break it.
inline void hangUntilCancelled(CancellationToken *T) {
  if (!T)
    return;
  if (!T->deadline().limited() && !T->cancelled())
    return;
  while (!T->checkpoint())
    std::this_thread::yield();
}

} // namespace dbds

#endif // DBDS_SUPPORT_CANCELLATION_H
