//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the parallel compile service
/// (workloads/CompileService.h). Design:
///
///  - a fixed worker count, chosen at construction (the compile service
///    maps --jobs onto it; ThreadPool::defaultWorkerCount() reports the
///    hardware thread count);
///  - one deque per worker: a batch's task indices are dealt round-robin
///    across the deques, each worker pops from the front of its own deque
///    and, when empty, steals from the back of a sibling's — the classic
///    owner-LIFO/thief-FIFO split that keeps contention off the hot path;
///  - condition-variable parking: idle workers sleep between batches
///    instead of spinning, so an attached-but-idle pool costs nothing.
///
/// The pool schedules *indices*, not closures: runIndexed(N, Task) calls
/// Task(Index, Worker) exactly once for every Index in [0, N), in an
/// unspecified order and thread assignment, and returns when all N calls
/// have finished. Determinism is therefore the caller's contract: tasks
/// must be independent, and any order-sensitive output must be buffered
/// per index and merged in index order after runIndexed returns (exactly
/// what CompileService does).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_THREADPOOL_H
#define DBDS_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dbds {

class ThreadPool {
public:
  /// Spawns \p Workers worker threads (at least one).
  explicit ThreadPool(unsigned Workers);

  /// Joins all workers. Must not be called while a batch is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// The hardware thread count (>= 1) — what --jobs=0 resolves to.
  static unsigned defaultWorkerCount();

  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Runs Task(Index, Worker) once for every Index in [0, NumTasks) across
  /// the workers and blocks until all calls have returned. Worker is the
  /// dense index of the executing worker in [0, workerCount()). Reentrant
  /// batches (submitting from inside a task) are not supported.
  void runIndexed(size_t NumTasks,
                  std::function<void(size_t Index, unsigned Worker)> Task);

  /// Tasks executed over the pool's lifetime that were stolen from another
  /// worker's deque (telemetry for the scheduling tests; approximate only
  /// in the sense that it is updated with relaxed atomics).
  uint64_t stealCount() const {
    return Steals.load(std::memory_order_relaxed);
  }

private:
  /// One worker's deque. Each deque has its own lock so the owner's pop
  /// and a thief's steal only collide when they race for the same deque.
  struct WorkerState {
    std::mutex Mu;
    std::deque<size_t> Deque;
  };

  void workerLoop(unsigned Me);
  bool popOrSteal(unsigned Me, size_t &Index);

  std::vector<std::unique_ptr<WorkerState>> Workers;
  std::vector<std::thread> Threads;

  // Batch state. TaskFn is written only while no tasks are outstanding and
  // read by workers only after they dequeued an index of the new batch;
  // the deque mutexes order those accesses.
  std::mutex BatchMu;
  std::condition_variable WorkCV; ///< Workers park here between batches.
  std::condition_variable DoneCV; ///< runIndexed parks here until drained.
  std::function<void(size_t, unsigned)> TaskFn;
  uint64_t Generation = 0;
  bool ShuttingDown = false;
  std::atomic<size_t> Remaining{0};
  std::atomic<uint64_t> Steals{0};
};

} // namespace dbds

#endif // DBDS_SUPPORT_THREADPOOL_H
