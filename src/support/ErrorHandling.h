//===- support/ErrorHandling.h - Fatal error utilities ----------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dbds_unreachable: a release-mode-safe replacement for the
/// `assert(false && "...")`-then-fall-through pattern. With NDEBUG set a
/// plain assert compiles away and the surrounding function silently
/// returns garbage; dbds_unreachable aborts with a message in every build
/// type, so an impossible enum value is always a loud, attributable crash
/// instead of a miscompile.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_ERRORHANDLING_H
#define DBDS_SUPPORT_ERRORHANDLING_H

#include <cstdio>
#include <cstdlib>

namespace dbds {

[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             int Line) {
  fprintf(stderr, "%s:%d: executed unreachable code: %s\n", File, Line, Msg);
  abort();
}

} // namespace dbds

/// Marks a code path that must never execute. Aborts with \p Msg and the
/// source location in all build types (including NDEBUG builds).
#define dbds_unreachable(Msg)                                                  \
  ::dbds::unreachableInternal(Msg, __FILE__, __LINE__)

#endif // DBDS_SUPPORT_ERRORHANDLING_H
