//===- support/RNG.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic PRNGs for workload generation and property tests. All
/// randomness in this project flows through these generators so that every
/// experiment is reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_RNG_H
#define DBDS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace dbds {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256** 1.0 — the project-wide deterministic PRNG.
class RNG {
public:
  explicit RNG(uint64_t Seed) {
    SplitMix64 Init(Seed);
    for (uint64_t &Word : State)
      Word = Init.next();
  }

  /// Uniform 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) is meaningless");
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace dbds

#endif // DBDS_SUPPORT_RNG_H
