//===- support/Timer.h - Wall-clock timing utilities ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight wall-clock timers used to measure compile time, mirroring
/// Graal's in-compiler timing statements (paper §6.1).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_TIMER_H
#define DBDS_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace dbds {

/// Accumulating nanosecond timer. start()/stop() pairs may be nested across
/// calls; total() reports the accumulated time.
class Timer {
public:
  void start() { Begin = Clock::now(); }

  void stop() {
    AccumulatedNs +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Begin)
            .count();
  }

  /// Total accumulated time in nanoseconds.
  uint64_t totalNs() const { return AccumulatedNs; }

  /// Total accumulated time in milliseconds.
  double totalMs() const { return static_cast<double>(AccumulatedNs) / 1e6; }

  void reset() { AccumulatedNs = 0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
  uint64_t AccumulatedNs = 0;
};

/// RAII region timer: accumulates the lifetime of the scope into a Timer.
class TimerScope {
public:
  explicit TimerScope(Timer &T) : T(T) { T.start(); }
  ~TimerScope() { T.stop(); }

  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer &T;
};

} // namespace dbds

#endif // DBDS_SUPPORT_TIMER_H
