//===- support/Timer.h - Wall-clock timing utilities ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight wall-clock timers used to measure compile time, mirroring
/// Graal's in-compiler timing statements (paper §6.1). The telemetry trace
/// spans (telemetry/Trace.h) are stamped from the same clock, so trace
/// timestamps and compile-time measurements are directly comparable.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_TIMER_H
#define DBDS_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace dbds {

/// Accumulating nanosecond timer with assert-free nesting semantics:
/// start()/stop() calls may nest, and only the outermost start/stop pair
/// accumulates (the inner pairs are already covered by the enclosing
/// window). stop() without a matching start() is a no-op rather than
/// accumulating garbage from a default-constructed begin timestamp.
class Timer {
public:
  void start() {
    if (Depth++ == 0)
      Begin = Clock::now();
  }

  void stop() {
    if (Depth == 0)
      return; // unmatched stop: nothing is running
    if (--Depth == 0)
      AccumulatedNs +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               Begin)
              .count();
  }

  /// True between the outermost start() and its matching stop().
  bool isRunning() const { return Depth != 0; }

  /// Total accumulated time in nanoseconds.
  uint64_t totalNs() const { return AccumulatedNs; }

  /// Total accumulated time in milliseconds.
  double totalMs() const { return static_cast<double>(AccumulatedNs) / 1e6; }

  void reset() {
    AccumulatedNs = 0;
    Depth = 0;
  }

  /// Nanoseconds on the shared steady clock (the timestamp source for
  /// telemetry trace events).
  static uint64_t nowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
  uint64_t AccumulatedNs = 0;
  unsigned Depth = 0;
};

/// RAII region timer: accumulates the lifetime of the scope into a Timer.
class TimerScope {
public:
  explicit TimerScope(Timer &T) : T(T) { T.start(); }
  ~TimerScope() { T.stop(); }

  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer &T;
};

} // namespace dbds

#endif // DBDS_SUPPORT_TIMER_H
