//===- support/Statistics.cpp - Named counters and summaries -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace dbds;

double dbds::geometricMean(ArrayRef<double> Values) {
  if (Values.empty())
    return 1.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double dbds::arithmeticMean(ArrayRef<double> Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double dbds::minimum(ArrayRef<double> Values) {
  assert(!Values.empty() && "minimum of empty set");
  double Min = Values.front();
  for (double V : Values)
    Min = V < Min ? V : Min;
  return Min;
}

double dbds::maximum(ArrayRef<double> Values) {
  assert(!Values.empty() && "maximum of empty set");
  double Max = Values.front();
  for (double V : Values)
    Max = V > Max ? V : Max;
  return Max;
}

double dbds::median(ArrayRef<double> Values) {
  if (Values.empty())
    return 0.0;
  std::vector<double> Sorted(Values.begin(), Values.end());
  std::sort(Sorted.begin(), Sorted.end());
  size_t Mid = Sorted.size() / 2;
  if (Sorted.size() % 2 != 0)
    return Sorted[Mid];
  return (Sorted[Mid - 1] + Sorted[Mid]) / 2.0;
}

double dbds::stddev(ArrayRef<double> Values) {
  if (Values.size() < 2)
    return 0.0;
  double Mean = arithmeticMean(Values);
  double SumSq = 0.0;
  for (double V : Values)
    SumSq += (V - Mean) * (V - Mean);
  return std::sqrt(SumSq / static_cast<double>(Values.size() - 1));
}
