//===- support/Statistics.cpp - Named counters and summaries -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace dbds;

double dbds::geometricMean(ArrayRef<double> Values) {
  if (Values.empty())
    return 1.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double dbds::arithmeticMean(ArrayRef<double> Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double dbds::minimum(ArrayRef<double> Values) {
  assert(!Values.empty() && "minimum of empty set");
  double Min = Values.front();
  for (double V : Values)
    Min = V < Min ? V : Min;
  return Min;
}

double dbds::maximum(ArrayRef<double> Values) {
  assert(!Values.empty() && "maximum of empty set");
  double Max = Values.front();
  for (double V : Values)
    Max = V > Max ? V : Max;
  return Max;
}
