//===- support/Diagnostics.cpp - Structured diagnostics --------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/ErrorHandling.h"

using namespace dbds;

const char *dbds::diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Note:
    return "note";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Error:
    return "error";
  }
  dbds_unreachable("unknown diagnostic kind");
}

unsigned DiagnosticEngine::count(DiagKind Kind) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Kind == Kind)
      ++N;
  return N;
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += diagKindName(D.Kind);
    Out += " [";
    Out += D.Component;
    Out += "]";
    if (!D.FunctionName.empty()) {
      Out += " @";
      Out += D.FunctionName;
    }
    Out += ": ";
    Out += D.Message;
    Out += "\n";
  }
  return Out;
}
