//===- support/StableHash.h - Stable content hashing ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process- and platform-stable content hashing: FNV-1a over bytes at 64
/// and 128 bits, plus a composable field hasher that feeds every scalar
/// through an explicit little-endian byte encoding. Deliberately not
/// std::hash — that is implementation-defined, may be randomized, and
/// therefore useless for anything persisted (the on-disk compile cache) or
/// compared across builds. A given field sequence hashes to the same value
/// on every platform, every run, forever; the 128-bit digest keys the
/// compile cache, where a collision would silently replay the wrong
/// compile.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_STABLEHASH_H
#define DBDS_SUPPORT_STABLEHASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace dbds {

/// A 128-bit digest, comparable and hex-printable. Hi/Lo are the high and
/// low halves of the big-endian value (hex() prints Hi first).
struct Hash128 {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend bool operator==(const Hash128 &A, const Hash128 &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const Hash128 &A, const Hash128 &B) {
    return !(A == B);
  }
  friend bool operator<(const Hash128 &A, const Hash128 &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }

  /// 32 lowercase hex digits, fixed width (cache file names, key lines).
  std::string hex() const {
    static const char Digits[] = "0123456789abcdef";
    std::string Out(32, '0');
    uint64_t Halves[2] = {Hi, Lo};
    for (unsigned H = 0; H != 2; ++H)
      for (unsigned I = 0; I != 16; ++I)
        Out[H * 16 + I] = Digits[(Halves[H] >> (60 - 4 * I)) & 0xF];
    return Out;
  }
};

/// FNV-1a 64 over raw bytes.
inline uint64_t stableHash64(const void *Data, size_t Size) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

inline uint64_t stableHash64(const std::string &S) {
  return stableHash64(S.data(), S.size());
}

/// Composable FNV-1a 128 field hasher. Scalars are fed as fixed-width
/// little-endian bytes regardless of host endianness; strings and byte
/// blocks are length-prefixed so adjacent fields cannot alias ("ab","c"
/// vs "a","bc"). Chainable: H.u64(X).str(S).boolean(B).digest().
class StableHasher {
public:
  StableHasher &bytes(const void *Data, size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Size; ++I)
      step(P[I]);
    return *this;
  }

  StableHasher &u8(uint8_t V) {
    step(V);
    return *this;
  }

  StableHasher &u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      step(static_cast<unsigned char>(V >> (8 * I)));
    return *this;
  }

  StableHasher &u64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      step(static_cast<unsigned char>(V >> (8 * I)));
    return *this;
  }

  StableHasher &i64(int64_t V) { return u64(static_cast<uint64_t>(V)); }

  StableHasher &boolean(bool V) { return u8(V ? 1 : 0); }

  /// Doubles hash by bit pattern: the exact value, not a rounding of it.
  StableHasher &f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    return u64(Bits);
  }

  /// Length-prefixed string (or raw byte block).
  StableHasher &str(const std::string &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  Hash128 digest() const {
    return {static_cast<uint64_t>(State >> 64),
            static_cast<uint64_t>(State)};
  }

private:
  using U128 = unsigned __int128;

  /// FNV-1a 128: prime 2^88 + 2^8 + 0x3b, standard offset basis.
  static constexpr U128 offsetBasis() {
    return (static_cast<U128>(0x6c62272e07bb0142ULL) << 64) |
           0x62b821756295c58dULL;
  }
  static constexpr U128 prime() {
    return (static_cast<U128>(1) << 88) | (1u << 8) | 0x3b;
  }

  void step(unsigned char B) {
    State ^= B;
    State *= prime();
  }

  U128 State = offsetBasis();
};

/// One-shot FNV-1a 128 over raw bytes.
inline Hash128 stableHash128(const void *Data, size_t Size) {
  return StableHasher().bytes(Data, Size).digest();
}

inline Hash128 stableHash128(const std::string &S) {
  return stableHash128(S.data(), S.size());
}

} // namespace dbds

#endif // DBDS_SUPPORT_STABLEHASH_H
