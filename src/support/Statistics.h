//===- support/Statistics.h - Named counters and summaries -----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate statistics helpers: geometric mean and simple summaries used
/// throughout the benchmark harness (the paper reports geometric means for
/// each suite, Figures 5-8).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_STATISTICS_H
#define DBDS_SUPPORT_STATISTICS_H

#include "support/ArrayRef.h"

#include <cstdint>

namespace dbds {

/// Geometric mean of a set of strictly positive ratios. Returns 1.0 for an
/// empty input.
double geometricMean(ArrayRef<double> Values);

/// Arithmetic mean. Returns 0.0 for an empty input.
double arithmeticMean(ArrayRef<double> Values);

/// Minimum / maximum of a non-empty set.
double minimum(ArrayRef<double> Values);
double maximum(ArrayRef<double> Values);

/// Median (average of the two middle elements for even sizes). Returns
/// 0.0 for an empty input. The input is copied, not reordered.
double median(ArrayRef<double> Values);

/// Sample standard deviation (n-1 denominator; the paper's suites are a
/// sample of each workload class, and several are variance-sensitive).
/// Returns 0.0 for fewer than two values.
double stddev(ArrayRef<double> Values);

} // namespace dbds

#endif // DBDS_SUPPORT_STATISTICS_H
