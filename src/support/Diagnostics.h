//===- support/Diagnostics.h - Structured diagnostics -----------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured diagnostics for the fault-tolerant pipeline. Instead of
/// aborting, the phase driver and the DBDS tiers record what went wrong
/// (which component, which function, what happened) and keep compiling;
/// callers inspect or render the collected diagnostics afterwards. This is
/// the degrade-gracefully contract of a production compiler: one broken
/// candidate must not kill the compilation, let alone the process.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_SUPPORT_DIAGNOSTICS_H
#define DBDS_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace dbds {

/// Diagnostic severity. Notes record expected degradations (budget hits),
/// warnings record recovered faults (rollbacks), errors record observable
/// misbehavior (result divergence, unrecoverable states).
enum class DiagKind : uint8_t { Note, Warning, Error };

const char *diagKindName(DiagKind Kind);

/// One structured diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Note;
  std::string Component;    ///< Emitting component, e.g. a phase name.
  std::string FunctionName; ///< Affected compilation unit ("" if none).
  std::string Message;
};

/// Collects diagnostics across a compilation session. Not thread-safe;
/// use one engine per pipeline invocation.
class DiagnosticEngine {
public:
  void report(DiagKind Kind, std::string Component, std::string FunctionName,
              std::string Message) {
    Diags.push_back({Kind, std::move(Component), std::move(FunctionName),
                     std::move(Message)});
  }

  void note(std::string Component, std::string Fn, std::string Msg) {
    report(DiagKind::Note, std::move(Component), std::move(Fn),
           std::move(Msg));
  }
  void warning(std::string Component, std::string Fn, std::string Msg) {
    report(DiagKind::Warning, std::move(Component), std::move(Fn),
           std::move(Msg));
  }
  void error(std::string Component, std::string Fn, std::string Msg) {
    report(DiagKind::Error, std::move(Component), std::move(Fn),
           std::move(Msg));
  }

  /// Splices every diagnostic of \p Other (in Other's order) onto the end
  /// of this engine, leaving \p Other empty. The parallel compile service
  /// gives each function task its own engine and merges them here in
  /// function index order, so --jobs=N diagnostics read identically to a
  /// serial run's.
  void mergeFrom(DiagnosticEngine &Other) {
    if (Diags.empty()) {
      Diags = std::move(Other.Diags);
    } else {
      Diags.reserve(Diags.size() + Other.Diags.size());
      for (Diagnostic &D : Other.Diags)
        Diags.push_back(std::move(D));
    }
    Other.Diags.clear();
  }

  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  unsigned count(DiagKind Kind) const;
  void clear() { Diags.clear(); }

  /// Renders every diagnostic as one "kind [component] @function: message"
  /// line (for logs and crash artifacts).
  std::string render() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace dbds

#endif // DBDS_SUPPORT_DIAGNOSTICS_H
