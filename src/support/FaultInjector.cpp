//===- support/FaultInjector.cpp - Deterministic fault injection -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

using namespace dbds;

FaultKind FaultInjector::at(const char *Site) {
  (void)Site; // Sites key diagnostics, not the decision stream: decisions
              // must stay aligned across runs even if site names change.
  ++Sites;
  if (!Gen.nextBool(Rate))
    return FaultKind::None;
  ++Injected;
  return (Injected % 2) ? FaultKind::CorruptIR : FaultKind::PhaseFailure;
}
