//===- support/FaultInjector.cpp - Deterministic fault injection -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

using namespace dbds;

FaultKind FaultInjector::at(const char *Site) {
  (void)Site; // Sites key diagnostics, not the decision stream: decisions
              // must stay aligned across runs even if site names change.
  ++Sites;
  if (!Gen.nextBool(Rate))
    return FaultKind::None;
  ++Injected;
  // Fired faults cycle through the enabled kinds in FaultKind order. With
  // the legacy mask this is exactly the historical CorruptIR/PhaseFailure
  // alternation (fault #1 corrupts), so pre-supervision streams replay
  // unchanged.
  static constexpr FaultKind Order[] = {
      FaultKind::CorruptIR, FaultKind::PhaseFailure, FaultKind::Hang,
      FaultKind::ResourceExhaustion};
  static constexpr unsigned Bits[] = {MaskCorruptIR, MaskPhaseFailure,
                                      MaskHang, MaskResourceExhaustion};
  FaultKind Cycle[4];
  unsigned Enabled = 0;
  for (unsigned I = 0; I != 4; ++I)
    if (Mask & Bits[I])
      Cycle[Enabled++] = Order[I];
  return Cycle[(Injected - 1) % Enabled];
}
