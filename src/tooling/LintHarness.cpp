//===- tooling/LintHarness.cpp - Dynamic lint instrumentation -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tooling/LintHarness.h"

#include <string>

using namespace dbds;

namespace {

/// Wraps one integer argument vector into RuntimeValues, mapping object
/// parameters to null (the grid has no way to conjure heap objects).
SmallVector<RuntimeValue, 8>
wrapArguments(const Function &F, const std::vector<int64_t> &Input) {
  assert(Input.size() == F.getNumParams() && "argument count mismatch");
  SmallVector<RuntimeValue, 8> Args;
  for (unsigned I = 0; I != F.getNumParams(); ++I)
    Args.push_back(F.getParamType(I) == Type::Obj
                       ? RuntimeValue::null()
                       : RuntimeValue::ofInt(Input[I]));
  return Args;
}

std::string describeInput(const std::vector<int64_t> &Input) {
  std::string S = "(";
  for (size_t I = 0; I != Input.size(); ++I) {
    if (I)
      S += ", ";
    S += std::to_string(Input[I]);
  }
  return S + ")";
}

std::string describeOutcome(const ExecutionResult &R) {
  if (!R.Ok)
    return "no result (fuel exhausted)";
  if (!R.HasResult)
    return "void return";
  if (R.Result.IsObject)
    return R.Result.isNull() ? "null" : "object";
  return std::to_string(R.Result.Scalar);
}

/// Observable equality, mirroring fuzzdiff's comparison: success flag,
/// returned-ness, and the returned value (objects by nullness — heap
/// indices are not stable across runs).
bool sameOutcome(const ExecutionResult &A, const ExecutionResult &B) {
  if (A.Ok != B.Ok || A.HasResult != B.HasResult)
    return false;
  if (!A.Ok || !A.HasResult)
    return true;
  if (A.Result.IsObject != B.Result.IsObject)
    return false;
  if (A.Result.IsObject)
    return A.Result.isNull() == B.Result.isNull();
  return A.Result.Scalar == B.Result.Scalar;
}

} // namespace

std::vector<std::vector<int64_t>>
dbds::defaultArgumentGrid(const Function &F) {
  static const int64_t Seeds[] = {0, 1, -1, 2, 7, -13, 100, 4096};
  constexpr size_t NumSeeds = sizeof(Seeds) / sizeof(Seeds[0]);
  const unsigned P = F.getNumParams();
  std::vector<std::vector<int64_t>> Grid;
  // Uniform vectors (all parameters equal) plus staggered rotations, a
  // deterministic spread without combinatorial blowup.
  for (size_t S = 0; S != NumSeeds; ++S) {
    std::vector<int64_t> Uniform(P, Seeds[S]);
    Grid.push_back(std::move(Uniform));
    std::vector<int64_t> Staggered;
    for (unsigned I = 0; I != P; ++I)
      Staggered.push_back(Seeds[(S + I) % NumSeeds]);
    if (P > 1)
      Grid.push_back(std::move(Staggered));
  }
  return Grid;
}

ObservationMap
dbds::observeFunction(Interpreter &Interp, Function &F,
                      const std::vector<std::vector<int64_t>> &Inputs,
                      uint64_t Fuel) {
  ObservationMap Observations;
  Interp.setObserver([&Observations](const Instruction *I,
                                     const RuntimeValue &V) {
    ObservedValues &Obs = Observations[I];
    if (V.IsObject)
      Obs.noteObj(V.isNull());
    else
      Obs.noteInt(V.Scalar);
  });
  for (const std::vector<int64_t> &Input : Inputs) {
    Interp.reset();
    SmallVector<RuntimeValue, 8> Args = wrapArguments(F, Input);
    Interp.run(F, ArrayRef<RuntimeValue>(Args.begin(), Args.size()), Fuel);
  }
  Interp.setObserver(nullptr);
  return Observations;
}

AuditOracle dbds::makeInterpreterOracle(const Module &M,
                                        std::vector<std::vector<int64_t>> Inputs,
                                        uint64_t Fuel) {
  return [&M, Inputs = std::move(Inputs),
          Fuel](const Function &Before, Function &After,
                std::string &Detail) -> bool {
    const std::vector<std::vector<int64_t>> &Grid =
        Inputs.empty() ? defaultArgumentGrid(After) : Inputs;
    // Interpretation does not mutate the IR; the snapshot stays pristine.
    Function &BeforeMut = const_cast<Function &>(Before);
    for (const std::vector<int64_t> &Input : Grid) {
      SmallVector<RuntimeValue, 8> Args = wrapArguments(After, Input);
      ArrayRef<RuntimeValue> ArgsRef(Args.begin(), Args.size());
      Interpreter RefInterp(M);
      ExecutionResult Expected = RefInterp.run(BeforeMut, ArgsRef, Fuel);
      Interpreter NewInterp(M);
      ExecutionResult Actual = NewInterp.run(After, ArgsRef, Fuel);
      if (!sameOutcome(Expected, Actual)) {
        Detail = "input " + describeInput(Input) + ": expected " +
                 describeOutcome(Expected) + ", got " +
                 describeOutcome(Actual);
        return false;
      }
    }
    return true;
  };
}
