//===- tooling/CrashBundle.cpp - Self-contained crash reports --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tooling/CrashBundle.h"

#include "analysis/Lint.h"
#include "dbds/DBDSPhase.h"
#include "ir/Function.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Phase.h"
#include "support/FaultInjector.h"
#include "telemetry/Json.h"
#include "telemetry/Trace.h"
#include "tooling/Reducer.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

using namespace dbds;

namespace {

/// Creates \p Path and its parents (mkdir -p). POSIX-only, like the
/// fuzzdiff artifact writer.
bool makeDirs(const std::string &Path, std::string &Error) {
  std::string Partial;
  size_t Pos = 0;
  while (Pos <= Path.size()) {
    size_t Slash = Path.find('/', Pos);
    if (Slash == std::string::npos)
      Slash = Path.size();
    Partial = Path.substr(0, Slash);
    Pos = Slash + 1;
    if (Partial.empty() || Partial == ".")
      continue;
    if (mkdir(Partial.c_str(), 0755) != 0 && errno != EEXIST) {
      Error = "mkdir " + Partial + ": " + strerror(errno);
      return false;
    }
  }
  return true;
}

bool writeFile(const std::string &Path, const std::string &Contents,
               std::string &Error) {
  FILE *F = fopen(Path.c_str(), "w");
  if (!F) {
    Error = "open " + Path + ": " + strerror(errno);
    return false;
  }
  bool Ok = fwrite(Contents.data(), 1, Contents.size(), F) == Contents.size();
  Ok &= fclose(F) == 0;
  if (!Ok)
    Error = "write " + Path + " failed";
  return Ok;
}

/// The bundle's module: a fresh class table copied from the workload plus
/// one pristine clone of the failing function — everything a replay needs,
/// nothing it does not.
std::unique_ptr<Module> buildReproModule(const CrashBundleSpec &Spec) {
  auto Repro = std::make_unique<Module>();
  if (Spec.ClassTable)
    for (unsigned Id = 0; Id != Spec.ClassTable->getNumClasses(); ++Id) {
      const ClassInfo &CI = Spec.ClassTable->getClass(Id);
      Repro->addClass(CI.Name, CI.NumFields);
    }
  if (Spec.Pristine)
    Repro->addFunction(Spec.Pristine->clone());
  return Repro;
}

std::string irHeader(const CrashBundleSpec &Spec, const char *What) {
  return std::string("# dbds-crash-bundle ") + What + "\n# benchmark: " +
         Spec.Benchmark + "  config: " + Spec.ConfigName + "  function: " +
         Spec.FunctionName + "\n";
}

std::string attemptJson(const CrashBundleAttempt &A) {
  std::string Out = "{";
  Out += "\"attempt\":" + jsonNumber(A.Attempt);
  Out += ",\"forced_level\":" +
         jsonString(degradationLevelName(A.ForcedLevel));
  Out += ",\"fault_seed\":" + jsonNumber(A.FaultSeed);
  Out += ",\"fault_sites\":" + jsonNumber(A.FaultSites);
  Out += ",\"faults_injected\":" + jsonNumber(A.FaultsInjected);
  Out += ",\"rollbacks\":" + jsonNumber(A.Rollbacks);
  Out += ",\"run_failures\":" + jsonNumber(A.RunFailures);
  Out += std::string(",\"cancelled\":") + jsonBool(A.Cancelled);
  Out += std::string(",\"budget_tripped\":") + jsonBool(A.BudgetTripped);
  Out += ",\"reason\":" + jsonString(A.Reason);
  Out += "}";
  return Out;
}

} // namespace

unsigned dbds::replayCrashCompile(Module &M, Function &Focus,
                                  uint64_t FaultSeed, double FaultRate,
                                  unsigned FaultKindMask,
                                  DegradationLevel ForcedLevel,
                                  const std::string &ConfigName) {
  FaultInjector Inj(FaultSeed, FaultRate,
                    FaultKindMask == 0 ? FaultInjector::MaskLegacy
                                       : FaultKindMask);
  FaultInjector *Injector = FaultKindMask == 0 ? nullptr : &Inj;
  unsigned Rollbacks = 0;

  // Site order mirrors the supervised task exactly: the interp-train fault
  // gate, the verified standard pipeline, DBDS (config and forced level
  // permitting), the interp-eval fault gate. A replay has no interpreter
  // runs and no deadline, so Hang sites no-op and ResourceExhaustion sites
  // only advance the stream — which is all alignment needs.
  if (Injector)
    (void)Injector->at("interp-train");

  PhaseManager Pipeline =
      PhaseManager::standardPipeline(/*Verify=*/true, &M);
  Pipeline.setFaultInjector(Injector);
  Pipeline.run(Focus,
               ForcedLevel >= DegradationLevel::NoFixpoint ? 1u : 4u);
  Rollbacks += Pipeline.rollbackCount();

  if (ConfigName != "baseline" && ForcedLevel == DegradationLevel::None) {
    DBDSConfig DC;
    DC.UseTradeoff = ConfigName != "dupalot";
    DC.ClassTable = &M;
    DC.Verify = true;
    DC.Injector = Injector;
    DBDSResult R = runDBDS(Focus, DC);
    Rollbacks += R.RollbacksPerformed;
  }

  if (Injector)
    (void)Injector->at("interp-eval");
  return Rollbacks;
}

CrashBundleResult dbds::writeCrashBundle(const CrashBundleSpec &Spec) {
  CrashBundleResult Result;
  if (!Spec.Pristine) {
    Result.Error = "no pristine IR snapshot";
    return Result;
  }
  if (!makeDirs(Spec.Dir, Result.Error))
    return Result;

  std::unique_ptr<Module> Repro = buildReproModule(Spec);
  std::string InputText = irHeader(Spec, "input IR") + printModule(Repro.get());
  if (!writeFile(Spec.Dir + "/input.ir", InputText, Result.Error))
    return Result;

  // Self-containment gate: everything below runs on the *parsed artifact*,
  // never on the in-memory module — if input.ir does not round-trip, the
  // bundle is not replayable and says so.
  ParseResult Parsed = parseModule(InputText);
  if (!Parsed) {
    Result.Error = "input.ir does not round-trip: " + Parsed.Error;
    return Result;
  }

  const CrashBundleAttempt Final =
      Spec.Attempts.empty() ? CrashBundleAttempt() : Spec.Attempts.back();
  const unsigned ReplayMask = Spec.HasInjector ? Spec.FaultKindMask : 0;

  // Replay the final attempt's recorded stream over the artifact, tracing
  // the compile (the bundle's trace slice).
  unsigned ReplayRollbacks = 0;
  std::string TraceJson;
  {
    TraceSession Trace;
    ScopedTraceAttach Attach(Trace);
    Function *Focus = Parsed.Mod->getFunction(Spec.FunctionName);
    if (!Focus) {
      Result.Error = "function " + Spec.FunctionName + " lost in round trip";
      return Result;
    }
    ReplayRollbacks = replayCrashCompile(*Parsed.Mod, *Focus, Final.FaultSeed,
                                         Spec.FaultRate, ReplayMask,
                                         Final.ForcedLevel, Spec.ConfigName);
    TraceJson = Trace.renderJson();
  }
  Result.Reproduced = ReplayRollbacks > 0;

  // Delta-reduce when the replay fires: the oracle re-runs the recorded
  // stream over each candidate and keeps mutations that still roll back.
  std::unique_ptr<Module> Reduced;
  if (Result.Reproduced) {
    ReductionResult RR = reduceFunction(
        *Repro, Spec.FunctionName,
        [&](Module &M, Function &Focus) {
          return replayCrashCompile(M, Focus, Final.FaultSeed, Spec.FaultRate,
                                    ReplayMask, Final.ForcedLevel,
                                    Spec.ConfigName) > 0;
        },
        /*MaxOracleQueries=*/256);
    Result.OriginalInstructions = RR.OriginalInstructions;
    Result.ReducedInstructions = RR.ReducedInstructions;
    Reduced = std::move(RR.Mod);
  }
  std::string ReducedText =
      irHeader(Spec, "reduced reproducer") +
      printModule(Reduced ? Reduced.get() : Repro.get());
  if (!writeFile(Spec.Dir + "/reduced.ir", ReducedText, Result.Error))
    return Result;

  LintReport Lint = Linter::standard(Repro.get()).lintModule(*Repro);
  if (!writeFile(Spec.Dir + "/lint.json", Lint.renderJSON(), Result.Error) ||
      !writeFile(Spec.Dir + "/decisions.jsonl", Spec.DecisionsJsonl,
                 Result.Error) ||
      !writeFile(Spec.Dir + "/diagnostics.txt", Spec.DiagnosticsText,
                 Result.Error) ||
      !writeFile(Spec.Dir + "/trace.json", TraceJson, Result.Error))
    return Result;

  // Manifest last: its presence marks a complete bundle.
  std::string M = "{\n";
  M += "  \"schema\": \"dbds-crash-bundle\",\n";
  M += "  \"version\": 1,\n";
  M += "  \"benchmark\": " + jsonString(Spec.Benchmark) + ",\n";
  M += "  \"config\": " + jsonString(Spec.ConfigName) + ",\n";
  M += "  \"function\": " + jsonString(Spec.FunctionName) + ",\n";
  M += std::string("  \"fault\": {\"injected\": ") +
       jsonBool(Spec.HasInjector) +
       ", \"rate\": " + jsonNumber(Spec.FaultRate) +
       ", \"kind_mask\": " + jsonNumber(Spec.FaultKindMask) + "},\n";
  M += "  \"attempts\": [";
  for (size_t I = 0; I != Spec.Attempts.size(); ++I) {
    if (I)
      M += ", ";
    M += attemptJson(Spec.Attempts[I]);
  }
  M += "],\n";
  M += std::string("  \"reproduced\": ") + jsonBool(Result.Reproduced) +
       ",\n";
  M += "  \"replay_rollbacks\": " + jsonNumber(ReplayRollbacks) + ",\n";
  M += "  \"original_instructions\": " +
       jsonNumber(Result.OriginalInstructions) + ",\n";
  M += "  \"reduced_instructions\": " +
       jsonNumber(Result.ReducedInstructions) + ",\n";
  M += "  \"files\": [\"input.ir\", \"reduced.ir\", \"lint.json\", "
       "\"decisions.jsonl\", \"diagnostics.txt\", \"trace.json\"]\n";
  M += "}\n";
  if (!writeFile(Spec.Dir + "/manifest.json", M, Result.Error))
    return Result;

  Result.Written = true;
  return Result;
}
