//===- tooling/LintHarness.h - Dynamic lint instrumentation -----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the interpreter and the lint engine, for the consumers
/// that need execution behind their static checks:
///
///  - observeFunction() runs a function over an input set with a
///    ValueObserver installed and returns the ObservationMap the
///    stamp-soundness rule cross-checks stamps against (irlint --dynamic).
///  - makeInterpreterOracle() builds the AuditOracle PhaseManager's audit
///    mode uses to catch structurally valid but semantically wrong phases
///    (the SabotagePhase class of defect) by differential interpretation.
///
/// Lives in tooling because it links both the optimizer and the vm; the
/// analysis and opts layers stay execution-free.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TOOLING_LINTHARNESS_H
#define DBDS_TOOLING_LINTHARNESS_H

#include "analysis/Lint.h"
#include "opts/Phase.h"
#include "vm/Interpreter.h"

#include <cstdint>
#include <vector>

namespace dbds {

/// A small deterministic argument grid for \p F: boundary and midrange
/// integer values combined across parameters (object parameters get null).
/// Used when a caller has no workload-specific inputs.
std::vector<std::vector<int64_t>> defaultArgumentGrid(const Function &F);

/// Runs \p F on every argument vector of \p Inputs with a value observer
/// installed and returns the per-instruction observation map. The
/// observer is removed before returning. Inputs that exhaust \p Fuel
/// contribute the values observed up to that point.
ObservationMap observeFunction(Interpreter &Interp, Function &F,
                               const std::vector<std::vector<int64_t>> &Inputs,
                               uint64_t Fuel = 1u << 22);

/// Builds a behavioral phase-effect oracle: interprets the pre-phase and
/// post-phase function on \p Inputs (defaultArgumentGrid when empty) and
/// reports divergence in return value, returned-ness, or termination.
/// \p M must outlive the returned oracle (it supplies class layouts).
AuditOracle makeInterpreterOracle(const Module &M,
                                  std::vector<std::vector<int64_t>> Inputs = {},
                                  uint64_t Fuel = 1u << 22);

} // namespace dbds

#endif // DBDS_TOOLING_LINTHARNESS_H
