//===- tooling/Reducer.cpp - Delta-debugging IR reduction ------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tooling/Reducer.h"

#include "analysis/Verifier.h"
#include "ir/Function.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Phase.h"

#include <vector>

using namespace dbds;

namespace {

/// Clones a module through the textual format. This is the reducer's
/// normalization step: ids are renumbered densely, unreachable blocks are
/// impossible (the parser rejects them), and the result is exactly what a
/// crash artifact would contain.
std::unique_ptr<Module> roundTrip(const Module &M) {
  ParseResult R = parseModule(printModule(&M));
  return std::move(R.Mod); // null when the candidate does not round-trip
}

/// One candidate mutation, identified positionally against the focus
/// function of a fresh round-trip clone (clones of the same module parse
/// to identical structure, so positions are stable).
struct Mutation {
  enum Kind : uint8_t {
    FlattenIfTrue,  ///< Replace an If terminator with a jump to its true arm.
    FlattenIfFalse, ///< ... or to its false arm.
    DropInst,       ///< RAUW an instruction with a constant and remove it.
  };
  Kind K;
  unsigned BlockIdx; ///< Index into F.blocks() order.
  unsigned InstIdx;  ///< Index within the block.
};

/// Enumerates every mutation applicable to \p F right now.
std::vector<Mutation> enumerateMutations(Function &F) {
  std::vector<Mutation> Out;
  std::vector<Block *> Blocks = F.blocks();
  for (unsigned BI = 0; BI != Blocks.size(); ++BI) {
    Block *B = Blocks[BI];
    unsigned II = 0;
    for (Instruction *I : *B) {
      if (isa<IfInst>(I)) {
        Out.push_back({Mutation::FlattenIfTrue, BI, II});
        Out.push_back({Mutation::FlattenIfFalse, BI, II});
      } else if (!I->isTerminator() && !isa<ConstantInst>(I)) {
        // Value-producing and void instructions alike: values are replaced
        // by a constant, void instructions (stores) simply disappear.
        Out.push_back({Mutation::DropInst, BI, II});
      }
      ++II;
    }
  }
  return Out;
}

/// Applies \p Mu to \p F. Returns false when the mutation no longer
/// applies (should not happen on a fresh clone, but stay defensive).
bool applyMutation(Function &F, const Mutation &Mu) {
  std::vector<Block *> Blocks = F.blocks();
  if (Mu.BlockIdx >= Blocks.size())
    return false;
  Block *B = Blocks[Mu.BlockIdx];
  if (Mu.InstIdx >= B->size())
    return false;
  Instruction *I = *(B->begin() + Mu.InstIdx);

  switch (Mu.K) {
  case Mutation::FlattenIfTrue:
  case Mutation::FlattenIfFalse: {
    auto *If = dyn_cast<IfInst>(I);
    if (!If)
      return false;
    Block *Kept = Mu.K == Mutation::FlattenIfTrue ? If->getTrueSucc()
                                                  : If->getFalseSucc();
    Block *Dropped = Mu.K == Mutation::FlattenIfTrue ? If->getFalseSucc()
                                                     : If->getTrueSucc();
    // The dropped edge disappears: unhook B from the dropped successor's
    // predecessor list (and phis). When both arms target the same block,
    // one of the two duplicate edges goes away.
    Dropped->removePred(Dropped->indexOfPred(B));
    B->remove(If); // detaches the condition use
    B->append(F.create<JumpInst>(Kept));
    return true;
  }
  case Mutation::DropInst: {
    if (I->isTerminator() || isa<ConstantInst>(I))
      return false;
    if (I->getType() == Type::Int)
      I->replaceAllUsesWith(F.constant(0));
    else if (I->getType() == Type::Obj)
      I->replaceAllUsesWith(F.nullConstant());
    else if (I->hasUsers())
      return false; // void value with users: malformed, leave it alone
    B->remove(I);
    return true;
  }
  }
  return false;
}

/// Post-mutation cleanup: fold the now-constant branches, prune what
/// became unreachable, and sweep dead code, so the candidate both shrinks
/// transitively and survives the parser's reachability check.
void cleanup(Function &F) {
  PhaseManager PM(/*VerifyAfterEachPhase=*/false);
  PM.add(std::make_unique<SimplifyCFG>());
  PM.add(std::make_unique<DeadCodeElimination>());
  PM.run(F, /*MaxRounds=*/4);
}

} // namespace

ReductionResult dbds::reduceFunction(const Module &M,
                                     const std::string &FocusName,
                                     const ReductionOracle &Oracle,
                                     unsigned MaxOracleQueries) {
  ReductionResult Result;
  Result.FocusName = FocusName;
  Result.Mod = roundTrip(M);
  if (!Result.Mod)
    return Result; // input module does not round-trip; nothing to do

  Function *Focus = Result.Mod->getFunction(FocusName);
  if (!Focus)
    return Result;
  Result.OriginalInstructions = Focus->instructionCount();
  Result.ReducedInstructions = Result.OriginalInstructions;

  // The failure must reproduce on the normalized clone, otherwise every
  // "reduction" would be accepted vacuously.
  ++Result.OracleQueries;
  Result.Reproduced = Oracle(*Result.Mod, *Focus);
  if (!Result.Reproduced)
    return Result;

  // Greedy fixpoint: try each mutation against the current best candidate;
  // accept the first one that shrinks the function and still reproduces,
  // then restart enumeration on the smaller module.
  bool Progress = true;
  while (Progress && Result.OracleQueries < MaxOracleQueries) {
    Progress = false;
    ++Result.Rounds;
    std::vector<Mutation> Mutations = enumerateMutations(*Focus);
    for (const Mutation &Mu : Mutations) {
      if (Result.OracleQueries >= MaxOracleQueries)
        break;
      std::unique_ptr<Module> Candidate = roundTrip(*Result.Mod);
      if (!Candidate)
        break; // current best stopped round-tripping; keep what we have
      Function *CF = Candidate->getFunction(FocusName);
      if (!CF || !applyMutation(*CF, Mu))
        continue;
      cleanup(*CF);
      if (!verifyFunction(*CF).empty())
        continue; // mutation broke an invariant; discard the candidate
      if (CF->instructionCount() >= Result.ReducedInstructions)
        continue; // no progress; a candidate must strictly shrink
      // Normalize before consulting the oracle so an accepted candidate is
      // always round-trip stable.
      std::unique_ptr<Module> Normalized = roundTrip(*Candidate);
      if (!Normalized)
        continue;
      Function *NF = Normalized->getFunction(FocusName);
      if (!NF)
        continue;
      ++Result.OracleQueries;
      if (!Oracle(*Normalized, *NF))
        continue;
      Result.Mod = std::move(Normalized);
      Focus = Result.Mod->getFunction(FocusName);
      Result.ReducedInstructions = Focus->instructionCount();
      Result.Reduced = true;
      Progress = true;
      break; // restart enumeration against the smaller module
    }
  }
  return Result;
}
