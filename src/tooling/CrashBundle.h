//===- tooling/CrashBundle.h - Self-contained crash reports -----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-report bundles for the supervised compile service: when a task
/// exhausts its retry ladder, the service emits one self-contained
/// directory holding everything needed to replay the failure from
/// artifacts alone — the offending pre-profiling IR snapshot, a
/// delta-reduced reproducer (tooling/Reducer), the lint report, the
/// decision-log and diagnostics slices of every attempt, a trace slice of
/// the replay, and the fault stream's seed/rate/kind-mask. The bundle is
/// written at join time (serially, in function index order), never from a
/// worker thread.
///
/// Bundle layout (\<dir\>/):
///   manifest.json   schema "dbds-crash-bundle" v1: attempts, fault
///                   stream, replay verdict, file inventory
///   input.ir        pristine module snapshot (class table + function)
///   reduced.ir      delta-reduced reproducer (== input when irreducible)
///   lint.json       Linter::standard report over the snapshot
///   decisions.jsonl decision-log slice across all attempts
///   diagnostics.txt rendered diagnostics across all attempts
///   trace.json      Chrome trace of the replay compile
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TOOLING_CRASHBUNDLE_H
#define DBDS_TOOLING_CRASHBUNDLE_H

#include "support/Budget.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dbds {

class Function;
class Module;

/// One retry-ladder attempt as recorded in the manifest.
struct CrashBundleAttempt {
  unsigned Attempt = 0; ///< 0-based rung of the retry ladder.
  /// Level the ladder forced for this attempt (None on the first try).
  DegradationLevel ForcedLevel = DegradationLevel::None;
  uint64_t FaultSeed = 0; ///< forTask(index, attempt) seed of the stream.
  unsigned FaultSites = 0;
  unsigned FaultsInjected = 0;
  unsigned Rollbacks = 0;
  unsigned RunFailures = 0;
  bool Cancelled = false;
  bool BudgetTripped = false;
  std::string Reason; ///< Human summary of why the attempt failed.
};

/// Everything the service hands over for one exhausted task.
struct CrashBundleSpec {
  std::string Dir; ///< Bundle directory; created (recursively) on write.
  std::string Benchmark;
  std::string ConfigName;   ///< runConfigName() of the failing config.
  std::string FunctionName; ///< The task's function (replay focus).
  /// Pre-profiling snapshot of the function (not owned; cloned into the
  /// bundle module together with \p ClassTable's class table).
  const Function *Pristine = nullptr;
  const Module *ClassTable = nullptr;
  /// The task-level fault stream parameters; HasInjector false when the
  /// service ran without injection (replays then run fault-free).
  bool HasInjector = false;
  double FaultRate = 0.0;
  unsigned FaultKindMask = 0;
  std::vector<CrashBundleAttempt> Attempts;
  std::string DiagnosticsText; ///< Rendered diagnostics, all attempts.
  std::string DecisionsJsonl;  ///< Decision-log slice, all attempts.
};

/// Outcome of writing one bundle.
struct CrashBundleResult {
  bool Written = false;
  std::string Error; ///< First I/O or round-trip failure ("" when none).
  /// True when replaying the final attempt's recorded fault stream over
  /// the round-tripped snapshot rolled back at least once — the bundle
  /// demonstrably reproduces the failure from artifacts alone.
  bool Reproduced = false;
  unsigned OriginalInstructions = 0;
  unsigned ReducedInstructions = 0;
};

/// Replays the compile portion of one supervised attempt over \p Focus in
/// \p M: the interp-train fault gate, the standard verified pipeline, the
/// DBDS tiers (when \p ConfigName enables them and \p ForcedLevel still
/// permits them), and the interp-eval fault gate — consuming injector
/// sites in exactly the order the service's task does, so a recorded
/// (seed, rate, mask) stream lines up. \p FaultKindMask == 0 replays
/// without injection. Returns the total rollbacks observed.
unsigned replayCrashCompile(Module &M, Function &Focus, uint64_t FaultSeed,
                            double FaultRate, unsigned FaultKindMask,
                            DegradationLevel ForcedLevel,
                            const std::string &ConfigName);

/// Writes the bundle described by \p Spec: snapshots the module, replays
/// the final attempt to confirm reproduction, delta-reduces the reproducer
/// when it fires, and emits the manifest last (a manifest present on disk
/// means the bundle is complete).
CrashBundleResult writeCrashBundle(const CrashBundleSpec &Spec);

} // namespace dbds

#endif // DBDS_TOOLING_CRASHBUNDLE_H
