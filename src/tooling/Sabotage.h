//===- tooling/Sabotage.h - Deliberate miscompilation -----------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A phase that deliberately miscompiles: it rewrites integer additions to
/// subtractions. Appended to an optimization pipeline it produces real,
/// observable result divergences on demand — the known-positive control
/// that proves the differential fuzzing harness (tools/fuzzdiff) and the
/// reducer actually detect and shrink miscompiles. Never part of any real
/// pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TOOLING_SABOTAGE_H
#define DBDS_TOOLING_SABOTAGE_H

#include "ir/Function.h"
#include "opts/Phase.h"

namespace dbds {

/// Rewrites up to \p MaxRewrites Add instructions to Sub (default: all of
/// them, maximizing the chance the corruption is observable on the fuzz
/// inputs). Structurally valid IR in, structurally valid IR out — only the
/// semantics are wrong, which is exactly what differential testing must
/// catch where the verifier cannot.
class SabotagePhase : public Phase {
public:
  explicit SabotagePhase(unsigned MaxRewrites = ~0u)
      : MaxRewrites(MaxRewrites) {}

  const char *name() const override { return "sabotage"; }

  bool run(Function &F) override {
    unsigned Rewritten = 0;
    for (Block *B : F.blocks()) {
      // Snapshot: we edit the instruction list while walking it.
      SmallVector<Instruction *, 8> Insts = B->nonPhis();
      for (Instruction *I : Insts) {
        if (Rewritten >= MaxRewrites)
          return Rewritten != 0;
        if (I->getOpcode() != Opcode::Add)
          continue;
        auto *Add = cast<BinaryInst>(I);
        auto *Sub =
            F.create<BinaryInst>(Opcode::Sub, Add->getLHS(), Add->getRHS());
        B->insert(B->indexOf(I), Sub);
        I->replaceAllUsesWith(Sub);
        B->remove(I);
        ++Rewritten;
      }
    }
    return Rewritten != 0;
  }

private:
  unsigned MaxRewrites;
};

} // namespace dbds

#endif // DBDS_TOOLING_SABOTAGE_H
