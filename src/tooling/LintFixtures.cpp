//===- tooling/LintFixtures.cpp - Malformed-IR lint fixtures --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tooling/LintFixtures.h"

#include "ir/IRBuilder.h"

using namespace dbds;

namespace {

/// A diamond: entry branches on p0 < p1; both arms jump to a merge whose
/// phi selects between two entry-block constants and feeds the return.
/// Clean under every rule — the base most malformed fixtures perturb.
std::unique_ptr<Module> makeDiamond(PhiInst *&MergePhi) {
  auto Mod = std::make_unique<Module>();
  Function *F = Mod->addFunction(std::make_unique<Function>("diamond", 2));
  IRBuilder B(*F);

  Block *Entry = B.createBlock();
  Block *TB = B.createBlock();
  Block *FB = B.createBlock();
  Block *Merge = B.createBlock();

  B.setBlock(Entry);
  ParamInst *P0 = B.param(0);
  ParamInst *P1 = B.param(1);
  ConstantInst *C1 = B.constInt(10);
  ConstantInst *C2 = B.constInt(20);
  CompareInst *Cond = B.cmp(Predicate::LT, P0, P1);
  B.branch(Cond, TB, FB);

  B.setBlock(TB);
  B.jump(Merge);
  B.setBlock(FB);
  B.jump(Merge);

  B.setBlock(Merge);
  MergePhi = B.phi(Type::Int);
  MergePhi->appendInput(C1); // TB edge
  MergePhi->appendInput(C2); // FB edge
  B.ret(MergePhi);
  return Mod;
}

} // namespace

std::vector<LintFixture> dbds::makeLintFixtures() {
  std::vector<LintFixture> Fixtures;

  // Known-negative control: the untouched diamond must lint clean.
  {
    LintFixture Fx;
    Fx.Name = "clean-diamond";
    Fx.ExpectedRule = "";
    PhiInst *Phi = nullptr;
    Fx.Mod = makeDiamond(Phi);
    Fixtures.push_back(std::move(Fx));
  }

  // Phi input count out of sync with the predecessor list.
  {
    LintFixture Fx;
    Fx.Name = "bad-phi-arity";
    Fx.ExpectedRule = "phi-layout";
    PhiInst *Phi = nullptr;
    Fx.Mod = makeDiamond(Phi);
    Phi->removeInput(0); // 1 input, 2 predecessors
    Fixtures.push_back(std::move(Fx));
  }

  // A value defined in one arm of the diamond used at the merge: the use
  // is not dominated by the definition.
  {
    LintFixture Fx;
    Fx.Name = "use-before-def";
    Fx.ExpectedRule = "def-dominates-use";
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("ubd", 2));
    IRBuilder B(*F);
    Block *Entry = B.createBlock();
    Block *TB = B.createBlock();
    Block *FB = B.createBlock();
    Block *Merge = B.createBlock();
    B.setBlock(Entry);
    ParamInst *P0 = B.param(0);
    ParamInst *P1 = B.param(1);
    B.branch(B.cmp(Predicate::LT, P0, P1), TB, FB);
    B.setBlock(TB);
    BinaryInst *OnlyInTB = B.add(P0, P1);
    B.jump(Merge);
    B.setBlock(FB);
    B.jump(Merge);
    B.setBlock(Merge);
    B.ret(OnlyInTB); // TB does not dominate Merge
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  // A reachable block that simply never terminates.
  {
    LintFixture Fx;
    Fx.Name = "missing-terminator";
    Fx.ExpectedRule = "block-structure";
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("noterm", 1));
    IRBuilder B(*F);
    Block *Entry = B.createBlock();
    Block *B1 = B.createBlock();
    B.setBlock(Entry);
    ParamInst *P0 = B.param(0);
    B.jump(B1);
    B.setBlock(B1);
    B.add(P0, P0); // falls off the end: no terminator
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  // An instruction whose operand was created but never inserted anywhere.
  {
    LintFixture Fx;
    Fx.Name = "detached-operand";
    Fx.ExpectedRule = "use-list";
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("detached", 1));
    IRBuilder B(*F);
    B.setBlock(B.createBlock());
    ParamInst *P0 = B.param(0);
    Instruction *Ghost = F->create<ParamInst>(0, Type::Int); // never appended
    auto *Sum = F->create<BinaryInst>(Opcode::Add, P0, Ghost);
    F->getEntry()->append(Sum);
    B.ret(Sum);
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  // Structurally perfect IR with a stamp claim the operands cannot
  // justify: the add of an unbounded parameter claimed to be exactly 5.
  {
    LintFixture Fx;
    Fx.Name = "unsound-stamp";
    Fx.ExpectedRule = "stamp-soundness";
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("stamped", 1));
    IRBuilder B(*F);
    B.setBlock(B.createBlock());
    ParamInst *P0 = B.param(0);
    BinaryInst *Sum = B.add(P0, B.constInt(1));
    B.ret(Sum);
    Fx.Mod = std::move(Mod);
    Fx.Claim = [Sum](Instruction *I) -> std::optional<Stamp> {
      if (I == Sum)
        return Stamp::exact(5);
      return std::nullopt;
    };
    Fixtures.push_back(std::move(Fx));
  }

  // A block with a terminator but no incoming edges at all.
  {
    LintFixture Fx;
    Fx.Name = "orphan-block";
    Fx.ExpectedRule = "unreachable-code";
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("orphan", 1));
    IRBuilder B(*F);
    B.setBlock(B.createBlock());
    ParamInst *P0 = B.param(0);
    B.ret(P0);
    Block *Island = B.createBlock();
    B.setBlock(Island);
    B.ret(P0); // self-contained, but nothing ever jumps here
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  // A phi nobody reads: executable, so a warning rather than an error.
  {
    LintFixture Fx;
    Fx.Name = "dead-phi";
    Fx.ExpectedRule = "dead-phi";
    Fx.ExpectedSeverity = LintSeverity::Warn;
    PhiInst *Phi = nullptr;
    Fx.Mod = makeDiamond(Phi);
    // Retarget the return at a parameter so the phi loses its last use.
    Function *F = Fx.Mod->functions().front();
    Block *Merge = Phi->getBlock();
    auto *Ret = cast<ReturnInst>(Merge->getTerminator());
    Merge->remove(Ret);
    IRBuilder B(*F);
    // The parameter already exists in the entry block; reuse it.
    ParamInst *P0 = nullptr;
    for (Instruction *I : *F->getEntry())
      if (auto *P = dyn_cast<ParamInst>(I))
        if (P->getIndex() == 0) {
          P0 = P;
          break;
        }
    B.setBlock(Merge);
    B.ret(P0);
    Fixtures.push_back(std::move(Fx));
  }

  return Fixtures;
}

bool dbds::checkLintFixture(const LintFixture &Fixture, std::string &Log) {
  Linter L = Linter::standard(Fixture.Mod.get());
  if (Fixture.Claim)
    L.setStampClaim(Fixture.Claim);
  LintReport Report = L.lintModule(*Fixture.Mod);

  auto fail = [&](const std::string &Why) {
    Log += "fixture '" + Fixture.Name + "': " + Why + "\n";
    if (!Report.Findings.empty())
      Log += Report.render();
    return false;
  };

  if (Fixture.ExpectedRule.empty()) {
    if (!Report.Findings.empty())
      return fail("expected a clean report, got " +
                  std::to_string(Report.Findings.size()) + " finding(s)");
    return true;
  }

  unsigned Hits = 0;
  for (const LintFinding &Finding : Report.Findings) {
    if (Finding.RuleId != Fixture.ExpectedRule)
      return fail("unexpected finding from rule '" + Finding.RuleId + "'");
    if (Finding.Severity != Fixture.ExpectedSeverity)
      return fail("finding has severity " +
                  std::string(lintSeverityName(Finding.Severity)) +
                  ", expected " +
                  std::string(lintSeverityName(Fixture.ExpectedSeverity)));
    ++Hits;
  }
  if (Hits == 0)
    return fail("rule '" + Fixture.ExpectedRule + "' did not fire");
  return true;
}

bool dbds::selftestLintFixtures(std::string &Log) {
  bool AllPassed = true;
  for (const LintFixture &Fx : makeLintFixtures())
    AllPassed &= checkLintFixture(Fx, Log);
  return AllPassed;
}

//===----------------------------------------------------------------------===//
// Flow-sensitive sabotage fixtures
//===----------------------------------------------------------------------===//

namespace {

/// A diamond steered by a constant comparison (LT 1 2, always true): the
/// false arm is structurally sound and CFG-reachable, but flow-provably
/// dead. The seed every flow fixture perturbs.
std::unique_ptr<Module> makeDecidedDiamond(Function *&FOut, Block *&TB,
                                           Block *&FB, Block *&Merge,
                                           PhiInst *&MergePhi) {
  auto Mod = std::make_unique<Module>();
  Function *F = Mod->addFunction(std::make_unique<Function>("decided", 1));
  FOut = F;
  IRBuilder B(*F);

  Block *Entry = B.createBlock();
  TB = B.createBlock();
  FB = B.createBlock();
  Merge = B.createBlock();

  B.setBlock(Entry);
  CompareInst *Cond =
      B.cmp(Predicate::LT, B.constInt(1), B.constInt(2)); // always true
  B.branch(Cond, TB, FB);

  B.setBlock(TB);
  B.jump(Merge);
  B.setBlock(FB);
  B.jump(Merge);

  B.setBlock(Merge);
  MergePhi = B.phi(Type::Int);
  MergePhi->appendInput(B.constInt(10)); // TB edge
  MergePhi->appendInput(B.constInt(20)); // FB edge (provably dead)
  B.ret(MergePhi);
  return Mod;
}

} // namespace

std::vector<LintFixture> dbds::makeDataflowLintFixtures() {
  std::vector<LintFixture> Fixtures;

  // Known-negative control: a parameter-steered diamond is undecidable, so
  // every flow rule must stay silent.
  {
    LintFixture Fx;
    Fx.Name = "flow-clean-diamond";
    Fx.ExpectedRule = "";
    PhiInst *Phi = nullptr;
    Fx.Mod = makeDiamond(Phi);
    Fixtures.push_back(std::move(Fx));
  }

  // A value defined in the flow-dead arm, read at the (executable) merge.
  // The dead-block def cannot dominate a live use, so def-dominates-use
  // co-fires by construction; the decided branch is itself a finding.
  {
    LintFixture Fx;
    Fx.Name = "flow-dead-def-use";
    Fx.ExpectedRule = "flow-def-reach";
    Fx.AllowedExtraRules = {"def-dominates-use", "flow-dead-branch"};
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("deaddef", 1));
    IRBuilder B(*F);
    Block *Entry = B.createBlock();
    Block *TB = B.createBlock();
    Block *FB = B.createBlock();
    Block *Merge = B.createBlock();
    B.setBlock(Entry);
    ParamInst *P0 = B.param(0);
    CompareInst *Cond =
        B.cmp(Predicate::LT, B.constInt(2), B.constInt(1)); // always false
    B.branch(Cond, TB, FB);
    B.setBlock(TB);
    BinaryInst *DeadDef = B.add(P0, P0); // TB is flow-dead
    B.jump(Merge);
    B.setBlock(FB);
    B.jump(Merge);
    B.setBlock(Merge);
    B.ret(DeadDef);
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  // The decided diamond's merge phi still carries the dead-edge input.
  {
    LintFixture Fx;
    Fx.Name = "flow-dead-phi-input";
    Fx.ExpectedRule = "flow-dead-phi-input";
    Fx.ExpectedSeverity = LintSeverity::Warn;
    Fx.AllowedExtraRules = {"flow-dead-branch"};
    Function *F = nullptr;
    Block *TB = nullptr, *FB = nullptr, *Merge = nullptr;
    PhiInst *Phi = nullptr;
    Fx.Mod = makeDecidedDiamond(F, TB, FB, Merge, Phi);
    Fixtures.push_back(std::move(Fx));
  }

  // A decided branch with no merge downstream: the only flow finding is
  // the branch itself.
  {
    LintFixture Fx;
    Fx.Name = "flow-dead-branch";
    Fx.ExpectedRule = "flow-dead-branch";
    Fx.ExpectedSeverity = LintSeverity::Warn;
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("decbr", 1));
    IRBuilder B(*F);
    Block *Entry = B.createBlock();
    Block *TB = B.createBlock();
    Block *FB = B.createBlock();
    B.setBlock(Entry);
    CompareInst *Cond = B.cmp(Predicate::LT, B.constInt(1), B.constInt(2));
    B.branch(Cond, TB, FB);
    B.setBlock(TB);
    B.ret(B.constInt(10));
    B.setBlock(FB);
    B.ret(B.constInt(20));
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  // A stamp claim flow-provably disjoint from the instruction's value: a
  // 0/1 comparison result claimed to be exactly 5. The flow-insensitive
  // stamp-soundness rule rejects the same claim.
  {
    LintFixture Fx;
    Fx.Name = "flow-contradictory-claim";
    Fx.ExpectedRule = "flow-contradictory-join";
    Fx.AllowedExtraRules = {"stamp-soundness"};
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("contra", 1));
    IRBuilder B(*F);
    B.setBlock(B.createBlock());
    ParamInst *P0 = B.param(0);
    CompareInst *Cmp = B.cmp(Predicate::LT, P0, B.constInt(10));
    B.ret(Cmp);
    Fx.Mod = std::move(Mod);
    Fx.Claim = [Cmp](Instruction *I) -> std::optional<Stamp> {
      if (I == Cmp)
        return Stamp::exact(5);
      return std::nullopt;
    };
    Fixtures.push_back(std::move(Fx));
  }

  // A merge both of whose incoming edges originate in a flow-dead region:
  // structurally reachable, provably never executed.
  {
    LintFixture Fx;
    Fx.Name = "flow-unreachable-merge";
    Fx.ExpectedRule = "flow-unreachable-merge";
    Fx.ExpectedSeverity = LintSeverity::Warn;
    Fx.AllowedExtraRules = {"flow-dead-branch"};
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("deadmrg", 1));
    IRBuilder B(*F);
    Block *Entry = B.createBlock();
    Block *Live = B.createBlock();
    Block *Dead = B.createBlock();
    Block *DeadL = B.createBlock();
    Block *DeadR = B.createBlock();
    Block *DeadMerge = B.createBlock();
    B.setBlock(Entry);
    ParamInst *P0 = B.param(0);
    CompareInst *Cond = B.cmp(Predicate::LT, B.constInt(1), B.constInt(2));
    B.branch(Cond, Live, Dead);
    B.setBlock(Live);
    B.ret(B.constInt(10));
    B.setBlock(Dead);
    B.branch(B.cmp(Predicate::LT, P0, B.constInt(0)), DeadL, DeadR);
    B.setBlock(DeadL);
    B.jump(DeadMerge);
    B.setBlock(DeadR);
    B.jump(DeadMerge);
    B.setBlock(DeadMerge);
    B.ret(B.constInt(20));
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  // An executable field load through a provably-null object — the one
  // operation the VM leaves undefined (vm/Interpreter asserts).
  {
    LintFixture Fx;
    Fx.Name = "flow-null-load";
    Fx.ExpectedRule = "flow-null-proof";
    auto Mod = std::make_unique<Module>();
    Function *F = Mod->addFunction(std::make_unique<Function>("nullld", 1));
    IRBuilder B(*F);
    B.setBlock(B.createBlock());
    LoadFieldInst *Load = B.load(B.constNull(), 0);
    B.ret(Load);
    Fx.Mod = std::move(Mod);
    Fixtures.push_back(std::move(Fx));
  }

  return Fixtures;
}

bool dbds::checkDataflowLintFixture(const LintFixture &Fixture,
                                    std::string &Log) {
  Linter L = dataflowLinter(Fixture.Mod.get());
  if (Fixture.Claim)
    L.setStampClaim(Fixture.Claim);
  LintReport Report = L.lintModule(*Fixture.Mod);

  auto fail = [&](const std::string &Why) {
    Log += "fixture '" + Fixture.Name + "': " + Why + "\n";
    if (!Report.Findings.empty())
      Log += Report.render();
    return false;
  };

  if (Fixture.ExpectedRule.empty()) {
    if (!Report.Findings.empty())
      return fail("expected a clean report, got " +
                  std::to_string(Report.Findings.size()) + " finding(s)");
    return true;
  }

  unsigned Hits = 0;
  for (const LintFinding &Finding : Report.Findings) {
    if (Finding.RuleId == Fixture.ExpectedRule) {
      if (Finding.Severity != Fixture.ExpectedSeverity)
        return fail("finding has severity " +
                    std::string(lintSeverityName(Finding.Severity)) +
                    ", expected " +
                    std::string(lintSeverityName(Fixture.ExpectedSeverity)));
      ++Hits;
      continue;
    }
    bool Allowed = false;
    for (const std::string &Extra : Fixture.AllowedExtraRules)
      if (Finding.RuleId == Extra) {
        Allowed = true;
        break;
      }
    if (!Allowed)
      return fail("unexpected finding from rule '" + Finding.RuleId + "'");
  }
  if (Hits == 0)
    return fail("rule '" + Fixture.ExpectedRule + "' did not fire");
  return true;
}
