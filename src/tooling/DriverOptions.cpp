//===- tooling/DriverOptions.cpp - Shared driver option surface -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tooling/DriverOptions.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dbds;

namespace {

/// Whether a flag is bare (--metrics), takes a mandatory value
/// (--jobs=N), or both spellings are legal (--compile-cache[=DIR]).
enum class ArgKind { None, Required, Optional };

struct FlagInfo {
  DriverFlag Flag;
  const char *Name;  ///< Spelling without the value ("--jobs").
  ArgKind Kind;
  const char *Value; ///< Metavariable for usage/help ("N", "FILE", ...).
  const char *Help;
};

/// The single source of truth for every shared flag: spelling, value
/// syntax, and help text live here and nowhere else.
constexpr FlagInfo FlagTable[] = {
    {DriverFlag::Jobs, "--jobs", ArgKind::Required, "N",
     "worker threads (0 = one per hardware thread; default 1)"},
    {DriverFlag::PollMask, "--poll-mask", ArgKind::Required, "N",
     "interpreter cancellation-poll stride (power of two, default 128)"},
    {DriverFlag::Metrics, "--metrics", ArgKind::None, nullptr,
     "histogram metrics registry: percentile table after the run"},
    {DriverFlag::Counters, "--counters", ArgKind::None, nullptr,
     "dump the telemetry counter registry after the run"},
    {DriverFlag::Trace, "--trace", ArgKind::Required, "FILE",
     "write a Chrome trace_event JSON covering the run"},
    {DriverFlag::Remarks, "--remarks", ArgKind::Required, "FILE",
     "write the DBDS duplication decision log as JSONL"},
    {DriverFlag::Flamegraph, "--flamegraph", ArgKind::Required, "FILE",
     "write a collapsed-stack profile folded from the trace spans"},
    {DriverFlag::JsonOut, "--json-out", ArgKind::Optional, "FILE",
     "write the machine-readable bench report (default name without =FILE)"},
    {DriverFlag::MaxAttempts, "--max-attempts", ArgKind::Required, "N",
     "retry ladder depth per task (1-3; 1 = no retries)"},
    {DriverFlag::TaskDeadlineMs, "--task-deadline-ms", ArgKind::Required,
     "MS", "per-attempt wall-clock deadline in milliseconds"},
    {DriverFlag::BreakerThreshold, "--breaker-threshold", ArgKind::Required,
     "N", "per-phase circuit breaker trip count (0 = off)"},
    {DriverFlag::BreakerHalfOpen, "--breaker-half-open", ArgKind::Required,
     "N", "re-enable a tripped phase after N clean tasks"},
    {DriverFlag::CrashBundleDir, "--crash-bundle-dir", ArgKind::Required,
     "DIR", "write crash bundles for exhausted tasks below DIR"},
    {DriverFlag::SimAudit, "--simaudit", ArgKind::None, nullptr,
     "audit simulator predictions against post-DBDS dataflow facts"},
    {DriverFlag::CompileCache, "--compile-cache", ArgKind::Optional, "DIR",
     "content-addressed compile cache; with =DIR entries persist on disk"},
    {DriverFlag::CacheDir, "--cache-dir", ArgKind::Required, "DIR",
     "like --compile-cache=DIR"},
    {DriverFlag::Seed, "--seed", ArgKind::Required, "N",
     "first generator seed"},
    {DriverFlag::Count, "--count", ArgKind::Required, "N",
     "number of generated seeds"},
    {DriverFlag::Functions, "--functions", ArgKind::Required, "N",
     "functions per generated program"},
    {DriverFlag::Segments, "--segments", ArgKind::Required, "N",
     "segments per generated function"},
    {DriverFlag::Quiet, "--quiet", ArgKind::None, nullptr,
     "suppress per-item output"},
    {DriverFlag::FailFast, "--fail-fast", ArgKind::None, nullptr,
     "abort the process on the first failure (debug mode)"},
};

const FlagInfo &infoFor(DriverFlag F) {
  for (const FlagInfo &Info : FlagTable)
    if (Info.Flag == F)
      return Info;
  assert(false && "flag missing from table");
  return FlagTable[0];
}

/// The flag's full spelling for usage/help: "--jobs=N",
/// "--compile-cache[=DIR]", "--metrics".
std::string spellingOf(const FlagInfo &Info) {
  std::string Out = Info.Name;
  if (Info.Kind == ArgKind::Required)
    Out += std::string("=") + Info.Value;
  else if (Info.Kind == ArgKind::Optional)
    Out += std::string("[=") + Info.Value + "]";
  return Out;
}

void applyFlag(DriverOptions &O, DriverFlag Flag, const char *Value) {
  switch (Flag) {
  case DriverFlag::Jobs:
    O.Jobs = static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::PollMask:
    O.PollInterval = static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::Metrics:
    O.Metrics = true;
    break;
  case DriverFlag::Counters:
    O.DumpCounters = true;
    break;
  case DriverFlag::Trace:
    O.TracePath = Value;
    break;
  case DriverFlag::Remarks:
    O.RemarksPath = Value;
    break;
  case DriverFlag::Flamegraph:
    O.FlamegraphPath = Value;
    break;
  case DriverFlag::JsonOut:
    O.JsonOutPath = Value ? Value : O.JsonOutDefault;
    break;
  case DriverFlag::MaxAttempts:
    O.MaxAttempts = static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::TaskDeadlineMs:
    O.TaskDeadlineMs = strtod(Value, nullptr);
    break;
  case DriverFlag::BreakerThreshold:
    O.BreakerThreshold = static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::BreakerHalfOpen:
    O.BreakerHalfOpenAfter =
        static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::CrashBundleDir:
    O.CrashBundleDir = Value;
    break;
  case DriverFlag::SimAudit:
    O.SimAudit = true;
    break;
  case DriverFlag::CompileCache:
    O.UseCompileCache = true;
    if (Value)
      O.CacheDir = Value;
    break;
  case DriverFlag::CacheDir:
    O.UseCompileCache = true;
    O.CacheDir = Value;
    break;
  case DriverFlag::Seed:
    O.Seed = strtoull(Value, nullptr, 10);
    break;
  case DriverFlag::Count:
    O.Count = static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::Functions:
    O.Functions = static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::Segments:
    O.Segments = static_cast<unsigned>(strtoul(Value, nullptr, 10));
    break;
  case DriverFlag::Quiet:
    O.Quiet = true;
    break;
  case DriverFlag::FailFast:
    O.FailFast = true;
    break;
  }
}

} // namespace

RunnerOptions DriverOptions::toRunnerOptions() const {
  RunnerOptions R;
  R.Jobs = Jobs;
  R.PollInterval = PollInterval;
  R.MaxAttempts = MaxAttempts;
  R.TaskDeadlineMs = TaskDeadlineMs;
  R.BreakerThreshold = BreakerThreshold;
  R.BreakerHalfOpenAfter = BreakerHalfOpenAfter;
  R.CrashBundleDir = CrashBundleDir;
  R.SimAudit = SimAudit;
  R.FailFast = FailFast;
  return R;
}

DriverOptionsParser::DriverOptionsParser(
    DriverOptions &Opts, std::initializer_list<DriverFlag> Enabled)
    : Opts(Opts), Enabled(Enabled) {}

ParseStatus DriverOptionsParser::parse(const char *Arg) {
  if (strcmp(Arg, "--help") == 0)
    return ParseStatus::Help;
  for (DriverFlag F : Enabled) {
    const FlagInfo &Info = infoFor(F);
    size_t Len = strlen(Info.Name);
    if (strncmp(Arg, Info.Name, Len) != 0)
      continue;
    if (Arg[Len] == '\0') {
      if (Info.Kind == ArgKind::Required) {
        Err = std::string(Info.Name) + " requires a value: " +
              spellingOf(Info);
        return ParseStatus::Error;
      }
      applyFlag(Opts, F, nullptr);
      return ParseStatus::Handled;
    }
    if (Arg[Len] == '=' && Info.Kind != ArgKind::None) {
      applyFlag(Opts, F, Arg + Len + 1);
      return ParseStatus::Handled;
    }
    // A longer flag sharing this prefix (--count vs --counters): keep
    // scanning.
  }
  return ParseStatus::Unrecognized;
}

std::string DriverOptionsParser::usage() const {
  std::string Out;
  for (DriverFlag F : Enabled) {
    if (!Out.empty())
      Out += " ";
    Out += "[" + spellingOf(infoFor(F)) + "]";
  }
  return Out;
}

std::string DriverOptionsParser::helpText() const {
  std::string Out;
  char Buf[256];
  for (DriverFlag F : Enabled) {
    const FlagInfo &Info = infoFor(F);
    snprintf(Buf, sizeof(Buf), "  %-24s %s\n", spellingOf(Info).c_str(),
             Info.Help);
    Out += Buf;
  }
  return Out;
}

bool dbds::reportInvalidRunnerOptions(const RunnerOptions &Opts,
                                      const char *Prog) {
  std::vector<RunnerOptionDiagnostic> Diags = Opts.validate();
  for (const RunnerOptionDiagnostic &D : Diags)
    fprintf(stderr, "%s: %s: %s\n", Prog, D.Option.c_str(),
            D.Message.c_str());
  return !Diags.empty();
}
