//===- tooling/LintFixtures.h - Malformed-IR lint fixtures ------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberately malformed IR fixtures, one per lint rule class: each
/// carries exactly one defect and the id of the rule expected to flag it
/// (and nothing else may report an error on it). They back the irlint
/// --selftest mode and tests/lint_test.cpp — the known-positive controls
/// proving every rule actually fires, the mirror image of the clean-corpus
/// requirement that no rule fires on healthy IR.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TOOLING_LINTFIXTURES_H
#define DBDS_TOOLING_LINTFIXTURES_H

#include "analysis/Lint.h"
#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace dbds {

/// One malformed-IR fixture.
struct LintFixture {
  std::string Name;         ///< e.g. "bad-phi-arity".
  std::string ExpectedRule; ///< Rule id that must fire; "" = must be clean.
  LintSeverity ExpectedSeverity = LintSeverity::Error;
  std::unique_ptr<Module> Mod;
  StampClaim Claim; ///< Installed on the linter when non-empty.
  /// Rules other than ExpectedRule allowed to fire on this fixture (any
  /// severity). Flow-sensitive defects overlap by construction: a def in a
  /// flow-dead block also trips def-dominates-use, and every constant
  /// branch that kills an edge is itself a flow-dead-branch finding.
  std::vector<std::string> AllowedExtraRules;
};

/// Builds the full fixture set: a clean control plus one fixture per
/// defect class (bad phi arity, use before def, missing terminator,
/// detached operand, unsound stamp claim, orphan block, dead phi).
std::vector<LintFixture> makeLintFixtures();

/// Lints \p Fixture with the standard rule set (plus its stamp claim) and
/// checks the exactly-one-rule contract: the expected rule fires at its
/// expected severity, and no *other* rule reports an error. Appends a
/// description of any violation to \p Log.
bool checkLintFixture(const LintFixture &Fixture, std::string &Log);

/// Runs checkLintFixture over makeLintFixtures(); true when all pass.
bool selftestLintFixtures(std::string &Log);

/// Builds the flow-sensitive sabotage set: one fixture per dataflow lint
/// rule (analysis/DataFlowLintRules.cpp), each seeded with a defect only
/// flow-sensitive analysis can prove, plus a clean control.
std::vector<LintFixture> makeDataflowLintFixtures();

/// Lints \p Fixture with dataflowLinter() and checks the relaxed contract
/// flow-sensitive fixtures need: the expected rule fires at its expected
/// severity, and every other finding comes from AllowedExtraRules.
bool checkDataflowLintFixture(const LintFixture &Fixture, std::string &Log);

} // namespace dbds

#endif // DBDS_TOOLING_LINTFIXTURES_H
