//===- tooling/DriverOptions.h - Shared driver option surface ---*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One declarative flag table for every command-line driver in the tree
/// (the figure benches, bench_headline, fuzzdiff, irlint). Each driver
/// enables the subset of shared flags it supports and keeps parsing only
/// its own specific options; the table owns the spelling, the value
/// syntax, the help text, and the mapping onto DriverOptions fields, so a
/// knob added here appears in every driver's usage and --help for free.
///
/// Typical use:
///
///   DriverOptions D;
///   D.Count = 50; // driver-specific default
///   DriverOptionsParser P(D, {DriverFlag::Jobs, DriverFlag::SimAudit});
///   for (int I = 1; I < argc; ++I)
///     switch (P.parse(argv[I])) {
///     case ParseStatus::Handled: break;
///     case ParseStatus::Help:    /* print usage()+helpText(), exit 0 */
///     case ParseStatus::Error:   /* print error(), exit 2 */
///     case ParseStatus::Unrecognized: /* driver-specific flags, files */
///     }
///   RunnerOptions Opts = D.toRunnerOptions();
///   if (reportInvalidRunnerOptions(Opts, argv[0])) return 2;
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TOOLING_DRIVEROPTIONS_H
#define DBDS_TOOLING_DRIVEROPTIONS_H

#include "workloads/Runner.h"

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace dbds {

/// Identifiers for the shared flags. A driver passes the subset it
/// supports to DriverOptionsParser; everything else stays Unrecognized so
/// unsupported knobs fail loudly instead of being silently accepted.
enum class DriverFlag : unsigned {
  Jobs,            ///< --jobs=N
  PollMask,        ///< --poll-mask=N
  Metrics,         ///< --metrics
  Counters,        ///< --counters
  Trace,           ///< --trace=FILE
  Remarks,         ///< --remarks=FILE
  Flamegraph,      ///< --flamegraph=FILE
  JsonOut,         ///< --json-out[=FILE]
  MaxAttempts,     ///< --max-attempts=N
  TaskDeadlineMs,  ///< --task-deadline-ms=MS
  BreakerThreshold, ///< --breaker-threshold=N
  BreakerHalfOpen, ///< --breaker-half-open=N
  CrashBundleDir,  ///< --crash-bundle-dir=DIR
  SimAudit,        ///< --simaudit
  CompileCache,    ///< --compile-cache[=DIR]
  CacheDir,        ///< --cache-dir=DIR
  Seed,            ///< --seed=N
  Count,           ///< --count=N
  Functions,       ///< --functions=N
  Segments,        ///< --segments=N
  Quiet,           ///< --quiet
  FailFast,        ///< --fail-fast
};

/// The values the shared flags parse into. Defaults match the historical
/// per-driver defaults; drivers with different presets (e.g. irlint's
/// corpus --count=3) overwrite fields before parsing.
struct DriverOptions {
  unsigned Jobs = 1;          ///< 0 = one worker per hardware thread.
  unsigned PollInterval = 128; ///< Cancellation-poll stride (power of two).
  bool Metrics = false;        ///< Histogram metrics registry on.
  bool DumpCounters = false;   ///< Dump the counter registry after the run.
  std::string TracePath;       ///< "" = tracing off.
  std::string RemarksPath;     ///< "" = no decision-log JSONL.
  std::string FlamegraphPath;  ///< "" = no folded profile.
  std::string JsonOutPath;     ///< "" = no bench report.
  /// Path a bare --json-out (no =FILE) selects; drivers set it to their
  /// conventional report name before parsing.
  std::string JsonOutDefault = "bench.json";
  unsigned MaxAttempts = 1;    ///< Retry ladder depth (1 = no retries).
  double TaskDeadlineMs = 0.0; ///< Per-attempt deadline (0 = none).
  unsigned BreakerThreshold = 0;    ///< Circuit breaker (0 = off).
  unsigned BreakerHalfOpenAfter = 0; ///< Half-open recovery (0 = stay open).
  std::string CrashBundleDir;  ///< "" = no crash bundles.
  bool SimAudit = false;       ///< Audit DBDS decisions post-hoc.
  bool UseCompileCache = false; ///< Content-addressed compile cache.
  std::string CacheDir;        ///< "" = in-memory cache only.
  uint64_t Seed = 1;           ///< First generator seed (corpus drivers).
  unsigned Count = 1;          ///< Generated seeds (corpus drivers).
  unsigned Functions = 4;      ///< Functions per generated program.
  unsigned Segments = 4;       ///< Segments per generated function.
  bool Quiet = false;          ///< Suppress per-item output.
  bool FailFast = false;       ///< Abort on first failure.

  /// The RunnerOptions these flags describe. Callers wire up the pointer
  /// members (Cache, Injector, Decisions, ...) afterwards, then gate on
  /// RunnerOptions::validate() — preferably via reportInvalidRunnerOptions.
  RunnerOptions toRunnerOptions() const;
};

/// Outcome of feeding one argv element to the parser.
enum class ParseStatus {
  Handled,      ///< A shared flag; DriverOptions was updated.
  Unrecognized, ///< Not a shared flag — the driver's turn to match it.
  Error,        ///< A shared flag used incorrectly; see error().
  Help,         ///< --help: print usage()+helpText() and exit 0.
};

/// Parses the enabled subset of the shared flag table into a
/// DriverOptions. Also generates the usage fragment and --help text for
/// exactly that subset, so a driver's documentation cannot drift from
/// what it parses.
class DriverOptionsParser {
public:
  DriverOptionsParser(DriverOptions &Opts,
                      std::initializer_list<DriverFlag> Enabled);

  /// Matches \p Arg against the enabled shared flags ("--help" is always
  /// recognized). Exactly one of the four statuses results.
  ParseStatus parse(const char *Arg);

  /// "[--jobs=N] [--metrics] ..." for the enabled flags, in table order —
  /// the shared portion of a driver's one-line usage string.
  std::string usage() const;

  /// One indented "  --flag=VALUE  description" line per enabled flag.
  std::string helpText() const;

  /// The message for the last ParseStatus::Error.
  const std::string &error() const { return Err; }

private:
  DriverOptions &Opts;
  std::vector<DriverFlag> Enabled;
  std::string Err;
};

/// Prints every RunnerOptions::validate() diagnostic of \p Opts to stderr
/// as "prog: --flag: message". Returns true when any were printed (i.e.
/// the driver should exit with a usage error).
bool reportInvalidRunnerOptions(const RunnerOptions &Opts, const char *Prog);

} // namespace dbds

#endif // DBDS_TOOLING_DRIVEROPTIONS_H
