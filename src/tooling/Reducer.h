//===- tooling/Reducer.h - Delta-debugging IR reduction ---------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failure-inducing module to a minimal reproducer. Given a
/// module, the name of the function under suspicion, and an oracle that
/// answers "does this candidate still reproduce the failure?", the reducer
/// greedily applies semantic-preserving-in-shape mutations — flattening
/// conditional branches to one arm and replacing instruction results with
/// constants — keeping each mutation only when the oracle still fires.
/// Candidates are normalized through a print -> parse round trip, so every
/// accepted step is guaranteed to be a well-formed, self-contained textual
/// artifact (the same property crash dumps need).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TOOLING_REDUCER_H
#define DBDS_TOOLING_REDUCER_H

#include <functional>
#include <memory>
#include <string>

namespace dbds {

class Function;
class Module;

/// Failure predicate: true when the candidate module still exhibits the
/// behavior being reduced (e.g. "optimized and unoptimized interpretation
/// of Focus disagree"). Must be deterministic; the reducer calls it up to
/// MaxOracleQueries times.
using ReductionOracle = std::function<bool(Module &M, Function &Focus)>;

/// Outcome of one reduction run.
struct ReductionResult {
  /// The final module: the smallest candidate the oracle accepted (or a
  /// verbatim clone of the input when nothing could be removed / the
  /// failure did not reproduce). Never null.
  std::unique_ptr<Module> Mod;

  std::string FocusName;
  unsigned OriginalInstructions = 0;
  unsigned ReducedInstructions = 0;
  unsigned OracleQueries = 0;
  /// Greedy passes over the mutation space until a fixpoint.
  unsigned Rounds = 0;
  /// True when the oracle fired on the unmutated clone — reduction is only
  /// meaningful (and only attempted) when it does.
  bool Reproduced = false;
  /// True when at least one mutation was accepted.
  bool Reduced = false;
};

/// Reduces \p M with respect to \p Oracle, focusing mutations on the
/// function named \p FocusName. \p MaxOracleQueries bounds total oracle
/// invocations (reduction stops early, keeping the best candidate so far).
ReductionResult reduceFunction(const Module &M, const std::string &FocusName,
                               const ReductionOracle &Oracle,
                               unsigned MaxOracleQueries = 4096);

} // namespace dbds

#endif // DBDS_TOOLING_REDUCER_H
