//===- telemetry/Counters.cpp - Named-counter registry ---------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Counters.h"

#include "telemetry/Json.h"

#include <algorithm>

using namespace dbds;

TelemetryCounter::TelemetryCounter(const char *Component, const char *Name)
    : Component(Component), Name(Name) {
  CounterRegistry::instance().add(this);
}

namespace {
/// The calling thread's innermost shard (null = increments hit the global
/// atomics directly).
thread_local CounterShard *ActiveShard = nullptr;
} // namespace

void TelemetryCounter::bump(uint64_t N) {
  if (CounterShard *Shard = ActiveShard) {
    Shard->bump(this, N);
    return;
  }
  Value.fetch_add(N, std::memory_order_relaxed);
}

CounterShard::CounterShard() : Previous(ActiveShard) { ActiveShard = this; }

CounterShard::~CounterShard() {
  flush();
  ActiveShard = Previous;
}

CounterShard *CounterShard::active() { return ActiveShard; }

void CounterShard::bump(TelemetryCounter *C, uint64_t N) {
  for (auto &[Counter, Value] : Buffered) {
    if (Counter == C) {
      Value += N;
      return;
    }
  }
  Buffered.emplace_back(C, N);
}

std::vector<CounterSample> CounterShard::snapshot() const {
  std::vector<CounterSample> Out;
  Out.reserve(Buffered.size());
  for (const auto &[Counter, Value] : Buffered)
    Out.push_back({Counter->qualifiedName(), Value});
  std::sort(Out.begin(), Out.end(),
            [](const CounterSample &A, const CounterSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

void CounterShard::flush() {
  for (auto &[Counter, Value] : Buffered)
    Counter->addGlobal(Value);
  Buffered.clear();
}

std::vector<std::pair<TelemetryCounter *, uint64_t>> CounterShard::take() {
  std::vector<std::pair<TelemetryCounter *, uint64_t>> Out =
      std::move(Buffered);
  Buffered.clear();
  return Out;
}

void CounterRegistry::publishBatch(
    const std::vector<std::pair<TelemetryCounter *, uint64_t>> &B) {
  for (const auto &[Counter, Value] : B)
    Counter->addGlobal(Value);
}

CounterRegistry &CounterRegistry::instance() {
  static CounterRegistry Registry;
  return Registry;
}

void CounterRegistry::add(TelemetryCounter *C) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.push_back(C);
}

std::vector<CounterSample> CounterRegistry::snapshot(bool SkipZero) const {
  std::vector<CounterSample> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out.reserve(Counters.size());
    for (const TelemetryCounter *C : Counters) {
      uint64_t V = C->value();
      if (SkipZero && V == 0)
        continue;
      Out.push_back({C->qualifiedName(), V});
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const CounterSample &A, const CounterSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

TelemetryCounter *CounterRegistry::find(const std::string &Qualified) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (TelemetryCounter *C : Counters)
    if (C->qualifiedName() == Qualified)
      return C;
  return nullptr;
}

void CounterRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (TelemetryCounter *C : Counters)
    C->reset();
}

std::vector<CounterSample>
CounterRegistry::delta(const std::vector<CounterSample> &Before,
                       const std::vector<CounterSample> &After) {
  std::vector<CounterSample> Out;
  // Both snapshots are sorted by name; walk them together. A counter
  // missing from Before (registered later) contributes its full value.
  size_t BI = 0;
  for (const CounterSample &A : After) {
    while (BI != Before.size() && Before[BI].Name < A.Name)
      ++BI;
    uint64_t Base =
        (BI != Before.size() && Before[BI].Name == A.Name) ? Before[BI].Value
                                                           : 0;
    if (A.Value > Base)
      Out.push_back({A.Name, A.Value - Base});
  }
  return Out;
}

std::string
CounterRegistry::renderText(const std::vector<CounterSample> &Samples) {
  std::string Out;
  for (const CounterSample &S : Samples)
    Out += S.Name + " = " + std::to_string(S.Value) + "\n";
  return Out;
}

std::string
CounterRegistry::renderJson(const std::vector<CounterSample> &Samples) {
  std::string Out = "{";
  for (size_t I = 0; I != Samples.size(); ++I) {
    if (I != 0)
      Out += ",";
    Out += jsonString(Samples[I].Name) + ":" + jsonNumber(Samples[I].Value);
  }
  Out += "}";
  return Out;
}
