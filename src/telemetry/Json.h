//===- telemetry/Json.h - Minimal JSON emission helpers ---------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny header-only helpers shared by the telemetry emitters (trace
/// events, counter dumps, decision logs, bench reports). Emission only —
/// the repo never needs to parse general JSON, so there is no reader here.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_JSON_H
#define DBDS_TELEMETRY_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace dbds {

/// Escapes \p S for inclusion in a JSON string literal (quotes not
/// included).
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// A quoted, escaped JSON string literal.
inline std::string jsonString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  return Out;
}

/// A JSON number for a double. Non-finite values have no JSON spelling and
/// are emitted as 0.
inline std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "0";
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

inline std::string jsonNumber(uint64_t V) { return std::to_string(V); }
inline std::string jsonNumber(int64_t V) { return std::to_string(V); }
inline std::string jsonNumber(unsigned V) { return std::to_string(V); }

inline const char *jsonBool(bool B) { return B ? "true" : "false"; }

} // namespace dbds

#endif // DBDS_TELEMETRY_JSON_H
