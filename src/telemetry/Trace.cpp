//===- telemetry/Trace.cpp - Chrome trace_event span recording -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Trace.h"

#include "telemetry/Json.h"
#include "support/Timer.h"

#include <cstdio>
#include <map>

using namespace dbds;

std::atomic<TraceSession *> TraceSession::ActiveSession{nullptr};

TraceSession::TraceSession() : StartNs(Timer::nowNs()) {}

TraceSession::~TraceSession() {
  // A dying session must never stay attached.
  TraceSession *Expected = this;
  ActiveSession.compare_exchange_strong(Expected, nullptr);
}

uint32_t TraceSession::threadIndex() {
  auto [It, Inserted] = ThreadIds.try_emplace(
      std::this_thread::get_id(), static_cast<uint32_t>(ThreadIds.size()));
  (void)Inserted;
  return It->second;
}

void TraceSession::record(char Phase, const char *Name, const char *Category,
                          std::string Args) {
  uint64_t Now = Timer::nowNs();
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back({Phase, Name, Category, Now - StartNs, threadIndex(),
                    std::move(Args)});
}

void TraceSession::beginSpan(const char *Name, const char *Category,
                             std::string Args) {
  record('B', Name, Category, std::move(Args));
}

void TraceSession::endSpan(const char *Name) {
  record('E', Name, "", std::string());
}

void TraceSession::instant(const char *Name, const char *Category,
                           std::string Args) {
  record('i', Name, Category, std::move(Args));
}

size_t TraceSession::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

bool TraceSession::checkBalance(std::vector<std::string> *Errors) const {
  std::lock_guard<std::mutex> Lock(Mu);
  bool Ok = true;
  auto fail = [&](const std::string &Msg) {
    Ok = false;
    if (Errors)
      Errors->push_back("telemetry-span-balance: " + Msg);
  };

  // Per-thread stacks of open span names, in event order.
  std::unordered_map<uint32_t, std::vector<const char *>> Open;
  for (const TraceEvent &E : Events) {
    if (E.Phase == 'B') {
      Open[E.ThreadId].push_back(E.Name);
    } else if (E.Phase == 'E') {
      std::vector<const char *> &Stack = Open[E.ThreadId];
      if (Stack.empty()) {
        fail("end event '" + std::string(E.Name) + "' on tid " +
             std::to_string(E.ThreadId) + " without a matching begin");
        continue;
      }
      if (std::string(Stack.back()) != E.Name)
        fail("end event '" + std::string(E.Name) + "' on tid " +
             std::to_string(E.ThreadId) + " crosses open span '" +
             Stack.back() + "'");
      Stack.pop_back();
    }
  }
  for (const auto &[Tid, Stack] : Open)
    for (const char *Name : Stack)
      fail("span '" + std::string(Name) + "' on tid " + std::to_string(Tid) +
           " was never closed");
  return Ok;
}

std::string TraceSession::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  char Buf[128];
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"ph\":\"";
    Out += E.Phase;
    Out += "\",\"name\":" + jsonString(E.Name);
    if (E.Phase != 'E')
      Out += ",\"cat\":" + jsonString(E.Category);
    if (E.Phase == 'i')
      Out += ",\"s\":\"t\""; // thread-scoped instant
    // Microsecond timestamps with nanosecond fraction preserved.
    snprintf(Buf, sizeof(Buf), ",\"ts\":%llu.%03u,\"pid\":1,\"tid\":%u",
             static_cast<unsigned long long>(E.TimestampNs / 1000),
             static_cast<unsigned>(E.TimestampNs % 1000), E.ThreadId);
    Out += Buf;
    if (!E.Args.empty())
      Out += ",\"args\":{" + E.Args + "}";
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

bool TraceSession::writeJson(const std::string &Path,
                             std::string *Error) const {
  std::vector<std::string> Violations;
  if (!checkBalance(&Violations)) {
    if (Error) {
      *Error = "refusing to write unbalanced trace:";
      for (const std::string &V : Violations)
        *Error += "\n  " + V;
    }
    return false;
  }
  FILE *File = fopen(Path.c_str(), "wb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  std::string Json = renderJson();
  size_t Written = fwrite(Json.data(), 1, Json.size(), File);
  fclose(File);
  if (Written != Json.size()) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

std::string dbds::renderFoldedStacks(const std::vector<TraceEvent> &Events) {
  // Replay the span stacks per thread; the time between two consecutive
  // events of a thread is self time of whatever span was innermost-open
  // during that window. Aggregation and ordering are by stack string, so
  // equal streams render byte-identically.
  std::unordered_map<uint32_t, std::vector<const char *>> Stacks;
  std::unordered_map<uint32_t, uint64_t> LastTs;
  std::map<std::string, uint64_t> SelfNs;
  for (const TraceEvent &E : Events) {
    std::vector<const char *> &Stack = Stacks[E.ThreadId];
    auto [It, FirstEvent] = LastTs.try_emplace(E.ThreadId, E.TimestampNs);
    if (!FirstEvent && !Stack.empty() && E.TimestampNs > It->second) {
      std::string Key;
      for (const char *Name : Stack) {
        if (!Key.empty())
          Key += ';';
        Key += Name;
      }
      SelfNs[Key] += E.TimestampNs - It->second;
    }
    It->second = E.TimestampNs;
    if (E.Phase == 'B') {
      Stack.push_back(E.Name);
    } else if (E.Phase == 'E') {
      if (!Stack.empty())
        Stack.pop_back();
    }
  }
  std::string Out;
  for (const auto &[Key, Ns] : SelfNs) {
    uint64_t Us = Ns / 1000;
    if (Us == 0)
      continue; // sub-microsecond self time: below folded resolution
    Out += Key + " " + std::to_string(Us) + "\n";
  }
  return Out;
}

std::string TraceSession::renderFolded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return renderFoldedStacks(Events);
}

bool TraceSession::writeFolded(const std::string &Path,
                               std::string *Error) const {
  std::vector<std::string> Violations;
  if (!checkBalance(&Violations)) {
    if (Error) {
      *Error = "refusing to fold unbalanced trace:";
      for (const std::string &V : Violations)
        *Error += "\n  " + V;
    }
    return false;
  }
  FILE *File = fopen(Path.c_str(), "wb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  std::string Folded = renderFolded();
  size_t Written = fwrite(Folded.data(), 1, Folded.size(), File);
  fclose(File);
  if (Written != Folded.size()) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

TraceSession *TraceSession::attach() {
  return ActiveSession.exchange(this);
}

void TraceSession::detach(TraceSession *Previous) {
  TraceSession *Expected = this;
  ActiveSession.compare_exchange_strong(Expected, Previous);
}
