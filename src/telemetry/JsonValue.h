//===- telemetry/JsonValue.h - Minimal JSON DOM parser ----------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the tools that consume our
/// own emissions (dbds-stats over BENCH_*.json reports, the bench_headline
/// regression gate). Reading only what we write keeps the scope honest:
/// objects, arrays, strings with the escapes jsonEscape produces, numbers
/// (stored as double), booleans, null. No exceptions (the tree builds with
/// -fno-exceptions); parse() reports failure by return value with a
/// byte-offset error message.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_JSONVALUE_H
#define DBDS_TELEMETRY_JSONVALUE_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dbds {

/// One parsed JSON value. Object member order is preserved (our emitters
/// write deterministic key orders, and diffs read better in file order).
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  /// Parses \p Text into \p Out. Returns false (and fills \p Error with a
  /// "byte N: why" message) on malformed input or trailing garbage.
  static bool parse(const std::string &Text, JsonValue &Out,
                    std::string *Error = nullptr);

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Num != 0.0; }
  double asDouble() const { return Num; }
  const std::string &asString() const { return Str; }

  /// Array size / object member count (0 for scalars).
  size_t size() const {
    return K == Kind::Array ? Arr.size()
                            : (K == Kind::Object ? Members.size() : 0);
  }

  /// Array element \p I (null for out-of-range or non-arrays).
  const JsonValue *at(size_t I) const {
    return K == Kind::Array && I < Arr.size() ? &Arr[I] : nullptr;
  }

  /// Object member \p Key (null when absent or not an object).
  const JsonValue *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, Value] : Members)
      if (Name == Key)
        return &Value;
    return nullptr;
  }

  /// Convenience: member \p Key as a double, or \p Default when absent or
  /// not a number.
  double getNumber(const std::string &Key, double Default = 0.0) const {
    const JsonValue *V = get(Key);
    return V && V->isNumber() ? V->Num : Default;
  }

  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

private:
  friend class JsonParser;
  Kind K = Kind::Null;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

} // namespace dbds

#endif // DBDS_TELEMETRY_JSONVALUE_H
