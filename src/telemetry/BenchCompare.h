//===- telemetry/BenchCompare.h - Bench report regression diff --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two dbds-bench-report documents (telemetry/Report.h) and
/// reports regressions beyond configurable thresholds — the engine behind
/// `dbds-stats compare` and bench_headline's opt-in `--compare` gate.
/// Benchmarks are matched by name; per config (baseline/dbds/dupalot) the
/// scalar trade-off metrics are gated:
///
///   compile_time_ms   latency  (subject to a noise floor, MinLatencyMs)
///   dynamic_cycles    peak performance (exact; deterministic)
///   code_size         size (exact; deterministic)
///
/// A regression is New > Old * (1 + threshold/100). Metrics-section
/// histograms present in both reports additionally have their p50/p99
/// compared; timing-class shifts are reported as notes and gate only
/// under GateOnMetrics (wall-clock percentiles are too noisy to fail CI
/// by default), deterministic-class shifts always gate.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_BENCHCOMPARE_H
#define DBDS_TELEMETRY_BENCHCOMPARE_H

#include <string>
#include <vector>

namespace dbds {

struct BenchCompareOptions {
  /// Regression threshold in percent applied to every gated metric.
  double ThresholdPct = 10.0;
  /// compile_time_ms values below this floor (in either report) are not
  /// gated: sub-millisecond wall-clock readings are jitter, not signal.
  double MinLatencyMs = 1.0;
  /// Gate on timing-class histogram percentile shifts too (off: notes
  /// only).
  bool GateOnMetrics = false;
};

/// One metric that moved past the threshold (or is worth a note).
struct BenchDelta {
  std::string Where;  ///< "benchmark/config" or "metrics" scope.
  std::string Field;  ///< e.g. "compile_time_ms", "histogram p99".
  double OldValue = 0.0;
  double NewValue = 0.0;
  double DeltaPct = 0.0;
  bool Gating = false; ///< Counts toward the non-zero exit.
};

struct BenchCompareResult {
  bool Ok = false;          ///< Both documents parsed and were comparable.
  std::string Error;        ///< Parse/shape failure when !Ok.
  std::vector<BenchDelta> Deltas; ///< Regressions + notes, report order.
  unsigned Regressions = 0; ///< Gating deltas (exit non-zero when != 0).
  unsigned Compared = 0;    ///< Scalar comparisons performed.

  /// Human summary of the comparison (one line per delta plus a verdict).
  std::string render() const;
};

/// Compares two rendered report documents.
BenchCompareResult compareBenchReports(const std::string &OldJson,
                                       const std::string &NewJson,
                                       const BenchCompareOptions &Opts);

/// File-based convenience: reads both paths, then compares.
BenchCompareResult compareBenchReportFiles(const std::string &OldPath,
                                           const std::string &NewPath,
                                           const BenchCompareOptions &Opts);

/// Reads a whole file into \p Out; false + \p Error on I/O failure.
bool readFileToString(const std::string &Path, std::string &Out,
                      std::string *Error = nullptr);

} // namespace dbds

#endif // DBDS_TELEMETRY_BENCHCOMPARE_H
