//===- telemetry/Counters.h - Named-counter registry ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LLVM-STATISTIC-style registry of named counters. A counter is a
/// file-scope static declared with DBDS_COUNTER(component, name); it
/// registers itself on first use and is incremented with ++ from anywhere
/// (relaxed atomics, so hot paths pay one uncontended add). The registry
/// can be snapshotted at any time; drivers report either the absolute
/// values (--counters) or the delta across a measured region
/// (ConfigMeasurement's per-configuration counters).
///
///   DBDS_COUNTER(simulator, constant_folds);
///   ...
///   ++constant_folds;
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_COUNTERS_H
#define DBDS_TELEMETRY_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dbds {

/// One registered counter. Construction registers it process-wide;
/// counters are expected to be static-storage objects that live forever.
class TelemetryCounter {
public:
  TelemetryCounter(const char *Component, const char *Name);

  TelemetryCounter(const TelemetryCounter &) = delete;
  TelemetryCounter &operator=(const TelemetryCounter &) = delete;

  TelemetryCounter &operator++() {
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }

  TelemetryCounter &operator+=(uint64_t N) {
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

  const char *component() const { return Component; }
  const char *name() const { return Name; }

  /// "component.name", the stable key used in dumps and reports.
  std::string qualifiedName() const {
    return std::string(Component) + "." + Name;
  }

private:
  const char *Component;
  const char *Name;
  std::atomic<uint64_t> Value{0};
};

/// A point-in-time reading of one counter.
struct CounterSample {
  std::string Name; ///< Qualified "component.name".
  uint64_t Value = 0;
};

/// Process-wide registry of all counters.
class CounterRegistry {
public:
  static CounterRegistry &instance();

  /// All counters' current values, sorted by qualified name. \p SkipZero
  /// drops counters that never fired (the common dump mode).
  std::vector<CounterSample> snapshot(bool SkipZero = false) const;

  /// Zeroes every counter (tests and per-run measurement baselines).
  void resetAll();

  /// Per-counter difference \p After - \p Before, dropping zero deltas.
  /// Counters only grow, so both snapshots must come from this process in
  /// order.
  static std::vector<CounterSample>
  delta(const std::vector<CounterSample> &Before,
        const std::vector<CounterSample> &After);

  /// "component.name = value" lines, one per counter.
  static std::string renderText(const std::vector<CounterSample> &Samples);

  /// A JSON object {"component.name": value, ...}.
  static std::string renderJson(const std::vector<CounterSample> &Samples);

private:
  friend class TelemetryCounter;
  void add(TelemetryCounter *C);

  mutable std::mutex Mu;
  std::vector<TelemetryCounter *> Counters;
};

/// Declares (and registers) a static counter named \p NAME under
/// \p COMPONENT. Usable at file or function scope; increment with
/// ++NAME or NAME += n.
#define DBDS_COUNTER(COMPONENT, NAME)                                         \
  static ::dbds::TelemetryCounter NAME(#COMPONENT, #NAME)

} // namespace dbds

#endif // DBDS_TELEMETRY_COUNTERS_H
