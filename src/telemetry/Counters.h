//===- telemetry/Counters.h - Named-counter registry ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LLVM-STATISTIC-style registry of named counters. A counter is a
/// file-scope static declared with DBDS_COUNTER(component, name); it
/// registers itself on first use and is incremented with ++ from anywhere
/// (relaxed atomics, so hot paths pay one uncontended add). The registry
/// can be snapshotted at any time; drivers report either the absolute
/// values (--counters) or the delta across a measured region
/// (ConfigMeasurement's per-configuration counters).
///
///   DBDS_COUNTER(simulator, constant_folds);
///   ...
///   ++constant_folds;
///
/// Parallel compilation (workloads/CompileService.h) adds per-worker
/// sharding on top: while a CounterShard is installed on a thread, that
/// thread's increments accumulate in the shard's private buffer instead of
/// the global atomics, and are published in one batch when the shard
/// flushes (at task join). Totals are identical either way — counter
/// addition commutes — but sharding keeps the hot path contention-free
/// and gives the phase auditor a view of *this thread's* activity only,
/// which is what makes audit-mode counter attribution correct when
/// several functions compile concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_COUNTERS_H
#define DBDS_TELEMETRY_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dbds {

/// One registered counter. Construction registers it process-wide;
/// counters are expected to be static-storage objects that live forever.
class TelemetryCounter {
public:
  TelemetryCounter(const char *Component, const char *Name);

  TelemetryCounter(const TelemetryCounter &) = delete;
  TelemetryCounter &operator=(const TelemetryCounter &) = delete;

  TelemetryCounter &operator++() {
    bump(1);
    return *this;
  }

  TelemetryCounter &operator+=(uint64_t N) {
    bump(N);
    return *this;
  }

  /// Adds \p N: into this thread's active CounterShard when one is
  /// installed, directly into the global atomic otherwise.
  void bump(uint64_t N);

  /// Adds \p N directly to the global value, bypassing any shard (the
  /// shard flush path).
  void addGlobal(uint64_t N) {
    Value.fetch_add(N, std::memory_order_relaxed);
  }

  /// The *published* value: shard-buffered increments are invisible here
  /// until their shard flushes.
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

  const char *component() const { return Component; }
  const char *name() const { return Name; }

  /// "component.name", the stable key used in dumps and reports.
  std::string qualifiedName() const {
    return std::string(Component) + "." + Name;
  }

private:
  const char *Component;
  const char *Name;
  std::atomic<uint64_t> Value{0};
};

/// A point-in-time reading of one counter.
struct CounterSample {
  std::string Name; ///< Qualified "component.name".
  uint64_t Value = 0;
};

/// Process-wide registry of all counters.
class CounterRegistry {
public:
  static CounterRegistry &instance();

  /// All counters' current values, sorted by qualified name. \p SkipZero
  /// drops counters that never fired (the common dump mode).
  std::vector<CounterSample> snapshot(bool SkipZero = false) const;

  /// The registered counter named \p Qualified ("component.name"), or null
  /// — the compile cache resolves stored counter samples back to live
  /// counters with this.
  TelemetryCounter *find(const std::string &Qualified) const;

  /// Zeroes every counter (tests and per-run measurement baselines).
  void resetAll();

  /// Per-counter difference \p After - \p Before, dropping zero deltas.
  /// Counters only grow, so both snapshots must come from this process in
  /// order.
  static std::vector<CounterSample>
  delta(const std::vector<CounterSample> &Before,
        const std::vector<CounterSample> &After);

  /// "component.name = value" lines, one per counter.
  static std::string renderText(const std::vector<CounterSample> &Samples);

  /// A JSON object {"component.name": value, ...}.
  static std::string renderJson(const std::vector<CounterSample> &Samples);

  /// Publishes a taken shard buffer (CounterShard::take) into the global
  /// counters — the compile service's one-batch-per-task-join update.
  static void
  publishBatch(const std::vector<std::pair<TelemetryCounter *, uint64_t>> &B);

private:
  friend class TelemetryCounter;
  void add(TelemetryCounter *C);

  mutable std::mutex Mu;
  std::vector<TelemetryCounter *> Counters;
};

/// Per-worker counter shard: while installed (RAII, per thread), this
/// thread's counter increments buffer privately and publish to the global
/// registry in one batch when the shard flushes (destruction, or an
/// explicit flush()). Shards nest; the previously installed shard is
/// restored on destruction. The parallel compile service installs one per
/// task, so (a) workers never contend on the global atomics mid-compile
/// and (b) a thread can ask "what did *I* increment?" — the snapshot the
/// PhaseManager auditor uses to attribute counter activity to a phase
/// without picking up concurrent workers' noise.
class CounterShard {
public:
  CounterShard();
  ~CounterShard(); ///< Flushes, then restores the previous shard.

  CounterShard(const CounterShard &) = delete;
  CounterShard &operator=(const CounterShard &) = delete;

  /// The shard installed on the calling thread (null when increments go
  /// straight to the globals).
  static CounterShard *active();

  /// Buffers \p N for \p C (called by TelemetryCounter::bump).
  void bump(TelemetryCounter *C, uint64_t N);

  /// This shard's buffered values, sorted by qualified name — the
  /// thread-local analogue of CounterRegistry::snapshot().
  std::vector<CounterSample> snapshot() const;

  /// Publishes all buffered values into the global counters and clears
  /// the buffer.
  void flush();

  /// Moves the buffered values out without publishing them. The parallel
  /// compile service takes each task's buffer at task end and publishes
  /// all of them in one batch per task at the serial join (task index
  /// order) via CounterRegistry::publishBatch — workers then never touch
  /// the shared registry cachelines at all, not even once per counter at
  /// flush (ROADMAP: the registry atomics were the hottest shared
  /// cacheline after the work deque at --jobs=8).
  std::vector<std::pair<TelemetryCounter *, uint64_t>> take();

private:
  CounterShard *Previous;
  /// Linear map: a compile task touches a handful of distinct counters,
  /// so a vector scan beats hashing.
  std::vector<std::pair<TelemetryCounter *, uint64_t>> Buffered;
};

/// Declares (and registers) a static counter named \p NAME under
/// \p COMPONENT. Usable at file or function scope; increment with
/// ++NAME or NAME += n.
#define DBDS_COUNTER(COMPONENT, NAME)                                         \
  static ::dbds::TelemetryCounter NAME(#COMPONENT, #NAME)

} // namespace dbds

#endif // DBDS_TELEMETRY_COUNTERS_H
