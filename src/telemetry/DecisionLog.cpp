//===- telemetry/DecisionLog.cpp - DBDS duplication decision log -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/DecisionLog.h"

#include "telemetry/Json.h"

#include <cstdio>

using namespace dbds;

const char *dbds::decisionVerdictName(DecisionVerdict V) {
  switch (V) {
  case DecisionVerdict::Accepted:
    return "accepted";
  case DecisionVerdict::RejectedTradeoff:
    return "rejected-tradeoff";
  case DecisionVerdict::RejectedNoBenefit:
    return "rejected-no-benefit";
  case DecisionVerdict::RejectedSizeLimit:
    return "rejected-size-limit";
  case DecisionVerdict::RejectedStale:
    return "rejected-stale";
  case DecisionVerdict::RolledBack:
    return "rolled-back";
  }
  return "?";
}

const char *dbds::auditVerdictName(AuditVerdict V) {
  switch (V) {
  case AuditVerdict::Unaudited:
    return "unaudited";
  case AuditVerdict::Confirmed:
    return "confirmed";
  case AuditVerdict::Overclaimed:
    return "overclaimed";
  case AuditVerdict::Underclaimed:
    return "underclaimed";
  case AuditVerdict::Skipped:
    return "skipped";
  }
  return "?";
}

std::string DuplicationDecision::renderJson() const {
  std::string Out = "{";
  Out += "\"function\":" + jsonString(FunctionName);
  Out += ",\"iteration\":" + jsonNumber(Iteration);
  Out += ",\"merge\":" + jsonNumber(MergeId);
  Out += ",\"pred\":" + jsonNumber(PredId);
  if (SecondMergeId != InvalidBlock)
    Out += ",\"second_merge\":" + jsonNumber(SecondMergeId);
  Out += ",\"cycles_saved\":" + jsonNumber(CyclesSaved);
  Out += ",\"probability\":" + jsonNumber(Probability);
  Out += ",\"size_cost\":" + jsonNumber(SizeCost);
  Out += ",\"current_size\":" + jsonNumber(CurrentSize);
  Out += ",\"initial_size\":" + jsonNumber(InitialSize);
  Out += ",\"opportunities\":{";
  Out += "\"constant_folds\":" + jsonNumber(Opportunities.ConstantFolds);
  Out += ",\"strength_reductions\":" +
         jsonNumber(Opportunities.StrengthReductions);
  Out += ",\"conditional_eliminations\":" +
         jsonNumber(Opportunities.ConditionalEliminations);
  Out += ",\"read_eliminations\":" + jsonNumber(Opportunities.ReadEliminations);
  Out += ",\"allocation_sinks\":" + jsonNumber(Opportunities.AllocationSinks);
  Out += ",\"partial_escapes\":" + jsonNumber(Opportunities.PartialEscapes);
  Out += "}";
  if (TradeoffEvaluated) {
    Out += ",\"clauses\":{";
    Out += std::string("\"positive_cycles_saved\":") +
           jsonBool(Clauses.PositiveCyclesSaved);
    Out += std::string(",\"benefit_outweighs_cost\":") +
           jsonBool(Clauses.BenefitOutweighsCost);
    Out += std::string(",\"under_max_unit_size\":") +
           jsonBool(Clauses.UnderMaxUnitSize);
    Out += std::string(",\"within_growth_budget\":") +
           jsonBool(Clauses.WithinGrowthBudget);
    Out += "}";
    if (const char *Failing = Clauses.firstFailing(); *Failing)
      Out += ",\"failed_clause\":" + jsonString(Failing);
  }
  Out += ",\"verdict\":" + jsonString(decisionVerdictName(Verdict));
  if (DuplicationsPerformed != 0)
    Out += ",\"duplications\":" + jsonNumber(DuplicationsPerformed);
  // Only audited records carry the field, so un-audited remarks streams
  // stay byte-identical to pre-audit builds.
  if (Audit != AuditVerdict::Unaudited)
    Out += ",\"audit\":" + jsonString(auditVerdictName(Audit));
  Out += "}";
  return Out;
}

size_t DecisionLog::append(DuplicationDecision D) {
  Decisions.push_back(std::move(D));
  return Decisions.size() - 1;
}

void DecisionLog::merge(DecisionLog &&Other) {
  if (Decisions.empty()) {
    Decisions = std::move(Other.Decisions);
  } else {
    Decisions.reserve(Decisions.size() + Other.Decisions.size());
    for (DuplicationDecision &D : Other.Decisions)
      Decisions.push_back(std::move(D));
  }
  Other.Decisions.clear();
}

void DecisionLog::markRolledBackFrom(size_t FirstIndex,
                                     const std::string &FunctionName) {
  for (size_t I = FirstIndex; I < Decisions.size(); ++I) {
    DuplicationDecision &D = Decisions[I];
    if (D.FunctionName == FunctionName &&
        D.Verdict == DecisionVerdict::Accepted)
      D.Verdict = DecisionVerdict::RolledBack;
  }
}

std::string DecisionLog::renderJsonl() const {
  std::string Out;
  for (const DuplicationDecision &D : Decisions)
    Out += D.renderJson() + "\n";
  return Out;
}

std::string DecisionLog::renderText() const {
  std::string Out;
  char Buf[256];
  for (const DuplicationDecision &D : Decisions) {
    snprintf(Buf, sizeof(Buf),
             "%s @%s iter %u merge b%u <- pred b%u: b=%.2f p=%.3f c=%lld "
             "cs=%llu is=%llu",
             decisionVerdictName(D.Verdict), D.FunctionName.c_str(),
             D.Iteration, D.MergeId, D.PredId, D.CyclesSaved, D.Probability,
             static_cast<long long>(D.SizeCost),
             static_cast<unsigned long long>(D.CurrentSize),
             static_cast<unsigned long long>(D.InitialSize));
    Out += Buf;
    if (D.TradeoffEvaluated)
      if (const char *Failing = D.Clauses.firstFailing(); *Failing)
        Out += std::string(" [failed: ") + Failing + "]";
    Out += "\n";
  }
  return Out;
}

bool DecisionLog::writeJsonl(const std::string &Path,
                             std::string *Error) const {
  FILE *File = fopen(Path.c_str(), "wb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  std::string Out = renderJsonl();
  size_t Written = fwrite(Out.data(), 1, Out.size(), File);
  fclose(File);
  if (Written != Out.size()) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}
