//===- telemetry/BenchCompare.cpp - Bench report regression diff -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/BenchCompare.h"

#include "telemetry/JsonValue.h"

#include <cstdio>

using namespace dbds;

namespace {

double deltaPct(double OldV, double NewV) {
  if (OldV <= 0.0)
    return 0.0;
  return (NewV / OldV - 1.0) * 100.0;
}

/// Gates one scalar: records a delta when New regressed past the
/// threshold. Lower is better for every gated field (latency, cycles,
/// size).
void gateScalar(BenchCompareResult &R, const BenchCompareOptions &Opts,
                const std::string &Where, const std::string &Field,
                double OldV, double NewV, bool Gating) {
  ++R.Compared;
  if (OldV <= 0.0)
    return; // zero baselines are not comparable (empty/folded functions)
  double Pct = deltaPct(OldV, NewV);
  if (Pct <= Opts.ThresholdPct)
    return;
  BenchDelta D;
  D.Where = Where;
  D.Field = Field;
  D.OldValue = OldV;
  D.NewValue = NewV;
  D.DeltaPct = Pct;
  D.Gating = Gating;
  if (Gating)
    ++R.Regressions;
  R.Deltas.push_back(std::move(D));
}

/// Gates one higher-is-better counter, fed inverted: a value that
/// *dropped* past the threshold is the regression. Zero-valued counters
/// are omitted from reports, so \p New may be null — that means the
/// counter collapsed to zero, the worst shrinkage, which must still gate.
/// A missing old-side key skips the check (nothing to shrink from),
/// matching gateScalar's zero-baseline rule.
void gateShrinkage(BenchCompareResult &R, const BenchCompareOptions &Opts,
                   const std::string &Where, const std::string &Field,
                   const JsonValue *Old, const JsonValue *New) {
  if (!Old)
    return;
  double OldV = Old->asDouble();
  double NewV = New ? New->asDouble() : 0.0;
  ++R.Compared;
  if (OldV <= 0.0)
    return;
  double Pct = deltaPct(OldV, NewV);
  if (-Pct <= Opts.ThresholdPct)
    return;
  BenchDelta D;
  D.Where = Where;
  D.Field = Field;
  D.OldValue = OldV;
  D.NewValue = NewV;
  D.DeltaPct = Pct;
  D.Gating = true;
  ++R.Regressions;
  R.Deltas.push_back(std::move(D));
}

void compareConfigs(BenchCompareResult &R, const BenchCompareOptions &Opts,
                    const std::string &BenchName, const JsonValue &OldBench,
                    const JsonValue &NewBench) {
  const JsonValue *OldConfigs = OldBench.get("configs");
  const JsonValue *NewConfigs = NewBench.get("configs");
  if (!OldConfigs || !NewConfigs)
    return;
  for (const char *Config : {"baseline", "dbds", "dupalot"}) {
    const JsonValue *OldC = OldConfigs->get(Config);
    const JsonValue *NewC = NewConfigs->get(Config);
    if (!OldC || !NewC)
      continue;
    std::string Where = BenchName + "/" + Config;
    double OldMs = OldC->getNumber("compile_time_ms");
    double NewMs = NewC->getNumber("compile_time_ms");
    // The latency noise floor: gate only when both readings are real.
    if (OldMs >= Opts.MinLatencyMs && NewMs >= Opts.MinLatencyMs)
      gateScalar(R, Opts, Where, "compile_time_ms", OldMs, NewMs,
                 /*Gating=*/true);
    gateScalar(R, Opts, Where, "dynamic_cycles",
               OldC->getNumber("dynamic_cycles"),
               NewC->getNumber("dynamic_cycles"), /*Gating=*/true);
    gateScalar(R, Opts, Where, "code_size", OldC->getNumber("code_size"),
               NewC->getNumber("code_size"), /*Gating=*/true);

    // Compile-cache effectiveness: gated only when both runs carried the
    // cache counters. Misses are lower-is-better and ride the standard
    // gate; hits are higher-is-better, so the ratio is fed inverted — a
    // hit count that *dropped* past the threshold is the regression.
    const JsonValue *OldCtr = OldC->get("counters");
    const JsonValue *NewCtr = NewC->get("counters");
    if (OldCtr && NewCtr && OldCtr->isObject() && NewCtr->isObject()) {
      if (OldCtr->get("cache.miss") && NewCtr->get("cache.miss"))
        gateScalar(R, Opts, Where, "counters/cache.miss",
                   OldCtr->getNumber("cache.miss"),
                   NewCtr->getNumber("cache.miss"), /*Gating=*/true);
      gateShrinkage(R, Opts, Where, "counters/cache.hit",
                    OldCtr->get("cache.hit"), NewCtr->get("cache.hit"));
      // Partial-escape effectiveness: every pea.* counter is optimizer
      // work done (loads forwarded, allocations virtualized or sunk), so
      // the whole family gates on shrinkage — a PR that silently stops
      // scalar-replacing shows up as a drop here before it shows up in
      // cycle counts.
      for (const auto &[Name, OldV] : OldCtr->members())
        if (Name.rfind("pea.", 0) == 0)
          gateShrinkage(R, Opts, Where, "counters/" + Name, &OldV,
                        NewCtr->get(Name));
    }
  }
}

void compareMetrics(BenchCompareResult &R, const BenchCompareOptions &Opts,
                    const JsonValue &OldDoc, const JsonValue &NewDoc) {
  const JsonValue *OldM = OldDoc.get("metrics");
  const JsonValue *NewM = NewDoc.get("metrics");
  if (!OldM || !NewM || !OldM->isObject() || !NewM->isObject())
    return;
  for (const auto &[Name, OldH] : OldM->members()) {
    const JsonValue *NewH = NewM->get(Name);
    if (!NewH)
      continue;
    const JsonValue *Class = OldH.get("class");
    bool Deterministic = Class && Class->isString() &&
                         Class->asString() == "deterministic";
    bool Gating = Deterministic || Opts.GateOnMetrics;
    for (const char *Pct : {"p50", "p99"}) {
      gateScalar(R, Opts, "metrics/" + Name, Pct, OldH.getNumber(Pct),
                 NewH->getNumber(Pct), Gating);
    }
  }
}

} // namespace

std::string BenchCompareResult::render() const {
  std::string Out;
  if (!Ok) {
    Out = "compare failed: " + Error + "\n";
    return Out;
  }
  char Line[256];
  for (const BenchDelta &D : Deltas) {
    snprintf(Line, sizeof(Line), "%s %s/%s: %.6g -> %.6g (%+.2f%%)\n",
             D.Gating ? "REGRESSION" : "note:", D.Where.c_str(),
             D.Field.c_str(), D.OldValue, D.NewValue, D.DeltaPct);
    Out += Line;
  }
  snprintf(Line, sizeof(Line),
           "%u comparison(s), %u regression(s) past threshold\n", Compared,
           Regressions);
  Out += Line;
  return Out;
}

BenchCompareResult dbds::compareBenchReports(const std::string &OldJson,
                                             const std::string &NewJson,
                                             const BenchCompareOptions &Opts) {
  BenchCompareResult R;
  JsonValue OldDoc, NewDoc;
  std::string Error;
  if (!JsonValue::parse(OldJson, OldDoc, &Error)) {
    R.Error = "old report: " + Error;
    return R;
  }
  if (!JsonValue::parse(NewJson, NewDoc, &Error)) {
    R.Error = "new report: " + Error;
    return R;
  }
  for (const JsonValue *Doc : {&OldDoc, &NewDoc}) {
    const JsonValue *Schema = Doc->get("schema");
    if (!Schema || !Schema->isString() ||
        Schema->asString() != "dbds-bench-report") {
      R.Error = "not a dbds-bench-report document";
      return R;
    }
  }
  R.Ok = true;

  const JsonValue *OldBenches = OldDoc.get("benchmarks");
  const JsonValue *NewBenches = NewDoc.get("benchmarks");
  if (OldBenches && NewBenches) {
    for (size_t I = 0; I != NewBenches->size(); ++I) {
      const JsonValue *NewBench = NewBenches->at(I);
      const JsonValue *Name = NewBench ? NewBench->get("name") : nullptr;
      if (!Name || !Name->isString())
        continue;
      // Match by name, not index: suites may gain or reorder benchmarks
      // between the two runs.
      const JsonValue *OldBench = nullptr;
      for (size_t J = 0; J != OldBenches->size(); ++J) {
        const JsonValue *Cand = OldBenches->at(J);
        const JsonValue *CandName = Cand ? Cand->get("name") : nullptr;
        if (CandName && CandName->isString() &&
            CandName->asString() == Name->asString()) {
          OldBench = Cand;
          break;
        }
      }
      if (OldBench)
        compareConfigs(R, Opts, Name->asString(), *OldBench, *NewBench);
    }
  }
  compareMetrics(R, Opts, OldDoc, NewDoc);
  return R;
}

bool dbds::readFileToString(const std::string &Path, std::string &Out,
                            std::string *Error) {
  FILE *File = fopen(Path.c_str(), "rb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for reading";
    return false;
  }
  Out.clear();
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), File)) != 0)
    Out.append(Buf, N);
  bool Bad = ferror(File) != 0;
  fclose(File);
  if (Bad) {
    if (Error)
      *Error = "read error on '" + Path + "'";
    return false;
  }
  return true;
}

BenchCompareResult
dbds::compareBenchReportFiles(const std::string &OldPath,
                              const std::string &NewPath,
                              const BenchCompareOptions &Opts) {
  BenchCompareResult R;
  std::string OldJson, NewJson, Error;
  if (!readFileToString(OldPath, OldJson, &Error)) {
    R.Error = Error;
    return R;
  }
  if (!readFileToString(NewPath, NewJson, &Error)) {
    R.Error = Error;
    return R;
  }
  return compareBenchReports(OldJson, NewJson, Opts);
}
