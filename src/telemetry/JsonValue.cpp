//===- telemetry/JsonValue.cpp - Minimal JSON DOM parser -------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/JsonValue.h"

#include <cstdlib>
#include <cstring>

using namespace dbds;

namespace dbds {

/// Recursive-descent parser over the whole input string. Depth is bounded
/// (our reports nest a handful of levels; 64 is generous) so malformed
/// deeply-nested input cannot blow the stack.
class JsonParser {
public:
  JsonParser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool run(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out, 0))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing garbage after document");
    return true;
  }

private:
  bool fail(const std::string &Why) {
    if (Error)
      *Error = "byte " + std::to_string(Pos) + ": " + Why;
    return false;
  }

  void skipSpace() {
    while (Pos != Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos == Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos != Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      if (++Pos == Text.size())
        return fail("unterminated escape");
      switch (Text[Pos]) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        // Our emitter only writes \u00XX for control bytes; decode the
        // low byte and ignore the (always-zero) high byte.
        if (Pos + 4 >= Text.size())
          return fail("truncated \\u escape");
        char Buf[5] = {Text[Pos + 1], Text[Pos + 2], Text[Pos + 3],
                       Text[Pos + 4], 0};
        char *End = nullptr;
        unsigned long Code = strtoul(Buf, &End, 16);
        if (End != Buf + 4)
          return fail("malformed \\u escape");
        Out += static_cast<char>(Code & 0xff);
        Pos += 4;
        break;
      }
      default:
        return fail("unknown escape");
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > 64)
      return fail("nesting too deep");
    skipSpace();
    if (Pos == Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Kind::Object;
      skipSpace();
      if (Pos != Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipSpace();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipSpace();
        if (Pos == Text.size() || Text[Pos] != ':')
          return fail("expected ':' in object");
        ++Pos;
        JsonValue Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.Members.emplace_back(std::move(Key), std::move(Member));
        skipSpace();
        if (Pos == Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Kind::Array;
      skipSpace();
      if (Pos != Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue Element;
        if (!parseValue(Element, Depth + 1))
          return false;
        Out.Arr.push_back(std::move(Element));
        skipSpace();
        if (Pos == Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      Out.K = JsonValue::Kind::Bool;
      Out.Num = 1.0;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = JsonValue::Kind::Bool;
      Out.Num = 0.0;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    }
    // Number: scan the strict JSON grammar (optional '-', integer part
    // without leading zeros, optional fraction, optional exponent) before
    // delegating value conversion to strtod — strtod alone also accepts
    // non-JSON spellings like 'inf', 'nan', hex floats (0x1p3), and a
    // leading '+', which must be parse errors here.
    const size_t TokenBegin = Pos;
    size_t Scan = Pos;
    auto isDigit = [this](size_t I) {
      return I != Text.size() && Text[I] >= '0' && Text[I] <= '9';
    };
    if (Scan != Text.size() && Text[Scan] == '-')
      ++Scan;
    const size_t IntBegin = Scan;
    while (isDigit(Scan))
      ++Scan;
    if (Scan == IntBegin)
      return fail("expected a JSON value");
    if (Text[IntBegin] == '0' && Scan - IntBegin > 1)
      return fail("leading zero in number");
    if (Scan != Text.size() && Text[Scan] == '.') {
      ++Scan;
      const size_t FracBegin = Scan;
      while (isDigit(Scan))
        ++Scan;
      if (Scan == FracBegin)
        return fail("expected digits after '.' in number");
    }
    if (Scan != Text.size() && (Text[Scan] == 'e' || Text[Scan] == 'E')) {
      ++Scan;
      if (Scan != Text.size() && (Text[Scan] == '+' || Text[Scan] == '-'))
        ++Scan;
      const size_t ExpBegin = Scan;
      while (isDigit(Scan))
        ++Scan;
      if (Scan == ExpBegin)
        return fail("expected digits in number exponent");
    }
    // Convert exactly the scanned token: strtod over the raw buffer could
    // consume a longer non-JSON prefix (e.g. "0x1p3" after scanning "0").
    std::string Token = Text.substr(TokenBegin, Scan - TokenBegin);
    Out.K = JsonValue::Kind::Number;
    Out.Num = strtod(Token.c_str(), nullptr);
    Pos = Scan;
    return true;
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace dbds

bool JsonValue::parse(const std::string &Text, JsonValue &Out,
                      std::string *Error) {
  Out = JsonValue();
  JsonParser P(Text, Error);
  return P.run(Out);
}
