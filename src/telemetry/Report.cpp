//===- telemetry/Report.cpp - Machine-readable bench reports ---------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Depends on workloads/Runner.h for the measurement types only — every
// member used here is defined inline in the header, so dbds_telemetry
// stays a leaf library (support only) and everything above it can link
// telemetry without a cycle.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Report.h"

#include "support/Statistics.h"
#include "telemetry/Counters.h"
#include "telemetry/Json.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace dbds;

namespace {

// SimAuditCounts is header-only (analysis/SimAudit.h via Runner.h), so
// rendering it here keeps dbds_telemetry leaf-linked like the rest of the
// measurement types.
std::string renderAudit(const SimAuditCounts &A) {
  std::string Out = "{";
  Out += "\"confirmed\":" + jsonNumber(A.Confirmed);
  Out += ",\"overclaimed\":" + jsonNumber(A.Overclaimed);
  Out += ",\"underclaimed\":" + jsonNumber(A.Underclaimed);
  Out += ",\"skipped\":" + jsonNumber(A.Skipped);
  Out += ",\"precision\":" + jsonNumber(A.precision());
  Out += ",\"recall\":" + jsonNumber(A.recall());
  Out += "}";
  return Out;
}

std::string renderConfig(const ConfigMeasurement &C) {
  std::string Out = "{";
  Out += "\"dynamic_cycles\":" + jsonNumber(C.DynamicCycles);
  Out += ",\"compile_time_ms\":" + jsonNumber(C.CompileTimeMs);
  Out += ",\"code_size\":" + jsonNumber(C.CodeSize);
  Out += ",\"duplications\":" + jsonNumber(C.Duplications);
  Out += ",\"rollbacks\":" + jsonNumber(C.Rollbacks);
  Out += ",\"run_failures\":" + jsonNumber(C.RunFailures);
  Out += ",\"functions_degraded\":" + jsonNumber(C.FunctionsDegraded);
  Out += ",\"max_degradation\":" +
         jsonString(degradationLevelName(C.MaxDegradation));
  Out += ",\"retries\":" + jsonNumber(C.Retries);
  Out += ",\"tasks_exhausted\":" + jsonNumber(C.TasksExhausted);
  if (!C.BreakerTrips.empty()) {
    Out += ",\"breaker_trips\":[";
    for (size_t I = 0; I != C.BreakerTrips.size(); ++I) {
      if (I)
        Out += ",";
      Out += jsonString(C.BreakerTrips[I]);
    }
    Out += "]";
  }
  if (!C.Counters.empty())
    Out += ",\"counters\":" + CounterRegistry::renderJson(C.Counters);
  if (C.Audit.Ran)
    Out += ",\"simulation_audit\":" + renderAudit(C.Audit);
  Out += "}";
  return Out;
}

std::string renderVsBaseline(const BenchmarkMeasurement &M,
                             const ConfigMeasurement &C) {
  std::string Out = "{";
  Out += "\"peak_pct\":" + jsonNumber(M.peakImprovementPercent(C));
  Out += ",\"compile_time_pct\":" +
         jsonNumber(M.compileTimeIncreasePercent(C));
  Out += ",\"code_size_pct\":" + jsonNumber(M.codeSizeIncreasePercent(C));
  Out += "}";
  return Out;
}

} // namespace

std::string
dbds::renderBenchJson(const std::string &SuiteName,
                      const std::vector<BenchmarkMeasurement> &Rows,
                      const std::vector<HistogramSample> *Metrics) {
  std::string Out = "{\"schema\":\"dbds-bench-report\",\"version\":2";
  Out += ",\"suite\":" + jsonString(SuiteName);
  Out += ",\"benchmarks\":[";

  std::vector<double> DPeak, DCt, DCs, APeak, ACt, ACs;
  SimAuditCounts DAudit, AAudit;
  for (size_t I = 0; I != Rows.size(); ++I) {
    const BenchmarkMeasurement &M = Rows[I];
    DAudit.accumulate(M.DBDS.Audit);
    AAudit.accumulate(M.DupALot.Audit);
    if (I != 0)
      Out += ",";
    Out += "\n{\"name\":" + jsonString(M.Name);
    Out += std::string(",\"results_agree\":") + jsonBool(M.ResultsAgree);
    Out += ",\"configs\":{";
    Out += "\"baseline\":" + renderConfig(M.Baseline);
    Out += ",\"dbds\":" + renderConfig(M.DBDS);
    Out += ",\"dupalot\":" + renderConfig(M.DupALot);
    Out += "},\"vs_baseline\":{";
    Out += "\"dbds\":" + renderVsBaseline(M, M.DBDS);
    Out += ",\"dupalot\":" + renderVsBaseline(M, M.DupALot);
    Out += "}}";

    DPeak.push_back(1.0 + M.peakImprovementPercent(M.DBDS) / 100.0);
    DCt.push_back(1.0 + M.compileTimeIncreasePercent(M.DBDS) / 100.0);
    DCs.push_back(1.0 + M.codeSizeIncreasePercent(M.DBDS) / 100.0);
    APeak.push_back(1.0 + M.peakImprovementPercent(M.DupALot) / 100.0);
    ACt.push_back(1.0 + M.compileTimeIncreasePercent(M.DupALot) / 100.0);
    ACs.push_back(1.0 + M.codeSizeIncreasePercent(M.DupALot) / 100.0);
  }

  auto Geo = [](std::vector<double> &V) {
    return (geometricMean(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  Out += "\n],\"geomean\":{";
  Out += "\"dbds\":{\"peak_pct\":" + jsonNumber(Geo(DPeak));
  Out += ",\"compile_time_pct\":" + jsonNumber(Geo(DCt));
  Out += ",\"code_size_pct\":" + jsonNumber(Geo(DCs));
  Out += "},\"dupalot\":{\"peak_pct\":" + jsonNumber(Geo(APeak));
  Out += ",\"compile_time_pct\":" + jsonNumber(Geo(ACt));
  Out += ",\"code_size_pct\":" + jsonNumber(Geo(ACs));
  Out += "}}";
  // Per-suite simulator precision/recall (§4's predictions vs dataflow-
  // proven facts); present only when the suite ran with --simaudit, so
  // legacy reports stay byte-identical.
  if (DAudit.Ran || AAudit.Ran) {
    Out += ",\"simulation_audit\":{";
    Out += "\"dbds\":" + renderAudit(DAudit);
    Out += ",\"dupalot\":" + renderAudit(AAudit);
    Out += "}";
  }
  // Suite-level histogram metrics (--metrics); optional so reports from
  // drivers that never enable the registry stay unchanged past the
  // version bump.
  if (Metrics && !Metrics->empty())
    Out += ",\"metrics\":" + MetricsRegistry::renderJson(*Metrics);
  Out += "}\n";
  return Out;
}

bool dbds::writeBenchJson(const std::string &Path,
                          const std::string &SuiteName,
                          const std::vector<BenchmarkMeasurement> &Rows,
                          std::string *Error,
                          const std::vector<HistogramSample> *Metrics) {
  FILE *File = fopen(Path.c_str(), "wb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  std::string Json = renderBenchJson(SuiteName, Rows, Metrics);
  size_t Written = fwrite(Json.data(), 1, Json.size(), File);
  fclose(File);
  if (Written != Json.size()) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}
