//===- telemetry/Trace.h - Chrome trace_event span recording ----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead trace spans for the compilation pipeline. A TraceSession
/// collects begin/end/instant events and serializes them in the Chrome
/// trace_event JSON format, loadable in chrome://tracing and Perfetto
/// (ui.perfetto.dev). RAII TraceSpan scopes instrument the phase driver,
/// the three DBDS tiers, the duplicator, and the interpreter's
/// training/evaluation runs.
///
/// Cost model: when no session is attached the entire machinery reduces to
/// one relaxed atomic load per span site — benchmarks run with telemetry
/// off pay effectively nothing (<2% compile time, DESIGN.md §8). With a
/// session attached, events append under a mutex; timestamps come from the
/// same steady clock support/Timer.h uses for compile-time measurement.
///
/// Before JSON emission the session runs the telemetry-span-balance check:
/// every thread's begin/end events must nest like parentheses, or
/// writeJson() refuses and reports the violations — a truncated or
/// crossing span stream would render misleading flame graphs silently.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_TRACE_H
#define DBDS_TELEMETRY_TRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dbds {

/// One recorded trace event. Name/Category must be string literals (or
/// otherwise outlive the session); Args is a preformatted JSON object body
/// ("" for none).
struct TraceEvent {
  char Phase = 'B';        ///< 'B' begin, 'E' end, 'i' instant.
  const char *Name = "";   ///< Event name (literal lifetime).
  const char *Category = ""; ///< trace_event "cat" (literal lifetime).
  uint64_t TimestampNs = 0;  ///< Relative to session start.
  uint32_t ThreadId = 0;     ///< Dense per-session thread index.
  std::string Args;          ///< Preformatted JSON object, may be empty.
};

/// Collects trace events for one telemetry-enabled run. Thread-safe;
/// sessions are typically process-wide (attach()) and written once at
/// driver exit.
class TraceSession {
public:
  TraceSession();
  ~TraceSession();

  TraceSession(const TraceSession &) = delete;
  TraceSession &operator=(const TraceSession &) = delete;

  /// Records a begin event (optionally with a preformatted JSON args
  /// object body, e.g. "\"function\":\"foo\"").
  void beginSpan(const char *Name, const char *Category,
                 std::string Args = std::string());

  /// Records the end event matching the innermost open span.
  void endSpan(const char *Name);

  /// Records an instant event (quarantine markers, findings).
  void instant(const char *Name, const char *Category,
               std::string Args = std::string());

  size_t eventCount() const;

  /// The telemetry-span-balance check: per thread, begin/end events must
  /// nest with matching names and no dangling opens. Returns true when
  /// balanced; appends one message per violation to \p Errors otherwise.
  bool checkBalance(std::vector<std::string> *Errors = nullptr) const;

  /// Renders the Chrome trace_event JSON document ("traceEvents" array of
  /// B/E/i events, microsecond timestamps).
  std::string renderJson() const;

  /// Balance-checks and writes the JSON document to \p Path. On failure
  /// (unbalanced stream or I/O error) returns false and fills \p Error.
  bool writeJson(const std::string &Path, std::string *Error = nullptr) const;

  /// Renders the session's spans as collapsed-stack ("folded") lines —
  /// `parent;child;leaf <self-microseconds>` — loadable by flamegraph.pl
  /// and speedscope. See renderFoldedStacks for the derivation.
  std::string renderFolded() const;

  /// Balance-checks and writes the folded document to \p Path.
  bool writeFolded(const std::string &Path, std::string *Error = nullptr) const;

  // ---- Process-wide attachment ----------------------------------------

  /// The currently attached session (null when telemetry is off). One
  /// relaxed atomic load; span sites call this before doing any work.
  static TraceSession *active() {
    return ActiveSession.load(std::memory_order_relaxed);
  }

  /// Installs this session as the process-wide active one. Returns the
  /// previously attached session so nested attachments can restore it.
  TraceSession *attach();

  /// Detaches this session if attached, restoring \p Previous.
  void detach(TraceSession *Previous = nullptr);

private:
  void record(char Phase, const char *Name, const char *Category,
              std::string Args);
  uint32_t threadIndex(); ///< Callers hold Mu.

  static std::atomic<TraceSession *> ActiveSession;

  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
  std::unordered_map<std::thread::id, uint32_t> ThreadIds;
  uint64_t StartNs = 0;
};

/// RAII span: begin on construction, end on destruction. Near-free when no
/// session is attached. For hot sites that want per-span args, use the
/// session-pointer constructor and build the args string only when the
/// session is live:
///
///   TraceSession *TS = TraceSession::active();
///   TraceSpan Span(TS, "dst", "simulator",
///                  TS ? makeArgs(...) : std::string());
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Category)
      : Session(TraceSession::active()), Name(Name) {
    if (Session)
      Session->beginSpan(Name, Category);
  }

  TraceSpan(TraceSession *Session, const char *Name, const char *Category,
            std::string Args = std::string())
      : Session(Session), Name(Name) {
    if (Session)
      Session->beginSpan(Name, Category, std::move(Args));
  }

  ~TraceSpan() { close(); }

  /// Ends the span early (spans that cover only a prefix of their scope,
  /// e.g. the trade-off sort ahead of the optimization loop).
  void close() {
    if (Session)
      Session->endSpan(Name);
    Session = nullptr;
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceSession *Session;
  const char *Name;
};

/// Derives collapsed-stack (folded) flamegraph lines from a balanced
/// begin/end event stream: per thread, a span stack is replayed in event
/// order and the time between consecutive events is attributed to the
/// innermost open span as *self* time. One line per distinct stack —
/// `a;b;c <self-microseconds>` — aggregated across threads and sorted by
/// stack string, so equal event streams render byte-identically. Instant
/// events and sub-microsecond stacks are dropped. Exposed as a free
/// function over the public TraceEvent type so tests can feed synthetic
/// streams with controlled timestamps.
std::string renderFoldedStacks(const std::vector<TraceEvent> &Events);

/// Scoped attach/detach of a session, restoring whatever was attached
/// before (drivers that trace a sub-step, e.g. fuzzdiff's per-reproducer
/// traces, nest inside an outer whole-run session).
class ScopedTraceAttach {
public:
  explicit ScopedTraceAttach(TraceSession &S)
      : Session(S), Previous(S.attach()) {}
  ~ScopedTraceAttach() { Session.detach(Previous); }

  ScopedTraceAttach(const ScopedTraceAttach &) = delete;
  ScopedTraceAttach &operator=(const ScopedTraceAttach &) = delete;

private:
  TraceSession &Session;
  TraceSession *Previous;
};

} // namespace dbds

#endif // DBDS_TELEMETRY_TRACE_H
