//===- telemetry/Report.h - Machine-readable bench reports ------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a measured benchmark suite (workloads/Runner.h) to the
/// stable BENCH_<suite>.json schema, so the perf trajectory can be tracked
/// across PRs by diffing files instead of scraping text tables — and, with
/// tools/dbds-stats, compared with regression thresholds. Schema
/// (dbds-bench-report v2, see DESIGN.md §8/§12; v2 adds the optional
/// suite-level "metrics" histogram section, emitted when the driver ran
/// with --metrics):
///
///   {
///     "schema": "dbds-bench-report", "version": 2, "suite": "...",
///     "benchmarks": [{
///       "name": "...", "results_agree": true,
///       "configs": {
///         "baseline" | "dbds" | "dupalot": {
///           "dynamic_cycles", "compile_time_ms", "code_size",
///           "duplications", "rollbacks", "run_failures",
///           "functions_degraded", "max_degradation",
///           "retries", "tasks_exhausted",
///           "breaker_trips": ["<phase> after K ..."],    // optional
///           "counters": {"component.name": delta, ...}   // optional
///         }},
///       "vs_baseline": {"dbds" | "dupalot":
///           {"peak_pct", "compile_time_pct", "code_size_pct"}}
///     }],
///     "geomean": {"dbds" | "dupalot": {same three percents}},
///     "metrics": {"component.name": {unit, class, count, sum, min, max,
///                 mean, p50, p90, p99, buckets}}          // v2, optional
///   }
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_REPORT_H
#define DBDS_TELEMETRY_REPORT_H

#include "telemetry/Metrics.h"

#include <string>
#include <vector>

namespace dbds {

struct BenchmarkMeasurement;

/// Renders the BENCH JSON document for \p Rows (one measured suite).
/// \p Metrics, when non-null, becomes the suite-level "metrics" section
/// (drivers pass a MetricsRegistry snapshot of the measured region).
std::string renderBenchJson(const std::string &SuiteName,
                            const std::vector<BenchmarkMeasurement> &Rows,
                            const std::vector<HistogramSample> *Metrics =
                                nullptr);

/// Renders and writes the document to \p Path; false + \p Error on I/O
/// failure.
bool writeBenchJson(const std::string &Path, const std::string &SuiteName,
                    const std::vector<BenchmarkMeasurement> &Rows,
                    std::string *Error = nullptr,
                    const std::vector<HistogramSample> *Metrics = nullptr);

} // namespace dbds

#endif // DBDS_TELEMETRY_REPORT_H
