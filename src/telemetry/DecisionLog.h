//===- telemetry/DecisionLog.h - DBDS duplication decision log --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An "optimization remarks" stream for DBDS: one structured record per
/// duplication candidate the trade-off tier ruled on (paper §5), carrying
/// the exact cost-model inputs (CyclesSaved, Probability, SizeCost,
/// current/initial unit size), the pass/fail result of each shouldDuplicate
/// clause (§5.4), the action-step opportunities the simulation tier saw
/// fire, and the final verdict. Code-growth-vs-speed trade-offs are only
/// debuggable when every accept/reject and its inputs are recorded
/// (cf. Breitner, Krause) — this log is that record, serialized as JSONL
/// so one grep answers "why was this merge (not) duplicated?".
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_DECISIONLOG_H
#define DBDS_TELEMETRY_DECISIONLOG_H

#include <cstdint>
#include <string>
#include <vector>

namespace dbds {

/// How often each action-step opportunity fired during one candidate's
/// duplication simulation traversal (paper §4.2's applicability checks).
struct OpportunityCounts {
  unsigned ConstantFolds = 0;
  unsigned StrengthReductions = 0;
  unsigned ConditionalEliminations = 0;
  unsigned ReadEliminations = 0;
  unsigned AllocationSinks = 0;
  unsigned PartialEscapes = 0;

  unsigned total() const {
    return ConstantFolds + StrengthReductions + ConditionalEliminations +
           ReadEliminations + AllocationSinks + PartialEscapes;
  }
};

/// Pass/fail of each clause of the §5.4 trade-off function
///   (b > 0) && (b * p * BS > c) && (cs < MS) && (cs + c < is * IB).
struct TradeoffClauses {
  bool PositiveCyclesSaved = false;  ///< b > 0
  bool BenefitOutweighsCost = false; ///< b * p * BS > c
  bool UnderMaxUnitSize = false;     ///< cs < MS
  bool WithinGrowthBudget = false;   ///< cs + c < is * IB

  bool pass() const {
    return PositiveCyclesSaved && BenefitOutweighsCost && UnderMaxUnitSize &&
           WithinGrowthBudget;
  }

  /// Name of the first failing clause ("" when all pass) — the one-word
  /// answer to "why was this candidate rejected?".
  const char *firstFailing() const {
    if (!PositiveCyclesSaved)
      return "positive-cycles-saved";
    if (!BenefitOutweighsCost)
      return "benefit-outweighs-cost";
    if (!UnderMaxUnitSize)
      return "under-max-unit-size";
    if (!WithinGrowthBudget)
      return "within-growth-budget";
    return "";
  }
};

/// Final ruling on one candidate.
enum class DecisionVerdict : uint8_t {
  Accepted,         ///< Duplicated by the optimization tier.
  RejectedTradeoff, ///< A shouldDuplicate clause failed (dbds config).
  RejectedNoBenefit,///< dupalot: no cycles saved.
  RejectedSizeLimit,///< dupalot: hard VM size limit reached.
  RejectedStale,    ///< Candidate no longer valid against the current CFG.
  RolledBack,       ///< Accepted, then the round failed verification.
};

const char *decisionVerdictName(DecisionVerdict V);

/// SimAudit's post-hoc classification of one decision (analysis/SimAudit.h):
/// how the simulation's prediction compares against dataflow-proven facts
/// on the IR that actually shipped.
enum class AuditVerdict : uint8_t {
  Unaudited,   ///< No audit ran (the default; keeps legacy streams stable).
  Confirmed,   ///< The prediction matches the post-duplication facts.
  Overclaimed, ///< Accepted, yet provably-foldable residue remains.
  Underclaimed,///< Rejected as useless, yet per-edge facts prove a fold.
  Skipped,     ///< Not classifiable (stale ids, rolled-back round).
};

const char *auditVerdictName(AuditVerdict V);

/// One per-candidate record.
struct DuplicationDecision {
  std::string FunctionName;
  unsigned Iteration = 0; ///< 0-based DBDS iteration (§5.2, up to 3).
  unsigned MergeId = 0;
  unsigned PredId = 0;
  static constexpr unsigned InvalidBlock = ~0u;
  unsigned SecondMergeId = InvalidBlock; ///< Path candidates (§8) only.

  // The exact shouldDuplicate inputs (§5.4).
  double CyclesSaved = 0.0;
  double Probability = 0.0;
  int64_t SizeCost = 0;
  uint64_t CurrentSize = 0;
  uint64_t InitialSize = 0;

  OpportunityCounts Opportunities;

  /// False under dupalot / stale rejection: the clause values were never
  /// evaluated.
  bool TradeoffEvaluated = false;
  TradeoffClauses Clauses;

  DecisionVerdict Verdict = DecisionVerdict::RejectedStale;
  /// Merge blocks actually copied for this candidate (1, or 2 for a path
  /// candidate whose continuation was applied).
  unsigned DuplicationsPerformed = 0;

  /// SimAudit classification; Unaudited (and unrendered) unless an audit
  /// pass ran over this record.
  AuditVerdict Audit = AuditVerdict::Unaudited;

  /// One-line JSON object (the JSONL remarks record).
  std::string renderJson() const;
};

/// Append-only log of decisions across a compilation session. Not
/// thread-safe; use one log per pipeline invocation (like
/// DiagnosticEngine).
class DecisionLog {
public:
  /// Appends \p D and returns its index (for later markRolledBackFrom).
  size_t append(DuplicationDecision D);

  /// Re-verdicts every Accepted decision for \p FunctionName at index >=
  /// \p FirstIndex as RolledBack: the transactional DBDS round they were
  /// part of was restored to its pre-round snapshot, so the duplications
  /// no longer exist in the IR.
  void markRolledBackFrom(size_t FirstIndex, const std::string &FunctionName);

  /// Splices every record of \p Other (in Other's order) onto the end of
  /// this log, leaving \p Other empty. The parallel compile service gives
  /// each function task its own log and merges them here in function index
  /// order at join time, so a --jobs=N remarks stream is byte-identical to
  /// the serial one.
  void merge(DecisionLog &&Other);

  const std::vector<DuplicationDecision> &decisions() const {
    return Decisions;
  }

  /// Mutable view for post-hoc annotation passes (SimAudit writes each
  /// record's AuditVerdict in place after classification).
  std::vector<DuplicationDecision> &mutableDecisions() { return Decisions; }
  bool empty() const { return Decisions.empty(); }
  void clear() { Decisions.clear(); }

  /// All records as JSONL (one JSON object per line).
  std::string renderJsonl() const;

  /// Human-oriented summary lines.
  std::string renderText() const;

  /// Writes the JSONL stream to \p Path; false + \p Error on I/O failure.
  bool writeJsonl(const std::string &Path,
                  std::string *Error = nullptr) const;

private:
  std::vector<DuplicationDecision> Decisions;
};

} // namespace dbds

#endif // DBDS_TELEMETRY_DECISIONLOG_H
