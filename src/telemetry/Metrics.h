//===- telemetry/Metrics.h - Deterministic histogram metrics ----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Distribution metrics for the compilation pipeline: a registry of named
/// fixed-log2-bucket histograms, recorded from the same sites the trace
/// spans and counters instrument but capturing *distributions* — tail
/// latencies, per-function IR growth, memory pressure — instead of flat
/// totals. The paper's evaluation is a distributional trade-off story
/// (compile time vs peak performance vs code size, Fig. 5-8); aggregates
/// hide exactly the tails it reports.
///
/// Cost model (same budget as tracing, DESIGN.md §8): when metrics are
/// detached every record site reduces to one relaxed atomic load. When
/// enabled, recording buffers into the calling thread's MetricsShard when
/// one is installed (the parallel compile service installs one per task)
/// and into the registry's per-histogram locked state otherwise.
///
/// Determinism contract (DESIGN.md §12, extending §9): histograms are
/// classified Deterministic or Timing. Deterministic histograms record
/// only schedule-independent values (instruction counts, IR bytes, growth
/// percentages); their merged state — and therefore their JSON rendering —
/// is byte-identical between --jobs=1 and --jobs=N because the service
/// merges task shards in function index order and histogram merge is a
/// per-bucket sum. Timing histograms (latency, RSS) record wall-clock
/// values and are excluded from determinism comparisons, the same carve-
/// out §9 makes for compile-time measurement.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_TELEMETRY_METRICS_H
#define DBDS_TELEMETRY_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dbds {

/// Display/semantics unit of a histogram's values.
enum class MetricUnit { Nanoseconds, Bytes, Count, Percent };

/// Determinism class: Deterministic histograms record only schedule-
/// independent values and must be byte-identical across --jobs settings;
/// Timing histograms record wall-clock or allocator-dependent values.
enum class MetricClass { Deterministic, Timing };

const char *metricUnitName(MetricUnit U);
const char *metricClassName(MetricClass C);

/// A fixed-bucket log2 histogram over uint64_t values. Bucket 0 holds the
/// value 0; bucket b (1..64) holds values in [2^(b-1), 2^b - 1]. Plain
/// value type: recording and merging are not synchronized here — the
/// registry and shards layer locking/buffering on top.
class Histogram {
public:
  /// 65 buckets: {0} plus one per bit width 1..64.
  static constexpr unsigned NumBuckets = 65;

  static unsigned bucketIndex(uint64_t V);
  /// Smallest / largest value bucket \p I holds.
  static uint64_t bucketLo(unsigned I);
  static uint64_t bucketHi(unsigned I);

  void record(uint64_t V) {
    ++Buckets[bucketIndex(V)];
    ++Count_;
    Sum_ += V;
    if (V < Min_)
      Min_ = V;
    if (V > Max_)
      Max_ = V;
  }

  /// Per-bucket sum; commutes, so merge order cannot change the result.
  void merge(const Histogram &O);

  /// Reconstructs a histogram from externally stored state (the compile
  /// cache's deserialization path). \p Min is ignored when \p Count is 0.
  static Histogram fromState(const std::array<uint64_t, NumBuckets> &Buckets,
                             uint64_t Count, uint64_t Sum, uint64_t Min,
                             uint64_t Max) {
    Histogram H;
    H.Buckets = Buckets;
    H.Count_ = Count;
    H.Sum_ = Sum;
    H.Min_ = Count ? Min : UINT64_MAX;
    H.Max_ = Max;
    return H;
  }

  uint64_t count() const { return Count_; }
  uint64_t sum() const { return Sum_; }
  /// Smallest/largest recorded value (0 when empty).
  uint64_t min() const { return Count_ ? Min_ : 0; }
  uint64_t max() const { return Max_; }
  double mean() const {
    return Count_ ? static_cast<double>(Sum_) / static_cast<double>(Count_)
                  : 0.0;
  }
  const std::array<uint64_t, NumBuckets> &buckets() const { return Buckets; }

  /// Estimated value at quantile \p Q in [0, 100]: finds the bucket the
  /// rank falls in and interpolates linearly inside its [lo, hi] range,
  /// clamped to the recorded min/max. Exact for single-valued histograms;
  /// within one bucket width otherwise. Deterministic: pure integer walk
  /// plus one double interpolation over integer inputs.
  double percentile(double Q) const;

private:
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Count_ = 0;
  uint64_t Sum_ = 0;
  uint64_t Min_ = UINT64_MAX;
  uint64_t Max_ = 0;
};

class MetricsShard;

/// One registered histogram. Static-storage instances come from
/// DBDS_HISTOGRAM; dynamically named ones (per-phase latency) from
/// MetricsRegistry::getOrCreate. Either way the object lives for the
/// process.
class TelemetryHistogram {
public:
  TelemetryHistogram(const char *Component, const char *Name, MetricUnit Unit,
                     MetricClass Class);

  TelemetryHistogram(const TelemetryHistogram &) = delete;
  TelemetryHistogram &operator=(const TelemetryHistogram &) = delete;

  /// Records \p V: no-op (one relaxed atomic load) when metrics are
  /// detached; otherwise buffers into the calling thread's MetricsShard
  /// when one is installed, or merges into the locked global state.
  void record(uint64_t V);

  /// The published global state (shard-buffered samples are invisible
  /// until their shard publishes).
  Histogram read() const;

  void reset();

  const std::string &component() const { return Component; }
  const std::string &name() const { return Name; }
  MetricUnit unit() const { return Unit; }
  MetricClass metricClass() const { return Class; }

  /// "component.name", the stable key used in dumps and reports.
  std::string qualifiedName() const { return Component + "." + Name; }

private:
  friend class MetricsShard;
  friend class MetricsRegistry;

  /// Non-self-registering constructor for MetricsRegistry::getOrCreate:
  /// the registry inserts the instance itself while holding its lock, so
  /// lookup, construction, and registration are one atomic step.
  struct UnregisteredTag {};
  TelemetryHistogram(UnregisteredTag, const char *Component, const char *Name,
                     MetricUnit Unit, MetricClass Class)
      : Component(Component), Name(Name), Unit(Unit), Class(Class) {}

  void mergeGlobal(const Histogram &H);

  std::string Component;
  std::string Name;
  MetricUnit Unit;
  MetricClass Class;
  mutable std::mutex Mu;
  Histogram Global;
};

/// A point-in-time reading of one histogram.
struct HistogramSample {
  std::string Name; ///< Qualified "component.name".
  MetricUnit Unit = MetricUnit::Count;
  MetricClass Class = MetricClass::Deterministic;
  Histogram H;
};

/// Process-wide registry of all histograms, plus the global metrics
/// enable flag every record site gates on.
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  /// The one relaxed atomic load every instrumented hot path pays when
  /// metrics are detached.
  static bool enabled() {
    return Enabled.load(std::memory_order_relaxed);
  }
  static void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// The histogram named "component.name", creating (and permanently
  /// registering) it on first use — the dynamic-name analogue of
  /// DBDS_HISTOGRAM for sites whose names are data (per-phase latency).
  /// Unit/class are fixed by the first creation.
  TelemetryHistogram &getOrCreate(const std::string &Component,
                                  const std::string &Name, MetricUnit Unit,
                                  MetricClass Class);

  /// All histograms' published state, sorted by qualified name.
  /// \p DeterministicOnly restricts to MetricClass::Deterministic (the
  /// determinism-contract comparison set); \p SkipEmpty drops histograms
  /// that never recorded.
  std::vector<HistogramSample> snapshot(bool DeterministicOnly = false,
                                        bool SkipEmpty = true) const;

  /// Zeroes every histogram (drivers reset before a measured run).
  void resetAll();

  /// JSON object {"component.name": {unit, class, count, sum, min, max,
  /// mean, p50, p90, p99, buckets:[[index,count],...]}, ...} — stable key
  /// order (samples are name-sorted), stable number formatting, so equal
  /// snapshots render byte-identically.
  static std::string renderJson(const std::vector<HistogramSample> &Samples);

  /// Human percentile table: one row per histogram with count, p50/p90/p99,
  /// max in the histogram's unit.
  static std::string renderTable(const std::vector<HistogramSample> &Samples);

private:
  friend class TelemetryHistogram;
  void add(TelemetryHistogram *H);

  static std::atomic<bool> Enabled;

  mutable std::mutex Mu;
  std::vector<TelemetryHistogram *> Histograms;
  /// Owners of getOrCreate histograms (registered pointers above).
  std::vector<std::unique_ptr<TelemetryHistogram>> Owned;
};

/// Per-task metrics shard, mirroring CounterShard: while installed (RAII,
/// per thread), this thread's histogram records buffer privately. The
/// parallel compile service installs one per task and publishes the taken
/// buffers at the serial join in function index order — merge commutes,
/// but index-ordered publication keeps the metrics pipeline under the
/// same contract as every other telemetry stream (DESIGN.md §9).
class MetricsShard {
public:
  using Buffer = std::vector<std::pair<TelemetryHistogram *, Histogram>>;

  MetricsShard();
  ~MetricsShard(); ///< Publishes any un-taken buffers, restores previous.

  MetricsShard(const MetricsShard &) = delete;
  MetricsShard &operator=(const MetricsShard &) = delete;

  /// The shard installed on the calling thread (null when records go
  /// straight to the registry).
  static MetricsShard *active();

  /// Buffers \p V for \p H (called by TelemetryHistogram::record).
  void record(TelemetryHistogram *H, uint64_t V);

  /// Moves the buffered state out (the compile service's join publishes
  /// it later, in task index order, via publish()).
  Buffer take();

  /// Merges \p B into the histograms' global state.
  static void publish(const Buffer &B);

private:
  MetricsShard *Previous;
  /// Linear map, like CounterShard: a task touches few histograms.
  Buffer Buffered;
};

/// Current peak resident set size of the process in bytes (getrusage
/// ru_maxrss), 0 where unsupported. Monotone over the process lifetime;
/// sampled at task boundaries for the memory-accounting histogram.
uint64_t currentPeakRssBytes();

/// Declares (and registers) a static histogram named \p NAME under
/// \p COMPONENT. Record with NAME.record(v).
#define DBDS_HISTOGRAM(COMPONENT, NAME, UNIT, CLASS)                           \
  static ::dbds::TelemetryHistogram NAME(#COMPONENT, #NAME,                    \
                                         ::dbds::MetricUnit::UNIT,             \
                                         ::dbds::MetricClass::CLASS)

} // namespace dbds

#endif // DBDS_TELEMETRY_METRICS_H
