//===- telemetry/Metrics.cpp - Deterministic histogram metrics -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

#include "telemetry/Json.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace dbds;

const char *dbds::metricUnitName(MetricUnit U) {
  switch (U) {
  case MetricUnit::Nanoseconds:
    return "ns";
  case MetricUnit::Bytes:
    return "bytes";
  case MetricUnit::Count:
    return "count";
  case MetricUnit::Percent:
    return "percent";
  }
  return "?";
}

const char *dbds::metricClassName(MetricClass C) {
  switch (C) {
  case MetricClass::Deterministic:
    return "deterministic";
  case MetricClass::Timing:
    return "timing";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketIndex(uint64_t V) {
  // Bucket 0 = {0}; bucket b = [2^(b-1), 2^b - 1] = values of bit width b.
  return static_cast<unsigned>(std::bit_width(V));
}

uint64_t Histogram::bucketLo(unsigned I) {
  if (I == 0)
    return 0;
  return uint64_t(1) << (I - 1);
}

uint64_t Histogram::bucketHi(unsigned I) {
  if (I == 0)
    return 0;
  if (I >= 64)
    return UINT64_MAX;
  return (uint64_t(1) << I) - 1;
}

void Histogram::merge(const Histogram &O) {
  for (unsigned I = 0; I != NumBuckets; ++I)
    Buckets[I] += O.Buckets[I];
  Count_ += O.Count_;
  Sum_ += O.Sum_;
  if (O.Count_ != 0) {
    if (O.Min_ < Min_)
      Min_ = O.Min_;
    if (O.Max_ > Max_)
      Max_ = O.Max_;
  }
}

double Histogram::percentile(double Q) const {
  if (Count_ == 0)
    return 0.0;
  if (Q <= 0.0)
    return static_cast<double>(min());
  if (Q >= 100.0)
    return static_cast<double>(Max_);
  // Rank of the requested quantile, 1-based over the recorded samples.
  double Rank = Q / 100.0 * static_cast<double>(Count_);
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    if (Buckets[I] == 0)
      continue;
    uint64_t Before = Cum;
    Cum += Buckets[I];
    if (static_cast<double>(Cum) < Rank)
      continue;
    // Interpolate linearly inside the bucket's [lo, hi] value range by the
    // rank's position among the bucket's samples, clamping the extreme
    // buckets to the recorded min/max so single-valued histograms are
    // exact.
    double Lo = static_cast<double>(std::max(bucketLo(I), min()));
    double Hi = static_cast<double>(std::min(bucketHi(I), Max_));
    double Into =
        (Rank - static_cast<double>(Before)) / static_cast<double>(Buckets[I]);
    return Lo + (Hi - Lo) * Into;
  }
  return static_cast<double>(Max_);
}

//===----------------------------------------------------------------------===//
// TelemetryHistogram / MetricsShard
//===----------------------------------------------------------------------===//

TelemetryHistogram::TelemetryHistogram(const char *Component, const char *Name,
                                       MetricUnit Unit, MetricClass Class)
    : Component(Component), Name(Name), Unit(Unit), Class(Class) {
  MetricsRegistry::instance().add(this);
}

namespace {
/// The calling thread's innermost shard (null = records merge into the
/// registry's locked global state directly).
thread_local MetricsShard *ActiveMetricsShard = nullptr;
} // namespace

void TelemetryHistogram::record(uint64_t V) {
  if (!MetricsRegistry::enabled())
    return;
  if (MetricsShard *Shard = ActiveMetricsShard) {
    Shard->record(this, V);
    return;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  Global.record(V);
}

Histogram TelemetryHistogram::read() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Global;
}

void TelemetryHistogram::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Global = Histogram();
}

void TelemetryHistogram::mergeGlobal(const Histogram &H) {
  std::lock_guard<std::mutex> Lock(Mu);
  Global.merge(H);
}

MetricsShard::MetricsShard() : Previous(ActiveMetricsShard) {
  ActiveMetricsShard = this;
}

MetricsShard::~MetricsShard() {
  publish(Buffered);
  ActiveMetricsShard = Previous;
}

MetricsShard *MetricsShard::active() { return ActiveMetricsShard; }

void MetricsShard::record(TelemetryHistogram *H, uint64_t V) {
  for (auto &[Hist, Local] : Buffered) {
    if (Hist == H) {
      Local.record(V);
      return;
    }
  }
  Buffered.emplace_back(H, Histogram());
  Buffered.back().second.record(V);
}

MetricsShard::Buffer MetricsShard::take() {
  Buffer Out = std::move(Buffered);
  Buffered.clear();
  return Out;
}

void MetricsShard::publish(const Buffer &B) {
  for (const auto &[Hist, Local] : B)
    Hist->mergeGlobal(Local);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

std::atomic<bool> MetricsRegistry::Enabled{false};

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry Registry;
  return Registry;
}

void MetricsRegistry::add(TelemetryHistogram *H) {
  std::lock_guard<std::mutex> Lock(Mu);
  Histograms.push_back(H);
}

TelemetryHistogram &MetricsRegistry::getOrCreate(const std::string &Component,
                                                 const std::string &Name,
                                                 MetricUnit Unit,
                                                 MetricClass Class) {
  // Lookup, construction, and registration form one critical section. The
  // public constructor self-registers via add() (which takes Mu), so use
  // the non-registering tag constructor and insert here: releasing Mu
  // between the miss and the insert would let a racing getOrCreate or
  // snapshot() observe — and retain past destruction — a duplicate that
  // loses the race. Construction is cheap (two string copies), so holding
  // the lock across it is fine.
  std::lock_guard<std::mutex> Lock(Mu);
  for (TelemetryHistogram *H : Histograms)
    if (H->component() == Component && H->name() == Name)
      return *H;
  Owned.emplace_back(new TelemetryHistogram(TelemetryHistogram::UnregisteredTag{},
                                            Component.c_str(), Name.c_str(),
                                            Unit, Class));
  Histograms.push_back(Owned.back().get());
  return *Owned.back();
}

std::vector<HistogramSample>
MetricsRegistry::snapshot(bool DeterministicOnly, bool SkipEmpty) const {
  std::vector<TelemetryHistogram *> Regs;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Regs = Histograms;
  }
  std::vector<HistogramSample> Out;
  Out.reserve(Regs.size());
  for (TelemetryHistogram *H : Regs) {
    if (DeterministicOnly && H->metricClass() != MetricClass::Deterministic)
      continue;
    HistogramSample S;
    S.Name = H->qualifiedName();
    S.Unit = H->unit();
    S.Class = H->metricClass();
    S.H = H->read();
    if (SkipEmpty && S.H.count() == 0)
      continue;
    Out.push_back(std::move(S));
  }
  std::sort(Out.begin(), Out.end(),
            [](const HistogramSample &A, const HistogramSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

void MetricsRegistry::resetAll() {
  std::vector<TelemetryHistogram *> Regs;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Regs = Histograms;
  }
  for (TelemetryHistogram *H : Regs)
    H->reset();
}

std::string
MetricsRegistry::renderJson(const std::vector<HistogramSample> &Samples) {
  std::string Out = "{";
  for (size_t I = 0; I != Samples.size(); ++I) {
    const HistogramSample &S = Samples[I];
    if (I != 0)
      Out += ",";
    Out += jsonString(S.Name) + ":{";
    Out += "\"unit\":" + jsonString(metricUnitName(S.Unit));
    Out += ",\"class\":" + jsonString(metricClassName(S.Class));
    Out += ",\"count\":" + jsonNumber(S.H.count());
    Out += ",\"sum\":" + jsonNumber(S.H.sum());
    Out += ",\"min\":" + jsonNumber(S.H.min());
    Out += ",\"max\":" + jsonNumber(S.H.max());
    Out += ",\"mean\":" + jsonNumber(S.H.mean());
    Out += ",\"p50\":" + jsonNumber(S.H.percentile(50));
    Out += ",\"p90\":" + jsonNumber(S.H.percentile(90));
    Out += ",\"p99\":" + jsonNumber(S.H.percentile(99));
    Out += ",\"buckets\":[";
    bool First = true;
    for (unsigned B = 0; B != Histogram::NumBuckets; ++B) {
      uint64_t N = S.H.buckets()[B];
      if (N == 0)
        continue;
      if (!First)
        Out += ",";
      First = false;
      Out += "[";
      Out += jsonNumber(B);
      Out += ",";
      Out += jsonNumber(N);
      Out += "]";
    }
    Out += "]}";
  }
  Out += "}";
  return Out;
}

std::string
MetricsRegistry::renderTable(const std::vector<HistogramSample> &Samples) {
  std::string Out;
  char Line[256];
  snprintf(Line, sizeof(Line), "%-40s %-8s %8s %12s %12s %12s %12s\n",
           "histogram", "unit", "count", "p50", "p90", "p99", "max");
  Out += Line;
  for (const HistogramSample &S : Samples) {
    snprintf(Line, sizeof(Line),
             "%-40s %-8s %8llu %12.1f %12.1f %12.1f %12llu\n", S.Name.c_str(),
             metricUnitName(S.Unit),
             static_cast<unsigned long long>(S.H.count()), S.H.percentile(50),
             S.H.percentile(90), S.H.percentile(99),
             static_cast<unsigned long long>(S.H.max()));
    Out += Line;
  }
  return Out;
}

uint64_t dbds::currentPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(Usage.ru_maxrss); // bytes on Darwin
#else
  return static_cast<uint64_t>(Usage.ru_maxrss) * 1024; // kilobytes on Linux
#endif
#else
  return 0;
#endif
}
