//===- workloads/ProgramGenerator.h - Synthetic IR programs -----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded generator of SSA programs whose merge blocks
/// carry configurable mixes of the five duplication-enabled optimization
/// opportunities from paper §2 (constant folding, conditional elimination,
/// partial escape, read elimination, strength reduction) plus plain noise.
/// These programs stand in for the paper's benchmark suites (DESIGN.md
/// §2): the suites differ precisely in how often their hot merges carry
/// foldable phi-dependent work, which is what the mix knobs control.
///
/// The generator is also the engine of the property-based test suite: any
/// generated program must produce identical results and strictly
/// non-increasing dynamic cycles under every optimization configuration.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_WORKLOADS_PROGRAMGENERATOR_H
#define DBDS_WORKLOADS_PROGRAMGENERATOR_H

#include "ir/Function.h"

#include <memory>

namespace dbds {

/// Relative weights of the opportunity patterns a generated function's
/// merges carry. Weights need not sum to 1; they are normalized.
struct OpportunityMix {
  double ConstantFold = 1.0;
  double ConditionalElim = 1.0;
  double PartialEscape = 1.0;
  double ReadElim = 1.0;
  double StrengthReduction = 1.0;
  double Noise = 1.0; ///< Merges with no optimization opportunity at all.
};

/// Shape knobs of one generated compilation unit.
struct GeneratorConfig {
  uint64_t Seed = 1;
  unsigned NumFunctions = 8;
  unsigned NumParams = 4;           ///< Integer parameters per function.
  unsigned SegmentsPerFunction = 6; ///< Merge (diamond) patterns chained.
  /// Merge patterns emitted after the loop, executed once per call. Cold
  /// code is where the paper's trade-off tier earns its keep: duplicating
  /// it costs code size for almost no cycles, so DBDS declines what
  /// dupalot takes.
  unsigned ColdSegments = 10;
  unsigned NoiseOpsPerBlock = 2;    ///< Plain arithmetic per branch block.
  /// Non-foldable arithmetic in every merge block. This is what makes
  /// duplication cost code size: the foldable pattern is only part of the
  /// copied code, as in real programs.
  unsigned MergeNoiseOps = 10;
  unsigned LoopIterationBase = 24;  ///< Loop trip count scale.
  bool WrapInLoop = true;           ///< Put the diamond chain in a loop.
  double BranchSkew = 0.75;         ///< How lopsided generated branches are.
  double CallRate = 0.1;            ///< Chance of an opaque call per segment.
  /// Chance a segment is a two-merge chain (an inner diamond's merge that
  /// jumps straight into an outer merge). These are the §8 path-duplication
  /// opportunities: the fold is only visible across both merges.
  double ChainedMergeRate = 0.1;
  OpportunityMix Mix;
};

/// A generated workload: a module plus deterministic training and
/// evaluation inputs for each function.
struct GeneratedWorkload {
  std::unique_ptr<Module> Mod;
  /// Argument tuples per function (indexed like Mod->functions()).
  std::vector<std::vector<std::vector<int64_t>>> TrainInputs;
  std::vector<std::vector<std::vector<int64_t>>> EvalInputs;
};

/// Generates a workload from \p Config. Deterministic in Config.Seed.
GeneratedWorkload generateWorkload(const GeneratorConfig &Config);

} // namespace dbds

#endif // DBDS_WORKLOADS_PROGRAMGENERATOR_H
