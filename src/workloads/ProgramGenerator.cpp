//===- workloads/ProgramGenerator.cpp - Synthetic IR programs -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Each generated function is a (optionally looped) chain of "segments".
// A segment is a diamond — condition, two branch blocks, merge — whose
// merge block carries one opportunity pattern:
//
//   ConstantFold      phi(x, const); merge computes phi OP const
//   ConditionalElim   phi(x&7, 13); merge re-tests phi > 12 (Listing 1)
//   PartialEscape     phi(new C with stored field, shared object); merge
//                     loads the field (Listing 3)
//   ReadElim          one branch already loads o.f; merge re-loads o.f
//                     (Listing 5)
//   StrengthReduction phi(2, masked value); merge divides by phi
//                     (Figure 3: 32-cycle div -> 1-cycle shift)
//   Noise             phi of two computed values; nothing foldable
//
// All integer values flow into a wrapping accumulator that the function
// returns, so every optimization error changes the observable result.
//
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGenerator.h"

#include "analysis/Verifier.h"
#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <cstdio>
#include <cstdlib>

using namespace dbds;

namespace {

enum class PatternKind {
  ConstantFold,
  ConditionalElim,
  PartialEscape,
  ReadElim,
  StrengthReduction,
  Noise,
};

class FunctionGenerator {
public:
  FunctionGenerator(Module &M, const GeneratorConfig &Config, RNG &Rand,
                    unsigned SharedClass, unsigned BoxClass)
      : M(M), Config(Config), Rand(Rand), SharedClass(SharedClass),
        BoxClass(BoxClass) {}

  std::unique_ptr<Function> generate(const std::string &Name) {
    auto F = std::make_unique<Function>(Name, Config.NumParams);
    IRBuilder B(*F);
    Block *Entry = B.createBlock();
    B.setBlock(Entry);

    // Parameters and a handful of derived entry values.
    for (unsigned I = 0; I != Config.NumParams; ++I)
      Scope.push_back(B.param(I));
    // Non-negative value for division patterns (stamp [0, 1023]).
    MaskedValue = B.binary(Opcode::And, pick(B), B.constInt(1023));
    Scope.push_back(MaskedValue);

    // A shared heap object for read-elimination patterns.
    SharedObject = B.newObject(SharedClass);
    B.store(SharedObject, 0, pick(B));
    B.store(SharedObject, 1, B.constInt(0));

    Instruction *InitialAcc = pick(B);

    if (Config.WrapInLoop)
      return generateLoop(std::move(F), B, InitialAcc);
    Instruction *Acc = InitialAcc;
    for (unsigned Seg = 0; Seg != Config.SegmentsPerFunction; ++Seg)
      Acc = emitSegment(B, Acc, /*Counter=*/nullptr);
    B.ret(Acc);
    return F;
  }

private:
  std::unique_ptr<Function> generateLoop(std::unique_ptr<Function> F,
                                         IRBuilder &B,
                                         Instruction *InitialAcc) {
    Instruction *Limit = B.add(
        B.binary(Opcode::And, Scope[0], B.constInt(31)),
        B.constInt(Config.LoopIterationBase));
    Instruction *Zero = B.constInt(0);

    Block *Header = B.createBlock();
    Block *Body = B.createBlock();
    Block *Exit = B.createBlock();
    B.jump(Header);

    B.setBlock(Header);
    PhiInst *IPhi = B.phi(Type::Int);
    PhiInst *AccPhi = B.phi(Type::Int);
    IPhi->appendInput(Zero);
    AccPhi->appendInput(InitialAcc);
    Instruction *Cond = B.cmp(Predicate::LT, IPhi, Limit);
    B.branch(Cond, Body, Exit, 0.9);

    // Loop-carried values join the scope for the body.
    unsigned ScopeMark = Scope.size();
    Scope.push_back(IPhi);
    B.setBlock(Body);
    Instruction *Acc = AccPhi;
    for (unsigned Seg = 0; Seg != Config.SegmentsPerFunction; ++Seg)
      Acc = emitSegment(B, Acc, IPhi);
    Instruction *INext = B.add(IPhi, B.constInt(1));
    B.jump(Header);
    IPhi->appendInput(INext);
    AccPhi->appendInput(Acc);
    Scope.resize(ScopeMark);

    B.setBlock(Exit);
    Instruction *Cold = AccPhi;
    for (unsigned Seg = 0; Seg != Config.ColdSegments; ++Seg)
      Cold = emitSegment(B, Cold, /*Counter=*/nullptr);
    B.ret(Cold);
    return F;
  }

  /// A value from the dominating scope.
  Instruction *pick(IRBuilder &B) {
    if (Scope.empty())
      return B.constInt(static_cast<int64_t>(Rand.nextRange(1, 64)));
    return Scope[Rand.nextBelow(Scope.size())];
  }

  /// A short chain of plain arithmetic over the scope.
  Instruction *noiseValue(IRBuilder &B, Instruction *Seed) {
    static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                 Opcode::Xor, Opcode::And, Opcode::Or};
    Instruction *V = Seed ? Seed : pick(B);
    for (unsigned I = 0; I != Config.NoiseOpsPerBlock; ++I) {
      Opcode Op = Ops[Rand.nextBelow(6)];
      Instruction *Other =
          Rand.nextBool(0.5)
              ? pick(B)
              : static_cast<Instruction *>(
                    B.getFunction().constant(Rand.nextRange(1, 255)));
      V = B.binary(Op, V, Other);
    }
    return V;
  }

  PatternKind choosePattern() {
    const OpportunityMix &Mix = Config.Mix;
    double Weights[6] = {Mix.ConstantFold,      Mix.ConditionalElim,
                         Mix.PartialEscape,     Mix.ReadElim,
                         Mix.StrengthReduction, Mix.Noise};
    double Total = 0.0;
    for (double W : Weights)
      Total += W;
    if (Total <= 0.0)
      return PatternKind::Noise;
    double Roll = Rand.nextDouble() * Total;
    for (unsigned I = 0; I != 6; ++I) {
      if (Roll < Weights[I])
        return static_cast<PatternKind>(I);
      Roll -= Weights[I];
    }
    return PatternKind::Noise;
  }

  /// A data-dependent branch condition with the configured skew.
  Instruction *branchCondition(IRBuilder &B, Instruction *Counter) {
    Instruction *Base = Counter ? Counter : pick(B);
    Instruction *Mixed = B.add(
        B.mul(Base, B.constInt(Rand.nextRange(3, 17) | 1)), pick(B));
    Instruction *Masked = B.binary(Opcode::And, Mixed, B.constInt(15));
    int64_t Threshold =
        static_cast<int64_t>(Config.BranchSkew * 16.0 + 0.5);
    if (Threshold < 1)
      Threshold = 1;
    if (Threshold > 15)
      Threshold = 15;
    return B.cmp(Predicate::LT, Masked, B.constInt(Threshold));
  }

  /// A two-merge chain (paper §8's path shape): an outer split where one
  /// arm runs an inner diamond whose merge m1 jumps straight into the
  /// outer merge m2. The constant folding of `use` is only reachable by
  /// duplicating over BOTH merges.
  Instruction *emitChainedSegment(IRBuilder &B, Instruction *Acc,
                                  Instruction *Counter) {
    Block *ArmA = B.createBlock();
    Block *ArmB = B.createBlock();
    Block *InnerThen = B.createBlock();
    Block *InnerElse = B.createBlock();
    Block *M1 = B.createBlock();
    Block *M2 = B.createBlock();

    Instruction *OuterCond = branchCondition(B, Counter);
    B.branch(OuterCond, ArmA, ArmB, Config.BranchSkew);

    B.setBlock(ArmA);
    Instruction *VA = noiseValue(B, Counter);
    B.jump(M2);

    B.setBlock(ArmB);
    Instruction *InnerCond = branchCondition(B, Counter);
    B.branch(InnerCond, InnerThen, InnerElse, 0.5);
    B.setBlock(InnerThen);
    Instruction *V1 = noiseValue(B, Counter);
    B.jump(M1);
    B.setBlock(InnerElse);
    Instruction *V2 = B.constInt(Rand.nextRange(0, 9));
    B.jump(M1);

    B.setBlock(M1);
    PhiInst *P1 = B.phi(Type::Int);
    P1->appendInput(V1);
    P1->appendInput(V2);
    B.jump(M2);

    B.setBlock(M2);
    PhiInst *P2 = B.phi(Type::Int);
    P2->appendInput(VA); // from ArmA
    P2->appendInput(P1); // from M1
    Instruction *Use = B.add(P2, B.constInt(Rand.nextRange(1, 99)));
    Instruction *Payload = Use;
    for (unsigned I = 0; I != Config.MergeNoiseOps; ++I)
      Payload = B.binary(I % 2 ? Opcode::Xor : Opcode::Add, Payload,
                         pick(B));
    return B.add(Acc, Payload);
  }

  /// Emits one diamond segment and returns the new accumulator value.
  Instruction *emitSegment(IRBuilder &B, Instruction *Acc,
                           Instruction *Counter) {
    if (Rand.nextBool(Config.ChainedMergeRate))
      return emitChainedSegment(B, Acc, Counter);
    PatternKind Kind = choosePattern();
    Block *Then = B.createBlock();
    Block *Else = B.createBlock();
    Block *Merge = B.createBlock();
    Instruction *Cond = branchCondition(B, Counter);
    B.branch(Cond, Then, Else, Config.BranchSkew);

    Instruction *ThenVal = nullptr, *ElseVal = nullptr;
    Type PhiTy = Type::Int;

    // Then branch.
    B.setBlock(Then);
    switch (Kind) {
    case PatternKind::ConstantFold:
    case PatternKind::Noise:
      ThenVal = noiseValue(B, Counter);
      break;
    case PatternKind::ConditionalElim:
      // Range [0, 7]: provably <= 12 in the re-test.
      ThenVal = B.binary(Opcode::And, noiseValue(B, Counter),
                         B.constInt(7));
      break;
    case PatternKind::PartialEscape: {
      PhiTy = Type::Obj;
      auto *Boxed = B.newObject(BoxClass);
      B.store(Boxed, 0, noiseValue(B, Counter));
      ThenVal = Boxed;
      break;
    }
    case PatternKind::ReadElim: {
      // Listing 5's Read1: the true branch already reads o.f0.
      Instruction *Loaded = B.load(SharedObject, 0);
      B.store(SharedObject, 1, Loaded);
      ThenVal = Loaded;
      break;
    }
    case PatternKind::StrengthReduction:
      ThenVal = B.constInt(1ll << Rand.nextRange(1, 4));
      break;
    }
    if (Kind != PatternKind::PartialEscape && Rand.nextBool(Config.CallRate))
      B.store(SharedObject, 1, B.call(static_cast<unsigned>(
                                          Rand.nextBelow(8)),
                                      {ThenVal}));
    B.jump(Merge);

    // Else branch.
    B.setBlock(Else);
    switch (Kind) {
    case PatternKind::ConstantFold:
      ElseVal = B.constInt(Rand.nextRange(0, 9));
      break;
    case PatternKind::Noise:
      ElseVal = noiseValue(B, nullptr);
      break;
    case PatternKind::ConditionalElim:
      ElseVal = B.constInt(13); // Listing 1's p = 13
      break;
    case PatternKind::PartialEscape:
      ElseVal = SharedObject;
      break;
    case PatternKind::ReadElim:
      B.store(SharedObject, 1, B.constInt(0));
      ElseVal = B.constInt(0);
      break;
    case PatternKind::StrengthReduction:
      ElseVal = B.add(MaskedValue, B.constInt(1)); // in [1, 1024]
      break;
    }
    B.jump(Merge);

    // Merge block: the phi plus the pattern's optimizable use.
    B.setBlock(Merge);
    PhiInst *Phi = B.phi(PhiTy);
    Phi->appendInput(ThenVal);
    Phi->appendInput(ElseVal);

    Instruction *Use = nullptr;
    switch (Kind) {
    case PatternKind::ConstantFold:
      Use = B.add(Phi, B.constInt(Rand.nextRange(1, 99)));
      break;
    case PatternKind::Noise:
      Use = Phi;
      break;
    case PatternKind::ConditionalElim: {
      // Listing 1: if (p > 12) after the merge.
      Block *InnerThen = B.createBlock();
      Block *InnerElse = B.createBlock();
      Block *InnerMerge = B.createBlock();
      Instruction *ReTest = B.cmp(Predicate::GT, Phi, B.constInt(12));
      B.branch(ReTest, InnerThen, InnerElse, 0.5);
      B.setBlock(InnerThen);
      Instruction *A = B.constInt(12);
      B.jump(InnerMerge);
      B.setBlock(InnerElse);
      Instruction *Bv = B.add(Phi, B.constInt(1));
      B.jump(InnerMerge);
      B.setBlock(InnerMerge);
      PhiInst *Inner = B.phi(Type::Int);
      Inner->appendInput(A);
      Inner->appendInput(Bv);
      Use = Inner;
      break;
    }
    case PatternKind::PartialEscape:
      Use = B.load(Phi, 0); // Listing 3's return p.x
      break;
    case PatternKind::ReadElim:
      Use = B.load(SharedObject, 0); // Listing 5's Read2
      break;
    case PatternKind::StrengthReduction:
      Use = B.div(MaskedValue, Phi); // Figure 3's x / phi
      break;
    }
    // Non-foldable payload: the copied merge code that does NOT optimize
    // away, so duplication has a real code-size cost to trade off.
    Instruction *Payload = Use->getType() == Type::Int ? Use : pick(B);
    for (unsigned I = 0; I != Config.MergeNoiseOps; ++I) {
      static const Opcode Ops[] = {Opcode::Add, Opcode::Xor, Opcode::Sub,
                                   Opcode::Or};
      Payload = B.binary(Ops[Rand.nextBelow(4)], Payload, pick(B));
    }
    return B.add(Acc, Payload);
  }

  Module &M;
  const GeneratorConfig &Config;
  RNG &Rand;
  unsigned SharedClass, BoxClass;
  std::vector<Instruction *> Scope;
  Instruction *MaskedValue = nullptr;
  Instruction *SharedObject = nullptr;
};

} // namespace

GeneratedWorkload dbds::generateWorkload(const GeneratorConfig &Config) {
  GeneratedWorkload W;
  W.Mod = std::make_unique<Module>();
  unsigned SharedClass = W.Mod->addClass("Shared", 2);
  unsigned BoxClass = W.Mod->addClass("Box", 1);

  RNG Rand(Config.Seed);
  for (unsigned FIdx = 0; FIdx != Config.NumFunctions; ++FIdx) {
    FunctionGenerator Gen(*W.Mod, Config, Rand, SharedClass, BoxClass);
    auto F = Gen.generate("f" + std::to_string(FIdx));
    std::string Error = verifyFunction(*F);
    if (!Error.empty()) {
      fprintf(stderr, "generated function is invalid: %s\n", Error.c_str());
      abort();
    }
    W.Mod->addFunction(std::move(F));

    auto makeInputs = [&](unsigned Count) {
      std::vector<std::vector<int64_t>> Tuples;
      for (unsigned T = 0; T != Count; ++T) {
        std::vector<int64_t> Args;
        for (unsigned P = 0; P != Config.NumParams; ++P)
          Args.push_back(Rand.nextRange(0, 1 << 20));
        Tuples.push_back(std::move(Args));
      }
      return Tuples;
    };
    W.TrainInputs.push_back(makeInputs(3));
    W.EvalInputs.push_back(makeInputs(5));
  }
  return W;
}
