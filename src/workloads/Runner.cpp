//===- workloads/Runner.cpp - Benchmark measurement harness ----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "vm/Interpreter.h"

#include <cstdio>
#include <cstdlib>

using namespace dbds;

const char *dbds::runConfigName(RunConfig Config) {
  switch (Config) {
  case RunConfig::Baseline:
    return "baseline";
  case RunConfig::DBDS:
    return "dbds";
  case RunConfig::DupALot:
    return "dupalot";
  }
  return "?";
}

namespace {

uint64_t hashCombine(uint64_t Hash, uint64_t Value) {
  Hash ^= Value + 0x9e3779b97f4a7c15ULL + (Hash << 6) + (Hash >> 2);
  return Hash * 0xbf58476d1ce4e5b9ULL;
}

ConfigMeasurement measureConfig(const BenchmarkSpec &Spec, RunConfig Config) {
  // Regenerate from the seed: each configuration optimizes an identical
  // program (block/instruction pointers differ; semantics do not).
  GeneratedWorkload W = generateWorkload(Spec.Config);
  ConfigMeasurement Out;
  Interpreter Interp(*W.Mod);
  // Peak performance is measured with instruction-cache pressure: code
  // growth beyond ~192 size units per unit costs extra cycles per block
  // transition (DESIGN.md §2; this is what lets unbounded duplication
  // regress, as the paper observes for octane raytrace).
  Interp.enableCodeSizePenalty(/*Threshold=*/192, /*Step=*/160, /*Cap=*/1u << 20);

  auto Functions = W.Mod->functions();
  for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
    Function &F = *Functions[FIdx];

    // Profile on training inputs (the JIT's interpreter tier).
    ProfileSummary Profile;
    for (const auto &Args : W.TrainInputs[FIdx]) {
      Interp.reset();
      ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24,
                                     &Profile);
      if (!R.Ok) {
        fprintf(stderr, "training run did not terminate on %s/%s\n",
                Spec.Name.c_str(), F.getName().c_str());
        abort();
      }
    }
    applyProfile(F, Profile);

    // Compile (timed).
    Timer CompileTimer;
    {
      TimerScope Scope(CompileTimer);
      PhaseManager Pipeline =
          PhaseManager::standardPipeline(/*Verify=*/false, W.Mod.get());
      Pipeline.run(F);
      if (Config != RunConfig::Baseline) {
        DBDSConfig DC;
        DC.UseTradeoff = Config == RunConfig::DBDS;
        DC.ClassTable = W.Mod.get();
        DC.Verify = false;
        DBDSResult R = runDBDS(F, DC);
        Out.Duplications += R.DuplicationsPerformed;
      }
    }
    Out.CompileTimeMs += CompileTimer.totalMs();
    Out.CodeSize += F.estimatedCodeSize();

    // Peak performance: dynamic cost-model cycles on evaluation inputs.
    for (const auto &Args : W.EvalInputs[FIdx]) {
      Interp.reset();
      ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24);
      if (!R.Ok) {
        fprintf(stderr, "evaluation run did not terminate on %s/%s\n",
                Spec.Name.c_str(), F.getName().c_str());
        abort();
      }
      Out.DynamicCycles += R.DynamicCycles;
      Out.ResultHash = hashCombine(
          Out.ResultHash,
          R.HasResult && !R.Result.IsObject
              ? static_cast<uint64_t>(R.Result.Scalar)
              : 0);
    }
  }
  return Out;
}

} // namespace

BenchmarkMeasurement dbds::measureBenchmark(const BenchmarkSpec &Spec) {
  BenchmarkMeasurement M;
  M.Name = Spec.Name;
  M.Baseline = measureConfig(Spec, RunConfig::Baseline);
  M.DBDS = measureConfig(Spec, RunConfig::DBDS);
  M.DupALot = measureConfig(Spec, RunConfig::DupALot);

  // Correctness gate: optimization must not change program results.
  if (M.Baseline.ResultHash != M.DBDS.ResultHash ||
      M.Baseline.ResultHash != M.DupALot.ResultHash) {
    fprintf(stderr, "MISCOMPILE on benchmark %s: result hashes differ\n",
            Spec.Name.c_str());
    abort();
  }
  return M;
}

std::vector<BenchmarkMeasurement> dbds::measureSuite(const SuiteSpec &Suite) {
  std::vector<BenchmarkMeasurement> Rows;
  Rows.reserve(Suite.Benchmarks.size());
  for (const BenchmarkSpec &Spec : Suite.Benchmarks)
    Rows.push_back(measureBenchmark(Spec));
  return Rows;
}

std::string
dbds::formatSuiteReport(const std::string &SuiteName,
                        const std::vector<BenchmarkMeasurement> &Rows) {
  std::string Out;
  char Line[256];
  snprintf(Line, sizeof(Line),
           "=== %s: peak performance / compile time / code size "
           "(vs. baseline, %%) ===\n",
           SuiteName.c_str());
  Out += Line;
  snprintf(Line, sizeof(Line), "%-14s | %21s | %21s\n", "benchmark",
           "DBDS  peak    ct    cs", "dupalot peak   ct    cs");
  Out += Line;

  std::vector<double> DPeak, DCt, DCs, APeak, ACt, ACs;
  for (const BenchmarkMeasurement &M : Rows) {
    double Dp = M.peakImprovementPercent(M.DBDS);
    double Dt = M.compileTimeIncreasePercent(M.DBDS);
    double Ds = M.codeSizeIncreasePercent(M.DBDS);
    double Ap = M.peakImprovementPercent(M.DupALot);
    double At = M.compileTimeIncreasePercent(M.DupALot);
    double As = M.codeSizeIncreasePercent(M.DupALot);
    snprintf(Line, sizeof(Line),
             "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
             M.Name.c_str(), Dp, Dt, Ds, Ap, At, As);
    Out += Line;
    DPeak.push_back(1.0 + Dp / 100.0);
    DCt.push_back(1.0 + Dt / 100.0);
    DCs.push_back(1.0 + Ds / 100.0);
    APeak.push_back(1.0 + Ap / 100.0);
    ACt.push_back(1.0 + At / 100.0);
    ACs.push_back(1.0 + As / 100.0);
  }
  auto Geo = [](std::vector<double> &V) {
    return (geometricMean(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  snprintf(Line, sizeof(Line),
           "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
           "geomean", Geo(DPeak), Geo(DCt), Geo(DCs), Geo(APeak), Geo(ACt),
           Geo(ACs));
  Out += Line;
  return Out;
}
