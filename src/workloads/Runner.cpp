//===- workloads/Runner.cpp - Benchmark measurement harness ----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "support/Diagnostics.h"
#include "support/Statistics.h"
#include "telemetry/Json.h"
#include "telemetry/Trace.h"
#include "workloads/CompileService.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

using namespace dbds;

const char *dbds::runConfigName(RunConfig Config) {
  switch (Config) {
  case RunConfig::Baseline:
    return "baseline";
  case RunConfig::DBDS:
    return "dbds";
  case RunConfig::DupALot:
    return "dupalot";
  }
  return "?";
}

std::vector<RunnerOptionDiagnostic> RunnerOptions::validate() const {
  std::vector<RunnerOptionDiagnostic> Out;
  if (PollInterval == 0 || (PollInterval & (PollInterval - 1)) != 0)
    Out.push_back({"--poll-mask",
                   std::to_string(PollInterval) + " is not a power of two"});
  if (MaxAttempts == 0)
    Out.push_back({"--max-attempts", "must be at least 1"});
  if (TaskDeadlineMs < 0.0)
    Out.push_back({"--task-deadline-ms", "deadline cannot be negative"});
  if (BreakerHalfOpenAfter != 0 && BreakerThreshold == 0)
    Out.push_back({"--breaker-half-open",
                   "half-open recovery needs --breaker-threshold to arm "
                   "the breaker"});
  if (Injector != nullptr && Cache != nullptr)
    Out.push_back({"--compile-cache",
                   "incompatible with fault injection: a replayed compile "
                   "would desync the sequential fault stream"});
  return Out;
}

namespace {

void diagnose(const RunnerOptions &Opts, DiagKind Kind,
              const std::string &Component, const std::string &Fn,
              const std::string &Msg) {
  if (Opts.Diags)
    Opts.Diags->report(Kind, Component, Fn, Msg);
}

ConfigMeasurement measureConfig(CompileService &Service,
                                const BenchmarkSpec &Spec, RunConfig Config,
                                const RunnerOptions &Opts) {
  TraceSession *TS = TraceSession::active();
  TraceSpan ConfigSpan(TS, runConfigName(Config), "runner",
                       TS ? "\"benchmark\":" + jsonString(Spec.Name)
                          : std::string());
  std::vector<CounterSample> PreCounters;
  if (Opts.CollectCounters)
    PreCounters = CounterRegistry::instance().snapshot();

  // Regenerate from the seed: each configuration optimizes an identical
  // program (block/instruction pointers differ; semantics do not).
  GeneratedWorkload W = generateWorkload(Spec.Config);

  // The per-function pipeline runs on the compile service — sharded across
  // workers at --jobs=N, inline at --jobs=1 — and hands back per-function
  // outcomes in function index order either way.
  CompileBatch Batch =
      compileFunctionsParallel(Service, W, Config, Opts, Spec.Name);

  ConfigMeasurement Out;
  for (const FunctionCompileOutcome &O : Batch.Outcomes) {
    Out.DynamicCycles += O.DynamicCycles;
    Out.CompileTimeMs += O.CompileTimeMs;
    Out.CodeSize += O.CodeSize;
    Out.Duplications += O.Duplications;
    // Rollbacks and run failures sum across the whole retry ladder — every
    // attempt's faults are part of the measurement record, not just the
    // attempt whose result stood. Identical to the final attempt's counts
    // when supervision is off (single attempt).
    for (const CompileAttempt &A : O.Attempts) {
      Out.Rollbacks += A.Rollbacks;
      Out.RunFailures += A.RunFailures;
    }
    Out.Retries += static_cast<unsigned>(O.Attempts.size()) - 1;
    if (O.Exhausted)
      ++Out.TasksExhausted;
    if (O.Degradation != DegradationLevel::None) {
      ++Out.FunctionsDegraded;
      Out.MaxDegradation = std::max(Out.MaxDegradation, O.Degradation);
    }
    // Module hash = index-ordered fold of per-function hashes, so it is
    // independent of completion order.
    Out.ResultHash = resultHashCombine(Out.ResultHash, O.ResultHash);
    Out.Audit.accumulate(O.Audit);
  }
  Out.BreakerTrips = std::move(Batch.BreakerTrips);
  if (Opts.CollectCounters)
    Out.Counters = CounterRegistry::delta(
        PreCounters, CounterRegistry::instance().snapshot());
  return Out;
}

BenchmarkMeasurement measureBenchmarkOn(CompileService &Service,
                                        const BenchmarkSpec &Spec,
                                        const RunnerOptions &Opts) {
  BenchmarkMeasurement M;
  M.Name = Spec.Name;
  M.Baseline = measureConfig(Service, Spec, RunConfig::Baseline, Opts);
  M.DBDS = measureConfig(Service, Spec, RunConfig::DBDS, Opts);
  M.DupALot = measureConfig(Service, Spec, RunConfig::DupALot, Opts);

  // Correctness gate: optimization must not change program results. A
  // divergence is a finding, not a process death — one bad candidate must
  // not kill the whole suite (FailFast restores the legacy abort).
  if (M.Baseline.ResultHash != M.DBDS.ResultHash ||
      M.Baseline.ResultHash != M.DupALot.ResultHash) {
    fprintf(stderr, "MISCOMPILE on benchmark %s: result hashes differ\n",
            Spec.Name.c_str());
    if (Opts.FailFast)
      abort();
    M.ResultsAgree = false;
    diagnose(Opts, DiagKind::Error, "runner", "",
             "MISCOMPILE on benchmark " + Spec.Name +
                 ": result hashes differ across configurations");
  }
  return M;
}

} // namespace

BenchmarkMeasurement dbds::measureBenchmark(const BenchmarkSpec &Spec,
                                            const RunnerOptions &Opts) {
  CompileService Service(Opts.Jobs);
  return measureBenchmarkOn(Service, Spec, Opts);
}

BenchmarkMeasurement dbds::measureBenchmark(const BenchmarkSpec &Spec) {
  return measureBenchmark(Spec, RunnerOptions());
}

std::vector<BenchmarkMeasurement> dbds::measureSuite(const SuiteSpec &Suite,
                                                     const RunnerOptions &Opts) {
  // One service for the whole suite: workers park between benchmarks
  // instead of being respawned per measurement.
  CompileService Service(Opts.Jobs);
  std::vector<BenchmarkMeasurement> Rows;
  Rows.reserve(Suite.Benchmarks.size());
  for (const BenchmarkSpec &Spec : Suite.Benchmarks)
    Rows.push_back(measureBenchmarkOn(Service, Spec, Opts));
  return Rows;
}

std::vector<BenchmarkMeasurement> dbds::measureSuite(const SuiteSpec &Suite) {
  return measureSuite(Suite, RunnerOptions());
}

std::string
dbds::formatSuiteReport(const std::string &SuiteName,
                        const std::vector<BenchmarkMeasurement> &Rows) {
  std::string Out;
  char Line[256];
  snprintf(Line, sizeof(Line),
           "=== %s: peak performance / compile time / code size "
           "(vs. baseline, %%) ===\n",
           SuiteName.c_str());
  Out += Line;
  snprintf(Line, sizeof(Line), "%-14s | %21s | %21s\n", "benchmark",
           "DBDS  peak    ct    cs", "dupalot peak   ct    cs");
  Out += Line;

  std::vector<double> DPeak, DCt, DCs, APeak, ACt, ACs;
  std::string Notes;
  for (const BenchmarkMeasurement &M : Rows) {
    double Dp = M.peakImprovementPercent(M.DBDS);
    double Dt = M.compileTimeIncreasePercent(M.DBDS);
    double Ds = M.codeSizeIncreasePercent(M.DBDS);
    double Ap = M.peakImprovementPercent(M.DupALot);
    double At = M.compileTimeIncreasePercent(M.DupALot);
    double As = M.codeSizeIncreasePercent(M.DupALot);
    snprintf(Line, sizeof(Line),
             "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
             M.Name.c_str(), Dp, Dt, Ds, Ap, At, As);
    Out += Line;
    DPeak.push_back(1.0 + Dp / 100.0);
    DCt.push_back(1.0 + Dt / 100.0);
    DCs.push_back(1.0 + Ds / 100.0);
    APeak.push_back(1.0 + Ap / 100.0);
    ACt.push_back(1.0 + At / 100.0);
    ACs.push_back(1.0 + As / 100.0);

    // Degradation / correctness footnotes: a degraded or diverging row is
    // reported, never silently folded into the geomean.
    if (!M.ResultsAgree)
      Notes += "note: " + M.Name +
               ": MISCOMPILE — results differ across configurations\n";
    const std::pair<const char *, const ConfigMeasurement *> Configs[] = {
        {"dbds", &M.DBDS}, {"dupalot", &M.DupALot}};
    for (const auto &[Cfg, CM] : Configs) {
      if (CM->FunctionsDegraded != 0) {
        snprintf(Line, sizeof(Line),
                 "note: %s/%s: %u function(s) hit the compile budget "
                 "(degraded to %s)\n",
                 M.Name.c_str(), Cfg, CM->FunctionsDegraded,
                 degradationLevelName(CM->MaxDegradation));
        Notes += Line;
      }
      if (CM->Rollbacks != 0) {
        snprintf(Line, sizeof(Line), "note: %s/%s: %u phase rollback(s)\n",
                 M.Name.c_str(), Cfg, CM->Rollbacks);
        Notes += Line;
      }
      if (CM->Retries != 0) {
        snprintf(Line, sizeof(Line),
                 "note: %s/%s: %u retried attempt(s) on the degradation "
                 "ladder\n",
                 M.Name.c_str(), Cfg, CM->Retries);
        Notes += Line;
      }
      if (CM->TasksExhausted != 0) {
        snprintf(Line, sizeof(Line),
                 "note: %s/%s: %u task(s) exhausted every attempt\n",
                 M.Name.c_str(), Cfg, CM->TasksExhausted);
        Notes += Line;
      }
      for (const std::string &Trip : CM->BreakerTrips)
        Notes += "note: " + M.Name + "/" + Cfg +
                 ": circuit breaker disabled " + Trip + "\n";
      if (CM->Audit.Ran) {
        snprintf(Line, sizeof(Line),
                 "note: %s/%s: simulation audit: %llu confirmed, "
                 "%llu overclaimed, %llu underclaimed, %llu skipped "
                 "(precision %.3f, recall %.3f)\n",
                 M.Name.c_str(), Cfg,
                 static_cast<unsigned long long>(CM->Audit.Confirmed),
                 static_cast<unsigned long long>(CM->Audit.Overclaimed),
                 static_cast<unsigned long long>(CM->Audit.Underclaimed),
                 static_cast<unsigned long long>(CM->Audit.Skipped),
                 CM->Audit.precision(), CM->Audit.recall());
        Notes += Line;
      }
    }
  }
  auto Geo = [](std::vector<double> &V) {
    return (geometricMean(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  snprintf(Line, sizeof(Line),
           "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
           "geomean", Geo(DPeak), Geo(DCt), Geo(DCs), Geo(APeak), Geo(ACt),
           Geo(ACs));
  Out += Line;
  // Spread summary: the geomean hides skew (one octane-raytrace-style
  // regression vanishes into it, §6.2), so report median and sample
  // stddev of the same per-benchmark percentages.
  auto Med = [](std::vector<double> &V) {
    return (median(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  auto Sd = [](std::vector<double> &V) {
    return stddev(ArrayRef<double>(V)) * 100.0;
  };
  snprintf(Line, sizeof(Line),
           "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
           "median", Med(DPeak), Med(DCt), Med(DCs), Med(APeak), Med(ACt),
           Med(ACs));
  Out += Line;
  snprintf(Line, sizeof(Line),
           "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
           "stddev", Sd(DPeak), Sd(DCt), Sd(DCs), Sd(APeak), Sd(ACt),
           Sd(ACs));
  Out += Line;
  Out += Notes;
  return Out;
}
