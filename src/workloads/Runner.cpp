//===- workloads/Runner.cpp - Benchmark measurement harness ----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "support/Diagnostics.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Json.h"
#include "telemetry/Trace.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

using namespace dbds;

const char *dbds::runConfigName(RunConfig Config) {
  switch (Config) {
  case RunConfig::Baseline:
    return "baseline";
  case RunConfig::DBDS:
    return "dbds";
  case RunConfig::DupALot:
    return "dupalot";
  }
  return "?";
}

namespace {

uint64_t hashCombine(uint64_t Hash, uint64_t Value) {
  Hash ^= Value + 0x9e3779b97f4a7c15ULL + (Hash << 6) + (Hash >> 2);
  return Hash * 0xbf58476d1ce4e5b9ULL;
}

/// Sentinel hashed in place of a result when a run does not terminate, so
/// configurations that fail identically still agree and a configuration
/// that *newly* fails shows up as a hash divergence.
constexpr uint64_t NonTerminationSentinel = 0x6e6f2d7465726d21ULL;

void diagnose(const RunnerOptions &Opts, DiagKind Kind,
              const std::string &Component, const std::string &Fn,
              const std::string &Msg) {
  if (Opts.Diags)
    Opts.Diags->report(Kind, Component, Fn, Msg);
}

ConfigMeasurement measureConfig(const BenchmarkSpec &Spec, RunConfig Config,
                                const RunnerOptions &Opts) {
  TraceSession *TS = TraceSession::active();
  TraceSpan ConfigSpan(TS, runConfigName(Config), "runner",
                       TS ? "\"benchmark\":" + jsonString(Spec.Name)
                          : std::string());
  std::vector<CounterSample> PreCounters;
  if (Opts.CollectCounters)
    PreCounters = CounterRegistry::instance().snapshot();

  // Regenerate from the seed: each configuration optimizes an identical
  // program (block/instruction pointers differ; semantics do not).
  GeneratedWorkload W = generateWorkload(Spec.Config);
  ConfigMeasurement Out;
  Interpreter Interp(*W.Mod);
  // Peak performance is measured with instruction-cache pressure: code
  // growth beyond ~192 size units per unit costs extra cycles per block
  // transition (DESIGN.md §2; this is what lets unbounded duplication
  // regress, as the paper observes for octane raytrace).
  Interp.enableCodeSizePenalty(/*Threshold=*/192, /*Step=*/160, /*Cap=*/1u << 20);

  auto Functions = W.Mod->functions();
  for (unsigned FIdx = 0; FIdx != Functions.size(); ++FIdx) {
    Function &F = *Functions[FIdx];

    // Profile on training inputs (the JIT's interpreter tier).
    ProfileSummary Profile;
    TraceSpan TrainSpan(TS, "train", "runner",
                        TS ? "\"function\":" + jsonString(F.getName())
                           : std::string());
    for (const auto &Args : W.TrainInputs[FIdx]) {
      Interp.reset();
      ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24,
                                     &Profile);
      if (!R.Ok) {
        fprintf(stderr, "training run did not terminate on %s/%s\n",
                Spec.Name.c_str(), F.getName().c_str());
        if (Opts.FailFast)
          abort();
        ++Out.RunFailures;
        diagnose(Opts, DiagKind::Warning, "runner", F.getName(),
                 "training run did not terminate on " + Spec.Name);
        break; // Profile what we have; the compile still proceeds.
      }
    }
    TrainSpan.close();
    applyProfile(F, Profile);

    // Compile (timed) under a per-function budget. The budget degrades the
    // pipeline stepwise instead of letting one function hang the harness.
    CompileBudget Budget(Opts.CompileBudgetMs);
    Budget.arm();
    Timer CompileTimer;
    unsigned Rollbacks = 0;
    {
      TraceSpan CompileSpan(TS, "compile", "runner",
                            TS ? "\"function\":" + jsonString(F.getName())
                               : std::string());
      TimerScope Scope(CompileTimer);
      PhaseManager Pipeline =
          PhaseManager::standardPipeline(Opts.Verify, W.Mod.get());
      Pipeline.setFailFast(Opts.FailFast);
      Pipeline.setDiagnostics(Opts.Diags);
      Pipeline.setFaultInjector(Opts.Injector);
      Pipeline.setBudget(&Budget);
      Pipeline.run(F);
      Rollbacks += Pipeline.rollbackCount();
      if (Config != RunConfig::Baseline) {
        DBDSConfig DC;
        DC.UseTradeoff = Config == RunConfig::DBDS;
        DC.ClassTable = W.Mod.get();
        DC.Verify = Opts.Verify;
        DC.FailFast = Opts.FailFast;
        DC.Diags = Opts.Diags;
        DC.Injector = Opts.Injector;
        DC.Budget = &Budget;
        DC.Decisions = Opts.Decisions;
        DBDSResult R = runDBDS(F, DC);
        Out.Duplications += R.DuplicationsPerformed;
        Rollbacks += R.RollbacksPerformed;
      }
    }
    Out.CompileTimeMs += CompileTimer.totalMs();
    Out.CodeSize += F.estimatedCodeSize();
    Out.Rollbacks += Rollbacks;
    if (Budget.level() != DegradationLevel::None) {
      ++Out.FunctionsDegraded;
      Out.MaxDegradation = std::max(Out.MaxDegradation, Budget.level());
    }

    // Peak performance: dynamic cost-model cycles on evaluation inputs.
    TraceSpan EvalSpan(TS, "eval", "runner",
                       TS ? "\"function\":" + jsonString(F.getName())
                          : std::string());
    for (const auto &Args : W.EvalInputs[FIdx]) {
      Interp.reset();
      ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24);
      if (!R.Ok) {
        fprintf(stderr, "evaluation run did not terminate on %s/%s\n",
                Spec.Name.c_str(), F.getName().c_str());
        if (Opts.FailFast)
          abort();
        ++Out.RunFailures;
        diagnose(Opts, DiagKind::Error, "runner", F.getName(),
                 "evaluation run did not terminate on " + Spec.Name);
        Out.ResultHash = hashCombine(Out.ResultHash, NonTerminationSentinel);
        continue;
      }
      Out.DynamicCycles += R.DynamicCycles;
      Out.ResultHash = hashCombine(
          Out.ResultHash,
          R.HasResult && !R.Result.IsObject
              ? static_cast<uint64_t>(R.Result.Scalar)
              : 0);
    }
    EvalSpan.close();
  }
  if (Opts.CollectCounters)
    Out.Counters = CounterRegistry::delta(
        PreCounters, CounterRegistry::instance().snapshot());
  return Out;
}

} // namespace

BenchmarkMeasurement dbds::measureBenchmark(const BenchmarkSpec &Spec,
                                            const RunnerOptions &Opts) {
  BenchmarkMeasurement M;
  M.Name = Spec.Name;
  M.Baseline = measureConfig(Spec, RunConfig::Baseline, Opts);
  M.DBDS = measureConfig(Spec, RunConfig::DBDS, Opts);
  M.DupALot = measureConfig(Spec, RunConfig::DupALot, Opts);

  // Correctness gate: optimization must not change program results. A
  // divergence is a finding, not a process death — one bad candidate must
  // not kill the whole suite (FailFast restores the legacy abort).
  if (M.Baseline.ResultHash != M.DBDS.ResultHash ||
      M.Baseline.ResultHash != M.DupALot.ResultHash) {
    fprintf(stderr, "MISCOMPILE on benchmark %s: result hashes differ\n",
            Spec.Name.c_str());
    if (Opts.FailFast)
      abort();
    M.ResultsAgree = false;
    diagnose(Opts, DiagKind::Error, "runner", "",
             "MISCOMPILE on benchmark " + Spec.Name +
                 ": result hashes differ across configurations");
  }
  return M;
}

BenchmarkMeasurement dbds::measureBenchmark(const BenchmarkSpec &Spec) {
  return measureBenchmark(Spec, RunnerOptions());
}

std::vector<BenchmarkMeasurement> dbds::measureSuite(const SuiteSpec &Suite,
                                                     const RunnerOptions &Opts) {
  std::vector<BenchmarkMeasurement> Rows;
  Rows.reserve(Suite.Benchmarks.size());
  for (const BenchmarkSpec &Spec : Suite.Benchmarks)
    Rows.push_back(measureBenchmark(Spec, Opts));
  return Rows;
}

std::vector<BenchmarkMeasurement> dbds::measureSuite(const SuiteSpec &Suite) {
  return measureSuite(Suite, RunnerOptions());
}

std::string
dbds::formatSuiteReport(const std::string &SuiteName,
                        const std::vector<BenchmarkMeasurement> &Rows) {
  std::string Out;
  char Line[256];
  snprintf(Line, sizeof(Line),
           "=== %s: peak performance / compile time / code size "
           "(vs. baseline, %%) ===\n",
           SuiteName.c_str());
  Out += Line;
  snprintf(Line, sizeof(Line), "%-14s | %21s | %21s\n", "benchmark",
           "DBDS  peak    ct    cs", "dupalot peak   ct    cs");
  Out += Line;

  std::vector<double> DPeak, DCt, DCs, APeak, ACt, ACs;
  std::string Notes;
  for (const BenchmarkMeasurement &M : Rows) {
    double Dp = M.peakImprovementPercent(M.DBDS);
    double Dt = M.compileTimeIncreasePercent(M.DBDS);
    double Ds = M.codeSizeIncreasePercent(M.DBDS);
    double Ap = M.peakImprovementPercent(M.DupALot);
    double At = M.compileTimeIncreasePercent(M.DupALot);
    double As = M.codeSizeIncreasePercent(M.DupALot);
    snprintf(Line, sizeof(Line),
             "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
             M.Name.c_str(), Dp, Dt, Ds, Ap, At, As);
    Out += Line;
    DPeak.push_back(1.0 + Dp / 100.0);
    DCt.push_back(1.0 + Dt / 100.0);
    DCs.push_back(1.0 + Ds / 100.0);
    APeak.push_back(1.0 + Ap / 100.0);
    ACt.push_back(1.0 + At / 100.0);
    ACs.push_back(1.0 + As / 100.0);

    // Degradation / correctness footnotes: a degraded or diverging row is
    // reported, never silently folded into the geomean.
    if (!M.ResultsAgree)
      Notes += "note: " + M.Name +
               ": MISCOMPILE — results differ across configurations\n";
    const std::pair<const char *, const ConfigMeasurement *> Configs[] = {
        {"dbds", &M.DBDS}, {"dupalot", &M.DupALot}};
    for (const auto &[Cfg, CM] : Configs) {
      if (CM->FunctionsDegraded != 0) {
        snprintf(Line, sizeof(Line),
                 "note: %s/%s: %u function(s) hit the compile budget "
                 "(degraded to %s)\n",
                 M.Name.c_str(), Cfg, CM->FunctionsDegraded,
                 degradationLevelName(CM->MaxDegradation));
        Notes += Line;
      }
      if (CM->Rollbacks != 0) {
        snprintf(Line, sizeof(Line), "note: %s/%s: %u phase rollback(s)\n",
                 M.Name.c_str(), Cfg, CM->Rollbacks);
        Notes += Line;
      }
    }
  }
  auto Geo = [](std::vector<double> &V) {
    return (geometricMean(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  snprintf(Line, sizeof(Line),
           "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
           "geomean", Geo(DPeak), Geo(DCt), Geo(DCs), Geo(APeak), Geo(ACt),
           Geo(ACs));
  Out += Line;
  // Spread summary: the geomean hides skew (one octane-raytrace-style
  // regression vanishes into it, §6.2), so report median and sample
  // stddev of the same per-benchmark percentages.
  auto Med = [](std::vector<double> &V) {
    return (median(ArrayRef<double>(V)) - 1.0) * 100.0;
  };
  auto Sd = [](std::vector<double> &V) {
    return stddev(ArrayRef<double>(V)) * 100.0;
  };
  snprintf(Line, sizeof(Line),
           "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
           "median", Med(DPeak), Med(DCt), Med(DCs), Med(APeak), Med(ACt),
           Med(ACs));
  Out += Line;
  snprintf(Line, sizeof(Line),
           "%-14s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
           "stddev", Sd(DPeak), Sd(DCt), Sd(DCs), Sd(APeak), Sd(ACt),
           Sd(ACs));
  Out += Line;
  Out += Notes;
  return Out;
}
