//===- workloads/CompileService.h - Parallel compile service ----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel compile service: shards a generated module's functions
/// across a work-stealing thread pool (support/ThreadPool.h) and runs the
/// full per-function pipeline — interpreter-tier profiling, the standard
/// PhaseManager pipeline with budgets and transactional rollback, DBDS
/// under the requested configuration, and the evaluation runs — one
/// function per task, the way the paper's host JIT compiles many units
/// concurrently.
///
/// The determinism contract (DESIGN.md §9): a run at --jobs=N is
/// observably identical to --jobs=1 —
///
///  - the optimized IR of every function is bitwise identical (each task
///    owns its function; nothing else touches it);
///  - interpreter results, dynamic cycles, code size, duplication and
///    rollback counts are identical (merged per function in index order);
///  - telemetry counter totals are identical (per-worker CounterShard
///    buffers, flushed at task end; addition commutes);
///  - decision logs, diagnostics, and harness log lines are byte-identical
///    (buffered per task, merged in function index order at join);
///  - fault-injection streams derive from (seed, function index), never
///    from scheduling order.
///
/// Wall-clock timing (compile-time measurements, budget expiry) is the one
/// thing that is *not* deterministic — it never was, serially either.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_WORKLOADS_COMPILESERVICE_H
#define DBDS_WORKLOADS_COMPILESERVICE_H

#include "support/ThreadPool.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Runner.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dbds {

/// Everything one function's compile+measure task produced, buffered so
/// the join can assemble results in function index order no matter which
/// worker finished when.
struct FunctionCompileOutcome {
  double CompileTimeMs = 0.0;
  uint64_t CodeSize = 0;
  unsigned Duplications = 0;
  unsigned Rollbacks = 0;
  unsigned RunFailures = 0;
  DegradationLevel Degradation = DegradationLevel::None;
  uint64_t DynamicCycles = 0;
  /// Hash of this function's evaluation results, seeded from zero; the
  /// module-level hash folds these in index order (resultHashCombine).
  uint64_t ResultHash = 0;
  /// Harness log lines (non-terminating runs), emitted in index order.
  std::vector<std::string> LogLines;
};

/// Mixes one value into a result hash (the runner's hashing primitive,
/// exposed for the merge step and the tests).
uint64_t resultHashCombine(uint64_t Hash, uint64_t Value);

/// Owns the worker pool behind --jobs. Jobs == 1 runs every task inline on
/// the calling thread through the exact same code path (so serial runs and
/// parallel runs differ only in scheduling); Jobs == 0 resolves to the
/// hardware thread count. The service is reusable across batches — one
/// service per suite keeps the workers parked between benchmarks instead
/// of respawning them.
class CompileService {
public:
  explicit CompileService(unsigned Jobs);
  ~CompileService();

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// The resolved worker count (>= 1).
  unsigned jobs() const { return Jobs; }

  /// What \p Requested resolves to: 0 -> hardware threads, otherwise
  /// itself (minimum 1).
  static unsigned resolveJobs(unsigned Requested);

  /// Runs Task(Index, Worker) once per index: on the pool when jobs() > 1,
  /// inline (Worker == 0) otherwise. Blocks until every task returned.
  void forEachIndex(size_t NumTasks,
                    std::function<void(size_t Index, unsigned Worker)> Task);

private:
  unsigned Jobs;
  std::unique_ptr<ThreadPool> Pool; ///< Null when Jobs == 1.
};

/// Compiles and measures every function of \p W under \p Config, sharded
/// across \p Service's workers, and returns the per-function outcomes in
/// function index order. Each task: profiles on the training inputs,
/// runs PhaseManager::standardPipeline under Opts' budget/verify/fail-fast
/// settings, runs DBDS for the non-baseline configurations, then measures
/// dynamic cycles on the evaluation inputs (with the instruction-cache
/// pressure model of DESIGN.md §2 enabled, as the serial runner always
/// did). Shared sinks in \p Opts (Decisions, Diags, Injector) are never
/// touched from worker threads: tasks write task-local buffers which are
/// merged into the sinks in index order after the join. \p BenchName only
/// labels diagnostics and log lines.
///
/// Sharding is sound because a generated function is a closed unit: tasks
/// mutate only their own function and read the module's class table, which
/// is immutable during compilation (direct Invoke calls between functions
/// would break this; the generator emits only opaque calls).
std::vector<FunctionCompileOutcome>
compileFunctionsParallel(CompileService &Service, GeneratedWorkload &W,
                         RunConfig Config, const RunnerOptions &Opts,
                         const std::string &BenchName);

} // namespace dbds

#endif // DBDS_WORKLOADS_COMPILESERVICE_H
