//===- workloads/CompileService.h - Parallel compile service ----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel compile service: shards a generated module's functions
/// across a work-stealing thread pool (support/ThreadPool.h) and runs the
/// full per-function pipeline — interpreter-tier profiling, the standard
/// PhaseManager pipeline with budgets and transactional rollback, DBDS
/// under the requested configuration, and the evaluation runs — one
/// function per task, the way the paper's host JIT compiles many units
/// concurrently.
///
/// The determinism contract (DESIGN.md §9): a run at --jobs=N is
/// observably identical to --jobs=1 —
///
///  - the optimized IR of every function is bitwise identical (each task
///    owns its function; nothing else touches it);
///  - interpreter results, dynamic cycles, code size, duplication and
///    rollback counts are identical (merged per function in index order);
///  - telemetry counter totals are identical (per-worker CounterShard
///    buffers, flushed at task end; addition commutes);
///  - decision logs, diagnostics, and harness log lines are byte-identical
///    (buffered per task, merged in function index order at join);
///  - fault-injection streams derive from (seed, function index), never
///    from scheduling order.
///
/// Wall-clock timing (compile-time measurements, budget expiry) is the one
/// thing that is *not* deterministic — it never was, serially either.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_WORKLOADS_COMPILESERVICE_H
#define DBDS_WORKLOADS_COMPILESERVICE_H

#include "support/ThreadPool.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Runner.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dbds {

/// One rung of a task's retry-with-degradation ladder: what the attempt
/// was forced to shed, which fault stream it drew, and how it ended.
struct CompileAttempt {
  unsigned Attempt = 0; ///< 0-based rung (0 = first try).
  /// Level the ladder forced before the attempt started (None -> NoDBDS ->
  /// NoFixpoint); distinct from budget-driven degradation during it.
  DegradationLevel Forced = DegradationLevel::None;
  /// Worst level in effect by the end (max of Forced and budget expiry).
  DegradationLevel Reached = DegradationLevel::None;
  unsigned Rollbacks = 0;
  unsigned RunFailures = 0;
  bool Cancelled = false;     ///< The task token fired (deadline/external).
  bool BudgetTripped = false; ///< The wall-clock compile budget expired.
  bool Failed = false;        ///< Attempt verdict (re-queue or exhaust).
  /// The attempt's forTask(index, attempt) fault stream: seed and final
  /// site/fault ordinals (zero when the batch runs without an injector).
  uint64_t FaultSeed = 0;
  unsigned FaultSites = 0;
  unsigned FaultsInjected = 0;
  std::string Reason; ///< Human summary ("ok", "2 rollback(s)", ...).
};

/// Everything one function's compile+measure task produced, buffered so
/// the join can assemble results in function index order no matter which
/// worker finished when. Scalars describe the final attempt; Attempts
/// holds the whole ladder.
struct FunctionCompileOutcome {
  double CompileTimeMs = 0.0;
  uint64_t CodeSize = 0;
  unsigned Duplications = 0;
  unsigned Rollbacks = 0;
  unsigned RunFailures = 0;
  DegradationLevel Degradation = DegradationLevel::None;
  uint64_t DynamicCycles = 0;
  /// Hash of this function's evaluation results, seeded from zero; the
  /// module-level hash folds these in index order (resultHashCombine).
  uint64_t ResultHash = 0;
  /// Harness log lines (non-terminating runs), emitted in index order.
  std::vector<std::string> LogLines;
  /// SimAudit verdict counts of the final attempt (Ran only when the
  /// service ran with RunnerOptions::SimAudit on a DBDS configuration).
  SimAuditCounts Audit;
  /// The retry ladder, in attempt order (always at least one entry).
  std::vector<CompileAttempt> Attempts;
  /// True when every allowed attempt failed; the task's last (most
  /// degraded) result stands and a crash bundle is emitted when the
  /// service is configured with a bundle directory.
  bool Exhausted = false;
  /// Directory of the crash bundle written for this task ("" when none).
  std::string CrashBundle;
};

/// Mixes one value into a result hash (the runner's hashing primitive,
/// exposed for the merge step and the tests).
uint64_t resultHashCombine(uint64_t Hash, uint64_t Value);

/// Owns the worker pool behind --jobs. Jobs == 1 runs every task inline on
/// the calling thread through the exact same code path (so serial runs and
/// parallel runs differ only in scheduling); Jobs == 0 resolves to the
/// hardware thread count. The service is reusable across batches — one
/// service per suite keeps the workers parked between benchmarks instead
/// of respawning them.
class CompileService {
public:
  explicit CompileService(unsigned Jobs);
  ~CompileService();

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// The resolved worker count (>= 1).
  unsigned jobs() const { return Jobs; }

  /// What \p Requested resolves to: 0 -> hardware threads, otherwise
  /// itself (minimum 1).
  static unsigned resolveJobs(unsigned Requested);

  /// Runs Task(Index, Worker) once per index: on the pool when jobs() > 1,
  /// inline (Worker == 0) otherwise. Blocks until every task returned.
  void forEachIndex(size_t NumTasks,
                    std::function<void(size_t Index, unsigned Worker)> Task);

private:
  unsigned Jobs;
  std::unique_ptr<ThreadPool> Pool; ///< Null when Jobs == 1.
};

/// What one supervised batch produced: the per-function outcomes plus the
/// batch-level supervision events.
struct CompileBatch {
  /// Per-function outcomes, in function index order.
  std::vector<FunctionCompileOutcome> Outcomes;
  /// Phases the per-phase circuit breaker disabled during the batch, in
  /// trip order ("<phase> after K attributed corruption(s)").
  std::vector<std::string> BreakerTrips;
};

/// Compiles and measures every function of \p W under \p Config, sharded
/// across \p Service's workers, and returns the per-function outcomes in
/// function index order. Each task: profiles on the training inputs,
/// runs PhaseManager::standardPipeline under Opts' budget/verify/fail-fast
/// settings, runs DBDS for the non-baseline configurations, then measures
/// dynamic cycles on the evaluation inputs (with the instruction-cache
/// pressure model of DESIGN.md §2 enabled, as the serial runner always
/// did). Shared sinks in \p Opts (Decisions, Diags, Injector) are never
/// touched from worker threads: tasks write task-local buffers which are
/// merged into the sinks in index order after the join. \p BenchName only
/// labels diagnostics and log lines.
///
/// Sharding is sound because a generated function is a closed unit: tasks
/// mutate only their own function and read the module's class table, which
/// is immutable during compilation (direct Invoke calls between functions
/// would break this; the generator emits only opaque calls).
///
/// Supervision (RunnerOptions MaxAttempts / TaskDeadlineMs / Cancel /
/// BreakerThreshold / CrashBundleDir) runs the batch as one wave per
/// ladder rung: attempt a re-queues every task that failed attempt a-1 at
/// forced DegradationLevel(min(a, 2)) with a fresh forTask(index, a) fault
/// stream. Between waves the service folds attempt verdicts and breaker
/// attribution serially in function index order, so retry scheduling and
/// breaker trips depend only on (function index, attempt number) — never
/// on worker identity or completion order (DESIGN.md §9/§10). Timing-
/// driven expiry (deadlines, budgets) remains the one documented
/// nondeterminism.
CompileBatch compileFunctionsParallel(CompileService &Service,
                                      GeneratedWorkload &W, RunConfig Config,
                                      const RunnerOptions &Opts,
                                      const std::string &BenchName);

} // namespace dbds

#endif // DBDS_WORKLOADS_COMPILESERVICE_H
