//===- workloads/Suites.cpp - Named benchmark suites -----------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"

using namespace dbds;

namespace {

/// Stable per-name seed so adding benchmarks never reshuffles others.
uint64_t seedOf(const std::string &SuiteName, const std::string &Bench) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (char C : SuiteName + "/" + Bench) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

BenchmarkSpec make(const std::string &Suite, const std::string &Name,
                   OpportunityMix Mix, unsigned Functions, unsigned Segments,
                   double Skew, double CallRate = 0.1) {
  GeneratorConfig Config;
  Config.Seed = seedOf(Suite, Name);
  Config.NumFunctions = Functions;
  Config.SegmentsPerFunction = Segments;
  Config.BranchSkew = Skew;
  Config.CallRate = CallRate;
  Config.Mix = Mix;
  return {Name, Config};
}

/// DaCapo-style: mostly noise, occasional opportunities, heavier units.
OpportunityMix dacapoMix(double Opportunity) {
  OpportunityMix Mix;
  Mix.ConstantFold = Opportunity;
  Mix.ConditionalElim = Opportunity;
  Mix.PartialEscape = Opportunity * 0.5;
  Mix.ReadElim = Opportunity;
  Mix.StrengthReduction = Opportunity * 0.3;
  Mix.Noise = 4.0;
  return Mix;
}

/// Scala-style: boxing and type checks — escape + read-elim heavy.
OpportunityMix scalaMix(double Opportunity) {
  OpportunityMix Mix;
  Mix.ConstantFold = Opportunity * 0.7;
  Mix.ConditionalElim = Opportunity;
  Mix.PartialEscape = Opportunity * 1.5;
  Mix.ReadElim = Opportunity * 1.3;
  Mix.StrengthReduction = Opportunity * 0.2;
  Mix.Noise = 3.0;
  return Mix;
}

/// Micro-benchmark-style: opportunity saturated (§6.2: "elimination of
/// redundant type checks and opportunities for escape analysis").
OpportunityMix microMix(double Escape, double Checks) {
  OpportunityMix Mix;
  Mix.ConstantFold = 1.0;
  Mix.ConditionalElim = Checks;
  Mix.PartialEscape = Escape;
  Mix.ReadElim = 1.0;
  Mix.StrengthReduction = 0.6;
  Mix.Noise = 1.0;
  return Mix;
}

/// Octane-style: partial-evaluated dynamic language code — condition
/// chains everywhere.
OpportunityMix octaneMix(double Conditions, double Allocs) {
  OpportunityMix Mix;
  Mix.ConstantFold = 1.2;
  Mix.ConditionalElim = Conditions;
  Mix.PartialEscape = Allocs;
  Mix.ReadElim = 0.8;
  Mix.StrengthReduction = 0.4;
  Mix.Noise = 1.6;
  return Mix;
}

/// Octane raytrace is the paper's cautionary tale: duplicating every
/// opportunity makes it 15% *slower* than baseline (§6.2). Its profile
/// here: lots of cold allocation-flavoured merges with heavy non-foldable
/// payload, so unbounded duplication bloats the unit deep into
/// instruction-cache pressure for almost no cycle savings.
BenchmarkSpec raytraceSpec(const std::string &Suite) {
  OpportunityMix Mix;
  Mix.ConstantFold = 3.0; // many tiny-benefit merges: dupalot bait
  Mix.ConditionalElim = 0.5;
  Mix.PartialEscape = 0.3;
  Mix.ReadElim = 1.0;
  Mix.StrengthReduction = 0.1;
  Mix.Noise = 2.0;
  BenchmarkSpec Spec = make(Suite, "raytrace", Mix, 8, 4, 0.6, 0.25);
  Spec.Config.ColdSegments = 36;
  Spec.Config.MergeNoiseOps = 20;
  return Spec;
}

} // namespace

SuiteSpec dbds::javaDaCapoSuite() {
  const std::string S = "java-dacapo";
  SuiteSpec Suite{S, {}};
  Suite.Benchmarks = {
      make(S, "avrora", dacapoMix(0.5), 10, 6, 0.7),
      make(S, "batik", dacapoMix(0.6), 9, 5, 0.75),
      make(S, "fop", dacapoMix(0.7), 9, 6, 0.7),
      make(S, "h2", dacapoMix(0.5), 12, 7, 0.8),
      make(S, "jython", dacapoMix(1.2), 12, 7, 0.75), // §6.2: +3%
      make(S, "luindex", dacapoMix(1.4), 10, 6, 0.8), // §6.2: +4%
      make(S, "lusearch", dacapoMix(0.8), 10, 6, 0.8),
      make(S, "pmd", dacapoMix(0.7), 11, 6, 0.7),
      make(S, "sunflow", dacapoMix(0.6), 10, 7, 0.75),
      make(S, "xalan", dacapoMix(0.6), 11, 6, 0.7),
  };
  return Suite;
}

SuiteSpec dbds::scalaDaCapoSuite() {
  const std::string S = "scala-dacapo";
  SuiteSpec Suite{S, {}};
  Suite.Benchmarks = {
      make(S, "actors", scalaMix(1.0), 10, 6, 0.75),
      make(S, "apparat", scalaMix(0.8), 10, 6, 0.7),
      make(S, "factorie", scalaMix(1.6), 10, 7, 0.8), // math-heavy: big wins
      make(S, "kiama", scalaMix(1.0), 9, 5, 0.7),
      make(S, "scalac", scalaMix(0.9), 13, 7, 0.7),
      make(S, "scaladoc", scalaMix(0.8), 12, 6, 0.7),
      make(S, "scalap", scalaMix(1.1), 9, 5, 0.75),
      make(S, "scalariform", scalaMix(1.0), 10, 6, 0.75),
      make(S, "scalatest", scalaMix(0.7), 10, 6, 0.7),
      make(S, "scalaxb", scalaMix(1.5), 10, 6, 0.8),
      make(S, "specs", scalaMix(0.9), 10, 6, 0.7),
      make(S, "tmt", scalaMix(1.2), 11, 7, 0.8),
  };
  return Suite;
}

SuiteSpec dbds::microSuite() {
  const std::string S = "micro";
  SuiteSpec Suite{S, {}};
  Suite.Benchmarks = {
      make(S, "akkaPP", microMix(1.2, 1.2), 6, 5, 0.8, 0.25),
      make(S, "bufdecode", microMix(0.8, 2.2), 6, 6, 0.85),
      make(S, "charcount", microMix(0.6, 1.8), 5, 5, 0.9),
      make(S, "charhist", microMix(0.8, 1.6), 5, 6, 0.9),
      make(S, "chisquare", microMix(2.4, 1.0), 6, 6, 0.85), // boxing-heavy
      make(S, "groupbyrem", microMix(1.6, 1.2), 6, 6, 0.85),
      make(S, "kmeanCPCA", microMix(2.0, 1.4), 6, 7, 0.9), // §6.2: up to 40%
      make(S, "streamPerson", microMix(2.6, 1.2), 6, 6, 0.9),
      make(S, "wordcount", microMix(1.2, 1.6), 6, 6, 0.85),
  };
  return Suite;
}

SuiteSpec dbds::octaneSuite() {
  const std::string S = "octane";
  SuiteSpec Suite{S, {}};
  Suite.Benchmarks = {
      make(S, "box2d", octaneMix(1.6, 1.0), 10, 6, 0.8),
      make(S, "code-load", octaneMix(0.6, 0.4), 14, 5, 0.7),
      make(S, "deltablue", octaneMix(2.0, 1.4), 9, 6, 0.85),
      make(S, "earley-boyer", octaneMix(1.8, 1.2), 11, 7, 0.8),
      make(S, "gameboy", octaneMix(1.4, 0.8), 10, 6, 0.8),
      make(S, "mandreel", octaneMix(1.0, 0.6), 12, 7, 0.75),
      make(S, "navier-stokes", octaneMix(1.2, 0.6), 8, 7, 0.9),
      make(S, "pdfjs", octaneMix(1.2, 0.8), 12, 6, 0.75),
      raytraceSpec(S), // the §6.2 outlier: dupalot regresses vs baseline
      make(S, "regexp", octaneMix(1.0, 0.6), 9, 5, 0.7),
      make(S, "richards", octaneMix(1.8, 1.0), 8, 6, 0.85),
      make(S, "splay", octaneMix(1.4, 1.2), 9, 6, 0.8),
      make(S, "typescript", octaneMix(1.2, 0.8), 14, 6, 0.7),
      make(S, "zlib", octaneMix(1.0, 0.4), 10, 7, 0.85),
  };
  return Suite;
}

std::vector<SuiteSpec> dbds::allSuites() {
  return {javaDaCapoSuite(), scalaDaCapoSuite(), microSuite(), octaneSuite()};
}

SuiteSpec dbds::generatorCorpusSuite(uint64_t Seed, unsigned Benchmarks,
                                     unsigned Functions, unsigned Segments) {
  SuiteSpec Suite{"corpus", {}};
  Suite.Benchmarks.reserve(Benchmarks);
  for (unsigned N = 0; N != Benchmarks; ++N) {
    GeneratorConfig Config;
    Config.Seed = Seed + N;
    Config.NumFunctions = Functions;
    Config.SegmentsPerFunction = Segments;
    // A middle-of-the-road mix: enough opportunities that DBDS transforms
    // fire (so the determinism wall exercises real duplication), enough
    // noise that baseline and dbds differ.
    Config.Mix = dacapoMix(1.0);
    Suite.Benchmarks.push_back({"seed" + std::to_string(Config.Seed), Config});
  }
  return Suite;
}
