//===- workloads/Suites.h - Named benchmark suites ---------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One named synthetic workload per benchmark of the paper's four suites
/// (§6.1): Java DaCapo (Figure 5), Scala DaCapo (Figure 6), the Java/Scala
/// micro-benchmarks (Figure 7), and JavaScript Octane on Graal JS
/// (Figure 8). Each suite has a characteristic opportunity mix (DESIGN.md
/// §2): DaCapo-like workloads are noise-heavy with moderate opportunity
/// density; Scala adds type-check/boxing traffic (read-elim + escape
/// heavy); the micro suite is opportunity-saturated (streams and lambdas:
/// escape analysis + redundant checks); Octane functions come from a
/// partial evaluator and carry long condition chains (CE heavy) with a few
/// allocation-heavy outliers.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_WORKLOADS_SUITES_H
#define DBDS_WORKLOADS_SUITES_H

#include "workloads/ProgramGenerator.h"

#include <string>
#include <vector>

namespace dbds {

/// A named benchmark: its generator configuration.
struct BenchmarkSpec {
  std::string Name;
  GeneratorConfig Config;
};

/// A named suite of benchmarks.
struct SuiteSpec {
  std::string Name;
  std::vector<BenchmarkSpec> Benchmarks;
};

/// The four suites of the paper's evaluation.
SuiteSpec javaDaCapoSuite();  ///< Figure 5 (10 benchmarks).
SuiteSpec scalaDaCapoSuite(); ///< Figure 6 (12 benchmarks).
SuiteSpec microSuite();       ///< Figure 7 (9 benchmarks).
SuiteSpec octaneSuite();      ///< Figure 8 (14 benchmarks).

/// All four suites.
std::vector<SuiteSpec> allSuites();

/// A seed-parameterized corpus suite for harness testing (the determinism
/// wall and the parallel soak runs): \p Benchmarks generated programs with
/// a mixed opportunity profile, seeds Seed, Seed+1, ... Not part of the
/// paper's evaluation; figure drivers never use it.
SuiteSpec generatorCorpusSuite(uint64_t Seed, unsigned Benchmarks,
                               unsigned Functions = 4,
                               unsigned Segments = 4);

} // namespace dbds

#endif // DBDS_WORKLOADS_SUITES_H
