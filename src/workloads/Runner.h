//===- workloads/Runner.h - Benchmark measurement harness -------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one benchmark under the paper's three configurations — baseline
/// (DBDS disabled), dbds, and dupalot (simulation without trade-off) —
/// and measures the three §6.1 metrics: peak performance (dynamic
/// cost-model cycles on evaluation inputs; lower is faster), compile time
/// (wall clock of the optimization pipeline), and code size (static size
/// estimate after optimization). Every run cross-checks program results
/// across configurations, so the harness doubles as an end-to-end
/// correctness test.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_WORKLOADS_RUNNER_H
#define DBDS_WORKLOADS_RUNNER_H

#include "analysis/SimAudit.h"
#include "support/Budget.h"
#include "telemetry/Counters.h"
#include "workloads/Suites.h"

#include <string>
#include <vector>

namespace dbds {

class CancellationToken;
class CompileCache;
class DecisionLog;
class DiagnosticEngine;
class FaultInjector;
class Linter;

/// The three configurations of §6.1.
enum class RunConfig { Baseline, DBDS, DupALot };

const char *runConfigName(RunConfig Config);

/// One conflict or out-of-range knob found by RunnerOptions::validate(),
/// phrased in the drivers' flag vocabulary so it can be printed verbatim
/// as a usage error.
struct RunnerOptionDiagnostic {
  std::string Option;  ///< The flag as drivers expose it ("--poll-mask").
  std::string Message; ///< What is wrong with its value or combination.
};

/// Harness robustness knobs. The defaults degrade gracefully: faults are
/// diagnosed and measurement continues; FailFast restores the legacy
/// abort-on-anything behavior for debugging.
struct RunnerOptions {
  /// Abort the process on divergence, non-termination, or verifier
  /// failure (the pre-transactional behavior; drivers expose --fail-fast).
  bool FailFast = false;

  /// Verify the IR after every phase, with transactional rollback of
  /// failing phases. Off by default to keep compile-time measurements
  /// comparable with the paper's.
  bool Verify = false;

  /// Per-function wall-clock compile budget in milliseconds (0 =
  /// unlimited). On overrun the pipeline degrades stepwise: drop DBDS,
  /// then drop fixpoint iteration, down to the single-round baseline.
  double CompileBudgetMs = 0.0;

  /// Optional deterministic fault source (not owned; needs Verify).
  FaultInjector *Injector = nullptr;

  /// Optional sink for structured diagnostics (not owned).
  DiagnosticEngine *Diags = nullptr;

  /// Optional sink for per-candidate DBDS duplication decisions (not
  /// owned) — the optimization-remarks stream (drivers expose --remarks).
  DecisionLog *Decisions = nullptr;

  /// When set, each ConfigMeasurement carries the telemetry-counter delta
  /// of its compilation+measurement region (drivers expose --counters;
  /// folded into the machine-readable bench report).
  bool CollectCounters = false;

  /// Worker threads for the parallel compile service (drivers expose
  /// --jobs). 1 = serial (same code path, run inline); 0 = one worker per
  /// hardware thread. Every observable output except wall-clock timing is
  /// identical across jobs settings (see workloads/CompileService.h).
  unsigned Jobs = 1;

  /// Interpreter cancellation-poll stride in block transitions (power of
  /// two; drivers expose --poll-mask). 128 is the measured sweet spot —
  /// the interpreter.poll_ns histogram puts its overhead under 1% there.
  unsigned PollInterval = 128;

  // ---- Task supervision (workloads/CompileService.h) -------------------

  /// Maximum attempts per task on the retry-with-degradation ladder
  /// (clamped to [1, 3]; attempt a runs at forced DegradationLevel
  /// min(a, 2)). 1 = no retries, the pre-supervision behavior.
  unsigned MaxAttempts = 1;

  /// Per-attempt wall-clock deadline in milliseconds (0 = none). An
  /// over-deadline attempt is cancelled at the next safe checkpoint and
  /// counts as failed.
  double TaskDeadlineMs = 0.0;

  /// Optional batch-wide cancellation token (not owned): cancelling it
  /// cancels every in-flight and future attempt of the batch.
  CancellationToken *Cancel = nullptr;

  /// Per-phase circuit breaker: after this many attributed corruptions of
  /// the same phase across the module, the phase is disabled for the
  /// batch's remaining tasks (0 = breaker off).
  unsigned BreakerThreshold = 0;

  /// Breaker half-open state: re-enable a tripped phase after this many
  /// consecutive clean folded attempts (0 = stay open for the batch, the
  /// pre-half-open behavior). A re-enabled phase re-trips on its next
  /// attributed corruption.
  unsigned BreakerHalfOpenAfter = 0;

  /// Run SimAudit (analysis/SimAudit.h) over each function's post-DBDS IR
  /// and decision slice; verdicts land in the decision log, counts in
  /// ConfigMeasurement::Audit and the bench JSON's `simulation_audit`
  /// section (drivers expose --simaudit).
  bool SimAudit = false;

  /// When non-empty, every task that exhausts its retries writes a
  /// self-contained crash-report bundle below this directory
  /// (tooling/CrashBundle.h).
  std::string CrashBundleDir;

  /// Optional audit-mode linter for the per-task pipelines (not owned):
  /// phase effects are lint-diffed and attributed, feeding the breaker
  /// higher-fidelity blame than the plain verifier.
  const Linter *AuditLinter = nullptr;

  /// Checks the knob combination for conflicts the harness would
  /// otherwise paper over at runtime: a non-power-of-two poll stride, a
  /// zero retry budget, a negative deadline, half-open recovery with the
  /// breaker off, and fault injection combined with the compile cache (a
  /// replayed compile would desync the sequential fault stream — the
  /// conflict fuzzdiff used to auto-disable silently). Returns one
  /// diagnostic per problem; empty means the options are coherent. Every
  /// driver gates on this after wiring its pointers (see
  /// tooling/DriverOptions.h's reportInvalidRunnerOptions).
  std::vector<RunnerOptionDiagnostic> validate() const;

  /// Optional content-addressed compile cache (not owned; drivers expose
  /// --compile-cache[=dir]). A hit replays the memoized compile so the
  /// run's deterministic outputs are byte-identical to a cold compile
  /// (workloads/CompileCache.h); misses store clean compiles at the
  /// serial join.
  CompileCache *Cache = nullptr;
};

/// Raw measurements of one benchmark under one configuration.
struct ConfigMeasurement {
  uint64_t DynamicCycles = 0; ///< Peak performance proxy (lower = faster).
  double CompileTimeMs = 0.0;
  uint64_t CodeSize = 0;
  unsigned Duplications = 0;
  uint64_t ResultHash = 0; ///< Hash of all program results (correctness).
  unsigned FunctionsDegraded = 0; ///< Units that hit the compile budget.
  /// Worst DegradationLevel reached across the benchmark's functions.
  DegradationLevel MaxDegradation = DegradationLevel::None;
  unsigned Rollbacks = 0;    ///< Phase/DBDS rollbacks during compilation.
  unsigned RunFailures = 0;  ///< Training/eval runs that did not terminate.
  unsigned Retries = 0;      ///< Re-queued attempts beyond each first try.
  unsigned TasksExhausted = 0; ///< Tasks whose every attempt failed.
  /// Phases the per-phase circuit breaker disabled, in trip order.
  std::vector<std::string> BreakerTrips;
  /// Telemetry-counter delta over this configuration's region (empty
  /// unless RunnerOptions::CollectCounters was set).
  std::vector<CounterSample> Counters;
  /// SimAudit verdict counts over the benchmark's functions (Ran only
  /// when RunnerOptions::SimAudit was set and this configuration runs
  /// DBDS).
  SimAuditCounts Audit;
};

/// One benchmark's results across all three configurations.
struct BenchmarkMeasurement {
  std::string Name;
  ConfigMeasurement Baseline, DBDS, DupALot;
  /// False when the configurations' program results diverged (a
  /// miscompile; reported instead of aborting unless FailFast is set).
  bool ResultsAgree = true;

  /// Peak performance delta of \p C vs baseline in percent (positive =
  /// faster, as the paper reports it). Returns 0.0 when either side
  /// measured zero cycles (empty or fully-folded functions) — a ratio
  /// against a zero baseline would be inf/NaN, not a measurement.
  double peakImprovementPercent(const ConfigMeasurement &C) const {
    if (Baseline.DynamicCycles == 0 || C.DynamicCycles == 0)
      return 0.0;
    return (static_cast<double>(Baseline.DynamicCycles) /
                static_cast<double>(C.DynamicCycles) -
            1.0) *
           100.0;
  }
  /// Compile-time increase vs baseline in percent (0.0 when the baseline
  /// measured zero time).
  double compileTimeIncreasePercent(const ConfigMeasurement &C) const {
    if (Baseline.CompileTimeMs <= 0.0)
      return 0.0;
    return (C.CompileTimeMs / Baseline.CompileTimeMs - 1.0) * 100.0;
  }
  /// Code-size increase vs baseline in percent (0.0 when the baseline
  /// measured zero size).
  double codeSizeIncreasePercent(const ConfigMeasurement &C) const {
    if (Baseline.CodeSize == 0)
      return 0.0;
    return (static_cast<double>(C.CodeSize) /
                static_cast<double>(Baseline.CodeSize) -
            1.0) *
           100.0;
  }
};

/// Generates, profiles, compiles, and measures one benchmark under all
/// three configurations. With default options a result divergence across
/// configurations is recorded (ResultsAgree = false, plus a diagnostic)
/// and measurement continues; under Opts.FailFast it aborts.
BenchmarkMeasurement measureBenchmark(const BenchmarkSpec &Spec,
                                      const RunnerOptions &Opts);
BenchmarkMeasurement measureBenchmark(const BenchmarkSpec &Spec);

/// Measures a whole suite.
std::vector<BenchmarkMeasurement> measureSuite(const SuiteSpec &Suite,
                                               const RunnerOptions &Opts);
std::vector<BenchmarkMeasurement> measureSuite(const SuiteSpec &Suite);

/// Renders one suite's results in the layout of the paper's per-figure
/// tables: one row per benchmark plus the geometric-mean footer.
std::string formatSuiteReport(const std::string &SuiteName,
                              const std::vector<BenchmarkMeasurement> &Rows);

} // namespace dbds

#endif // DBDS_WORKLOADS_RUNNER_H
