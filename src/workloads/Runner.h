//===- workloads/Runner.h - Benchmark measurement harness -------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one benchmark under the paper's three configurations — baseline
/// (DBDS disabled), dbds, and dupalot (simulation without trade-off) —
/// and measures the three §6.1 metrics: peak performance (dynamic
/// cost-model cycles on evaluation inputs; lower is faster), compile time
/// (wall clock of the optimization pipeline), and code size (static size
/// estimate after optimization). Every run cross-checks program results
/// across configurations, so the harness doubles as an end-to-end
/// correctness test.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_WORKLOADS_RUNNER_H
#define DBDS_WORKLOADS_RUNNER_H

#include "workloads/Suites.h"

#include <string>

namespace dbds {

/// The three configurations of §6.1.
enum class RunConfig { Baseline, DBDS, DupALot };

const char *runConfigName(RunConfig Config);

/// Raw measurements of one benchmark under one configuration.
struct ConfigMeasurement {
  uint64_t DynamicCycles = 0; ///< Peak performance proxy (lower = faster).
  double CompileTimeMs = 0.0;
  uint64_t CodeSize = 0;
  unsigned Duplications = 0;
  uint64_t ResultHash = 0; ///< Hash of all program results (correctness).
};

/// One benchmark's results across all three configurations.
struct BenchmarkMeasurement {
  std::string Name;
  ConfigMeasurement Baseline, DBDS, DupALot;

  /// Peak performance delta of \p C vs baseline in percent (positive =
  /// faster, as the paper reports it).
  double peakImprovementPercent(const ConfigMeasurement &C) const {
    return (static_cast<double>(Baseline.DynamicCycles) /
                static_cast<double>(C.DynamicCycles) -
            1.0) *
           100.0;
  }
  /// Compile-time increase vs baseline in percent.
  double compileTimeIncreasePercent(const ConfigMeasurement &C) const {
    return (C.CompileTimeMs / Baseline.CompileTimeMs - 1.0) * 100.0;
  }
  /// Code-size increase vs baseline in percent.
  double codeSizeIncreasePercent(const ConfigMeasurement &C) const {
    return (static_cast<double>(C.CodeSize) /
                static_cast<double>(Baseline.CodeSize) -
            1.0) *
           100.0;
  }
};

/// Generates, profiles, compiles, and measures one benchmark under all
/// three configurations. Aborts if the configurations' program results
/// disagree (optimization would be unsound).
BenchmarkMeasurement measureBenchmark(const BenchmarkSpec &Spec);

/// Measures a whole suite.
std::vector<BenchmarkMeasurement> measureSuite(const SuiteSpec &Suite);

/// Renders one suite's results in the layout of the paper's per-figure
/// tables: one row per benchmark plus the geometric-mean footer.
std::string formatSuiteReport(const std::string &SuiteName,
                              const std::vector<BenchmarkMeasurement> &Rows);

} // namespace dbds

#endif // DBDS_WORKLOADS_RUNNER_H
