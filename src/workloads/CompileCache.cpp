//===- workloads/CompileCache.cpp - Content-addressed compile cache --------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/CompileCache.h"

#include "ir/Function.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "telemetry/BenchCompare.h" // readFileToString

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>

using namespace dbds;

// The cache.* counters are the one documented warm-vs-cold divergence: a
// cold region counts misses, a warm one hits, and comparisons of the
// deterministic sections strip the component (DESIGN.md §13). Everything
// here that is schedule-independent (hit/miss via the task shard, stores
// and evictions in the serial insert path) totals identically across
// --jobs settings.
DBDS_COUNTER(cache, hit);
DBDS_COUNTER(cache, miss);
DBDS_COUNTER(cache, stored);
DBDS_COUNTER(cache, stored_bytes);
DBDS_COUNTER(cache, evictions);
DBDS_COUNTER(cache, disk_loads);
DBDS_COUNTER(cache, disk_load_failures);
DBDS_COUNTER(cache, disk_write_failures);

void CompileCache::countHit() { ++hit; }
void CompileCache::countMiss() { ++miss; }

//===----------------------------------------------------------------------===//
// Key computation
//===----------------------------------------------------------------------===//

std::string dbds::printCacheableUnit(const Module *M, const Function *F) {
  std::string Out;
  for (unsigned Idx = 0, E = M->getNumClasses(); Idx != E; ++Idx) {
    const ClassInfo &CI = M->getClass(Idx);
    Out += "class " + CI.Name + " " + std::to_string(CI.NumFields) + "\n";
  }
  if (M->getNumClasses() != 0)
    Out += "\n";
  Out += printFunction(F);
  Out += "\n";
  return Out;
}

CompileCacheKey dbds::computeCompileCacheKey(
    const std::string &PristineIR,
    const std::vector<std::vector<int64_t>> &TrainInputs,
    const std::vector<std::vector<int64_t>> &EvalInputs,
    const CompileCacheFingerprint &FP) {
  StableHasher H;
  H.str(PristineIR);
  for (const auto *Inputs : {&TrainInputs, &EvalInputs}) {
    H.u64(Inputs->size());
    for (const std::vector<int64_t> &Tuple : *Inputs) {
      H.u64(Tuple.size());
      for (int64_t V : Tuple)
        H.i64(V);
    }
  }
  H.str(FP.Tool);
  H.u32(FP.Config);
  H.boolean(FP.Verify);
  H.boolean(FP.FailFast);
  H.f64(FP.CompileBudgetMs);
  H.u32(FP.PollInterval);
  H.boolean(FP.SimAudit);
  H.boolean(FP.WantDiags);
  H.boolean(FP.WantDecisions);
  H.boolean(FP.MetricsEnabled);
  H.u32(FP.ForcedLevel);
  H.u64(FP.DisabledPhases.size());
  for (const std::string &Phase : FP.DisabledPhases)
    H.str(Phase);
  H.boolean(FP.HasInjector);
  if (FP.HasInjector) {
    H.u64(FP.InjectorBaseSeed);
    H.f64(FP.InjectorRate);
    H.u32(FP.InjectorKindMask);
    H.u64(FP.TaskFaultSeed);
  }
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Entry serialization (versioned text, fail-open parsing)
//===----------------------------------------------------------------------===//

namespace {

// v2: decision lines carry the partial_escapes opportunity count.
constexpr const char *FormatHeader = "dbds-compile-cache v2";

uint64_t bitsOfDouble(double V) {
  uint64_t Bits;
  __builtin_memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

double doubleOfBits(uint64_t Bits) {
  double V;
  __builtin_memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string hex64(uint64_t V) {
  char Buf[17];
  snprintf(Buf, sizeof(Buf), "%016llx", static_cast<unsigned long long>(V));
  return Buf;
}

/// Sequential reader over the serialized text: lines of space-separated
/// tokens plus explicit length-prefixed raw blocks. Every helper latches
/// Fail instead of throwing; the caller checks once per record.
struct EntryReader {
  const std::string &Text;
  size_t Pos = 0;
  bool Fail = false;

  explicit EntryReader(const std::string &Text) : Text(Text) {}

  bool eol() const { return Pos >= Text.size() || Text[Pos] == '\n'; }

  void endLine() {
    if (Pos >= Text.size() || Text[Pos] != '\n') {
      Fail = true;
      return;
    }
    ++Pos;
  }

  /// Expects the literal word \p W followed by a space or end of line.
  void word(const char *W) {
    size_t Len = strlen(W);
    if (Text.compare(Pos, Len, W) != 0) {
      Fail = true;
      return;
    }
    Pos += Len;
    if (!eol()) {
      if (Text[Pos] != ' ') {
        Fail = true;
        return;
      }
      ++Pos;
    }
  }

  uint64_t number(int Base) {
    if (Fail || Pos >= Text.size()) {
      Fail = true;
      return 0;
    }
    const char *Start = Text.c_str() + Pos;
    char *End = nullptr;
    errno = 0;
    unsigned long long V = strtoull(Start, &End, Base);
    if (End == Start || errno == ERANGE) {
      Fail = true;
      return 0;
    }
    Pos += static_cast<size_t>(End - Start);
    if (!eol()) {
      if (Text[Pos] != ' ') {
        Fail = true;
        return 0;
      }
      ++Pos;
    }
    return V;
  }

  uint64_t u64() { return number(10); }
  uint64_t hexU64() { return number(16); }

  int64_t i64() {
    if (Fail || Pos >= Text.size()) {
      Fail = true;
      return 0;
    }
    const char *Start = Text.c_str() + Pos;
    char *End = nullptr;
    errno = 0;
    long long V = strtoll(Start, &End, 10);
    if (End == Start || errno == ERANGE) {
      Fail = true;
      return 0;
    }
    Pos += static_cast<size_t>(End - Start);
    if (!eol()) {
      if (Text[Pos] != ' ') {
        Fail = true;
        return 0;
      }
      ++Pos;
    }
    return V;
  }

  bool flag() {
    uint64_t V = u64();
    if (V > 1)
      Fail = true;
    return V != 0;
  }

  /// The rest of the current line (identifiers and function names; no
  /// newlines by construction).
  std::string restOfLine() {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos) {
      Fail = true;
      return "";
    }
    std::string Out = Text.substr(Pos, End - Pos);
    Pos = End;
    return Out;
  }

  /// Exactly \p Len raw bytes.
  std::string raw(size_t Len) {
    if (Pos + Len > Text.size()) {
      Fail = true;
      return "";
    }
    std::string Out = Text.substr(Pos, Len);
    Pos += Len;
    return Out;
  }
};

bool parseKeyHex(const std::string &Hex, CompileCacheKey &Out) {
  if (Hex.size() != 32)
    return false;
  uint64_t Halves[2] = {0, 0};
  for (unsigned H = 0; H != 2; ++H)
    for (unsigned I = 0; I != 16; ++I) {
      char C = Hex[H * 16 + I];
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<unsigned>(C - 'a') + 10;
      else
        return false;
      Halves[H] = (Halves[H] << 4) | Digit;
    }
  Out.Hi = Halves[0];
  Out.Lo = Halves[1];
  return true;
}

} // namespace

std::string dbds::serializeCacheEntry(const CompileCacheKey &Key,
                                      const CompileCacheEntry &E) {
  std::string Out;
  Out += FormatHeader;
  Out += "\n";
  Out += "key " + Key.hex() + "\n";
  Out += "scalars " + std::to_string(E.CodeSize) + " " +
         std::to_string(E.Duplications) + " " +
         std::to_string(static_cast<unsigned>(E.Degradation)) + " " +
         std::to_string(E.DynamicCycles) + " " + hex64(E.ResultHash) + " " +
         std::to_string(E.FaultSites) + "\n";
  Out += "audit " + std::to_string(E.Audit.Ran ? 1 : 0) + " " +
         std::to_string(E.Audit.Confirmed) + " " +
         std::to_string(E.Audit.Overclaimed) + " " +
         std::to_string(E.Audit.Underclaimed) + " " +
         std::to_string(E.Audit.Skipped) + "\n";

  Out += "counters " + std::to_string(E.Counters.size()) + "\n";
  for (const CounterSample &C : E.Counters)
    Out += "c " + std::to_string(C.Value) + " " + C.Name + "\n";

  Out += "histograms " + std::to_string(E.Histograms.size()) + "\n";
  for (const CompileCacheEntry::HistogramState &HS : E.Histograms) {
    unsigned NonZero = 0;
    for (uint64_t B : HS.H.buckets())
      if (B != 0)
        ++NonZero;
    Out += "h " + std::to_string(static_cast<unsigned>(HS.Unit)) + " " +
           std::to_string(static_cast<unsigned>(HS.Class)) + " " +
           std::to_string(HS.H.count()) + " " + std::to_string(HS.H.sum()) +
           " " + std::to_string(HS.H.min()) + " " +
           std::to_string(HS.H.max()) + " " + std::to_string(NonZero);
    for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
      if (HS.H.buckets()[I] != 0)
        Out += " " + std::to_string(I) + " " +
               std::to_string(HS.H.buckets()[I]);
    Out += " " + HS.Component + " " + HS.Name + "\n";
  }

  Out += "decisions " + std::to_string(E.Decisions.size()) + "\n";
  for (const DuplicationDecision &D : E.Decisions) {
    const OpportunityCounts &O = D.Opportunities;
    Out += "d " + std::to_string(D.Iteration) + " " +
           std::to_string(D.MergeId) + " " + std::to_string(D.PredId) + " " +
           std::to_string(D.SecondMergeId) + " " +
           hex64(bitsOfDouble(D.CyclesSaved)) + " " +
           hex64(bitsOfDouble(D.Probability)) + " " +
           std::to_string(D.SizeCost) + " " + std::to_string(D.CurrentSize) +
           " " + std::to_string(D.InitialSize) + " " +
           std::to_string(O.ConstantFolds) + " " +
           std::to_string(O.StrengthReductions) + " " +
           std::to_string(O.ConditionalEliminations) + " " +
           std::to_string(O.ReadEliminations) + " " +
           std::to_string(O.AllocationSinks) + " " +
           std::to_string(O.PartialEscapes) + " " +
           std::to_string(D.TradeoffEvaluated ? 1 : 0) + " " +
           std::to_string(D.Clauses.PositiveCyclesSaved ? 1 : 0) + " " +
           std::to_string(D.Clauses.BenefitOutweighsCost ? 1 : 0) + " " +
           std::to_string(D.Clauses.UnderMaxUnitSize ? 1 : 0) + " " +
           std::to_string(D.Clauses.WithinGrowthBudget ? 1 : 0) + " " +
           std::to_string(static_cast<unsigned>(D.Verdict)) + " " +
           std::to_string(D.DuplicationsPerformed) + " " +
           std::to_string(static_cast<unsigned>(D.Audit)) + " " +
           D.FunctionName + "\n";
  }

  Out += "ir " + std::to_string(E.OptimizedIR.size()) + "\n";
  Out += E.OptimizedIR;
  Out += "\n";

  // The checksum covers every byte above its own line.
  Out += "checksum " + hex64(stableHash64(Out)) + "\n";
  return Out;
}

bool dbds::parseCacheEntry(const std::string &Text,
                           const CompileCacheKey &Expect,
                           CompileCacheEntry &Out) {
  EntryReader R(Text);

  // Version first: a future format revision must read as a miss, not as a
  // checksum error in a format we cannot actually parse.
  R.word(FormatHeader);
  R.endLine();
  if (R.Fail)
    return false;

  // Locate and verify the trailing checksum line before trusting any
  // field: Text must end "checksum <16 hex>\n".
  if (Text.empty() || Text.back() != '\n')
    return false;
  size_t LineStart = Text.rfind('\n', Text.size() - 2);
  LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
  constexpr const char *ChecksumTag = "checksum ";
  if (Text.compare(LineStart, strlen(ChecksumTag), ChecksumTag) != 0)
    return false;
  {
    EntryReader CR(Text);
    CR.Pos = LineStart;
    CR.word("checksum");
    uint64_t Stored = CR.hexU64();
    CR.endLine();
    if (CR.Fail || CR.Pos != Text.size())
      return false;
    if (Stored != stableHash64(Text.data(), LineStart))
      return false;
  }

  R.word("key");
  CompileCacheKey Key;
  if (!parseKeyHex(R.restOfLine(), Key))
    return false;
  R.endLine();
  if (R.Fail || Key != Expect)
    return false;

  R.word("scalars");
  Out.CodeSize = R.u64();
  Out.Duplications = static_cast<unsigned>(R.u64());
  uint64_t Degradation = R.u64();
  Out.DynamicCycles = R.u64();
  Out.ResultHash = R.hexU64();
  Out.FaultSites = static_cast<unsigned>(R.u64());
  R.endLine();
  if (R.Fail || Degradation > static_cast<uint64_t>(DegradationLevel::NoFixpoint))
    return false;
  Out.Degradation = static_cast<DegradationLevel>(Degradation);

  R.word("audit");
  Out.Audit.Ran = R.flag();
  Out.Audit.Confirmed = R.u64();
  Out.Audit.Overclaimed = R.u64();
  Out.Audit.Underclaimed = R.u64();
  Out.Audit.Skipped = R.u64();
  R.endLine();
  if (R.Fail)
    return false;

  R.word("counters");
  uint64_t NumCounters = R.u64();
  R.endLine();
  if (R.Fail || NumCounters > 4096)
    return false;
  Out.Counters.clear();
  Out.Counters.reserve(NumCounters);
  for (uint64_t I = 0; I != NumCounters; ++I) {
    R.word("c");
    CounterSample S;
    S.Value = R.u64();
    S.Name = R.restOfLine();
    R.endLine();
    if (R.Fail || S.Name.empty())
      return false;
    Out.Counters.push_back(std::move(S));
  }

  R.word("histograms");
  uint64_t NumHists = R.u64();
  R.endLine();
  if (R.Fail || NumHists > 4096)
    return false;
  Out.Histograms.clear();
  Out.Histograms.reserve(NumHists);
  for (uint64_t I = 0; I != NumHists; ++I) {
    R.word("h");
    uint64_t Unit = R.u64();
    uint64_t Class = R.u64();
    uint64_t Count = R.u64();
    uint64_t Sum = R.u64();
    uint64_t Min = R.u64();
    uint64_t Max = R.u64();
    uint64_t NonZero = R.u64();
    if (R.Fail || Unit > static_cast<uint64_t>(MetricUnit::Percent) ||
        Class > static_cast<uint64_t>(MetricClass::Timing) ||
        NonZero > Histogram::NumBuckets)
      return false;
    std::array<uint64_t, Histogram::NumBuckets> Buckets{};
    for (uint64_t P = 0; P != NonZero; ++P) {
      uint64_t Idx = R.u64();
      uint64_t Val = R.u64();
      if (R.Fail || Idx >= Histogram::NumBuckets)
        return false;
      Buckets[Idx] = Val;
    }
    CompileCacheEntry::HistogramState HS;
    HS.Unit = static_cast<MetricUnit>(Unit);
    HS.Class = static_cast<MetricClass>(Class);
    HS.H = Histogram::fromState(Buckets, Count, Sum, Min, Max);
    // Component and name are the line's last two tokens.
    std::string Names = R.restOfLine();
    R.endLine();
    size_t Space = Names.find(' ');
    if (R.Fail || Space == std::string::npos || Space == 0 ||
        Space + 1 == Names.size() ||
        Names.find(' ', Space + 1) != std::string::npos)
      return false;
    HS.Component = Names.substr(0, Space);
    HS.Name = Names.substr(Space + 1);
    Out.Histograms.push_back(std::move(HS));
  }

  R.word("decisions");
  uint64_t NumDecisions = R.u64();
  R.endLine();
  if (R.Fail || NumDecisions > (1u << 20))
    return false;
  Out.Decisions.clear();
  Out.Decisions.reserve(NumDecisions);
  for (uint64_t I = 0; I != NumDecisions; ++I) {
    R.word("d");
    DuplicationDecision D;
    D.Iteration = static_cast<unsigned>(R.u64());
    D.MergeId = static_cast<unsigned>(R.u64());
    D.PredId = static_cast<unsigned>(R.u64());
    D.SecondMergeId = static_cast<unsigned>(R.u64());
    D.CyclesSaved = doubleOfBits(R.hexU64());
    D.Probability = doubleOfBits(R.hexU64());
    D.SizeCost = R.i64();
    D.CurrentSize = R.u64();
    D.InitialSize = R.u64();
    D.Opportunities.ConstantFolds = static_cast<unsigned>(R.u64());
    D.Opportunities.StrengthReductions = static_cast<unsigned>(R.u64());
    D.Opportunities.ConditionalEliminations = static_cast<unsigned>(R.u64());
    D.Opportunities.ReadEliminations = static_cast<unsigned>(R.u64());
    D.Opportunities.AllocationSinks = static_cast<unsigned>(R.u64());
    D.Opportunities.PartialEscapes = static_cast<unsigned>(R.u64());
    D.TradeoffEvaluated = R.flag();
    D.Clauses.PositiveCyclesSaved = R.flag();
    D.Clauses.BenefitOutweighsCost = R.flag();
    D.Clauses.UnderMaxUnitSize = R.flag();
    D.Clauses.WithinGrowthBudget = R.flag();
    uint64_t Verdict = R.u64();
    D.DuplicationsPerformed = static_cast<unsigned>(R.u64());
    uint64_t Audit = R.u64();
    D.FunctionName = R.restOfLine();
    R.endLine();
    if (R.Fail ||
        Verdict > static_cast<uint64_t>(DecisionVerdict::RolledBack) ||
        Audit > static_cast<uint64_t>(AuditVerdict::Skipped) ||
        D.FunctionName.empty())
      return false;
    D.Verdict = static_cast<DecisionVerdict>(Verdict);
    D.Audit = static_cast<AuditVerdict>(Audit);
    Out.Decisions.push_back(std::move(D));
  }

  R.word("ir");
  uint64_t IRLen = R.u64();
  R.endLine();
  if (R.Fail || IRLen > (1u << 28))
    return false;
  Out.OptimizedIR = R.raw(IRLen);
  R.endLine();
  if (R.Fail || R.Pos != LineStart)
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Replay resolution
//===----------------------------------------------------------------------===//

bool dbds::prepareReplay(const CompileCacheEntry &E, PreparedReplay &R) {
  ParseResult Parsed = parseModule(E.OptimizedIR);
  if (!Parsed)
    return false;
  auto Fns = Parsed.Mod->functions();
  if (Fns.size() != 1)
    return false;
  R.Fn = Fns[0];
  R.Mod = std::move(Parsed.Mod);

  R.Counters.clear();
  R.Counters.reserve(E.Counters.size());
  for (const CounterSample &S : E.Counters) {
    TelemetryCounter *C = CounterRegistry::instance().find(S.Name);
    if (!C)
      return false; // entry from a binary with counters we do not have
    R.Counters.emplace_back(C, S.Value);
  }

  R.Histograms.clear();
  R.Histograms.reserve(E.Histograms.size());
  for (const CompileCacheEntry::HistogramState &HS : E.Histograms) {
    TelemetryHistogram &H = MetricsRegistry::instance().getOrCreate(
        HS.Component, HS.Name, HS.Unit, HS.Class);
    // A unit/class clash with an already-registered histogram means the
    // entry disagrees with this process about what the metric is.
    if (H.unit() != HS.Unit || H.metricClass() != HS.Class)
      return false;
    R.Histograms.emplace_back(&H, HS.H);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The cache proper
//===----------------------------------------------------------------------===//

CompileCache::CompileCache(std::string CacheDirIn, size_t MaxEntriesIn)
    : CacheDir(std::move(CacheDirIn)),
      MaxEntries(MaxEntriesIn == 0 ? 1 : MaxEntriesIn) {
  // Best-effort directory creation (one level). Failure is not an error:
  // writes fail-open into disk_write_failures and the in-memory cache
  // still serves.
  if (!CacheDir.empty())
    mkdir(CacheDir.c_str(), 0755);
}

std::string CompileCache::entryPath(const CompileCacheKey &Key) const {
  if (CacheDir.empty())
    return "";
  return CacheDir + "/" + Key.hex() + ".dbdscache";
}

std::shared_ptr<const CompileCacheEntry>
CompileCache::probe(const CompileCacheKey &Key) {
  const std::string Hex = Key.hex();
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Hex);
    if (It != S.Map.end())
      return It->second;
  }
  if (CacheDir.empty())
    return nullptr;
  // Disk probes do not populate the in-memory map: memory inserts are the
  // serial join's job, which keeps probe concurrency trivial and hit/miss
  // accounting schedule-independent.
  std::string Text;
  if (!readFileToString(entryPath(Key), Text))
    return nullptr; // no file: a plain miss
  auto E = std::make_shared<CompileCacheEntry>();
  if (!parseCacheEntry(Text, Key, *E)) {
    ++disk_load_failures; // corrupt/version-mismatched: fail-open miss
    return nullptr;
  }
  ++disk_loads;
  return E;
}

void CompileCache::insert(const CompileCacheKey &Key, CompileCacheEntry E) {
  const std::string Hex = Key.hex();
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.Map.count(Hex))
      return; // first insert wins
  }

  // Serialized once: it is both the on-disk image and the stored_bytes
  // accounting (identical with and without a cache directory).
  std::string Serialized = serializeCacheEntry(Key, E);
  auto Ptr = std::make_shared<const CompileCacheEntry>(std::move(E));
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.emplace(Hex, std::move(Ptr));
  }
  {
    std::lock_guard<std::mutex> Lock(SizeMu);
    InsertionOrder.push_back(Hex);
    ++Size;
  }
  ++stored;
  stored_bytes += Serialized.size();

  if (!CacheDir.empty()) {
    // Atomic publish: write the temporary, then rename. A torn write must
    // never be loadable (the checksum would catch it anyway; the rename
    // makes it impossible).
    const std::string Path = entryPath(Key);
    const std::string Tmp = Path + ".tmp";
    FILE *File = fopen(Tmp.c_str(), "wb");
    bool Ok = File != nullptr;
    if (File) {
      Ok = fwrite(Serialized.data(), 1, Serialized.size(), File) ==
           Serialized.size();
      Ok = (fclose(File) == 0) && Ok;
    }
    if (Ok && rename(Tmp.c_str(), Path.c_str()) != 0)
      Ok = false;
    if (!Ok) {
      remove(Tmp.c_str());
      ++disk_write_failures; // fail-open: the in-memory entry still serves
    }
  }

  // FIFO eviction to the capacity cap. Inserts are serial and index-
  // ordered, so the eviction sequence — and with it every probe outcome —
  // is deterministic.
  while (true) {
    std::string Victim;
    {
      std::lock_guard<std::mutex> Lock(SizeMu);
      if (Size <= MaxEntries)
        break;
      Victim = std::move(InsertionOrder.front());
      InsertionOrder.pop_front();
      --Size;
    }
    CompileCacheKey VictimKey;
    if (parseKeyHex(Victim, VictimKey)) {
      Shard &VS = shardFor(VictimKey);
      std::lock_guard<std::mutex> Lock(VS.Mu);
      VS.Map.erase(Victim);
    }
    ++evictions;
  }
}

size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(SizeMu);
  return Size;
}
