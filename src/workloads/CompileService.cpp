//===- workloads/CompileService.cpp - Parallel compile service -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/CompileService.h"

#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/Timer.h"
#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Json.h"
#include "telemetry/Trace.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace dbds;

// Note: deliberately no counter distinguishing parallel from serial batches —
// every telemetry counter must total identically at --jobs=1 and --jobs=N
// (the determinism contract), so nothing scheduling-dependent may be counted.
DBDS_COUNTER(compile_service, functions_compiled);

uint64_t dbds::resultHashCombine(uint64_t Hash, uint64_t Value) {
  Hash ^= Value + 0x9e3779b97f4a7c15ULL + (Hash << 6) + (Hash >> 2);
  return Hash * 0xbf58476d1ce4e5b9ULL;
}

unsigned CompileService::resolveJobs(unsigned Requested) {
  if (Requested == 0)
    return ThreadPool::defaultWorkerCount();
  return Requested;
}

CompileService::CompileService(unsigned RequestedJobs)
    : Jobs(resolveJobs(RequestedJobs)) {
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
}

CompileService::~CompileService() = default;

void CompileService::forEachIndex(
    size_t NumTasks, std::function<void(size_t Index, unsigned Worker)> Task) {
  if (!Pool) {
    for (size_t Index = 0; Index != NumTasks; ++Index)
      Task(Index, 0);
    return;
  }
  Pool->runIndexed(NumTasks, std::move(Task));
}

namespace {

/// Sentinel hashed in place of a result when a run does not terminate, so
/// configurations that fail identically still agree and a configuration
/// that *newly* fails shows up as a hash divergence. (Mirrors the runner's
/// historical value.)
constexpr uint64_t NonTerminationSentinel = 0x6e6f2d7465726d21ULL;

/// Task-local sinks: everything order-sensitive a task produces lands
/// here, never in the shared RunnerOptions sinks.
struct TaskBuffers {
  DecisionLog Decisions;
  DiagnosticEngine Diags;
  FaultInjector Injector{0}; ///< Valid only when HasInjector.
  bool HasInjector = false;
};

void bufferDiagnostic(FunctionCompileOutcome &Out, TaskBuffers &Buffers,
                      bool WantDiags, DiagKind Kind, const std::string &Fn,
                      const std::string &Msg) {
  Out.LogLines.push_back(Msg);
  if (WantDiags)
    Buffers.Diags.report(Kind, "runner", Fn, Msg);
}

} // namespace

std::vector<FunctionCompileOutcome>
dbds::compileFunctionsParallel(CompileService &Service, GeneratedWorkload &W,
                               RunConfig Config, const RunnerOptions &Opts,
                               const std::string &BenchName) {
  auto Functions = W.Mod->functions();
  const size_t N = Functions.size();
  std::vector<FunctionCompileOutcome> Outcomes(N);
  std::vector<TaskBuffers> Buffers(N);

  Service.forEachIndex(N, [&](size_t FIdx, unsigned /*Worker*/) {
    Function &F = *Functions[FIdx];
    FunctionCompileOutcome &Out = Outcomes[FIdx];
    TaskBuffers &Buf = Buffers[FIdx];

    // Per-worker telemetry shard: this task's counter increments buffer
    // thread-locally and publish in one batch when the shard dies at the
    // end of the task. Totals are identical to unsharded counting; what
    // the shard buys is a contention-free hot path and a correct per-task
    // view for the phase auditor.
    CounterShard Shard;
    ++functions_compiled;

    // Per-task fault stream, derived from (seed, function index) so it is
    // independent of worker assignment and completion order.
    FaultInjector *Injector = nullptr;
    if (Opts.Injector) {
      Buf.Injector = Opts.Injector->forTask(FIdx);
      Buf.HasInjector = true;
      Injector = &Buf.Injector;
    }

    TraceSession *TS = TraceSession::active();

    // Profile on training inputs (the JIT's interpreter tier). Each task
    // owns its interpreter; the heap is task-private, the module is only
    // read.
    Interpreter Interp(*W.Mod);
    // Peak performance is measured with instruction-cache pressure: code
    // growth beyond ~192 size units per unit costs extra cycles per block
    // transition (DESIGN.md §2; this is what lets unbounded duplication
    // regress, as the paper observes for octane raytrace).
    Interp.enableCodeSizePenalty(/*Threshold=*/192, /*Step=*/160,
                                 /*Cap=*/1u << 20);

    ProfileSummary Profile;
    {
      TraceSpan TrainSpan(TS, "train", "runner",
                          TS ? "\"function\":" + jsonString(F.getName())
                             : std::string());
      for (const auto &Args : W.TrainInputs[FIdx]) {
        Interp.reset();
        ExecutionResult R =
            Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24, &Profile);
        if (!R.Ok) {
          if (Opts.FailFast) {
            fprintf(stderr, "training run did not terminate on %s/%s\n",
                    BenchName.c_str(), F.getName().c_str());
            abort();
          }
          ++Out.RunFailures;
          bufferDiagnostic(Out, Buf, Opts.Diags != nullptr, DiagKind::Warning,
                           F.getName(),
                           "training run did not terminate on " + BenchName);
          break; // Profile what we have; the compile still proceeds.
        }
      }
    }
    applyProfile(F, Profile);

    // Compile (timed) under a per-function budget. The budget degrades the
    // pipeline stepwise instead of letting one function hang the harness.
    CompileBudget Budget(Opts.CompileBudgetMs);
    Budget.arm();
    Timer CompileTimer;
    {
      TraceSpan CompileSpan(TS, "compile", "runner",
                            TS ? "\"function\":" + jsonString(F.getName())
                               : std::string());
      TimerScope Scope(CompileTimer);
      PhaseManager Pipeline =
          PhaseManager::standardPipeline(Opts.Verify, W.Mod.get());
      Pipeline.setFailFast(Opts.FailFast);
      Pipeline.setDiagnostics(Opts.Diags ? &Buf.Diags : nullptr);
      Pipeline.setFaultInjector(Injector);
      Pipeline.setBudget(&Budget);
      Pipeline.run(F);
      Out.Rollbacks += Pipeline.rollbackCount();
      if (Config != RunConfig::Baseline) {
        DBDSConfig DC;
        DC.UseTradeoff = Config == RunConfig::DBDS;
        DC.ClassTable = W.Mod.get();
        DC.Verify = Opts.Verify;
        DC.FailFast = Opts.FailFast;
        DC.Diags = Opts.Diags ? &Buf.Diags : nullptr;
        DC.Injector = Injector;
        DC.Budget = &Budget;
        DC.Decisions = Opts.Decisions ? &Buf.Decisions : nullptr;
        DBDSResult R = runDBDS(F, DC);
        Out.Duplications += R.DuplicationsPerformed;
        Out.Rollbacks += R.RollbacksPerformed;
      }
    }
    Out.CompileTimeMs = CompileTimer.totalMs();
    Out.CodeSize = F.estimatedCodeSize();
    Out.Degradation = Budget.level();

    // Peak performance: dynamic cost-model cycles on evaluation inputs.
    TraceSpan EvalSpan(TS, "eval", "runner",
                       TS ? "\"function\":" + jsonString(F.getName())
                          : std::string());
    for (const auto &Args : W.EvalInputs[FIdx]) {
      Interp.reset();
      ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args), 1u << 24);
      if (!R.Ok) {
        if (Opts.FailFast) {
          fprintf(stderr, "evaluation run did not terminate on %s/%s\n",
                  BenchName.c_str(), F.getName().c_str());
          abort();
        }
        ++Out.RunFailures;
        bufferDiagnostic(Out, Buf, Opts.Diags != nullptr, DiagKind::Error,
                         F.getName(),
                         "evaluation run did not terminate on " + BenchName);
        Out.ResultHash =
            resultHashCombine(Out.ResultHash, NonTerminationSentinel);
        continue;
      }
      Out.DynamicCycles += R.DynamicCycles;
      Out.ResultHash = resultHashCombine(
          Out.ResultHash,
          R.HasResult && !R.Result.IsObject
              ? static_cast<uint64_t>(R.Result.Scalar)
              : 0);
    }
  });

  // Deterministic join: fold every order-sensitive stream back into the
  // shared sinks in function index order, regardless of completion order.
  for (size_t FIdx = 0; FIdx != N; ++FIdx) {
    for (const std::string &Line : Outcomes[FIdx].LogLines)
      fprintf(stderr, "%s/%s: %s\n", BenchName.c_str(),
              Functions[FIdx]->getName().c_str(), Line.c_str());
    if (Opts.Decisions)
      Opts.Decisions->merge(std::move(Buffers[FIdx].Decisions));
    if (Opts.Diags)
      Opts.Diags->mergeFrom(Buffers[FIdx].Diags);
    if (Opts.Injector && Buffers[FIdx].HasInjector)
      Opts.Injector->absorbCounts(Buffers[FIdx].Injector);
  }
  return Outcomes;
}
