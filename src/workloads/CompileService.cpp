//===- workloads/CompileService.cpp - Parallel compile service -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/CompileService.h"

#include "analysis/SimAudit.h"
#include "dbds/DBDSPhase.h"
#include "opts/Phase.h"
#include "support/Cancellation.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/Timer.h"
#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Json.h"
#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"
#include "tooling/CrashBundle.h"
#include "vm/Interpreter.h"
#include "workloads/CompileCache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

using namespace dbds;

// Note: deliberately no counter distinguishing parallel from serial batches —
// every telemetry counter must total identically at --jobs=1 and --jobs=N
// (the determinism contract), so nothing scheduling-dependent may be counted.
// The supervision counters below are incremented only in the serial
// between-wave folds, where retry and breaker decisions are themselves
// schedule-independent.
DBDS_COUNTER(compile_service, functions_compiled);
DBDS_COUNTER(compile_service, tasks_retried);
DBDS_COUNTER(compile_service, tasks_exhausted);
DBDS_COUNTER(compile_service, breaker_trips);
DBDS_COUNTER(compile_service, breaker_reenables);
DBDS_COUNTER(compile_service, crash_bundles_written);

// Per-function distributions, recorded inside the task (so they land in
// the task's MetricsShard and publish at the index-ordered join). The
// growth/size histograms describe the IR itself and are deterministic;
// compile_ns and peak_rss_bytes are wall-clock/allocator state and are
// Timing-class (DESIGN.md §12).
DBDS_HISTOGRAM(compile_service, ir_growth_pct, Percent, Deterministic);
DBDS_HISTOGRAM(compile_service, block_growth_pct, Percent, Deterministic);
DBDS_HISTOGRAM(compile_service, ir_bytes, Bytes, Deterministic);
DBDS_HISTOGRAM(compile_service, compile_ns, Nanoseconds, Timing);
DBDS_HISTOGRAM(compile_service, peak_rss_bytes, Bytes, Timing);
DBDS_HISTOGRAM(compile_service, cache_probe_ns, Nanoseconds, Timing);

uint64_t dbds::resultHashCombine(uint64_t Hash, uint64_t Value) {
  Hash ^= Value + 0x9e3779b97f4a7c15ULL + (Hash << 6) + (Hash >> 2);
  return Hash * 0xbf58476d1ce4e5b9ULL;
}

unsigned CompileService::resolveJobs(unsigned Requested) {
  if (Requested == 0)
    return ThreadPool::defaultWorkerCount();
  return Requested;
}

CompileService::CompileService(unsigned RequestedJobs)
    : Jobs(resolveJobs(RequestedJobs)) {
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
}

CompileService::~CompileService() = default;

void CompileService::forEachIndex(
    size_t NumTasks, std::function<void(size_t Index, unsigned Worker)> Task) {
  if (!Pool) {
    for (size_t Index = 0; Index != NumTasks; ++Index)
      Task(Index, 0);
    return;
  }
  Pool->runIndexed(NumTasks, std::move(Task));
}

namespace {

/// Sentinel hashed in place of a result when a run does not terminate, so
/// configurations that fail identically still agree and a configuration
/// that *newly* fails shows up as a hash divergence. (Mirrors the runner's
/// historical value.)
constexpr uint64_t NonTerminationSentinel = 0x6e6f2d7465726d21ULL;

/// One ladder attempt's task-local state: everything order-sensitive the
/// attempt produces lands here, never in the shared RunnerOptions sinks,
/// and the attempt's scalar results wait here until the join picks the
/// final attempt's.
struct AttemptState {
  CompileAttempt Info;
  FunctionCompileOutcome Partial;
  DecisionLog Decisions;
  DiagnosticEngine Diags;
  FaultInjector Injector{0}; ///< Valid only when HasInjector.
  bool HasInjector = false;
  /// Phase names this attempt's pipeline quarantined (breaker feed).
  std::vector<std::string> QuarantineEvents;
  /// Telemetry taken from the task's shards at task end; published at the
  /// serial join in function index order, one batch per task, so workers
  /// never touch the shared registries at all (DESIGN.md §9/§12).
  std::vector<std::pair<TelemetryCounter *, uint64_t>> CounterBatch;
  MetricsShard::Buffer MetricsBatch;
  /// Compile-cache outcome: CacheHit marks a replayed attempt; HasStore
  /// marks a clean cold compile whose memoized entry (Store/StoreKey) the
  /// serial join inserts — tasks never mutate the cache during a wave.
  bool CacheHit = false;
  bool HasStore = false;
  CompileCacheKey StoreKey;
  CompileCacheEntry Store;
};

/// Per-function supervision state across the retry ladder.
struct TaskState {
  /// Pre-profiling IR snapshot; retries restore it, crash bundles embed
  /// it. Taken only when supervision needs it.
  std::unique_ptr<Function> Pristine;
  std::vector<std::unique_ptr<AttemptState>> Attempts;
};

void bufferDiagnostic(FunctionCompileOutcome &Out, AttemptState &A,
                      bool WantDiags, DiagKind Kind, const std::string &Fn,
                      const std::string &Msg) {
  Out.LogLines.push_back(Msg);
  if (WantDiags)
    A.Diags.report(Kind, "runner", Fn, Msg);
}

std::string describeAttempt(const CompileAttempt &Info,
                            const CancellationToken &Token) {
  if (!Info.Failed)
    return "ok";
  std::string Reason;
  auto Add = [&Reason](const std::string &Piece) {
    if (!Reason.empty())
      Reason += "; ";
    Reason += Piece;
  };
  if (Info.Cancelled)
    Add(std::string("cancelled (") + cancelReasonName(Token.reason()) + ")");
  if (Info.BudgetTripped)
    Add("compile budget expired");
  if (Info.Rollbacks != 0)
    Add(std::to_string(Info.Rollbacks) + " rollback(s)");
  if (Info.RunFailures != 0)
    Add(std::to_string(Info.RunFailures) + " run failure(s)");
  return Reason;
}

} // namespace

CompileBatch dbds::compileFunctionsParallel(CompileService &Service,
                                            GeneratedWorkload &W,
                                            RunConfig Config,
                                            const RunnerOptions &Opts,
                                            const std::string &BenchName) {
  auto Functions = W.Mod->functions();
  const size_t N = Functions.size();
  const unsigned MaxAttempts =
      std::min(std::max(Opts.MaxAttempts, 1u), 3u);
  // Supervision is opt-in: without any of its knobs the service runs the
  // exact pre-supervision task body (single attempt, no token, no extra
  // fault sites), keeping legacy fault streams and outputs bit-identical.
  const bool Supervised = MaxAttempts > 1 || Opts.TaskDeadlineMs > 0.0 ||
                          Opts.Cancel != nullptr ||
                          Opts.BreakerThreshold != 0 ||
                          !Opts.CrashBundleDir.empty() ||
                          Opts.AuditLinter != nullptr;
  const bool NeedPristine =
      MaxAttempts > 1 || !Opts.CrashBundleDir.empty();

  CompileBatch Batch;
  Batch.Outcomes.resize(N);
  std::vector<TaskState> State(N);

  // Breaker state: mutated only in the serial between-wave folds; workers
  // read Disabled concurrently during a wave (the set is stable then).
  std::unordered_set<std::string> Disabled;
  std::unordered_map<std::string, unsigned> CorruptionCounts;
  const std::unordered_set<std::string> *DisabledView =
      Opts.BreakerThreshold != 0 ? &Disabled : nullptr;
  // Half-open state (BreakerHalfOpenAfter != 0): tripped phases in trip
  // order — iterated instead of the unordered Disabled set so re-enable
  // order, and with it the BreakerTrips stream, is deterministic — plus
  // each phase's consecutive-clean-attempt streak.
  std::vector<std::string> TrippedOrder;
  std::unordered_map<std::string, unsigned> CleanStreaks;

  auto RunAttempt = [&](size_t FIdx, unsigned AttemptNo) {
    Function &F = *Functions[FIdx];
    TaskState &T = State[FIdx];
    AttemptState &A = *T.Attempts.back();
    FunctionCompileOutcome &Out = A.Partial;
    A.Info.Attempt = AttemptNo;
    // The degradation ladder: attempt a runs with DBDS already shed at
    // a >= 1 and fixpoint iteration shed at a >= 2.
    const DegradationLevel Forced =
        static_cast<DegradationLevel>(std::min(AttemptNo, 2u));
    A.Info.Forced = Forced;

    // Per-worker telemetry shards: this task's counter increments and
    // histogram records buffer thread-locally; the task takes both buffers
    // at its end and the serial join publishes them in function index
    // order, one batch per task. Totals are identical to unsharded
    // counting; what the shards buy is a contention-free hot path, a
    // correct per-task view for the phase auditor, and index-ordered
    // publication for the metrics determinism contract.
    CounterShard Shard;
    MetricsShard MShard;

    // Per-attempt fault stream, derived from (seed, function index,
    // attempt) so it is independent of worker assignment and completion
    // order, and fresh on every rung of the ladder.
    FaultInjector *Injector = nullptr;
    if (Opts.Injector) {
      A.Injector = Opts.Injector->forTask(FIdx, AttemptNo);
      A.HasInjector = true;
      Injector = &A.Injector;
      A.Info.FaultSeed = A.Injector.seed();
    }

    // The attempt's cooperative stop signal: chained to the batch token,
    // armed with the per-attempt deadline. Null in unsupervised runs so
    // the legacy hot paths stay checkpoint-free.
    CancellationToken TaskCancel(Opts.Cancel);
    TaskCancel.arm(Deadline::afterMs(Opts.TaskDeadlineMs));
    CancellationToken *Cancel = Supervised ? &TaskCancel : nullptr;

    if (NeedPristine && AttemptNo == 0)
      T.Pristine = F.clone();
    // A retry starts from the pristine pre-profiling IR: the failed
    // attempt may have left rolled-back-but-profiled state behind.
    if (AttemptNo != 0)
      F.restoreFrom(*T.Pristine);

    const bool WantDiags = Opts.Diags != nullptr || Supervised;
    TraceSession *TS = TraceSession::active();
    const bool Metered = MetricsRegistry::enabled();

    // Compile cache: key the attempt by the canonical pristine-IR printing
    // (F is pre-profile here), the run inputs, and a fingerprint of every
    // outcome-affecting knob. A replayable hit short-circuits the whole
    // task; any failure along the way falls through to the cold path.
    CompileCacheKey CacheKey{};
    const bool UseCache = Opts.Cache != nullptr;
    if (UseCache) {
      CompileCacheFingerprint FP;
      // Supervision changes the fault-site sequence (interpreter-tier
      // gates) — a distinct compile procedure, so a distinct keyspace.
      FP.Tool = Supervised ? "runner-supervised" : "runner";
      FP.Config = static_cast<unsigned>(Config);
      FP.Verify = Opts.Verify;
      FP.FailFast = Opts.FailFast;
      FP.CompileBudgetMs = Opts.CompileBudgetMs;
      FP.PollInterval = Opts.PollInterval;
      FP.SimAudit = Opts.SimAudit;
      FP.WantDiags = WantDiags;
      FP.WantDecisions = Opts.Decisions != nullptr || Opts.SimAudit;
      FP.MetricsEnabled = Metered;
      FP.ForcedLevel = static_cast<unsigned>(Forced);
      if (DisabledView && !DisabledView->empty()) {
        FP.DisabledPhases.assign(DisabledView->begin(), DisabledView->end());
        std::sort(FP.DisabledPhases.begin(), FP.DisabledPhases.end());
      }
      if (Injector) {
        FP.HasInjector = true;
        FP.InjectorBaseSeed = Opts.Injector->seed();
        FP.InjectorRate = Opts.Injector->rate();
        FP.InjectorKindMask = Opts.Injector->kindMask();
        FP.TaskFaultSeed = A.Injector.seed();
      }
      CacheKey = computeCompileCacheKey(printCacheableUnit(W.Mod.get(), &F),
                                        W.TrainInputs[FIdx],
                                        W.EvalInputs[FIdx], FP);

      Timer ProbeTimer;
      std::shared_ptr<const CompileCacheEntry> Entry;
      {
        TimerScope PScope(ProbeTimer);
        Entry = Opts.Cache->probe(CacheKey);
      }
      if (Metered)
        cache_probe_ns.record(ProbeTimer.totalNs());
      PreparedReplay Replay;
      if (Entry && prepareReplay(*Entry, Replay)) {
        // Hit: replay the memoized compile. Counter deltas route through
        // this task's shard and the histogram states ride the metrics
        // batch, so the join publishes them exactly like a cold task's.
        CompileCache::countHit();
        F.restoreFrom(*Replay.Fn);
        Out.CompileTimeMs = ProbeTimer.totalMs();
        Out.CodeSize = Entry->CodeSize;
        Out.Duplications = Entry->Duplications;
        Out.Degradation = Entry->Degradation;
        Out.DynamicCycles = Entry->DynamicCycles;
        Out.ResultHash = Entry->ResultHash;
        Out.Audit = Entry->Audit;
        for (const DuplicationDecision &D : Entry->Decisions)
          A.Decisions.append(D);
        for (const auto &[Counter, Value] : Replay.Counters)
          Counter->bump(Value);
        A.Info.Cancelled = false;
        A.Info.BudgetTripped = false;
        A.Info.Rollbacks = 0;
        A.Info.RunFailures = 0;
        A.Info.Reached = Out.Degradation;
        if (A.HasInjector) {
          A.Info.FaultSites = Entry->FaultSites;
          A.Info.FaultsInjected = 0;
        }
        A.Info.Failed = false;
        A.Info.Reason = "ok";
        A.CacheHit = true;
        A.MetricsBatch = MShard.take();
        for (const auto &P : Replay.Histograms)
          A.MetricsBatch.push_back(P);
        A.CounterBatch = Shard.take();
        return;
      }
      CompileCache::countMiss();
    }
    ++functions_compiled;

    // Profile on training inputs (the JIT's interpreter tier). Each task
    // owns its interpreter; the heap is task-private, the module is only
    // read.
    Interpreter Interp(*W.Mod);
    // Peak performance is measured with instruction-cache pressure: code
    // growth beyond ~192 size units per unit costs extra cycles per block
    // transition (DESIGN.md §2; this is what lets unbounded duplication
    // regress, as the paper observes for octane raytrace).
    Interp.enableCodeSizePenalty(/*Threshold=*/192, /*Step=*/160,
                                 /*Cap=*/1u << 20);
    Interp.setCancellation(Cancel);
    Interp.setPollInterval(Opts.PollInterval);

    // Interpreter-tier fault gates exist only under supervision: legacy
    // (unsupervised) streams must keep their historical site alignment.
    uint64_t TrainFuel = 1u << 24;
    if (Supervised && Injector) {
      switch (Injector->at("interp-train")) {
      case FaultKind::ResourceExhaustion:
        TrainFuel = 256; // starve the training runs of fuel
        break;
      case FaultKind::Hang:
        hangUntilCancelled(Cancel);
        break;
      default:
        break;
      }
    }

    ProfileSummary Profile;
    {
      TraceSpan TrainSpan(TS, "train", "runner",
                          TS ? "\"function\":" + jsonString(F.getName())
                             : std::string());
      for (const auto &Args : W.TrainInputs[FIdx]) {
        if (Cancel && Cancel->checkpoint())
          break;
        Interp.reset();
        ExecutionResult R =
            Interp.run(F, ArrayRef<int64_t>(Args), TrainFuel, &Profile);
        if (R.Interrupted)
          break; // cancelled mid-run: not a verdict about the program
        if (!R.Ok) {
          if (Opts.FailFast) {
            fprintf(stderr, "training run did not terminate on %s/%s\n",
                    BenchName.c_str(), F.getName().c_str());
            abort();
          }
          ++Out.RunFailures;
          bufferDiagnostic(Out, A, WantDiags, DiagKind::Warning, F.getName(),
                           "training run did not terminate on " + BenchName);
          break; // Profile what we have; the compile still proceeds.
        }
      }
    }
    applyProfile(F, Profile);

    // Pre-compile IR shape, the baseline for the duplication growth
    // histograms. Counting walks the IR, so it stays behind the metrics
    // gate (the detached cost of this site is the one relaxed load).
    uint64_t InstrsBefore = 0, BlocksBefore = 0;
    if (Metered) {
      InstrsBefore = F.instructionCount();
      BlocksBefore = F.blocks().size();
    }

    // Compile (timed) under a per-function budget. The budget degrades the
    // pipeline stepwise instead of letting one function hang the harness.
    CompileBudget Budget(Opts.CompileBudgetMs);
    Budget.arm();
    Timer CompileTimer;
    {
      TraceSpan CompileSpan(TS, "compile", "runner",
                            TS ? "\"function\":" + jsonString(F.getName())
                               : std::string());
      TimerScope Scope(CompileTimer);
      PhaseManager Pipeline =
          PhaseManager::standardPipeline(Opts.Verify, W.Mod.get());
      Pipeline.setFailFast(Opts.FailFast);
      Pipeline.setDiagnostics(WantDiags ? &A.Diags : nullptr);
      Pipeline.setFaultInjector(Injector);
      Pipeline.setBudget(&Budget);
      Pipeline.setCancellation(Cancel);
      Pipeline.setDisabledPhases(DisabledView);
      if (Opts.AuditLinter)
        Pipeline.setAuditLinter(Opts.AuditLinter);
      Pipeline.run(F, Forced >= DegradationLevel::NoFixpoint ? 1u : 4u);
      Out.Rollbacks += Pipeline.rollbackCount();
      A.QuarantineEvents = Pipeline.quarantineEvents();
      if (Config != RunConfig::Baseline &&
          Forced == DegradationLevel::None) {
        DBDSConfig DC;
        DC.UseTradeoff = Config == RunConfig::DBDS;
        DC.ClassTable = W.Mod.get();
        DC.Verify = Opts.Verify;
        DC.FailFast = Opts.FailFast;
        DC.Diags = WantDiags ? &A.Diags : nullptr;
        DC.Injector = Injector;
        DC.Budget = &Budget;
        DC.Cancel = Cancel;
        DC.DisabledPhases = DisabledView;
        // SimAudit needs the decision slice even when no shared sink is
        // installed; without it the legacy condition is unchanged.
        DC.Decisions =
            Opts.Decisions || Opts.SimAudit ? &A.Decisions : nullptr;
        DBDSResult R = runDBDS(F, DC);
        Out.Duplications += R.DuplicationsPerformed;
        Out.Rollbacks += R.RollbacksPerformed;
      }
    }
    Out.CompileTimeMs = CompileTimer.totalMs();
    Out.CodeSize = F.estimatedCodeSize();

    // Per-function IR growth across the whole middle end (pipeline +
    // duplication), clamped at zero: the histograms measure duplication-
    // driven *growth*; a net shrink (DCE-dominated functions) records 0.
    if (Metered) {
      auto GrowthPct = [](uint64_t Before, uint64_t After) -> uint64_t {
        if (Before == 0 || After <= Before)
          return 0;
        return (After - Before) * 100 / Before;
      };
      const uint64_t InstrsAfter = F.instructionCount();
      const uint64_t BlocksAfter = F.blocks().size();
      ir_growth_pct.record(GrowthPct(InstrsBefore, InstrsAfter));
      block_growth_pct.record(GrowthPct(BlocksBefore, BlocksAfter));
      // Live IR node memory, estimated from node counts (a floor: derived
      // instruction classes and container slack are not counted).
      ir_bytes.record(InstrsAfter * sizeof(Instruction) +
                      BlocksAfter * sizeof(Block));
      compile_ns.record(CompileTimer.totalNs());
    }
    // Simulation audit: replay this task's decision slice against
    // dataflow-proven facts on the IR that actually shipped. Runs outside
    // the compile timer (it measures the simulator, it is not part of
    // compilation) but inside the task — the verdicts land in the
    // task-local log before the index-ordered merge, so --jobs=N streams
    // stay byte-identical (DESIGN.md §9).
    if (Opts.SimAudit && Config != RunConfig::Baseline &&
        Forced == DegradationLevel::None)
      Out.Audit = auditSimulation(F, A.Decisions);
    A.Info.BudgetTripped = Budget.level() != DegradationLevel::None;
    Out.Degradation = std::max(Budget.level(), Forced);

    // Eval-side fault gate (supervised only), mirroring the train gate.
    uint64_t EvalFuel = 1u << 24;
    if (Supervised && Injector) {
      switch (Injector->at("interp-eval")) {
      case FaultKind::ResourceExhaustion:
        EvalFuel = 256;
        break;
      case FaultKind::Hang:
        hangUntilCancelled(Cancel);
        break;
      default:
        break;
      }
    }

    // Peak performance: dynamic cost-model cycles on evaluation inputs.
    {
      TraceSpan EvalSpan(TS, "eval", "runner",
                         TS ? "\"function\":" + jsonString(F.getName())
                            : std::string());
      for (const auto &Args : W.EvalInputs[FIdx]) {
        if (Cancel && Cancel->checkpoint())
          break;
        Interp.reset();
        ExecutionResult R = Interp.run(F, ArrayRef<int64_t>(Args), EvalFuel);
        if (R.Interrupted)
          break;
        if (!R.Ok) {
          if (Opts.FailFast) {
            fprintf(stderr, "evaluation run did not terminate on %s/%s\n",
                    BenchName.c_str(), F.getName().c_str());
            abort();
          }
          ++Out.RunFailures;
          bufferDiagnostic(Out, A, WantDiags, DiagKind::Error, F.getName(),
                           "evaluation run did not terminate on " + BenchName);
          Out.ResultHash =
              resultHashCombine(Out.ResultHash, NonTerminationSentinel);
          continue;
        }
        Out.DynamicCycles += R.DynamicCycles;
        Out.ResultHash = resultHashCombine(
            Out.ResultHash,
            R.HasResult && !R.Result.IsObject
                ? static_cast<uint64_t>(R.Result.Scalar)
                : 0);
      }
    }

    // Attempt verdict. BudgetTripped and Cancelled are the timing-driven
    // inputs (DESIGN.md §9's documented nondeterminism); everything else
    // is schedule-independent.
    A.Info.Cancelled = TaskCancel.cancelled();
    A.Info.Rollbacks = Out.Rollbacks;
    A.Info.RunFailures = Out.RunFailures;
    A.Info.Reached = Out.Degradation;
    if (A.HasInjector) {
      A.Info.FaultSites = A.Injector.sitesVisited();
      A.Info.FaultsInjected = A.Injector.faultsInjected();
    }
    A.Info.Failed = Out.Rollbacks != 0 || Out.RunFailures != 0 ||
                    A.Info.Cancelled || A.Info.BudgetTripped;
    A.Info.Reason = describeAttempt(A.Info, TaskCancel);

    // Task boundary: sample process memory accounting, then take both
    // shard buffers. Nothing publishes here — the join below publishes
    // every task's batches in function index order.
    if (Metered)
      peak_rss_bytes.record(currentPeakRssBytes());
    A.MetricsBatch = MShard.take();
    A.CounterBatch = Shard.take();

    // Storage eligibility: only *clean* compiles are memoized — no
    // rollbacks, run failures, quarantines, cancellation, budget expiry,
    // diagnostics, log lines, or injected faults. Anything else is either
    // timing-driven (must recompile) or carries benchmark-labelled text
    // that would replay wrongly across benchmarks sharing IR.
    if (UseCache && !A.Info.Failed && A.QuarantineEvents.empty() &&
        Out.LogLines.empty() && A.Diags.empty() &&
        (!A.HasInjector || A.Injector.faultsInjected() == 0)) {
      A.HasStore = true;
      A.StoreKey = CacheKey;
      CompileCacheEntry &E = A.Store;
      E.CodeSize = Out.CodeSize;
      E.Duplications = Out.Duplications;
      E.Degradation = Out.Degradation;
      E.DynamicCycles = Out.DynamicCycles;
      E.ResultHash = Out.ResultHash;
      E.FaultSites = A.Info.FaultSites;
      E.Audit = Out.Audit;
      E.Decisions = A.Decisions.decisions();
      // Counter deltas by qualified name, sorted, minus the cache.*
      // component (hit/miss accounting is the one warm-vs-cold counter
      // divergence and must not replay).
      for (const auto &[Counter, Value] : A.CounterBatch) {
        std::string Name = Counter->qualifiedName();
        if (Name.compare(0, 6, "cache.") == 0)
          continue;
        E.Counters.push_back({std::move(Name), Value});
      }
      std::sort(E.Counters.begin(), E.Counters.end(),
                [](const CounterSample &X, const CounterSample &Y) {
                  return X.Name < Y.Name;
                });
      // Deterministic-class histogram records only; Timing-class values
      // are wall-clock and never replayed.
      for (const auto &[Hist, H] : A.MetricsBatch) {
        if (Hist->metricClass() != MetricClass::Deterministic)
          continue;
        CompileCacheEntry::HistogramState HS;
        HS.Component = Hist->component();
        HS.Name = Hist->name();
        HS.Unit = Hist->unit();
        HS.Class = Hist->metricClass();
        HS.H = H;
        E.Histograms.push_back(std::move(HS));
      }
      std::sort(E.Histograms.begin(), E.Histograms.end(),
                [](const CompileCacheEntry::HistogramState &X,
                   const CompileCacheEntry::HistogramState &Y) {
                  return std::make_pair(X.Component, X.Name) <
                         std::make_pair(Y.Component, Y.Name);
                });
      E.OptimizedIR = printCacheableUnit(W.Mod.get(), &F);
    }
  };

  // Wave-per-rung scheduling: attempt a runs every task that failed
  // attempt a-1, in parallel; verdicts and breaker attribution fold
  // serially in function index order between waves, so re-queue decisions
  // and breaker trips are identical at any --jobs level.
  std::vector<size_t> Pending(N);
  for (size_t I = 0; I != N; ++I)
    Pending[I] = I;
  for (unsigned AttemptNo = 0; AttemptNo != MaxAttempts && !Pending.empty();
       ++AttemptNo) {
    for (size_t FIdx : Pending)
      State[FIdx].Attempts.push_back(std::make_unique<AttemptState>());
    Service.forEachIndex(Pending.size(), [&](size_t I, unsigned /*Worker*/) {
      RunAttempt(Pending[I], AttemptNo);
    });

    std::vector<size_t> Next;
    for (size_t FIdx : Pending) {
      AttemptState &A = *State[FIdx].Attempts.back();
      if (Opts.BreakerThreshold != 0) {
        for (const std::string &Phase : A.QuarantineEvents) {
          if (Disabled.count(Phase))
            continue;
          if (++CorruptionCounts[Phase] >= Opts.BreakerThreshold) {
            Disabled.insert(Phase);
            Batch.BreakerTrips.push_back(
                Phase + " after " +
                std::to_string(CorruptionCounts[Phase]) +
                " attributed corruption(s)");
            ++breaker_trips;
            if (Opts.BreakerHalfOpenAfter != 0) {
              TrippedOrder.push_back(Phase);
              CleanStreaks[Phase] = 0;
            }
            if (Opts.Diags)
              Opts.Diags->warning("compile-service", "",
                                  "circuit breaker tripped: phase " + Phase +
                                      " disabled for remaining tasks of " +
                                      BenchName + " after " +
                                      std::to_string(CorruptionCounts[Phase]) +
                                      " attributed corruption(s)");
          }
        }
        // Half-open: a tripped phase re-enables after BreakerHalfOpenAfter
        // consecutive clean folded attempts (any attributed corruption —
        // necessarily from a phase still running — resets every streak).
        // A re-enabled phase sits one corruption below the threshold, so
        // its next attributed corruption re-trips it immediately.
        if (Opts.BreakerHalfOpenAfter != 0 && !TrippedOrder.empty()) {
          const bool Clean = A.QuarantineEvents.empty();
          for (size_t PI = 0; PI != TrippedOrder.size();) {
            const std::string &Phase = TrippedOrder[PI];
            if (!Clean) {
              CleanStreaks[Phase] = 0;
              ++PI;
              continue;
            }
            if (++CleanStreaks[Phase] < Opts.BreakerHalfOpenAfter) {
              ++PI;
              continue;
            }
            Disabled.erase(Phase);
            CorruptionCounts[Phase] = Opts.BreakerThreshold - 1;
            CleanStreaks.erase(Phase);
            Batch.BreakerTrips.push_back(
                Phase + " re-enabled after " +
                std::to_string(Opts.BreakerHalfOpenAfter) +
                " clean attempt(s)");
            ++breaker_reenables;
            if (Opts.Diags)
              Opts.Diags->note("compile-service", "",
                               "circuit breaker half-open: phase " + Phase +
                                   " re-enabled for remaining tasks of " +
                                   BenchName + " after " +
                                   std::to_string(Opts.BreakerHalfOpenAfter) +
                                   " clean attempt(s)");
            TrippedOrder.erase(TrippedOrder.begin() +
                               static_cast<ptrdiff_t>(PI));
          }
        }
      }
      if (Supervised && A.Info.Failed) {
        if (AttemptNo + 1 < MaxAttempts) {
          Next.push_back(FIdx);
          ++tasks_retried;
        } else {
          ++tasks_exhausted;
        }
      }
    }
    Pending = std::move(Next);
  }

  // Deterministic join: assemble outcomes from the final attempts and fold
  // every order-sensitive stream back into the shared sinks in (function
  // index, attempt) order, regardless of completion order. Crash bundles
  // are written here — serially — never from a worker thread.
  for (size_t FIdx = 0; FIdx != N; ++FIdx) {
    TaskState &T = State[FIdx];
    FunctionCompileOutcome &Out = Batch.Outcomes[FIdx];
    AttemptState &Last = *T.Attempts.back();

    Out.CompileTimeMs = Last.Partial.CompileTimeMs;
    Out.CodeSize = Last.Partial.CodeSize;
    Out.Duplications = Last.Partial.Duplications;
    Out.Rollbacks = Last.Partial.Rollbacks;
    Out.RunFailures = Last.Partial.RunFailures;
    Out.Degradation = Last.Partial.Degradation;
    Out.DynamicCycles = Last.Partial.DynamicCycles;
    Out.ResultHash = Last.Partial.ResultHash;
    Out.Audit = Last.Partial.Audit;
    for (auto &A : T.Attempts) {
      Out.Attempts.push_back(A->Info);
      for (std::string &Line : A->Partial.LogLines)
        Out.LogLines.push_back(std::move(Line));
    }
    Out.Exhausted = Supervised && Last.Info.Failed;

    for (const std::string &Line : Out.LogLines)
      fprintf(stderr, "%s/%s: %s\n", BenchName.c_str(),
              Functions[FIdx]->getName().c_str(), Line.c_str());

    if (Out.Exhausted && !Opts.CrashBundleDir.empty()) {
      CrashBundleSpec Spec;
      Spec.Benchmark = BenchName;
      Spec.ConfigName = runConfigName(Config);
      Spec.FunctionName = Functions[FIdx]->getName();
      Spec.Dir = Opts.CrashBundleDir + "/" + BenchName + "-" +
                 Spec.ConfigName + "-" + Spec.FunctionName;
      Spec.Pristine = T.Pristine.get();
      Spec.ClassTable = W.Mod.get();
      if (Opts.Injector) {
        Spec.HasInjector = true;
        Spec.FaultRate = Opts.Injector->rate();
        Spec.FaultKindMask = Opts.Injector->kindMask();
      }
      for (const auto &A : T.Attempts) {
        CrashBundleAttempt CA;
        CA.Attempt = A->Info.Attempt;
        CA.ForcedLevel = A->Info.Forced;
        CA.FaultSeed = A->Info.FaultSeed;
        CA.FaultSites = A->Info.FaultSites;
        CA.FaultsInjected = A->Info.FaultsInjected;
        CA.Rollbacks = A->Info.Rollbacks;
        CA.RunFailures = A->Info.RunFailures;
        CA.Cancelled = A->Info.Cancelled;
        CA.BudgetTripped = A->Info.BudgetTripped;
        CA.Reason = A->Info.Reason;
        Spec.Attempts.push_back(std::move(CA));
        Spec.DiagnosticsText += A->Diags.render();
        Spec.DecisionsJsonl += A->Decisions.renderJsonl();
      }
      CrashBundleResult BR = writeCrashBundle(Spec);
      if (BR.Written) {
        Out.CrashBundle = Spec.Dir;
        ++crash_bundles_written;
      } else if (Opts.Diags) {
        Opts.Diags->error("compile-service", Spec.FunctionName,
                          "failed to write crash bundle: " + BR.Error);
      }
    }

    for (auto &A : T.Attempts) {
      // One registry update per task: the batched flush the counters
      // ROADMAP item asked for, and the index-ordered publication the
      // metrics determinism contract requires.
      CounterRegistry::publishBatch(A->CounterBatch);
      MetricsShard::publish(A->MetricsBatch);
      if (Opts.Decisions)
        Opts.Decisions->merge(std::move(A->Decisions));
      if (Opts.Diags)
        Opts.Diags->mergeFrom(A->Diags);
      if (Opts.Injector && A->HasInjector) {
        // A replayed attempt never ran its derived injector; fold in the
        // memoized site count instead so summary lines match cold runs.
        if (A->CacheHit)
          Opts.Injector->absorbCounts(A->Info.FaultSites, 0);
        else
          Opts.Injector->absorbCounts(A->Injector);
      }
      // Cache inserts happen here — serially, in (function index, attempt)
      // order — never during a wave, so probe results and eviction order
      // are identical at every --jobs level.
      if (Opts.Cache && A->HasStore)
        Opts.Cache->insert(A->StoreKey, std::move(A->Store));
    }
  }
  return Batch;
}
