//===- workloads/CompileCache.h - Content-addressed compile cache *- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, content-addressed cache over per-function compiles.
/// Identical generated functions recur across benchmark seeds and configs
/// (ROADMAP: they recompile from scratch today); the cache keys each
/// compile by a 128-bit stable hash of the *canonical pristine-IR
/// printing* plus a fingerprint of everything else that can change the
/// outcome — configuration, budgets, poll mask, fault-injection stream,
/// phase-breaker state — and a hit replays the memoized optimized IR,
/// counters, decision log, deterministic histograms, and measurements, so
/// a warm run's reports are byte-identical to a cold run's deterministic
/// sections (DESIGN.md §13).
///
/// Caching a *speculative* pipeline is only sound under strict rules:
///
///  - Eligibility: only clean compiles are stored — no rollbacks, no run
///    failures, no quarantined phases, no diagnostics or log lines, no
///    budget expiry, no cancellation. Anything timing-driven or
///    benchmark-labelled recompiles every time; the common (clean) case
///    is exactly where the redundant work is.
///  - Schedule independence: tasks only *probe* during a parallel wave;
///    inserts happen at the serial index-ordered join. Hit/miss counts —
///    and therefore every counter total — are identical at --jobs=1 and
///    --jobs=N.
///  - Fail-open: a corrupt, truncated, version-mismatched, or otherwise
///    unreplayable entry (on disk or in memory) is a miss, never an
///    error; the cold path is always correct.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_WORKLOADS_COMPILECACHE_H
#define DBDS_WORKLOADS_COMPILECACHE_H

#include "analysis/SimAudit.h"
#include "support/Budget.h"
#include "support/StableHash.h"
#include "telemetry/Counters.h"
#include "telemetry/DecisionLog.h"
#include "telemetry/Metrics.h"

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dbds {

class Function;
class Module;

/// Cache keys are 128-bit stable digests (support/StableHash.h): FNV-1a
/// over the canonical pristine IR, the input tuples, and the fingerprint.
using CompileCacheKey = Hash128;

/// Everything besides the pristine IR and the run inputs that can change a
/// compile's observable outcome. Every field perturbs the key (the
/// key-sensitivity tests enumerate them); forgetting one here would replay
/// a stale result, so new outcome-affecting knobs must be added.
struct CompileCacheFingerprint {
  /// Keyspace salt: entries from different pipelines (runner vs fuzzdiff)
  /// never collide even on identical IR, because their compile procedures
  /// differ.
  std::string Tool = "runner";
  unsigned Config = 0; ///< RunConfig as an integer.
  bool Verify = false;
  bool FailFast = false;
  double CompileBudgetMs = 0.0;
  unsigned PollInterval = 128;
  bool SimAudit = false;
  bool WantDiags = false;
  bool WantDecisions = false;
  bool MetricsEnabled = false;
  /// DegradationLevel the retry ladder forced for this attempt.
  unsigned ForcedLevel = 0;
  /// Phases the circuit breaker has disabled at probe time, sorted (the
  /// set is stable during a wave; its contents change what the pipeline
  /// runs).
  std::vector<std::string> DisabledPhases;
  /// Fault-injection stream identity: base injector parameters plus the
  /// per-task derived seed (byte-identical functions at different task
  /// indices draw different fault streams, so the derived seed — not the
  /// index — is what the outcome depends on).
  bool HasInjector = false;
  uint64_t InjectorBaseSeed = 0;
  double InjectorRate = 0.0;
  unsigned InjectorKindMask = 0;
  uint64_t TaskFaultSeed = 0;
};

/// Hashes one compile's full identity into its cache key.
CompileCacheKey
computeCompileCacheKey(const std::string &PristineIR,
                       const std::vector<std::vector<int64_t>> &TrainInputs,
                       const std::vector<std::vector<int64_t>> &EvalInputs,
                       const CompileCacheFingerprint &FP);

/// The canonical printing the cache hashes and replays for \p F: the
/// module's class table followed by printFunction(F). The printer renames
/// values and blocks sequentially in print order, so structurally
/// identical functions print — and therefore hash — identically.
std::string printCacheableUnit(const Module *M, const Function *F);

/// One memoized compile: everything a hit must replay for the warm run to
/// be observably identical to the cold one (modulo wall-clock timing and
/// the cache.* counters themselves).
struct CompileCacheEntry {
  uint64_t CodeSize = 0;
  unsigned Duplications = 0;
  DegradationLevel Degradation = DegradationLevel::None;
  uint64_t DynamicCycles = 0;
  uint64_t ResultHash = 0;
  /// Fault-injection sites the cold compile visited (absorbed into the
  /// base injector at join so summary lines match cold runs; injected
  /// faults imply rollbacks, which make a compile ineligible, so the
  /// fault count of a stored entry is always zero).
  unsigned FaultSites = 0;
  SimAuditCounts Audit;
  /// The decision-log slice, exactly as recorded (doubles round-trip by
  /// bit pattern, so replayed JSONL remarks are byte-identical).
  std::vector<DuplicationDecision> Decisions;
  /// Telemetry-counter deltas of the compile, by qualified name. The
  /// cache.* component is excluded by construction — hit/miss accounting
  /// is the one documented divergence between warm and cold runs.
  std::vector<CounterSample> Counters;
  /// Deterministic-class histogram records of the compile (Timing-class
  /// histograms are wall-clock and never replayed).
  struct HistogramState {
    std::string Component;
    std::string Name;
    MetricUnit Unit = MetricUnit::Count;
    MetricClass Class = MetricClass::Deterministic;
    Histogram H;
  };
  std::vector<HistogramState> Histograms;
  /// Optimized IR as a parseable unit (class table + canonical function
  /// printing).
  std::string OptimizedIR;
};

/// Serializes \p E to the versioned on-disk text format ("dbds-compile-
/// cache v1"): a header line, key line, field lines with length-prefixed
/// raw blocks (doubles as hex bit patterns — JSON numbers are lossy for
/// them), and a trailing FNV-64 checksum line.
std::string serializeCacheEntry(const CompileCacheKey &Key,
                                const CompileCacheEntry &E);

/// Parses \p Text back into \p Out. Returns false — the fail-open miss —
/// on version mismatch, checksum mismatch, truncation, malformed fields,
/// or a key line that does not match \p Expect.
bool parseCacheEntry(const std::string &Text, const CompileCacheKey &Expect,
                     CompileCacheEntry &Out);

/// A hit, resolved against the live process: parsed module + function,
/// counter pointers, histogram pointers. Resolution happens *before* the
/// caller mutates anything, so an unresolvable entry degrades to a miss
/// with the cold path untouched.
struct PreparedReplay {
  std::unique_ptr<Module> Mod;
  Function *Fn = nullptr;
  std::vector<std::pair<TelemetryCounter *, uint64_t>> Counters;
  std::vector<std::pair<TelemetryHistogram *, Histogram>> Histograms;
};

/// Resolves \p E for replay. False (fail-open) when the IR does not parse
/// back, the function is missing, or a counter name is unknown to this
/// process.
bool prepareReplay(const CompileCacheEntry &E, PreparedReplay &R);

/// The cache: sharded in-memory map plus an optional on-disk directory
/// (one file per key, named by the hex digest). Probes are thread-safe
/// and lock only the key's shard; inserts must be serial (the compile
/// service's join) and evict in global FIFO insertion order — which is
/// deterministic precisely because inserts are serial and index-ordered.
class CompileCache {
public:
  static constexpr size_t DefaultMaxEntries = 1u << 16;

  explicit CompileCache(std::string CacheDir = "",
                        size_t MaxEntries = DefaultMaxEntries);

  /// Looks \p Key up in memory, then (on miss, when a directory is
  /// configured) on disk. Returns null on miss or on any load failure.
  /// Does not touch hit/miss counters — the caller decides the outcome
  /// after attempting replay (a hit that fails to replay is a miss).
  std::shared_ptr<const CompileCacheEntry> probe(const CompileCacheKey &Key);

  /// Inserts a freshly compiled entry (first insert wins; a duplicate key
  /// is dropped so intra-batch duplicates converge on the index-earliest
  /// task's entry). Writes the on-disk file when a directory is
  /// configured. Must be called serially.
  void insert(const CompileCacheKey &Key, CompileCacheEntry E);

  /// Entries currently held in memory.
  size_t size() const;

  const std::string &dir() const { return CacheDir; }
  size_t maxEntries() const { return MaxEntries; }

  /// The on-disk path for \p Key ("" when no directory is configured).
  std::string entryPath(const CompileCacheKey &Key) const;

  /// Bump the schedule-independent probe-outcome counters (cache.hit /
  /// cache.miss) — routed through the calling thread's CounterShard like
  /// every in-task counter, so they publish at the index-ordered join.
  static void countHit();
  static void countMiss();

private:
  static constexpr unsigned NumShards = 16;

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<std::string, std::shared_ptr<const CompileCacheEntry>>
        Map;
  };

  Shard &shardFor(const CompileCacheKey &Key) {
    return Shards[Key.Lo % NumShards];
  }

  std::string CacheDir;
  size_t MaxEntries;
  std::array<Shard, NumShards> Shards;
  /// Global FIFO of inserted keys (hex), touched only by the serial
  /// insert path; evictions pop from the front.
  std::deque<std::string> InsertionOrder;
  size_t Size = 0;
  mutable std::mutex SizeMu;
};

} // namespace dbds

#endif // DBDS_WORKLOADS_COMPILECACHE_H
