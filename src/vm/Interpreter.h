//===- vm/Interpreter.h - IR interpreter with cycle accounting --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate standing in for the paper's hardware testbed
/// (DESIGN.md §2): a direct IR interpreter that (a) produces the program's
/// observable result — the correctness oracle for every optimization —
/// and (b) accumulates the static cost model's cycle estimate for every
/// executed instruction, which is the reproduction's "peak performance"
/// metric (fewer dynamic cycles = faster machine code), and (c) collects
/// the branch/block profiles that feed DBDS's probability term (the role
/// HotSpot profiling plays in §5.3).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_VM_INTERPRETER_H
#define DBDS_VM_INTERPRETER_H

#include "ir/Function.h"
#include "support/ArrayRef.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace dbds {

class CancellationToken;

/// A runtime value: a 64-bit integer, or an object reference (heap index,
/// -1 for null).
struct RuntimeValue {
  int64_t Scalar = 0;
  bool IsObject = false;

  static RuntimeValue ofInt(int64_t V) { return {V, false}; }
  static RuntimeValue null() { return {-1, true}; }
  static RuntimeValue object(int64_t HeapIndex) { return {HeapIndex, true}; }

  bool isNull() const { return IsObject && Scalar < 0; }
};

/// Branch and block execution counts from one or more runs.
struct ProfileSummary {
  /// Per-If (taken, total) counts.
  std::unordered_map<const Instruction *, std::pair<uint64_t, uint64_t>>
      IfCounts;
  /// Per-block execution counts.
  std::unordered_map<const Block *, uint64_t> BlockCounts;
};

/// Writes profiled probabilities back into the IR: each profiled IfInst's
/// true-probability becomes taken/total (untouched when never executed).
/// This mirrors HotSpot profile injection (§5.3).
void applyProfile(Function &F, const ProfileSummary &Profile);

/// Outcome of one interpretation.
struct ExecutionResult {
  bool Ok = false;            ///< False on fuel exhaustion or missing ret.
  RuntimeValue Result;        ///< Return value (undefined for void ret).
  bool HasResult = false;     ///< True when the program returned a value.
  uint64_t DynamicCycles = 0; ///< Cost-model cycles of executed code.
  uint64_t Steps = 0;         ///< Instructions executed.
  /// True when an installed cancellation token stopped the run early (Ok
  /// stays false). Distinct from fuel exhaustion: an interrupted run says
  /// nothing about the program, only that the task was cancelled.
  bool Interrupted = false;
};

/// Observes every value an instruction produces during interpretation
/// (phi commits included). Drivers use this to build the observation maps
/// the stamp-soundness lint rule cross-checks stamps against (irlint
/// --dynamic); see analysis/Lint.h.
using ValueObserver =
    std::function<void(const Instruction *, const RuntimeValue &)>;

/// Interprets functions of one module. Owns a heap that persists across
/// run() calls until reset() — callers preparing object arguments allocate
/// first, then run.
class Interpreter {
public:
  explicit Interpreter(const Module &M) : M(M) {}

  /// Installs \p O to be called with every produced value (pass an empty
  /// function to remove). Observation slows interpretation; leave unset
  /// outside lint/debug drivers.
  void setObserver(ValueObserver O) { Observer = std::move(O); }

  /// Enables the instruction-cache pressure model: every block transition
  /// costs extra cycles once the compilation unit's code size exceeds
  /// \p Threshold, growing by one cycle per \p Step beyond it (capped at
  /// \p Cap). This models the effect behind the paper's §6.2 observation
  /// that duplicating everything can *reduce* peak performance (octane
  /// raytrace, -15% under dupalot): code growth is not free on real
  /// hardware. Off by default so the pure cost model stays monotone.
  void enableCodeSizePenalty(uint64_t Threshold = 256, uint64_t Step = 64,
                             uint64_t Cap = 6) {
    PenaltyThreshold = Threshold;
    PenaltyStep = Step;
    PenaltyCap = Cap;
    PenaltyEnabled = true;
  }

  /// Installs a cooperative cancellation token (not owned; null to
  /// remove). Polled every few block transitions; a fired token ends the
  /// run with Interrupted set.
  void setCancellation(CancellationToken *C) { Cancel = C; }

  /// Sets the cancellation poll stride to every \p N block transitions
  /// (power of two; default 128). Exposed as --poll-mask on the figure
  /// drivers so the overhead the interpreter.poll_ns histogram measures
  /// can be tuned; 128 stays the default while that overhead is <1% of
  /// run time.
  void setPollInterval(uint32_t N) {
    assert(N != 0 && (N & (N - 1)) == 0 &&
           "poll interval must be a power of two");
    PollMask = N - 1;
  }

  /// Discards all heap objects.
  void reset() { Heap.clear(); }

  /// Allocates an object of class \p ClassId (fields zeroed) and returns
  /// its reference.
  RuntimeValue allocate(unsigned ClassId);

  /// Reads a field of \p Object (test/example convenience).
  int64_t readField(RuntimeValue Object, unsigned Field) const;

  /// Writes a field of \p Object (test/example convenience).
  void writeField(RuntimeValue Object, unsigned Field, int64_t Value);

  /// Runs \p F on \p Args. Execution stops unsuccessfully after \p Fuel
  /// instructions. When \p Profile is non-null, branch/block counts are
  /// accumulated into it.
  ExecutionResult run(Function &F, ArrayRef<RuntimeValue> Args,
                      uint64_t Fuel = 1u << 22,
                      ProfileSummary *Profile = nullptr);

  /// Convenience overload for integer-only argument lists.
  ExecutionResult run(Function &F, ArrayRef<int64_t> Args,
                      uint64_t Fuel = 1u << 22,
                      ProfileSummary *Profile = nullptr);

private:
  ExecutionResult execute(Function &F, ArrayRef<RuntimeValue> Args,
                          uint64_t &FuelRemaining, ProfileSummary *Profile,
                          unsigned Depth);

  struct HeapObject {
    unsigned ClassId;
    std::vector<RuntimeValue> Fields;
  };

  HeapObject &objectAt(const RuntimeValue &Ref);
  const HeapObject &objectAt(const RuntimeValue &Ref) const;

  const Module &M;
  ValueObserver Observer;
  CancellationToken *Cancel = nullptr;
  uint32_t PollMask = 127;
  /// Steps-between-checkpoint samples buffered during a run; published to
  /// the deterministic steps_per_checkpoint histogram only when the run
  /// completes uninterrupted — an interrupted run's sample count depends
  /// on cancellation timing, which is schedule-dependent.
  std::vector<uint64_t> PendingCheckpointSteps;
  std::vector<HeapObject> Heap;
  bool PenaltyEnabled = false;
  uint64_t PenaltyThreshold = 256;
  uint64_t PenaltyStep = 64;
  uint64_t PenaltyCap = 6;
};

} // namespace dbds

#endif // DBDS_VM_INTERPRETER_H
