//===- vm/Interpreter.cpp - IR interpreter with cycle accounting ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "ir/Semantics.h"
#include "support/Cancellation.h"
#include "support/Timer.h"
#include "telemetry/Counters.h"
#include "telemetry/Json.h"
#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"

using namespace dbds;

DBDS_COUNTER(interpreter, runs);
DBDS_COUNTER(interpreter, instructions_executed);

// Poll-overhead instrumentation (ROADMAP: tune the 128-step checkpoint
// stride with data). poll_ns is wall-clock and so Timing-class;
// steps_per_checkpoint and run_steps depend only on what the program
// executed, so they are part of the deterministic metrics contract.
DBDS_HISTOGRAM(interpreter, poll_ns, Nanoseconds, Timing);
DBDS_HISTOGRAM(interpreter, steps_per_checkpoint, Count, Deterministic);
DBDS_HISTOGRAM(interpreter, run_steps, Count, Deterministic);

void dbds::applyProfile(Function &F, const ProfileSummary &Profile) {
  for (Block *B : F.blocks()) {
    auto *If = dyn_cast_if_present<IfInst>(B->getTerminator());
    if (!If)
      continue;
    auto It = Profile.IfCounts.find(If);
    if (It == Profile.IfCounts.end() || It->second.second == 0)
      continue;
    double P = static_cast<double>(It->second.first) /
               static_cast<double>(It->second.second);
    If->setTrueProbability(P);
  }
}

RuntimeValue Interpreter::allocate(unsigned ClassId) {
  HeapObject Obj;
  Obj.ClassId = ClassId;
  Obj.Fields.assign(M.getClass(ClassId).NumFields, RuntimeValue::ofInt(0));
  Heap.push_back(std::move(Obj));
  return RuntimeValue::object(static_cast<int64_t>(Heap.size() - 1));
}

Interpreter::HeapObject &Interpreter::objectAt(const RuntimeValue &Ref) {
  assert(Ref.IsObject && !Ref.isNull() && "dereferencing a non-object");
  assert(static_cast<size_t>(Ref.Scalar) < Heap.size() &&
         "dangling object reference");
  return Heap[static_cast<size_t>(Ref.Scalar)];
}

const Interpreter::HeapObject &
Interpreter::objectAt(const RuntimeValue &Ref) const {
  return const_cast<Interpreter *>(this)->objectAt(Ref);
}

int64_t Interpreter::readField(RuntimeValue Object, unsigned Field) const {
  const HeapObject &Obj = objectAt(Object);
  assert(Field < Obj.Fields.size() && "field index out of range");
  return Obj.Fields[Field].Scalar;
}

void Interpreter::writeField(RuntimeValue Object, unsigned Field,
                             int64_t Value) {
  HeapObject &Obj = objectAt(Object);
  assert(Field < Obj.Fields.size() && "field index out of range");
  Obj.Fields[Field] = RuntimeValue::ofInt(Value);
}

ExecutionResult Interpreter::run(Function &F, ArrayRef<int64_t> Args,
                                 uint64_t Fuel, ProfileSummary *Profile) {
  SmallVector<RuntimeValue, 8> Wrapped;
  for (int64_t A : Args)
    Wrapped.push_back(RuntimeValue::ofInt(A));
  return run(F, ArrayRef<RuntimeValue>(Wrapped.begin(), Wrapped.size()),
             Fuel, Profile);
}

ExecutionResult Interpreter::run(Function &F, ArrayRef<RuntimeValue> Args,
                                 uint64_t Fuel, ProfileSummary *Profile) {
  // One span per interpretation; the profile flag distinguishes training
  // runs (feeding DBDS probabilities, §5.3) from measurement runs.
  TraceSession *TS = TraceSession::active();
  TraceSpan RunSpan(TS, "interpret", "vm",
                    TS ? "\"function\":" + jsonString(F.getName()) +
                             ",\"profiled\":" + jsonBool(Profile != nullptr)
                       : std::string());
  ++runs;
  uint64_t FuelRemaining = Fuel;
  PendingCheckpointSteps.clear();
  ExecutionResult Result = execute(F, Args, FuelRemaining, Profile,
                                   /*Depth=*/0);
  instructions_executed += Result.Steps;
  // Interrupted runs' step counts — and how many checkpoint strides they
  // got through — depend on cancellation timing, which is schedule-
  // dependent; keep both out of the deterministic histograms. execute()
  // buffers the stride samples so this decision can be made after the
  // run's fate is known.
  if (!Result.Interrupted) {
    run_steps.record(Result.Steps);
    for (uint64_t Steps : PendingCheckpointSteps)
      steps_per_checkpoint.record(Steps);
  }
  PendingCheckpointSteps.clear();
  return Result;
}

ExecutionResult Interpreter::execute(Function &F, ArrayRef<RuntimeValue> Args,
                                     uint64_t &FuelRemaining,
                                     ProfileSummary *Profile,
                                     unsigned Depth) {
  assert(Args.size() == F.getNumParams() && "argument count mismatch");
  ExecutionResult Result;
  if (Depth > 64)
    return Result; // runaway recursion: fail like fuel exhaustion
  std::vector<RuntimeValue> Regs(F.getMaxInstId());

  uint64_t BlockPenalty = 0;
  if (PenaltyEnabled) {
    uint64_t Size = F.estimatedCodeSize();
    if (Size > PenaltyThreshold) {
      BlockPenalty = (Size - PenaltyThreshold + PenaltyStep - 1) / PenaltyStep;
      BlockPenalty = BlockPenalty > PenaltyCap ? PenaltyCap : BlockPenalty;
    }
  }

  Block *Current = F.getEntry();
  Block *Previous = nullptr;
  unsigned Polls = 0;
  uint64_t StepsAtLastPoll = 0;
  while (true) {
    // Cancellation guard, strided so the wall-clock poll stays off the hot
    // path: every PollMask+1 block transitions (default 128, see
    // setPollInterval; plus whenever the flag is already visibly set), end
    // the run with Interrupted. Ok stays false; an interrupted run's
    // partial cycles/steps are discarded by the caller.
    if (Cancel && (((++Polls & PollMask) == 0) || Cancel->cancelled())) {
      bool Fired;
      if (MetricsRegistry::enabled()) {
        // Strided polls happen at deterministic execution points, so the
        // steps-between-checkpoints distribution is deterministic — but
        // only over runs that finish: buffer the samples and let run()
        // publish them if the run completes uninterrupted. The poll's own
        // cost is wall clock and Timing-class, recorded immediately.
        if ((Polls & PollMask) == 0) {
          PendingCheckpointSteps.push_back(Result.Steps - StepsAtLastPoll);
          StepsAtLastPoll = Result.Steps;
        }
        uint64_t T0 = Timer::nowNs();
        Fired = Cancel->checkpoint();
        poll_ns.record(Timer::nowNs() - T0);
      } else {
        Fired = Cancel->checkpoint();
      }
      if (Fired) {
        Result.Interrupted = true;
        return Result;
      }
    }
    Result.DynamicCycles += BlockPenalty;
    if (Profile)
      ++Profile->BlockCounts[Current];

    // Phis first, in parallel (all read old values, then all commit).
    auto Phis = Current->phis();
    if (!Phis.empty()) {
      assert(Previous && "phi in entry block");
      unsigned PredIdx = Current->indexOfPred(Previous);
      SmallVector<RuntimeValue, 4> Incoming;
      for (PhiInst *Phi : Phis)
        Incoming.push_back(Regs[Phi->getInput(PredIdx)->getId()]);
      for (unsigned I = 0; I != Phis.size(); ++I)
        Regs[Phis[I]->getId()] = Incoming[I];
      if (Observer)
        for (PhiInst *Phi : Phis)
          Observer(Phi, Regs[Phi->getId()]);
    }

    for (Instruction *I : *Current) {
      if (isa<PhiInst>(I))
        continue;
      if (FuelRemaining == 0)
        return Result; // Ok stays false: ran out of fuel
      --FuelRemaining;
      ++Result.Steps;
      Result.DynamicCycles += I->estimatedCycles();

      auto reg = [&Regs](Instruction *V) -> RuntimeValue & {
        return Regs[V->getId()];
      };

      switch (I->getOpcode()) {
      case Opcode::Constant: {
        auto *C = cast<ConstantInst>(I);
        reg(I) = C->isNull() ? RuntimeValue::null()
                             : RuntimeValue::ofInt(C->getValue());
        break;
      }
      case Opcode::Param:
        reg(I) = Args[cast<ParamInst>(I)->getIndex()];
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        reg(I) = RuntimeValue::ofInt(evalBinary(I->getOpcode(),
                                                reg(I->getOperand(0)).Scalar,
                                                reg(I->getOperand(1)).Scalar));
        break;
      case Opcode::Neg:
      case Opcode::Not:
        reg(I) = RuntimeValue::ofInt(
            evalUnary(I->getOpcode(), reg(I->getOperand(0)).Scalar));
        break;
      case Opcode::Cmp: {
        auto *Cmp = cast<CompareInst>(I);
        RuntimeValue L = reg(Cmp->getLHS());
        RuntimeValue R = reg(Cmp->getRHS());
        // Object comparison is identity; null is Scalar -1 on both sides.
        reg(I) = RuntimeValue::ofInt(
            evalCompare(Cmp->getPredicate(), L.Scalar, R.Scalar));
        break;
      }
      case Opcode::Phi:
        break; // handled above
      case Opcode::New:
        reg(I) = allocate(cast<NewInst>(I)->getClassId());
        break;
      case Opcode::LoadField: {
        auto *Load = cast<LoadFieldInst>(I);
        HeapObject &Obj = objectAt(reg(Load->getObject()));
        assert(Load->getFieldIndex() < Obj.Fields.size() &&
               "field index out of range");
        reg(I) = Obj.Fields[Load->getFieldIndex()];
        break;
      }
      case Opcode::StoreField: {
        auto *Store = cast<StoreFieldInst>(I);
        HeapObject &Obj = objectAt(reg(Store->getObject()));
        assert(Store->getFieldIndex() < Obj.Fields.size() &&
               "field index out of range");
        Obj.Fields[Store->getFieldIndex()] = reg(Store->getValue());
        break;
      }
      case Opcode::Call: {
        // Deterministic opaque semantics; object arguments contribute only
        // their nullness so results are stable under optimization.
        auto *Call = cast<CallInst>(I);
        SmallVector<int64_t, 4> CallArgs;
        for (Instruction *Arg : Call->operands()) {
          RuntimeValue V = reg(Arg);
          CallArgs.push_back(V.IsObject ? (V.isNull() ? 0 : 1) : V.Scalar);
        }
        reg(I) = RuntimeValue::ofInt(evalOpaqueCall(
            Call->getCalleeId(), CallArgs.begin(), CallArgs.size()));
        break;
      }
      case Opcode::Invoke: {
        // Direct call: recurse with the shared fuel budget and heap.
        auto *Invoke = cast<InvokeInst>(I);
        Function *Callee = M.getFunction(Invoke->getCalleeName());
        assert(Callee && "invoke of unknown function");
        SmallVector<RuntimeValue, 4> CallArgs;
        for (Instruction *Arg : Invoke->operands())
          CallArgs.push_back(reg(Arg));
        ExecutionResult Sub =
            execute(*Callee, ArrayRef<RuntimeValue>(CallArgs.begin(),
                                                    CallArgs.size()),
                    FuelRemaining, Profile, Depth + 1);
        Result.DynamicCycles += Sub.DynamicCycles;
        Result.Steps += Sub.Steps;
        // Propagate interruption so run() knows this run's metrics are
        // cancellation-timing-dependent even when the token fired inside
        // a callee frame.
        Result.Interrupted |= Sub.Interrupted;
        if (!Sub.Ok)
          return Result; // propagate fuel exhaustion / runaway recursion
        reg(I) = Sub.HasResult ? Sub.Result : RuntimeValue::ofInt(0);
        break;
      }
      case Opcode::If: {
        auto *If = cast<IfInst>(I);
        bool Taken = reg(If->getCondition()).Scalar != 0;
        if (Profile) {
          auto &Counts = Profile->IfCounts[If];
          Counts.first += Taken ? 1 : 0;
          ++Counts.second;
        }
        Previous = Current;
        Current = Taken ? If->getTrueSucc() : If->getFalseSucc();
        break;
      }
      case Opcode::Jump:
        Previous = Current;
        Current = cast<JumpInst>(I)->getTarget();
        break;
      case Opcode::Return: {
        auto *Ret = cast<ReturnInst>(I);
        Result.Ok = true;
        if (Ret->hasValue()) {
          Result.HasResult = true;
          Result.Result = reg(Ret->getValue());
        }
        return Result;
      }
      }
      if (Observer && I->getType() != Type::Void)
        Observer(I, Regs[I->getId()]);
      if (I->isTerminator())
        break; // proceed to the next block
    }
  }
}
