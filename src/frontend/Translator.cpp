//===- frontend/Translator.cpp - Bytecode to SSA IR ------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Translator.h"

#include "ir/IRBuilder.h"

#include <optional>
#include <set>
#include <unordered_map>

using namespace dbds;

namespace {

/// The abstract machine state at a program point: SSA values for every
/// local and operand-stack slot.
struct AbstractState {
  std::vector<Instruction *> Locals;
  std::vector<Instruction *> Stack;
};

class FunctionTranslator {
public:
  FunctionTranslator(const BytecodeFunction &BC, Function &F)
      : BC(BC), F(F), Builder(F) {}

  std::string run();

private:
  struct BcBlock {
    size_t Start = 0;       ///< First bytecode index.
    Block *IR = nullptr;    ///< The IR block.
    bool EntrySealed = false; ///< Phis created (first edge seen).
    std::vector<PhiInst *> LocalPhis;
    std::vector<PhiInst *> StackPhis;
  };

  std::string fail(size_t BcIdx, const std::string &Message) {
    return "function " + BC.Name + " at bytecode " + std::to_string(BcIdx) +
           ": " + Message;
  }

  /// Emits an edge into \p Target carrying \p State: creates the target's
  /// entry phis on first arrival, then appends one input per phi. Must be
  /// called exactly when the corresponding IR edge is added (so phi input
  /// order matches predecessor order).
  std::string emitEdge(BcBlock &Target, const AbstractState &State,
                       size_t FromIdx) {
    if (!Target.EntrySealed) {
      Target.EntrySealed = true;
      for (Instruction *L : State.Locals) {
        auto *Phi = F.create<PhiInst>(L->getType());
        Target.IR->insertPhi(Phi);
        Target.LocalPhis.push_back(Phi);
      }
      for (Instruction *S : State.Stack) {
        auto *Phi = F.create<PhiInst>(S->getType());
        Target.IR->insertPhi(Phi);
        Target.StackPhis.push_back(Phi);
      }
    }
    if (State.Stack.size() != Target.StackPhis.size())
      return fail(FromIdx, "inconsistent stack depth at join (" +
                               std::to_string(State.Stack.size()) + " vs " +
                               std::to_string(Target.StackPhis.size()) + ")");
    for (unsigned I = 0; I != State.Locals.size(); ++I) {
      if (State.Locals[I]->getType() != Target.LocalPhis[I]->getType())
        return fail(FromIdx, "type-incompatible join for local " +
                                 std::to_string(I));
      Target.LocalPhis[I]->appendInput(State.Locals[I]);
    }
    for (unsigned I = 0; I != State.Stack.size(); ++I) {
      if (State.Stack[I]->getType() != Target.StackPhis[I]->getType())
        return fail(FromIdx, "type-incompatible join for stack slot " +
                                 std::to_string(I));
      Target.StackPhis[I]->appendInput(State.Stack[I]);
    }
    return "";
  }

  const BytecodeFunction &BC;
  Function &F;
  IRBuilder Builder;
  std::unordered_map<size_t, BcBlock> Blocks; // leader index -> block
};

std::string FunctionTranslator::run() {
  const auto &Code = BC.Code;
  if (Code.empty())
    return "function " + BC.Name + ": empty code";

  // ---- Leaders: branch targets and fall-through points. -----------------
  auto isBranch = [](BcOpcode Op) {
    return Op == BcOpcode::Goto || Op == BcOpcode::BrTrue ||
           Op == BcOpcode::BrFalse;
  };
  auto isTerminatorOp = [&](BcOpcode Op) {
    return isBranch(Op) || Op == BcOpcode::Ret || Op == BcOpcode::RetVoid;
  };
  std::set<size_t> Leaders{0};
  for (size_t I = 0; I != Code.size(); ++I) {
    if (isBranch(Code[I].Op)) {
      size_t Target = static_cast<size_t>(Code[I].A);
      if (Target >= Code.size())
        return fail(I, "branch target out of range");
      Leaders.insert(Target);
      if (I + 1 < Code.size())
        Leaders.insert(I + 1);
    }
    if ((Code[I].Op == BcOpcode::Ret || Code[I].Op == BcOpcode::RetVoid) &&
        I + 1 < Code.size())
      Leaders.insert(I + 1);
  }

  // ---- Reachability over bytecode blocks. --------------------------------
  auto blockEnd = [&](size_t Start) {
    auto Next = Leaders.upper_bound(Start);
    return Next == Leaders.end() ? Code.size() : *Next;
  };
  std::set<size_t> Reachable;
  std::vector<size_t> Worklist{0};
  while (!Worklist.empty()) {
    size_t Start = Worklist.back();
    Worklist.pop_back();
    if (!Reachable.insert(Start).second)
      continue;
    size_t End = blockEnd(Start);
    const BcInst &Last = Code[End - 1];
    if (isBranch(Last.Op)) {
      Worklist.push_back(static_cast<size_t>(Last.A));
      if (Last.Op != BcOpcode::Goto) {
        if (End >= Code.size())
          return fail(End - 1, "conditional branch falls off the end");
        Worklist.push_back(End);
      }
    } else if (Last.Op != BcOpcode::Ret && Last.Op != BcOpcode::RetVoid) {
      if (End >= Code.size())
        return fail(End - 1, "execution falls off the end of the code");
      Worklist.push_back(End); // plain fall-through
    }
  }

  // ---- IR skeleton: synthetic entry + one block per reachable leader. ----
  Block *Entry = F.createBlock();
  for (size_t Start : Reachable) {
    BcBlock B;
    B.Start = Start;
    B.IR = F.createBlock();
    Blocks.emplace(Start, std::move(B));
  }

  // Entry: parameters and zero-initialized spare locals.
  Builder.setBlock(Entry);
  AbstractState EntryState;
  for (unsigned I = 0; I != BC.NumParams; ++I)
    EntryState.Locals.push_back(Builder.param(I));
  for (unsigned I = BC.NumParams; I != BC.NumLocals; ++I)
    EntryState.Locals.push_back(Builder.constInt(0));
  {
    BcBlock &First = Blocks.at(0);
    if (std::string Error = emitEdge(First, EntryState, 0); !Error.empty())
      return Error;
    Builder.jump(First.IR);
  }

  // ---- Translate each reachable block (iteration order is irrelevant:
  // phi inputs are appended at edge-emission time). -----------------------
  for (size_t Start : Reachable) {
    BcBlock &B = Blocks.at(Start);
    Builder.setBlock(B.IR);
    AbstractState State;
    State.Locals.assign(B.LocalPhis.begin(), B.LocalPhis.end());
    State.Stack.assign(B.StackPhis.begin(), B.StackPhis.end());

    auto pop = [&]() -> Instruction * {
      if (State.Stack.empty())
        return nullptr;
      Instruction *V = State.Stack.back();
      State.Stack.pop_back();
      return V;
    };

    size_t End = blockEnd(Start);
    for (size_t Idx = Start; Idx != End; ++Idx) {
      const BcInst &I = Code[Idx];
      switch (I.Op) {
      case BcOpcode::Iconst:
        State.Stack.push_back(Builder.constInt(I.A));
        break;
      case BcOpcode::Null:
        State.Stack.push_back(Builder.constNull());
        break;
      case BcOpcode::Load:
        if (static_cast<size_t>(I.A) >= State.Locals.size())
          return fail(Idx, "local index out of range");
        State.Stack.push_back(State.Locals[static_cast<size_t>(I.A)]);
        break;
      case BcOpcode::Store: {
        Instruction *V = pop();
        if (!V)
          return fail(Idx, "stack underflow");
        if (static_cast<size_t>(I.A) >= State.Locals.size())
          return fail(Idx, "local index out of range");
        State.Locals[static_cast<size_t>(I.A)] = V;
        break;
      }
      case BcOpcode::Dup: {
        if (State.Stack.empty())
          return fail(Idx, "stack underflow");
        State.Stack.push_back(State.Stack.back());
        break;
      }
      case BcOpcode::Pop:
        if (!pop())
          return fail(Idx, "stack underflow");
        break;
      case BcOpcode::Swap: {
        Instruction *A = pop(), *B2 = pop();
        if (!A || !B2)
          return fail(Idx, "stack underflow");
        State.Stack.push_back(A);
        State.Stack.push_back(B2);
        break;
      }
      case BcOpcode::Add:
      case BcOpcode::Sub:
      case BcOpcode::Mul:
      case BcOpcode::Div:
      case BcOpcode::Rem:
      case BcOpcode::And:
      case BcOpcode::Or:
      case BcOpcode::Xor:
      case BcOpcode::Shl:
      case BcOpcode::Shr: {
        Instruction *RHS = pop(), *LHS = pop();
        if (!RHS || !LHS)
          return fail(Idx, "stack underflow");
        if (LHS->getType() != Type::Int || RHS->getType() != Type::Int)
          return fail(Idx, "arithmetic on a reference");
        static const Opcode Map[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                     Opcode::Div, Opcode::Rem, Opcode::And,
                                     Opcode::Or,  Opcode::Xor, Opcode::Shl,
                                     Opcode::Shr};
        Opcode IrOp = Map[static_cast<unsigned>(I.Op) -
                          static_cast<unsigned>(BcOpcode::Add)];
        State.Stack.push_back(Builder.binary(IrOp, LHS, RHS));
        break;
      }
      case BcOpcode::Neg:
      case BcOpcode::Not: {
        Instruction *V = pop();
        if (!V)
          return fail(Idx, "stack underflow");
        if (V->getType() != Type::Int)
          return fail(Idx, "arithmetic on a reference");
        auto *U = F.create<UnaryInst>(
            I.Op == BcOpcode::Neg ? Opcode::Neg : Opcode::Not, V);
        B.IR->append(U);
        State.Stack.push_back(U);
        break;
      }
      case BcOpcode::Cmp: {
        Instruction *RHS = pop(), *LHS = pop();
        if (!RHS || !LHS)
          return fail(Idx, "stack underflow");
        if (LHS->getType() != RHS->getType())
          return fail(Idx, "comparison of mixed types");
        State.Stack.push_back(
            Builder.cmp(static_cast<Predicate>(I.A), LHS, RHS));
        break;
      }
      case BcOpcode::New:
        State.Stack.push_back(
            Builder.newObject(static_cast<unsigned>(I.A)));
        break;
      case BcOpcode::GetField: {
        Instruction *Ref = pop();
        if (!Ref)
          return fail(Idx, "stack underflow");
        if (Ref->getType() != Type::Obj)
          return fail(Idx, "getfield on a non-reference");
        State.Stack.push_back(
            Builder.load(Ref, static_cast<unsigned>(I.A)));
        break;
      }
      case BcOpcode::PutField: {
        Instruction *V = pop(), *Ref = pop();
        if (!V || !Ref)
          return fail(Idx, "stack underflow");
        if (Ref->getType() != Type::Obj)
          return fail(Idx, "putfield on a non-reference");
        Builder.store(Ref, static_cast<unsigned>(I.A), V);
        break;
      }
      case BcOpcode::Call: {
        SmallVector<Instruction *, 4> Args;
        for (int64_t N = 0; N != I.B; ++N) {
          Instruction *V = pop();
          if (!V)
            return fail(Idx, "stack underflow");
          Args.push_back(V);
        }
        // Arguments were pushed left to right; restore that order.
        SmallVector<Instruction *, 4> Ordered;
        for (auto It = Args.end(); It != Args.begin();)
          Ordered.push_back(*--It);
        State.Stack.push_back(Builder.call(
            static_cast<unsigned>(I.A),
            ArrayRef<Instruction *>(Ordered.begin(), Ordered.size())));
        break;
      }
      case BcOpcode::InvokeFn: {
        SmallVector<Instruction *, 4> Args;
        for (int64_t N = 0; N != I.B; ++N) {
          Instruction *V = pop();
          if (!V)
            return fail(Idx, "stack underflow");
          Args.push_back(V);
        }
        SmallVector<Instruction *, 4> Ordered;
        for (auto It = Args.end(); It != Args.begin();)
          Ordered.push_back(*--It);
        auto *Invoke = F.create<InvokeInst>(
            I.Name, ArrayRef<Instruction *>(Ordered.begin(),
                                            Ordered.size()));
        B.IR->append(Invoke);
        State.Stack.push_back(Invoke);
        break;
      }
      case BcOpcode::Goto: {
        BcBlock &Target = Blocks.at(static_cast<size_t>(I.A));
        if (std::string E = emitEdge(Target, State, Idx); !E.empty())
          return E;
        Builder.jump(Target.IR);
        break;
      }
      case BcOpcode::BrTrue:
      case BcOpcode::BrFalse: {
        Instruction *Cond = pop();
        if (!Cond)
          return fail(Idx, "stack underflow");
        if (Cond->getType() != Type::Int)
          return fail(Idx, "branch on a reference");
        BcBlock &Target = Blocks.at(static_cast<size_t>(I.A));
        BcBlock &Fall = Blocks.at(End);
        Block *TrueIR = I.Op == BcOpcode::BrTrue ? Target.IR : Fall.IR;
        Block *FalseIR = I.Op == BcOpcode::BrTrue ? Fall.IR : Target.IR;
        if (TrueIR == FalseIR)
          return fail(Idx, "conditional branch with equal targets (use "
                           "goto)");
        // Edge emission order must match Builder.branch's pred appends:
        // true successor first.
        BcBlock &FirstEdge = I.Op == BcOpcode::BrTrue ? Target : Fall;
        BcBlock &SecondEdge = I.Op == BcOpcode::BrTrue ? Fall : Target;
        if (std::string E = emitEdge(FirstEdge, State, Idx); !E.empty())
          return E;
        if (std::string E = emitEdge(SecondEdge, State, Idx); !E.empty())
          return E;
        Builder.branch(Cond, TrueIR, FalseIR, 0.5);
        break;
      }
      case BcOpcode::Ret: {
        Instruction *V = pop();
        if (!V)
          return fail(Idx, "stack underflow");
        Builder.ret(V);
        break;
      }
      case BcOpcode::RetVoid:
        Builder.ret(nullptr);
        break;
      }
      if (isTerminatorOp(I.Op))
        break;
    }

    // Implicit fall-through into the next leader.
    if (!B.IR->getTerminator()) {
      BcBlock &Fall = Blocks.at(End);
      if (std::string E = emitEdge(Fall, State, End - 1); !E.empty())
        return E;
      Builder.jump(Fall.IR);
    }
  }
  return "";
}

} // namespace

TranslationResult dbds::translateBytecode(const BytecodeModule &BC) {
  TranslationResult Result;
  auto Mod = std::make_unique<Module>();
  for (unsigned ClassId = 0; ClassId != BC.ClassFieldCounts.size();
       ++ClassId)
    Mod->addClass("C" + std::to_string(ClassId),
                  BC.ClassFieldCounts[ClassId]);

  for (const BytecodeFunction &BF : BC.Functions) {
    SmallVector<Type, 4> Params;
    for (unsigned I = 0; I != BF.NumParams; ++I)
      Params.push_back(Type::Int);
    auto F = std::make_unique<Function>(BF.Name, BF.NumParams, Params);
    FunctionTranslator Translator(BF, *F);
    std::string Error = Translator.run();
    if (!Error.empty()) {
      Result.Error = Error;
      return Result;
    }
    Mod->addFunction(std::move(F));
  }
  Result.Mod = std::move(Mod);
  return Result;
}
