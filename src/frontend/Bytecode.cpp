//===- frontend/Bytecode.cpp - Bytecode assembler/disassembler ------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Bytecode.h"

#include "ir/Instruction.h" // predicateName

#include <cctype>
#include <cstdlib>
#include <optional>
#include <unordered_map>

using namespace dbds;

const char *dbds::bcMnemonic(BcOpcode Op) {
  switch (Op) {
  case BcOpcode::Iconst:
    return "iconst";
  case BcOpcode::Null:
    return "null";
  case BcOpcode::Load:
    return "load";
  case BcOpcode::Store:
    return "store";
  case BcOpcode::Dup:
    return "dup";
  case BcOpcode::Pop:
    return "pop";
  case BcOpcode::Swap:
    return "swap";
  case BcOpcode::Add:
    return "add";
  case BcOpcode::Sub:
    return "sub";
  case BcOpcode::Mul:
    return "mul";
  case BcOpcode::Div:
    return "div";
  case BcOpcode::Rem:
    return "rem";
  case BcOpcode::And:
    return "and";
  case BcOpcode::Or:
    return "or";
  case BcOpcode::Xor:
    return "xor";
  case BcOpcode::Shl:
    return "shl";
  case BcOpcode::Shr:
    return "shr";
  case BcOpcode::Neg:
    return "neg";
  case BcOpcode::Not:
    return "not";
  case BcOpcode::Cmp:
    return "cmp";
  case BcOpcode::Goto:
    return "goto";
  case BcOpcode::BrTrue:
    return "brtrue";
  case BcOpcode::BrFalse:
    return "brfalse";
  case BcOpcode::Ret:
    return "ret";
  case BcOpcode::RetVoid:
    return "retvoid";
  case BcOpcode::New:
    return "new";
  case BcOpcode::GetField:
    return "getfield";
  case BcOpcode::PutField:
    return "putfield";
  case BcOpcode::Call:
    return "call";
  case BcOpcode::InvokeFn:
    return "invoke";
  }
  return "?";
}

namespace {

struct Token {
  std::string Text;
  unsigned Line;
};

std::vector<std::vector<Token>> tokenizeLines(const std::string &Source) {
  std::vector<std::vector<Token>> Lines;
  unsigned LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t NL = Source.find('\n', Pos);
    std::string Text = Source.substr(
        Pos, NL == std::string::npos ? std::string::npos : NL - Pos);
    ++LineNo;
    std::vector<Token> Tokens;
    size_t I = 0;
    while (I < Text.size()) {
      char C = Text[I];
      if (isspace(static_cast<unsigned char>(C))) {
        ++I;
        continue;
      }
      if (C == '#')
        break;
      if (C == '{' || C == '}' || C == '(' || C == ')' || C == ':' ||
          C == '=' || C == '@') {
        Tokens.push_back({std::string(1, C), LineNo});
        ++I;
        continue;
      }
      size_t Start = I;
      if (C == '-')
        ++I;
      while (I < Text.size() &&
             (isalnum(static_cast<unsigned char>(Text[I])) ||
              Text[I] == '_' || Text[I] == '-'))
        ++I;
      Tokens.push_back({Text.substr(Start, I - Start), LineNo});
    }
    if (!Tokens.empty())
      Lines.push_back(std::move(Tokens));
    if (NL == std::string::npos)
      break;
    Pos = NL + 1;
  }
  return Lines;
}

std::optional<Predicate> predicateFromName(const std::string &Name) {
  if (Name == "eq")
    return Predicate::EQ;
  if (Name == "ne")
    return Predicate::NE;
  if (Name == "lt")
    return Predicate::LT;
  if (Name == "le")
    return Predicate::LE;
  if (Name == "gt")
    return Predicate::GT;
  if (Name == "ge")
    return Predicate::GE;
  return std::nullopt;
}

} // namespace

BcParseResult dbds::assembleBytecode(const std::string &Source) {
  BcParseResult Result;
  auto Mod = std::make_unique<BytecodeModule>();
  auto fail = [&Result](unsigned Line, const std::string &Message) {
    Result.Error = "line " + std::to_string(Line) + ": " + Message;
    return std::move(Result);
  };

  auto Lines = tokenizeLines(Source);
  size_t LineIdx = 0;
  while (LineIdx < Lines.size()) {
    const auto &L = Lines[LineIdx];
    if (L[0].Text == "class") {
      if (L.size() != 2)
        return fail(L[0].Line, "expected 'class <numfields>'");
      Mod->ClassFieldCounts.push_back(
          static_cast<unsigned>(atoll(L[1].Text.c_str())));
      ++LineIdx;
      continue;
    }
    if (L[0].Text != "bcfunc")
      return fail(L[0].Line, "expected 'class' or 'bcfunc'");

    // bcfunc @ name ( nparams ) locals = n {
    BytecodeFunction F;
    size_t T = 1;
    if (T >= L.size() || L[T].Text != "@")
      return fail(L[0].Line, "expected '@name'");
    ++T;
    if (T >= L.size())
      return fail(L[0].Line, "missing function name");
    F.Name = L[T++].Text;
    if (T + 2 >= L.size() || L[T].Text != "(")
      return fail(L[0].Line, "expected '(<nparams>)'");
    F.NumParams = static_cast<unsigned>(atoll(L[T + 1].Text.c_str()));
    if (L[T + 2].Text != ")")
      return fail(L[0].Line, "expected ')'");
    T += 3;
    F.NumLocals = F.NumParams;
    if (T < L.size() && L[T].Text == "locals") {
      if (T + 2 >= L.size() || L[T + 1].Text != "=")
        return fail(L[0].Line, "expected 'locals=<n>'");
      F.NumLocals = static_cast<unsigned>(atoll(L[T + 2].Text.c_str()));
      T += 3;
    }
    if (F.NumLocals < F.NumParams)
      return fail(L[0].Line, "locals must cover the parameters");
    if (T >= L.size() || L[T].Text != "{")
      return fail(L[0].Line, "expected '{'");
    ++LineIdx;

    // Body: two passes over the lines — collect label offsets, then emit.
    std::unordered_map<std::string, size_t> Labels;
    std::vector<std::pair<size_t, std::string>> Fixups; // code idx, label
    bool Closed = false;
    for (; LineIdx < Lines.size(); ++LineIdx) {
      const auto &BL = Lines[LineIdx];
      if (BL[0].Text == "}") {
        Closed = true;
        ++LineIdx;
        break;
      }
      // Label line: "name :"
      if (BL.size() == 2 && BL[1].Text == ":") {
        if (!Labels.emplace(BL[0].Text, F.Code.size()).second)
          return fail(BL[0].Line, "duplicate label '" + BL[0].Text + "'");
        continue;
      }
      const std::string &Op = BL[0].Text;
      auto intArg = [&](size_t Idx, int64_t &Out) {
        if (Idx >= BL.size())
          return false;
        Out = atoll(BL[Idx].Text.c_str());
        return true;
      };
      BcInst I{BcOpcode::Pop, 0, 0, {}};
      static const std::pair<const char *, BcOpcode> Simple[] = {
          {"dup", BcOpcode::Dup},     {"pop", BcOpcode::Pop},
          {"swap", BcOpcode::Swap},   {"add", BcOpcode::Add},
          {"sub", BcOpcode::Sub},     {"mul", BcOpcode::Mul},
          {"div", BcOpcode::Div},     {"rem", BcOpcode::Rem},
          {"and", BcOpcode::And},     {"or", BcOpcode::Or},
          {"xor", BcOpcode::Xor},     {"shl", BcOpcode::Shl},
          {"shr", BcOpcode::Shr},     {"neg", BcOpcode::Neg},
          {"not", BcOpcode::Not},     {"ret", BcOpcode::Ret},
          {"retvoid", BcOpcode::RetVoid}, {"null", BcOpcode::Null},
      };
      bool Matched = false;
      for (const auto &[Name, Code] : Simple) {
        if (Op == Name) {
          I.Op = Code;
          Matched = true;
          break;
        }
      }
      if (!Matched) {
        if (Op == "iconst" || Op == "load" || Op == "store" || Op == "new" ||
            Op == "getfield" || Op == "putfield") {
          if (!intArg(1, I.A))
            return fail(BL[0].Line, "'" + Op + "' needs an immediate");
          I.Op = Op == "iconst"    ? BcOpcode::Iconst
                 : Op == "load"    ? BcOpcode::Load
                 : Op == "store"   ? BcOpcode::Store
                 : Op == "new"     ? BcOpcode::New
                 : Op == "getfield" ? BcOpcode::GetField
                                    : BcOpcode::PutField;
        } else if (Op == "cmp") {
          if (BL.size() < 2)
            return fail(BL[0].Line, "'cmp' needs a predicate");
          auto Pred = predicateFromName(BL[1].Text);
          if (!Pred)
            return fail(BL[1].Line, "unknown predicate '" + BL[1].Text + "'");
          I.Op = BcOpcode::Cmp;
          I.A = static_cast<int64_t>(*Pred);
        } else if (Op == "goto" || Op == "brtrue" || Op == "brfalse") {
          if (BL.size() < 2)
            return fail(BL[0].Line, "'" + Op + "' needs a label");
          I.Op = Op == "goto"    ? BcOpcode::Goto
                 : Op == "brtrue" ? BcOpcode::BrTrue
                                  : BcOpcode::BrFalse;
          Fixups.push_back({F.Code.size(), BL[1].Text});
        } else if (Op == "call") {
          int64_t Callee, NArgs;
          if (!intArg(1, Callee) || !intArg(2, NArgs))
            return fail(BL[0].Line, "'call' needs <callee> <nargs>");
          I.Op = BcOpcode::Call;
          I.A = Callee;
          I.B = NArgs;
        } else if (Op == "invoke") {
          // invoke @ name <nargs>
          if (BL.size() < 4 || BL[1].Text != "@")
            return fail(BL[0].Line, "'invoke' needs @callee <nargs>");
          I.Op = BcOpcode::InvokeFn;
          I.Name = BL[2].Text;
          I.B = atoll(BL[3].Text.c_str());
        } else {
          return fail(BL[0].Line, "unknown opcode '" + Op + "'");
        }
      }
      F.Code.push_back(I);
    }
    if (!Closed)
      return fail(Lines.back()[0].Line, "missing '}'");
    for (const auto &[CodeIdx, Label] : Fixups) {
      auto It = Labels.find(Label);
      if (It == Labels.end())
        return fail(L[0].Line, "undefined label '" + Label + "'");
      F.Code[CodeIdx].A = static_cast<int64_t>(It->second);
    }
    if (F.Code.empty())
      return fail(L[0].Line, "empty bytecode function");
    Mod->Functions.push_back(std::move(F));
  }

  Result.Mod = std::move(Mod);
  return Result;
}

std::string dbds::disassemble(const BytecodeFunction &F) {
  std::string Out = "bcfunc @" + F.Name + "(" + std::to_string(F.NumParams) +
                    ") locals=" + std::to_string(F.NumLocals) + " {\n";
  // Collect branch targets for labels.
  std::unordered_map<size_t, std::string> Labels;
  for (const BcInst &I : F.Code) {
    if (I.Op == BcOpcode::Goto || I.Op == BcOpcode::BrTrue ||
        I.Op == BcOpcode::BrFalse) {
      size_t Target = static_cast<size_t>(I.A);
      if (!Labels.count(Target))
        Labels[Target] = "L" + std::to_string(Labels.size());
    }
  }
  for (size_t Idx = 0; Idx != F.Code.size(); ++Idx) {
    auto LabelIt = Labels.find(Idx);
    if (LabelIt != Labels.end())
      Out += LabelIt->second + ":\n";
    const BcInst &I = F.Code[Idx];
    Out += "  ";
    Out += bcMnemonic(I.Op);
    switch (I.Op) {
    case BcOpcode::Iconst:
    case BcOpcode::Load:
    case BcOpcode::Store:
    case BcOpcode::New:
    case BcOpcode::GetField:
    case BcOpcode::PutField:
      Out += " " + std::to_string(I.A);
      break;
    case BcOpcode::Cmp:
      Out += std::string(" ") +
             predicateName(static_cast<Predicate>(I.A));
      break;
    case BcOpcode::Goto:
    case BcOpcode::BrTrue:
    case BcOpcode::BrFalse:
      Out += " " + Labels.at(static_cast<size_t>(I.A));
      break;
    case BcOpcode::Call:
      Out += " " + std::to_string(I.A) + " " + std::to_string(I.B);
      break;
    case BcOpcode::InvokeFn:
      Out += " @" + I.Name + " " + std::to_string(I.B);
      break;
    default:
      break;
    }
    Out += "\n";
  }
  Out += "}\n";
  return Out;
}
