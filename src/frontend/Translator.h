//===- frontend/Translator.h - Bytecode to SSA IR ---------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds SSA IR from stack bytecode by abstract interpretation of the
/// operand stack and locals (the role of Graal's bytecode parser, paper
/// §5.1): basic blocks at branch targets, one phi per live local and
/// stack slot at every block entry (trivial ones fold in the first
/// canonicalizer run), and structural validation of stack discipline.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_FRONTEND_TRANSLATOR_H
#define DBDS_FRONTEND_TRANSLATOR_H

#include "frontend/Bytecode.h"
#include "ir/Function.h"

#include <memory>
#include <string>

namespace dbds {

/// Outcome of a translation.
struct TranslationResult {
  std::unique_ptr<Module> Mod;
  std::string Error; ///< Empty on success, else "function f: message".

  explicit operator bool() const { return Mod != nullptr; }
};

/// Translates every function of \p BC into a fresh IR module. Fails (with
/// a diagnostic) on malformed bytecode: stack underflow, inconsistent
/// stack depth at a join, type-incompatible joins, falling off the end of
/// the code, or branches to out-of-range targets.
TranslationResult translateBytecode(const BytecodeModule &BC);

} // namespace dbds

#endif // DBDS_FRONTEND_TRANSLATOR_H
