//===- frontend/Bytecode.h - Stack bytecode definition ----------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small stack-based bytecode in the JVM mold — the input language of
/// this substrate's front end, mirroring paper §5.1: "Graal translates
/// Java bytecode to machine code in multiple steps. From the parsed
/// bytecodes Graal IR is generated." Functions are flat instruction lists
/// with label-relative branches, an operand stack, and numbered locals;
/// frontend/Translator.h builds SSA IR from them by abstract
/// interpretation of the stack.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_FRONTEND_BYTECODE_H
#define DBDS_FRONTEND_BYTECODE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dbds {

/// Bytecode opcodes. Stack effects in comments (pops -> pushes).
enum class BcOpcode : uint8_t {
  Iconst, ///< () -> (value); operand A = immediate
  Null,   ///< () -> (null reference)
  Load,   ///< () -> (locals[A])
  Store,  ///< (v) -> (); locals[A] = v
  Dup,    ///< (v) -> (v, v)
  Pop,    ///< (v) -> ()
  Swap,   ///< (a, b) -> (b, a)
  // Arithmetic: (a, b) -> (a OP b); Neg/Not are unary.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Neg,
  Not,
  // Comparisons: (a, b) -> (0/1); A = predicate (dbds::Predicate).
  Cmp,
  // Control flow; A = bytecode index of the target.
  Goto,
  BrTrue,  ///< (c) -> (); branch if c != 0
  BrFalse, ///< (c) -> (); branch if c == 0
  Ret,     ///< (v) -> return v
  RetVoid, ///< return
  // Objects; A = class id / field index.
  New,      ///< () -> (ref)
  GetField, ///< (ref) -> (value); A = field
  PutField, ///< (ref, value) -> (); A = field
  // Opaque call; A = callee id, B = argument count: (args...) -> (result).
  Call,
  // Direct call of a module bytecode function; Name = callee, B = argc.
  InvokeFn,
};

/// Printable mnemonic for \p Op.
const char *bcMnemonic(BcOpcode Op);

/// One bytecode instruction: opcode plus up to two immediates.
struct BcInst {
  BcOpcode Op;
  int64_t A = 0;
  int64_t B = 0;
  std::string Name; ///< Callee for InvokeFn.
};

/// A bytecode function.
struct BytecodeFunction {
  std::string Name;
  unsigned NumParams = 0; ///< Parameters arrive in locals [0, NumParams).
  unsigned NumLocals = 0; ///< Total locals (>= NumParams).
  std::vector<BcInst> Code;
};

/// A bytecode module: class table plus functions.
struct BytecodeModule {
  /// Field counts per class id (index = class id).
  std::vector<unsigned> ClassFieldCounts;
  std::vector<BytecodeFunction> Functions;
};

/// Outcome of assembling bytecode text.
struct BcParseResult {
  std::unique_ptr<BytecodeModule> Mod;
  std::string Error; ///< Empty on success.

  explicit operator bool() const { return Mod != nullptr; }
};

/// Assembles the textual form:
///
///   class 2                      # class 0 with 2 fields
///   bcfunc @abs(1) locals=1 {
///     load 0
///     iconst 0
///     cmp lt
///     brtrue Lneg
///     load 0
///     ret
///   Lneg:
///     iconst 0
///     load 0
///     sub
///     ret
///   }
BcParseResult assembleBytecode(const std::string &Source);

/// Disassembles a function back to text (round-trips assembleBytecode).
std::string disassemble(const BytecodeFunction &F);

} // namespace dbds

#endif // DBDS_FRONTEND_BYTECODE_H
