//===- opts/Canonicalize.h - AC / action-step primitives --------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The applicability-check (AC) / action-step split from the paper (§4.1,
/// after Chang et al.): every local optimization is expressed as a pure
/// function from an instruction (with operands seen through a resolver) to
/// a replacement value. The action step never mutates existing IR — it
/// either returns an existing value (constant, operand) or a fresh
/// *detached* instruction. This is exactly what lets the DBDS simulation
/// tier evaluate optimizations without performing them: the simulation
/// passes a synonym-map resolver, the real phases pass identity.
///
/// Covered here: constant folding and strength reduction (division /
/// remainder / multiplication by powers of two, algebraic identities) and
/// stamp-based comparison folding. Conditional elimination, read
/// elimination, and allocation sinking have their own traversals but reuse
/// these primitives.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_OPTS_CANONICALIZE_H
#define DBDS_OPTS_CANONICALIZE_H

#include "ir/Function.h"
#include "analysis/Stamp.h"

#include <functional>

namespace dbds {

/// Maps an operand to the value to reason about. The DBDS simulation
/// resolves phis to their per-predecessor inputs and already-folded
/// instructions to their synonyms; real phases use the identity.
using Resolver = std::function<Instruction *(Instruction *)>;

/// Yields the best known stamp of a value *after resolution*.
using StampLookup = std::function<Stamp(Instruction *)>;

/// The identity resolver.
Instruction *identityResolver(Instruction *I);

/// Result of one action step.
struct FoldOutcome {
  /// The replacement value, or null when no optimization applies (AC
  /// failed). May be an existing instruction or a freshly created,
  /// detached one.
  Instruction *Replacement = nullptr;

  /// True when Replacement was newly created and is not yet inserted into
  /// a block (the caller must insert it or account for it in simulation).
  bool IsNew = false;

  explicit operator bool() const { return Replacement != nullptr; }
};

/// Constant folding + strength reduction + algebraic simplification for
/// arithmetic, comparison, and phi instructions.
///
/// \p I is inspected with operands seen through \p Resolve; \p Stamps
/// supplies value-range knowledge (strength-reducing a signed division
/// requires a non-negative dividend). New instructions are created in \p F
/// but left detached.
FoldOutcome tryCanonicalize(Instruction *I, const Resolver &Resolve,
                            const StampLookup &Stamps, Function &F);

/// True if \p Value is a power of two (>= 1).
bool isPowerOfTwo(int64_t Value);

/// log2 of a power of two.
unsigned log2OfPowerOfTwo(int64_t Value);

} // namespace dbds

#endif // DBDS_OPTS_CANONICALIZE_H
