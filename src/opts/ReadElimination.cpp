//===- opts/ReadElimination.cpp - Redundant field-read removal -------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Forwards field values (store->load and load->load) along the dominator
// tree. Memory knowledge is only propagated into a child block when the
// child's sole predecessor is the current block — i.e. within extended
// basic blocks — because a merge may be reached along paths with different
// memory states. That restriction is exactly why duplication helps: a
// partially redundant read copied into a predecessor becomes fully
// redundant there (paper Listing 5/6).
//
// Fresh, non-escaping allocations additionally expose zero-initialized
// fields and survive opaque calls; once duplication removes an
// allocation's phi escape, load-forwarding plus DCE's allocation sinking
// reproduce the paper's partial-escape-analysis effect (Listing 3/4).
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "opts/MemoryState.h"
#include "opts/PartialEscape.h"
#include "opts/Phase.h"

using namespace dbds;

void MemoryState::clear() {
  Available.clear();
  Fresh.clear();
}

void MemoryState::recordAllocation(NewInst *New, unsigned NumFields) {
  if (!allocationDoesNotEscape(New))
    return;
  Fresh.insert(New);
  ConstantInst *Zero = New->getFunction()->constant(0);
  for (unsigned Field = 0; Field != NumFields; ++Field)
    Available[{New, Field}] = Zero;
}

void MemoryState::recordStore(Instruction *Object, unsigned Field,
                              Instruction *Value) {
  // Kill aliasing knowledge: entries for the same field whose object is a
  // different value that may alias. Known-fresh allocations cannot alias
  // anything else (they have not escaped), in either direction.
  if (!Fresh.count(Object)) {
    for (auto It = Available.begin(); It != Available.end();) {
      auto [Obj, F] = It->first;
      bool MayAlias = F == Field && Obj != Object && !Fresh.count(Obj);
      It = MayAlias ? Available.erase(It) : ++It;
    }
  }
  Available[{Object, Field}] = Value;
}

Instruction *MemoryState::lookup(Instruction *Object, unsigned Field) const {
  auto It = Available.find({Object, Field});
  return It == Available.end() ? nullptr : It->second;
}

void MemoryState::recordLoad(LoadFieldInst *Load) {
  Available[{Load->getObject(), Load->getFieldIndex()}] = Load;
}

void MemoryState::recordAvailable(Instruction *Object, unsigned Field,
                                  Instruction *Value) {
  Available[{Object, Field}] = Value;
}

void MemoryState::killForCall() {
  // An opaque call can read/write any escaped object, but not a fresh,
  // never-escaping allocation.
  for (auto It = Available.begin(); It != Available.end();)
    It = Fresh.count(It->first.first) ? ++It : Available.erase(It);
}

namespace {

class REDriver {
public:
  REDriver(Function &F, const DominatorTree &DT, const Module *M)
      : F(F), DT(DT), M(M) {}

  bool run() {
    MemoryState Entry;
    visit(F.getEntry(), Entry);
    return Changed;
  }

private:
  unsigned fieldsOf(NewInst *New) const {
    if (!M)
      return 0;
    return M->getClass(New->getClassId()).NumFields;
  }

  void visit(Block *B, MemoryState State) {
    // A merge can be reached along paths this walk did not take; drop all
    // memory knowledge. (Loop headers are merges via their back edge.)
    if (B->getNumPreds() >= 2 ||
        (DT.getIdom(B) && B->getNumPreds() == 1 &&
         B->preds()[0] != DT.getIdom(B)))
      State.clear();

    SmallVector<Instruction *, 16> Insts(B->begin(), B->end());
    for (Instruction *I : Insts) {
      if (I->getBlock() != B)
        continue;
      switch (I->getOpcode()) {
      case Opcode::New:
        State.recordAllocation(cast<NewInst>(I), fieldsOf(cast<NewInst>(I)));
        break;
      case Opcode::LoadField: {
        auto *Load = cast<LoadFieldInst>(I);
        if (Instruction *Known =
                State.lookup(Load->getObject(), Load->getFieldIndex())) {
          Load->replaceAllUsesWith(Known);
          B->remove(Load);
          Changed = true;
          break;
        }
        State.recordLoad(Load);
        break;
      }
      case Opcode::StoreField: {
        auto *Store = cast<StoreFieldInst>(I);
        // Store of the value the location is already known to hold is
        // redundant.
        if (State.lookup(Store->getObject(), Store->getFieldIndex()) ==
            Store->getValue()) {
          B->remove(Store);
          Changed = true;
          break;
        }
        State.recordStore(Store->getObject(), Store->getFieldIndex(),
                          Store->getValue());
        break;
      }
      case Opcode::Call:
      case Opcode::Invoke:
        State.killForCall();
        break;
      default:
        break;
      }
    }

    for (Block *Child : DT.children(B)) {
      // Propagate state only into children this block directly feeds.
      visit(Child, State);
    }
  }

  Function &F;
  const DominatorTree &DT;
  const Module *M;
  bool Changed = false;
};

} // namespace

bool ReadElimination::run(Function &F) {
  DominatorTree DT(F);
  REDriver Driver(F, DT, ClassTable);
  return Driver.run();
}
