//===- opts/SimplifyCFG.cpp - Control-flow cleanup --------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Three local rewrites to a fixpoint:
//   1. A branch on a constant becomes a jump; the dead edge is removed.
//   2. Unreachable blocks are disconnected and erased.
//   3. A block whose jump leads to a single-predecessor block absorbs it.
// Rewrite 3 is what makes a fully-duplicated merge block disappear.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "opts/Phase.h"

#include <unordered_set>

using namespace dbds;

namespace {

/// Rewrite 1: branch on constant.
bool foldConstantBranches(Function &F) {
  bool Changed = false;
  for (Block *B : F.blocks()) {
    auto *If = dyn_cast<IfInst>(B->getTerminator());
    if (!If)
      continue;
    auto *Cond = dyn_cast<ConstantInst>(If->getCondition());
    if (!Cond || Cond->isNull())
      continue;
    bool Taken = Cond->getValue() != 0;
    Block *Kept = Taken ? If->getTrueSucc() : If->getFalseSucc();
    Block *Dropped = Taken ? If->getFalseSucc() : If->getTrueSucc();
    // Drop the dead edge (If successors are distinct by invariant, so B
    // occurs exactly once among Dropped's preds for this edge).
    Dropped->removePred(Dropped->indexOfPred(B));
    B->remove(If);
    auto *Jump = F.create<JumpInst>(Kept);
    B->append(Jump);
    Changed = true;
  }
  return Changed;
}

/// Rewrite 2: disconnect and erase unreachable blocks.
bool pruneUnreachable(Function &F) {
  std::unordered_set<Block *> Reachable;
  std::vector<Block *> Worklist{F.getEntry()};
  Reachable.insert(F.getEntry());
  while (!Worklist.empty()) {
    Block *B = Worklist.back();
    Worklist.pop_back();
    for (Block *S : B->succs())
      if (Reachable.insert(S).second)
        Worklist.push_back(S);
  }
  bool Changed = false;
  for (Block *B : F.blocks()) {
    if (Reachable.count(B))
      continue;
    // Remove B's edges into reachable blocks (phi inputs included).
    for (Block *S : B->succs()) {
      while (S->hasPred(B))
        S->removePred(S->indexOfPred(B));
    }
    // Values defined in B cannot be used by reachable code (dominance), so
    // the block can be dismantled wholesale.
    F.eraseBlock(B);
    Changed = true;
  }
  return Changed;
}

// Note on empty forwarding blocks: a block containing only a jump into a
// merge is deliberately NOT threaded away. Such blocks are the merge's
// per-edge begin blocks (Graal's BeginNode) — they are exactly where DBDS
// duplicates the merge into, and threading them would leave the merge
// reachable directly from an If edge, which neither the simulator nor the
// duplicator can split. An empty block whose target has one predecessor
// is subsumed by the straight-line merge below.

/// Rewrite 3: merge straight-line block pairs.
bool mergeStraightLine(Function &F) {
  bool Changed = false;
  for (Block *B : F.blocks()) {
    auto *Jump = dyn_cast<JumpInst>(B->getTerminator());
    if (!Jump)
      continue;
    Block *S = Jump->getTarget();
    if (S == B || S->getNumPreds() != 1 || S == F.getEntry())
      continue;
    // S's phis have a single input; replace them first.
    for (PhiInst *Phi : S->phis()) {
      Instruction *In = Phi->getInput(0);
      assert(In != Phi && "degenerate self-phi");
      Phi->replaceAllUsesWith(In);
      S->remove(Phi);
    }
    B->remove(Jump);
    S->transferAllTo(B);
    for (Block *T : B->succs()) {
      // The moved terminator's edges now originate from B.
      for (unsigned Idx = 0, E = T->getNumPreds(); Idx != E; ++Idx)
        if (T->preds()[Idx] == S)
          T->replacePred(Idx, B);
    }
    F.eraseBlock(S);
    Changed = true;
    break; // block list changed; restart outer fixpoint
  }
  return Changed;
}

} // namespace

bool SimplifyCFG::run(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    LocalChange |= foldConstantBranches(F);
    LocalChange |= pruneUnreachable(F);
    LocalChange |= mergeStraightLine(F);
    Changed |= LocalChange;
  }
  return Changed;
}
