//===- opts/ScopedStamps.h - Scoped stamp refinement -------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A refinement overlay over a StampMap with undo support, used by both
/// conditional elimination and the DBDS simulation tier while walking the
/// dominator tree: entering a branch successor narrows the condition's
/// operands; leaving the subtree restores the previous knowledge.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_OPTS_SCOPEDSTAMPS_H
#define DBDS_OPTS_SCOPEDSTAMPS_H

#include "analysis/StampMap.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace dbds {

/// Scoped refinement overlay on top of a StampMap.
class ScopedStamps {
public:
  /// One undo log; callers keep one per scope and replay it on exit.
  using UndoLog = std::vector<std::pair<Instruction *, std::optional<Stamp>>>;

  explicit ScopedStamps(StampMap &Base) : Base(Base) {}

  /// The refined stamp of \p I (falls back to the base map).
  Stamp get(Instruction *I) {
    auto It = Overlay.find(I);
    if (It != Overlay.end())
      return It->second;
    return Base.get(I);
  }

  /// Narrows \p I to the meet of its current stamp and \p S, appending the
  /// previous state to \p Undo. No-op on contradictions (dead code) or
  /// when nothing new is learned.
  void refine(Instruction *I, const Stamp &S, UndoLog &Undo);

  /// Records everything a condition being \p Holds implies: the condition
  /// value itself, and range refinements of compared operands.
  void refineByCondition(Instruction *Cond, bool Holds, UndoLog &Undo);

  /// Restores the state recorded in \p Undo (reverse order).
  void undo(const UndoLog &Undo);

private:
  StampMap &Base;
  std::unordered_map<Instruction *, Stamp> Overlay;
};

} // namespace dbds

#endif // DBDS_OPTS_SCOPEDSTAMPS_H
